package blackscholes

import (
	"errors"
	"math"

	"finbench/internal/mathx"
	"finbench/internal/workload"
)

// Greeks are the Black-Scholes sensitivities of one option. The paper's
// benchmark domain (STAC, Premia) motivates pricing together with risk and
// calibration; greeks and implied volatility are the natural extensions of
// the closed-form kernel.
type Greeks struct {
	// DeltaCall and DeltaPut are dV/dS.
	DeltaCall, DeltaPut float64
	// Gamma is d2V/dS2 (identical for call and put).
	Gamma float64
	// Vega is dV/dsigma per unit volatility (identical for call and put).
	Vega float64
	// ThetaCall and ThetaPut are dV/dt (calendar decay, per year).
	ThetaCall, ThetaPut float64
	// RhoCall and RhoPut are dV/dr.
	RhoCall, RhoPut float64
}

// ComputeGreeks returns the closed-form sensitivities.
func ComputeGreeks(s, x, t float64, mkt workload.MarketParams) Greeks {
	r, sig := mkt.R, mkt.Sigma
	sqt := mathx.Sqrt(t)
	d1 := (mathx.Log(s/x) + (r+sig*sig/2)*t) / (sig * sqt)
	d2 := d1 - sig*sqt
	nd1 := mathx.CND(d1)
	pd1 := mathx.PDF(d1)
	disc := mathx.Exp(-r * t)
	var g Greeks
	g.DeltaCall = nd1
	g.DeltaPut = nd1 - 1
	g.Gamma = pd1 / (s * sig * sqt)
	g.Vega = s * pd1 * sqt
	g.ThetaCall = -s*pd1*sig/(2*sqt) - r*x*disc*mathx.CND(d2)
	g.ThetaPut = -s*pd1*sig/(2*sqt) + r*x*disc*mathx.CND(-d2)
	g.RhoCall = x * t * disc * mathx.CND(d2)
	g.RhoPut = -x * t * disc * mathx.CND(-d2)
	return g
}

// ErrNoConvergence is returned when the implied-volatility solver fails to
// reach tolerance.
var ErrNoConvergence = errors.New("blackscholes: implied volatility did not converge")

// ErrArbitrage is returned when the target price violates static no-
// arbitrage bounds and no volatility can reproduce it.
var ErrArbitrage = errors.New("blackscholes: price outside no-arbitrage bounds")

// ImpliedVolCall inverts the call price for sigma via a safeguarded
// Newton iteration on vega (bisection fallback), the model-calibration
// primitive of the STAC-style workloads the paper cites.
func ImpliedVolCall(price, s, x, t, r float64) (float64, error) {
	disc := x * mathx.Exp(-r*t)
	intrinsic := math.Max(s-disc, 0)
	if price < intrinsic-1e-12 || price >= s {
		return 0, ErrArbitrage
	}
	lo, hi := 1e-6, 4.0
	sig := 0.3
	mkt := workload.MarketParams{R: r}
	for iter := 0; iter < 100; iter++ {
		mkt.Sigma = sig
		call, _ := PriceScalar(s, x, t, mkt)
		diff := call - price
		if math.Abs(diff) < 1e-12*math.Max(1, price) {
			return sig, nil
		}
		if diff > 0 {
			hi = sig
		} else {
			lo = sig
		}
		vega := ComputeGreeks(s, x, t, mkt).Vega
		next := sig - diff/vega
		if vega < 1e-14 || next <= lo || next >= hi || math.IsNaN(next) {
			next = (lo + hi) / 2 // Newton left the bracket: bisect
		}
		if math.Abs(next-sig) < 1e-14 {
			return next, nil
		}
		sig = next
	}
	return sig, ErrNoConvergence
}
