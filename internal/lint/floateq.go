package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floateqPass flags == and != between floating-point operands outside
// *_test.go. Kernel outputs differ across variants only by rounding — the
// whole validation story of the repo is ULP- and tolerance-based (and
// Hofmann et al., arXiv:1604.01890, show reduction error grows with
// problem size) — so exact float equality in production code is almost
// always a latent bug. Sentinel comparisons (e.g. against a stored NaN or
// an exact untouched zero) are legitimate but rare enough to annotate:
// "// finlint:ignore floateq <reason>".
func floateqPass() *Pass {
	return &Pass{
		Name: "floateq",
		Doc:  "==/!= between floating-point operands outside tests",
		Run:  runFloatEq,
	}
}

func runFloatEq(p *Package, report func(pos token.Pos, msg string)) {
	for _, f := range p.Files {
		// The loader already excludes _test.go, but the guard keeps the
		// pass correct if a caller feeds it test files directly.
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloatExpr(p, bin.X) || isFloatExpr(p, bin.Y) {
				report(bin.Pos(), fmt.Sprintf(
					"floating-point %s comparison; rounding makes exact equality unreliable — compare with a tolerance, or annotate finlint:ignore floateq with the invariant that makes it exact", bin.Op))
			}
			return true
		})
	}
}

func isFloatExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat,
		types.Complex64, types.Complex128, types.UntypedComplex:
		return true
	}
	return false
}
