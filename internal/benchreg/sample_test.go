package benchreg

import (
	"math"
	"testing"
	"time"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{10, 10, 10, 1000}, 10}, // outlier-robust
	}
	for _, c := range cases {
		if got := Median(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Median(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestMAD(t *testing.T) {
	if got := MAD(nil); got != 0 {
		t.Errorf("MAD(nil) = %g", got)
	}
	// {1,2,3,4,5}: median 3, deviations {2,1,0,1,2}, MAD 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("MAD = %g, want 1", got)
	}
	// A single wild outlier barely moves the MAD.
	if got := MAD([]float64{10, 10, 10, 10, 1e6}); got != 0 {
		t.Errorf("MAD with outlier = %g, want 0", got)
	}
}

func TestMeasureCallsAndSummary(t *testing.T) {
	calls := 0
	o := Opts{Warmup: 2, Reps: 4, MinDuration: time.Microsecond}
	s := Measure(1000, func() {
		calls++
		busy := 0
		for i := 0; i < 10000; i++ {
			busy += i
		}
		_ = busy
	}, o)
	if calls < o.Warmup+o.Reps {
		t.Fatalf("kernel called %d times, want >= %d", calls, o.Warmup+o.Reps)
	}
	if s.Reps != o.Reps || s.Items != 1000 {
		t.Fatalf("Sample reps/items = %d/%d, want 4/1000", s.Reps, s.Items)
	}
	if s.OpsPerSec <= 0 || s.MedianSec <= 0 {
		t.Fatalf("non-positive summary: ops=%g sec=%g", s.OpsPerSec, s.MedianSec)
	}
	if s.OpsMAD < 0 || s.MADSec < 0 {
		t.Fatalf("negative MAD: ops=%g sec=%g", s.OpsMAD, s.MADSec)
	}
	if len(s.Throughputs) != o.Reps {
		t.Fatalf("%d raw throughput samples, want %d", len(s.Throughputs), o.Reps)
	}
	if got := Median(s.Throughputs); math.Abs(got-s.OpsPerSec) > 1e-9*s.OpsPerSec {
		t.Fatalf("OpsPerSec %g is not the median of the raw samples (%g)", s.OpsPerSec, got)
	}
}

func TestOptsDefaults(t *testing.T) {
	var zero Opts
	d := zero.withDefaults()
	if d.Reps <= 0 || d.MinDuration <= 0 {
		t.Fatalf("withDefaults left zero fields: %+v", d)
	}
	// Explicit values survive.
	o := Opts{Warmup: 3, Reps: 11, MinDuration: time.Second}.withDefaults()
	if o.Warmup != 3 || o.Reps != 11 || o.MinDuration != time.Second {
		t.Fatalf("withDefaults clobbered explicit values: %+v", o)
	}
	if ShortOpts().Reps >= DefaultOpts().Reps {
		t.Fatal("ShortOpts must take fewer repetitions than DefaultOpts")
	}
	if ShortOpts().MinDuration >= DefaultOpts().MinDuration {
		t.Fatal("ShortOpts must use briefer repetitions than DefaultOpts")
	}
}

// allocSink keeps the allocation test's slices live past the loop.
var allocSink []byte

// TestMeasureCountsAllocs pins the allocs/op accounting: a kernel that
// allocates k times per invocation reports AllocsPerOp ~ k, and an
// allocation-free kernel reports ~0.
func TestMeasureCountsAllocs(t *testing.T) {
	o := Opts{Warmup: 1, Reps: 3, MinDuration: time.Millisecond}
	const k = 10
	s := Measure(1, func() {
		for i := 0; i < k; i++ {
			allocSink = make([]byte, 4096)
		}
	}, o)
	// The runtime may add a stray allocation (timer plumbing, GC
	// assist), so bound rather than equate.
	if s.AllocsPerOp < k || s.AllocsPerOp > k+2 {
		t.Fatalf("AllocsPerOp = %g for a %d-alloc kernel", s.AllocsPerOp, k)
	}

	x := 0
	quiet := Measure(1, func() {
		for i := 0; i < 1000; i++ {
			x += i
		}
	}, o)
	if quiet.AllocsPerOp > 1 {
		t.Fatalf("AllocsPerOp = %g for an allocation-free kernel", quiet.AllocsPerOp)
	}
	_ = x
}
