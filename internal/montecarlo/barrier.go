package montecarlo

import (
	"errors"

	"finbench/internal/mathx"
	"finbench/internal/rng"
	"finbench/internal/workload"
)

// Barrier options: the second classic application of the Brownian-bridge
// machinery. A discretely-monitored simulation misses barrier crossings
// between monitoring dates; the bridge supplies the exact conditional
// crossing probability over each interval,
//
//	P(hit | S_i, S_{i+1}) = exp(-2 ln(S_i/H) ln(S_{i+1}/H) / (sigma^2 dt)),
//
// turning the biased discrete estimator into an unbiased continuous one
// that the Merton closed form validates.

// DownOutCall is a European down-and-out call: worthless if the underlying
// ever touches the barrier H before expiry.
type DownOutCall struct {
	S, X, H, T float64
	// Steps is the number of monitoring intervals for the MC pricers.
	Steps int
}

// ErrBarrier indicates an invalid barrier configuration.
var ErrBarrier = errors.New("montecarlo: barrier must satisfy 0 < H <= min(S, X)")

func (b DownOutCall) validate() error {
	if b.S <= 0 || b.X <= 0 || b.T <= 0 || b.Steps < 1 {
		return ErrBarrier
	}
	if b.H <= 0 || b.H > b.S || b.H > b.X {
		// The closed form below assumes H <= X; H > S is instant knock-out.
		return ErrBarrier
	}
	return nil
}

// DownOutCallClosedForm returns the Merton (1973) value of the
// continuously-monitored down-and-out call for H <= min(S, X)
// (Hull, "Options, Futures, and Other Derivatives", barrier chapter):
// c_do = c - c_di with
// c_di = S (H/S)^{2 lambda} Phi(y) - X e^{-rT} (H/S)^{2 lambda - 2} Phi(y - sigma sqrt(T)),
// lambda = (r + sigma^2/2)/sigma^2, y = ln(H^2/(S X))/(sigma sqrt(T)) + lambda sigma sqrt(T).
func DownOutCallClosedForm(b DownOutCall, mkt workload.MarketParams) (float64, error) {
	if err := b.validate(); err != nil {
		return 0, err
	}
	sig := mkt.Sigma
	sqT := mathx.Sqrt(b.T)
	lambda := (mkt.R + sig*sig/2) / (sig * sig)
	y := mathx.Log(b.H*b.H/(b.S*b.X))/(sig*sqT) + lambda*sig*sqT
	hs := b.H / b.S
	cdi := b.S*powf(hs, 2*lambda)*mathx.CND(y) -
		b.X*mathx.Exp(-mkt.R*b.T)*powf(hs, 2*lambda-2)*mathx.CND(y-sig*sqT)
	// Vanilla call.
	c, _ := vanillaCall(b.S, b.X, b.T, mkt)
	return c - cdi, nil
}

func powf(base, exp float64) float64 { return mathx.Exp(exp * mathx.Log(base)) }

// vanillaCall is the closed-form call (local copy to avoid an import cycle
// with the blackscholes package, which imports nothing from here but keeps
// the layering one-directional).
func vanillaCall(s, x, t float64, mkt workload.MarketParams) (float64, float64) {
	sig := mkt.Sigma
	sqT := mathx.Sqrt(t)
	d1 := (mathx.Log(s/x) + (mkt.R+sig*sig/2)*t) / (sig * sqT)
	d2 := d1 - sig*sqT
	call := s*mathx.CND(d1) - x*mathx.Exp(-mkt.R*t)*mathx.CND(d2)
	return call, d1
}

// DownOutCallMC prices the barrier option by path simulation over Steps
// monitoring intervals. With corrected = false the estimator only checks
// the barrier at monitoring dates (biased high: crossings between dates are
// missed). With corrected = true each surviving path is weighted by the
// product of per-interval bridge survival probabilities, giving the
// continuously-monitored price.
func DownOutCallMC(b DownOutCall, npaths int, seed uint64, corrected bool, mkt workload.MarketParams) (Result, error) {
	if err := b.validate(); err != nil {
		return Result{}, err
	}
	dt := b.T / float64(b.Steps)
	drift := (mkt.R - mkt.Sigma*mkt.Sigma/2) * dt
	volDt := mkt.Sigma * mathx.Sqrt(dt)
	sig2dt := mkt.Sigma * mkt.Sigma * dt
	df := mathx.Exp(-mkt.R * b.T)
	stream := rng.NewStream(0, seed)
	z := make([]float64, b.Steps)
	var v0, v1 float64
	for p := 0; p < npaths; p++ {
		stream.NormalICDF(z)
		sp := b.S
		weight := 1.0
		alive := true
		for k := 0; k < b.Steps && alive; k++ {
			next := sp * mathx.Exp(drift+volDt*z[k])
			if next <= b.H {
				alive = false
				break
			}
			if corrected {
				// Bridge probability of dipping below H inside the step.
				a := mathx.Log(sp / b.H)
				c := mathx.Log(next / b.H)
				weight *= 1 - mathx.Exp(-2*a*c/sig2dt)
			}
			sp = next
		}
		var payoff float64
		if alive && sp > b.X {
			payoff = (sp - b.X) * weight * df
		}
		v0 += payoff
		v1 += payoff * payoff
	}
	n := float64(npaths)
	mean := v0 / n
	variance := v1/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Result{Price: mean, StdErr: mathx.Sqrt(variance / n)}, nil
}
