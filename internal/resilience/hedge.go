package resilience

import (
	"context"
	"time"
)

// hedgeResult carries one attempt's outcome through the channel.
type hedgeResult[T any] struct {
	val     T
	err     error
	attempt int
}

// Hedge runs op and, every delay in which no attempt has finished,
// launches another — up to maxAttempts concurrent attempts. The first
// success wins: its value and attempt index are returned and every other
// attempt's context is cancelled (losers must honor it). If all attempts
// fail, the first attempt's error is returned (it saw the real deadline;
// later hedges usually fail with cancellation noise).
//
// The closure runs on multiple goroutines at once — it must not share
// unsynchronized mutable state (in particular RNG streams) across
// attempts. Hedging duplicates execution, so callers must only hedge
// operations whose results are bit-reproducible regardless of where they
// run; the serving tier never hedges Monte Carlo for exactly that reason.
func Hedge[T any](ctx context.Context, delay time.Duration, maxAttempts int, op func(ctx context.Context, attempt int) (T, error)) (T, int, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	if maxAttempts == 1 || delay < 0 {
		v, err := op(ctx, 0)
		return v, 0, err
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan hedgeResult[T], maxAttempts)
	launch := func(attempt int) {
		go func() {
			v, err := op(hctx, attempt)
			results <- hedgeResult[T]{val: v, err: err, attempt: attempt}
		}()
	}

	launch(0)
	launched, failed := 1, 0
	var firstErr error
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		select {
		case r := <-results:
			if r.err == nil {
				cancel() // losers stop consuming their replicas
				return r.val, r.attempt, nil
			}
			if r.attempt == 0 {
				firstErr = r.err
			}
			failed++
			if failed == launched && launched == maxAttempts {
				var zero T
				if firstErr == nil {
					firstErr = r.err
				}
				return zero, r.attempt, firstErr
			}
			if failed == launched {
				// Everything in flight failed; hedge immediately rather
				// than waiting out the timer.
				launch(launched)
				launched++
			}
		case <-timer.C:
			if launched < maxAttempts {
				launch(launched)
				launched++
				timer.Reset(delay)
			}
		case <-ctx.Done():
			var zero T
			return zero, -1, ctx.Err()
		}
	}
}
