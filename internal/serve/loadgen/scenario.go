package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"

	"finbench"
	"finbench/internal/scenario"
)

// Scenario mode: instead of the /price mix, every request is a POST
// /scenario with a seed-deterministic portfolio over a fixed shock grid
// (and optionally one generator of each model). With Verify set, each
// 200 body is recomputed through the library's scenario engine and must
// be byte-identical — against a lone replica or a scatter-gathering
// router alike, which is exactly the tentpole invariant the e2e gate
// pins from outside the process.

// scenarioShockLadder spreads n shocks evenly over [-span, span];
// n == 1 degenerates to the unshocked {0}.
func scenarioShockLadder(n int, span float64) []float64 {
	if n <= 1 {
		return []float64{0}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = -span + 2*span*float64(i)/float64(n-1)
	}
	return out
}

// scenarioRequest draws one request: portfolio contracts from rng, shock
// ladders fixed by the grid dimensions, generator seeds from rng. Verify
// recomputes from this same request object, so nothing here needs to be
// reproducible beyond the request's own lifetime.
func (o Options) scenarioRequest(rng *rand.Rand) *scenario.Request {
	req := &scenario.Request{
		Portfolio: make([]scenario.Position, o.OptionsPerRequest),
		Grid: scenario.Grid{
			SpotShocks: scenarioShockLadder(o.ScenarioGrid[0], 0.2),
			VolShocks:  scenarioShockLadder(o.ScenarioGrid[1], 0.05),
			RateShifts: scenarioShockLadder(o.ScenarioGrid[2], 0.01),
		},
		DeadlineMS: o.DeadlineMS,
	}
	for i := range req.Portfolio {
		p := &req.Portfolio[i]
		p.Spot = 50 + 100*rng.Float64()
		p.Strike = 50 + 100*rng.Float64()
		p.Expiry = 0.1 + 3*rng.Float64()
		p.Quantity = float64(rng.Intn(19) - 9)
		if p.Quantity == 0 { // finlint:ignore floateq small-int-valued draw; zero means the quantity-defaults sentinel, so bump it
			p.Quantity = 1
		}
		if rng.Intn(2) == 1 {
			p.Type = "put"
		}
	}
	if o.ScenarioGens > 0 {
		for _, model := range []string{scenario.ModelHeston, scenario.ModelJump, scenario.ModelBasket} {
			req.Generators = append(req.Generators, scenario.Generator{
				Model:     model,
				Scenarios: o.ScenarioGens,
				Seed:      rng.Uint64() | 1,
			})
		}
	}
	return req
}

// doScenario sends one scenario request and, with Verify set, requires
// the 200 body byte-identical to the library's own evaluate + finalize.
func (o Options) doScenario(client *http.Client, rng *rand.Rand, mkt finbench.Market) (int, reqOutcome, error) {
	var out reqOutcome
	req := o.scenarioRequest(rng)
	body, err := json.Marshal(req)
	if err != nil {
		return 0, out, err
	}
	resp, err := client.Post(o.BaseURL+"/scenario", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, out, err
	}
	defer resp.Body.Close()
	out.noteRouteHeaders(resp)
	if v := resp.Header.Get("X-Finserve-Partitions"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 1 {
			out.scattered = 1
		}
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, out, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, out, nil
	}
	if !o.Verify {
		return resp.StatusCode, out, nil
	}
	base, pnl, err := scenario.EvaluateCells(context.Background(), req, mkt, 0, req.NumCells())
	if err != nil {
		out.mismatch++
		return resp.StatusCode, out, nil
	}
	var want bytes.Buffer
	if err := json.NewEncoder(&want).Encode(scenario.Finalize(req, base, 0, pnl)); err != nil {
		return resp.StatusCode, out, err
	}
	if bytes.Equal(buf.Bytes(), want.Bytes()) {
		out.verified++
	} else {
		out.mismatch++
	}
	return resp.StatusCode, out, nil
}

// ParseScenarioGrid parses "5x3x3" into (spot, vol, rate) shock counts.
func ParseScenarioGrid(s string) ([3]int, error) {
	var grid [3]int
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return grid, fmt.Errorf("scenario grid %q: want SPOTxVOLxRATE, e.g. 5x3x3", s)
	}
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return grid, fmt.Errorf("scenario grid %q: bad dimension %q", s, p)
		}
		grid[i] = n
	}
	return grid, nil
}
