package bench

import "fmt"

// The Ninja-gap summary of Sec. V: for each kernel, the ratio of the
// best-optimized modelled throughput to the basic (compiler-only) level,
// averaged across kernels; plus the optimized KNC/SNB-EP ratio split by
// roofline class. The paper reports averages of 1.9x (SNB-EP) and 4x
// (KNC), and optimized KNC/SNB-EP of ~2.5x on compute-bound and ~2x on
// bandwidth-bound kernels.

func registerNinja() {
	register(&Experiment{
		ID:          "ninja",
		Title:       "Ninja gap summary (Sec. V)",
		Units:       "ratio",
		Description: "Best-optimized over basic throughput per kernel and machine; derived from the fig4/fig5/fig6/fig8 models.",
		Model: func(scale float64) (*Result, error) {
			r := &Result{ID: "ninja", Title: "Ninja gap", Units: "x (best/basic)"}
			type gap struct {
				kernel   string
				snb, knc float64
				optRatio float64 // optimized KNC/SNB
				bound    string
			}
			var gaps []gap
			pull := func(id, kernel, bound string, basicIdx, bestIdx int) error {
				res, err := ByID(id).Model(scale)
				if err != nil {
					return err
				}
				basic, best := res.Rows[basicIdx], res.Rows[bestIdx]
				gaps = append(gaps, gap{
					kernel:   kernel,
					snb:      best.Model[ColSNB] / basic.Model[ColSNB],
					knc:      best.Model[ColKNC] / basic.Model[ColKNC],
					optRatio: best.Model[ColKNC] / best.Model[ColSNB],
					bound:    bound,
				})
				return nil
			}
			if err := pull("fig4", "black-scholes", "bandwidth", 0, 2); err != nil {
				return nil, err
			}
			if err := pull("fig5", "binomial-1024", "compute", 0, 3); err != nil {
				return nil, err
			}
			if err := pull("fig6", "brownian-bridge", "compute", 0, 3); err != nil {
				return nil, err
			}
			if err := pull("fig8", "crank-nicolson", "compute", 0, 2); err != nil {
				return nil, err
			}
			var sumS, sumK float64
			var cb, cbN, bb, bbN float64
			for _, g := range gaps {
				r.Rows = append(r.Rows, Row{
					Label: fmt.Sprintf("%s gap (%s-bound)", g.kernel, g.bound),
					Model: map[string]float64{ColSNB: g.snb, ColKNC: g.knc},
					Prov:  Derived,
				})
				sumS += g.snb
				sumK += g.knc
				if g.bound == "compute" {
					cb += g.optRatio
					cbN++
				} else {
					bb += g.optRatio
					bbN++
				}
			}
			n := float64(len(gaps))
			r.Rows = append(r.Rows, Row{
				Label: "average Ninja gap",
				Paper: map[string]float64{ColSNB: paperNinjaSNB, ColKNC: paperNinjaKNC},
				Model: map[string]float64{ColSNB: sumS / n, ColKNC: sumK / n},
				Prov:  Stated,
			})
			if cbN > 0 {
				r.Rows = append(r.Rows, Row{
					Label: "optimized KNC/SNB-EP (compute-bound)",
					Paper: map[string]float64{ColKNC: paperOptimizedRatioCB},
					Model: map[string]float64{ColKNC: cb / cbN},
					Prov:  Stated,
				})
			}
			if bbN > 0 {
				r.Rows = append(r.Rows, Row{
					Label: "optimized KNC/SNB-EP (bandwidth-bound)",
					Paper: map[string]float64{ColKNC: paperOptimizedRatioBB},
					Model: map[string]float64{ColKNC: bb / bbN},
					Prov:  Stated,
				})
			}
			r.Notes = append(r.Notes,
				"the paper's 1.9x/4x averages include kernels whose basic level already reaches peak (Monte Carlo); the per-kernel rows are the comparable quantities")
			return r, nil
		},
	})
}
