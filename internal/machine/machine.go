// Package machine models the two architectures studied in the paper — the
// Intel Xeon E5-2680 ("SNB-EP") and the Intel Xeon Phi Knights Corner
// coprocessor ("KNC") — and predicts kernel execution time from the dynamic
// operation mixes collected by internal/perf.
//
// The model is the same style of reasoning the paper applies in Sec. IV:
// a per-core issue-rate model for compute (each operation class has a
// reciprocal-throughput cost in cycles), combined with a STREAM-bandwidth
// model for memory, taking the max of the two (roofline). Machine
// parameters are Table I verbatim; per-op costs are derived from the two
// microarchitectures (dual-issue mul/add on SNB-EP, single vector pipe with
// FMA on KNC) and calibrated once against the paper's stated anchor points
// (the shape assertions in internal/bench/bench_test.go), then held fixed
// for every experiment.
package machine

import (
	"fmt"
	"strings"

	"finbench/internal/perf"
)

// Machine describes one modelled architecture.
type Machine struct {
	// Name is the short identifier used throughout the paper ("SNB-EP",
	// "KNC").
	Name string
	// FullName is the marketing name from Table I.
	FullName string

	Sockets        int
	CoresPerSocket int
	// SMT is the number of hardware threads per core (2 on SNB-EP, 4 on
	// KNC). The per-op costs below assume enough threads per core to reach
	// steady-state issue rates, which both papers' runs and ours use.
	SMT int

	ClockGHz float64
	// SIMDWidthDP is the number of double-precision lanes per vector
	// register: 4 for 256-bit AVX, 8 for the 512-bit KNC vector ISA.
	SIMDWidthDP int
	// HasFMA reports fused multiply-add support. KNC has FMA; SNB-EP (AVX,
	// pre-AVX2) issues separate multiplies and adds on separate ports.
	HasFMA bool
	// OutOfOrder reports an out-of-order core. The cost tables already fold
	// in the consequences (cheap register moves and unaligned loads on
	// SNB-EP, full price on in-order KNC).
	OutOfOrder bool

	L1KB, L2KB, L3KB int
	DRAMGB           float64
	// StreamBW is the measured STREAM bandwidth from Table I in GB/s.
	StreamBW float64
	// PCIeBW is the host link bandwidth in GB/s (0 when not applicable).
	PCIeBW float64

	// PeakDPGFLOPs / PeakSPGFLOPs are the Table I peak numbers. Note the
	// paper computes KNC peaks with 61 cores (the card reserves one core
	// for the OS during measurement but counts it for peak): 61 x 8 lanes x
	// 2 flops (FMA) x 1.09 GHz = 1063 DP GFLOP/s.
	PeakDPGFLOPs float64
	PeakSPGFLOPs float64

	// Cost is the reciprocal throughput, in cycles per dynamic operation of
	// each class, charged per core. Vector-op costs are per instruction
	// (not per lane); transcendental and RNG costs are per element so that
	// scalar and vector kernels are charged consistently (a vector exp call
	// is counted once per lane by internal/vec).
	Cost [perf.NumOps]float64
}

// Cores returns the total physical core count.
func (m *Machine) Cores() int { return m.Sockets * m.CoresPerSocket }

// Threads returns the total hardware thread count.
func (m *Machine) Threads() int { return m.Cores() * m.SMT }

// PeakDPFromParams recomputes peak DP GFLOP/s from the microarchitectural
// parameters: lanes x (2 if FMA or dual mul/add ports) x cores x clock.
// Both modelled machines sustain one multiply and one add per cycle (SNB-EP
// via separate ports, KNC via FMA), so the factor is 2 for both.
func (m *Machine) PeakDPFromParams() float64 {
	return float64(m.SIMDWidthDP) * 2 * float64(m.Cores()) * m.ClockGHz
}

// SNBEP returns the model of the dual-socket Intel Xeon E5-2680 system
// (Table I, left column).
func SNBEP() *Machine {
	m := &Machine{
		Name:           "SNB-EP",
		FullName:       "Intel Xeon Processor E5-2680 (Sandy Bridge-EP)",
		Sockets:        2,
		CoresPerSocket: 8,
		SMT:            2,
		ClockGHz:       2.7,
		SIMDWidthDP:    4,
		HasFMA:         false,
		OutOfOrder:     true,
		L1KB:           32,
		L2KB:           256,
		L3KB:           20480,
		DRAMGB:         128,
		StreamBW:       76,
		PeakDPGFLOPs:   346,
		PeakSPGFLOPs:   691,
	}
	c := &m.Cost
	// Out-of-order, dual-issue FP: one multiply port and one add port per
	// cycle, so in a balanced mix each costs half a cycle of issue.
	c[perf.OpVecMul] = 0.5
	c[perf.OpVecAdd] = 0.5
	// No FMA: a fused op decomposes into one multiply plus one add, which
	// dual-issue in one cycle.
	c[perf.OpVecFMA] = 1.0
	c[perf.OpVecDiv] = 10 // 4-wide DP divide (SVML reciprocal+Newton)
	c[perf.OpVecMax] = 0.5
	c[perf.OpVecMisc] = 0.2 // moves/shuffles largely hidden by OOO rename
	c[perf.OpVecLoad] = 0.5
	c[perf.OpVecLoadU] = 0.75 // split-line penalty mostly absorbed
	c[perf.OpVecStore] = 1.0
	// AVX has no gather: emulated with scalar loads + inserts. For regular
	// strided streams the hardware prefetcher hides the misses and the
	// out-of-order window absorbs the extra instructions (Sec. IV-A3:
	// "with only a vector length of 4 and superscalar execution, the
	// overhead of AOS format is less pronounced").
	c[perf.OpGather] = 3.5
	c[perf.OpScatter] = 4.5
	c[perf.OpGatherNear] = 2.5
	c[perf.OpScatterNear] = 3.0
	c[perf.OpScalar] = 0.4 // ~2.5 scalar ops/cycle sustained
	c[perf.OpScalarLoad] = 0.5
	c[perf.OpScalarLoadDep] = 1.2 // chase latency partially exposed even OOO
	// Serial FP chains: ~4-cycle FP latency per op, two SMT threads to
	// overlap independent chains.
	c[perf.OpScalarChain] = 1.0
	c[perf.OpScalarStore] = 0.5
	// Transcendentals: cycles per element (SVML-class polynomial kernels).
	c[perf.OpExp] = 4.5
	c[perf.OpLog] = 5.5
	c[perf.OpSqrt] = 3.5
	c[perf.OpErf] = 5.0
	c[perf.OpCND] = 11.0
	c[perf.OpInvCND] = 20.7
	// Uniform doubles per cycle per core, from Table II: 13.31e9/s over 16
	// cores at 2.7 GHz = 3.25 cycles/number.
	c[perf.OpRNG] = 3.25
	return m
}

// KNC returns the model of the Intel Xeon Phi (Knights Corner) coprocessor
// (Table I, right column).
func KNC() *Machine {
	m := &Machine{
		Name:           "KNC",
		FullName:       "Intel Xeon Phi coprocessor (Knights Corner)",
		Sockets:        1,
		CoresPerSocket: 60,
		SMT:            4,
		ClockGHz:       1.09,
		SIMDWidthDP:    8,
		HasFMA:         true,
		OutOfOrder:     false,
		L1KB:           32,
		L2KB:           512,
		L3KB:           0,
		DRAMGB:         4,
		StreamBW:       150,
		PCIeBW:         6,
		PeakDPGFLOPs:   1063,
		PeakSPGFLOPs:   2127,
	}
	c := &m.Cost
	// In-order core with a single vector pipe: every vector instruction
	// occupies one issue slot. 4-way SMT hides latency, so reciprocal
	// throughput is 1 cycle for simple ops.
	c[perf.OpVecMul] = 1.0
	c[perf.OpVecAdd] = 1.0
	c[perf.OpVecFMA] = 1.0 // native FMA: 16 DP flops/cycle
	c[perf.OpVecDiv] = 20  // 8-wide DP divide via Newton iterations
	c[perf.OpVecMax] = 1.0
	c[perf.OpVecMisc] = 1.0 // in-order: register moves cost a full slot
	c[perf.OpVecLoad] = 1.0
	c[perf.OpVecLoadU] = 2.0 // unaligned = two loads + align on KNC
	c[perf.OpVecStore] = 1.0
	// Streaming gathers are KNC's catastrophe case: vgatherdpd loops one
	// cache line per iteration, each line an exposed L2/GDDR miss the
	// in-order core cannot hide behind (no prefetch for irregular lanes),
	// so an 8-line AOS access costs hundreds of cycles even with 4-way SMT
	// (Sec. IV-A3: ">10x increase in the number of instructions" and the
	// 3x reference-Black-Scholes deficit vs. SNB-EP both stem from this).
	// Cache-resident near gathers (<= 2 lines) cost only the loop trips.
	c[perf.OpGather] = 350
	c[perf.OpScatter] = 380
	c[perf.OpGatherNear] = 4.0
	c[perf.OpScatterNear] = 5.0
	// The scalar pipe pairs with the vector pipe and 4-way SMT keeps both
	// fed, so per-cycle scalar throughput is close to SNB-EP's; the
	// paper's scalar-dominated kernels (reference Crank-Nicolson, basic
	// Brownian bridge) show chip-level ratios implying ~1.13x more cycles
	// per scalar op than SNB-EP.
	c[perf.OpScalar] = 0.45
	c[perf.OpScalarLoad] = 0.55
	// Dependent loads expose L1 latency on the in-order pipeline; 4-way
	// SMT only partially covers it.
	c[perf.OpScalarLoadDep] = 3.4
	c[perf.OpScalarChain] = 1.2
	c[perf.OpScalarStore] = 0.55
	// Transcendentals per element: wider vectors amortize setup, but each
	// element still flows through the single vector pipe.
	c[perf.OpExp] = 1.9
	c[perf.OpLog] = 3.0
	c[perf.OpSqrt] = 1.8
	c[perf.OpErf] = 5.5
	c[perf.OpCND] = 6.0
	c[perf.OpInvCND] = 9.95
	// From Table II: 25.134e9 uniforms/s over 60 cores at 1.09 GHz = 2.6
	// cycles/number.
	c[perf.OpRNG] = 2.6
	return m
}

// Machines returns the two modelled architectures in paper order.
func Machines() []*Machine { return []*Machine{SNBEP(), KNC()} }

// ByName returns the machine with the given short name, or nil.
func ByName(name string) *Machine {
	for _, m := range Machines() {
		if strings.EqualFold(m.Name, name) {
			return m
		}
	}
	return nil
}

// Bound classifies what limits a predicted execution.
type Bound int

const (
	// ComputeBound means issue-rate limited.
	ComputeBound Bound = iota
	// BandwidthBound means DRAM-bandwidth limited.
	BandwidthBound
)

// String returns "compute" or "bandwidth".
func (b Bound) String() string {
	if b == BandwidthBound {
		return "bandwidth"
	}
	return "compute"
}

// Prediction is the modelled execution of one workload on one machine.
type Prediction struct {
	Machine *Machine
	// ComputeSec is the issue-rate-limited time.
	ComputeSec float64
	// MemSec is the bandwidth-limited time.
	MemSec float64
	// Sec is the predicted wall time: max(ComputeSec, MemSec).
	Sec float64
	// Bound reports which side of the roofline the workload sits on.
	Bound Bound
	// Cycles is the total dynamic issue-slot cost across all cores.
	Cycles float64
	// GFLOPs is the achieved flop rate implied by Sec.
	GFLOPs float64
}

// Predict models the execution of the given operation mix on m, assuming the
// workload is parallelized across all cores with negligible imbalance (all
// paper kernels are embarrassingly parallel across options/paths).
func (m *Machine) Predict(c perf.Counts) Prediction {
	var cycles float64
	for op := 0; op < perf.NumOps; op++ {
		cycles += m.Cost[op] * float64(c.N[op])
	}
	computeSec := cycles / (float64(m.Cores()) * m.ClockGHz * 1e9)
	memSec := float64(c.BytesRead+c.BytesWritten) / (m.StreamBW * 1e9)
	p := Prediction{
		Machine:    m,
		ComputeSec: computeSec,
		MemSec:     memSec,
		Cycles:     cycles,
	}
	if memSec > computeSec {
		p.Sec, p.Bound = memSec, BandwidthBound
	} else {
		p.Sec, p.Bound = computeSec, ComputeBound
	}
	if p.Sec > 0 {
		p.GFLOPs = float64(c.FLOPs()) / p.Sec / 1e9
	}
	return p
}

// Throughput returns modelled work items per second for the mix, using
// Counts.Items as the item count.
func (m *Machine) Throughput(c perf.Counts) float64 {
	p := m.Predict(c)
	if p.Sec == 0 { // finlint:ignore floateq exact-zero guard before dividing
		return 0
	}
	return float64(c.Items) / p.Sec
}

// BandwidthBoundThroughput returns the paper-style bandwidth roof for a
// workload that moves bytesPerItem of DRAM traffic per work item: B /
// bytesPerItem items per second (Sec. IV-A3 uses B/40 for Black-Scholes).
func (m *Machine) BandwidthBoundThroughput(bytesPerItem float64) float64 {
	return m.StreamBW * 1e9 / bytesPerItem
}

// ComputeBoundThroughput returns the flop roof for a workload performing
// flopsPerItem per work item: peak / flopsPerItem items per second (the
// paper's binomial-tree bound uses 3N(N+1)/2 flops per option).
func (m *Machine) ComputeBoundThroughput(flopsPerItem float64) float64 {
	return m.PeakDPGFLOPs * 1e9 / flopsPerItem
}

// TableI renders the Table I system-configuration comparison.
func TableI() string {
	s, k := SNBEP(), KNC()
	var b strings.Builder
	row := func(name, sv, kv string) { fmt.Fprintf(&b, "%-34s %14s %14s\n", name, sv, kv) }
	row("", s.Name, k.Name)
	row("Sockets x Cores x SMT",
		fmt.Sprintf("%d x %d x %d", s.Sockets, s.CoresPerSocket, s.SMT),
		fmt.Sprintf("%d x %d x %d", k.Sockets, k.CoresPerSocket, k.SMT))
	row("Clock (GHz)", fmt.Sprintf("%.2f", s.ClockGHz), fmt.Sprintf("%.2f", k.ClockGHz))
	row("Single Precision GFLOP/s", fmt.Sprintf("%.0f", s.PeakSPGFLOPs), fmt.Sprintf("%.0f", k.PeakSPGFLOPs))
	row("Double Precision GFLOP/s", fmt.Sprintf("%.0f", s.PeakDPGFLOPs), fmt.Sprintf("%.0f", k.PeakDPGFLOPs))
	l3 := func(m *Machine) string {
		if m.L3KB == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", m.L3KB)
	}
	row("L1 / L2 / L3 Cache (KB)",
		fmt.Sprintf("%d / %d / %s", s.L1KB, s.L2KB, l3(s)),
		fmt.Sprintf("%d / %d / %s", k.L1KB, k.L2KB, l3(k)))
	row("DRAM (GB)", fmt.Sprintf("%.0f", s.DRAMGB), fmt.Sprintf("%.0f GDDR", k.DRAMGB))
	row("STREAM Bandwidth (GB/s)", fmt.Sprintf("%.0f", s.StreamBW), fmt.Sprintf("%.0f", k.StreamBW))
	row("PCIe Bandwidth (GB/s)", "-", fmt.Sprintf("%.0f", k.PCIeBW))
	return b.String()
}
