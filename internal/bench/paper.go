package bench

// Paper reference values. Values the paper prints as numbers (Table II,
// the Crank-Nicolson options/second figures in Sec. IV-E3, the roofline
// bounds) are Stated. Bar heights that appear only in figures are Derived
// here from relations the paper states in prose, with the derivation
// recorded; EXPERIMENTS.md carries the same provenance notes.

// Fig. 4 — Black-Scholes, millions of options per second.
//
// Derivation chain: B/40 bounds are 1.9e9 (SNB-EP) and 3.75e9 (KNC)
// [stated]; "SNB-EP achieves 84% of the bound" => advanced SNB = 1.596e9;
// "KNC achieves 60%" => advanced KNC = 2.25e9 [stated percentages]. "On
// KNC, the reference version is 3x slower than on SNB-EP" and "performance
// improves by 10x" with AOS->SOA; "VML ... shows no benefit over SVML" on
// KNC => intermediate KNC = advanced KNC = 2.25e9, reference KNC = 225e6,
// reference SNB = 675e6. Intermediate SNB is the one bar with no stated
// relation; the paper says VML improves on SVML on SNB-EP, so it lies
// between reference and advanced (recorded as 1.2e9, figure-eyeball).
var paperFig4 = map[string]map[string]float64{
	"Basic (Reference, AOS)":    {ColSNB: 675e6, ColKNC: 225e6},
	"Intermediate (AOS to SOA)": {ColSNB: 1.2e9, ColKNC: 2.25e9},
	"Advanced (Using VML)":      {ColSNB: 1.596e9, ColKNC: 2.25e9},
}

var paperFig4Bounds = map[string]float64{ColSNB: 1.9e9, ColKNC: 3.75e9}

// Fig. 5 — binomial tree, options per second at N=1024.
//
// Derivation: compute bound = peak / (3N(N+1)/2) = 219.8e3 (SNB-EP) and
// 675.4e3 (KNC) [stated formula]; "SNB-EP comes within 10% of this bound"
// => advanced SNB = 198e3; "KNC comes within 30%" => advanced KNC = 473e3
// ("overall, KNC is 2.6x faster than SNB-EP": 473/198 = 2.4x, consistent
// to rounding). "SIMD across options hardly improves performance" and
// "combined with register tiling, performance increases by more than 2x"
// => reference/intermediate SNB ~ 95e3; "KNC is 1.4x faster than SNB-EP"
// for the reference => reference KNC ~ 133e3; "loop unrolling ... KNC ...
// as high as 1.4x" splits KNC's advanced into 338e3 (tiled) and 473e3
// (tiled+unrolled); unrolling has "little effect" on SNB-EP.
var paperFig5N1024 = map[string]map[string]float64{
	"Basic (Reference)":                  {ColSNB: 95e3, ColKNC: 133e3},
	"Intermediate (SIMD across options)": {ColSNB: 97e3, ColKNC: 136e3},
	"Advanced (Register tiling)":         {ColSNB: 198e3, ColKNC: 338e3},
	"Advanced (+unroll)":                 {ColSNB: 198e3, ColKNC: 473e3},
}

var paperFig5N1024Bounds = map[string]float64{ColSNB: 219.8e3, ColKNC: 675.4e3}

// Fig. 6 — Brownian bridge, 64-step double-precision paths per second.
//
// Derivation: "at the basic level ... KNC is 25% slower than SNB-EP";
// with intermediate optimizations "both architectures are memory
// bandwidth-bound, and the performance of KNC exceeds that of SNB-EP by
// the difference [in] their memory bandwidths" (150/76 = 1.97x); the
// streamed traffic is 512 B of normals in plus 520 B of path out per
// simulation, giving bounds of 73.6e6 and 145e6; "the advanced
// optimizations allow both architectures to become compute-bound. KNC is
// 2x faster than SNB-EP". Absolute heights are figure-eyeball consistent
// with a 300e6 y-axis: basic 30e6/22.5e6, advanced ~135e6/270e6.
var paperFig6 = map[string]map[string]float64{
	"Basic (pragma simd, omp, unroll)": {ColSNB: 30e6, ColKNC: 22.5e6},
	"Intermediate (SIMD across paths)": {ColSNB: 70e6, ColKNC: 138e6},
	"Advanced (interleaved RNG)":       {ColSNB: 110e6, ColKNC: 220e6},
	"Advanced (cache-to-cache)":        {ColSNB: 135e6, ColKNC: 270e6},
}

var paperFig6Bounds = map[string]float64{ColSNB: 73.6e6, ColKNC: 145.3e6}

// Table II — all values stated verbatim in the paper.
var paperTab2 = map[string]map[string]float64{
	"options/sec (stream RNG)":  {ColSNB: 29813, ColKNC: 92722},
	"options/sec (comp. RNG)":   {ColSNB: 5556, ColKNC: 16366},
	"normally-dist. DP RNG/sec": {ColSNB: 1.79e9, ColKNC: 5.21e9},
	"uniform DP RNG/sec":        {ColSNB: 13.31e9, ColKNC: 25.134e9},
}

// Fig. 8 — Crank-Nicolson, options per second (256 prices x 1000 steps).
//
// "the performance improves to about 4.4K options/second for SNB-EP and
// 7.3K options/second for KNC" [stated]; "performance increases to 6.4K
// options/second on SNB-EP and 11.4K options/second on KNC" [stated];
// "the gain due to SIMD ... is about 3.1X and 4.1X respectively" =>
// reference = 6.4K/3.1 = 2.06K and 11.4K/4.1 = 2.78K ("KNC is only 1.3x
// faster than SNB-EP" for the reference, consistent).
var paperFig8 = map[string]map[string]float64{
	"Basic (Reference)":                        {ColSNB: 2065, ColKNC: 2780},
	"Advanced (Manual SIMD for implicit step)": {ColSNB: 4400, ColKNC: 7300},
	"Advanced (Data structure transform)":      {ColSNB: 6400, ColKNC: 11400},
}

// Sec. V — Ninja gap summary: best/basic averaged across kernels, and the
// optimized KNC/SNB-EP ratios by roofline class.
const (
	paperNinjaSNB         = 1.9
	paperNinjaKNC         = 4.0
	paperOptimizedRatioCB = 2.5 // compute-bound kernels
	paperOptimizedRatioBB = 2.0 // bandwidth-bound kernels
)
