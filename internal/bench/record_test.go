package bench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"finbench/internal/benchreg"
)

// quickOpts keeps Collect fast enough for the tier-1 suite: the test
// verifies plumbing (keys, units, mixes, round-trip), not timing quality.
var quickOpts = benchreg.Opts{Warmup: 1, Reps: 2, MinDuration: time.Millisecond}

func TestCollectSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("host timing in -short mode")
	}
	snap, err := Collect(0.01, quickOpts, "all")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Kernels) < 15 {
		t.Fatalf("only %d kernels collected; every Measure experiment must contribute", len(snap.Kernels))
	}
	seen := map[string]bool{}
	experiments := map[string]bool{}
	for _, k := range snap.Kernels {
		if seen[k.Key()] {
			t.Errorf("duplicate kernel key %q", k.Key())
		}
		seen[k.Key()] = true
		experiments[k.Experiment] = true
		if k.OpsPerSec <= 0 || k.MedianSec <= 0 {
			t.Errorf("%s: non-positive timing (ops=%g sec=%g)", k.Key(), k.OpsPerSec, k.MedianSec)
		}
		if k.Units == "" || k.Reps != quickOpts.Reps || k.Items <= 0 {
			t.Errorf("%s: incomplete record %+v", k.Key(), k)
		}
	}
	for _, id := range []string{"fig4", "fig5", "fig6", "tab2", "fig8", "ablate-rng"} {
		if !experiments[id] {
			t.Errorf("experiment %s missing from snapshot", id)
		}
	}
	// The five paper experiments carry op mixes.
	for _, id := range []string{"fig4", "fig5", "fig6", "tab2", "fig8"} {
		if len(snap.Mixes[id]) == 0 {
			t.Errorf("experiment %s has no op mix", id)
		}
	}
	if snap.Env.GoVersion == "" {
		t.Error("snapshot missing env fingerprint")
	}

	// Full pipeline: write -> read -> self-check is green.
	path := filepath.Join(t.TempDir(), "BENCH_t.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := benchreg.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	report := benchreg.Check(snap, loaded, benchreg.DefaultGate())
	if report.Failed(true) || len(report.Regressions) != 0 {
		t.Fatalf("self-check regressed:\n%s", report.Table())
	}
}

func TestCollectSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("host timing in -short mode")
	}
	snap, err := Collect(0.01, quickOpts, "fig4")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range snap.Kernels {
		if k.Experiment != "fig4" {
			t.Fatalf("unexpected experiment %q in filtered snapshot", k.Experiment)
		}
	}
	if len(snap.Kernels) != 6 {
		t.Fatalf("fig4 has %d measured kernels, want 6 (4 full-batch + 2 small-batch)", len(snap.Kernels))
	}
}

func TestCollectRejectsBadInputs(t *testing.T) {
	if _, err := Collect(0, quickOpts, "all"); err == nil || !strings.Contains(err.Error(), "scale") {
		t.Errorf("scale 0: err = %v", err)
	}
	if _, err := Collect(1.5, quickOpts, "all"); err == nil {
		t.Error("scale > 1 accepted")
	}
	if _, err := Collect(0.01, quickOpts, "no-such-experiment"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// tab1 exists but is model-only: selecting it alone yields no kernels.
	if _, err := Collect(0.01, quickOpts, "tab1"); err == nil || !strings.Contains(err.Error(), "no Measure") {
		t.Errorf("model-only experiment: err = %v", err)
	}
}

// Collect must restore the interactive sampling preset it replaces.
func TestCollectRestoresSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("host timing in -short mode")
	}
	before := Sampling
	if _, err := Collect(0.01, quickOpts, "fig4"); err != nil {
		t.Fatal(err)
	}
	if Sampling != before {
		t.Fatalf("Sampling left as %+v, want %+v restored", Sampling, before)
	}
}
