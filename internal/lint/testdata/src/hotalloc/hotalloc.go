// Package hotalloc holds seeded violations and clean counterparts for the
// hotalloc pass.
package hotalloc // finlint:hot — test package simulating a kernel

import "fmt"

type point struct{ x, y float64 }

// BadAllocs allocates inside loops four different ways.
func BadAllocs(n int, sink func(any)) []point {
	var out []point
	grow := func() {
		for i := 0; i < n; i++ {
			out = append(out, point{x: float64(i)}) // seeded violation (x2: literal + captured append)
		}
	}
	grow()
	var total float64
	for i := 0; i < n; i++ {
		buf := make([]float64, 8) // seeded violation (make)
		total += buf[0]
		sink(i) // seeded violation (interface box)
	}
	for i := 0; i < n; i++ {
		_ = fmt.Sprint(i) // seeded violation (variadic interface box)
	}
	_ = total
	return out
}

// GoodHoisted keeps the hot loop allocation-free: the buffer is hoisted
// and the append target is loop-local. Not flagged.
func GoodHoisted(n int) float64 {
	buf := make([]float64, 8)
	var sum float64
	for i := 0; i < n; i++ {
		buf[i%8] = float64(i)
		sum += buf[i%8]
	}
	local := make([]int, 0, n)
	for i := 0; i < n; i++ {
		local = append(local, i)
	}
	return sum + float64(len(local))
}

// IgnoredSetup allocates per iteration by design: a cold setup loop.
func IgnoredSetup(n int) [][]float64 {
	grids := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		// finlint:ignore hotalloc cold setup loop, runs once per run
		grids = append(grids, make([]float64, 64))
	}
	return grids
}
