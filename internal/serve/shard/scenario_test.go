package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"finbench/internal/resilience"
	"finbench/internal/scenario"
)

func scenarioBody(t *testing.T, gens bool) []byte {
	t.Helper()
	req := &scenario.Request{
		Portfolio: []scenario.Position{
			{Type: "call", Spot: 100, Strike: 105, Expiry: 0.5, Quantity: 5},
			{Type: "put", Spot: 95, Strike: 100, Expiry: 1, Quantity: -2},
			{Spot: 110, Strike: 100, Expiry: 2},
		},
		Grid: scenario.Grid{
			SpotShocks: []float64{-0.2, -0.1, 0, 0.1, 0.2},
			VolShocks:  []float64{-0.05, 0, 0.05},
			RateShifts: []float64{-0.01, 0.01},
		},
	}
	if gens {
		req.Generators = []scenario.Generator{
			{Model: scenario.ModelHeston, Scenarios: 6, Seed: 21},
			{Model: scenario.ModelJump, Scenarios: 5, Seed: 22},
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestScenarioRoutedBitIdentical is the tentpole invariant: a /scenario
// 200 scatter-gathered across replicas is byte-for-byte what a lone
// replica answers, generators included, at any replica count.
func TestScenarioRoutedBitIdentical(t *testing.T) {
	for _, gens := range []bool{false, true} {
		for _, n := range []int{1, 2, 3} {
			urls, _, _ := newBackends(t, n)
			router := newRouter(t, Config{Backends: urls})
			front := httptest.NewServer(router)
			body := scenarioBody(t, gens)

			resp, routed := post(t, front.URL, "/scenario", body)
			if resp.StatusCode != 200 {
				t.Fatalf("gens=%v n=%d: routed status %d: %s", gens, n, resp.StatusCode, routed)
			}
			dresp, direct := post(t, urls[0], "/scenario", body)
			if dresp.StatusCode != 200 {
				t.Fatalf("gens=%v n=%d: direct status %d", gens, n, dresp.StatusCode)
			}
			if !bytes.Equal(routed, direct) {
				t.Errorf("gens=%v n=%d: routed body differs from lone replica\n routed: %s\n direct: %s",
					gens, n, routed, direct)
			}
			parts := resp.Header.Get("X-Finserve-Partitions")
			if n >= 2 {
				if p, _ := strconv.Atoi(parts); p < 2 {
					t.Errorf("gens=%v n=%d: X-Finserve-Partitions = %q, want >= 2", gens, n, parts)
				}
			} else if parts != "" {
				t.Errorf("n=1 routed request reported partitions %q", parts)
			}
			front.Close()
		}
	}
}

// TestScenarioPartitionFailover: a replica dying before the scatter is
// discovered on the request path; its closed-form partitions fail over
// and the merged 200 still matches a lone live replica byte-for-byte.
func TestScenarioPartitionFailover(t *testing.T) {
	urls, _, https := newBackends(t, 3)
	https[0].Close() // dead, but optimistically healthy: no Start()

	router, err := New(Config{
		Backends:       urls,
		HealthInterval: time.Hour,
		MaxAttempts:    3,
		Backoff:        resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	front := httptest.NewServer(router)
	defer front.Close()

	body := scenarioBody(t, false) // closed-form only: every partition may fail over
	_, direct := post(t, urls[1], "/scenario", body)
	for i := 0; i < 5; i++ {
		resp, routed := post(t, front.URL, "/scenario", body)
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, routed)
		}
		if !bytes.Equal(routed, direct) {
			t.Fatalf("request %d: failed-over merge differs from lone replica", i)
		}
	}
	if snap := router.Snapshot(); snap.Failovers == 0 {
		t.Error("no failovers recorded despite a dead replica in the scatter set")
	}
}

// TestScenarioMonteCarloPartitionSingleAttempt: a generator partition
// landing on a failing replica is never re-attempted — the failure
// passes through — while closed-form grid partitions retry.
func TestScenarioMonteCarloPartitionSingleAttempt(t *testing.T) {
	var hits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","in_flight_units":0,"max_units":1,"queue_depth":0,"uptime_s":1}`)
			return
		}
		hits.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()

	router := newRouter(t, Config{
		Backends:    []string{bad.URL},
		MaxAttempts: 4,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	front := httptest.NewServer(router)
	defer front.Close()

	// One generator, no grid: a single Monte Carlo partition (routed as a
	// plain single dispatch on one replica).
	mcOnly, err := json.Marshal(&scenario.Request{
		Portfolio:  []scenario.Position{{Spot: 100, Strike: 100, Expiry: 1}},
		Grid:       scenario.Grid{SpotShocks: []float64{0}},
		Generators: []scenario.Generator{{Model: scenario.ModelJump, Scenarios: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := post(t, front.URL, "/scenario", mcOnly)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("MC scenario against failing replica: status %d, want 500 pass-through", resp.StatusCode)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("Monte Carlo scenario hit the replica %d times, want exactly 1", got)
	}

	hits.Store(0)
	post(t, front.URL, "/scenario", scenarioBody(t, false))
	if got := hits.Load(); got < 2 {
		t.Errorf("closed-form scenario attempted %d times, want retries", got)
	}
}

// TestScenarioSubRangePassThrough: a request that already carries a
// cells sub-range is someone else's partition — the router forwards it
// whole instead of re-splitting.
func TestScenarioSubRangePassThrough(t *testing.T) {
	urls, _, _ := newBackends(t, 2)
	router := newRouter(t, Config{Backends: urls})
	front := httptest.NewServer(router)
	defer front.Close()

	var req scenario.Request
	if err := json.Unmarshal(scenarioBody(t, false), &req); err != nil {
		t.Fatal(err)
	}
	req.Cells = &scenario.Cells{Start: 3, Count: 4}
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, routed := post(t, front.URL, "/scenario", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, routed)
	}
	if resp.Header.Get("X-Finserve-Partitions") != "" {
		t.Error("sub-range request was re-split by the router")
	}
	if resp.Header.Get("X-Finserve-Replica") == "" {
		t.Error("pass-through 200 missing X-Finserve-Replica")
	}
	_, direct := post(t, urls[0], "/scenario", body)
	if !bytes.Equal(routed, direct) {
		t.Error("pass-through sub-range differs from direct answer")
	}
}

// TestScenarioInvalid400PassThrough: validation stays with the backend;
// the router forwards its 400 without splitting.
func TestScenarioInvalid400PassThrough(t *testing.T) {
	urls, _, _ := newBackends(t, 2)
	router := newRouter(t, Config{Backends: urls})
	front := httptest.NewServer(router)
	defer front.Close()

	for _, body := range []string{
		`{"portfolio":[]}`,
		`{"portfolio":[{"spot":-1,"strike":100,"expiry":1}]}`,
		`not json`,
	} {
		resp, _ := post(t, front.URL, "/scenario", []byte(body))
		if resp.StatusCode != 400 {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if snap := router.Snapshot(); snap.ScenarioScattered != 0 {
		t.Errorf("invalid requests were scattered: %d", snap.ScenarioScattered)
	}
}

// TestScenarioRouterStatsz: the scatter counters show up in the
// router's snapshot.
func TestScenarioRouterStatsz(t *testing.T) {
	urls, _, _ := newBackends(t, 2)
	router := newRouter(t, Config{Backends: urls})
	front := httptest.NewServer(router)
	defer front.Close()

	if resp, body := post(t, front.URL, "/scenario", scenarioBody(t, true)); resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	snap := router.Snapshot()
	if snap.ScenarioRequests != 1 || snap.ScenarioScattered != 1 {
		t.Errorf("scenario counters = %d/%d, want 1/1", snap.ScenarioRequests, snap.ScenarioScattered)
	}
	// 2 grid partitions + 2 generator blocks.
	if snap.ScenarioPartitions != 4 {
		t.Errorf("scenario partitions = %d, want 4", snap.ScenarioPartitions)
	}
}
