package shard

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"finbench/internal/serve"
	"finbench/internal/serve/pricecache"
)

// TestRouterCacheHitByteIdentity: through the router, a cache-hit 200
// must be byte-identical to the cold routed 200 — the stored bytes are a
// replica's verbatim answer, and the routed-bit-identity invariant makes
// any replica's answer the answer.
func TestRouterCacheHitByteIdentity(t *testing.T) {
	urls, _, _ := newBackends(t, 2)
	router := newRouter(t, Config{Backends: urls, CacheBytes: 1 << 20})
	front := httptest.NewServer(router)
	defer front.Close()

	body := priceBody("", 4)
	respCold, cold := post(t, front.URL, "/price", body)
	if respCold.StatusCode != 200 {
		t.Fatalf("cold status %d: %s", respCold.StatusCode, cold)
	}
	if got := respCold.Header.Get(pricecache.Header); got != "miss" {
		t.Fatalf("cold %s = %q, want miss", pricecache.Header, got)
	}
	if respCold.Header.Get("X-Finserve-Replica") == "" {
		t.Error("leader 200 missing routing headers")
	}

	respHit, hit := post(t, front.URL, "/price", body)
	if respHit.StatusCode != 200 {
		t.Fatalf("hit status %d: %s", respHit.StatusCode, hit)
	}
	if got := respHit.Header.Get(pricecache.Header); got != "hit" {
		t.Fatalf("hit %s = %q, want hit", pricecache.Header, got)
	}
	if respHit.Header.Get("X-Finserve-Replica") != "" {
		t.Error("cache hit claims a serving replica")
	}
	if !bytes.Equal(cold, hit) {
		t.Fatalf("router cache hit differs from cold 200:\ncold: %s\nhit:  %s", cold, hit)
	}

	snap := router.Snapshot()
	if snap.Cache == nil || snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Fatalf("router cache stats = %+v", snap.Cache)
	}
}

// TestRouterCacheBypasses pins the router-tier cacheability rule: Monte
// Carlo and the lattice methods bypass; undecodable bodies bypass (and
// still reach a backend for its 400).
func TestRouterCacheBypasses(t *testing.T) {
	urls, _, _ := newBackends(t, 1)
	router := newRouter(t, Config{Backends: urls, CacheBytes: 1 << 20})
	front := httptest.NewServer(router)
	defer front.Close()

	for _, method := range []string{"monte-carlo", "binomial-tree"} {
		for i := 0; i < 2; i++ {
			resp, body := post(t, front.URL, "/price", priceBody(method, 2))
			if resp.StatusCode != 200 {
				t.Fatalf("%s status %d: %s", method, resp.StatusCode, body)
			}
			if got := resp.Header.Get(pricecache.Header); got != "bypass" {
				t.Fatalf("%s request %d: %s = %q, want bypass", method, i, pricecache.Header, got)
			}
		}
	}
	resp, _ := post(t, front.URL, "/price", []byte(`{"options":`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("undecodable body status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(pricecache.Header); got != "bypass" {
		t.Fatalf("undecodable body %s = %q, want bypass", pricecache.Header, got)
	}
	if snap := router.Snapshot(); snap.Cache.Entries != 0 {
		t.Fatalf("bypass traffic entered the cache: %+v", snap.Cache)
	}
}

// TestRouterCacheCollapse: concurrent identical closed-form requests
// while the leader routes must collapse to one backend exchange.
func TestRouterCacheCollapse(t *testing.T) {
	urls, servers, _ := newBackends(t, 2)
	_ = servers
	router := newRouter(t, Config{Backends: urls, CacheBytes: 1 << 20})
	front := httptest.NewServer(router)
	defer front.Close()

	body := priceBody("", 64)
	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := post(t, front.URL, "/price", body)
			if resp.StatusCode == 200 {
				bodies[i] = b
			}
		}(i)
	}
	wg.Wait()

	snap := router.Snapshot()
	if snap.Cache.Misses != 1 {
		t.Fatalf("burst routed %d backend exchanges, want 1: %+v", snap.Cache.Misses, snap.Cache)
	}
	if snap.Cache.Collapsed == 0 {
		t.Fatalf("no singleflight collapse under identical burst: %+v", snap.Cache)
	}
	var ref []byte
	for i, b := range bodies {
		if b == nil {
			t.Fatalf("request %d failed", i)
		}
		if ref == nil {
			ref = b
		} else if !bytes.Equal(ref, b) {
			t.Fatalf("burst responses differ")
		}
	}
}

// TestRouterCacheDegradedUncacheable: a degraded 200 must not enter the
// router cache — it reflects the replica's overload state, not the
// request.
func TestRouterCacheDegradedUncacheable(t *testing.T) {
	if cacheable200([]byte(`{"results":[{"price":1}],"degraded":true}`)) {
		t.Fatal("degraded 200 classified cacheable")
	}
	if !cacheable200([]byte(`{"results":[{"price":1}]}`)) {
		t.Fatal("clean 200 classified uncacheable")
	}
	if cacheable200([]byte(`not json`)) {
		t.Fatal("unparseable 200 classified cacheable")
	}
}

// TestRouterCacheKeyCanonicalization: the router key builder inherits
// the digest equivalences and excludes transport fields (deadline_ms).
func TestRouterCacheKeyCanonicalization(t *testing.T) {
	a, okA := routerCacheKey([]byte(`{"options":[{"spot":100,"strike":95,"expiry":1}]}`))
	b, okB := routerCacheKey([]byte(`{"method":"closed-form","options":[{"type":"call","style":"european","spot":100,"strike":95,"expiry":1}]}`))
	if !okA || !okB || a != b {
		t.Fatal("canonically equal bodies keyed differently")
	}
	c, okC := routerCacheKey([]byte(`{"options":[{"spot":100,"strike":95,"expiry":1}],"deadline_ms":250}`))
	if !okC || a != c {
		t.Fatal("deadline_ms must not affect the content address")
	}
	d, okD := routerCacheKey([]byte(`{"options":[{"type":"put","spot":100,"strike":95,"expiry":1}]}`))
	if !okD || a == d {
		t.Fatal("put keyed same as call")
	}
	if _, ok := routerCacheKey([]byte(`{"method":"monte-carlo","options":[{"spot":100,"strike":95,"expiry":1}]}`)); ok {
		t.Fatal("monte-carlo body classified cacheable")
	}
	if _, ok := routerCacheKey([]byte(`{"method":"trinomial-tree","options":[{"spot":100,"strike":95,"expiry":1}]}`)); ok {
		t.Fatal("lattice body classified cacheable")
	}
	if _, ok := routerCacheKey([]byte(`garbage`)); ok {
		t.Fatal("undecodable body classified cacheable")
	}
}

// TestRouterCacheAllBackendsDownWaitersFail: when no replica is
// routable, the leader fails with errNoReplica mapped to 503 and a
// concurrent waiter must re-dispatch and fail the same way under its own
// deadline — never hang on the dead flight.
func TestRouterCacheAllBackendsDownWaitersFail(t *testing.T) {
	urls, _, https := newBackends(t, 1)
	router := newRouter(t, Config{
		Backends:       urls,
		CacheBytes:     1 << 20,
		HealthInterval: time.Hour, // freeze the optimistic healthy state
		MaxAttempts:    1,
	})
	front := httptest.NewServer(router)
	defer front.Close()
	https[0].Close() // kill the only backend after boot

	body := priceBody("", 2)
	const n = 4
	var wg sync.WaitGroup
	codes := make([]int, n)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := post(t, front.URL, "/price", body)
			codes[i] = resp.StatusCode
		}(i)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("requests hung with all backends down")
	}
	for i, code := range codes {
		if code == 200 {
			t.Errorf("request %d got 200 with all backends down", i)
		}
	}
	if snap := router.Snapshot(); snap.Cache.Entries != 0 {
		t.Fatalf("failure entered the cache: %+v", snap.Cache)
	}
}

// TestRouterCacheVsDirectBitIdentical: a router cache hit equals the
// direct single-backend answer modulo the volatile elapsed_us — checked
// structurally like TestRoutedBitIdentical.
func TestRouterCacheVsDirectBitIdentical(t *testing.T) {
	urls, _, _ := newBackends(t, 2)
	router := newRouter(t, Config{Backends: urls, CacheBytes: 1 << 20})
	front := httptest.NewServer(router)
	defer front.Close()

	body := priceBody("", 8)
	post(t, front.URL, "/price", body) // warm
	resp, hit := post(t, front.URL, "/price", body)
	if resp.StatusCode != 200 || resp.Header.Get(pricecache.Header) != "hit" {
		t.Fatalf("warm request: status %d header %q", resp.StatusCode, resp.Header.Get(pricecache.Header))
	}
	dresp, direct := post(t, urls[0], "/price", body)
	if dresp.StatusCode != 200 {
		t.Fatalf("direct status %d", dresp.StatusCode)
	}
	var a, b serve.PriceResponse
	if err := json.Unmarshal(hit, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(direct, &b); err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result count %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i].Price != b.Results[i].Price {
			t.Errorf("option %d: cached %v direct %v", i, a.Results[i].Price, b.Results[i].Price)
		}
	}
	if a.Method != b.Method || a.Config != b.Config {
		t.Errorf("effective config differs: %+v vs %+v", a, b)
	}
}

// TestRouterForwardsReplicaCacheHeader: a cache-less router fronting a
// cache-enabled replica must forward the replica's X-Finserve-Cache
// outcome verbatim, so a replica-tier deployment still reports its
// observed hit rate at the client (loadgen counts these headers).
func TestRouterForwardsReplicaCacheHeader(t *testing.T) {
	s := serve.New(serve.Config{CacheBytes: 1 << 20, CoalesceMaxBatch: 1, ProfileEvery: -1})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Close()
	router := newRouter(t, Config{Backends: []string{hs.URL}})
	front := httptest.NewServer(router)
	defer front.Close()

	body := priceBody("closed-form", 4)
	respCold, cold := post(t, front.URL, "/price", body)
	if respCold.StatusCode != 200 {
		t.Fatalf("cold status %d: %s", respCold.StatusCode, cold)
	}
	if got := respCold.Header.Get(pricecache.Header); got != "miss" {
		t.Fatalf("cold response forwarded cache header %q, want miss", got)
	}
	respHit, hit := post(t, front.URL, "/price", body)
	if got := respHit.Header.Get(pricecache.Header); got != "hit" {
		t.Fatalf("warm response forwarded cache header %q, want hit", got)
	}
	if !bytes.Equal(cold, hit) {
		t.Fatalf("replica-tier hit differs from cold response through the router")
	}
}
