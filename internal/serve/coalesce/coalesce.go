// Package coalesce merges small concurrent closed-form pricing requests
// into SOA mega-batches. Throughput of the Advanced Black-Scholes engine
// grows with batch size (amortized VML chunks, one parallel region per
// batch instead of one per request), so the server trades a bounded
// coalescing delay — first ticket arms a window timer; the batch flushes
// at the timer or as soon as a size threshold is reached — for a much
// larger effective batch.
//
// Correctness rests on composition independence: the LevelAdvanced engine
// is purely elementwise, so pricing a request inside a mega-batch is
// bit-identical to pricing it alone (pinned by
// TestAdvancedCompositionIndependence at the repo root). Methods whose
// results depend on batch decomposition (Monte Carlo's per-worker RNG
// streams) must never be coalesced and are priced per-request by the
// server instead.
package coalesce // finlint:hot — the submit/flush path runs per request; allocation-free loops enforced by internal/lint

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"finbench"
)

// Ticket is one request's slice of a future mega-batch. The caller fills
// the input slices; after Price returns, Calls and Puts hold the priced
// rows for this ticket, copied out of the mega-batch so the batch scratch
// can be recycled (valid until the ticket is dropped or returned to the
// pool with PutTicket).
type Ticket struct {
	Spots, Strikes, Expiries []float64
	// Deadline bounds the flush that prices this ticket; zero means none.
	// It is also checked per ticket when results are distributed: a ticket
	// whose own deadline expired while riding a flush bounded by a later
	// deadline fails with context.DeadlineExceeded instead of returning a
	// price after its deadline.
	Deadline time.Time

	// Calls and Puts are filled by the flush on success.
	Calls, Puts []float64
	// BatchN is the size of the mega-batch this ticket was priced in.
	BatchN int
	// Coalesced reports whether other tickets shared the flush.
	Coalesced bool
	// Err is the flush error (context cancellation), if any.
	Err error

	done chan struct{}
}

// Stats is a snapshot of the coalescer's counters.
type Stats struct {
	// Flushes counts mega-batch pricings; SoloFlushes the subset that
	// contained a single ticket.
	Flushes, SoloFlushes uint64
	// CoalescedTickets counts tickets that shared a flush with at least
	// one other ticket; BatchedOptions sums options across all flushes.
	CoalescedTickets, BatchedOptions uint64
}

// Coalescer accumulates tickets and flushes them as one batch.
type Coalescer struct {
	mkt      finbench.Market
	window   time.Duration
	maxBatch int
	// profileEvery samples the op mix of every Nth flush via
	// finbench.ProfileBatch (0 disables).
	profileEvery uint64

	mu         sync.Mutex
	pending    []*Ticket
	pendingN   int
	timer      *time.Timer
	timerArmed bool
	closed     bool

	flushes, solo, coalesced, batched atomic.Uint64

	profMu sync.Mutex
	prof   finbench.OperationMix
}

// New builds a coalescer pricing against mkt. window is the maximum time
// the first ticket of a batch waits; maxBatch flushes early once that many
// options are pending. profileEvery samples the op mix of every Nth flush
// (0 disables sampling).
func New(mkt finbench.Market, window time.Duration, maxBatch int, profileEvery int) *Coalescer {
	c := &Coalescer{mkt: mkt, window: window, maxBatch: maxBatch}
	if profileEvery > 0 {
		c.profileEvery = uint64(profileEvery)
	}
	c.timer = time.AfterFunc(time.Hour, c.onTimer)
	c.timer.Stop()
	return c
}

// Price submits the ticket and blocks until its batch is flushed. It
// returns the ticket's error (nil on success). Concurrent callers are
// merged into the same batch when they arrive within the window.
func (c *Coalescer) Price(t *Ticket) error {
	if t.done == nil {
		t.done = make(chan struct{}, 1)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		t.Err = context.Canceled
		return t.Err
	}
	if c.pending == nil {
		c.pending = getTicketSlice()
	}
	c.pending = append(c.pending, t)
	c.pendingN += len(t.Spots)
	if c.pendingN >= c.maxBatch {
		// A threshold flush supersedes the window: disarm the timer so the
		// next batch's first ticket re-arms a full window instead of
		// inheriting this batch's near-expired one.
		if c.timerArmed {
			c.timerArmed = false
			c.timer.Stop()
		}
		batch := c.takeLocked()
		c.mu.Unlock()
		// The submitter whose ticket crossed the threshold prices the
		// batch on its own goroutine (no handoff latency).
		c.flush(batch)
	} else {
		if !c.timerArmed {
			c.timerArmed = true
			c.timer.Reset(c.window)
		}
		c.mu.Unlock()
	}
	<-t.done
	return t.Err
}

// Flush prices whatever is pending immediately (drain path).
func (c *Coalescer) Flush() {
	c.mu.Lock()
	batch := c.takeLocked()
	c.mu.Unlock()
	if len(batch) > 0 {
		c.flush(batch)
	}
}

// Close stops the timer and fails all pending tickets. The coalescer
// accepts no further tickets.
func (c *Coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	c.timerArmed = false
	c.timer.Stop()
	batch := c.takeLocked()
	c.mu.Unlock()
	for _, t := range batch {
		t.Err = context.Canceled
		// finlint:ignore hotalloc struct{}{} is zero-size; a send of it never heap-allocates
		t.done <- struct{}{}
	}
}

// Snapshot returns the current counters.
func (c *Coalescer) Snapshot() Stats {
	return Stats{
		Flushes:          c.flushes.Load(),
		SoloFlushes:      c.solo.Load(),
		CoalescedTickets: c.coalesced.Load(),
		BatchedOptions:   c.batched.Load(),
	}
}

// OpMix returns the accumulated sampled operation mix.
func (c *Coalescer) OpMix() finbench.OperationMix {
	c.profMu.Lock()
	out := c.prof
	c.profMu.Unlock()
	return out
}

func (c *Coalescer) onTimer() {
	c.mu.Lock()
	c.timerArmed = false
	batch := c.takeLocked()
	c.mu.Unlock()
	if len(batch) > 0 {
		c.flush(batch)
	}
}

// takeLocked detaches the pending batch. Caller holds c.mu.
func (c *Coalescer) takeLocked() []*Ticket {
	batch := c.pending
	c.pending = nil
	c.pendingN = 0
	return batch
}

// flush prices the batch as one SOA mega-batch and distributes results.
func (c *Coalescer) flush(batch []*Ticket) {
	n := 0
	var latest time.Time
	bounded := true
	for _, t := range batch {
		n += len(t.Spots)
		if t.Deadline.IsZero() {
			bounded = false
		} else if t.Deadline.After(latest) {
			latest = t.Deadline
		}
	}
	mega := GetBatch(n)
	lo := 0
	for _, t := range batch {
		copy(mega.Spots[lo:], t.Spots)
		copy(mega.Strikes[lo:], t.Strikes)
		copy(mega.Expiries[lo:], t.Expiries)
		lo += len(t.Spots)
	}
	// The flush deadline is the latest ticket deadline: when it fires,
	// every ticket in the batch has expired, so failing them all is
	// exact, not collateral damage. Tickets with earlier deadlines are
	// re-checked individually at distribution time below.
	ctx := context.Background()
	var cancel context.CancelFunc
	if bounded {
		ctx, cancel = context.WithDeadline(ctx, latest)
	}
	err := finbench.PriceBatchCtx(ctx, mega, c.mkt, finbench.LevelAdvanced)
	if cancel != nil {
		cancel()
	}

	flushIdx := c.flushes.Add(1)
	c.batched.Add(uint64(n))
	if len(batch) == 1 {
		c.solo.Add(1)
	} else {
		c.coalesced.Add(uint64(len(batch)))
	}
	// 1%c.profileEvery (not a literal 1) so profileEvery=1 samples every
	// flush: flushIdx%1 is always 0, never 1.
	if err == nil && c.profileEvery > 0 && flushIdx%c.profileEvery == 1%c.profileEvery {
		c.profile(mega)
	}

	now := time.Now()
	lo = 0
	for _, t := range batch {
		hi := lo + len(t.Spots)
		switch {
		case err != nil:
			t.Err = err
		case !t.Deadline.IsZero() && now.After(t.Deadline):
			// The flush beat the *latest* deadline in the batch, but this
			// ticket's own deadline has passed: its caller asked not to
			// receive an answer after it.
			t.Err = context.DeadlineExceeded
		default:
			t.Calls = sizedFloats(t.Calls, hi-lo)
			t.Puts = sizedFloats(t.Puts, hi-lo)
			copy(t.Calls, mega.Calls[lo:hi])
			copy(t.Puts, mega.Puts[lo:hi])
			t.BatchN = n
			t.Coalesced = len(batch) > 1
		}
		lo = hi
		// finlint:ignore hotalloc struct{}{} is zero-size; a send of it never heap-allocates
		t.done <- struct{}{}
	}
	PutBatch(mega)
	putTicketSlice(batch)
}

// profile re-prices the flushed batch with counters on (bit-identical
// writes) and folds the mix into the running profile. Called on a sampled
// subset of flushes; the doubled work is the observability budget.
func (c *Coalescer) profile(mega *finbench.Batch) {
	mix, err := finbench.ProfileBatch(mega, c.mkt, finbench.LevelAdvanced, 8)
	if err != nil {
		return
	}
	c.profMu.Lock()
	c.prof.Merge(mix)
	c.profMu.Unlock()
}
