package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"finbench/internal/perf"
)

// coverage records which indices fn visited and detects overlap.
func coverage(t *testing.T, n int, launch func(fn func(lo, hi int))) {
	t.Helper()
	visits := make([]int32, n)
	launch(func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000, 1001} {
		coverage(t, n, func(fn func(lo, hi int)) { For(n, fn) })
	}
}

func TestForWorkersCoversExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 16, 100} {
		coverage(t, 97, func(fn func(lo, hi int)) { ForWorkers(97, w, fn) })
	}
}

func TestForDynamicCoversExactlyOnce(t *testing.T) {
	for _, grain := range []int{1, 3, 10, 97, 200} {
		coverage(t, 97, func(fn func(lo, hi int)) { ForDynamic(97, grain, fn) })
	}
}

func TestForDynamicZeroGrain(t *testing.T) {
	coverage(t, 10, func(fn func(lo, hi int)) { ForDynamic(10, 0, fn) })
}

func TestForIndexedCoversExactlyOnce(t *testing.T) {
	coverage(t, 131, func(fn func(lo, hi int)) {
		ForIndexed(131, func(_, lo, hi int) { fn(lo, hi) })
	})
}

func TestForIndexedWorkerIdsDense(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	ForIndexed(1000, func(worker, lo, hi int) {
		mu.Lock()
		if seen[worker] {
			mu.Unlock()
			t.Errorf("worker id %d reused", worker)
			return
		}
		seen[worker] = true
		mu.Unlock()
	})
	if len(seen) == 0 {
		t.Fatal("no workers ran")
	}
	for id := range seen {
		if id < 0 || id >= len(seen) {
			t.Fatalf("worker id %d not dense in [0,%d)", id, len(seen))
		}
	}
}

func TestForEdgeCases(t *testing.T) {
	For(0, func(lo, hi int) { t.Error("called for n=0") })
	For(-5, func(lo, hi int) { t.Error("called for n<0") })
	For(10, nil) // must not panic
	ForDynamic(0, 4, func(lo, hi int) { t.Error("called for n=0") })
	ForIndexed(0, func(w, lo, hi int) { t.Error("called for n=0") })
}

func TestReduceFloat64Sum(t *testing.T) {
	// Sum of 1..n.
	n := 100000
	got := ReduceFloat64(n, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i + 1)
		}
		return s
	})
	want := float64(n) * float64(n+1) / 2
	if got != want {
		t.Fatalf("ReduceFloat64 = %g, want %g", got, want)
	}
}

func TestReduceFloat64Empty(t *testing.T) {
	if got := ReduceFloat64(0, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Fatalf("empty reduce = %g", got)
	}
}

func TestReduceDeterministic(t *testing.T) {
	// Partial sums are combined in index order, so repeated runs agree
	// bit-for-bit.
	f := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += 1.0 / float64(i+1)
		}
		return s
	}
	a := ReduceFloat64(12345, f)
	for r := 0; r < 5; r++ {
		if b := ReduceFloat64(12345, f); b != a {
			t.Fatalf("nondeterministic reduce: %g != %g", b, a)
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers < 1")
	}
}

// Property: For visits each index exactly once for arbitrary n.
func TestForCoverageQuick(t *testing.T) {
	f := func(nn uint16) bool {
		n := int(nn)%2000 + 1
		visits := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for _, v := range visits {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// withProcs temporarily raises GOMAXPROCS so the multi-worker paths run
// even on single-core machines (goroutines interleave regardless).
func withProcs(t *testing.T, n int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestForDynamicMultiWorker(t *testing.T) {
	withProcs(t, 4, func() {
		coverage(t, 1000, func(fn func(lo, hi int)) { ForDynamic(1000, 7, fn) })
		coverage(t, 10, func(fn func(lo, hi int)) { ForDynamic(10, 3, fn) })
	})
}

func TestForIndexedMultiWorker(t *testing.T) {
	withProcs(t, 4, func() {
		coverage(t, 1000, func(fn func(lo, hi int)) {
			ForIndexed(1000, func(_, lo, hi int) { fn(lo, hi) })
		})
		var mu sync.Mutex
		ids := map[int]bool{}
		ForIndexed(1000, func(worker, lo, hi int) {
			mu.Lock()
			ids[worker] = true
			mu.Unlock()
		})
		if len(ids) < 2 {
			t.Fatalf("expected multiple workers, got %d", len(ids))
		}
	})
}

func TestReduceFloat64MultiWorker(t *testing.T) {
	withProcs(t, 4, func() {
		n := 100000
		got := ReduceFloat64(n, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i + 1)
			}
			return s
		})
		want := float64(n) * float64(n+1) / 2
		if got != want {
			t.Fatalf("multi-worker reduce = %g, want %g", got, want)
		}
	})
}

func TestForMultiWorker(t *testing.T) {
	withProcs(t, 8, func() {
		coverage(t, 999, func(fn func(lo, hi int)) { For(999, fn) })
	})
}

func TestRunSlotsExactlyOnce(t *testing.T) {
	withProcs(t, 4, func() {
		for _, slots := range []int{1, 2, 3, 7, 64} {
			visits := make([]int32, slots)
			Run(slots, func(slot int) {
				atomic.AddInt32(&visits[slot], 1)
			})
			for s, v := range visits {
				if v != 1 {
					t.Fatalf("slots=%d: slot %d ran %d times", slots, s, v)
				}
			}
		}
	})
}

func TestRunEdgeCases(t *testing.T) {
	Run(0, func(int) { t.Error("called for slots=0") })
	Run(-3, func(int) { t.Error("called for slots<0") })
	Run(4, nil) // must not panic
}

// Slots may exceed the worker pool: excess tasks queue and still all run.
func TestRunMoreSlotsThanWorkers(t *testing.T) {
	withProcs(t, 2, func() {
		const slots = 50
		var ran int32
		Run(slots, func(int) { atomic.AddInt32(&ran, 1) })
		if ran != slots {
			t.Fatalf("ran %d of %d slots", ran, slots)
		}
	})
}

func TestForGuidedCoversExactlyOnce(t *testing.T) {
	for _, grain := range []int{1, 3, 10, 97, 200} {
		coverage(t, 97, func(fn func(lo, hi int)) { ForGuided(97, grain, fn) })
	}
	coverage(t, 10, func(fn func(lo, hi int)) { ForGuided(10, 0, fn) })
}

func TestForGuidedMultiWorker(t *testing.T) {
	withProcs(t, 4, func() {
		coverage(t, 1000, func(fn func(lo, hi int)) { ForGuided(1000, 4, fn) })
		coverage(t, 5, func(fn func(lo, hi int)) { ForGuided(5, 2, fn) })
		ForGuided(0, 1, func(lo, hi int) { t.Error("called for n=0") })
	})
}

// Guided handouts must shrink: the first chunk a region hands out is
// remaining/workers, the tail approaches the minimum grain.
func TestForGuidedChunksShrink(t *testing.T) {
	withProcs(t, 4, func() {
		var mu sync.Mutex
		sizes := map[int]int{} // lo -> chunk size
		ForGuided(1000, 2, func(lo, hi int) {
			mu.Lock()
			sizes[lo] = hi - lo
			mu.Unlock()
		})
		if sizes[0] < 100 {
			t.Fatalf("first guided chunk %d items, want a large head chunk", sizes[0])
		}
	})
}

func TestForDynamicAutoGrain(t *testing.T) {
	// grain <= 0 selects the heuristic; coverage must be unaffected.
	coverage(t, 10, func(fn func(lo, hi int)) { ForDynamic(10, 0, fn) })
	coverage(t, 5000, func(fn func(lo, hi int)) { ForDynamic(5000, -1, fn) })
	withProcs(t, 4, func() {
		coverage(t, 5000, func(fn func(lo, hi int)) { ForDynamic(5000, 0, fn) })
	})
	// The heuristic targets ~8 chunks per worker within [1, 4096].
	for _, tc := range []struct{ n, workers, want int }{
		{10, 4, 1},
		{3200, 4, 100},
		{1 << 22, 4, 4096},
		{64, 1, 8},
	} {
		if got := autoGrain(tc.n, tc.workers); got != tc.want {
			t.Errorf("autoGrain(%d, %d) = %d, want %d", tc.n, tc.workers, got, tc.want)
		}
	}
}

// ForDynamic with grain larger than n must still run everything (in one
// chunk) without touching the pool.
func TestForDynamicGrainExceedsN(t *testing.T) {
	withProcs(t, 4, func() {
		coverage(t, 5, func(fn func(lo, hi int)) { ForDynamic(5, 10, fn) })
	})
}

// n smaller than the worker count: every loop form must clamp and cover.
func TestSmallNManyWorkers(t *testing.T) {
	withProcs(t, 8, func() {
		for n := 1; n <= 3; n++ {
			coverage(t, n, func(fn func(lo, hi int)) { For(n, fn) })
			coverage(t, n, func(fn func(lo, hi int)) { ForDynamic(n, 1, fn) })
			coverage(t, n, func(fn func(lo, hi int)) { ForGuided(n, 1, fn) })
			coverage(t, n, func(fn func(lo, hi int)) {
				ForIndexed(n, func(_, lo, hi int) { fn(lo, hi) })
			})
		}
	})
}

// A nested For inside a pool task must complete rather than deadlock: the
// inner region's tasks are drained by the joining goroutine itself when
// every pool worker is busy with outer tasks.
func TestNestedForNoDeadlock(t *testing.T) {
	withProcs(t, 4, func() {
		const outer, inner = 16, 64
		var total int64
		For(outer, func(olo, ohi int) {
			for o := olo; o < ohi; o++ {
				For(inner, func(lo, hi int) {
					atomic.AddInt64(&total, int64(hi-lo))
				})
			}
		})
		if total != outer*inner {
			t.Fatalf("nested total = %d, want %d", total, outer*inner)
		}
	})
}

// Deeper nesting mixing schedule kinds.
func TestNestedMixedSchedules(t *testing.T) {
	withProcs(t, 4, func() {
		var total int64
		ForDynamic(8, 1, func(olo, ohi int) {
			for o := olo; o < ohi; o++ {
				ForGuided(32, 2, func(lo, hi int) {
					got := ReduceFloat64(hi-lo, func(a, b int) float64 { return float64(b - a) })
					atomic.AddInt64(&total, int64(got))
				})
			}
		})
		if total != 8*32 {
			t.Fatalf("nested total = %d, want %d", total, 8*32)
		}
	})
}

func TestForIndexedMergedCountsAndCoverage(t *testing.T) {
	withProcs(t, 4, func() {
		var c perf.Counts
		coverage(t, 1000, func(fn func(lo, hi int)) {
			ForIndexedMerged(1000, &c, func(worker, lo, hi int, local *perf.Counts) {
				if local == nil {
					t.Error("nil local counts with non-nil c")
					return
				}
				local.Add(perf.OpScalar, uint64(hi-lo))
				local.Items += uint64(hi - lo)
				fn(lo, hi)
			})
		})
		if got := c.Get(perf.OpScalar); got != 1000 {
			t.Fatalf("merged OpScalar = %d, want 1000", got)
		}
		if c.Items != 1000 {
			t.Fatalf("merged Items = %d, want 1000", c.Items)
		}
	})
}

func TestForIndexedMergedNilCounts(t *testing.T) {
	coverage(t, 100, func(fn func(lo, hi int)) {
		ForIndexedMerged(100, nil, func(_, lo, hi int, local *perf.Counts) {
			if local != nil {
				t.Error("expected nil local counts for nil c")
			}
			fn(lo, hi)
		})
	})
}

// Scheduling counters must account for every dispatched task once the
// region joins: dispatched == handoffs + steals, and forked regions show
// up in Jobs.
func TestSchedCountersBalance(t *testing.T) {
	withProcs(t, 4, func() {
		before := Sched()
		for i := 0; i < 50; i++ {
			For(256, func(lo, hi int) {})
		}
		d := Sched().Delta(before)
		if d.Jobs == 0 {
			t.Fatal("no forked regions recorded at GOMAXPROCS=4")
		}
		if d.Dispatched != d.Handoffs+d.Steals {
			t.Fatalf("dispatched=%d != handoffs=%d + steals=%d",
				d.Dispatched, d.Handoffs, d.Steals)
		}
		if d.Workers == 0 {
			t.Fatal("no pool workers after forked regions")
		}
	})
}

func TestSchedCountersSerial(t *testing.T) {
	before := Sched()
	ForWorkers(100, 1, func(lo, hi int) {})
	d := Sched().Delta(before)
	if d.Serial == 0 {
		t.Fatal("single-worker region not counted as serial")
	}
}
