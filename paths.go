package finbench

import (
	"fmt"

	"finbench/internal/brownian"
	"finbench/internal/mathx"
	"finbench/internal/parallel"
	"finbench/internal/rng"
	"finbench/internal/vec"
)

// PathSimulator generates geometric-Brownian-motion price paths using the
// Brownian-bridge construction (Sec. II-E / IV-C): the driving Wiener path
// is built depth-first with interleaved random-number generation, then
// mapped through S(t) = S0 exp((r - sigma^2/2) t + sigma W(t)).
//
// Successive calls to Simulate (and to SimulateTerminal) draw fresh
// randomness: each call folds a per-method call counter into the seed, so
// calling Simulate twice yields two independent sets of paths. The
// sequence is still fully reproducible — two simulators built with the
// same seed produce identical output call-for-call (first Simulate matches
// first Simulate, second matches second, and likewise for
// SimulateTerminal, whose counter advances independently). The call
// counters make a PathSimulator stateful; a single simulator must not be
// used from multiple goroutines concurrently.
type PathSimulator struct {
	// Steps per path; must be a power of two >= 2.
	Steps int
	// Horizon in years.
	Horizon float64
	// Seed makes simulation reproducible.
	Seed uint64

	bridge *brownian.Bridge

	// Per-method call counters, folded into the stream seed so repeated
	// calls do not replay the same randomness.
	simCalls  uint64
	termCalls uint64
}

// Seed-derivation tags separating the Simulate and SimulateTerminal
// stream families (arbitrary distinct constants).
const (
	seedTagSimulate uint64 = 0x51AD_E01F_0000_0001
	seedTagTerminal uint64 = 0x51AD_E01F_0000_0002
)

// NewPathSimulator builds a simulator for power-of-two steps (the bridge
// doubles per level).
func NewPathSimulator(steps int, horizon float64, seed uint64) (*PathSimulator, error) {
	if steps < 2 || steps&(steps-1) != 0 {
		return nil, fmt.Errorf("finbench: steps must be a power of two >= 2, got %d", steps)
	}
	depth := -1
	for s := steps; s > 1; s >>= 1 {
		depth++
	}
	return &PathSimulator{
		Steps:   steps,
		Horizon: horizon,
		Seed:    seed,
		bridge:  brownian.New(depth, horizon),
	}, nil
}

// Simulate generates n price paths for the given spot under the market's
// risk-neutral dynamics. The result has n rows of Steps+1 prices, starting
// at spot.
func (ps *PathSimulator) Simulate(n int, spot float64, m Market) [][]float64 {
	plen := ps.bridge.PathLen()
	flat := make([]float64, n*plen)
	seed := rng.DeriveSeed(ps.Seed, seedTagSimulate, ps.simCalls)
	ps.simCalls++
	ps.bridge.AdvancedInterleaved(seed, flat, n, interleaveWidth(n), nil)
	mu := m.Rate - m.Volatility*m.Volatility/2
	dt := ps.Horizon / float64(ps.Steps)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		w := flat[i*plen : (i+1)*plen]
		row := make([]float64, plen)
		for p := 0; p < plen; p++ {
			t := float64(p) * dt
			row[p] = spot * mathx.Exp(mu*t+m.Volatility*w[p])
		}
		out[i] = row
	}
	return out
}

// SimulateTerminal generates only the terminal prices of n paths —
// sufficient for European payoffs and far cheaper.
func (ps *PathSimulator) SimulateTerminal(n int, spot float64, m Market) []float64 {
	z := make([]float64, n)
	seed := rng.DeriveSeed(ps.Seed, seedTagTerminal, ps.termCalls)
	ps.termCalls++
	s := rng.NewStream(0, seed)
	s.NormalICDF(z)
	mu := (m.Rate - m.Volatility*m.Volatility/2) * ps.Horizon
	sig := m.Volatility * mathx.Sqrt(ps.Horizon)
	out := make([]float64, n)
	for i, zi := range z {
		out[i] = spot * mathx.Exp(mu+sig*zi)
	}
	return out
}

// interleaveWidth picks the SIMD lane width for the interleaved bridge:
// the pool's worker count clamped to the path count (no point in lanes
// without paths), capped at the vector ISA's maximum and rounded down to
// a power of two, which vec.New requires.
func interleaveWidth(n int) int {
	w := parallel.Workers()
	if w > n {
		w = n
	}
	if w > vec.MaxWidth {
		w = vec.MaxWidth
	}
	if w < 1 {
		w = 1
	}
	// Round down to a power of two.
	for w&(w-1) != 0 {
		w &= w - 1
	}
	return w
}
