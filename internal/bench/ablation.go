package bench

import (
	"fmt"
	"math"

	"finbench/internal/binomial"
	"finbench/internal/blackscholes"
	"finbench/internal/layout"
	"finbench/internal/machine"
	"finbench/internal/montecarlo"
	"finbench/internal/perf"
	"finbench/internal/rng"
	"finbench/internal/workload"
)

// Ablation experiments: parameter sweeps isolating the design choices the
// paper's advanced optimizations rest on. These go beyond the paper's
// figures (no paper column) but use the same modelling machinery.

func init() {
	registerAblateTile()
	registerAblateRNG()
	registerAblateQMC()
	registerAblateWidth()
}

// ablate-tile: the binomial register-tile depth trades Call-array traffic
// (1/TS per lane-step) against register pressure; the paper picks the tile
// "such that the Tile array may be allocated in a processor's register
// file" (Sec. IV-B2).
func registerAblateTile() {
	register(&Experiment{
		ID:          "ablate-tile",
		Title:       "Binomial register-tile depth sweep",
		Units:       "options/s",
		Description: "Modelled throughput of the tiled binomial reduction for TS in {2..64} at N=1024; the paper's choice sits at the knee.",
		Model: func(scale float64) (*Result, error) {
			gen := workload.DefaultOptionGen
			gen.TMax = 3
			nopt := 8 * scaleInt(2, scale, 1)
			const steps = 1024
			r := &Result{ID: "ablate-tile", Title: "Binomial tile sweep (N=1024, unrolled)", Units: "options/s"}
			for _, tile := range []int{2, 4, 8, 16, 32, 64} {
				model := modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
					binomial.Advanced(gen.GenerateAOS(nopt), steps, mkt, w, tile, true, c)
				})
				r.Rows = append(r.Rows, Row{
					Label: fmt.Sprintf("TS=%d", tile),
					Model: model,
					Prov:  None,
				})
			}
			r.Notes = append(r.Notes,
				"register files cap the realizable tile: 16 F64vec4 registers on SNB-EP, 32 F64vec8 on KNC; larger TS rows model cache-level tiling")
			return r, nil
		},
	})
}

// ablate-rng: the four normal transforms. The paper uses ICDF (branch-free,
// vectorizable); the ziggurat is the scalar-speed champion but relies on
// rejection branches that defeat SIMD.
func registerAblateRNG() {
	register(&Experiment{
		ID:          "ablate-rng",
		Title:       "Normal-transform method comparison",
		Units:       "normals/s",
		Description: "Host throughput of ICDF, Box-Muller, polar and ziggurat normal generation.",
		Model: func(scale float64) (*Result, error) {
			n := scaleInt(1000000, scale, 100000)
			r := &Result{ID: "ablate-rng", Title: "Normal transforms (modelled, ICDF only)", Units: "normals/s"}
			// Only ICDF has a calibrated vector cost (it is what the paper
			// measures); other methods are host-measured (measure mode).
			model := modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
				s := rng.NewStream(0, 1)
				s.C = c
				buf := make([]float64, n)
				s.NormalICDF(buf)
				c.Items = uint64(n)
			})
			r.Rows = append(r.Rows, Row{Label: "icdf (vectorizable)", Model: model, Prov: None})
			r.Notes = append(r.Notes, "run with -mode measure for the four-method host comparison")
			return r, nil
		},
		Measure: func(scale float64) (*Result, error) {
			n := scaleInt(2000000, scale, 100000)
			buf := make([]float64, n)
			r := &Result{ID: "ablate-rng", Title: "Normal transforms (host)", Units: "normals/s"}
			for _, m := range []rng.Method{rng.ICDF, rng.BoxMuller, rng.BoxMuller2, rng.ZigguratMethod} {
				method := m
				s := rng.NewStream(0, 1)
				r.Rows = append(r.Rows, hostRow(method.String(), n, func() { s.Normal(buf, method) }))
			}
			return r, nil
		},
	})
}

// ablate-qmc: Sobol + Brownian-bridge quasi-Monte Carlo versus
// pseudo-random Monte Carlo — the error at matched path budgets for the
// path-dependent Asian payoff (the bridge's purpose in Glasserman, the
// paper's bridge reference).
func registerAblateQMC() {
	register(&Experiment{
		ID:          "ablate-qmc",
		Title:       "QMC vs MC convergence (Asian option)",
		Units:       "abs error",
		Description: "Pricing error of plain MC and bridge+Sobol QMC at matched path counts, against a large-sample reference.",
		Model: func(scale float64) (*Result, error) {
			asian := montecarlo.AsianOption{S: 100, X: 100, T: 1, Steps: 32}
			refPaths := scaleInt(1<<18, scale, 1<<15)
			ref := montecarlo.AsianMC(asian, refPaths, 99, mkt)
			r := &Result{ID: "ablate-qmc", Title: "Asian option: MC vs bridge+Sobol QMC", Units: "abs error", Cols: []string{"MC", "QMC"}}
			for _, n := range []int{1 << 9, 1 << 11, 1 << 13} {
				nn := scaleInt(n, math.Sqrt(scale), 256)
				var mcErr float64
				const trials = 3
				for trial := uint64(0); trial < trials; trial++ {
					mc := montecarlo.AsianMC(asian, nn, 7+trial, mkt)
					mcErr += math.Abs(mc.Price - ref.Price)
				}
				mcErr /= trials
				qmc := montecarlo.AsianQMC(asian, nn, 3, 17, mkt)
				qmcErr := math.Abs(qmc.Price - ref.Price)
				r.Rows = append(r.Rows, Row{
					Label: fmt.Sprintf("n=%d", nn),
					Model: map[string]float64{"MC": mcErr, "QMC": qmcErr},
					Prov:  None,
				})
			}
			r.Notes = append(r.Notes,
				"columns here are MC and QMC error (not machines); QMC error should sit well below MC and shrink faster than n^-1/2")
			return r, nil
		},
	})
}

// ablate-width: modelled Black-Scholes throughput as a function of SIMD
// width, separating the lane-scaling benefit from the gather penalty that
// grows with width on the AOS layout.
func registerAblateWidth() {
	register(&Experiment{
		ID:          "ablate-width",
		Title:       "SIMD width sweep (Black-Scholes)",
		Units:       "options/s",
		Description: "Modelled KNC throughput at widths 1..8 for AOS (gathers grow with width) and SOA (pure lane scaling).",
		Model: func(scale float64) (*Result, error) {
			nopt := layout.PadTo(scaleInt(50000, scale, 4096), 8)
			gen := workload.DefaultOptionGen
			knc := machine.KNC()
			r := &Result{ID: "ablate-width", Title: "Width sweep on KNC", Units: "options/s", Cols: []string{"AOS", "SOA"}}
			for _, w := range []int{1, 2, 4, 8} {
				var cAOS, cSOA perf.Counts
				blackscholes.Basic(gen.GenerateAOS(nopt), mkt, w, &cAOS)
				blackscholes.Intermediate(gen.GenerateSOA(nopt), mkt, w, &cSOA)
				r.Rows = append(r.Rows, Row{
					Label: fmt.Sprintf("width=%d", w),
					Model: map[string]float64{"AOS": knc.Throughput(cAOS), "SOA": knc.Throughput(cSOA)},
					Prov:  None,
				})
			}
			r.Notes = append(r.Notes,
				"columns are AOS and SOA modelled on KNC; SOA scales with width while AOS saturates on gather cost")
			return r, nil
		},
	})
}
