package binomial

import (
	"context"

	"finbench/internal/mathx"
	"finbench/internal/workload"
)

// Trinomial lattice (Boyle): the other lattice method of the paper's
// taxonomy (Fig. 1, "lattice methods (binomial/trinomial trees)"). Each
// node branches up/middle/down with u = e^{sigma sqrt(2 dt)}, d = 1/u,
// m = 1; the extra degree of freedom gives smoother convergence than the
// binomial tree at equal step counts, which the tests verify.

// TriParams holds the discretized trinomial dynamics.
type TriParams struct {
	Steps      int
	U          float64 // up factor per step
	Pu, Pm, Pd float64 // branch probabilities
	Df         float64 // per-step discount
	logU       float64
}

// NewTriParams derives the Boyle trinomial parameters.
func NewTriParams(t float64, steps int, mkt workload.MarketParams) TriParams {
	dt := t / float64(steps)
	su := mathx.Exp(mkt.Sigma * mathx.Sqrt(dt/2))
	sd := 1 / su
	er := mathx.Exp(mkt.R * dt / 2)
	pu := (er - sd) / (su - sd)
	pu *= pu
	pd := (su - er) / (su - sd)
	pd *= pd
	logU := mkt.Sigma * mathx.Sqrt(2*dt)
	return TriParams{
		Steps: steps,
		U:     mathx.Exp(logU),
		Pu:    pu,
		Pm:    1 - pu - pd,
		Pd:    pd,
		Df:    mathx.Exp(-mkt.R * dt),
		logU:  logU,
	}
}

// PriceTrinomial prices a European call on the trinomial lattice.
func PriceTrinomial(s, x, t float64, steps int, mkt workload.MarketParams) float64 {
	v, _ := priceTrinomialDone(s, x, t, steps, mkt, nil)
	return v
}

// PriceTrinomialCtx is PriceTrinomial with cancellation checked every
// ctxLevelBlock lattice levels.
func PriceTrinomialCtx(cx context.Context, s, x, t float64, steps int, mkt workload.MarketParams) (float64, error) {
	done := cx.Done()
	if done == nil {
		return PriceTrinomial(s, x, t, steps, mkt), nil
	}
	if err := cx.Err(); err != nil {
		return 0, err
	}
	v, ok := priceTrinomialDone(s, x, t, steps, mkt, done)
	if !ok {
		return 0, cx.Err()
	}
	return v, nil
}

// priceTrinomialDone is the shared backward induction; a nil done skips
// the per-level-block cancellation checks.
func priceTrinomialDone(s, x, t float64, steps int, mkt workload.MarketParams, done <-chan struct{}) (float64, bool) {
	p := NewTriParams(t, steps, mkt)
	// 2*steps+1 terminal nodes; node j has price S e^{(j-steps) logU}.
	n := 2*steps + 1
	val := make([]float64, n)
	for j := 0; j < n; j++ {
		v := s*mathx.Exp(float64(j-steps)*p.logU) - x
		if v < 0 {
			v = 0
		}
		val[j] = v
	}
	for level := steps - 1; level >= 0; level-- {
		if done != nil && (steps-1-level)%ctxLevelBlock == 0 {
			select {
			case <-done:
				return 0, false
			default:
			}
		}
		m := 2*level + 1
		for j := 0; j < m; j++ {
			val[j] = p.Df * (p.Pd*val[j] + p.Pm*val[j+1] + p.Pu*val[j+2])
		}
	}
	return val[0], true
}

// PriceAmericanPutTrinomial prices an American put on the same lattice
// with the early-exercise maximum at every node.
func PriceAmericanPutTrinomial(s, x, t float64, steps int, mkt workload.MarketParams) float64 {
	p := NewTriParams(t, steps, mkt)
	n := 2*steps + 1
	val := make([]float64, n)
	for j := 0; j < n; j++ {
		v := x - s*mathx.Exp(float64(j-steps)*p.logU)
		if v < 0 {
			v = 0
		}
		val[j] = v
	}
	for level := steps - 1; level >= 0; level-- {
		m := 2*level + 1
		for j := 0; j < m; j++ {
			cont := p.Df * (p.Pd*val[j] + p.Pm*val[j+1] + p.Pu*val[j+2])
			ex := x - s*mathx.Exp(float64(j-level)*p.logU)
			if ex > cont {
				val[j] = ex
			} else {
				val[j] = cont
			}
		}
	}
	return val[0]
}
