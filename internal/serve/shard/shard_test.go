package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"finbench/internal/resilience"
	"finbench/internal/serve"
	"finbench/internal/serve/wire"
)

// newBackends spins up n real pricing servers and returns their URLs
// plus per-backend handles for drain/close manipulation.
func newBackends(t *testing.T, n int) ([]string, []*serve.Server, []*httptest.Server) {
	t.Helper()
	urls := make([]string, n)
	servers := make([]*serve.Server, n)
	https := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{})
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(s.Close)
		urls[i], servers[i], https[i] = hs.URL, s, hs
	}
	return urls, servers, https
}

func newRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(r.Close)
	return r
}

func priceBody(method string, n int) []byte {
	var b strings.Builder
	b.WriteString(`{"options":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"spot":%d,"strike":100,"expiry":1}`, 90+i%20)
	}
	b.WriteString(`]`)
	if method != "" {
		fmt.Fprintf(&b, `,"method":%q`, method)
	}
	b.WriteString(`}`)
	return []byte(b.String())
}

func post(t *testing.T, url, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestRoutedBitIdentical: a 200 through the router must be
// bit-identical to the same request against a lone backend — the
// reproducibility invariant survives routing.
func TestRoutedBitIdentical(t *testing.T) {
	urls, _, _ := newBackends(t, 3)
	router := newRouter(t, Config{Backends: urls})
	front := httptest.NewServer(router)
	defer front.Close()

	for _, method := range []string{"", "binomial-tree", "monte-carlo"} {
		body := priceBody(method, 8)
		resp, routed := post(t, front.URL, "/price", body)
		if resp.StatusCode != 200 {
			t.Fatalf("method %q: routed status %d: %s", method, resp.StatusCode, routed)
		}
		if resp.Header.Get("X-Finserve-Replica") == "" {
			t.Error("routed 200 missing X-Finserve-Replica")
		}
		dresp, direct := post(t, urls[0], "/price", body)
		if dresp.StatusCode != 200 {
			t.Fatalf("direct status %d", dresp.StatusCode)
		}
		var a, b serve.PriceResponse
		if err := json.Unmarshal(routed, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(direct, &b); err != nil {
			t.Fatal(err)
		}
		if len(a.Results) != len(b.Results) {
			t.Fatalf("method %q: result count %d vs %d", method, len(a.Results), len(b.Results))
		}
		for i := range a.Results {
			if a.Results[i].Price != b.Results[i].Price {
				t.Errorf("method %q option %d: routed %v direct %v", method, i, a.Results[i].Price, b.Results[i].Price)
			}
		}
		if a.Method != b.Method || a.Config != b.Config {
			t.Errorf("method %q: effective config differs: %+v vs %+v", method, a, b)
		}
	}
}

// TestFailoverOnDeadReplica: with health checks effectively off, the
// router discovers a dead replica on the request path, fails over, and
// still answers 200.
func TestFailoverOnDeadReplica(t *testing.T) {
	urls, _, https := newBackends(t, 3)
	https[0].Close() // dead before the router ever saw it healthy

	router, err := New(Config{
		Backends:       urls,
		HealthInterval: time.Hour, // force request-path discovery
		MaxAttempts:    3,
		Backoff:        resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No Start(): replicas stay optimistically healthy, so the dead one
	// is picked until the request path excludes it.
	defer router.Close()
	front := httptest.NewServer(router)
	defer front.Close()

	ok := 0
	for i := 0; i < 10; i++ {
		resp, body := post(t, front.URL, "/price", priceBody("", 4))
		if resp.StatusCode == 200 {
			ok++
		} else {
			t.Logf("request %d: %d %s", i, resp.StatusCode, body)
		}
	}
	if ok != 10 {
		t.Errorf("only %d/10 requests survived a dead replica", ok)
	}
	snap := router.Snapshot()
	if snap.Failovers == 0 {
		t.Error("no failovers recorded despite a dead replica")
	}
}

// TestHealthExcludesDeadReplica: the health loop marks a dead replica
// unroutable so later requests never try it (no failover needed).
func TestHealthExcludesDeadReplica(t *testing.T) {
	urls, _, https := newBackends(t, 2)
	router := newRouter(t, Config{
		Backends:       urls,
		HealthInterval: 10 * time.Millisecond,
		HealthTimeout:  100 * time.Millisecond,
	})
	front := httptest.NewServer(router)
	defer front.Close()

	https[0].Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := router.Snapshot()
		if !snap.Replicas[0].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health loop never noticed the dead replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
	before := router.Snapshot().Failovers
	for i := 0; i < 5; i++ {
		resp, body := post(t, front.URL, "/price", priceBody("", 2))
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, body)
		}
	}
	if got := router.Snapshot().Failovers; got != before {
		t.Errorf("failovers rose %d -> %d; dead replica should have been pre-excluded", before, got)
	}
}

// TestDrainingReplicaBypassed: a draining backend stops receiving
// routed requests (health marks it draining) and the router still
// answers from the live one.
func TestDrainingReplicaBypassed(t *testing.T) {
	urls, servers, _ := newBackends(t, 2)
	router := newRouter(t, Config{
		Backends:       urls,
		HealthInterval: 10 * time.Millisecond,
	})
	front := httptest.NewServer(router)
	defer front.Close()

	servers[0].StartDrain()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if router.Snapshot().Replicas[0].Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health loop never saw the drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		resp, body := post(t, front.URL, "/price", priceBody("", 2))
		if resp.StatusCode != 200 {
			t.Fatalf("request %d during drain: %d %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Finserve-Replica"); got == urls[0] {
			t.Errorf("request %d routed to the draining replica", i)
		}
	}
}

// TestMonteCarloSingleAttempt: Monte Carlo gets exactly one attempt —
// a failing replica surfaces the failure instead of re-running the
// simulation; closed form retries on the same topology.
func TestMonteCarloSingleAttempt(t *testing.T) {
	var hits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","in_flight_units":0,"max_units":1,"queue_depth":0,"uptime_s":1}`)
			return
		}
		hits.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()

	router := newRouter(t, Config{
		Backends:    []string{bad.URL},
		MaxAttempts: 4,
		Backoff:     resilience.Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	front := httptest.NewServer(router)
	defer front.Close()

	resp, _ := post(t, front.URL, "/price", priceBody("monte-carlo", 2))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("MC against failing replica: status %d, want 500 pass-through", resp.StatusCode)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("monte-carlo request hit the replica %d times, want exactly 1", got)
	}

	hits.Store(0)
	post(t, front.URL, "/price", priceBody("", 2))
	if got := hits.Load(); got < 2 {
		t.Errorf("closed-form request attempted %d times, want retries", got)
	}
}

// TestCorrupt200NeverForwarded: a replica answering 200 with an invalid
// JSON body is treated as failed; the request fails over and the client
// only ever sees a valid 200.
func TestCorrupt200NeverForwarded(t *testing.T) {
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","in_flight_units":0,"max_units":1,"queue_depth":0,"uptime_s":1}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"results":[{"pri`) // cut mid-body, still a 200
	}))
	defer corrupt.Close()
	urls, _, _ := newBackends(t, 1)

	router := newRouter(t, Config{
		Backends:       []string{corrupt.URL, urls[0]},
		HealthInterval: time.Hour,
		MaxAttempts:    3,
		Backoff:        resilience.Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	front := httptest.NewServer(router)
	defer front.Close()

	for i := 0; i < 6; i++ {
		resp, body := post(t, front.URL, "/price", priceBody("", 2))
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, body)
		}
		if !json.Valid(body) {
			t.Fatalf("request %d: router forwarded a corrupt 200: %q", i, body)
		}
		var pr serve.PriceResponse
		if err := json.Unmarshal(body, &pr); err != nil || len(pr.Results) != 2 {
			t.Fatalf("request %d: implausible 200 body %q", i, body)
		}
	}
	if got := router.Snapshot().Corrupt; got == 0 {
		t.Error("corrupt responses never counted")
	}
}

// TestBreakerOpensAndRecovers drives a replica through fail -> breaker
// open -> recovery -> half-open probe -> closed, observing the
// transitions through the router's snapshot.
func TestBreakerOpensAndRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","in_flight_units":0,"max_units":1,"queue_depth":0,"uptime_s":1}`)
			return
		}
		if failing.Load() {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"results":[{"price":1}],"method":"closed-form","config":{},"engine":"scalar","elapsed_us":1}`)
	}))
	defer flaky.Close()

	router := newRouter(t, Config{
		Backends:       []string{flaky.URL},
		HealthInterval: time.Hour,
		MaxAttempts:    1, // isolate breaker behavior from retries
		Breaker: resilience.BreakerConfig{
			FailureThreshold: 3,
			OpenFor:          30 * time.Millisecond,
		},
	})
	front := httptest.NewServer(router)
	defer front.Close()

	// Trip it.
	for i := 0; i < 3; i++ {
		post(t, front.URL, "/price", priceBody("", 1))
	}
	snap := router.Snapshot()
	if snap.Replicas[0].Breaker.State != "open" {
		t.Fatalf("breaker state %q after %d failures, want open", snap.Replicas[0].Breaker.State, 3)
	}
	if snap.Replicas[0].Breaker.Opens == 0 {
		t.Fatal("no opens counted")
	}
	// While open the sole replica is unroutable -> fast 503.
	resp, _ := post(t, front.URL, "/price", priceBody("", 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("no-replica 503 missing Retry-After")
	}

	// Recover the replica, wait out OpenFor, and watch a probe close it.
	failing.Store(false)
	time.Sleep(40 * time.Millisecond)
	resp, body := post(t, front.URL, "/price", priceBody("", 1))
	if resp.StatusCode != 200 {
		t.Fatalf("probe after recovery: %d %s", resp.StatusCode, body)
	}
	snap = router.Snapshot()
	if snap.Replicas[0].Breaker.State != "closed" {
		t.Errorf("breaker state %q after successful probe, want closed", snap.Replicas[0].Breaker.State)
	}
}

// TestHedgeWinsOnSlowReplica: with the first-listed replica limping,
// the hedge fires after HedgeDelay and the fast replica's answer wins.
func TestHedgeWinsOnSlowReplica(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","in_flight_units":0,"max_units":1,"queue_depth":0,"uptime_s":1}`)
			return
		}
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"results":[{"price":1}],"method":"closed-form","config":{},"engine":"scalar","elapsed_us":1}`)
	}))
	defer slow.Close()
	urls, _, _ := newBackends(t, 1)

	router := newRouter(t, Config{
		Backends:       []string{slow.URL, urls[0]},
		HealthInterval: time.Hour,
		HedgeDelay:     10 * time.Millisecond,
		MaxAttempts:    1,
	})
	front := httptest.NewServer(router)
	defer front.Close()

	start := time.Now()
	resp, body := post(t, front.URL, "/price", priceBody("", 2))
	if resp.StatusCode != 200 {
		t.Fatalf("hedged request failed: %d %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedge did not rescue tail latency: %v", elapsed)
	}
	if got := resp.Header.Get("X-Finserve-Hedge"); got != "won" {
		t.Errorf("X-Finserve-Hedge = %q, want \"won\"", got)
	}
	if got := resp.Header.Get("X-Finserve-Replica"); got != urls[0] {
		t.Errorf("winner replica %q, want the fast one %q", got, urls[0])
	}
	snap := router.Snapshot()
	if snap.Hedges == 0 || snap.HedgeWins == 0 {
		t.Errorf("hedge counters empty: %+v", snap)
	}
}

// TestAllReplicasDown: every backend dead -> 502/503, never a hang.
func TestAllReplicasDown(t *testing.T) {
	urls, _, https := newBackends(t, 2)
	for _, hs := range https {
		hs.Close()
	}
	router := newRouter(t, Config{
		Backends:       urls,
		HealthInterval: 10 * time.Millisecond,
		MaxAttempts:    2,
		Backoff:        resilience.Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	front := httptest.NewServer(router)
	defer front.Close()

	resp, _ := post(t, front.URL, "/price", priceBody("", 2))
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-dead status %d, want 503 or 502", resp.StatusCode)
	}

	// Router /healthz goes unroutable once health checks catch up.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(front.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router /healthz never reported unroutable")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterStatszShape: the statsz body decodes and carries replica
// breaker snapshots.
func TestRouterStatszShape(t *testing.T) {
	urls, _, _ := newBackends(t, 2)
	router := newRouter(t, Config{Backends: urls})
	front := httptest.NewServer(router)
	defer front.Close()

	post(t, front.URL, "/price", priceBody("", 2))
	resp, err := http.Get(front.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Replicas) != 2 || snap.Requests == 0 {
		t.Fatalf("statsz %+v", snap)
	}
	for _, rs := range snap.Replicas {
		if rs.Breaker.State == "" {
			t.Errorf("replica %s missing breaker snapshot", rs.URL)
		}
	}
}

// TestPassThrough4xx: a 400 from the backend is the client's fault —
// passed through untouched, not retried.
func TestPassThrough4xx(t *testing.T) {
	urls, _, _ := newBackends(t, 1)
	router := newRouter(t, Config{Backends: urls, MaxAttempts: 3})
	front := httptest.NewServer(router)
	defer front.Close()

	resp, body := post(t, front.URL, "/price", []byte(`{"options":[]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty options: %d %s", resp.StatusCode, body)
	}
	var e serve.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("error body not passed through: %q", body)
	}
	if got := router.Snapshot().Retries; got != 0 {
		t.Errorf("4xx was retried %d times", got)
	}
}

func TestDecodeHealthValidates(t *testing.T) {
	good := `{"status":"ok","in_flight_units":5,"max_units":100,"queue_depth":0,"uptime_s":1.5}`
	if _, err := DecodeHealth([]byte(good)); err != nil {
		t.Fatalf("valid body rejected: %v", err)
	}
	for _, bad := range []string{
		``,
		`{}`, // unknown status ""
		`{"status":"exploded"}`,
		`{"status":"ok","in_flight_units":-1}`,
		`{"status":"ok","queue_depth":-3}`,
		`{"status":"ok","uptime_s":-1}`,
		`{"status":"ok","surprise_field":1}`,
		`{"status":"ok"}{"status":"ok"}`,
		`[1,2,3]`,
	} {
		if _, err := DecodeHealth([]byte(bad)); err == nil {
			t.Errorf("DecodeHealth(%q) accepted garbage", bad)
		}
	}
	if _, err := DecodeHealth(bytes.Repeat([]byte(" "), maxHealthBody+1)); err == nil {
		t.Error("oversized body accepted")
	}
}

// TestCorruptColumnar200NeverForwarded is TestCorrupt200NeverForwarded
// for the binary framing: a replica answering a columnar request with a
// 200 whose frame is invalid must be treated as failed and failed over,
// so the client only ever sees a well-formed frame.
func TestCorruptColumnar200NeverForwarded(t *testing.T) {
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","in_flight_units":0,"max_units":1,"queue_depth":0,"uptime_s":1}`)
			return
		}
		w.Header().Set("Content-Type", wire.ColumnarContentType)
		fmt.Fprint(w, "FBR1 not a frame") // bad magic + truncated, still a 200
	}))
	defer corrupt.Close()
	urls, _, _ := newBackends(t, 1)

	router := newRouter(t, Config{
		Backends:       []string{corrupt.URL, urls[0]},
		HealthInterval: time.Hour,
		MaxAttempts:    3,
		Backoff:        resilience.Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	front := httptest.NewServer(router)
	defer front.Close()

	frame := wire.AppendColumnarRequest(nil, &wire.PriceRequest{Columnar: &wire.Columns{
		Spots:    []float64{100, 90},
		Strikes:  []float64{105, 95},
		Expiries: []float64{0.5, 1},
	}})
	for i := 0; i < 6; i++ {
		resp, err := http.Post(front.URL+"/price", wire.ColumnarContentType, bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, body.Bytes())
		}
		pr, err := wire.DecodeColumnarResponse(body.Bytes())
		if err != nil {
			t.Fatalf("request %d: router forwarded a corrupt columnar 200: %v", i, err)
		}
		if len(pr.Results) != 2 {
			t.Fatalf("request %d: implausible frame with %d results", i, len(pr.Results))
		}
	}
	if got := router.Snapshot().Corrupt; got == 0 {
		t.Error("corrupt columnar responses never counted")
	}
}
