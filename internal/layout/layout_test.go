package layout

import (
	"testing"
	"testing/quick"
)

func TestAOSAccessors(t *testing.T) {
	a := NewAOS(3)
	a.Set(1, 100, 110, 2.5)
	a.SetResult(1, 7.5, 12.25)
	if a.S(1) != 100 || a.X(1) != 110 || a.T(1) != 2.5 {
		t.Fatalf("inputs wrong: %g %g %g", a.S(1), a.X(1), a.T(1))
	}
	if a.Call(1) != 7.5 || a.Put(1) != 12.25 {
		t.Fatalf("outputs wrong: %g %g", a.Call(1), a.Put(1))
	}
	if a.S(0) != 0 || a.S(2) != 0 {
		t.Fatal("neighbouring records touched")
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestAOSMemoryLayout(t *testing.T) {
	// Record i's fields must be contiguous at stride 5 — the property that
	// makes the reference kernels' gathers strided.
	a := NewAOS(2)
	a.Set(0, 1, 2, 3)
	a.SetResult(0, 4, 5)
	a.Set(1, 6, 7, 8)
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8, 0, 0}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("Data[%d] = %g, want %g", i, a.Data[i], w)
		}
	}
}

func TestSOARoundTrip(t *testing.T) {
	a := NewAOS(5)
	for i := 0; i < 5; i++ {
		a.Set(i, float64(i)+1, float64(i)*2, float64(i)/2)
		a.SetResult(i, float64(i)*10, float64(i)*20)
	}
	b := a.ToSOA().ToAOS()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("round trip differs at %d: %g != %g", i, a.Data[i], b.Data[i])
		}
	}
}

func TestSOARoundTripQuick(t *testing.T) {
	f := func(s, x, tt, c, p float64) bool {
		a := NewAOS(1)
		a.Set(0, s, x, tt)
		a.SetResult(0, c, p)
		b := a.ToSOA().ToAOS()
		for i := range a.Data {
			if a.Data[i] != b.Data[i] && a.Data[i] == a.Data[i] { // skip NaN
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSOALen(t *testing.T) {
	if NewSOA(7).Len() != 7 {
		t.Fatal("SOA Len wrong")
	}
}

func TestPadTo(t *testing.T) {
	cases := []struct{ n, w, want int }{
		{0, 8, 0}, {1, 8, 8}, {8, 8, 8}, {9, 8, 16}, {10, 4, 12}, {5, 1, 5}, {5, 0, 5},
	}
	for _, c := range cases {
		if got := PadTo(c.n, c.w); got != c.want {
			t.Fatalf("PadTo(%d,%d) = %d, want %d", c.n, c.w, got, c.want)
		}
	}
}

func TestBlocked(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	b := NewBlocked(vals, 4)
	if b.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d", b.NumBlocks())
	}
	if got := b.Block(0); got[0] != 1 || got[3] != 4 {
		t.Fatalf("block 0 = %v", got)
	}
	// Padding replicates the last value.
	if got := b.Block(1); got[0] != 5 || got[1] != 5 || got[3] != 5 {
		t.Fatalf("block 1 padding = %v", got)
	}
	out := b.Unblock()
	if len(out) != 5 {
		t.Fatalf("Unblock len = %d", len(out))
	}
	for i, v := range vals {
		if out[i] != v {
			t.Fatalf("Unblock[%d] = %g", i, out[i])
		}
	}
}

func TestBlockedExactMultiple(t *testing.T) {
	b := NewBlocked([]float64{1, 2, 3, 4}, 4)
	if b.NumBlocks() != 1 || len(b.Data) != 4 {
		t.Fatalf("exact multiple padded: %v", b)
	}
}

// Property: Unblock(NewBlocked(v, w)) == v for any width.
func TestBlockedRoundTripQuick(t *testing.T) {
	f := func(raw []float64, wsel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := []int{1, 2, 4, 8}[wsel%4]
		b := NewBlocked(raw, w)
		out := b.Unblock()
		if len(out) != len(raw) {
			return false
		}
		for i := range raw {
			if out[i] != raw[i] && raw[i] == raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
