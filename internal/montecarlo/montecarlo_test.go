package montecarlo

import (
	"math"
	"testing"

	"finbench/internal/blackscholes"
	"finbench/internal/perf"
	"finbench/internal/rng"
	"finbench/internal/workload"
)

var mkt = workload.MarketParams{R: 0.05, Sigma: 0.2}

func normals(n int, seed uint64) []float64 {
	z := make([]float64, n)
	rng.NewStream(0, seed).NormalICDF(z)
	return z
}

// The MC estimate must land within its own confidence interval of the
// closed form.
func TestScalarStreamConvergesToBlackScholes(t *testing.T) {
	z := normals(1<<18, 1) // the paper's 256k path length
	bs, _ := blackscholes.PriceScalar(100, 110, 1, mkt)
	res := PriceScalarStream(100, 110, 1, z, mkt)
	if math.Abs(res.Price-bs) > 4*res.StdErr {
		t.Fatalf("MC %g +- %g vs BS %g", res.Price, res.StdErr, bs)
	}
	if res.StdErr <= 0 || res.StdErr > 0.2 {
		t.Fatalf("implausible stderr %g", res.StdErr)
	}
}

// Monte Carlo error must shrink like 1/sqrt(npath) (Sec. II-D).
func TestErrorScaling(t *testing.T) {
	small := PriceScalarStream(100, 100, 1, normals(1<<12, 2), mkt)
	large := PriceScalarStream(100, 100, 1, normals(1<<16, 2), mkt)
	ratio := small.StdErr / large.StdErr
	if ratio < 3 || ratio > 5.5 { // ideal 4
		t.Fatalf("stderr ratio = %g, want ~4", ratio)
	}
}

func batch(n int) *workload.MCBatch {
	g := workload.DefaultOptionGen
	g.TMax = 3
	return g.NewMCBatch(n)
}

func TestVectorizedMatchesScalarSums(t *testing.T) {
	z := normals(4096+5, 3) // force a scalar tail
	for _, width := range []int{4, 8} {
		for _, unroll := range []int{1, 2, 4} {
			b := batch(9)
			RefScalar(b, z, mkt, nil)
			want := append([]float64(nil), b.Price...)
			b2 := batch(9)
			Vectorized(b2, z, mkt, width, unroll, nil)
			for i := range want {
				// Different accumulation order: tolerance, not equality.
				if math.Abs(b2.Price[i]-want[i]) > 1e-9*math.Max(1, want[i]) {
					t.Fatalf("w=%d u=%d option %d: %g vs %g", width, unroll, i, b2.Price[i], want[i])
				}
			}
		}
	}
}

func TestComputeRNGConvergesToBlackScholes(t *testing.T) {
	b := &workload.MCBatch{
		S: []float64{100}, X: []float64{100}, T: []float64{1},
		Price: make([]float64, 1), StdErr: make([]float64, 1),
	}
	VectorizedComputeRNG(b, 1<<17, 7, mkt, 8, 2, nil)
	bs, _ := blackscholes.PriceScalar(100, 100, 1, mkt)
	if math.Abs(b.Price[0]-bs) > 5*b.StdErr[0] {
		t.Fatalf("computed-RNG MC %g +- %g vs BS %g", b.Price[0], b.StdErr[0], bs)
	}
}

// Antithetic variates must cut the standard error versus plain MC with the
// same number of payoff evaluations.
func TestAntitheticReducesVariance(t *testing.T) {
	z := normals(1<<15, 11)
	plain := batch(1)
	Vectorized(plain, z, mkt, 8, 1, nil)
	anti := batch(1)
	copy(anti.S, plain.S)
	copy(anti.X, plain.X)
	copy(anti.T, plain.T)
	Antithetic(anti, z, mkt, 8, nil)
	if anti.StdErr[0] >= plain.StdErr[0] {
		t.Fatalf("antithetic stderr %g not below plain %g", anti.StdErr[0], plain.StdErr[0])
	}
	if math.Abs(anti.Price[0]-plain.Price[0]) > 4*(plain.StdErr[0]+anti.StdErr[0]) {
		t.Fatalf("antithetic price %g inconsistent with plain %g", anti.Price[0], plain.Price[0])
	}
}

func TestStreamCounts(t *testing.T) {
	z := normals(1024, 1)
	b := batch(4)
	var c perf.Counts
	Vectorized(b, z, mkt, 8, 2, &c)
	paths := uint64(4 * 1024)
	if c.Get(perf.OpExp) != paths {
		t.Fatalf("exp = %d, want %d", c.Get(perf.OpExp), paths)
	}
	if c.Get(perf.OpRNG) != 0 {
		t.Fatal("stream mode must not generate RNG")
	}
	if c.BytesRead != 1024*8 {
		t.Fatalf("read = %d, want %d (shared buffer charged once)", c.BytesRead, 1024*8)
	}
	if c.Items != 4 {
		t.Fatalf("items = %d", c.Items)
	}
}

func TestComputeRNGCounts(t *testing.T) {
	b := batch(4)
	var c perf.Counts
	VectorizedComputeRNG(b, 1024, 1, mkt, 8, 1, &c)
	paths := uint64(4 * 1024)
	if c.Get(perf.OpRNG) != paths {
		t.Fatalf("rng = %d, want %d", c.Get(perf.OpRNG), paths)
	}
	if c.Get(perf.OpInvCND) != paths {
		t.Fatalf("invcnd = %d, want %d", c.Get(perf.OpInvCND), paths)
	}
	if c.BytesRead != 0 {
		t.Fatalf("computed mode streamed %d bytes", c.BytesRead)
	}
}

// Deep OTM options must price to ~0, deep ITM to ~forward intrinsic.
func TestExtremeMoneyness(t *testing.T) {
	z := normals(1<<14, 5)
	res := PriceScalarStream(10, 500, 0.5, z, mkt)
	if res.Price != 0 {
		t.Fatalf("deep OTM price = %g", res.Price)
	}
	res = PriceScalarStream(500, 10, 0.5, z, mkt)
	bs, _ := blackscholes.PriceScalar(500, 10, 0.5, mkt)
	if math.Abs(res.Price-bs)/bs > 0.01 {
		t.Fatalf("deep ITM price = %g vs %g", res.Price, bs)
	}
}

func BenchmarkVectorizedStream(b *testing.B) {
	z := normals(1<<16, 1)
	bt := batch(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Vectorized(bt, z, mkt, 8, 4, nil)
	}
}

func BenchmarkVectorizedComputeRNG(b *testing.B) {
	bt := batch(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VectorizedComputeRNG(bt, 1<<14, 1, mkt, 8, 2, nil)
	}
}
