// Package ticker is the streaming feed's simulated market-data source: a
// seed-deterministic random walk over per-underlying spots plus a global
// mean-reverting volatility and rate. Determinism is the property the
// whole streaming tier's verification hangs on — state at sequence n is a
// pure function of (seed, underlyings, n), independent of wall-clock
// timing, so a test (or the loadgen verifier) can replay any tick the
// server claims to have priced against.
package ticker

import (
	"time"

	"finbench/internal/mathx"
	"finbench/internal/rng"
)

// State is one market tick. Spots holds one spot per underlying; Vol and
// Rate are the flat market parameters of the tick (the paper's kernels
// assume r and sigma shared across the batch, and the streaming tier
// keeps that contract). TimeNS is the wall clock at tick generation —
// observability only, never part of the deterministic state.
type State struct {
	Seq    uint64
	TimeNS int64
	Spots  []float64
	Vol    float64
	Rate   float64
}

// CopyFrom deep-copies src into s, reusing s's backing array when it is
// large enough (the skip-to-latest mailbox overwrites one State in place
// instead of allocating per tick).
func (s *State) CopyFrom(src *State) {
	s.Seq = src.Seq
	s.TimeNS = src.TimeNS
	s.Vol = src.Vol
	s.Rate = src.Rate
	if cap(s.Spots) < len(src.Spots) {
		s.Spots = make([]float64, len(src.Spots))
	}
	s.Spots = s.Spots[:len(src.Spots)]
	copy(s.Spots, src.Spots)
}

// Walk parameters. Per-tick spot steps are lognormal with stdev SpotStep;
// vol and rate take small mean-reverting steps so the flat market drifts
// slowly (a vol move dirties every contract, so it should be rare
// relative to spot moves). Clamps keep the walk inside the kernels'
// valid domain no matter how long it runs.
// tickerTag namespaces the walk's stream away from the universe
// generator's, so both derive independently from one feed seed.
const tickerTag = 0x71c3

const (
	defaultSpot0 = 100.0
	spotStep     = 0.0015 // per-tick lognormal step stdev (~0.15%)
	volRevert    = 0.02   // pull toward vol0 per tick
	volStep      = 0.0004
	volMin, volMax = 0.05, 1.5
	rateRevert     = 0.02
	rateStep       = 0.00005
	rateMin, rateMax = 0.0, 0.2
)

// Source generates the deterministic tick sequence. Not safe for
// concurrent use; Run owns one on its goroutine, manual (test/bench)
// drivers call Next from a single goroutine.
type Source struct {
	stream *rng.Stream
	seq    uint64
	spots  []float64
	vol    float64
	rate   float64
	vol0   float64
	rate0  float64
	z      []float64 // normal draws scratch: one per underlying + vol + rate
}

// NewSource builds a source of `underlyings` spot paths starting at 100,
// with vol0/rate0 as the mean-reversion anchors and initial values.
func NewSource(seed uint64, underlyings int, vol0, rate0 float64) *Source {
	if underlyings <= 0 {
		underlyings = 1
	}
	s := &Source{
		stream: rng.NewStream(0, rng.DeriveSeed(seed, tickerTag)),
		spots:  make([]float64, underlyings),
		vol:    vol0,
		rate:   rate0,
		vol0:   vol0,
		rate0:  rate0,
		z:      make([]float64, underlyings+2),
	}
	for i := range s.spots {
		s.spots[i] = defaultSpot0
	}
	return s
}

// Next advances the walk one tick and writes the new state into st
// (reusing st's backing array). TimeNS is left untouched — the caller
// stamps it, because manual drivers must stay wall-clock free.
func (s *Source) Next(st *State) {
	s.stream.NormalICDF(s.z)
	for i := range s.spots {
		s.spots[i] *= lognormStep(s.z[i])
	}
	n := len(s.spots)
	s.vol += volRevert*(s.vol0-s.vol) + volStep*s.z[n]
	s.vol = clamp(s.vol, volMin, volMax)
	s.rate += rateRevert*(s.rate0-s.rate) + rateStep*s.z[n+1]
	s.rate = clamp(s.rate, rateMin, rateMax)
	s.seq++

	st.Seq = s.seq
	st.Vol = s.vol
	st.Rate = s.rate
	if cap(st.Spots) < n {
		st.Spots = make([]float64, n)
	}
	st.Spots = st.Spots[:n]
	copy(st.Spots, s.spots)
}

// Run ticks the source every interval on the calling goroutine, stamping
// wall-clock TimeNS and invoking fn with each fresh state, until stop
// closes. fn runs concurrently with the goroutines that launched Run, so
// it must not capture a shared RNG stream or other single-owner state —
// deposit into a mailbox or derive per-tick state inside.
func Run(src *Source, interval time.Duration, stop <-chan struct{}, fn func(*State)) {
	t := time.NewTicker(interval)
	defer t.Stop()
	var st State
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			src.Next(&st)
			st.TimeNS = time.Now().UnixNano()
			fn(&st)
		}
	}
}

// lognormStep is the multiplicative spot step exp(sigma*z - sigma^2/2)
// (drift-compensated so the walk is a martingale).
func lognormStep(z float64) float64 {
	return mathx.Exp(spotStep*z - spotStep*spotStep/2)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
