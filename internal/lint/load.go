package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses and type-checks the packages matched by patterns, which may
// be directories ("./internal/rng"), recursive patterns ("./...",
// "./internal/..."), or absolute equivalents. Test files (*_test.go) are
// excluded: the invariants guard production kernels, and floateq is
// specified to exempt tests entirely. Directories named testdata, vendor,
// or starting with "." are skipped unless the pattern itself points inside
// one (which is how the golden tests lint the seeded violations).
//
// Type-checking uses the standard library's source importer, so imports —
// both stdlib and intra-module — resolve from source without any
// third-party loader. Type errors are collected per package, not fatal:
// passes run on whatever type information survived.
func Load(patterns []string) ([]*Package, error) {
	fset := token.NewFileSet()
	// One importer instance caches dependency packages across all checks.
	imp := importer.ForCompiler(fset, "source", nil)

	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expandPatterns resolves CLI patterns into a sorted, de-duplicated list
// of package directories containing non-test .go files.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !recursive {
			if hasGoFiles(pat) {
				add(pat)
			}
			continue
		}
		// The walk skips testdata/vendor/hidden dirs — unless the walk
		// root itself already lives inside one, meaning the caller asked
		// for it explicitly.
		insideSpecial := pathHasSpecial(pat)
		err = filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && !insideSpecial &&
				(name == "testdata" || name == "vendor" || (strings.HasPrefix(name, ".") && name != ".")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func pathHasSpecial(path string) bool {
	abs, err := filepath.Abs(path)
	if err != nil {
		abs = path
	}
	for _, part := range strings.Split(filepath.ToSlash(abs), "/") {
		if part == "testdata" || part == "vendor" {
			return true
		}
	}
	return false
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks one package directory. Returns nil if the
// directory holds no non-test Go files.
func loadDir(fset *token.FileSet, imp types.Importer, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	pkg := &Package{
		Path:  importPathFor(dir),
		Fset:  fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never fully fails here: the Error callback absorbs problems so
	// the passes can still run over partial information.
	pkg.Types, _ = conf.Check(pkg.Path, fset, files, pkg.Info)
	pkg.finishDirectives()
	return pkg, nil
}

// importPathFor derives an import path for dir by locating the enclosing
// go.mod. Directories outside any module (or inside testdata, which the go
// tool excludes from builds) fall back to a cleaned directory path; the
// path only identifies the package in diagnostics and in seeddet's cmd/
// exemption.
func importPathFor(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return filepath.ToSlash(filepath.Clean(dir))
		}
		root = parent
	}
	module := modulePath(filepath.Join(root, "go.mod"))
	rel, err := filepath.Rel(root, abs)
	if err != nil || module == "" {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	if rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}

func modulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
