// Package parallel provides the OpenMP-style loop parallelism the paper's
// kernels use ("#pragma omp for thread-level parallelism", Sec. III-B).
// All six benchmarks parallelize across independent work items (options,
// paths, simulations), so a parallel-for with static, dynamic, or guided
// chunking plus a tree-free reduction covers every need.
//
// Like an OpenMP runtime — and unlike the package's original
// goroutine-per-region implementation — the loops execute on a persistent
// fork-join worker pool (see pool.go): workers are started lazily on first
// use and then parked between regions, so a small-batch region pays a
// wake-up, not goroutine creation. The decomposition semantics are
// unchanged from the spawn-per-call version: the same [lo,hi) chunks in
// the same slot order, dense worker ids, and reductions combined in worker
// order, so kernel outputs are bit-identical for a fixed worker count.
package parallel

import (
	"runtime"
	"sync/atomic"

	"finbench/internal/perf"
)

// Workers returns the worker count used by For: GOMAXPROCS, the Go
// analogue of OMP_NUM_THREADS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Run is the pool's raw fork-join primitive: it executes fn once per slot
// in [0, slots), from multiple goroutines, and returns when every slot has
// completed. Slot 0 runs on the calling goroutine; the remaining slots are
// handed to parked pool workers without spawning. Slots may exceed the
// worker count — excess tasks queue and run as workers (or the caller,
// which helps while joining) free up. Nested Run calls are safe. A nil fn
// or slots <= 0 is a no-op.
func Run(slots int, fn func(slot int)) {
	if slots <= 0 || fn == nil {
		return
	}
	defaultPool.run(slots, fn)
}

// For runs fn over [0,n) split into one contiguous chunk per worker
// (OpenMP schedule(static)). fn is called with disjoint [lo,hi) ranges
// from multiple goroutines; For returns when all complete. A nil fn or
// n <= 0 is a no-op.
func For(n int, fn func(lo, hi int)) {
	ForWorkers(n, Workers(), fn)
}

// ForWorkers is For with an explicit worker count (used to model a given
// thread count, and by tests).
func ForWorkers(n, workers int, fn func(lo, hi int)) {
	if n <= 0 || fn == nil {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		defaultPool.serial.Add(1)
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	slots := (n + chunk - 1) / chunk
	defaultPool.run(slots, func(slot int) {
		lo := slot * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// ForDynamic runs fn over [0,n) in grain-sized chunks handed out from a
// shared counter (OpenMP schedule(dynamic, grain)); use it when per-item
// cost is irregular, e.g. PSOR solves whose iteration counts vary by
// option. grain <= 0 selects an automatic grain (see autoGrain) that
// targets several chunks per worker while keeping the handout counter off
// the critical path.
func ForDynamic(n, grain int, fn func(lo, hi int)) {
	if n <= 0 || fn == nil {
		return
	}
	workers := Workers()
	if grain <= 0 {
		grain = autoGrain(n, workers)
	}
	if workers*grain > n {
		workers = (n + grain - 1) / grain
	}
	if workers <= 1 {
		defaultPool.serial.Add(1)
		fn(0, n)
		return
	}
	var next int64
	defaultPool.run(workers, func(int) {
		for {
			lo := int(atomic.AddInt64(&next, int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	})
}

// autoGrain picks the dynamic-schedule grain when the caller passes
// grain <= 0: roughly eight chunks per worker — fine enough to balance
// irregular items, coarse enough that the shared counter is touched O(8w)
// times — clamped to [1, 4096].
func autoGrain(n, workers int) int {
	g := n / (workers * 8)
	if g < 1 {
		g = 1
	}
	if g > 4096 {
		g = 4096
	}
	return g
}

// ForGuided runs fn over [0,n) with OpenMP schedule(guided, grain): each
// handout takes remaining/workers items (never fewer than grain), so early
// chunks are large and the tail is balanced at fine grain. Use it for
// workloads whose per-item cost shrinks or grows monotonically (e.g.
// decreasing tree depths), where dynamic wastes handouts early and static
// leaves the tail unbalanced.
func ForGuided(n, grain int, fn func(lo, hi int)) {
	if n <= 0 || fn == nil {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	workers := Workers()
	if workers > (n+grain-1)/grain {
		workers = (n + grain - 1) / grain
	}
	if workers <= 1 {
		defaultPool.serial.Add(1)
		fn(0, n)
		return
	}
	var next int64
	defaultPool.run(workers, func(int) {
		for {
			cur := atomic.LoadInt64(&next)
			if cur >= int64(n) {
				return
			}
			rem := int64(n) - cur
			chunk := rem / int64(workers)
			if chunk < int64(grain) {
				chunk = int64(grain)
			}
			if chunk > rem {
				chunk = rem
			}
			if !atomic.CompareAndSwapInt64(&next, cur, cur+chunk) {
				continue // another worker took a handout; recompute
			}
			fn(int(cur), int(cur+chunk))
		}
	})
}

// ForIndexed runs fn once per worker with (worker, lo, hi), for kernels
// that need per-worker scratch state such as an RNG stream per thread.
// It uses static chunking; worker ids are dense in [0, workers).
func ForIndexed(n int, fn func(worker, lo, hi int)) {
	if n <= 0 || fn == nil {
		return
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		defaultPool.serial.Add(1)
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	slots := (n + chunk - 1) / chunk
	defaultPool.run(slots, func(slot int) {
		lo := slot * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(slot, lo, hi)
	})
}

// ForIndexedMerged is ForIndexed for counted kernels: fn receives a
// private perf.Counts per worker chunk, and the partials are merged into c
// in worker order after the loop completes — the accumulate pattern every
// kernel package previously hand-rolled with a mutex. Merging in slot
// order (not completion order) keeps the merged state deterministic, and
// the lock disappears from the worker path entirely. A nil c runs fn with
// nil counts (counting disabled), preserving the kernels' uncounted fast
// path.
func ForIndexedMerged(n int, c *perf.Counts, fn func(worker, lo, hi int, c *perf.Counts)) {
	if n <= 0 || fn == nil {
		return
	}
	if c == nil {
		ForIndexed(n, func(worker, lo, hi int) { fn(worker, lo, hi, nil) })
		return
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		defaultPool.serial.Add(1)
		fn(0, 0, n, c)
		return
	}
	chunk := (n + workers - 1) / workers
	slots := (n + chunk - 1) / chunk
	locals := make([]perf.Counts, slots)
	defaultPool.run(slots, func(slot int) {
		lo := slot * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(slot, lo, hi, &locals[slot])
	})
	for i := range locals {
		c.Merge(locals[i])
	}
}

// ReduceFloat64 computes the sum of fn over per-worker ranges: each worker
// returns a partial value for its [lo,hi) range, and the partials are
// summed in worker order, keeping the result deterministic for a fixed
// worker count.
func ReduceFloat64(n int, fn func(lo, hi int) float64) float64 {
	if n <= 0 || fn == nil {
		return 0
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		defaultPool.serial.Add(1)
		return fn(0, n)
	}
	chunk := (n + workers - 1) / workers
	slots := (n + chunk - 1) / chunk
	// Pad partial slots to separate cache lines to avoid false sharing.
	const pad = 8
	partials := make([]float64, slots*pad)
	defaultPool.run(slots, func(slot int) {
		lo := slot * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		partials[slot*pad] = fn(lo, hi)
	})
	var sum float64
	for k := 0; k < slots; k++ {
		sum += partials[k*pad]
	}
	return sum
}
