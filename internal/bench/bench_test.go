package bench

import (
	"math"
	"strings"
	"testing"
)

// The model-vs-paper assertions below encode the paper's *stated* relations
// (the reproduction targets). Absolute bar heights that exist only as
// pixels in the figures are not asserted; EXPERIMENTS.md discusses them.

const testScale = 0.05

func model(t *testing.T, id string) *Result {
	t.Helper()
	e := ByID(id)
	if e == nil {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := e.Model(testScale)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return res
}

func within(t *testing.T, what string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.3g, want in [%.3g, %.3g]", what, got, lo, hi)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"tab1", "fig4", "fig5", "fig6", "tab2", "fig8", "ninja",
		"ablate-tile", "ablate-rng", "ablate-qmc", "ablate-width", "servepath",
		"scenario", "streampath"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s (paper order)", i, exps[i].ID, id)
		}
	}
	if ByID("nope") != nil {
		t.Fatal("ByID returned unknown experiment")
	}
}

func TestTab1ContainsTableI(t *testing.T) {
	res := model(t, "tab1")
	joined := strings.Join(res.Notes, "\n")
	for _, want := range []string{"SNB-EP", "KNC", "2 x 8 x 2", "1 x 60 x 4"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("tab1 missing %q", want)
		}
	}
}

// Fig. 4 relations: reference 3x slower on KNC; AOS->SOA ~10x on KNC;
// advanced at 84%/60% of the B/40 bound; VML no benefit on KNC.
func TestFig4Shape(t *testing.T) {
	res := model(t, "fig4")
	ref, inter, adv := res.Rows[0], res.Rows[1], res.Rows[2]

	within(t, "ref SNB/KNC ratio", ref.Model[ColSNB]/ref.Model[ColKNC], 1.8, 4.5)
	within(t, "KNC SOA gain", inter.Model[ColKNC]/ref.Model[ColKNC], 7, 14)
	// Monotone ladder on both machines (VML may only tie on KNC).
	for _, m := range []string{ColSNB, ColKNC} {
		if !(ref.Model[m] < inter.Model[m] && inter.Model[m] <= adv.Model[m]*1.05) {
			t.Errorf("%s ladder not monotone: %g %g %g", m, ref.Model[m], inter.Model[m], adv.Model[m])
		}
	}
	within(t, "adv SNB fraction of bound", adv.Model[ColSNB]/res.Bounds[ColSNB], 0.55, 0.95)
	within(t, "adv KNC fraction of bound", adv.Model[ColKNC]/res.Bounds[ColKNC], 0.45, 0.80)
	// SNB-EP runs closer to its bandwidth roof than KNC (84% vs 60%).
	if adv.Model[ColSNB]/res.Bounds[ColSNB] < adv.Model[ColKNC]/res.Bounds[ColKNC]-0.25 {
		t.Error("SNB-EP should sit closer to its bandwidth bound than KNC")
	}
}

// Fig. 5 relations: SIMD across options hardly improves; register tiling
// >2x combined; unrolling helps KNC (~1.4x) but not SNB-EP; final KNC/SNB
// ~2.6x; SNB within 10%, KNC within 30% of the flop bound.
func TestFig5Shape(t *testing.T) {
	res := model(t, "fig5")
	// Rows 0..3 are N=1024.
	ref, inter, tile, unroll := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	within(t, "SNB intermediate gain", inter.Model[ColSNB]/ref.Model[ColSNB], 0.9, 1.35)
	within(t, "SNB tiling gain over ref", tile.Model[ColSNB]/ref.Model[ColSNB], 1.7, 3.0)
	within(t, "KNC tiling gain over ref", tile.Model[ColKNC]/ref.Model[ColKNC], 1.5, 3.0)
	within(t, "KNC unroll gain", unroll.Model[ColKNC]/tile.Model[ColKNC], 1.2, 1.6)
	within(t, "SNB unroll gain", unroll.Model[ColSNB]/tile.Model[ColSNB], 0.95, 1.25)
	within(t, "final KNC/SNB", unroll.Model[ColKNC]/unroll.Model[ColSNB], 2.0, 3.2)
	within(t, "SNB fraction of flop bound", unroll.Model[ColSNB]/res.Bounds[ColSNB], 0.75, 1.0)
	within(t, "KNC fraction of flop bound", unroll.Model[ColKNC]/res.Bounds[ColKNC], 0.55, 0.85)
	// N=2048 rows (4..7) scale by ~4x in work.
	within(t, "2048/1024 ref scaling", res.Rows[0].Model[ColSNB]/res.Rows[4].Model[ColSNB], 3.5, 4.5)
}

// Fig. 6 relations: basic KNC ~25% slower than SNB-EP; intermediate
// bandwidth-bound with KNC/SNB = bandwidth ratio (~1.97); advanced
// compute-bound with KNC ~2x.
func TestFig6Shape(t *testing.T) {
	res := model(t, "fig6")
	basic, inter, il, c2c := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	within(t, "basic KNC/SNB", basic.Model[ColKNC]/basic.Model[ColSNB], 0.6, 0.95)
	within(t, "intermediate KNC/SNB", inter.Model[ColKNC]/inter.Model[ColSNB], 1.75, 2.2)
	// Streamed variant pinned at the bandwidth roof on both machines.
	within(t, "intermediate SNB at bound", inter.Model[ColSNB]/res.Bounds[ColSNB], 0.9, 1.05)
	within(t, "intermediate KNC at bound", inter.Model[ColKNC]/res.Bounds[ColKNC], 0.9, 1.05)
	within(t, "C2C KNC/SNB", c2c.Model[ColKNC]/c2c.Model[ColSNB], 1.5, 2.4)
	// Ladder monotone.
	for _, m := range []string{ColSNB, ColKNC} {
		if !(basic.Model[m] < inter.Model[m] && inter.Model[m] < il.Model[m] && il.Model[m] < c2c.Model[m]) {
			t.Errorf("%s ladder not monotone", m)
		}
	}
}

// Table II: all eight cells are stated in the paper; the model must land
// within 15% of each (it lands within ~4% at calibration time).
func TestTab2WithinTolerance(t *testing.T) {
	res := model(t, "tab2")
	for _, row := range res.Rows {
		for _, m := range []string{ColSNB, ColKNC} {
			p, g := row.Paper[m], row.Model[m]
			if p == 0 {
				continue
			}
			if math.Abs(g-p)/p > 0.15 {
				t.Errorf("%s %s: model %.3g vs paper %.3g (%.0f%% off)",
					row.Label, m, g, p, 100*math.Abs(g-p)/p)
			}
		}
	}
}

// Fig. 8 relations: reference KNC ~1.3x faster; SIMD gains; data-structure
// transform gains ~1.45x/1.56x; advanced KNC/SNB ~1.8x.
func TestFig8Shape(t *testing.T) {
	res := model(t, "fig8")
	ref, inter, adv := res.Rows[0], res.Rows[1], res.Rows[2]
	within(t, "ref KNC/SNB", ref.Model[ColKNC]/ref.Model[ColSNB], 1.1, 1.7)
	within(t, "SNB SIMD gain", adv.Model[ColSNB]/ref.Model[ColSNB], 1.6, 3.5)
	within(t, "KNC SIMD gain", adv.Model[ColKNC]/ref.Model[ColKNC], 1.8, 4.5)
	within(t, "SNB reorder gain", adv.Model[ColSNB]/inter.Model[ColSNB], 1.2, 1.8)
	within(t, "KNC reorder gain", adv.Model[ColKNC]/inter.Model[ColKNC], 1.1, 1.8)
	within(t, "advanced KNC/SNB", adv.Model[ColKNC]/adv.Model[ColSNB], 1.4, 2.1)
}

// Ninja summary: per-kernel gaps sane; optimized KNC/SNB ratios near the
// paper's 2.5x (compute) and 2x (bandwidth).
func TestNinjaShape(t *testing.T) {
	res := model(t, "ninja")
	var avg, cb, bb Row
	for _, row := range res.Rows {
		switch {
		case strings.HasPrefix(row.Label, "average"):
			avg = row
		case strings.Contains(row.Label, "(compute-bound)") && strings.HasPrefix(row.Label, "optimized"):
			cb = row
		case strings.Contains(row.Label, "(bandwidth-bound)") && strings.HasPrefix(row.Label, "optimized"):
			bb = row
		}
	}
	within(t, "avg gap SNB", avg.Model[ColSNB], 1.3, 3.5)
	within(t, "avg gap KNC", avg.Model[ColKNC], 2.5, 9.5)
	if avg.Model[ColKNC] <= avg.Model[ColSNB] {
		t.Error("KNC Ninja gap must exceed SNB-EP's (in-order cores are less forgiving)")
	}
	within(t, "optimized KNC/SNB compute-bound", cb.Model[ColKNC], 1.6, 3.0)
	within(t, "optimized KNC/SNB bandwidth-bound", bb.Model[ColKNC], 1.3, 2.5)
}

func TestTableRendering(t *testing.T) {
	res := model(t, "fig4")
	table := res.Table()
	for _, want := range []string{"SNB-EP:paper", "KNC:model", "Basic (Reference, AOS)", "roofline bound"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	csv := res.CSV()
	if !strings.Contains(csv, "label,snb_paper") || len(strings.Split(csv, "\n")) < 4 {
		t.Fatalf("CSV malformed:\n%s", csv)
	}
}

func TestProvenanceString(t *testing.T) {
	if Stated.String() != "stated" || Derived.String() != "derived" || None.String() != "-" {
		t.Fatal("Provenance strings wrong")
	}
}

func TestHumanUnits(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "-"}, {5, "5"}, {1500, "1.5K"}, {2.5e6, "2.5M"}, {3e9, "3G"},
	}
	for _, c := range cases {
		if got := human(c.v); got != c.want {
			t.Fatalf("human(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

// Measure mode smoke test: every experiment with a Measure function must
// produce positive host throughput with a repetition count and noise
// bound attached (timeIt routes through benchreg's median±MAD harness).
func TestMeasureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("host timing in -short mode")
	}
	prev := Sampling
	Sampling = quickOpts
	defer func() { Sampling = prev }()
	for _, e := range Experiments() {
		if e.Measure == nil {
			continue
		}
		res, err := e.Measure(0.01)
		if err != nil {
			t.Fatalf("%s measure: %v", e.ID, err)
		}
		for _, row := range res.Rows {
			if row.Host <= 0 {
				t.Errorf("%s %q: host throughput %g", e.ID, row.Label, row.Host)
			}
			if row.HostReps != quickOpts.Reps {
				t.Errorf("%s %q: %d reps recorded, want %d", e.ID, row.Label, row.HostReps, quickOpts.Reps)
			}
			if row.HostMAD < 0 || row.HostItems <= 0 {
				t.Errorf("%s %q: bad noise/items fields (mad=%g items=%d)", e.ID, row.Label, row.HostMAD, row.HostItems)
			}
		}
	}
}

// Host-mode Table and CSV must carry the median±MAD columns.
func TestHostTableAndCSV(t *testing.T) {
	res := &Result{ID: "x", Title: "host fmt", Units: "options/s", Rows: []Row{
		{Label: "Scalar reference", Host: 2.5e6, HostMAD: 1.5e4, HostReps: 5},
		{Label: "Advanced", Host: 8e6, HostMAD: 2e4, HostReps: 5},
	}}
	table := res.Table()
	for _, want := range []string{"host", "±mad", "reps", "2.5M", "15K", "    5"} {
		if !strings.Contains(table, want) {
			t.Errorf("host table missing %q:\n%s", want, table)
		}
	}
	csv := res.CSV()
	if !strings.Contains(csv, "host,host_mad,provenance") {
		t.Fatalf("CSV header missing host_mad:\n%s", csv)
	}
	if !strings.Contains(csv, "2.5e+06,15000") {
		t.Fatalf("CSV row missing host±mad values:\n%s", csv)
	}
}

// Ablation shapes: tile throughput rises monotonically to a plateau, the
// width sweep separates SOA scaling from AOS gather collapse, and QMC
// error sits below MC at every budget.
func TestAblateTileShape(t *testing.T) {
	res := model(t, "ablate-tile")
	for i := 1; i < len(res.Rows); i++ {
		for _, m := range []string{ColSNB, ColKNC} {
			if res.Rows[i].Model[m] < res.Rows[i-1].Model[m]*0.98 {
				t.Errorf("%s: %s below %s", m, res.Rows[i].Label, res.Rows[i-1].Label)
			}
		}
	}
	// Diminishing returns: the last doubling buys < 10%.
	last, prev := res.Rows[len(res.Rows)-1], res.Rows[len(res.Rows)-2]
	if last.Model[ColKNC] > prev.Model[ColKNC]*1.10 {
		t.Error("tile sweep did not plateau")
	}
}

func TestAblateWidthShape(t *testing.T) {
	res := model(t, "ablate-width")
	// SOA scales up with width throughout.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Model["SOA"] <= res.Rows[i-1].Model["SOA"] {
			t.Errorf("SOA did not scale at %s", res.Rows[i].Label)
		}
	}
	// AOS at width 8 sits far below SOA at width 8 (the gather collapse).
	w8 := res.Rows[len(res.Rows)-1]
	if w8.Model["AOS"] > w8.Model["SOA"]/5 {
		t.Errorf("AOS %g not collapsed vs SOA %g at width 8", w8.Model["AOS"], w8.Model["SOA"])
	}
	// Scalar AOS (width 1) beats vectorized AOS (width 8) on KNC — the
	// counter-intuitive result the paper's 3x-slower reference reflects.
	w1 := res.Rows[0]
	if w1.Model["AOS"] < w8.Model["AOS"] {
		t.Error("width-1 AOS should beat width-8 AOS on KNC (gathers dominate)")
	}
}

func TestAblateQMCShape(t *testing.T) {
	res := model(t, "ablate-qmc")
	for _, row := range res.Rows {
		if row.Model["QMC"] >= row.Model["MC"] {
			t.Errorf("%s: QMC error %g not below MC %g", row.Label, row.Model["QMC"], row.Model["MC"])
		}
	}
}
