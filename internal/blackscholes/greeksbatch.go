package blackscholes

import (
	"finbench/internal/layout"
	"finbench/internal/mathx"
	"finbench/internal/parallel"
	"finbench/internal/perf"
	"finbench/internal/vec"
	"finbench/internal/workload"
)

// GreeksSOA holds per-option sensitivities for a batch risk sweep (the
// risk-management workload of the paper's STAC citation: a book's deltas,
// gammas and vegas recomputed on every market tick).
type GreeksSOA struct {
	DeltaCall, DeltaPut []float64
	Gamma, Vega         []float64
}

// NewGreeksSOA allocates outputs for n options.
func NewGreeksSOA(n int) *GreeksSOA {
	return &GreeksSOA{
		DeltaCall: make([]float64, n),
		DeltaPut:  make([]float64, n),
		Gamma:     make([]float64, n),
		Vega:      make([]float64, n),
	}
}

// GreeksBatch computes closed-form delta, gamma and vega for every option
// in the SOA batch with SIMD across options (the Intermediate-level
// treatment applied to the greeks formulas: one erf and one exp per option
// cover all four outputs).
func GreeksBatch(s *layout.SOA, out *GreeksSOA, mkt workload.MarketParams, width int, c *perf.Counts) {
	n := s.Len()
	r, sig := mkt.R, mkt.Sigma
	sig22 := sig * sig / 2
	run := func(lo, hi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		one := ctx.Broadcast(1)
		half := ctx.Broadcast(0.5)
		invSqrt2 := ctx.Broadcast(mathx.InvSqrt2)
		invSqrt2Pi := ctx.Broadcast(mathx.InvSqrt2Pi)
		i := lo
		for ; i+width <= hi; i += width {
			sp := ctx.Load(s.S, i)
			x := ctx.Load(s.X, i)
			t := ctx.Load(s.T, i)
			sqT := ctx.Sqrt(t)
			sigSqT := ctx.Mul(ctx.Broadcast(sig), sqT)
			qlog := ctx.Log(ctx.Div(sp, x))
			d1 := ctx.Div(ctx.FMA(ctx.Broadcast(r+sig22), t, qlog), sigSqT)
			// N(d1) via the erf substitution; phi(d1) via one exp.
			nd1 := ctx.Mul(ctx.Add(one, ctx.Erf(ctx.Mul(d1, invSqrt2))), half)
			pd1 := ctx.Mul(invSqrt2Pi, ctx.Exp(ctx.Mul(ctx.Broadcast(-0.5), ctx.Mul(d1, d1))))
			ctx.Store(out.DeltaCall, i, nd1)
			ctx.Store(out.DeltaPut, i, ctx.Sub(nd1, one))
			ctx.Store(out.Gamma, i, ctx.Div(pd1, ctx.Mul(sp, sigSqT)))
			ctx.Store(out.Vega, i, ctx.Mul(ctx.Mul(sp, pd1), sqT))
		}
		for ; i < hi; i++ {
			g := ComputeGreeks(s.S[i], s.X[i], s.T[i], mkt)
			out.DeltaCall[i] = g.DeltaCall
			out.DeltaPut[i] = g.DeltaPut
			out.Gamma[i] = g.Gamma
			out.Vega[i] = g.Vega
		}
	}
	if c == nil {
		parallel.For(n, func(lo, hi int) { run(lo, hi, nil) })
	} else {
		parallel.ForIndexedMerged(n, c, func(_, lo, hi int, local *perf.Counts) {
			run(lo, hi, local)
		})
		c.AddBytes(uint64(24*n), uint64(32*n))
		c.Items += uint64(n)
	}
}
