// Calibration: recover an implied-volatility surface from market quotes —
// the "real-time/near-real-time model calibration" workload the paper's
// STAC citation names as a core computational-finance task.
//
// Synthetic quotes are generated from a parametric smile; the solver then
// inverts each quote with the Newton/bisection implied-vol routine and the
// recovered surface is compared to the truth.
//
//	go run ./examples/calibration
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"finbench"
)

// smile is the "true" market vol: a skewed smile in log-moneyness that
// flattens with maturity.
func smile(spot, strike, expiry float64) float64 {
	m := math.Log(strike / spot)
	return 0.22 + 0.08*m*m/math.Sqrt(expiry) - 0.04*m
}

func main() {
	const spot, rate = 100.0, 0.02
	strikes := []float64{70, 80, 90, 100, 110, 120, 130}
	expiries := []float64{0.25, 0.5, 1, 2}

	// Generate the "market": one call quote per (strike, expiry).
	type quote struct {
		strike, expiry, price, trueVol float64
	}
	var quotes []quote
	for _, t := range expiries {
		for _, k := range strikes {
			vol := smile(spot, k, t)
			res, err := finbench.Price(
				finbench.Option{Type: finbench.Call, Style: finbench.European, Spot: spot, Strike: k, Expiry: t},
				finbench.Market{Rate: rate, Volatility: vol}, finbench.ClosedForm, nil)
			if err != nil {
				log.Fatal(err)
			}
			quotes = append(quotes, quote{k, t, res.Price, vol})
		}
	}

	// Calibrate: invert every quote.
	start := time.Now()
	var worst float64
	fmt.Println("Implied-volatility surface (recovered vs true, x100):")
	fmt.Printf("%8s", "K\\T")
	for _, t := range expiries {
		fmt.Printf("  %8.2fy", t)
	}
	fmt.Println()
	for _, k := range strikes {
		fmt.Printf("%8.0f", k)
		for _, t := range expiries {
			var q quote
			for _, c := range quotes {
				if c.strike == k && c.expiry == t { // finlint:ignore floateq quotes reuse the same grid literals; exact by construction
					q = c
				}
			}
			vol, err := finbench.ImpliedVolatility(q.price,
				finbench.Option{Type: finbench.Call, Style: finbench.European, Spot: spot, Strike: k, Expiry: t}, rate)
			if err != nil {
				log.Fatal(err)
			}
			if e := math.Abs(vol - q.trueVol); e > worst {
				worst = e
			}
			fmt.Printf("  %9s", fmt.Sprintf("%.2f/%.2f", vol*100, q.trueVol*100))
		}
		fmt.Println()
	}
	fmt.Printf("\nCalibrated %d quotes in %v; worst error %.2e vol points\n",
		len(quotes), time.Since(start).Round(time.Microsecond), worst)
}
