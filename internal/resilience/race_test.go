package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestRaceBreakerStress hammers one breaker from many goroutines — the
// shape the router produces when every worker brackets requests with
// Allow/Success/Failure while a health checker reads Snapshot. Run under
// -race by scripts/check.sh.
func TestRaceBreakerStress(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Millisecond, Probes: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if b.Allow() {
					if (i+w)%5 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				if i%64 == 0 {
					_ = b.Snapshot()
					_ = b.State()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := b.Snapshot()
	if snap.Successes == 0 {
		t.Error("no successes recorded under stress")
	}
}

// TestRaceBudgetStress exercises concurrent earn/spend.
func TestRaceBudgetStress(t *testing.T) {
	budget := NewBudget(0.5, 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				budget.OnAttempt()
				budget.TryRetry()
			}
		}()
	}
	wg.Wait()
	spent, denied := budget.Counters()
	if spent+denied == 0 {
		t.Error("budget recorded no activity")
	}
}

// TestRaceHedgeStress runs many hedged operations concurrently with mixed
// winners and losers; each closure touches only per-attempt state.
func TestRaceHedgeStress(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, _, err := Hedge(context.Background(), 10*time.Microsecond, 3,
					func(ctx context.Context, attempt int) (int, error) {
						if (i+attempt+w)%3 == 0 {
							return 0, errors.New("transient")
						}
						return attempt, nil
					})
				if err != nil && !errors.Is(err, context.Canceled) {
					// All three legs can fail for some (i,w); that's fine.
					continue
				}
			}
		}(w)
	}
	wg.Wait()
}
