// Package fault is a deterministic, seed-driven fault injector for the
// serving tier's chaos tests. A Spec ("seed:rate:kinds") decides, as a
// pure function of the seed and a monotonically increasing event index,
// whether each event (an accepted connection, or a client round trip) is
// faulted and how:
//
//	refuse    close the connection the moment it is accepted
//	reset     read the request, then slam the connection shut before
//	          writing a single response byte
//	truncate  write the first bytes of the response, then cut it off
//	latency   hold the connection idle before serving it
//	limp      serve, but drip every write (a slow replica, the classic
//	          tail-latency villain)
//
// Because the decision sequence depends only on (seed, index), a chaos
// run replays: the k-th accepted connection is faulted identically on
// every run with the same spec. The Digest helper fingerprints the first
// n decisions so scripts can assert that reproducibility end to end.
//
// Injection points: NewListener wraps a net.Listener (server side — what
// `finserve serve -fault-spec` uses), Transport wraps an
// http.RoundTripper (client side — what the router unit tests use).
package fault

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind is one injectable failure mode.
type Kind uint8

const (
	// KindNone marks an unfaulted event.
	KindNone Kind = iota
	// KindRefuse closes the connection immediately on accept.
	KindRefuse
	// KindReset closes abruptly after the request is read, before any
	// response byte.
	KindReset
	// KindTruncate cuts the response off after its first bytes.
	KindTruncate
	// KindLatency delays the connection before serving it.
	KindLatency
	// KindLimp throttles every write on the connection.
	KindLimp
)

// String returns the spec-grammar name.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindRefuse:
		return "refuse"
	case KindReset:
		return "reset"
	case KindTruncate:
		return "truncate"
	case KindLatency:
		return "latency"
	case KindLimp:
		return "limp"
	}
	return "unknown"
}

// parseKind inverts String for the spec grammar.
func parseKind(s string) (Kind, error) {
	switch s {
	case "refuse":
		return KindRefuse, nil
	case "reset":
		return KindReset, nil
	case "truncate":
		return KindTruncate, nil
	case "latency":
		return KindLatency, nil
	case "limp":
		return KindLimp, nil
	}
	return KindNone, fmt.Errorf("unknown fault kind %q (have refuse, reset, truncate, latency, limp)", s)
}

// Spec is a parsed fault specification.
type Spec struct {
	// Seed drives the deterministic decision stream.
	Seed uint64
	// Rate is the per-event fault probability in [0,1].
	Rate float64
	// Kinds are the enabled failure modes; a faulted event picks one
	// deterministically.
	Kinds []Kind
	// Latency is the hold applied by KindLatency (default 50ms).
	Latency time.Duration
	// LimpDelay is the per-write drip of KindLimp (default 5ms).
	LimpDelay time.Duration
	// TruncateAfter is how many response bytes KindTruncate lets through
	// (default 24 — enough for part of the status line, never a full
	// valid body).
	TruncateAfter int
}

// ParseSpec parses the "seed:rate:kinds" grammar, e.g.
// "42:0.1:refuse,reset,latency" (kinds may also be '+'-separated).
func ParseSpec(s string) (*Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("fault spec %q: want seed:rate:kinds", s)
	}
	seed, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("fault spec seed %q: %v", parts[0], err)
	}
	rate, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || rate < 0 || rate > 1 {
		return nil, fmt.Errorf("fault spec rate %q: want a probability in [0,1]", parts[1])
	}
	kindList := strings.FieldsFunc(parts[2], func(r rune) bool { return r == ',' || r == '+' })
	if len(kindList) == 0 {
		return nil, fmt.Errorf("fault spec %q: no kinds", s)
	}
	spec := &Spec{Seed: seed, Rate: rate}
	seen := make(map[Kind]bool)
	for _, ks := range kindList {
		k, err := parseKind(strings.TrimSpace(ks))
		if err != nil {
			return nil, err
		}
		if !seen[k] {
			seen[k] = true
			spec.Kinds = append(spec.Kinds, k)
		}
	}
	return spec.withDefaults(), nil
}

func (s *Spec) withDefaults() *Spec {
	if s.Latency <= 0 {
		s.Latency = 50 * time.Millisecond
	}
	if s.LimpDelay <= 0 {
		s.LimpDelay = 5 * time.Millisecond
	}
	if s.TruncateAfter <= 0 {
		s.TruncateAfter = 24
	}
	return s
}

// String renders the canonical spec grammar.
func (s *Spec) String() string {
	names := make([]string, len(s.Kinds))
	for i, k := range s.Kinds {
		names[i] = k.String()
	}
	return fmt.Sprintf("%d:%g:%s", s.Seed, s.Rate, strings.Join(names, ","))
}

// splitmix64 mixes seed and index into a well-distributed 64-bit word.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Decide returns the decision for event index i — a pure function of
// (Seed, Rate, Kinds, i).
func (s *Spec) Decide(i uint64) Kind {
	if s.Rate <= 0 || len(s.Kinds) == 0 {
		return KindNone
	}
	h := splitmix64(s.Seed ^ (i+1)*0xd1342543de82ef95)
	if float64(h>>11)/float64(1<<53) >= s.Rate {
		return KindNone
	}
	pick := splitmix64(h)
	return s.Kinds[pick%uint64(len(s.Kinds))]
}

// Digest fingerprints the first n decisions (FNV-1a over the kind bytes).
// Two runs of the same spec always agree; chaos_smoke.sh asserts this
// through `finserve fault`.
func (s *Spec) Digest(n int) uint64 {
	h := fnv.New64a()
	var buf [1]byte
	for i := 0; i < n; i++ {
		buf[0] = byte(s.Decide(uint64(i)))
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

// Injector hands out decisions in event order and counts what it injected.
type Injector struct {
	spec *Spec
	next atomic.Uint64

	refused   atomic.Uint64
	resets    atomic.Uint64
	truncates atomic.Uint64
	delays    atomic.Uint64
	limps     atomic.Uint64
	clean     atomic.Uint64
}

// NewInjector builds an injector over spec (nil spec injects nothing).
func NewInjector(spec *Spec) *Injector {
	if spec != nil {
		spec = spec.withDefaults()
	}
	return &Injector{spec: spec}
}

// Spec returns the injector's spec (nil when disabled).
func (inj *Injector) Spec() *Spec { return inj.spec }

// NextDecision consumes the next event index and returns its fault kind.
func (inj *Injector) NextDecision() Kind {
	if inj.spec == nil {
		return KindNone
	}
	k := inj.spec.Decide(inj.next.Add(1) - 1)
	switch k {
	case KindRefuse:
		inj.refused.Add(1)
	case KindReset:
		inj.resets.Add(1)
	case KindTruncate:
		inj.truncates.Add(1)
	case KindLatency:
		inj.delays.Add(1)
	case KindLimp:
		inj.limps.Add(1)
	default:
		inj.clean.Add(1)
	}
	return k
}

// Counts reports how many events each kind has hit.
func (inj *Injector) Counts() map[string]uint64 {
	return map[string]uint64{
		"clean":    inj.clean.Load(),
		"refuse":   inj.refused.Load(),
		"reset":    inj.resets.Load(),
		"truncate": inj.truncates.Load(),
		"latency":  inj.delays.Load(),
		"limp":     inj.limps.Load(),
	}
}
