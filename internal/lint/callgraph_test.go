package lint

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadCorpus loads one testdata/src package and fails the test on any
// load or type error.
func loadCorpus(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := Load([]string{dir})
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", dir, len(pkgs))
	}
	for _, e := range pkgs[0].TypeErrors {
		t.Fatalf("corpus %s must type-check cleanly: %v", name, e)
	}
	return pkgs[0]
}

func hasEdge(g *CallGraph, caller, callee string) bool {
	_, ok := g.Edges[caller][callee]
	return ok
}

func TestCallGraphEdges(t *testing.T) {
	p := loadCorpus(t, "callgraph")
	g := BuildCallGraph([]*Package{p})
	pp := p.Path

	static := pp + ".Static"
	helper := pp + ".helper"
	concrete := pp + ".Concrete"
	dynamic := pp + ".Dynamic"
	valueRef := pp + ".ValueRef"
	implPing := "(*" + pp + ".Impl).Ping"
	ifacePing := "(" + pp + ".Pinger).Ping"

	for _, want := range []string{static, helper, concrete, dynamic, valueRef, implPing} {
		if g.Funcs[want] == nil {
			t.Errorf("Funcs missing %s; have %v", want, graphFuncNames(g))
		}
	}

	cases := []struct{ caller, callee, kind string }{
		{static, helper, "static call"},
		{concrete, implPing, "concrete method call"},
		{dynamic, ifacePing, "interface method edge"},
		{dynamic, implPing, "interface resolved to implementer"},
		{valueRef, helper, "function value reference"},
	}
	for _, c := range cases {
		if !hasEdge(g, c.caller, c.callee) {
			t.Errorf("missing %s edge %s -> %s", c.kind, c.caller, c.callee)
		}
	}
	if hasEdge(g, static, implPing) {
		t.Errorf("spurious edge %s -> %s", static, implPing)
	}
}

func TestCallGraphCycle(t *testing.T) {
	p := loadCorpus(t, "callgraph")
	g := BuildCallGraph([]*Package{p})
	a := p.Path + ".CycleA"
	b := p.Path + ".cycleB"

	r := g.Reach([]string{a}, -1)
	if !r.Contains(a) || !r.Contains(b) {
		t.Fatalf("cycle reach from %s missed a member: depths %v", a, r.Depth)
	}
	if got := r.Path(b); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Path(%s) = %v, want [%s %s]", b, got, a, b)
	}
	if r.Path("no/such.Fn") != nil {
		t.Error("Path of an unreached function should be nil")
	}
}

func TestCallGraphHandlerRootsAndDepth(t *testing.T) {
	p := loadCorpus(t, "servealloc")
	g := BuildCallGraph([]*Package{p})
	serveHTTP := "(*" + p.Path + ".engine).ServeHTTP"

	roots := g.HTTPHandlerRoots()
	found := false
	for _, r := range roots {
		if r == serveHTTP {
			found = true
		}
	}
	if !found {
		t.Fatalf("HTTPHandlerRoots() = %v, want to include %s", roots, serveHTTP)
	}

	deep3 := p.Path + ".deep3"
	if r := g.Reach(roots, -1); !r.Contains(deep3) {
		t.Errorf("unbounded reach should include %s", deep3)
	} else if r.Depth[deep3] != 3 {
		t.Errorf("depth(%s) = %d, want 3", deep3, r.Depth[deep3])
	}
	if r := g.Reach(roots, 2); r.Contains(deep3) {
		t.Errorf("depth-2 reach should exclude %s (depth 3)", deep3)
	}
}

// TestHotallocInterproc pins the serve-mode sweep: allocations in
// handler-reachable functions of a non-hot package are flagged, and the
// depth bound excludes functions past it.
func TestHotallocInterproc(t *testing.T) {
	p := loadCorpus(t, "servealloc")
	passes, err := SelectPasses("hotalloc")
	if err != nil {
		t.Fatal(err)
	}

	render := func(cfg Config) string {
		var b strings.Builder
		for _, d := range RunConfig([]*Package{p}, passes, cfg) {
			b.WriteString(d.String())
			b.WriteString("\n")
		}
		return b.String()
	}

	full := render(Config{HotallocDepth: DefaultHotallocDepth})
	for _, want := range []string{"servealloc.go:24", "servealloc.go:34"} {
		if !strings.Contains(full, want) {
			t.Errorf("default-depth sweep missing finding at %s:\n%s", want, full)
		}
	}
	for _, clean := range []string{"servealloc.go:43", "servealloc.go:50", "servealloc.go:61"} {
		if strings.Contains(full, clean) {
			t.Errorf("sweep flagged clean/suppressed line %s:\n%s", clean, full)
		}
	}

	shallow := render(Config{HotallocDepth: 2})
	if !strings.Contains(shallow, "servealloc.go:24") {
		t.Errorf("depth-2 sweep should still flag depth-1 allocation:\n%s", shallow)
	}
	if strings.Contains(shallow, "servealloc.go:34") {
		t.Errorf("depth-2 sweep must not reach the depth-3 allocation:\n%s", shallow)
	}
}

func graphFuncNames(g *CallGraph) []string {
	keys := make([]string, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
