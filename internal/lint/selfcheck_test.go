package lint

import (
	"testing"
)

// TestFinlintSelfCheck runs the full suite over the whole module and
// requires zero diagnostics — the same gate scripts/check.sh enforces.
// Keeping it as a test means `go test ./...` (tier-1) fails the moment a
// change reintroduces a violation, even if someone skips the script.
func TestFinlintSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	pkgs, err := Load([]string{"../../..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages from module root")
	}
	diags := Run(pkgs, Passes())
	for _, d := range diags {
		t.Errorf("finlint: %s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); fix them or annotate with // finlint:ignore <pass> <reason>", len(diags))
	}
}
