// Portfolio: revalue a large European book across a shock grid with the
// scenario engine — the cross product of spot, vol and rate shocks,
// each cell repricing the whole book through the batch pricing path —
// then read the desk numbers off the reduced surface: base value, the
// worst corner, and the VaR/ES ladder over the grid distribution.
//
// The same request, POSTed to /scenario, returns this response byte for
// byte; through the shard router the grid is scattered across replicas
// and merged back to identical bits.
//
//	go run ./examples/portfolio
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"finbench"
	"finbench/internal/scenario"
)

const nPositions = 100_000

func main() {
	mkt := finbench.Market{Rate: 0.03, Volatility: 0.25}

	// A synthetic book: strikes laddered around spot, maturities from one
	// month to five years, alternating calls and puts, long and short.
	req := &scenario.Request{
		Portfolio: make([]scenario.Position, nPositions),
		Grid: scenario.Grid{
			SpotShocks: []float64{-0.30, -0.20, -0.10, -0.05, 0, 0.05, 0.10, 0.20, 0.30},
			VolShocks:  []float64{-0.10, -0.05, 0, 0.05, 0.10},
			RateShifts: []float64{-0.01, 0, 0.01},
		},
	}
	for i := range req.Portfolio {
		p := &req.Portfolio[i]
		p.Spot = 100
		p.Strike = 60 + float64(i%81)          // 60..140
		p.Expiry = 1.0/12 + float64(i%60)/12.0 // 1m..5y
		p.Quantity = float64(1 + i%5)
		if i%2 == 1 {
			p.Type = "put"
		}
		if i%7 == 0 {
			p.Quantity = -p.Quantity
		}
	}
	if err := req.Validate(mkt.Volatility, scenario.Limits{}); err != nil {
		log.Fatal(err)
	}

	cells := req.NumCells()
	fmt.Printf("Revaluing %d positions across a %dx%dx%d shock grid (%d cells, %d pricings):\n\n",
		nPositions, len(req.Grid.SpotShocks), len(req.Grid.VolShocks), len(req.Grid.RateShifts),
		cells, cells*nPositions)

	start := time.Now()
	base, pnl, err := scenario.EvaluateCells(context.Background(), req, mkt, 0, cells)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	resp := scenario.Finalize(req, base, 0, pnl)

	fmt.Printf("  %8.1f ms   %6.2f Mpricings/s   %8.0f cells/s\n\n",
		elapsed.Seconds()*1e3,
		float64(cells*nPositions)/elapsed.Seconds()/1e6,
		float64(cells)/elapsed.Seconds())

	fmt.Printf("Book value (unshocked): %.0f\n", resp.BaseValue)
	lad := resp.Ladder
	fmt.Printf("Across the grid: mean P&L %.0f, worst %.0f, best %.0f\n",
		lad.MeanPnL, lad.WorstPnL, lad.BestPnL)
	for i, q := range lad.Levels {
		fmt.Printf("  VaR %2.0f%%: %10.0f    ES %2.0f%%: %10.0f\n",
			100*q, lad.VaR[i], 100*q, lad.ES[i])
	}

	// The worst corner, located in the row-major cell space (spot
	// outermost, rate innermost) — the same indexing the router uses to
	// scatter cell ranges.
	worst, at := pnl[0], 0
	for i, v := range pnl {
		if v < worst {
			worst, at = v, i
		}
	}
	nv, nr := len(req.Grid.VolShocks), len(req.Grid.RateShifts)
	si, vi, ri := at/(nv*nr), (at/nr)%nv, at%nr
	fmt.Printf("Worst cell: spot %+.0f%%, vol %+.0fpt, rate %+.0fbp -> P&L %.0f\n",
		100*req.Grid.SpotShocks[si], 100*req.Grid.VolShocks[vi],
		10000*req.Grid.RateShifts[ri], worst)
}
