package finbench

import (
	"errors"
	"math"
	"testing"
)

func TestPriceTrinomialMatchesBinomial(t *testing.T) {
	for _, o := range []Option{
		{Type: Call, Style: European, Spot: 100, Strike: 100, Expiry: 1},
		{Type: Put, Style: European, Spot: 100, Strike: 105, Expiry: 0.5},
		{Type: Put, Style: American, Spot: 100, Strike: 110, Expiry: 1},
		{Type: Call, Style: American, Spot: 100, Strike: 95, Expiry: 1},
	} {
		bin, err := Price(o, tMkt, BinomialTree, &Config{BinomialSteps: 2048})
		if err != nil {
			t.Fatal(err)
		}
		tri, err := PriceTrinomial(o, tMkt, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tri.Price-bin.Price) > 0.02*math.Max(1, bin.Price) {
			t.Fatalf("%v %v: trinomial %g vs binomial %g", o.Style, o.Type, tri.Price, bin.Price)
		}
	}
	if _, err := PriceTrinomial(Option{}, tMkt, 100); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("invalid option accepted")
	}
}

func TestPriceAmericanPutLSMCAgainstLattice(t *testing.T) {
	o := Option{Type: Put, Style: American, Spot: 100, Strike: 110, Expiry: 1}
	lattice, _ := Price(o, tMkt, BinomialTree, nil)
	lsmc, err := PriceAmericanPutLSMC(o, tMkt, 80000, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lsmc.Price-lattice.Price) > 0.05*lattice.Price {
		t.Fatalf("LSMC %g vs lattice %g", lsmc.Price, lattice.Price)
	}
	call := o
	call.Type = Call
	if _, err := PriceAmericanPutLSMC(call, tMkt, 1000, 10, 1); !errors.Is(err, ErrMethodStyle) {
		t.Fatal("call accepted by put-only LSMC wrapper")
	}
}

func TestPriceAsianValidation(t *testing.T) {
	bad := AsianCall{Spot: 100, Strike: 100, Expiry: 1, Observations: 33}
	if _, err := PriceAsianMC(bad, tMkt, 100, 1); !errors.Is(err, ErrBadObservations) {
		t.Fatalf("33 observations: %v", err)
	}
	bad.Observations = 0
	if _, err := PriceAsianQMC(bad, tMkt, 100, 1); !errors.Is(err, ErrBadObservations) {
		t.Fatal("0 observations accepted")
	}
	bad = AsianCall{Spot: -1, Strike: 100, Expiry: 1, Observations: 32}
	if _, err := PriceAsianMC(bad, tMkt, 100, 1); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("negative spot accepted")
	}
}

func TestPriceAsianMCvsQMC(t *testing.T) {
	a := AsianCall{Spot: 100, Strike: 100, Expiry: 1, Observations: 32}
	mc, err := PriceAsianMC(a, tMkt, 1<<15, 3)
	if err != nil {
		t.Fatal(err)
	}
	qmc, err := PriceAsianQMC(a, tMkt, 1<<12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.Price-qmc.Price) > 4*(mc.StdErr+qmc.StdErr)+0.01 {
		t.Fatalf("MC %g +- %g vs QMC %g +- %g", mc.Price, mc.StdErr, qmc.Price, qmc.StdErr)
	}
	// Asian below European (volatility of the average is lower).
	euro, _ := Price(Option{Type: Call, Style: European, Spot: 100, Strike: 100, Expiry: 1}, tMkt, ClosedForm, nil)
	if mc.Price >= euro.Price {
		t.Fatalf("Asian %g not below European %g", mc.Price, euro.Price)
	}
}

func TestPriceBasketMCPublic(t *testing.T) {
	b := BasketCall{
		Spots: []float64{100, 100}, Vols: []float64{0.2, 0.2},
		Weights: []float64{0.5, 0.5},
		Corr:    [][]float64{{1, 0.5}, {0.5, 1}},
		Strike:  100, Expiry: 1,
	}
	res, err := PriceBasketMC(b, tMkt, 1<<15, 9)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := Price(Option{Type: Call, Style: European, Spot: 100, Strike: 100, Expiry: 1}, tMkt, ClosedForm, nil)
	if res.Price <= 0 || res.Price >= single.Price {
		t.Fatalf("basket %g out of (0, %g)", res.Price, single.Price)
	}
	if _, err := PriceBasketMC(BasketCall{}, tMkt, 10, 1); err == nil {
		t.Fatal("empty basket accepted")
	}
}

func TestAmericanGreeks(t *testing.T) {
	o := Option{Type: Put, Style: American, Spot: 100, Strike: 110, Expiry: 1}
	delta, gamma, err := AmericanGreeks(o, tMkt, 512)
	if err != nil {
		t.Fatal(err)
	}
	if delta >= 0 || delta < -1 {
		t.Fatalf("American put delta = %g", delta)
	}
	if gamma < -0.05 {
		t.Fatalf("American put gamma = %g", gamma)
	}
	// Deep ITM put: exercised immediately, delta ~ -1.
	deep := o
	deep.Spot = 60
	delta, _, err = AmericanGreeks(deep, tMkt, 512)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delta-(-1)) > 0.02 {
		t.Fatalf("deep-ITM delta = %g, want ~-1", delta)
	}
	euro := o
	euro.Style = European
	if _, _, err := AmericanGreeks(euro, tMkt, 100); !errors.Is(err, ErrMethodStyle) {
		t.Fatal("European accepted by American bumping")
	}
}

func TestPriceBarrierPublic(t *testing.T) {
	b := BarrierCall{Spot: 100, Strike: 100, Expiry: 1, Barrier: 85}
	cf, err := PriceBarrierClosedForm(b, tMkt)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := PriceBarrierMC(b, tMkt, 1<<16, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.Price-cf.Price) > 4*mc.StdErr+0.03 {
		t.Fatalf("barrier MC %g +- %g vs closed form %g", mc.Price, mc.StdErr, cf.Price)
	}
	vanilla, _ := Price(Option{Type: Call, Style: European, Spot: 100, Strike: 100, Expiry: 1}, tMkt, ClosedForm, nil)
	if cf.Price >= vanilla.Price {
		t.Fatalf("knock-out %g not below vanilla %g", cf.Price, vanilla.Price)
	}
	bad := b
	bad.Barrier = 150
	if _, err := PriceBarrierClosedForm(bad, tMkt); err == nil {
		t.Fatal("barrier above spot accepted")
	}
}

func TestPublicJumpDiffusion(t *testing.T) {
	j := JumpDiffusion{Lambda: 0.5, Mu: -0.1, Delta: 0.15}
	cf, err := PriceJumpDiffusionCall(tOpt, tMkt, j)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := PriceJumpDiffusionCallMC(tOpt, tMkt, j, 1<<16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.Price-cf.Price) > 4*mc.StdErr+0.02 {
		t.Fatalf("jump MC %g +- %g vs series %g", mc.Price, mc.StdErr, cf.Price)
	}
	if _, err := PriceJumpDiffusionCall(Option{}, tMkt, j); !errors.Is(err, ErrInvalidOption) {
		t.Fatal("invalid option accepted")
	}
}

func TestPublicHeston(t *testing.T) {
	sv := StochasticVol{V0: 0.04, Kappa: 2, ThetaV: 0.05, SigmaV: 0.3, Rho: -0.5}
	res, err := PriceHestonCallMC(tOpt, tMkt, sv, 1<<14, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Price <= 0 || res.Price >= tOpt.Spot {
		t.Fatalf("Heston price %g implausible", res.Price)
	}
	bad := StochasticVol{Rho: 5}
	if _, err := PriceHestonCallMC(tOpt, tMkt, bad, 10, 4, 1); err == nil {
		t.Fatal("bad rho accepted")
	}
}
