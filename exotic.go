package finbench

import (
	"errors"
	"fmt"

	"finbench/internal/binomial"
	"finbench/internal/montecarlo"
)

// Extensions beyond the vanilla pricing methods: the trinomial lattice,
// least-squares Monte Carlo for American exercise, arithmetic Asian
// options (plain and quasi-Monte Carlo), and multi-asset baskets.

// PriceTrinomial values the option on a Boyle trinomial lattice, the
// alternative lattice method of the paper's taxonomy (Fig. 1). It supports
// every type/style combination.
func PriceTrinomial(o Option, m Market, steps int) (Result, error) {
	if o.Spot <= 0 || o.Strike <= 0 || o.Expiry <= 0 || m.Volatility <= 0 {
		return Result{}, ErrInvalidOption
	}
	if steps <= 0 {
		steps = 1024
	}
	mkt := m.internal()
	switch {
	case o.Style == American && o.Type == Put:
		return Result{Price: binomial.PriceAmericanPutTrinomial(o.Spot, o.Strike, o.Expiry, steps, mkt), Method: TrinomialTree}, nil
	case o.Type == Call:
		// American call on a non-dividend asset = European call.
		return Result{Price: binomial.PriceTrinomial(o.Spot, o.Strike, o.Expiry, steps, mkt), Method: TrinomialTree}, nil
	default: // European put via parity
		call := binomial.PriceTrinomial(o.Spot, o.Strike, o.Expiry, steps, mkt)
		return Result{Price: call - o.Spot + o.Strike*discount(m, o.Expiry), Method: TrinomialTree}, nil
	}
}

// PriceAmericanPutLSMC values an American put by Longstaff-Schwartz
// least-squares Monte Carlo — the simulation-based alternative to the
// lattice and finite-difference American pricers, cross-validating both.
func PriceAmericanPutLSMC(o Option, m Market, paths, exerciseDates int, seed uint64) (Result, error) {
	if o.Spot <= 0 || o.Strike <= 0 || o.Expiry <= 0 || m.Volatility <= 0 {
		return Result{}, ErrInvalidOption
	}
	if o.Type != Put {
		return Result{}, fmt.Errorf("%w: LSMC pricer takes American puts", ErrMethodStyle)
	}
	if paths <= 0 {
		paths = 100000
	}
	if exerciseDates <= 0 {
		exerciseDates = 50
	}
	res := montecarlo.AmericanPutLSMC(o.Spot, o.Strike, o.Expiry, paths, exerciseDates, seed, m.internal())
	return Result{Price: res.Price, StdErr: res.StdErr, Method: MonteCarlo}, nil
}

// AsianCall is an arithmetic-average Asian call contract.
type AsianCall struct {
	Spot, Strike, Expiry float64
	// Observations is the number of averaging dates (power of two).
	Observations int
}

// ErrBadObservations indicates a non-power-of-two observation count.
var ErrBadObservations = errors.New("finbench: observations must be a power of two >= 2")

func (a AsianCall) validate() error {
	if a.Spot <= 0 || a.Strike <= 0 || a.Expiry <= 0 {
		return ErrInvalidOption
	}
	if a.Observations < 2 || a.Observations&(a.Observations-1) != 0 {
		return ErrBadObservations
	}
	return nil
}

// PriceAsianMC values the Asian call by Monte Carlo over Brownian-bridge
// paths.
func PriceAsianMC(a AsianCall, m Market, paths int, seed uint64) (Result, error) {
	if err := a.validate(); err != nil {
		return Result{}, err
	}
	if paths <= 0 {
		paths = 1 << 16
	}
	res := montecarlo.AsianMC(montecarlo.AsianOption{
		S: a.Spot, X: a.Strike, T: a.Expiry, Steps: a.Observations,
	}, paths, seed, m.internal())
	return Result{Price: res.Price, StdErr: res.StdErr, Method: MonteCarlo}, nil
}

// PriceAsianQMC values the Asian call by randomized quasi-Monte Carlo:
// Sobol points driving a Brownian-bridge construction, converging markedly
// faster than plain MC (see the ablate-qmc experiment). StdErr is the
// spread over digital-shift replicates.
func PriceAsianQMC(a AsianCall, m Market, points int, seed uint64) (Result, error) {
	if err := a.validate(); err != nil {
		return Result{}, err
	}
	if points <= 0 {
		points = 1 << 13
	}
	res := montecarlo.AsianQMC(montecarlo.AsianOption{
		S: a.Spot, X: a.Strike, T: a.Expiry, Steps: a.Observations,
	}, points, 4, seed, m.internal())
	return Result{Price: res.Price, StdErr: res.StdErr, Method: MonteCarlo}, nil
}

// BasketCall is a European call on a weighted arithmetic basket of
// correlated assets.
type BasketCall struct {
	Spots, Vols, Weights []float64
	// Corr is the asset correlation matrix (symmetric positive definite).
	Corr           [][]float64
	Strike, Expiry float64
}

// PriceBasketMC values the basket call by correlated Monte Carlo (the
// beyond-three-underlyings regime where lattices are infeasible,
// Sec. II).
func PriceBasketMC(b BasketCall, m Market, paths int, seed uint64) (Result, error) {
	if b.Strike <= 0 || b.Expiry <= 0 {
		return Result{}, ErrInvalidOption
	}
	if paths <= 0 {
		paths = 1 << 16
	}
	res, err := montecarlo.PriceBasketMC(montecarlo.Basket{
		Spots: b.Spots, Vols: b.Vols, Weights: b.Weights,
		Corr: b.Corr, X: b.Strike, T: b.Expiry,
	}, paths, seed, m.internal())
	if err != nil {
		return Result{}, err
	}
	return Result{Price: res.Price, StdErr: res.StdErr, Method: MonteCarlo}, nil
}

// AmericanGreeks estimates delta and gamma of an American option by
// central-difference bumping of the binomial lattice (the closed-form
// greeks of ComputeGreeks apply only to European exercise).
func AmericanGreeks(o Option, m Market, steps int) (delta, gamma float64, err error) {
	if o.Style != American {
		return 0, 0, fmt.Errorf("%w: use ComputeGreeks for European options", ErrMethodStyle)
	}
	if steps <= 0 {
		steps = 1024
	}
	h := o.Spot * 1e-3
	price := func(spot float64) (float64, error) {
		oo := o
		oo.Spot = spot
		r, err := Price(oo, m, BinomialTree, &Config{BinomialSteps: steps})
		return r.Price, err
	}
	up, err := price(o.Spot + h)
	if err != nil {
		return 0, 0, err
	}
	mid, err := price(o.Spot)
	if err != nil {
		return 0, 0, err
	}
	dn, err := price(o.Spot - h)
	if err != nil {
		return 0, 0, err
	}
	return (up - dn) / (2 * h), (up - 2*mid + dn) / (h * h), nil
}

// BarrierCall is a European down-and-out call: it expires worthless if the
// underlying touches the barrier before expiry.
type BarrierCall struct {
	Spot, Strike, Expiry float64
	// Barrier is the knock-out level, 0 < Barrier <= min(Spot, Strike).
	Barrier float64
	// Monitoring is the number of MC monitoring intervals (power-of-two
	// not required; default 64).
	Monitoring int
}

// PriceBarrierClosedForm values the continuously-monitored down-and-out
// call with the Merton reflection formula.
func PriceBarrierClosedForm(b BarrierCall, m Market) (Result, error) {
	p, err := montecarlo.DownOutCallClosedForm(montecarlo.DownOutCall{
		S: b.Spot, X: b.Strike, H: b.Barrier, T: b.Expiry, Steps: max1(b.Monitoring),
	}, m.internal())
	if err != nil {
		return Result{}, err
	}
	return Result{Price: p, Method: ClosedForm}, nil
}

// PriceBarrierMC values the down-and-out call by Monte Carlo. corrected
// selects the Brownian-bridge crossing correction (continuous monitoring);
// without it the estimator reflects discrete monitoring at the given
// frequency and is biased high relative to the closed form.
func PriceBarrierMC(b BarrierCall, m Market, paths int, seed uint64, corrected bool) (Result, error) {
	if paths <= 0 {
		paths = 1 << 16
	}
	res, err := montecarlo.DownOutCallMC(montecarlo.DownOutCall{
		S: b.Spot, X: b.Strike, H: b.Barrier, T: b.Expiry, Steps: max1(b.Monitoring),
	}, paths, seed, corrected, m.internal())
	if err != nil {
		return Result{}, err
	}
	return Result{Price: res.Price, StdErr: res.StdErr, Method: MonteCarlo}, nil
}

func max1(n int) int {
	if n <= 0 {
		return 64
	}
	return n
}

// JumpDiffusion holds Merton (1976) jump parameters: jumps arrive at rate
// Lambda per year with lognormal sizes (log-size mean Mu, stddev Delta).
type JumpDiffusion struct {
	Lambda, Mu, Delta float64
}

// PriceJumpDiffusionCall values a European call under Merton
// jump-diffusion by the closed-form Poisson-weighted Black-Scholes series.
func PriceJumpDiffusionCall(o Option, m Market, j JumpDiffusion) (Result, error) {
	if o.Spot <= 0 || o.Strike <= 0 || o.Expiry <= 0 || m.Volatility <= 0 {
		return Result{}, ErrInvalidOption
	}
	p, err := montecarlo.MertonCallClosedForm(o.Spot, o.Strike, o.Expiry,
		montecarlo.JumpParams{Lambda: j.Lambda, Mu: j.Mu, Delta: j.Delta}, m.internal())
	if err != nil {
		return Result{}, err
	}
	return Result{Price: p, Method: ClosedForm}, nil
}

// PriceJumpDiffusionCallMC values the same call by simulation (validates
// the series; useful when extending to payoffs without a closed form).
func PriceJumpDiffusionCallMC(o Option, m Market, j JumpDiffusion, paths int, seed uint64) (Result, error) {
	if o.Spot <= 0 || o.Strike <= 0 || o.Expiry <= 0 || m.Volatility <= 0 {
		return Result{}, ErrInvalidOption
	}
	if paths <= 0 {
		paths = 1 << 16
	}
	res, err := montecarlo.MertonCallMC(o.Spot, o.Strike, o.Expiry,
		montecarlo.JumpParams{Lambda: j.Lambda, Mu: j.Mu, Delta: j.Delta}, paths, seed, m.internal())
	if err != nil {
		return Result{}, err
	}
	return Result{Price: res.Price, StdErr: res.StdErr, Method: MonteCarlo}, nil
}

// StochasticVol holds Heston (1993) variance dynamics (see
// internal/montecarlo: CIR variance, correlation Rho with the asset).
type StochasticVol struct {
	V0, Kappa, ThetaV, SigmaV, Rho float64
}

// PriceHestonCallMC values a European call under Heston stochastic
// volatility by full-truncation Euler Monte Carlo.
func PriceHestonCallMC(o Option, m Market, sv StochasticVol, paths, steps int, seed uint64) (Result, error) {
	if o.Spot <= 0 || o.Strike <= 0 || o.Expiry <= 0 {
		return Result{}, ErrInvalidOption
	}
	if paths <= 0 {
		paths = 1 << 16
	}
	if steps <= 0 {
		steps = 64
	}
	res, err := montecarlo.HestonCallMC(o.Spot, o.Strike, o.Expiry,
		montecarlo.HestonParams{V0: sv.V0, Kappa: sv.Kappa, ThetaV: sv.ThetaV, SigmaV: sv.SigmaV, Rho: sv.Rho},
		paths, steps, seed, m.internal())
	if err != nil {
		return Result{}, err
	}
	return Result{Price: res.Price, StdErr: res.StdErr, Method: MonteCarlo}, nil
}
