package rng

import "testing"

// FuzzSeedArray checks that arbitrary key material never breaks the
// generator: outputs stay in range and the stream is reproducible.
func FuzzSeedArray(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		key := make([]uint32, 0, len(raw)/4+1)
		for i := 0; i+4 <= len(raw); i += 4 {
			key = append(key, uint32(raw[i])|uint32(raw[i+1])<<8|uint32(raw[i+2])<<16|uint32(raw[i+3])<<24)
		}
		if len(key) == 0 {
			key = []uint32{0}
		}
		a := NewMT19937(0)
		a.SeedArray(key)
		draws := make([]uint32, 100)
		for i := range draws {
			draws[i] = a.Uint32()
			u := a.Float64OO()
			if u <= 0 || u >= 1 {
				t.Fatalf("Float64OO out of range: %g", u)
			}
		}
		b := NewMT19937(0)
		b.SeedArray(key)
		for i := range draws {
			if got := b.Uint32(); got != draws[i] {
				t.Fatalf("draw %d not reproducible: %d != %d", i, got, draws[i])
			}
			b.Float64OO()
		}
	})
}
