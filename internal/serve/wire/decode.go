package wire

import (
	"encoding/json"
	"strconv"
	"unsafe"

	"finbench"
)

// Fast JSON request decoder. fastDecodePrice/fastDecodeGreeks parse the
// subset of JSON that real pricing clients emit — ASCII strings without
// escapes, unique known keys, integer tokens for integer fields — without
// allocating. Anything outside the subset (escapes, unknown or duplicate
// keys, non-ASCII, floats where ints belong, malformed input) makes the
// fast path bail and the whole body is re-decoded with encoding/json, so
// accept/reject behavior and decoded values are exactly the reference
// semantics. A differential fuzz test pins the equivalence: whenever the
// fast path succeeds, the reference decoder must succeed with the same
// result.

// DecodeRequest parses and validates a /price body and resolves its
// method (the one and only method parse). It is a fuzz entry point: any
// input must either return an error or a request whose options are all
// finite, positive, and within MaxRequestOptions. The returned request is
// pooled: release it with PutRequest. data is not retained.
func DecodeRequest(data []byte) (*PriceRequest, finbench.Method, error) {
	req := priceReqPool.Get().(*PriceRequest)
	req.reset()
	if !fastDecodePrice(data, req) {
		if err := referenceDecodePrice(data, req); err != nil {
			PutRequest(req)
			return nil, 0, err
		}
	}
	method, err := validatePrice(req)
	if err != nil {
		PutRequest(req)
		return nil, 0, err
	}
	return req, method, nil
}

// DecodeGreeksRequest parses and validates a /greeks body. The returned
// request is pooled: release it with PutGreeksRequest. data is not
// retained.
func DecodeGreeksRequest(data []byte) (*GreeksRequest, error) {
	req := greeksReqPool.Get().(*GreeksRequest)
	req.Options = req.Options[:0]
	req.DeadlineMS = 0
	if !fastDecodeGreeks(data, req) {
		req.DeadlineMS = 0
		opts := req.Options[:cap(req.Options)]
		clear(opts)
		req.Options = opts[:0]
		if err := json.Unmarshal(data, req); err != nil {
			PutGreeksRequest(req)
			return nil, err
		}
	}
	if err := validateGreeks(req); err != nil {
		PutGreeksRequest(req)
		return nil, err
	}
	return req, nil
}

// referenceDecodePrice re-decodes data with encoding/json after a fast
// bail. The pooled backing arrays are cleared first: Unmarshal merges
// into existing elements, and stale pooled values must not leak into
// fields the body does not set.
func referenceDecodePrice(data []byte, req *PriceRequest) error {
	req.reset()
	opts := req.Options[:cap(req.Options)]
	clear(opts)
	req.Options = opts[:0]
	return json.Unmarshal(data, req)
}

// scanner walks a JSON byte slice. All methods bail (return false) on
// anything outside the fast subset.
type scanner struct {
	b []byte
	i int
}

func (s *scanner) skipWS() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

// consume advances past c if it is the current byte.
func (s *scanner) consume(c byte) bool {
	if s.i < len(s.b) && s.b[s.i] == c {
		s.i++
		return true
	}
	return false
}

// rawString returns the bytes of a string literal without unquoting.
// Escapes, control characters, and non-ASCII bail to the reference
// decoder (which owns escape and UTF-8 coercion semantics).
func (s *scanner) rawString() ([]byte, bool) {
	if s.i >= len(s.b) || s.b[s.i] != '"' {
		return nil, false
	}
	s.i++
	start := s.i
	for s.i < len(s.b) {
		c := s.b[s.i]
		if c == '"' {
			out := s.b[start:s.i]
			s.i++
			return out, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, false
		}
		s.i++
	}
	return nil, false
}

// number returns the bytes of a number token, validated against the JSON
// grammar, and whether it is integer-syntax (no fraction or exponent).
func (s *scanner) number() (tok []byte, isInt bool, ok bool) {
	b := s.b
	start := s.i
	i := s.i
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return nil, false, false
	}
	isInt = true
	if i < len(b) && b[i] == '.' {
		isInt = false
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, false, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		isInt = false
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, false, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	s.i = i
	return b[start:i], isInt, true
}

// bts views b as a string without copying. The view must not outlive the
// call it is passed to (the underlying buffer is pooled).
func bts(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// parseFloatTok parses a grammar-validated number token. A range error
// (1e999) bails to the reference decoder for its exact error.
func parseFloatTok(tok []byte) (float64, bool) {
	f, err := strconv.ParseFloat(bts(tok), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// parseIntTok parses an integer-syntax token into an int64. Tokens beyond
// 18 digits bail (they may overflow; the reference decoder owns the error
// text).
func parseIntTok(tok []byte) (int64, bool) {
	neg := false
	digits := tok
	if len(digits) > 0 && digits[0] == '-' {
		neg = true
		digits = digits[1:]
	}
	if len(digits) == 0 || len(digits) > 18 {
		return 0, false
	}
	var v int64
	for _, c := range digits {
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// parseUintTok parses a non-negative integer token into a uint64; ≤19
// digits always fit.
func parseUintTok(tok []byte) (uint64, bool) {
	if len(tok) == 0 || tok[0] == '-' || len(tok) > 19 {
		return 0, false
	}
	var v uint64
	for _, c := range tok {
		v = v*10 + uint64(c-'0')
	}
	return v, true
}

// Canonical key and value tokens. Matching raw bytes against these and
// assigning the constant keeps decoded strings allocation-free.
var (
	keyMethod   = []byte("method")
	keyOptions  = []byte("options")
	keyColumnar = []byte("columnar")
	keyConfig   = []byte("config")
	keyDeadline = []byte("deadline_ms")

	keyType   = []byte("type")
	keyStyle  = []byte("style")
	keySpot   = []byte("spot")
	keyStrike = []byte("strike")
	keyExpiry = []byte("expiry")

	keyBinomialSteps = []byte("binomial_steps")
	keyGridPoints    = []byte("grid_points")
	keyTimeSteps     = []byte("time_steps")
	keyMCPaths       = []byte("mc_paths")
	keySeed          = []byte("seed")
)

func bytesEqual(a []byte, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// canonString maps a raw ASCII token onto one of the canonical values,
// falling back to an allocated copy (only reachable for values that then
// fail validation with the same message the reference path produces).
func canonString(raw []byte, canon ...string) string {
	s := bts(raw)
	for _, c := range canon {
		if s == c {
			return c
		}
	}
	return string(raw)
}

var methodNames = []string{"", "closed-form", "binomial-tree", "crank-nicolson", "monte-carlo", "trinomial-tree"}
var typeNames = []string{"", "call", "put"}
var styleNames = []string{"", "european", "american"}

// fastDecodePrice is the allocation-free decode attempt. req must be
// reset. Returns false to bail to the reference decoder.
func fastDecodePrice(data []byte, req *PriceRequest) bool {
	s := scanner{b: data}
	s.skipWS()
	if !s.consume('{') {
		return false
	}
	const (
		seenMethod = 1 << iota
		seenOptions
		seenColumnar
		seenConfig
		seenDeadline
	)
	var seen uint8
	s.skipWS()
	if !s.consume('}') {
		for {
			s.skipWS()
			key, ok := s.rawString()
			if !ok {
				return false
			}
			s.skipWS()
			if !s.consume(':') {
				return false
			}
			s.skipWS()
			switch {
			case bytesEqual(key, keyMethod):
				if seen&seenMethod != 0 {
					return false
				}
				seen |= seenMethod
				raw, ok := s.rawString()
				if !ok {
					return false
				}
				req.Method = canonString(raw, methodNames...)
			case bytesEqual(key, keyOptions):
				if seen&seenOptions != 0 {
					return false
				}
				seen |= seenOptions
				if !s.parseOptions(&req.Options) {
					return false
				}
			case bytesEqual(key, keyColumnar):
				if seen&seenColumnar != 0 {
					return false
				}
				seen |= seenColumnar
				req.Columnar = &req.colScratch
				if !s.parseColumns(&req.colScratch) {
					return false
				}
			case bytesEqual(key, keyConfig):
				if seen&seenConfig != 0 {
					return false
				}
				seen |= seenConfig
				if !s.parseConfig(&req.Config) {
					return false
				}
			case bytesEqual(key, keyDeadline):
				if seen&seenDeadline != 0 {
					return false
				}
				seen |= seenDeadline
				tok, isInt, ok := s.number()
				if !ok || !isInt {
					return false
				}
				v, ok := parseIntTok(tok)
				if !ok {
					return false
				}
				req.DeadlineMS = v
			default:
				// Unknown key: the reference decoder ignores it; let it.
				return false
			}
			s.skipWS()
			if s.consume(',') {
				continue
			}
			if s.consume('}') {
				break
			}
			return false
		}
	}
	s.skipWS()
	return s.i == len(s.b)
}

// fastDecodeGreeks mirrors fastDecodePrice for the /greeks body.
func fastDecodeGreeks(data []byte, req *GreeksRequest) bool {
	s := scanner{b: data}
	s.skipWS()
	if !s.consume('{') {
		return false
	}
	const (
		seenOptions = 1 << iota
		seenDeadline
	)
	var seen uint8
	s.skipWS()
	if !s.consume('}') {
		for {
			s.skipWS()
			key, ok := s.rawString()
			if !ok {
				return false
			}
			s.skipWS()
			if !s.consume(':') {
				return false
			}
			s.skipWS()
			switch {
			case bytesEqual(key, keyOptions):
				if seen&seenOptions != 0 {
					return false
				}
				seen |= seenOptions
				if !s.parseOptions(&req.Options) {
					return false
				}
			case bytesEqual(key, keyDeadline):
				if seen&seenDeadline != 0 {
					return false
				}
				seen |= seenDeadline
				tok, isInt, ok := s.number()
				if !ok || !isInt {
					return false
				}
				v, ok := parseIntTok(tok)
				if !ok {
					return false
				}
				req.DeadlineMS = v
			default:
				return false
			}
			s.skipWS()
			if s.consume(',') {
				continue
			}
			if s.consume('}') {
				break
			}
			return false
		}
	}
	s.skipWS()
	return s.i == len(s.b)
}

// parseOptions parses the options array into *dst, reusing capacity.
func (s *scanner) parseOptions(dst *[]Option) bool {
	if !s.consume('[') {
		return false
	}
	opts := (*dst)[:0]
	s.skipWS()
	if s.consume(']') {
		*dst = opts
		return true
	}
	for {
		s.skipWS()
		// finlint:ignore hotalloc append into the pooled backing array; amortized zero-alloc in steady state
		opts = append(opts, Option{})
		if !s.parseOption(&opts[len(opts)-1]) {
			*dst = opts
			return false
		}
		s.skipWS()
		if s.consume(',') {
			continue
		}
		if s.consume(']') {
			*dst = opts
			return true
		}
		*dst = opts
		return false
	}
}

// parseOption parses one option object. Duplicate keys are scalar
// last-wins, matching the reference decoder, so no bail is needed.
func (s *scanner) parseOption(o *Option) bool {
	if !s.consume('{') {
		return false
	}
	s.skipWS()
	if s.consume('}') {
		return true
	}
	for {
		s.skipWS()
		key, ok := s.rawString()
		if !ok {
			return false
		}
		s.skipWS()
		if !s.consume(':') {
			return false
		}
		s.skipWS()
		switch {
		case bytesEqual(key, keyType):
			raw, ok := s.rawString()
			if !ok {
				return false
			}
			o.Type = canonString(raw, typeNames...)
		case bytesEqual(key, keyStyle):
			raw, ok := s.rawString()
			if !ok {
				return false
			}
			o.Style = canonString(raw, styleNames...)
		case bytesEqual(key, keySpot):
			if !s.parseFloatInto(&o.Spot) {
				return false
			}
		case bytesEqual(key, keyStrike):
			if !s.parseFloatInto(&o.Strike) {
				return false
			}
		case bytesEqual(key, keyExpiry):
			if !s.parseFloatInto(&o.Expiry) {
				return false
			}
		default:
			return false
		}
		s.skipWS()
		if s.consume(',') {
			continue
		}
		if s.consume('}') {
			return true
		}
		return false
	}
}

func (s *scanner) parseFloatInto(dst *float64) bool {
	tok, _, ok := s.number()
	if !ok {
		return false
	}
	f, ok := parseFloatTok(tok)
	if !ok {
		return false
	}
	*dst = f
	return true
}

// parseConfig parses the config object (integer tokens only; a float
// where an int belongs is a reference-decoder error).
func (s *scanner) parseConfig(c *Config) bool {
	if !s.consume('{') {
		return false
	}
	s.skipWS()
	if s.consume('}') {
		return true
	}
	for {
		s.skipWS()
		key, ok := s.rawString()
		if !ok {
			return false
		}
		s.skipWS()
		if !s.consume(':') {
			return false
		}
		s.skipWS()
		tok, isInt, ok := s.number()
		if !ok || !isInt {
			return false
		}
		switch {
		case bytesEqual(key, keySeed):
			v, ok := parseUintTok(tok)
			if !ok {
				return false
			}
			c.Seed = v
		default:
			v, ok := parseIntTok(tok)
			if !ok {
				return false
			}
			switch {
			case bytesEqual(key, keyBinomialSteps):
				c.BinomialSteps = int(v)
			case bytesEqual(key, keyGridPoints):
				c.GridPoints = int(v)
			case bytesEqual(key, keyTimeSteps):
				c.TimeSteps = int(v)
			case bytesEqual(key, keyMCPaths):
				c.MCPaths = int(v)
			default:
				return false
			}
		}
		s.skipWS()
		if s.consume(',') {
			continue
		}
		if s.consume('}') {
			return true
		}
		return false
	}
}

// parseColumns parses the JSON-framed columnar object. Array-valued keys
// must be unique (the reference decoder merges duplicate arrays
// elementwise; bail rather than replicate that).
func (s *scanner) parseColumns(c *Columns) bool {
	if !s.consume('{') {
		return false
	}
	const (
		seenSpot = 1 << iota
		seenStrike
		seenExpiry
		seenType
		seenStyle
	)
	var seen uint8
	s.skipWS()
	if s.consume('}') {
		return true
	}
	for {
		s.skipWS()
		key, ok := s.rawString()
		if !ok {
			return false
		}
		s.skipWS()
		if !s.consume(':') {
			return false
		}
		s.skipWS()
		switch {
		case bytesEqual(key, keySpot):
			if seen&seenSpot != 0 {
				return false
			}
			seen |= seenSpot
			if !s.parseFloatArray(&c.Spots) {
				return false
			}
		case bytesEqual(key, keyStrike):
			if seen&seenStrike != 0 {
				return false
			}
			seen |= seenStrike
			if !s.parseFloatArray(&c.Strikes) {
				return false
			}
		case bytesEqual(key, keyExpiry):
			if seen&seenExpiry != 0 {
				return false
			}
			seen |= seenExpiry
			if !s.parseFloatArray(&c.Expiries) {
				return false
			}
		case bytesEqual(key, keyType):
			if seen&seenType != 0 {
				return false
			}
			seen |= seenType
			raw, ok := s.rawString()
			if !ok {
				return false
			}
			c.Types = string(raw)
		case bytesEqual(key, keyStyle):
			if seen&seenStyle != 0 {
				return false
			}
			seen |= seenStyle
			raw, ok := s.rawString()
			if !ok {
				return false
			}
			c.Styles = string(raw)
		default:
			return false
		}
		s.skipWS()
		if s.consume(',') {
			continue
		}
		if s.consume('}') {
			return true
		}
		return false
	}
}

func (s *scanner) parseFloatArray(dst *[]float64) bool {
	if !s.consume('[') {
		return false
	}
	arr := (*dst)[:0]
	s.skipWS()
	if s.consume(']') {
		*dst = arr
		return true
	}
	for {
		s.skipWS()
		tok, _, ok := s.number()
		if !ok {
			*dst = arr
			return false
		}
		f, ok := parseFloatTok(tok)
		if !ok {
			*dst = arr
			return false
		}
		arr = append(arr, f)
		s.skipWS()
		if s.consume(',') {
			continue
		}
		if s.consume(']') {
			*dst = arr
			return true
		}
		*dst = arr
		return false
	}
}
