package pricecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testKey(i int) Key {
	return Digest("closed-form", 0.05, 0.2, Params{BinomialSteps: 64}, []Contract{
		{Type: "call", Spot: float64(100 + i), Strike: 100, Expiry: 1},
	})
}

func computeBody(body string) func(context.Context) ([]byte, bool, error) {
	return func(context.Context) ([]byte, bool, error) { return []byte(body), true, nil }
}

func TestHitAfterMiss(t *testing.T) {
	c := New(1<<20, 0)
	key := testKey(0)
	var calls atomic.Int64
	compute := func(context.Context) ([]byte, bool, error) {
		calls.Add(1)
		return []byte(`{"px":1}`), true, nil
	}
	b1, o1, err := c.Do(context.Background(), key, compute)
	if err != nil || o1 != Miss {
		t.Fatalf("first Do: outcome=%v err=%v", o1, err)
	}
	b2, o2, err := c.Do(context.Background(), key, compute)
	if err != nil || o2 != Hit {
		t.Fatalf("second Do: outcome=%v err=%v", o2, err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("hit body %q differs from miss body %q", b2, b1)
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreFalseNotCachedNotShared(t *testing.T) {
	c := New(1<<20, 0)
	key := testKey(0)
	uncacheable := func(context.Context) ([]byte, bool, error) { return []byte("degraded"), false, nil }
	b, o, err := c.Do(context.Background(), key, uncacheable)
	if err != nil || o != Miss || string(b) != "degraded" {
		t.Fatalf("Do = %q %v %v", b, o, err)
	}
	if st := c.Snapshot(); st.Entries != 0 || st.Inserts != 0 {
		t.Fatalf("uncacheable result was stored: %+v", st)
	}
	// The next call must recompute.
	b, o, err = c.Do(context.Background(), key, computeBody("fresh"))
	if err != nil || o != Miss || string(b) != "fresh" {
		t.Fatalf("recompute = %q %v %v", b, o, err)
	}
}

// TestSingleflightCollapse: N identical concurrent requests, one slow
// leader — exactly one compute, everyone gets the same bytes.
func TestSingleflightCollapse(t *testing.T) {
	c := New(1<<20, 0)
	key := testKey(0)
	const waiters = 8

	leaderIn := make(chan struct{}) // closed once the leader is computing
	leaderGo := make(chan struct{}) // closed to let the leader finish
	var calls atomic.Int64
	compute := func(context.Context) ([]byte, bool, error) {
		calls.Add(1)
		close(leaderIn)
		<-leaderGo
		return []byte("shared"), true, nil
	}

	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters+1)
	bodies := make([][]byte, waiters+1)
	errs := make([]error, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		bodies[0], outcomes[0], errs[0] = c.Do(context.Background(), key, compute)
	}()
	<-leaderIn
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], outcomes[i], errs[i] = c.Do(context.Background(), key, compute)
		}(i)
	}
	// Give waiters a moment to park on the flight, then release.
	time.Sleep(20 * time.Millisecond)
	close(leaderGo)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	var collapsed, hit int
	for i, o := range outcomes {
		if errs[i] != nil {
			t.Fatalf("caller %d error: %v", i, errs[i])
		}
		if string(bodies[i]) != "shared" {
			t.Fatalf("caller %d body = %q", i, bodies[i])
		}
		switch o {
		case Collapsed:
			collapsed++
		case Hit:
			hit++
		}
	}
	if collapsed == 0 {
		t.Fatalf("no caller collapsed onto the flight (outcomes %v)", outcomes)
	}
	if got := c.Snapshot().Collapsed; got != uint64(collapsed) {
		t.Fatalf("collapsed counter = %d, want %d", got, collapsed)
	}
}

// TestWaiterHonorsOwnDeadline: the leader computes forever; a waiter with
// a short deadline must fail with its own ctx error, promptly.
func TestWaiterHonorsOwnDeadline(t *testing.T) {
	c := New(1<<20, 0)
	key := testKey(0)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	defer close(leaderGo)
	go c.Do(context.Background(), key, func(context.Context) ([]byte, bool, error) {
		close(leaderIn)
		<-leaderGo
		return []byte("late"), true, nil
	})
	<-leaderIn

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := c.Do(ctx, key, computeBody("unused"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("waiter hung %v on leader's flight", elapsed)
	}
}

// TestCancelledLeaderWaiterRedispatches: the leader's ctx is cancelled
// mid-compute; a live waiter must re-dispatch (becoming the new leader)
// and succeed under its own ctx — never hang, never inherit the
// cancellation.
func TestCancelledLeaderWaiterRedispatches(t *testing.T) {
	c := New(1<<20, 0)
	key := testKey(0)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, key, func(ctx context.Context) ([]byte, bool, error) {
			close(leaderIn)
			<-ctx.Done()
			return nil, false, ctx.Err()
		})
		leaderDone <- err
	}()
	<-leaderIn

	waiterDone := make(chan struct{})
	var waiterBody []byte
	var waiterOutcome Outcome
	var waiterErr error
	go func() {
		defer close(waiterDone)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		waiterBody, waiterOutcome, waiterErr = c.Do(ctx, key, computeBody("recomputed"))
	}()

	time.Sleep(20 * time.Millisecond) // let the waiter park on the flight
	cancelLeader()

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want Canceled", err)
	}
	select {
	case <-waiterDone:
	case <-time.After(10 * time.Second):
		t.Fatal("waiter hung after leader cancellation")
	}
	if waiterErr != nil {
		t.Fatalf("waiter err = %v, want nil (re-dispatch)", waiterErr)
	}
	if waiterOutcome != Miss || string(waiterBody) != "recomputed" {
		t.Fatalf("waiter got %v %q, want Miss \"recomputed\"", waiterOutcome, waiterBody)
	}
}

// TestTTLExpiry: entries expire on the injected clock; an expired entry
// is a miss and gets recomputed — and expiry during an in-flight leader
// does not disturb the flight.
func TestTTLExpiry(t *testing.T) {
	c := New(1<<20, time.Minute)
	now := time.Unix(1700000000, 0)
	var mu sync.Mutex
	c.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	key := testKey(0)
	if _, o, _ := c.Do(context.Background(), key, computeBody("v1")); o != Miss {
		t.Fatalf("first Do outcome %v", o)
	}
	advance(30 * time.Second)
	if _, o, _ := c.Do(context.Background(), key, computeBody("v2")); o != Hit {
		t.Fatalf("fresh entry outcome %v, want Hit", o)
	}
	advance(31 * time.Second)
	b, o, _ := c.Do(context.Background(), key, computeBody("v2"))
	if o != Miss || string(b) != "v2" {
		t.Fatalf("expired entry: outcome %v body %q, want Miss v2", o, b)
	}
	if st := c.Snapshot(); st.Expired != 1 {
		t.Fatalf("expired counter = %d, want 1", st.Expired)
	}
}

// TestTTLExpiryWithLeaderInFlight: entry expires while a leader for the
// same key is computing (possible when the leader started on the expired
// lookup). Waiters parked on that flight still get the leader's result;
// the re-inserted entry carries a fresh TTL.
func TestTTLExpiryWithLeaderInFlight(t *testing.T) {
	c := New(1<<20, time.Minute)
	now := time.Unix(1700000000, 0)
	var mu sync.Mutex
	c.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	key := testKey(0)
	c.Do(context.Background(), key, computeBody("v1"))
	advance(2 * time.Minute) // stored entry now expired

	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, o, err := c.Do(context.Background(), key, func(context.Context) ([]byte, bool, error) {
			close(leaderIn)
			<-leaderGo
			return []byte("v2"), true, nil
		})
		if o != Miss || err != nil {
			t.Errorf("leader outcome %v err %v", o, err)
		}
	}()
	<-leaderIn

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		b, o, err := c.Do(context.Background(), key, computeBody("unused"))
		if err != nil || o != Collapsed || string(b) != "v2" {
			t.Errorf("waiter got %q %v %v, want v2 Collapsed nil", b, o, err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(leaderGo)
	<-leaderDone
	<-waiterDone

	// Fresh TTL on the re-inserted entry.
	advance(30 * time.Second)
	if b, o, _ := c.Do(context.Background(), key, computeBody("v3")); o != Hit || string(b) != "v2" {
		t.Fatalf("re-inserted entry: outcome %v body %q", o, b)
	}
}

// TestEvictionOfCollapsedEntry: the entry a flight just inserted is
// evicted by byte pressure before a parked waiter wakes — the waiter is
// still served from the flight (the flight result outlives the store).
func TestEvictionOfCollapsedEntry(t *testing.T) {
	big := make([]byte, 600)
	c := New(int64(len(big))+entryOverhead, 0) // budget fits exactly one big entry

	keyA, keyB := testKey(0), testKey(1)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	go c.Do(context.Background(), keyA, func(context.Context) ([]byte, bool, error) {
		close(leaderIn)
		<-leaderGo
		return big, true, nil
	})
	<-leaderIn

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		b, o, err := c.Do(context.Background(), keyA, computeBody("unused"))
		if err != nil || o != Collapsed || len(b) != len(big) {
			t.Errorf("waiter got len=%d %v %v, want collapsed big body", len(b), o, err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(leaderGo)
	<-waiterDone

	// Evict keyA by inserting keyB under the same tight budget.
	if _, o, _ := c.Do(context.Background(), keyB, func(context.Context) ([]byte, bool, error) {
		return big, true, nil
	}); o != Miss {
		t.Fatalf("keyB outcome %v", o)
	}
	st := c.Snapshot()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("after pressure: %+v", st)
	}
	if _, o, _ := c.Do(context.Background(), keyA, computeBody("back")); o != Miss {
		t.Fatalf("evicted keyA outcome %v, want Miss", o)
	}
}

func TestOversizeBodyRejected(t *testing.T) {
	c := New(256, 0)
	body := make([]byte, 512)
	b, o, err := c.Do(context.Background(), testKey(0), func(context.Context) ([]byte, bool, error) {
		return body, true, nil
	})
	if err != nil || o != Miss || len(b) != 512 {
		t.Fatalf("oversize Do = len=%d %v %v", len(b), o, err)
	}
	st := c.Snapshot()
	if st.Rejected != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize body entered store: %+v", st)
	}
}

func TestLRUOrder(t *testing.T) {
	// Budget for exactly two entries of this size.
	body := []byte("0123456789")
	size := int64(len(body)) + entryOverhead
	c := New(2*size, 0)
	k0, k1, k2 := testKey(0), testKey(1), testKey(2)
	mk := func(k Key) { c.Do(context.Background(), k, computeBody(string(body))) }
	mk(k0)
	mk(k1)
	// Touch k0 so k1 is least recently used.
	if _, o, _ := c.Do(context.Background(), k0, computeBody("x")); o != Hit {
		t.Fatal("expected hit on k0")
	}
	mk(k2) // evicts k1
	if _, o, _ := c.Do(context.Background(), k0, computeBody("x")); o != Hit {
		t.Fatal("k0 should have survived (recently used)")
	}
	if _, o, _ := c.Do(context.Background(), k1, computeBody("x")); o != Miss {
		t.Fatal("k1 should have been evicted")
	}
}

func TestPurge(t *testing.T) {
	c := New(1<<20, 0)
	c.Do(context.Background(), testKey(0), computeBody("a"))
	c.Do(context.Background(), testKey(1), computeBody("b"))
	c.Purge()
	st := c.Snapshot()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after purge: %+v", st)
	}
	if _, o, _ := c.Do(context.Background(), testKey(0), computeBody("a")); o != Miss {
		t.Fatal("purged entry still hit")
	}
}

func TestOutcomeString(t *testing.T) {
	for _, tc := range []struct {
		o    Outcome
		want string
	}{{Miss, "miss"}, {Hit, "hit"}, {Collapsed, "collapsed"}} {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.o, got, tc.want)
		}
	}
}

// TestConcurrentStress hammers a small key space from many goroutines
// under -race: correctness bar is no deadlock, no panic, every successful
// call returns the body its key maps to.
func TestConcurrentStress(t *testing.T) {
	c := New(4096, 10*time.Millisecond)
	const keys = 8
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % keys
				want := fmt.Sprintf("body-%d", k)
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				b, _, err := c.Do(ctx, testKey(k), func(context.Context) ([]byte, bool, error) {
					return []byte(want), k%3 != 0, nil // every third key uncacheable
				})
				cancel()
				if err == nil && string(b) != want {
					t.Errorf("key %d returned %q", k, b)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDigestCanonicalization(t *testing.T) {
	p := Params{BinomialSteps: 64, GridPoints: 100, TimeSteps: 50}
	base := []Contract{{Type: "call", Style: "european", Spot: 100, Strike: 95, Expiry: 0.5}}
	spelledOut := Digest("closed-form", 0.05, 0.2, p, base)
	blank := Digest("closed-form", 0.05, 0.2, p, []Contract{{Spot: 100, Strike: 95, Expiry: 0.5}})
	if spelledOut != blank {
		t.Fatal("\"call\"/\"european\" and \"\" must digest identically")
	}

	distinct := []Key{spelledOut}
	add := func(name string, k Key) {
		for _, prev := range distinct {
			if k == prev {
				t.Fatalf("%s collided with a prior digest", name)
			}
		}
		distinct = append(distinct, k)
	}
	add("put", Digest("closed-form", 0.05, 0.2, p, []Contract{{Type: "put", Spot: 100, Strike: 95, Expiry: 0.5}}))
	add("american", Digest("closed-form", 0.05, 0.2, p, []Contract{{Style: "american", Spot: 100, Strike: 95, Expiry: 0.5}}))
	add("spot", Digest("closed-form", 0.05, 0.2, p, []Contract{{Spot: 101, Strike: 95, Expiry: 0.5}}))
	add("rate", Digest("closed-form", 0.06, 0.2, p, base))
	add("vol", Digest("closed-form", 0.05, 0.21, p, base))
	add("method", Digest("binomial", 0.05, 0.2, p, base))
	add("steps", Digest("closed-form", 0.05, 0.2, Params{BinomialSteps: 65, GridPoints: 100, TimeSteps: 50}, base))
	add("seed", Digest("closed-form", 0.05, 0.2, Params{BinomialSteps: 64, GridPoints: 100, TimeSteps: 50, Seed: 1}, base))
	add("batch2", Digest("closed-form", 0.05, 0.2, p, append(append([]Contract{}, base...), base...)))
	add("empty", Digest("closed-form", 0.05, 0.2, p, nil))

	// Order is significant: results align with request order.
	a := Contract{Spot: 100, Strike: 95, Expiry: 0.5}
	b := Contract{Spot: 110, Strike: 105, Expiry: 1.5}
	if Digest("m", 0, 0, p, []Contract{a, b}) == Digest("m", 0, 0, p, []Contract{b, a}) {
		t.Fatal("permuted batches must digest differently")
	}

	// Prefix-freedom: content shifted across the method/contract boundary
	// must not collide.
	if Digest("ab", 0, 0, Params{}, nil) == Digest("a", 0, 0, Params{}, nil) {
		t.Fatal("method length must be significant")
	}
}
