package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"finbench/internal/perf"
)

// The persistent fork-join pool. OpenMP runtimes keep one thread team
// alive across parallel regions, so a `#pragma omp for` over a small batch
// costs a team wake-up, not thread creation; the original implementation
// here spawned fresh goroutines and a new WaitGroup per loop, which at
// small grain costs more than the loop body. The pool replaces the spawn
// with a handoff: long-lived workers park on a sync.Cond and each parallel
// region enqueues (job, slot) tasks that the workers — and the submitting
// goroutine itself — drain.
//
// Scheduling rules:
//
//   - Slot 0 of every job runs on the submitting goroutine (the "master
//     thread" of the region), so a region that collapses to one worker
//     never touches the queue.
//   - After running slot 0 the submitter helps drain the queue until its
//     own job completes. Helping is what makes nested regions safe: a
//     task that itself opens a parallel region can always make progress
//     by executing queued tasks, so the pool never deadlocks waiting for
//     a worker that is waiting for it.
//   - Helper workers are started lazily, up to GOMAXPROCS-1 (grown if
//     GOMAXPROCS rises later; never shrunk — surplus workers just park).
//     A job may have more slots than workers: the excess tasks wait in
//     the queue and are picked up as slots free, exactly like OpenMP
//     chunks on a smaller team.
type job struct {
	run func(slot int)
	// pending counts unfinished slots; the goroutine that decrements it
	// to zero closes done.
	pending atomic.Int64
	done    chan struct{}
}

// finish runs slot s of the job and signals completion of the last slot.
func (j *job) finish(s int) {
	j.run(s)
	if j.pending.Add(-1) == 0 {
		close(j.done)
	}
}

type task struct {
	j    *job
	slot int
}

type pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []task // LIFO: newest tasks first, for locality and fast self-help
	spawned  int    // helper workers started so far
	sleeping int    // helpers currently parked in cond.Wait

	// Introspection counters (see Sched). All monotonic.
	jobs       atomic.Uint64 // fork-join regions that actually forked
	serial     atomic.Uint64 // regions that ran inline on the caller
	dispatched atomic.Uint64 // tasks enqueued for other goroutines
	handoffs   atomic.Uint64 // tasks executed by parked pool workers
	steals     atomic.Uint64 // queued tasks executed by a joining submitter
}

var defaultPool = newPool()

func newPool() *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// run executes fn(slot) for every slot in [0, slots), returning when all
// slots have completed. Slot 0 runs on the calling goroutine.
func (p *pool) run(slots int, fn func(slot int)) {
	if slots <= 1 {
		p.serial.Add(1)
		fn(0)
		return
	}
	j := &job{run: fn, done: make(chan struct{})}
	j.pending.Store(int64(slots))
	p.jobs.Add(1)
	p.dispatched.Add(uint64(slots - 1))

	p.mu.Lock()
	p.ensureLocked(slots - 1)
	// Enqueue high slots first so the LIFO pop hands out slot 1 first,
	// keeping task pickup roughly in index order.
	for s := slots - 1; s >= 1; s-- {
		p.queue = append(p.queue, task{j, s})
	}
	if p.sleeping > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()

	j.finish(0)

	// Join by helping: drain queued tasks (ours or another job's) until
	// our job has no unfinished slots, then block for the stragglers.
	for j.pending.Load() > 0 {
		t, ok := p.tryPop()
		if !ok {
			break
		}
		p.steals.Add(1)
		t.j.finish(t.slot)
	}
	if j.pending.Load() > 0 {
		<-j.done
	}
}

// ensureLocked grows the helper-worker set toward want, capped at
// GOMAXPROCS-1 (the submitting goroutine is the remaining worker). Called
// with p.mu held.
func (p *pool) ensureLocked(want int) {
	if max := runtime.GOMAXPROCS(0) - 1; want > max {
		want = max
	}
	for p.spawned < want {
		p.spawned++
		go p.worker()
	}
}

// worker is the parked-helper loop: pop a task, run it, repark.
func (p *pool) worker() {
	p.mu.Lock()
	for {
		for len(p.queue) == 0 {
			p.sleeping++
			p.cond.Wait()
			p.sleeping--
		}
		t := p.popLocked()
		p.mu.Unlock()
		p.handoffs.Add(1)
		t.j.finish(t.slot)
		p.mu.Lock()
	}
}

func (p *pool) popLocked() task {
	n := len(p.queue) - 1
	t := p.queue[n]
	p.queue[n] = task{} // drop the job reference for GC
	p.queue = p.queue[:n]
	return t
}

// tryPop removes one task from the queue if any is waiting.
func (p *pool) tryPop() (task, bool) {
	p.mu.Lock()
	if len(p.queue) == 0 {
		p.mu.Unlock()
		return task{}, false
	}
	t := p.popLocked()
	p.mu.Unlock()
	return t, true
}

// sched snapshots the introspection counters.
func (p *pool) sched() perf.SchedStats {
	p.mu.Lock()
	workers := p.spawned
	p.mu.Unlock()
	return perf.SchedStats{
		Jobs:       p.jobs.Load(),
		Serial:     p.serial.Load(),
		Dispatched: p.dispatched.Load(),
		Handoffs:   p.handoffs.Load(),
		Steals:     p.steals.Load(),
		Workers:    uint64(workers),
	}
}

// Sched returns a snapshot of the pool's scheduling counters: how many
// regions forked vs. ran inline, how many chunk tasks were dispatched, and
// whether they were executed by parked workers (handoffs) or reclaimed by
// the submitting goroutine while joining (steals). Counters are monotonic;
// subtract two snapshots (perf.SchedStats.Delta) to attribute activity to
// a code region. benchreg snapshots record the delta across a benchmark
// run so the perf trajectory captures scheduling behavior alongside
// throughput.
func Sched() perf.SchedStats { return defaultPool.sched() }
