// MC-VaR: estimate the 10-day value-at-risk of a covered-call position
// with the scenario engine — the same request shape POST /scenario
// serves. Two Monte Carlo generators (Merton jumps and Heston
// stochastic vol) each contribute a block of simulated market states at
// the horizon, a small closed-form stress grid rides along, and the
// engine reduces the P&L surface to a VaR/ES ladder with
// Kahan-compensated deterministic-order sums. Run it twice and the
// numbers are bit-identical: every cell derives its RNG stream from
// (generator seed, cell index), which is also what lets the shard
// router scatter cell ranges across replicas.
//
// This is the workload shape the paper's introduction motivates: risk
// management built from the same kernels the benchmark stresses.
//
//	go run ./examples/mcvar
package main

import (
	"context"
	"fmt"
	"log"

	"finbench"
	"finbench/internal/scenario"
)

func main() {
	mkt := finbench.Market{Rate: 0.02, Volatility: 0.35}

	// Position: long 100 shares at 100, short one call K=110, 6 months.
	// The share leg is a zero-strike call — strike 0.01 prices to the
	// spot (minus a negligible discounted cent), the standard trick for
	// holding the underlying in an options-only book.
	req := &scenario.Request{
		Portfolio: []scenario.Position{
			{Spot: 100, Strike: 0.01, Expiry: 0.5, Quantity: 100},
			{Spot: 100, Strike: 110, Expiry: 0.5, Quantity: -100},
		},
		// A deterministic stress grid alongside the simulations: what the
		// desk asks first ("down 20% with vol up 10 points?").
		Grid: scenario.Grid{
			SpotShocks: []float64{-0.20, -0.10, 0, 0.10, 0.20},
			VolShocks:  []float64{-0.05, 0, 0.10},
		},
		Generators: []scenario.Generator{
			{Model: scenario.ModelJump, Scenarios: 10000, Seed: 20120612},
			{Model: scenario.ModelHeston, Scenarios: 10000, Seed: 20120613},
		},
		VarLevels: []float64{0.95, 0.99},
	}
	if err := req.Validate(mkt.Volatility, scenario.Limits{}); err != nil {
		log.Fatal(err)
	}

	base, pnl, err := scenario.EvaluateCells(context.Background(), req, mkt, 0, req.NumCells())
	if err != nil {
		log.Fatal(err)
	}
	resp := scenario.Finalize(req, base, 0, pnl)

	fmt.Printf("Position: 100 shares @ 100, short 100x call K=110 T=0.5\n")
	fmt.Printf("Current value: %.0f\n\n", resp.BaseValue)

	fmt.Printf("Stress grid (spot x vol, 10-day horizon ignored — instantaneous shocks):\n")
	for si, s := range req.Grid.SpotShocks {
		for vi, v := range req.Grid.VolShocks {
			// Row-major: rates axis is the single unshocked point here.
			cell := si*len(req.Grid.VolShocks) + vi
			fmt.Printf("  spot %+5.0f%%  vol %+5.1fpt  P&L %8.0f\n", 100*s, 100*v, resp.PnL[cell])
		}
	}

	lad := resp.Ladder
	fmt.Printf("\nP&L distribution over %d scenarios (%d jump + %d Heston + %d grid):\n",
		resp.Cells, req.Generators[0].Scenarios, req.Generators[1].Scenarios, resp.GridCells)
	for i, q := range lad.Levels {
		fmt.Printf("  VaR %2.0f%%: %8.0f    ES %2.0f%%: %8.0f\n",
			100*q, lad.VaR[i], 100*q, lad.ES[i])
	}
	fmt.Printf("  mean %8.0f   worst %8.0f   best %8.0f\n",
		lad.MeanPnL, lad.WorstPnL, lad.BestPnL)
}
