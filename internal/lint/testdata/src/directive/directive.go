// Package directive seeds malformed suppression directives; the
// directive pass turns them into findings so reasonless or mistyped
// ignores cannot silently rot in the tree.
package directive

var eps = 1.0e-9
var tol = 1.0e-9

// Reasonless suppresses floateq but records no justification.
// seeded violation
func Reasonless() bool {
	return eps == tol // finlint:ignore floateq
}

// Bare names no pass at all, so it suppresses nothing.
// seeded violation
func Bare() int {
	// finlint:ignore
	return 1
}

// Typo names a pass that does not exist.
// seeded violation
func Typo() int {
	// finlint:ignore nosuchpass the pass name is mistyped
	return 2
}

// WellFormed carries a pass name and a reason: no finding.
func WellFormed() bool {
	return eps == tol // finlint:ignore floateq exact sentinel compare, assigned not computed
}
