package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The shared tables this pass consumes (parallelPkgPath,
// concurrentClosureFuncs, closureHints) live in entrypoints.go, the
// suite's single registry of module entry points.

// pkgDisplayName is the identifier a caller writes before the dot.
func pkgDisplayName(pkgPath string) string {
	for i := len(pkgPath) - 1; i >= 0; i-- {
		if pkgPath[i] == '/' {
			return pkgPath[i+1:]
		}
	}
	return pkgPath
}

// rngsharePass flags an *rng.Stream or *math/rand.Rand captured by a
// closure handed to the parallel package. MT19937 state updates are not
// atomic; two workers advancing one twister race on the state vector and
// silently correlate their draws (the paper's interleaved-stream design,
// Sec. IV-D3, exists precisely to avoid this). Each worker must derive its
// own stream inside the closure, e.g. rng.NewStream(worker, seed).
func rngsharePass() *Pass {
	return &Pass{
		Name: "rngshare",
		Doc:  "RNG stream captured by a parallel-loop closure (must be per-worker)",
		Run:  runRNGShare,
	}
}

func runRNGShare(p *Package, report func(pos token.Pos, msg string)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn, ok := calleeStatic(p, call)
			if !ok {
				pkgPath, fn, ok = calleeMethod(p, call)
			}
			if !ok || !concurrentClosureFuncs[pkgPath][fn] {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				checkClosureCaptures(p, pkgPath, fn, lit, report)
			}
			return true
		})
	}
}

// calleeMethod resolves a concrete method call to its declaring package
// path and method name (so (*pricecache.Cache).Do registers in
// concurrentClosureFuncs the same way a package-level function does).
func calleeMethod(p *Package, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Signature().Recv() == nil || fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// checkClosureCaptures reports every RNG-typed variable used inside lit
// but declared outside it (one report per variable).
func checkClosureCaptures(p *Package, pkgPath, loopFn string, lit *ast.FuncLit, report func(pos token.Pos, msg string)) {
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || reported[obj] {
			return true
		}
		if withinNode(lit, obj.Pos()) {
			return true // declared inside the closure: worker-local, fine
		}
		kind, shared := sharedRNGKind(obj.Type())
		if !shared {
			return true
		}
		reported[obj] = true
		report(id.Pos(), fmt.Sprintf(
			"%s %q is captured by the closure passed to %s.%s; workers would race on its state — %s",
			kind, obj.Name(), pkgDisplayName(pkgPath), loopFn, closureHints[pkgPath]))
		return true
	})
}

// sharedRNGKind reports whether t is a pointer to one of the stateful
// generator types whose methods are not safe for concurrent use.
func sharedRNGKind(t types.Type) (string, bool) {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case "finbench/internal/rng":
		if obj.Name() == "Stream" || obj.Name() == "MT" {
			return "rng stream", true
		}
	case "math/rand", "math/rand/v2":
		if obj.Name() == "Rand" {
			return "math/rand source", true
		}
	}
	return "", false
}
