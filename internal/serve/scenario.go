package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"finbench/internal/scenario"
	"finbench/internal/serve/deadline"
	"finbench/internal/serve/wire"
)

// POST /scenario prices a portfolio across a scenario grid (spot shocks x
// vol shocks x rate shifts, plus Monte Carlo scenario generators) and
// reduces the P&L surface to a VaR/ES ladder with Kahan-compensated,
// deterministically ordered reductions. A request may carry a `cells`
// sub-range — that is how the shard router scatters one grid across
// replicas — in which case the response is the P&L segment without the
// ladder. The 200 body is a pure function of (request, market): no
// timing field, so a router merging sub-responses reproduces the
// single-process bytes exactly.

func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.stats.scenarioRequests.Add(1)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.stats.shedDrain.Add(1)
		s.writeShed(w, "server is draining")
		return
	}
	if !s.rateAllow() {
		s.stats.shedRate.Add(1)
		s.writeError(w, http.StatusTooManyRequests, "request rate limit exceeded")
		return
	}
	buf := wire.GetBuffer()
	body, err := readBody(r, buf)
	if err != nil {
		wire.PutBuffer(buf)
		s.writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var req scenario.Request
	err = json.Unmarshal(body, &req)
	wire.PutBuffer(buf)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding scenario request: "+err.Error())
		return
	}
	if req.DeadlineMS < 0 {
		s.writeError(w, http.StatusBadRequest, "deadline_ms must be non-negative")
		return
	}
	lim := scenario.Limits{MaxPositions: s.cfg.MaxOptions, MaxCells: s.cfg.MaxScenarioCells}
	if err := req.Validate(s.cfg.Market.Volatility, lim); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Admission cost: one unit per (cell, position) valuation, like one
	// unit per closed-form option on /price.
	rangeStart, cells := req.Range()
	units, ok := s.adm.acquire(int64(cells)*int64(len(req.Portfolio)), s.cfg.AdmitWait)
	if !ok {
		s.deg.noteShed()
		s.stats.shedAdmission.Add(1)
		s.writeShed(w, "work budget exhausted")
		return
	}
	s.deg.noteAdmit()
	defer s.adm.release(units)

	budget := s.cfg.MaxDeadline
	if req.DeadlineMS > 0 {
		if d := time.Duration(req.DeadlineMS) * time.Millisecond; d < budget {
			budget = d
		}
	}
	dctx := deadline.Acquire(r.Context(), time.Now().Add(budget))
	defer dctx.Release()

	base, pnl, err := scenario.EvaluateCells(dctx, &req, s.cfg.Market, rangeStart, cells)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.writeError(w, http.StatusRequestTimeout, "scenario deadline exceeded")
		} else {
			s.writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	s.stats.scenarioCells.Add(uint64(cells))
	s.stats.observeLatency("scenario", time.Since(start))
	s.writeJSON(w, http.StatusOK, scenario.Finalize(&req, base, rangeStart, pnl))
}
