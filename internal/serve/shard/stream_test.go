package shard

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"finbench"
	"finbench/internal/serve"
	"finbench/internal/serve/stream"
)

func TestFormatRanges(t *testing.T) {
	cases := []struct {
		ids  []int
		want string
	}{
		{nil, ""},
		{[]int{5}, "5"},
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{0, 1, 2, 80, 128, 129}, "0-2,80,128-129"},
		{[]int{3, 5, 7}, "3,5,7"},
	}
	for _, tc := range cases {
		if got := formatRanges(tc.ids); got != tc.want {
			t.Errorf("formatRanges(%v) = %q, want %q", tc.ids, got, tc.want)
		}
	}
}

// newStreamBackends spins up n pricing servers with the streaming hub
// enabled. All share one seed, so their universes agree — the routed
// feed's contract ids mean the same thing on every replica.
func newStreamBackends(t *testing.T, n int, hcfg stream.Config) ([]string, []*serve.Server) {
	t.Helper()
	urls := make([]string, n)
	servers := make([]*serve.Server, n)
	for i := 0; i < n; i++ {
		cfg := hcfg
		s := serve.New(serve.Config{Stream: &cfg})
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(s.Close)
		urls[i], servers[i] = hs.URL, s
	}
	return urls, servers
}

func smallStreamCfg(universe int) stream.Config {
	return stream.Config{Universe: universe, Underlyings: 8, Interval: 2 * time.Millisecond}
}

func TestRoutedStreamRequiresExplicitSubscription(t *testing.T) {
	urls, _ := newStreamBackends(t, 1, smallStreamCfg(64))
	router := newRouter(t, Config{Backends: urls, HealthInterval: 20 * time.Millisecond})
	front := httptest.NewServer(router)
	defer front.Close()
	resp, err := http.Get(front.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("routed /stream without a subscription = %d, want 400", resp.StatusCode)
	}
}

// verifyEntryCold recomputes one routed entry from its echoed inputs
// and requires bit-equality — the routed-bits-identical invariant,
// extended to the feed.
func verifyEntryCold(t *testing.T, b *finbench.Batch, e stream.Entry) {
	t.Helper()
	b.Spots[0], b.Strikes[0], b.Expiries[0] = e.Spot, e.Strike, e.Expiry
	mkt := finbench.Market{Rate: e.Rate, Volatility: e.Vol}
	if err := finbench.PriceBatchCtx(context.Background(), b, mkt, finbench.LevelAdvanced); err != nil {
		t.Fatalf("contract %d: cold repricing: %v", e.ID, err)
	}
	want := b.Calls[0]
	if e.Type == "put" {
		want = b.Puts[0]
	}
	if math.Float64bits(e.Price) != math.Float64bits(want) {
		t.Fatalf("contract %d: routed price %x != cold %x",
			e.ID, math.Float64bits(e.Price), math.Float64bits(want))
	}
}

// TestRoutedStreamMergeAndFailover drives the whole routed-feed
// contract: the partitioned subscription opens with exactly one hello
// (rewritten to the full subscription), both partitions' data arrives,
// a drained replica's goodbye is never forwarded, the orphaned
// partition re-subscribes to the survivor and resyncs with a fresh
// snapshot, and every forwarded value stays bit-identical to a cold
// repricing at its echoed inputs — through the kill.
func TestRoutedStreamMergeAndFailover(t *testing.T) {
	urls, servers := newStreamBackends(t, 2, smallStreamCfg(64))
	router := newRouter(t, Config{Backends: urls, HealthInterval: 20 * time.Millisecond})
	front := httptest.NewServer(router)
	defer front.Close()

	resp, err := http.Get(front.URL + "/stream?contracts=0-63")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("routed /stream = %d", resp.StatusCode)
	}
	fr := stream.NewFrameReader(resp.Body)
	f, err := fr.Next()
	if err != nil || f.Event != stream.EventHello {
		t.Fatalf("first frame = %+v, %v — want hello", f, err)
	}
	var hello stream.Hello
	if err := json.Unmarshal(f.Data, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Subscribed != 64 {
		t.Errorf("hello subscribed = %d, want the whole 64-contract subscription", hello.Subscribed)
	}

	b := finbench.NewBatch(1)
	seen := make(map[int]bool)
	var snapshots int
	// readUntil consumes frames until want(contract-coverage) holds,
	// verifying every entry and failing on any forwarded goodbye/hello.
	readUntil := func(phase string, want func() bool) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for !want() {
			type res struct {
				f   stream.Frame
				err error
			}
			ch := make(chan res, 1)
			go func() { f, err := fr.Next(); ch <- res{f, err} }()
			var r res
			select {
			case r = <-ch:
			case <-deadline:
				t.Fatalf("%s: coverage never completed (saw %d contracts)", phase, len(seen))
			}
			if r.err != nil {
				t.Fatalf("%s: stream ended: %v", phase, r.err)
			}
			switch r.f.Event {
			case stream.EventHello:
				t.Fatalf("%s: duplicate hello forwarded", phase)
			case stream.EventGoodbye:
				t.Fatalf("%s: a replica goodbye leaked through the router", phase)
			case stream.EventSnapshot, stream.EventGreeks:
				if r.f.Event == stream.EventSnapshot {
					snapshots++
				}
				var ev stream.Event
				if err := json.Unmarshal(r.f.Data, &ev); err != nil {
					t.Fatalf("%s: %v", phase, err)
				}
				for _, e := range ev.Contracts {
					verifyEntryCold(t, b, e)
					seen[e.ID] = true
				}
			}
		}
	}

	full := func() bool { return len(seen) == 64 }
	readUntil("before kill", full)
	snapshotsBefore := snapshots

	// Kill one replica mid-stream: drain it, so its hub pushes goodbye to
	// its partition's relay — the strongest form of "the stream ended".
	servers[0].StartDrain()

	seen = make(map[int]bool)
	readUntil("after kill", full)
	if snapshots == snapshotsBefore {
		t.Error("no resync snapshot after the replica kill")
	}

	deadline := time.Now().Add(5 * time.Second)
	for router.Snapshot().StreamResubscribes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("failover recorded no stream resubscription")
		}
		time.Sleep(10 * time.Millisecond)
	}
	snap := router.Snapshot()
	if snap.StreamRequests == 0 || snap.StreamPartitions < 2 {
		t.Errorf("stream counters = requests %d partitions %d, want >=1 and >=2",
			snap.StreamRequests, snap.StreamPartitions)
	}
}

// TestRoutedStreamSlowClientShed: a routed subscriber that reads, but
// far slower than the feed produces, overflows the router's bounded
// merged queue and is shed with a goodbye — relays never block, so the
// replicas never feel it. The client paces its reads (~1MB/s) rather
// than stalling outright — a full stall exercises the write-deadline
// path instead, which the serve-layer test covers. Frames are kept
// small (256 contracts, ~70KB) at a high event rate, so the merged
// queue fills in well under a second while every individual frame
// write stays far inside the deadline: the overflow path wins the race
// against the deadline path deterministically.
func TestRoutedStreamSlowClientShed(t *testing.T) {
	hcfg := smallStreamCfg(256)
	hcfg.SpotThreshold = -1 // every tick rewrites the universe
	hcfg.Budget = time.Second
	urls, _ := newStreamBackends(t, 1, hcfg)
	router := newRouter(t, Config{
		Backends:           urls,
		HealthInterval:     20 * time.Millisecond,
		StreamWriteTimeout: 5 * time.Second,
	})
	front := httptest.NewServer(router)
	defer front.Close()

	resp, err := http.Get(front.URL + "/stream?contracts=0-255")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 8<<10)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				return // shed (or test teardown)
			}
			time.Sleep(8 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	for router.Snapshot().StreamSlowDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lagging routed subscriber was never shed")
		}
		time.Sleep(25 * time.Millisecond)
	}
	resp.Body.Close() // unstick the pacer
	<-done
}
