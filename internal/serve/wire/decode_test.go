package wire

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"finbench"
)

// refDecodePrice is the pre-fast-path behavior: one json.Unmarshal into a
// zero request, then the shared validation.
func refDecodePrice(data []byte) (*PriceRequest, finbench.Method, error) {
	req := new(PriceRequest)
	if err := json.Unmarshal(data, req); err != nil {
		return nil, 0, err
	}
	method, err := validatePrice(req)
	if err != nil {
		return nil, 0, err
	}
	return req, method, nil
}

// sameRequest compares the decoder-visible fields (ignoring scratch
// internals and whether Columnar points at the pooled scratch).
func sameRequest(a, b *PriceRequest) bool {
	if a.Method != b.Method || a.DeadlineMS != b.DeadlineMS || a.Config != b.Config {
		return false
	}
	if len(a.Options) != len(b.Options) {
		return false
	}
	for i := range a.Options {
		if a.Options[i] != b.Options[i] {
			return false
		}
	}
	if (a.Columnar == nil) != (b.Columnar == nil) {
		return false
	}
	if a.Columnar != nil {
		ac, bc := a.Columnar, b.Columnar
		if !reflect.DeepEqual(ac.Spots, bc.Spots) || !reflect.DeepEqual(ac.Strikes, bc.Strikes) ||
			!reflect.DeepEqual(ac.Expiries, bc.Expiries) || ac.Types != bc.Types || ac.Styles != bc.Styles {
			return false
		}
	}
	return true
}

// checkDecodeAgainstReference asserts DecodeRequest and the reference
// path agree on accept/reject and decoded content for one body.
func checkDecodeAgainstReference(t *testing.T, body []byte) {
	t.Helper()
	refReq, refMethod, refErr := refDecodePrice(body)
	req, method, err := DecodeRequest(body)
	if (err == nil) != (refErr == nil) {
		t.Fatalf("body %q: decode err=%v, reference err=%v", body, err, refErr)
	}
	if err != nil {
		if err.Error() != refErr.Error() {
			t.Fatalf("body %q: error text diverges\n got: %v\nwant: %v", body, err, refErr)
		}
		return
	}
	defer PutRequest(req)
	if method != refMethod {
		t.Fatalf("body %q: method %v, reference %v", body, method, refMethod)
	}
	if !sameRequest(req, refReq) {
		t.Fatalf("body %q: decoded request diverges\n got: %+v\nwant: %+v", body, req, refReq)
	}
}

func TestDecodeRequestMatchesReference(t *testing.T) {
	bodies := []string{
		// Fast-path shapes.
		`{"options":[{"spot":100,"strike":105,"expiry":0.5}]}`,
		`{"method":"closed-form","options":[{"spot":100,"strike":105,"expiry":0.5}]}`,
		`{"method":"monte-carlo","options":[{"type":"put","spot":90.5,"strike":100,"expiry":1}],"config":{"mc_paths":4096,"seed":7},"deadline_ms":250}`,
		`{"options":[{"type":"call","style":"european","spot":1e2,"strike":1.05e2,"expiry":5e-1}]}`,
		`{"method":"binomial-tree","options":[{"style":"american","type":"put","spot":100,"strike":100,"expiry":1}],"config":{"binomial_steps":512}}`,
		` { "options" : [ { "spot" : 100 , "strike" : 105 , "expiry" : 0.5 } ] } `,
		`{"columnar":{"spot":[100,101],"strike":[105,106],"expiry":[0.5,0.25],"type":"cp","style":"ee"}}`,
		`{"columnar":{"spot":[100],"strike":[105],"expiry":[0.5]},"deadline_ms":100}`,
		`{"options":[{"spot":100,"strike":105,"expiry":0.5},{"spot":1,"strike":2,"expiry":3}]}`,
		// Validation failures (must produce identical error text).
		`{}`,
		`{"options":[]}`,
		`{"method":"bogus"}`,
		`{"method":"bogus","options":[{"spot":1,"strike":1,"expiry":1}]}`,
		`{"options":[{"spot":-1,"strike":1,"expiry":1}]}`,
		`{"options":[{"spot":0,"strike":1,"expiry":1}]}`,
		`{"options":[{"type":"x","spot":1,"strike":1,"expiry":1}]}`,
		`{"options":[{"style":"x","spot":1,"strike":1,"expiry":1}]}`,
		`{"options":[{"style":"american","spot":1,"strike":1,"expiry":1}]}`,
		`{"method":"monte-carlo","options":[{"style":"american","spot":1,"strike":1,"expiry":1}]}`,
		`{"deadline_ms":-5,"options":[{"spot":1,"strike":1,"expiry":1}]}`,
		`{"config":{"mc_paths":-1},"options":[{"spot":1,"strike":1,"expiry":1}]}`,
		`{"columnar":{"spot":[100],"strike":[105,1],"expiry":[0.5]}}`,
		`{"columnar":{"spot":[100],"strike":[105],"expiry":[0.5]},"options":[{"spot":1,"strike":1,"expiry":1}]}`,
		`{"columnar":{"spot":[100],"strike":[105],"expiry":[0.5]},"method":"monte-carlo"}`,
		`{"columnar":{"spot":[100],"strike":[105],"expiry":[0.5]},"method":"closed-form","deadline_ms":3}`,
		`{"columnar":{"spot":[100],"strike":[105],"expiry":[0.5],"type":"x"}}`,
		`{"columnar":{"spot":[100],"strike":[105],"expiry":[0.5],"style":"a"}}`,
		`{"columnar":{"spot":[],"strike":[],"expiry":[]}}`,
		`{"columnar":{"spot":[-1],"strike":[105],"expiry":[0.5]}}`,
		// Fallback-path shapes (escapes, unknowns, dups, odd tokens).
		`{"options":[{"spot":100,"strike":105,"expiry":0.5}],"extra":1}`,
		`{"method":"closed-form","options":[{"spot":100,"strike":105,"expiry":0.5}]}`,
		`{"method":"closed-form","method":"monte-carlo","options":[{"spot":1,"strike":1,"expiry":1}],"config":{"mc_paths":64}}`,
		`{"options":[{"spot":100,"strike":105,"expiry":0.5}],"deadline_ms":1.5}`,
		`{"options":[{"spot":100,"strike":105,"expiry":0.5}],"deadline_ms":1e3}`,
		`{"config":{"mc_paths":99999999999999999999},"options":[{"spot":1,"strike":1,"expiry":1}]}`,
		`{"options":[{"spot":1e999,"strike":1,"expiry":1}]}`,
		`{"options":null}`,
		`{"options":[{"spot":"100","strike":105,"expiry":0.5}]}`,
		`{"méthode":"x","options":[{"spot":1,"strike":1,"expiry":1}]}`,
		`{"options":[{"spot":100,"strike":105,"expiry":0.5}]`,
		`[]`,
		`null`,
		``,
		`{"options":[{"spot":100,"strike":105,"expiry":0.5}]} trailing`,
		`{"options":[{"spot":01,"strike":1,"expiry":1}]}`,
	}
	for _, body := range bodies {
		checkDecodeAgainstReference(t, []byte(body))
	}
}

func TestDecodeRequestFastPathTaken(t *testing.T) {
	// White-box: the canonical client shapes must decode on the fast path
	// (the zero-alloc property depends on it).
	fastBodies := []string{
		`{"options":[{"spot":100,"strike":105,"expiry":0.5}]}`,
		`{"method":"monte-carlo","options":[{"type":"put","spot":90.5,"strike":100,"expiry":1}],"config":{"mc_paths":4096,"seed":7},"deadline_ms":250}`,
		`{"columnar":{"spot":[100,101],"strike":[105,106],"expiry":[0.5,0.25],"type":"cp"}}`,
	}
	for _, body := range fastBodies {
		var req PriceRequest
		if !fastDecodePrice([]byte(body), &req) {
			t.Errorf("fast path refused canonical body %s", body)
		}
	}
}

func TestDecodeRequestPooledReuseNoStaleState(t *testing.T) {
	// A rich request followed by a minimal one through the same pool must
	// not leak fields — in particular via the reference-decode merge
	// behavior of json.Unmarshal into retained backing arrays.
	rich := []byte(`{"method":"monte-carlo","options":[{"type":"put","style":"european","spot":90,"strike":100,"expiry":1},{"type":"put","spot":91,"strike":100,"expiry":1}],"config":{"mc_paths":4096,"seed":7},"deadline_ms":250}`)
	// "extra" forces the fallback reference decode into the pooled object.
	minimal := []byte(`{"options":[{"spot":100,"strike":105,"expiry":0.5},{"spot":1,"strike":2,"expiry":3}],"extra":true}`)
	for i := 0; i < 32; i++ {
		req, _, err := DecodeRequest(rich)
		if err != nil {
			t.Fatal(err)
		}
		PutRequest(req)
		req2, method, err := DecodeRequest(minimal)
		if err != nil {
			t.Fatal(err)
		}
		if method != finbench.ClosedForm {
			t.Fatalf("stale method: %v", method)
		}
		if req2.Config != (Config{}) || req2.DeadlineMS != 0 {
			t.Fatalf("stale config/deadline: %+v %d", req2.Config, req2.DeadlineMS)
		}
		want := []Option{{Spot: 100, Strike: 105, Expiry: 0.5}, {Spot: 1, Strike: 2, Expiry: 3}}
		for j, o := range req2.Options {
			if o != want[j] {
				t.Fatalf("stale option %d: %+v", j, o)
			}
		}
		PutRequest(req2)
	}
}

func TestDecodeColumnarPooledReuse(t *testing.T) {
	// Columnar then AOS through the same pool: the AOS request must not
	// report columnar framing.
	col := []byte(`{"columnar":{"spot":[100,101],"strike":[105,106],"expiry":[0.5,0.25],"type":"cp","style":"ee"}}`)
	aos := []byte(`{"options":[{"spot":7,"strike":8,"expiry":9}]}`)
	for i := 0; i < 8; i++ {
		req, _, err := DecodeRequest(col)
		if err != nil {
			t.Fatal(err)
		}
		if req.NumOptions() != 2 || !req.IsPut(1) || req.IsPut(0) {
			t.Fatalf("columnar decode wrong: %+v", req.Columnar)
		}
		PutRequest(req)
		req2, _, err := DecodeRequest(aos)
		if err != nil {
			t.Fatal(err)
		}
		if req2.Columnar != nil {
			t.Fatal("stale columnar framing after pool reuse")
		}
		if req2.NumOptions() != 1 || req2.Options[0].Spot != 7 {
			t.Fatalf("wrong AOS decode: %+v", req2.Options)
		}
		PutRequest(req2)
	}
}

func TestDecodeGreeksRequestMatchesReference(t *testing.T) {
	bodies := []string{
		`{"options":[{"spot":100,"strike":105,"expiry":0.5}]}`,
		`{"options":[{"type":"put","spot":100,"strike":105,"expiry":0.5}],"deadline_ms":50}`,
		`{"options":[],"deadline_ms":-1}`,
		`{"options":[{"spot":-1,"strike":1,"expiry":1}]}`,
		`{"options":[{"type":"x","spot":1,"strike":1,"expiry":1}]}`,
		`{"options":[{"spot":1,"strike":1,"expiry":1}],"unknown":1}`,
		`not json`,
	}
	for _, body := range bodies {
		refReq := new(GreeksRequest)
		refErr := json.Unmarshal([]byte(body), refReq)
		if refErr == nil {
			refErr = validateGreeks(refReq)
		}
		req, err := DecodeGreeksRequest([]byte(body))
		if (err == nil) != (refErr == nil) {
			t.Fatalf("body %q: err=%v ref=%v", body, err, refErr)
		}
		if err != nil {
			if err.Error() != refErr.Error() {
				t.Fatalf("body %q: error text diverges\n got: %v\nwant: %v", body, err, refErr)
			}
			continue
		}
		if req.DeadlineMS != refReq.DeadlineMS || !reflect.DeepEqual(append([]Option{}, req.Options...), append([]Option{}, refReq.Options...)) {
			t.Fatalf("body %q: decode diverges: %+v vs %+v", body, req, refReq)
		}
		PutGreeksRequest(req)
	}
}

func TestDecodeAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	body := []byte(`{"method":"closed-form","options":[{"spot":100,"strike":105,"expiry":0.5},{"type":"put","spot":95,"strike":100,"expiry":0.25}],"deadline_ms":100}`)
	// Warm the pool.
	for i := 0; i < 8; i++ {
		req, _, err := DecodeRequest(body)
		if err != nil {
			t.Fatal(err)
		}
		PutRequest(req)
	}
	allocs := testing.AllocsPerRun(500, func() {
		req, _, err := DecodeRequest(body)
		if err != nil {
			t.Fatal(err)
		}
		PutRequest(req)
	})
	if allocs != 0 {
		t.Errorf("DecodeRequest allocates %.1f/op on the fast path; want 0", allocs)
	}
}

func TestDecodeLargeBatchMatchesReference(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"options":[`)
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"spot":%g,"strike":%g,"expiry":%g}`, 50.0+float64(i)*0.25, 100.0, 0.1+float64(i)*0.01)
	}
	sb.WriteString(`]}`)
	checkDecodeAgainstReference(t, []byte(sb.String()))
}

func TestDecodeNumberEdgeCases(t *testing.T) {
	for _, tok := range []string{
		"0", "-0", "0.5", "-0.5", "1e3", "1E3", "1e+3", "1e-3", "0.25e2",
		"100.", ".5", "-", "1e", "1e+", "01", "+1", "1..2", "NaN", "Infinity",
		"184467440737095516150", "0.1e309",
	} {
		body := []byte(`{"options":[{"spot":` + tok + `,"strike":100,"expiry":1}]}`)
		checkDecodeAgainstReference(t, body)
	}
	for _, tok := range []string{"100", "-1", "0", "1.5", "99999999999999999999", "1e2"} {
		checkDecodeAgainstReference(t, []byte(`{"options":[{"spot":1,"strike":1,"expiry":1}],"deadline_ms":`+tok+`}`))
		checkDecodeAgainstReference(t, []byte(`{"options":[{"spot":1,"strike":1,"expiry":1}],"config":{"seed":`+tok+`}}`))
	}
}

func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"options":[{"spot":100,"strike":105,"expiry":0.5}]}`))
	f.Add([]byte(`{"method":"monte-carlo","options":[{"type":"put","spot":90.5,"strike":100,"expiry":1}],"config":{"mc_paths":4096,"seed":7},"deadline_ms":250}`))
	f.Add([]byte(`{"columnar":{"spot":[100,101],"strike":[105,106],"expiry":[0.5,0.25],"type":"cp","style":"ee"}}`))
	f.Add([]byte(`{"method":"closed-form","method":"x","options":[{"spot":1,"spot":2,"strike":1,"expiry":1}]}`))
	f.Add([]byte(`{"options":[{"spot":1e308,"strike":1e-308,"expiry":5e-324}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Differential invariant: DecodeRequest (fast path or fallback)
		// must agree with the pre-fast-path reference decode on
		// accept/reject, error text, and decoded content.
		refReq, refMethod, refErr := refDecodePrice(data)
		req, method, err := DecodeRequest(data)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("decode err=%v, reference err=%v", err, refErr)
		}
		if err != nil {
			if err.Error() != refErr.Error() {
				t.Fatalf("error text diverges:\n got: %v\nwant: %v", err, refErr)
			}
			return
		}
		defer PutRequest(req)
		if method != refMethod {
			t.Fatalf("method %v, reference %v", method, refMethod)
		}
		if !sameRequest(req, refReq) {
			t.Fatalf("decoded request diverges:\n got: %+v\nwant: %+v", req, refReq)
		}
		// Accepted requests carry only priceable options.
		n := req.NumOptions()
		if n == 0 || n > MaxRequestOptions {
			t.Fatalf("accepted request with %d options", n)
		}
		for i := 0; i < n; i++ {
			var spot float64
			if req.Columnar != nil {
				spot = req.Columnar.Spots[i]
			} else {
				spot = req.Options[i].Spot
			}
			if math.IsNaN(spot) || math.IsInf(spot, 0) || spot <= 0 {
				t.Fatalf("accepted non-priceable spot %v", spot)
			}
		}
	})
}
