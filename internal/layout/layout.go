// Package layout provides the option-batch data layouts whose contrast is
// central to the paper: array-of-structures (AOS), the natural reference
// format whose strided accesses force gathers, and structure-of-arrays
// (SOA), the SIMD-friendly format the advanced kernels convert to
// (Sec. IV-A2: "we have transposed the data layout (from AOS to SOA)").
//
// A third, lane-blocked AOSOA layout serves the SIMD-across-options kernels
// (binomial tree), where each group of W options is interleaved so one
// option occupies one SIMD lane.
package layout

// Field offsets of one option record in packed AOS form, matching the
// paper's struct {S, X, T, call, put} of Lis. 1: three inputs, two outputs,
// five doubles (40 bytes) per option — the basis of the B/40 bandwidth
// bound.
const (
	FieldS    = 0 // current underlying price
	FieldX    = 1 // strike price
	FieldT    = 2 // time to expiry in years
	FieldCall = 3 // output: call price
	FieldPut  = 4 // output: put price
	// Stride is the number of doubles per AOS record.
	Stride = 5
)

// AOS is a packed array-of-structures option batch: record i occupies
// Data[i*Stride : (i+1)*Stride]. Packing into a flat []float64 (rather than
// a []struct) is what lets the vector ISA express the strided gathers the
// reference kernels perform.
type AOS struct {
	Data []float64
}

// NewAOS allocates an AOS batch of n options.
func NewAOS(n int) AOS { return AOS{Data: make([]float64, n*Stride)} }

// Len returns the number of options.
func (a AOS) Len() int { return len(a.Data) / Stride }

// S returns the spot price of option i.
func (a AOS) S(i int) float64 { return a.Data[i*Stride+FieldS] }

// X returns the strike price of option i.
func (a AOS) X(i int) float64 { return a.Data[i*Stride+FieldX] }

// T returns the expiry of option i.
func (a AOS) T(i int) float64 { return a.Data[i*Stride+FieldT] }

// Call returns the call-price output slot of option i.
func (a AOS) Call(i int) float64 { return a.Data[i*Stride+FieldCall] }

// Put returns the put-price output slot of option i.
func (a AOS) Put(i int) float64 { return a.Data[i*Stride+FieldPut] }

// Set fills the input fields of option i.
func (a AOS) Set(i int, s, x, t float64) {
	a.Data[i*Stride+FieldS] = s
	a.Data[i*Stride+FieldX] = x
	a.Data[i*Stride+FieldT] = t
}

// SetResult fills the output fields of option i.
func (a AOS) SetResult(i int, call, put float64) {
	a.Data[i*Stride+FieldCall] = call
	a.Data[i*Stride+FieldPut] = put
}

// SOA is the structure-of-arrays batch: each field is contiguous, so a
// vector load touches one cache line instead of W.
type SOA struct {
	S, X, T   []float64
	Call, Put []float64
}

// NewSOA allocates an SOA batch of n options.
func NewSOA(n int) *SOA {
	return &SOA{
		S:    make([]float64, n),
		X:    make([]float64, n),
		T:    make([]float64, n),
		Call: make([]float64, n),
		Put:  make([]float64, n),
	}
}

// Len returns the number of options.
func (s *SOA) Len() int { return len(s.S) }

// ToSOA transposes the batch into SOA form (the paper's key Black-Scholes
// optimization).
func (a AOS) ToSOA() *SOA {
	n := a.Len()
	s := NewSOA(n)
	for i := 0; i < n; i++ {
		s.S[i] = a.S(i)
		s.X[i] = a.X(i)
		s.T[i] = a.T(i)
		s.Call[i] = a.Call(i)
		s.Put[i] = a.Put(i)
	}
	return s
}

// ToAOS transposes back to packed AOS form.
func (s *SOA) ToAOS() AOS {
	n := s.Len()
	a := NewAOS(n)
	for i := 0; i < n; i++ {
		a.Set(i, s.S[i], s.X[i], s.T[i])
		a.SetResult(i, s.Call[i], s.Put[i])
	}
	return a
}

// PadTo returns n rounded up to a multiple of w (SIMD remainder padding).
func PadTo(n, w int) int {
	if w <= 1 {
		return n
	}
	return (n + w - 1) / w * w
}

// Blocked is the lane-interleaved AOSOA layout used by SIMD-across-options
// kernels: options are grouped into blocks of W, and within a block the
// per-option values are adjacent so that one aligned vector load reads one
// value from each of W options.
type Blocked struct {
	// W is the lane count per block.
	W int
	// N is the true (unpadded) option count.
	N int
	// Data holds ceil(N/W) blocks of W values.
	Data []float64
}

// NewBlocked builds the blocked layout from one value per option, padding
// the final block by replicating the last value (a benign, branch-free
// remainder strategy for pricing kernels).
func NewBlocked(vals []float64, w int) Blocked {
	n := len(vals)
	padded := PadTo(n, w)
	b := Blocked{W: w, N: n, Data: make([]float64, padded)}
	copy(b.Data, vals)
	for i := n; i < padded; i++ {
		b.Data[i] = vals[n-1]
	}
	return b
}

// Block returns the slice holding block k's W values.
func (b Blocked) Block(k int) []float64 { return b.Data[k*b.W : (k+1)*b.W] }

// NumBlocks returns the block count.
func (b Blocked) NumBlocks() int { return len(b.Data) / b.W }

// Unblock extracts the first N values back out.
func (b Blocked) Unblock() []float64 {
	out := make([]float64, b.N)
	copy(out, b.Data[:b.N])
	return out
}
