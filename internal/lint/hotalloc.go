package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// hotallocPass flags allocation sources inside loops of packages tagged
// "finlint:hot" (the six kernel packages). The paper's inner loops run at
// a few elements per cycle; a single heap allocation or interface box per
// iteration invokes the allocator and the write barrier, costing more than
// the whole vector body. Checks are intraprocedural and syntactic over
// loop bodies:
//
//   - composite literals (T{...}) — may escape and heap-allocate per trip;
//   - make(...) — always allocates;
//   - append to a variable captured from an enclosing function — grows a
//     shared backing array inside the loop;
//   - arguments implicitly converted to an interface parameter — boxing
//     allocates for non-pointer values (fmt in a hot loop is the classic
//     offender).
//
// Scratch buffers belong before the loop (per worker, not per iteration);
// deliberate exceptions take "// finlint:ignore hotalloc <reason>".
//
// Interprocedural extension: the same loop-body discipline applies on the
// serve request path. Functions within a configurable number of
// call-graph hops of an HTTP handler (Config.HotallocDepth) are scanned
// without needing the package tag, with a reduced rule set — make calls,
// slice/map/chan composite literals, and append-to-captured growth. Value
// struct literals and interface boxing stay hot-package-only: a
// per-request box (an error message, say) is acceptable; a per-option
// in-loop allocation is the property the allocs/op benchmark gate pins.
func hotallocPass() *Pass {
	return &Pass{
		Name:   "hotalloc",
		Doc:    "allocation inside a hot-package loop, or a handler-reachable loop (serve path)",
		RunMod: runHotAlloc,
	}
}

func runHotAlloc(m *Module, p *Package, report func(pos token.Pos, msg string)) {
	var reach *ReachSet
	if !p.Hot {
		reach = m.HotallocReach()
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &hotWalker{p: p, report: report, funcs: []ast.Node{fd}}
			if !p.Hot {
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(obj)
				if !reach.Contains(key) {
					continue
				}
				w.serveMode = true
				w.path = pathLabel(reach.Path(key))
			}
			ast.Inspect(fd.Body, w.visit)
		}
	}
}

// hotWalker tracks the enclosing-function stack (for capture analysis) and
// the loop nesting depth (allocations are flagged only at depth > 0).
type hotWalker struct {
	p      *Package
	report func(pos token.Pos, msg string)
	funcs  []ast.Node // enclosing functions, innermost last
	depth  int        // enclosing loops within the innermost function

	// serveMode applies the reduced, handler-reachable rule set instead
	// of the hot-package one; path labels the reaching call chain.
	serveMode bool
	path      string
}

func (w *hotWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		// A closure body runs when called, not once per enclosing-loop
		// trip; restart the loop depth but keep the stack for captures.
		w.funcs = append(w.funcs, n)
		saved := w.depth
		w.depth = 0
		ast.Inspect(n.Body, w.visit)
		w.depth = saved
		w.funcs = w.funcs[:len(w.funcs)-1]
		return false
	case *ast.ForStmt:
		w.depth++
		ast.Inspect(n.Body, w.visit)
		w.depth--
		return false
	case *ast.RangeStmt:
		w.depth++
		ast.Inspect(n.Body, w.visit)
		w.depth--
		return false
	}
	if w.depth == 0 || n == nil {
		return true
	}
	if w.serveMode {
		return w.visitServe(n)
	}
	switch n := n.(type) {
	case *ast.CompositeLit:
		w.report(n.Pos(), fmt.Sprintf("composite literal %s inside a hot loop may heap-allocate per iteration; hoist it before the loop", typeLabel(w.p, n)))
		return false // one report per outermost literal
	case *ast.CallExpr:
		if isBuiltin(w.p, n, "make") {
			w.report(n.Pos(), "make inside a hot loop allocates per iteration; hoist the buffer before the loop and reslice")
			return true
		}
		if isBuiltin(w.p, n, "append") && len(n.Args) > 0 {
			if obj := w.capturedVar(n.Args[0]); obj != nil {
				w.report(n.Pos(), fmt.Sprintf("append to captured slice %q inside a hot loop; growth reallocates a shared backing array — preallocate or keep the slice loop-local", obj.Name()))
			}
			return true
		}
		w.checkInterfaceArgs(n)
	}
	return true
}

// visitServe applies the serve-path rule subset at loop depth > 0.
func (w *hotWalker) visitServe(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CompositeLit:
		if tv, ok := w.p.Info.Types[n]; ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map, *types.Chan:
				w.report(n.Pos(), fmt.Sprintf("composite literal %s allocates per loop iteration in a function reachable from an HTTP handler (%s); hoist it out of the loop", typeLabel(w.p, n), w.path))
				return false
			}
		}
	case *ast.CallExpr:
		if isBuiltin(w.p, n, "make") {
			w.report(n.Pos(), fmt.Sprintf("make allocates per loop iteration in a function reachable from an HTTP handler (%s); hoist the buffer out of the loop and reslice", w.path))
			return true
		}
		if isBuiltin(w.p, n, "append") && len(n.Args) > 0 {
			if obj := w.capturedVar(n.Args[0]); obj != nil {
				w.report(n.Pos(), fmt.Sprintf("append to captured slice %q grows per loop iteration in a function reachable from an HTTP handler (%s); preallocate outside the loop", obj.Name(), w.path))
			}
			return true
		}
	}
	return true
}

// capturedVar returns the variable behind expr if it is declared outside
// the innermost enclosing function (i.e. captured by a closure).
func (w *hotWalker) capturedVar(expr ast.Expr) *types.Var {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := w.p.Info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if innermost := w.funcs[len(w.funcs)-1]; !withinNode(innermost, obj.Pos()) {
		return obj
	}
	return nil
}

// checkInterfaceArgs flags call arguments whose static type is concrete
// but whose parameter type is an interface: the implicit conversion boxes.
func (w *hotWalker) checkInterfaceArgs(call *ast.CallExpr) {
	tv, ok := w.p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversions T(x), not calls
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			paramType = slice.Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(paramType) {
			continue
		}
		argTV, ok := w.p.Info.Types[arg]
		if !ok || argTV.Type == nil {
			continue
		}
		if types.IsInterface(argTV.Type.Underlying()) {
			continue // interface-to-interface: no new box
		}
		if b, isBasic := argTV.Type.Underlying().(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
			continue
		}
		w.report(arg.Pos(), fmt.Sprintf("argument of type %s is boxed into interface %s inside a hot loop; move the call out of the loop or take a concrete type", argTV.Type, paramType))
	}
}

func typeLabel(p *Package, lit *ast.CompositeLit) string {
	if tv, ok := p.Info.Types[lit]; ok && tv.Type != nil {
		return fmt.Sprintf("of type %s", tv.Type)
	}
	return "(unknown type)"
}
