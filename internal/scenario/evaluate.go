package scenario

import (
	"context"
	"math"

	"finbench"
	"finbench/internal/rng"
)

// Evaluation: cells map to finbench.GridRow scenarios and run through
// the pooled SOA batch path (finbench.PriceBatchGridCtx), one row per
// cell with cancellation checked per row. Per-cell P&L is the
// Kahan-compensated sum over positions in portfolio order.

// minVol floors a simulated volatility so a near-zero Heston variance
// still prices.
const minVol = 1e-4

// hestonSteps is the fixed full-truncation Euler step count of the
// Heston generator (fixed so the scenario set is independent of any
// tuning knob a deployment might vary).
const hestonSteps = 16

// EvaluateCells prices the portfolio across the global cells
// [start, start+count) and returns the base (unshocked) portfolio value
// plus the per-cell P&L in cell order. The request must already be
// validated. ctx cancels between grid rows.
func EvaluateCells(ctx context.Context, req *Request, mkt finbench.Market, start, count int) (base float64, pnl []float64, err error) {
	n := len(req.Portfolio)
	b := finbench.NewBatch(n)
	quantities := make([]float64, n)
	puts := make([]bool, n)
	for i := range req.Portfolio {
		p := &req.Portfolio[i]
		b.Spots[i], b.Strikes[i], b.Expiries[i] = p.Spot, p.Strike, p.Expiry
		quantities[i] = p.Qty()
		puts[i] = p.Type == "put"
	}

	// Base valuation: one unshocked row. Per-position base prices seed
	// every cell's P&L sum.
	basePrices := make([]float64, n)
	baseRow := []finbench.GridRow{{Market: mkt, Scale: 1}}
	err = finbench.PriceBatchGridCtx(ctx, b, baseRow, func(_ int, calls, putsOut []float64) error {
		var sum Sum
		for i := 0; i < n; i++ {
			basePrices[i] = calls[i]
			if puts[i] {
				basePrices[i] = putsOut[i]
			}
			sum.Add(quantities[i] * basePrices[i])
		}
		base = sum.Value()
		return nil
	})
	if err != nil {
		return 0, nil, err
	}

	rows, err := buildRows(req, mkt, start, count)
	if err != nil {
		return 0, nil, err
	}
	pnl = make([]float64, count)
	err = finbench.PriceBatchGridCtx(ctx, b, rows, func(r int, calls, putsOut []float64) error {
		var sum Sum
		for i := 0; i < n; i++ {
			price := calls[i]
			if puts[i] {
				price = putsOut[i]
			}
			sum.Add(quantities[i] * (price - basePrices[i]))
		}
		pnl[r] = sum.Value()
		return nil
	})
	if err != nil {
		return 0, nil, err
	}
	return base, pnl, nil
}

// buildRows materializes the scenario rows for the global cells
// [start, start+count): shocked markets for grid cells, simulated market
// states for generator cells. Generator scenarios are random-access —
// scenario k draws from DeriveSeed(seed, k) — so a sub-range costs only
// its own cells.
func buildRows(req *Request, mkt finbench.Market, start, count int) ([]finbench.GridRow, error) {
	rows := make([]finbench.GridRow, count)
	spots, vols, rates := req.Grid.spotShocks(), req.Grid.volShocks(), req.Grid.rateShifts()
	gridCells := req.NumGridCells()
	for r := 0; r < count; r++ {
		idx := start + r
		if idx < gridCells {
			ri := idx % len(rates)
			vi := (idx / len(rates)) % len(vols)
			si := idx / (len(rates) * len(vols))
			rows[r] = finbench.GridRow{
				Market: finbench.Market{
					Rate:       mkt.Rate + rates[ri],
					Volatility: mkt.Volatility + vols[vi],
				},
				Scale: 1 + spots[si],
			}
			continue
		}
		gen, k := req.generatorCell(idx - gridCells)
		rows[r] = simulateCell(gen, k, mkt, len(req.Portfolio))
	}
	return rows, nil
}

// generatorCell resolves a generator-space offset to its generator and
// the scenario index within it.
func (r *Request) generatorCell(off int) (*Generator, int) {
	for i := range r.Generators {
		g := &r.Generators[i]
		if off < g.Scenarios {
			return g, off
		}
		off -= g.Scenarios
	}
	// Unreachable after validation; a zero generator would panic later
	// and that is the right failure for a broken invariant.
	return nil, off
}

// simulateCell draws scenario k of gen: a market state at the horizon,
// applied as an instantaneous shock (expiries do not decay). The stream
// is derived from (seed, k) alone, so any process computes identical
// rows for identical cells.
func simulateCell(gen *Generator, k int, mkt finbench.Market, positions int) finbench.GridRow {
	stream := rng.NewStream(0, rng.DeriveSeed(gen.seed(), uint64(k)))
	switch gen.Model {
	case ModelHeston:
		return hestonCell(gen, stream, mkt)
	case ModelJump:
		return jumpCell(gen, stream, mkt)
	default: // ModelBasket, by validation
		return basketCell(gen, stream, mkt, positions)
	}
}

// hestonCell runs one full-truncation Euler path of the Heston model to
// the horizon and returns the joint (spot scale, new vol) state.
func hestonCell(gen *Generator, stream *rng.Stream, mkt finbench.Market) finbench.GridRow {
	v0 := gen.V0
	if v0 == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		v0 = mkt.Volatility * mkt.Volatility
	}
	kappa := gen.Kappa
	if kappa == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		kappa = 1.5
	}
	thetaV := gen.ThetaV
	if thetaV == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		thetaV = v0
	}
	sigmaV := gen.SigmaV
	if sigmaV == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		sigmaV = 0.5
	}
	rho := gen.Rho
	if rho == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		rho = -0.7
	}
	h := gen.horizon()
	dt := h / hestonSteps
	sqDt := math.Sqrt(dt)
	rhoC := math.Sqrt(1 - rho*rho)
	var z [2 * hestonSteps]float64
	stream.NormalICDF(z[:])
	logS := 0.0
	v := v0
	for s := 0; s < hestonSteps; s++ {
		vp := v
		if vp < 0 {
			vp = 0
		}
		sqV := math.Sqrt(vp)
		z1 := z[2*s]
		z2 := rho*z1 + rhoC*z[2*s+1]
		logS += (mkt.Rate-vp/2)*dt + sqV*sqDt*z1
		v += kappa*(thetaV-vp)*dt + sigmaV*sqV*sqDt*z2
	}
	if v < 0 {
		v = 0
	}
	vol := math.Sqrt(v)
	if vol < minVol {
		vol = minVol
	}
	return finbench.GridRow{
		Market: finbench.Market{Rate: mkt.Rate, Volatility: vol},
		Scale:  math.Exp(logS),
	}
}

// jumpCell draws one Merton jump-diffusion terminal state: GBM with
// compensated drift plus a Poisson number of lognormal jumps.
func jumpCell(gen *Generator, stream *rng.Stream, mkt finbench.Market) finbench.GridRow {
	lambda := gen.Lambda
	if lambda == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		lambda = 0.3
	}
	muJ := gen.MuJ
	if muJ == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		muJ = -0.1
	}
	sigmaJ := gen.SigmaJ
	if sigmaJ == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		sigmaJ = 0.15
	}
	h := gen.horizon()
	sigma := mkt.Volatility
	kbar := math.Exp(muJ+sigmaJ*sigmaJ/2) - 1

	var z [1]float64
	stream.NormalICDF(z[:])
	logS := (mkt.Rate-lambda*kbar-sigma*sigma/2)*h + sigma*math.Sqrt(h)*z[0]

	// Poisson(lambda*h) by Knuth's product-of-uniforms inversion; the
	// draw count varies per scenario, which is fine — the stream is this
	// cell's alone.
	limit := math.Exp(-lambda * h)
	var u [1]float64
	for p := 1.0; ; {
		stream.Uniform(u[:])
		p *= u[0]
		if p <= limit {
			break
		}
		stream.NormalICDF(z[:])
		logS += muJ + sigmaJ*z[0]
	}
	return finbench.GridRow{Market: mkt, Scale: math.Exp(logS)}
}

// basketCell draws correlated GBM terminal states for Assets factors
// (one common driver plus idiosyncratic noise — the equicorrelation
// Cholesky) and moves position i with factor i mod Assets.
func basketCell(gen *Generator, stream *rng.Stream, mkt finbench.Market, positions int) finbench.GridRow {
	assets := gen.Assets
	if assets == 0 {
		assets = 4
	}
	corr := gen.Corr
	if corr == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		corr = 0.5
	}
	h := gen.horizon()
	sigma := mkt.Volatility
	drift := (mkt.Rate - sigma*sigma/2) * h
	volH := sigma * math.Sqrt(h)
	sqC := math.Sqrt(corr)
	sqI := math.Sqrt(1 - corr)

	z := make([]float64, assets+1)
	stream.NormalICDF(z)
	factors := make([]float64, assets)
	for j := 0; j < assets; j++ {
		zj := sqC*z[0] + sqI*z[j+1]
		factors[j] = math.Exp(drift + volH*zj)
	}
	scales := make([]float64, positions)
	for i := range scales {
		scales[i] = factors[i%assets]
	}
	return finbench.GridRow{Market: mkt, Scales: scales}
}

// Finalize assembles the Response for cells [start, start+len(pnl)).
// When the range covers the whole cell space it attaches the ladder
// reduced over the surface; a sub-range response carries only its
// segment. Both one process answering everything and the router merging
// sub-responses funnel through this same function, which is what makes
// the two answers byte-identical.
func Finalize(req *Request, base float64, start int, pnl []float64) *Response {
	resp := &Response{
		BaseValue: base,
		Start:     start,
		Cells:     len(pnl),
		GridCells: req.NumGridCells(),
		GenCells:  req.NumGenCells(),
		PnL:       pnl,
		Engine:    "grid-advanced",
	}
	if start == 0 && len(pnl) == req.NumCells() {
		resp.Ladder = Reduce(req.Levels(), pnl)
	}
	return resp
}
