package binomial

import (
	"math"
	"testing"
	"testing/quick"

	"finbench/internal/blackscholes"
	"finbench/internal/layout"
	"finbench/internal/perf"
	"finbench/internal/workload"
)

var mkt = workload.MarketParams{R: 0.05, Sigma: 0.2}

// The binomial price must converge to the Black-Scholes closed form as the
// step count grows (O(1/N) for CRR).
func TestConvergenceToBlackScholes(t *testing.T) {
	bsCall, _ := blackscholes.PriceScalar(100, 100, 1, mkt)
	prevErr := math.Inf(1)
	for _, n := range []int{64, 256, 1024} {
		got := PriceScalar(100, 100, 1, n, mkt)
		err := math.Abs(got - bsCall)
		if err > 3*bsCall/float64(n) {
			t.Fatalf("N=%d: price %g vs BS %g (err %g too large)", n, got, bsCall, err)
		}
		if err > prevErr*1.5 {
			t.Fatalf("N=%d: error %g did not shrink from %g", n, err, prevErr)
		}
		prevErr = err
	}
}

func TestConvergenceAcrossMoneyness(t *testing.T) {
	for _, c := range []struct{ s, x, tt float64 }{
		{100, 80, 0.5}, {100, 120, 2}, {50, 55, 1.5}, {150, 150, 0.25},
	} {
		bsCall, _ := blackscholes.PriceScalar(c.s, c.x, c.tt, mkt)
		got := PriceScalar(c.s, c.x, c.tt, 2048, mkt)
		if math.Abs(got-bsCall) > 0.02 {
			t.Fatalf("S=%g X=%g T=%g: binomial %g vs BS %g", c.s, c.x, c.tt, got, bsCall)
		}
	}
}

// American put is worth at least the European put (early exercise premium
// is non-negative) and at least intrinsic value.
func TestAmericanPutDominatesEuropean(t *testing.T) {
	f := func(su, xu uint16) bool {
		s := 50 + float64(su%100)
		x := 50 + float64(xu%100)
		_, euro := blackscholes.PriceScalar(s, x, 1, mkt)
		amer := PriceAmericanPutScalar(s, x, 1, 512, mkt)
		if amer < euro-0.02 { // binomial discretization tolerance
			return false
		}
		return amer >= math.Max(x-s, 0)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAmericanPutKnownBehaviour(t *testing.T) {
	// Deep ITM American put should be exercised immediately: value ==
	// intrinsic.
	got := PriceAmericanPutScalar(40, 100, 1, 512, mkt)
	if math.Abs(got-60) > 1e-6 {
		t.Fatalf("deep ITM American put = %g, want 60", got)
	}
}

func batch(n int) layout.AOS {
	g := workload.DefaultOptionGen
	g.TMax = 3 // keep trees numerically benign
	return g.GenerateAOS(n)
}

func prices(a layout.AOS) []float64 {
	out := make([]float64, a.Len())
	for i := range out {
		out[i] = a.Call(i)
	}
	return out
}

// All variants perform identical per-node arithmetic, so they must agree
// bitwise with the scalar reference.
func TestVariantsBitwiseEqual(t *testing.T) {
	const n, steps = 37, 128
	ref := batch(n)
	RefScalar(ref, steps, mkt, nil)
	want := prices(ref)

	check := func(name string, got []float64) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s option %d: %.17g != %.17g", name, i, got[i], want[i])
			}
		}
	}
	for _, w := range []int{4, 8} {
		b := batch(n)
		Basic(b, steps, mkt, w, nil)
		check("Basic", prices(b))

		b = batch(n)
		Intermediate(b, steps, mkt, w, nil)
		check("Intermediate", prices(b))

		b = batch(n)
		Advanced(b, steps, mkt, w, 8, false, nil)
		check("Advanced", prices(b))

		b = batch(n)
		Advanced(b, steps, mkt, w, 8, true, nil)
		check("Advanced-unrolled", prices(b))

		b = batch(n)
		Advanced(b, steps, mkt, w, 16, true, nil)
		check("Advanced-tile16", prices(b))
	}
}

func TestAdvancedPanicsOnBadTile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advanced with steps % tile != 0 did not panic")
		}
	}()
	Advanced(batch(8), 100, mkt, 8, 8, false, nil)
}

// Register tiling must cut Call-array traffic by ~TS while leaving flops
// unchanged — the mechanism behind the >2x speedup of Fig. 5.
func TestTilingReducesLoadStores(t *testing.T) {
	const n, steps = 64, 1024
	var ci, ca perf.Counts
	b := batch(n)
	Intermediate(b, steps, mkt, 8, &ci)
	b = batch(n)
	Advanced(b, steps, mkt, 8, 8, true, &ca)

	flopsI := ci.Get(perf.OpVecFMA) + ci.Get(perf.OpVecMul)
	flopsA := ca.Get(perf.OpVecFMA) + ca.Get(perf.OpVecMul)
	if math.Abs(float64(flopsI)-float64(flopsA))/float64(flopsI) > 0.02 {
		t.Fatalf("tiling changed flop count: %d vs %d", flopsI, flopsA)
	}
	memI := ci.Get(perf.OpVecLoad) + ci.Get(perf.OpVecStore)
	memA := ca.Get(perf.OpVecLoad) + ca.Get(perf.OpVecStore)
	if float64(memA) > float64(memI)/4 {
		t.Fatalf("tiling did not reduce memory ops: %d vs %d", memA, memI)
	}
}

// The non-unrolled tiled variant issues one register move per inner step;
// unrolling eliminates them (the KNC-only 1.4x of Sec. IV-B3).
func TestUnrollEliminatesMoves(t *testing.T) {
	const n, steps = 16, 256
	var cm, cu perf.Counts
	b := batch(n)
	Advanced(b, steps, mkt, 8, 8, false, &cm)
	b = batch(n)
	Advanced(b, steps, mkt, 8, 8, true, &cu)
	if cm.Get(perf.OpVecMisc) <= cu.Get(perf.OpVecMisc) {
		t.Fatalf("moves: rolled %d, unrolled %d", cm.Get(perf.OpVecMisc), cu.Get(perf.OpVecMisc))
	}
	// The move count should be ~1 per FMA in the steady state.
	moves := cm.Get(perf.OpVecMisc) - cu.Get(perf.OpVecMisc)
	fmas := cm.Get(perf.OpVecFMA)
	if float64(moves) < 0.8*float64(fmas)*float64(steps-8)/float64(steps) {
		t.Fatalf("moves %d vs fmas %d: unexpected ratio", moves, fmas)
	}
}

// Basic's unaligned loads must disappear in the across-options variants.
func TestAcrossOptionsEliminatesUnaligned(t *testing.T) {
	const n, steps = 16, 256
	var cb, ci perf.Counts
	b := batch(n)
	Basic(b, steps, mkt, 8, &cb)
	b = batch(n)
	Intermediate(b, steps, mkt, 8, &ci)
	if cb.Get(perf.OpVecLoadU) == 0 {
		t.Fatal("Basic should perform unaligned loads")
	}
	if ci.Get(perf.OpVecLoadU) != 0 {
		t.Fatal("Intermediate should not perform unaligned loads")
	}
	// Basic also pays a scalar remainder at each row end.
	if cb.Get(perf.OpScalar) == 0 {
		t.Fatal("Basic should have scalar remainder work")
	}
}

// Flop accounting must reproduce the paper's 3N(N+1)/2 bound per option.
func TestFlopCountMatchesBound(t *testing.T) {
	const n, steps = 8, 512
	var c perf.Counts
	b := batch(n)
	RefScalar(b, steps, mkt, &c)
	perOption := float64(c.Get(perf.OpScalar)) / float64(n)
	bound := 3 * float64(steps) * float64(steps+1) / 2
	// Within 2% (leaf init adds 3(N+1) flops).
	if perOption < bound || perOption > bound*1.02 {
		t.Fatalf("scalar flops/option = %g, bound %g", perOption, bound)
	}
}

func TestItemsAndTraffic(t *testing.T) {
	const n, steps = 24, 128
	var c perf.Counts
	b := batch(n)
	Intermediate(b, steps, mkt, 8, &c)
	if c.Items != n {
		t.Fatalf("items = %d", c.Items)
	}
	if c.BytesRead != 24*n || c.BytesWritten != 8*n {
		t.Fatalf("traffic %d/%d", c.BytesRead, c.BytesWritten)
	}
}

// Property: price is positive and below spot for calls.
func TestPriceBoundsQuick(t *testing.T) {
	f := func(su, xu uint16) bool {
		s := 20 + float64(su%180)
		x := 20 + float64(xu%180)
		p := PriceScalar(s, x, 1, 256, mkt)
		return p >= 0 && p <= s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRefScalar1024(b *testing.B) {
	a := batch(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RefScalar(a, 1024, mkt, nil)
	}
}

func BenchmarkIntermediateW8_1024(b *testing.B) {
	a := batch(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intermediate(a, 1024, mkt, 8, nil)
	}
}

func BenchmarkAdvancedW8_1024(b *testing.B) {
	a := batch(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Advanced(a, 1024, mkt, 8, 8, true, nil)
	}
}

// Tree-extracted greeks must match the closed form for European calls.
func TestTreeGreeksMatchClosedForm(t *testing.T) {
	for _, tc := range []struct{ s, x, tt float64 }{
		{100, 100, 1}, {100, 110, 0.5}, {120, 100, 2},
	} {
		g := GreeksScalar(tc.s, tc.x, tc.tt, 2048, mkt)
		want := blackscholes.ComputeGreeks(tc.s, tc.x, tc.tt, mkt)
		if math.Abs(g.Delta-want.DeltaCall) > 0.002 {
			t.Fatalf("S=%g X=%g: tree delta %g vs BS %g", tc.s, tc.x, g.Delta, want.DeltaCall)
		}
		if math.Abs(g.Gamma-want.Gamma) > 0.002 {
			t.Fatalf("S=%g X=%g: tree gamma %g vs BS %g", tc.s, tc.x, g.Gamma, want.Gamma)
		}
		// Price must be identical to the plain reduction.
		if p := PriceScalar(tc.s, tc.x, tc.tt, 2048, mkt); p != g.Price {
			t.Fatalf("greeks path changed the price: %g vs %g", g.Price, p)
		}
	}
}

// American-put tree greeks: validated against central-difference bumping
// of the same lattice.
func TestTreeGreeksAmericanPut(t *testing.T) {
	const s, x, tt = 100.0, 110.0, 1.0
	g := GreeksAmericanPut(s, x, tt, 2048, mkt)
	h := s * 1e-3
	up := PriceAmericanPutScalar(s+h, x, tt, 2048, mkt)
	mid := PriceAmericanPutScalar(s, x, tt, 2048, mkt)
	dn := PriceAmericanPutScalar(s-h, x, tt, 2048, mkt)
	if bump := (up - dn) / (2 * h); math.Abs(g.Delta-bump) > 0.01 {
		t.Fatalf("tree delta %g vs bumped %g", g.Delta, bump)
	}
	if bump := (up - 2*mid + dn) / (h * h); math.Abs(g.Gamma-bump) > 0.05 {
		t.Fatalf("tree gamma %g vs bumped %g", g.Gamma, bump)
	}
	if g.Price != mid {
		t.Fatalf("price mismatch: %g vs %g", g.Price, mid)
	}
}

// Two-level tiling computes the same dependence DAG: bitwise equality with
// the single-level tile and the scalar reference.
func TestTwoLevelBitwiseEqual(t *testing.T) {
	const n, steps = 19, 256
	ref := batch(n)
	RefScalar(ref, steps, mkt, nil)
	want := prices(ref)
	for _, w := range []int{4, 8} {
		b := batch(n)
		AdvancedTwoLevel(b, steps, mkt, w, 64, 8, true, nil)
		got := prices(b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("width %d option %d: %.17g != %.17g", w, i, got[i], want[i])
			}
		}
		b = batch(n)
		AdvancedTwoLevel(b, steps, mkt, w, 32, 16, false, nil)
		got = prices(b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("CT=32 RT=16 width %d option %d mismatch", w, i)
			}
		}
	}
}

func TestTwoLevelPanicsOnBadTiles(t *testing.T) {
	for _, tc := range [][2]int{{100, 8}, {64, 12}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CT=%d RT=%d accepted", tc[0], tc[1])
				}
			}()
			AdvancedTwoLevel(batch(8), 256, mkt, 8, tc[0], tc[1], true, nil)
		}()
	}
}

// The cache tile must cut Call-array traffic below the register-only tile
// by ~CT/RT while keeping flops identical.
func TestTwoLevelReducesCallTraffic(t *testing.T) {
	const n, steps = 16, 1024
	var c1, c2 perf.Counts
	b := batch(n)
	Advanced(b, steps, mkt, 8, 16, true, &c1)
	b = batch(n)
	AdvancedTwoLevel(b, steps, mkt, 8, 256, 16, true, &c2)
	fma1, fma2 := c1.Get(perf.OpVecFMA), c2.Get(perf.OpVecFMA)
	if math.Abs(float64(fma1)-float64(fma2))/float64(fma1) > 0.02 {
		t.Fatalf("two-level changed flops: %d vs %d", fma1, fma2)
	}
	// Call-array stores approximate DRAM write traffic: the two-level
	// variant writes Call once per 256 steps instead of once per 16.
	// (Loads include the cache-buffer traffic, so compare stores to the
	// Call array: storeVec counts for b.call plus cbuf; the DRAM-side
	// reduction shows in total store volume divided by the cbuf share.)
	if c2.Get(perf.OpVecStore) == 0 || c1.Get(perf.OpVecStore) == 0 {
		t.Fatal("missing store counts")
	}
}

func BenchmarkTwoLevel8192(b *testing.B) {
	a := batch(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AdvancedTwoLevel(a, 8192, mkt, 8, 512, 16, true, nil)
	}
}
