package fault

import (
	"net"
	"sync"
	"time"
)

// listener wraps Accept with per-connection fault decisions. Refused
// connections are closed immediately and the loop moves on to the next
// accept, so the server never sees them; other kinds hand the handler a
// wrapped conn that misbehaves at the scripted point.
type listener struct {
	net.Listener
	inj *Injector
}

// NewListener wraps l with inj; a nil injector (or nil spec) returns l
// unchanged.
func NewListener(l net.Listener, inj *Injector) net.Listener {
	if inj == nil || inj.spec == nil {
		return l
	}
	return &listener{Listener: l, inj: inj}
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		switch l.inj.NextDecision() {
		case KindRefuse:
			// Close before any byte is exchanged: the client's request
			// provably never executed.
			abort(c)
			continue
		case KindReset:
			return &resetConn{Conn: c}, nil
		case KindTruncate:
			return &truncConn{Conn: c, allow: l.inj.spec.TruncateAfter}, nil
		case KindLatency:
			return &latencyConn{Conn: c, delay: l.inj.spec.Latency}, nil
		case KindLimp:
			return &limpConn{Conn: c, delay: l.inj.spec.LimpDelay}, nil
		default:
			return c, nil
		}
	}
}

// abort closes c as abruptly as the platform allows (SO_LINGER 0 turns the
// close into a TCP RST, which is what a crashed replica looks like).
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// resetConn lets the request in, then kills the connection on the first
// response byte: the work executed but the reply never left the box.
type resetConn struct {
	net.Conn
	once sync.Once
}

func (c *resetConn) Write(b []byte) (int, error) {
	c.once.Do(func() { abort(c.Conn) })
	return 0, net.ErrClosed
}

// truncConn forwards the first allow response bytes and then cuts the
// stream, producing a syntactically broken body on the client.
type truncConn struct {
	net.Conn
	mu    sync.Mutex
	allow int
	dead  bool
}

func (c *truncConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, net.ErrClosed
	}
	if len(b) <= c.allow {
		c.allow -= len(b)
		return c.Conn.Write(b)
	}
	n, _ := c.Conn.Write(b[:c.allow])
	c.allow = 0
	c.dead = true
	abort(c.Conn)
	return n, net.ErrClosed
}

// latencyConn holds the first read back — a connection that takes its
// time arriving.
type latencyConn struct {
	net.Conn
	delay time.Duration
	once  sync.Once
}

func (c *latencyConn) Read(b []byte) (int, error) {
	c.once.Do(func() { time.Sleep(c.delay) })
	return c.Conn.Read(b)
}

// limpConn drips every write: the replica answers, slowly — the shape
// hedged requests exist to beat.
type limpConn struct {
	net.Conn
	delay time.Duration
}

func (c *limpConn) Write(b []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(b)
}
