package shard

import (
	"math"
	"testing"
)

// FuzzDecodeHealthz asserts the health decoder's contract on arbitrary
// bytes: either an error, or a response with a known status and sane
// load signals. The router scores replicas by these numbers, so a
// limping backend must never be able to feed it garbage.
func FuzzDecodeHealthz(f *testing.F) {
	f.Add([]byte(`{"status":"ok","in_flight_units":5,"max_units":100,"queue_depth":0,"uptime_s":1.5}`))
	f.Add([]byte(`{"status":"draining","in_flight_units":0,"max_units":1,"queue_depth":0,"uptime_s":0}`))
	f.Add([]byte(`{"status":"exploded"}`))
	f.Add([]byte(`{"status":"ok","queue_depth":-1}`))
	f.Add([]byte(`{"status":"ok","uptime_s":1e999}`))
	f.Add([]byte(`{"status":"ok"}{"status":"ok"}`))
	f.Add([]byte(`nonsense`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHealth(data)
		if err != nil {
			return
		}
		if h == nil {
			t.Fatal("nil response with nil error")
		}
		if h.Status != "ok" && h.Status != "draining" {
			t.Fatalf("unknown status %q accepted", h.Status)
		}
		if h.InFlightUnits < 0 || h.MaxUnits < 0 || h.QueueDepth < 0 {
			t.Fatalf("negative load signal accepted: %+v", h)
		}
		if math.IsNaN(h.UptimeS) || math.IsInf(h.UptimeS, 0) || h.UptimeS < 0 {
			t.Fatalf("bad uptime accepted: %v", h.UptimeS)
		}
	})
}
