// Command pricer values a single option with every applicable method and
// prints the cross-method comparison — the quickest way to sanity-check
// the numerical kernels against each other.
//
// Usage:
//
//	pricer [-type call|put] [-style european|american]
//	       [-spot 100] [-strike 100] [-expiry 1]
//	       [-rate 0.05] [-vol 0.2] [-greeks]
package main

import (
	"flag"
	"fmt"
	"os"

	"finbench"
)

func main() {
	typ := flag.String("type", "call", "call or put")
	style := flag.String("style", "european", "european or american")
	spot := flag.Float64("spot", 100, "underlying price")
	strike := flag.Float64("strike", 100, "strike price")
	expiry := flag.Float64("expiry", 1, "years to expiry")
	rate := flag.Float64("rate", 0.05, "risk-free rate")
	vol := flag.Float64("vol", 0.2, "implied volatility")
	greeks := flag.Bool("greeks", false, "print Black-Scholes greeks")
	flag.Parse()

	opt := finbench.Option{Spot: *spot, Strike: *strike, Expiry: *expiry}
	switch *typ {
	case "call":
		opt.Type = finbench.Call
	case "put":
		opt.Type = finbench.Put
	default:
		fmt.Fprintf(os.Stderr, "pricer: unknown type %q\n", *typ)
		os.Exit(2)
	}
	switch *style {
	case "european":
		opt.Style = finbench.European
	case "american":
		opt.Style = finbench.American
	default:
		fmt.Fprintf(os.Stderr, "pricer: unknown style %q\n", *style)
		os.Exit(2)
	}
	mkt := finbench.Market{Rate: *rate, Volatility: *vol}

	fmt.Printf("%s %s  S=%g K=%g T=%g  r=%g sigma=%g\n\n",
		opt.Style, opt.Type, opt.Spot, opt.Strike, opt.Expiry, mkt.Rate, mkt.Volatility)
	methods := []finbench.Method{
		finbench.ClosedForm, finbench.BinomialTree,
		finbench.FiniteDifference, finbench.MonteCarlo,
	}
	for _, m := range methods {
		res, err := finbench.Price(opt, mkt, m, nil)
		if err != nil {
			fmt.Printf("%-18s  n/a (%v)\n", m, err)
			continue
		}
		if res.StdErr > 0 {
			fmt.Printf("%-18s  %.6f  (+- %.6f)\n", m, res.Price, res.StdErr)
		} else {
			fmt.Printf("%-18s  %.6f\n", m, res.Price)
		}
	}
	if res, err := finbench.PriceTrinomial(opt, mkt, 1024); err == nil {
		fmt.Printf("%-18s  %.6f\n", "trinomial-tree", res.Price)
	}
	if opt.Style == finbench.American && opt.Type == finbench.Put {
		if res, err := finbench.PriceAmericanPutLSMC(opt, mkt, 100000, 50, 1); err == nil {
			fmt.Printf("%-18s  %.6f  (+- %.6f)\n", "longstaff-schwartz", res.Price, res.StdErr)
		}
	}
	if *greeks {
		g, err := finbench.ComputeGreeks(opt, mkt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pricer: greeks: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ngreeks (Black-Scholes):\n")
		fmt.Printf("  delta  %+.6f (call) %+.6f (put)\n", g.DeltaCall, g.DeltaPut)
		fmt.Printf("  gamma  %+.6f\n", g.Gamma)
		fmt.Printf("  vega   %+.6f\n", g.Vega)
		fmt.Printf("  theta  %+.6f (call) %+.6f (put)\n", g.ThetaCall, g.ThetaPut)
		fmt.Printf("  rho    %+.6f (call) %+.6f (put)\n", g.RhoCall, g.RhoPut)
	}
}
