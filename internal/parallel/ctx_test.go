package parallel

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"finbench/internal/perf"
)

func TestForCtxBackgroundMatchesFor(t *testing.T) {
	const n = 1000
	want := make([]int32, n)
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = int32(i * 3)
		}
	})
	got := make([]int32, n)
	if err := ForCtx(context.Background(), n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			got[i] = int32(i * 3)
		}
	}); err != nil {
		t.Fatalf("ForCtx(Background) = %v, want nil", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestForCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForCtx(ctx, 100, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran despite pre-cancelled ctx", ran.Load())
	}
}

func TestForDynamicCtxStopsMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	const n, grain = 1 << 16, 16
	err := ForDynamicCtx(ctx, n, grain, func(lo, hi int) {
		if ran.Add(int64(hi-lo)) > n/8 {
			cancel()
		}
		time.Sleep(time.Microsecond)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == 0 || got == n {
		t.Fatalf("ran %d of %d items; want a partial run", got, n)
	}
}

func TestForDynamicCtxCompletesUncancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	const n = 4096
	if err := ForDynamicCtx(ctx, n, 64, func(lo, hi int) { ran.Add(int64(hi - lo)) }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d of %d items", ran.Load(), n)
	}
}

func TestForIndexedMergedCtxMergesPartials(t *testing.T) {
	var c perf.Counts
	const n = 1 << 12
	if err := ForIndexedMergedCtx(context.Background(), n, &c, func(_, lo, hi int, local *perf.Counts) {
		local.Add(perf.OpScalar, uint64(hi-lo))
	}); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if got := c.Get(perf.OpScalar); got != n {
		t.Fatalf("merged count = %d, want %d", got, n)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var c2 perf.Counts
	if err := ForIndexedMergedCtx(ctx, n, &c2, func(_, lo, hi int, local *perf.Counts) {
		local.Add(perf.OpScalar, uint64(hi-lo))
	}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := c2.Get(perf.OpScalar); got != 0 {
		t.Fatalf("cancelled region still counted %d items", got)
	}
}
