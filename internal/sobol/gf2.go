// Package sobol implements Sobol low-discrepancy sequences with
// Gray-code generation and random digital shifts, the quasi-Monte Carlo
// companion to the Brownian bridge (Glasserman ch. 5, which the paper
// cites as the source of its bridge kernel: the bridge orders path
// dimensions by variance contribution exactly so that low-discrepancy
// points can exploit the low effective dimension).
//
// Direction numbers need one primitive polynomial over GF(2) per
// dimension. Rather than embedding an opaque table, this package computes
// the polynomials: candidates are enumerated in increasing (degree, value)
// order — the same ordering the canonical Joe-Kuo tables use — and tested
// for primitivity via the multiplicative order of x in GF(2)[x]/(p).
// Initial direction values for the first dimensions follow the classical
// Joe-Kuo table; later dimensions draw valid odd initial values from a
// deterministic seeded generator (documented substitution: quality-tuned
// tables are not reproducible from the paper, and any odd m_i < 2^i
// yields a valid digital net — see DESIGN.md).
package sobol

// gf2Mulmod returns (a*b) mod p over GF(2), where p has degree deg (bit
// deg set). Operands are bit-packed polynomials.
func gf2Mulmod(a, b, p uint64, deg uint) uint64 {
	var r uint64
	top := uint64(1) << deg
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		b >>= 1
		a <<= 1
		if a&top != 0 {
			a ^= p
		}
	}
	return r
}

// gf2Powmod returns x^e mod p over GF(2).
func gf2Powmod(e uint64, p uint64, deg uint) uint64 {
	result := uint64(1)
	base := uint64(2) // the polynomial x
	for e > 0 {
		if e&1 != 0 {
			result = gf2Mulmod(result, base, p, deg)
		}
		base = gf2Mulmod(base, base, p, deg)
		e >>= 1
	}
	return result
}

// primeFactors returns the distinct prime factors of n by trial division
// (n <= 2^25-1 here, trivial).
func primeFactors(n uint64) []uint64 {
	var fs []uint64
	for f := uint64(2); f*f <= n; f++ {
		if n%f == 0 {
			fs = append(fs, f)
			for n%f == 0 {
				n /= f
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// isPrimitive reports whether the degree-deg polynomial p (bit-packed,
// with both the leading and constant terms set) is primitive over GF(2):
// x must have multiplicative order exactly 2^deg - 1 in GF(2)[x]/(p).
func isPrimitive(p uint64, deg uint) bool {
	if deg == 0 || p&1 == 0 { // constant term required
		return false
	}
	order := (uint64(1) << deg) - 1
	if gf2Powmod(order, p, deg) != 1 {
		return false
	}
	for _, q := range primeFactors(order) {
		if gf2Powmod(order/q, p, deg) == 1 {
			return false
		}
	}
	return true
}

// primitivePolynomials returns the first n primitive polynomials over
// GF(2) in increasing (degree, value) order, excluding degree 0. Each is
// bit-packed with the leading bit set (e.g. x^3+x+1 = 0b1011).
func primitivePolynomials(n int) []uint64 {
	out := make([]uint64, 0, n)
	for deg := uint(1); len(out) < n; deg++ {
		lo := uint64(1) << deg
		hi := lo << 1
		for p := lo + 1; p < hi && len(out) < n; p += 2 {
			if isPrimitive(p, deg) {
				out = append(out, p)
			}
		}
	}
	return out
}

// polyDegree returns the degree of a bit-packed polynomial.
func polyDegree(p uint64) uint {
	d := uint(0)
	for p > 1 {
		p >>= 1
		d++
	}
	return d
}
