package cranknicolson

import (
	"finbench/internal/perf"
	"finbench/internal/vec"
)

// The wavefront GSOR of Fig. 7: the convergence loop is unrolled by the
// vector width W; lane l executes sweep base+l displaced 2(l) points
// behind lane l-1. With in-place updates this ordering computes exactly
// the values of W sequential Gauss-Seidel sweeps: at virtual step s, lane
// l relaxes point j = 1 + s - 2l, reading u[j-1] (own sweep, written at
// s-1), u[j] and u[j+1] (previous sweep, written by lane l-1 at s-2 and
// s-1). Steps where some lanes fall outside 1..J-1 form the prologue and
// epilogue triangles and run scalar; full steps run SIMD.
//
// storage abstracts the two data layouts: flat arrays (lane accesses
// stride by -2 => gathers; the Intermediate variant) and even/odd split
// arrays (same-parity accesses are contiguous reversed loads; the Advanced
// variant after the paper's data-structure transformation).

type storage interface {
	// get/set access logical index j of each array (scalar path).
	getU(j int) float64
	setU(j int, v float64)
	getB(j int) float64
	getG(j int) float64
	// vectors load lanes l=0..W-1 at logical index base-2l (+off applied
	// first); the store writes the same pattern.
	loadU(ctx vec.Ctx, base, off int) vec.Vec
	loadB(ctx vec.Ctx, base int) vec.Vec
	loadG(ctx vec.Ctx, base int) vec.Vec
	storeU(ctx vec.Ctx, base int, v vec.Vec)
}

// flatStorage keeps the solver's plain arrays; vector accesses are
// stride -2 gathers/scatters (the "irregular accesses" of Sec. IV-E2).
type flatStorage struct{ u, b, g []float64 }

func (f *flatStorage) getU(j int) float64    { return f.u[j] }
func (f *flatStorage) setU(j int, v float64) { f.u[j] = v }
func (f *flatStorage) getB(j int) float64    { return f.b[j] }
func (f *flatStorage) getG(j int) float64    { return f.g[j] }

func (f *flatStorage) loadU(ctx vec.Ctx, base, off int) vec.Vec {
	return ctx.GatherStride(f.u, base+off, -2)
}
func (f *flatStorage) loadB(ctx vec.Ctx, base int) vec.Vec {
	return ctx.GatherStride(f.b, base, -2)
}
func (f *flatStorage) loadG(ctx vec.Ctx, base int) vec.Vec {
	return ctx.GatherStride(f.g, base, -2)
}
func (f *flatStorage) storeU(ctx vec.Ctx, base int, v vec.Vec) {
	ctx.ScatterStride(f.u, base, -2, v)
}

// splitStorage is the transformed layout: even and odd logical indices
// live in separate contiguous arrays, so a stride -2 lane pattern becomes
// one reversed contiguous load. The per-time-step rearrangement cost is
// charged by the caller (the paper attributes the residual gap to exactly
// this overhead).
type splitStorage struct {
	u, b, g [2][]float64
}

func newSplitStorage(jmax int) *splitStorage {
	s := &splitStorage{}
	ne := jmax/2 + 1
	no := (jmax + 1) / 2
	s.u[0], s.u[1] = make([]float64, ne), make([]float64, no)
	s.b[0], s.b[1] = make([]float64, ne), make([]float64, no)
	s.g[0], s.g[1] = make([]float64, ne), make([]float64, no)
	return s
}

// fill converts the flat arrays into the split layout, counting the copy
// traffic (the "cost of physically rearranging", Sec. IV-E3).
func (s *splitStorage) fill(u, b, g []float64, c *perf.Counts) {
	for j := range u {
		s.u[j&1][j>>1] = u[j]
		s.b[j&1][j>>1] = b[j]
		s.g[j&1][j>>1] = g[j]
	}
	if c != nil {
		n := uint64(len(u))
		c.Add(perf.OpScalarLoad, 3*n)
		c.Add(perf.OpScalarStore, 3*n)
	}
}

// drain writes the solved U back to the flat array.
func (s *splitStorage) drain(u []float64, c *perf.Counts) {
	for j := range u {
		u[j] = s.u[j&1][j>>1]
	}
	if c != nil {
		n := uint64(len(u))
		c.Add(perf.OpScalarLoad, n)
		c.Add(perf.OpScalarStore, n)
	}
}

func (s *splitStorage) getU(j int) float64    { return s.u[j&1][j>>1] }
func (s *splitStorage) setU(j int, v float64) { s.u[j&1][j>>1] = v }
func (s *splitStorage) getB(j int) float64    { return s.b[j&1][j>>1] }
func (s *splitStorage) getG(j int) float64    { return s.g[j&1][j>>1] }

// loadSplit loads lanes base-2l from the parity-split array arr: indices
// base, base-2, ... share parity base&1 and map to m, m-1, ... in the
// half-array — one reversed contiguous load.
func loadSplit(ctx vec.Ctx, arr [2][]float64, base int) vec.Vec {
	m := base >> 1
	return ctx.LoadRev(arr[base&1], m-ctx.W+1)
}

func (s *splitStorage) loadU(ctx vec.Ctx, base, off int) vec.Vec {
	return loadSplit(ctx, s.u, base+off)
}
func (s *splitStorage) loadB(ctx vec.Ctx, base int) vec.Vec { return loadSplit(ctx, s.b, base) }
func (s *splitStorage) loadG(ctx vec.Ctx, base int) vec.Vec { return loadSplit(ctx, s.g, base) }
func (s *splitStorage) storeU(ctx vec.Ctx, base int, v vec.Vec) {
	m := base >> 1
	ctx.StoreRev(s.u[base&1], m-ctx.W+1, v)
}

// gsorWavefront runs PSOR with the convergence loop unrolled by the vector
// width over the given storage; returns the sweep count.
func (s *Solver) gsorWavefront(st storage, omega float64, width int, c *perf.Counts) int {
	ai := s.alphaImplicit()
	coeff := 1 / (1 + ai)
	alpha2 := ai / 2
	m := s.J - 1 // interior point count
	ctx := vec.New(width, c)
	coeffV := ctx.Broadcast(coeff)
	alpha2V := ctx.Broadcast(alpha2)
	omegaV := ctx.Broadcast(omega)
	loops := 0
	errs := make([]float64, width)
	for {
		for l := range errs {
			errs[l] = 0
		}
		var errAcc vec.Vec
		// Virtual steps: lane l active when 0 <= s-2l <= m-1.
		smax := (m - 1) + 2*(width-1)
		for step := 0; step <= smax; step++ {
			if step >= 2*(width-1) && step <= m-1 {
				// Steady state: all lanes active, SIMD (the trapezoid of
				// Fig. 7).
				base := 1 + step // lane 0's j; lane l at base-2l
				um1 := st.loadU(ctx, base, -1)
				u0 := st.loadU(ctx, base, 0)
				up1 := st.loadU(ctx, base, 1)
				bv := st.loadB(ctx, base)
				gv := st.loadG(ctx, base)
				y := ctx.Mul(coeffV, ctx.FMA(alpha2V, ctx.Add(um1, up1), bv))
				un := ctx.FMA(omegaV, ctx.Sub(y, u0), u0)
				if s.American {
					un = ctx.Max(gv, un)
				}
				d := ctx.Sub(un, u0)
				errAcc = ctx.FMA(d, d, errAcc)
				st.storeU(ctx, base, un)
				continue
			}
			// Prologue/epilogue triangles: scalar per active lane.
			for l := 0; l < width; l++ {
				jrel := step - 2*l
				if jrel < 0 || jrel > m-1 {
					continue
				}
				j := 1 + jrel
				un := s.relax(st.getU(j), st.getU(j-1), st.getU(j+1), st.getB(j), st.getG(j), omega, coeff, alpha2)
				d := un - st.getU(j)
				errs[l] += d * d
				st.setU(j, un)
				if c != nil {
					// Triangle points run the same serial relaxation as
					// the scalar reference.
					c.Add(perf.OpScalarChain, 6)
					c.Add(perf.OpScalar, 5)
					c.Add(perf.OpScalarLoad, 4)
					c.Add(perf.OpScalarStore, 1)
				}
			}
		}
		for l := 0; l < width; l++ {
			errs[l] += errAcc.X[l]
		}
		loops += width
		// Convergence checked once per block, on the final sweep
		// (divergence-safe, as in the scalar path).
		if !(errs[width-1] > s.Eps) || errs[width-1] > 1e200 || loops > 10000 {
			return loops
		}
	}
}

// SolveWavefront runs the time loop with the wavefront GSOR over flat
// storage (the Intermediate variant: manual SIMD, gather-bound accesses).
func (s *Solver) SolveWavefront(width int, c *perf.Counts) ([]float64, int) {
	return s.solve(c, func(b, u, g []float64, omega float64, c *perf.Counts) int {
		st := &flatStorage{u: u, b: b, g: g}
		return s.gsorWavefront(st, omega, width, c)
	})
}

// SolveWavefrontSplit runs the time loop with the wavefront GSOR over the
// even/odd split layout (the Advanced variant), paying the per-step
// rearrangement cost.
func (s *Solver) SolveWavefrontSplit(width int, c *perf.Counts) ([]float64, int) {
	var split *splitStorage
	return s.solve(c, func(b, u, g []float64, omega float64, c *perf.Counts) int {
		if split == nil {
			split = newSplitStorage(s.J)
		}
		split.fill(u, b, g, c)
		loops := s.gsorWavefront(split, omega, width, c)
		split.drain(u, c)
		return loops
	})
}
