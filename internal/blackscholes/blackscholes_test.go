package blackscholes

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"finbench/internal/layout"
	"finbench/internal/mathx"
	"finbench/internal/perf"
	"finbench/internal/workload"
)

var mkt = workload.MarketParams{R: 0.05, Sigma: 0.2}

// Classic textbook value: S=100, K=100, T=1, r=5%, sigma=20%.
func TestPriceScalarKnownValue(t *testing.T) {
	call, put := PriceScalar(100, 100, 1, mkt)
	if math.Abs(call-10.450583572185565) > 1e-12 {
		t.Fatalf("call = %.15f", call)
	}
	if math.Abs(put-5.573526022256971) > 1e-12 {
		t.Fatalf("put = %.15f", put)
	}
}

func TestPriceScalarDeepITMOTM(t *testing.T) {
	// Deep in-the-money call approaches S - K e^{-rT}.
	call, _ := PriceScalar(200, 10, 1, mkt)
	want := 200 - 10*mathx.Exp(-0.05)
	if math.Abs(call-want) > 1e-9 {
		t.Fatalf("deep ITM call = %g, want %g", call, want)
	}
	// Deep out-of-the-money call is nearly worthless.
	call, _ = PriceScalar(10, 200, 0.25, mkt)
	if call > 1e-12 {
		t.Fatalf("deep OTM call = %g", call)
	}
}

// Property: put-call parity C - P = S - K e^{-rT} for all valid inputs.
func TestPutCallParityQuick(t *testing.T) {
	f := func(su, xu, tu uint16) bool {
		s := 10 + float64(su%190)
		x := 10 + float64(xu%190)
		tt := 0.1 + float64(tu%1000)/100
		call, put := PriceScalar(s, x, tt, mkt)
		want := s - x*mathx.Exp(-mkt.R*tt)
		return math.Abs((call-put)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: call price is monotone decreasing in strike and increasing in
// volatility.
func TestMonotonicityQuick(t *testing.T) {
	f := func(xu uint16) bool {
		x := 50 + float64(xu%100)
		c1, _ := PriceScalar(100, x, 1, mkt)
		c2, _ := PriceScalar(100, x+1, 1, mkt)
		if c2 > c1+1e-12 {
			return false
		}
		lo, _ := PriceScalar(100, x, 1, workload.MarketParams{R: mkt.R, Sigma: 0.1})
		hi, _ := PriceScalar(100, x, 1, workload.MarketParams{R: mkt.R, Sigma: 0.5})
		return hi >= lo-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Call is bounded by S and below by max(S - K e^{-rT}, 0).
func TestNoArbitrageBoundsQuick(t *testing.T) {
	f := func(su, xu, tu uint16) bool {
		s := 10 + float64(su%190)
		x := 10 + float64(xu%190)
		tt := 0.1 + float64(tu%1000)/100
		call, put := PriceScalar(s, x, tt, mkt)
		lower := math.Max(s-x*mathx.Exp(-mkt.R*tt), 0)
		if call < lower-1e-9 || call > s+1e-9 {
			return false
		}
		return put >= 0-1e-9 && put <= x*mathx.Exp(-mkt.R*tt)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func genBatch(n int) layout.AOS {
	return workload.DefaultOptionGen.GenerateAOS(n)
}

func maxDiffAOS(a, b layout.AOS) float64 {
	var m float64
	for i := 0; i < a.Len(); i++ {
		m = math.Max(m, math.Abs(a.Call(i)-b.Call(i)))
		m = math.Max(m, math.Abs(a.Put(i)-b.Put(i)))
	}
	return m
}

func TestBasicMatchesRefScalar(t *testing.T) {
	for _, width := range []int{4, 8} {
		a := genBatch(1003) // deliberately not a multiple of the width
		b := genBatch(1003)
		RefScalar(a, mkt, nil)
		Basic(b, mkt, width, nil)
		if d := maxDiffAOS(a, b); d > 1e-12 {
			t.Fatalf("width %d: Basic differs from RefScalar by %g", width, d)
		}
	}
}

func TestIntermediateMatchesRefScalar(t *testing.T) {
	for _, width := range []int{4, 8} {
		a := genBatch(517)
		RefScalar(a, mkt, nil)
		s := workload.DefaultOptionGen.GenerateSOA(517)
		Intermediate(s, mkt, width, nil)
		for i := 0; i < 517; i++ {
			if math.Abs(s.Call[i]-a.Call(i)) > 1e-10 || math.Abs(s.Put[i]-a.Put(i)) > 1e-10 {
				t.Fatalf("width %d option %d: (%g,%g) vs (%g,%g)", width, i,
					s.Call[i], s.Put[i], a.Call(i), a.Put(i))
			}
		}
	}
}

func TestAdvancedMatchesRefScalar(t *testing.T) {
	for _, width := range []int{4, 8} {
		a := genBatch(5000) // exceeds one VML chunk
		RefScalar(a, mkt, nil)
		s := workload.DefaultOptionGen.GenerateSOA(5000)
		Advanced(s, mkt, width, nil)
		for i := 0; i < 5000; i++ {
			if math.Abs(s.Call[i]-a.Call(i)) > 1e-10 || math.Abs(s.Put[i]-a.Put(i)) > 1e-10 {
				t.Fatalf("width %d option %d mismatch", width, i)
			}
		}
	}
}

func TestBasicCountsGathers(t *testing.T) {
	var c perf.Counts
	a := genBatch(layout.PadTo(1000, 8))
	Basic(a, mkt, 8, &c)
	n := uint64(a.Len())
	vecs := n / 8
	if got := c.Get(perf.OpGather); got != 3*vecs {
		t.Fatalf("gathers = %d, want %d", got, 3*vecs)
	}
	if got := c.Get(perf.OpScatter); got != 2*vecs {
		t.Fatalf("scatters = %d, want %d", got, 2*vecs)
	}
	if c.Get(perf.OpCND) != 4*n {
		t.Fatalf("cnd = %d, want %d", c.Get(perf.OpCND), 4*n)
	}
	if c.Items != n {
		t.Fatalf("items = %d", c.Items)
	}
	if c.BytesRead != 40*n || c.BytesWritten != 16*n {
		t.Fatalf("traffic = %d/%d", c.BytesRead, c.BytesWritten)
	}
}

func TestIntermediateCountsNoGathers(t *testing.T) {
	var c perf.Counts
	s := workload.DefaultOptionGen.GenerateSOA(layout.PadTo(1000, 8))
	Intermediate(s, mkt, 8, &c)
	if c.Get(perf.OpGather) != 0 || c.Get(perf.OpScatter) != 0 {
		t.Fatalf("SOA variant performed gathers: %v", c)
	}
	n := uint64(s.Len())
	if c.Get(perf.OpErf) != 2*n {
		t.Fatalf("erf = %d, want %d", c.Get(perf.OpErf), 2*n)
	}
	if c.Get(perf.OpCND) != 0 {
		t.Fatalf("cnd = %d, want 0 (parity + erf substitution)", c.Get(perf.OpCND))
	}
	if c.BytesRead != 24*n {
		t.Fatalf("bytes read = %d, want %d", c.BytesRead, 24*n)
	}
}

func TestAdvancedCounts(t *testing.T) {
	var c perf.Counts
	s := workload.DefaultOptionGen.GenerateSOA(4096)
	Advanced(s, mkt, 8, &c)
	if c.Get(perf.OpErf) != 2*4096*17/20 {
		t.Fatalf("erf = %d (expect the 15%% VML amortization discount)", c.Get(perf.OpErf))
	}
	if c.Get(perf.OpVecLoad) == 0 || c.Get(perf.OpVecStore) == 0 {
		t.Fatal("VML variant should charge intermediate-array traffic")
	}
	if c.Items != 4096 {
		t.Fatalf("items = %d", c.Items)
	}
}

func TestGreeksAgainstFiniteDifferences(t *testing.T) {
	s, x, tt := 105.0, 100.0, 0.75
	g := ComputeGreeks(s, x, tt, mkt)
	const h = 1e-5
	cUp, pUp := PriceScalar(s+h, x, tt, mkt)
	cDn, pDn := PriceScalar(s-h, x, tt, mkt)
	c0, _ := PriceScalar(s, x, tt, mkt)
	if d := (cUp - cDn) / (2 * h); math.Abs(d-g.DeltaCall) > 1e-6 {
		t.Fatalf("delta call fd %g vs %g", d, g.DeltaCall)
	}
	if d := (pUp - pDn) / (2 * h); math.Abs(d-g.DeltaPut) > 1e-6 {
		t.Fatalf("delta put fd %g vs %g", d, g.DeltaPut)
	}
	if d := (cUp - 2*c0 + cDn) / (h * h); math.Abs(d-g.Gamma) > 1e-4 {
		t.Fatalf("gamma fd %g vs %g", d, g.Gamma)
	}
	mktUp := workload.MarketParams{R: mkt.R, Sigma: mkt.Sigma + h}
	mktDn := workload.MarketParams{R: mkt.R, Sigma: mkt.Sigma - h}
	cvUp, _ := PriceScalar(s, x, tt, mktUp)
	cvDn, _ := PriceScalar(s, x, tt, mktDn)
	if d := (cvUp - cvDn) / (2 * h); math.Abs(d-g.Vega) > 1e-5 {
		t.Fatalf("vega fd %g vs %g", d, g.Vega)
	}
	mrUp := workload.MarketParams{R: mkt.R + h, Sigma: mkt.Sigma}
	mrDn := workload.MarketParams{R: mkt.R - h, Sigma: mkt.Sigma}
	crUp, prUp := PriceScalar(s, x, tt, mrUp)
	crDn, prDn := PriceScalar(s, x, tt, mrDn)
	if d := (crUp - crDn) / (2 * h); math.Abs(d-g.RhoCall) > 1e-5 {
		t.Fatalf("rho call fd %g vs %g", d, g.RhoCall)
	}
	if d := (prUp - prDn) / (2 * h); math.Abs(d-g.RhoPut) > 1e-5 {
		t.Fatalf("rho put fd %g vs %g", d, g.RhoPut)
	}
	ctUp, ptUp := PriceScalar(s, x, tt-h, mkt) // theta: value decay as t advances
	ctDn, ptDn := PriceScalar(s, x, tt+h, mkt)
	if d := (ctUp - ctDn) / (2 * h); math.Abs(d-g.ThetaCall) > 1e-4 {
		t.Fatalf("theta call fd %g vs %g", d, g.ThetaCall)
	}
	if d := (ptUp - ptDn) / (2 * h); math.Abs(d-g.ThetaPut) > 1e-4 {
		t.Fatalf("theta put fd %g vs %g", d, g.ThetaPut)
	}
}

func TestImpliedVolRoundTrip(t *testing.T) {
	for _, sig := range []float64{0.05, 0.2, 0.45, 1.2} {
		m := workload.MarketParams{R: 0.03, Sigma: sig}
		call, _ := PriceScalar(100, 110, 0.5, m)
		got, err := ImpliedVolCall(call, 100, 110, 0.5, 0.03)
		if err != nil {
			t.Fatalf("sigma %g: %v", sig, err)
		}
		if math.Abs(got-sig) > 1e-8 {
			t.Fatalf("implied vol = %g, want %g", got, sig)
		}
	}
}

func TestImpliedVolArbitrage(t *testing.T) {
	if _, err := ImpliedVolCall(200, 100, 100, 1, 0.05); err != ErrArbitrage {
		t.Fatalf("price above S: err = %v", err)
	}
	if _, err := ImpliedVolCall(-1, 100, 100, 1, 0.05); err != ErrArbitrage {
		t.Fatalf("negative price: err = %v", err)
	}
}

// Property: round-trip implied vol across random moneyness.
func TestImpliedVolQuick(t *testing.T) {
	f := func(su, xu, sigU uint16) bool {
		s := 50 + float64(su%100)
		x := 50 + float64(xu%100)
		sig := 0.05 + float64(sigU%100)/100
		m := workload.MarketParams{R: 0.02, Sigma: sig}
		call, _ := PriceScalar(s, x, 1, m)
		vega := ComputeGreeks(s, x, 1, m).Vega
		if call < 1e-10 || vega < 1e-3 {
			return true // price carries no volatility information
		}
		got, err := ImpliedVolCall(call, s, x, 1, 0.02)
		tol := math.Max(1e-6, 1e-9/vega)
		return err == nil && math.Abs(got-sig) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRefScalar(b *testing.B) {
	a := genBatch(10000)
	b.SetBytes(10000 * 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RefScalar(a, mkt, nil)
	}
}

func BenchmarkBasicW8(b *testing.B) {
	a := genBatch(10000)
	b.SetBytes(10000 * 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Basic(a, mkt, 8, nil)
	}
}

func BenchmarkIntermediateW8(b *testing.B) {
	s := workload.DefaultOptionGen.GenerateSOA(10000)
	b.SetBytes(10000 * 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intermediate(s, mkt, 8, nil)
	}
}

func BenchmarkAdvancedW8(b *testing.B) {
	s := workload.DefaultOptionGen.GenerateSOA(10000)
	b.SetBytes(10000 * 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Advanced(s, mkt, 8, nil)
	}
}

// Vectorized batch greeks must match the scalar closed form.
func TestGreeksBatchMatchesScalar(t *testing.T) {
	for _, width := range []int{4, 8} {
		s := workload.DefaultOptionGen.GenerateSOA(513) // force a tail
		out := NewGreeksSOA(513)
		GreeksBatch(s, out, mkt, width, nil)
		for i := 0; i < 513; i++ {
			want := ComputeGreeks(s.S[i], s.X[i], s.T[i], mkt)
			if math.Abs(out.DeltaCall[i]-want.DeltaCall) > 1e-12 ||
				math.Abs(out.DeltaPut[i]-want.DeltaPut) > 1e-12 {
				t.Fatalf("width %d option %d: delta mismatch", width, i)
			}
			if math.Abs(out.Gamma[i]-want.Gamma) > 1e-12 {
				t.Fatalf("width %d option %d: gamma %g vs %g", width, i, out.Gamma[i], want.Gamma)
			}
			if math.Abs(out.Vega[i]-want.Vega) > 1e-9 {
				t.Fatalf("width %d option %d: vega %g vs %g", width, i, out.Vega[i], want.Vega)
			}
		}
	}
}

func TestGreeksBatchCounts(t *testing.T) {
	s := workload.DefaultOptionGen.GenerateSOA(layout.PadTo(1000, 8))
	out := NewGreeksSOA(s.Len())
	var c perf.Counts
	GreeksBatch(s, out, mkt, 8, &c)
	n := uint64(s.Len())
	if c.Get(perf.OpErf) != n || c.Get(perf.OpExp) != n {
		t.Fatalf("erf/exp = %d/%d, want %d each", c.Get(perf.OpErf), c.Get(perf.OpExp), n)
	}
	if c.Items != n {
		t.Fatalf("items = %d", c.Items)
	}
}

func BenchmarkGreeksBatchW8(b *testing.B) {
	s := workload.DefaultOptionGen.GenerateSOA(100000)
	out := NewGreeksSOA(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreeksBatch(s, out, mkt, 8, nil)
	}
}

// Operation counts must be independent of the worker count (per-worker
// counters merge additively; the work split cannot change the mix).
func TestCountsWorkerInvariant(t *testing.T) {
	s := workload.DefaultOptionGen.GenerateSOA(layout.PadTo(4096, 8))
	var c1 perf.Counts
	Intermediate(s, mkt, 8, &c1)

	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	var c4 perf.Counts
	Intermediate(s, mkt, 8, &c4)

	// Per-worker loop setup (the three invariant broadcasts) legitimately
	// scales with the worker count; everything else must match exactly.
	for op := 0; op < perf.NumOps; op++ {
		if perf.Op(op) == perf.OpVecMisc {
			d := int64(c4.N[op]) - int64(c1.N[op])
			if d < 0 || d > 64 {
				t.Fatalf("misc setup drift too large: %d vs %d", c1.N[op], c4.N[op])
			}
			continue
		}
		if c1.N[op] != c4.N[op] {
			t.Fatalf("op %v depends on worker count: %d vs %d", perf.Op(op), c1.N[op], c4.N[op])
		}
	}
	if c1.Items != c4.Items || c1.BytesRead != c4.BytesRead || c1.BytesWritten != c4.BytesWritten {
		t.Fatal("items/traffic depend on worker count")
	}
}
