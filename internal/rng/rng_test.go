package rng

import (
	"math"
	"testing"

	"finbench/internal/perf"
)

// Known-answer test: the reference mt19937ar implementation seeded with
// init_genrand(5489) produces this sequence of genrand_int32 outputs.
func TestMT19937KnownAnswerDefaultSeed(t *testing.T) {
	m := NewMT19937(5489)
	want := []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

// Known-answer test: init_by_array({0x123, 0x234, 0x345, 0x456}) is the
// published test vector of mt19937ar.c.
func TestMT19937KnownAnswerArraySeed(t *testing.T) {
	m := NewMT19937(0)
	m.SeedArray([]uint32{0x123, 0x234, 0x345, 0x456})
	want := []uint32{1067595299, 955945823, 477289528, 4107218783, 4228976476, 3344332714, 3355579695, 227628506, 810200273, 2591290167}
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, b := NewMT19937(42), NewMT19937(42)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("same-seed generators diverged at %d", i)
		}
	}
	c := NewMT19937(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint32() == c.Uint32() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds coincide too often: %d/1000", same)
	}
}

func TestUint64(t *testing.T) {
	a, b := NewMT19937(7), NewMT19937(7)
	hi := uint64(b.Uint32())
	lo := uint64(b.Uint32())
	if got := a.Uint64(); got != hi<<32|lo {
		t.Fatalf("Uint64 = %x, want %x", got, hi<<32|lo)
	}
}

func TestFloat64Range(t *testing.T) {
	m := NewMT19937(1)
	for i := 0; i < 100000; i++ {
		f := m.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64OOOpenInterval(t *testing.T) {
	m := NewMT19937(2)
	for i := 0; i < 100000; i++ {
		f := m.Float64OO()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64OO out of (0,1): %g", f)
		}
	}
}

func TestSkipMatchesDiscard(t *testing.T) {
	a, b := NewMT19937(11), NewMT19937(11)
	a.Skip(1234)
	for i := 0; i < 1234; i++ {
		b.Uint32()
	}
	for i := 0; i < 100; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("Skip diverged from discard at %d", i)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	s := NewStream(0, 12345)
	const n = 200000
	buf := make([]float64, n)
	s.Uniform(buf)
	var mean, m2 float64
	for _, x := range buf {
		mean += x
	}
	mean /= n
	for _, x := range buf {
		m2 += (x - mean) * (x - mean)
	}
	m2 /= n
	if math.Abs(mean-0.5) > 0.003 {
		t.Fatalf("uniform mean = %g", mean)
	}
	if math.Abs(m2-1.0/12) > 0.002 {
		t.Fatalf("uniform variance = %g, want %g", m2, 1.0/12)
	}
}

func TestUniformBuckets(t *testing.T) {
	s := NewStream(3, 999)
	const n = 100000
	buf := make([]float64, n)
	s.Uniform(buf)
	var buckets [10]int
	for _, x := range buf {
		buckets[int(x*10)]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Fatalf("bucket %d count %d deviates too far from %d", i, c, n/10)
		}
	}
}

func normalMoments(t *testing.T, method Method, n int) (mean, variance, skew, kurt float64) {
	t.Helper()
	s := NewStream(1, 777)
	buf := make([]float64, n)
	s.Normal(buf, method)
	for _, x := range buf {
		mean += x
	}
	mean /= float64(n)
	var m2, m3, m4 float64
	for _, x := range buf {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= float64(n)
	m3 /= float64(n)
	m4 /= float64(n)
	return mean, m2, m3 / math.Pow(m2, 1.5), m4 / (m2 * m2)
}

func TestNormalMomentsAllMethods(t *testing.T) {
	for _, method := range []Method{ICDF, BoxMuller, BoxMuller2, ZigguratMethod} {
		mean, v, skew, kurt := normalMoments(t, method, 400000)
		if math.Abs(mean) > 0.01 {
			t.Errorf("%v: mean = %g", method, mean)
		}
		if math.Abs(v-1) > 0.02 {
			t.Errorf("%v: variance = %g", method, v)
		}
		if math.Abs(skew) > 0.03 {
			t.Errorf("%v: skewness = %g", method, skew)
		}
		if math.Abs(kurt-3) > 0.12 {
			t.Errorf("%v: kurtosis = %g", method, kurt)
		}
	}
}

// The ICDF method must reproduce the empirical CDF: check a few quantiles.
func TestNormalICDFQuantiles(t *testing.T) {
	s := NewStream(2, 31415)
	const n = 200000
	buf := make([]float64, n)
	s.NormalICDF(buf)
	for _, q := range []struct{ z, p float64 }{{-1.959963984540054, 0.025}, {0, 0.5}, {1.2815515655446004, 0.9}} {
		cnt := 0
		for _, x := range buf {
			if x <= q.z {
				cnt++
			}
		}
		got := float64(cnt) / n
		if math.Abs(got-q.p) > 0.005 {
			t.Errorf("P(Z <= %g) = %g, want %g", q.z, got, q.p)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	// Distinct stream ids with the same seed must be decorrelated.
	a := NewStream(0, 5)
	b := NewStream(1, 5)
	const n = 100000
	x := make([]float64, n)
	y := make([]float64, n)
	a.Uniform(x)
	b.Uniform(y)
	var sxy, sx, sy float64
	for i := range x {
		sx += x[i] - 0.5
		sy += y[i] - 0.5
		sxy += (x[i] - 0.5) * (y[i] - 0.5)
	}
	corr := (sxy/n - (sx/n)*(sy/n)) / (1.0 / 12)
	if math.Abs(corr) > 0.02 {
		t.Fatalf("cross-stream correlation = %g", corr)
	}
}

func TestStreamDeterministicById(t *testing.T) {
	a := NewStream(7, 100)
	b := NewStream(7, 100)
	x := make([]float64, 64)
	y := make([]float64, 64)
	a.Uniform(x)
	b.Uniform(y)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("same (id, seed) stream not reproducible")
		}
	}
}

func TestStreamCounting(t *testing.T) {
	var c perf.Counts
	s := NewStream(0, 1)
	s.C = &c
	buf := make([]float64, 100)
	s.Uniform(buf)
	if c.Get(perf.OpRNG) != 100 {
		t.Fatalf("uniform OpRNG = %d, want 100", c.Get(perf.OpRNG))
	}
	s.NormalICDF(buf)
	if c.Get(perf.OpRNG) != 200 || c.Get(perf.OpInvCND) != 100 {
		t.Fatalf("icdf counts = rng %d invcnd %d", c.Get(perf.OpRNG), c.Get(perf.OpInvCND))
	}
}

func TestMethodString(t *testing.T) {
	if ICDF.String() != "icdf" || ZigguratMethod.String() != "ziggurat" {
		t.Fatal("Method.String wrong")
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method String empty")
	}
}

func TestNormalUnknownMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normal with unknown method did not panic")
		}
	}()
	NewStream(0, 1).Normal(make([]float64, 1), Method(99))
}

// Ziggurat table invariants: x strictly decreasing past the pseudo-layer,
// equal strip areas, and consistent acceptance ratios.
func TestZigguratTables(t *testing.T) {
	if zigX[1] != 3.442619855899 {
		t.Fatalf("zigX[1] = %g, want r", zigX[1])
	}
	if zigX[0] <= zigX[1] {
		t.Fatalf("pseudo width q = %g not > r", zigX[0])
	}
	for i := 2; i <= zigLayers; i++ {
		if zigX[i] >= zigX[i-1] {
			t.Fatalf("zigX not decreasing at %d: %g >= %g", i, zigX[i], zigX[i-1])
		}
	}
	// Strip areas: x[i]*(f(x[i+1])-f(x[i])) == v for interior layers.
	const v = 9.91256303526217e-3
	for i := 1; i < zigLayers; i++ {
		area := zigX[i] * (zigY[i+1] - zigY[i])
		if math.Abs(area-v) > 1e-9 {
			t.Fatalf("layer %d area = %g, want %g", i, area, v)
		}
	}
	// zigR[127] is exactly 0 (the innermost layer always takes the wedge
	// test); all others must be proper acceptance ratios.
	for i := 0; i < zigLayers-1; i++ {
		if zigR[i] <= 0 || zigR[i] >= 1 {
			t.Fatalf("zigR[%d] = %g out of (0,1)", i, zigR[i])
		}
	}
	if zigR[zigLayers-1] != 0 {
		t.Fatalf("zigR[last] = %g, want 0", zigR[zigLayers-1])
	}
}

func TestNewStreamMT(t *testing.T) {
	mt := NewMT19937(5489)
	s := NewStreamMT(mt)
	if got := s.Uint32(); got != 3499211612 {
		t.Fatalf("wrapped stream first draw = %d", got)
	}
}

func BenchmarkUniform(b *testing.B) {
	s := NewStream(0, 1)
	buf := make([]float64, 1024)
	b.SetBytes(1024 * 8)
	for i := 0; i < b.N; i++ {
		s.Uniform(buf)
	}
}

func BenchmarkNormalICDF(b *testing.B) {
	s := NewStream(0, 1)
	buf := make([]float64, 1024)
	b.SetBytes(1024 * 8)
	for i := 0; i < b.N; i++ {
		s.NormalICDF(buf)
	}
}

func BenchmarkNormalZiggurat(b *testing.B) {
	s := NewStream(0, 1)
	buf := make([]float64, 1024)
	b.SetBytes(1024 * 8)
	for i := 0; i < b.N; i++ {
		s.NormalZiggurat(buf)
	}
}

func BenchmarkNormalBoxMuller(b *testing.B) {
	s := NewStream(0, 1)
	buf := make([]float64, 1024)
	b.SetBytes(1024 * 8)
	for i := 0; i < b.N; i++ {
		s.NormalBoxMuller(buf)
	}
}
