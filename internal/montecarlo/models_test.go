package montecarlo

import (
	"math"
	"testing"

	"finbench/internal/blackscholes"
	"finbench/internal/rng"
	"finbench/internal/workload"
)

var jp = JumpParams{Lambda: 0.5, Mu: -0.1, Delta: 0.15}

// The Merton series with Lambda = 0 must equal plain Black-Scholes.
func TestMertonReducesToBS(t *testing.T) {
	want, _ := blackscholes.PriceScalar(100, 105, 1, mkt)
	got, err := MertonCallClosedForm(100, 105, 1, JumpParams{}, mkt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("Lambda=0 Merton %g vs BS %g", got, want)
	}
}

// Closed form vs Monte Carlo: two independent implementations of the same
// model must agree within the MC confidence interval.
func TestMertonMCMatchesClosedForm(t *testing.T) {
	want, err := MertonCallClosedForm(100, 100, 1, jp, mkt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MertonCallMC(100, 100, 1, jp, 1<<17, 9, mkt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Price-want) > 4*got.StdErr+0.01 {
		t.Fatalf("Merton MC %g +- %g vs closed form %g", got.Price, got.StdErr, want)
	}
}

// Jump risk is priced: the jump-diffusion call exceeds the BS call for
// symmetric-ish jumps (extra kurtosis raises OTM option value).
func TestMertonJumpPremium(t *testing.T) {
	bs, _ := blackscholes.PriceScalar(100, 120, 1, mkt)
	jump, _ := MertonCallClosedForm(100, 120, 1, JumpParams{Lambda: 1, Mu: 0, Delta: 0.2}, mkt)
	if jump <= bs {
		t.Fatalf("OTM jump call %g not above BS %g", jump, bs)
	}
}

func TestMertonValidation(t *testing.T) {
	if _, err := MertonCallClosedForm(100, 100, 1, JumpParams{Lambda: -1}, mkt); err != ErrJump {
		t.Fatal("negative lambda accepted")
	}
	if _, err := MertonCallMC(100, 100, 1, JumpParams{Delta: -1}, 10, 1, mkt); err != ErrJump {
		t.Fatal("negative delta accepted")
	}
}

func TestPoissonDraw(t *testing.T) {
	stream := rng.NewStream(0, 3)
	const n = 50000
	lambda := 1.7
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		k := float64(poissonDraw(stream, lambda))
		sum += k
		sum2 += k * k
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-lambda) > 0.03 {
		t.Fatalf("Poisson mean %g, want %g", mean, lambda)
	}
	if math.Abs(variance-lambda) > 0.06 {
		t.Fatalf("Poisson variance %g, want %g", variance, lambda)
	}
	if poissonDraw(stream, 0) != 0 {
		t.Fatal("lambda=0 should give 0 jumps")
	}
}

// Heston with SigmaV = 0 has a deterministic variance path: the price must
// match Black-Scholes at the time-averaged volatility.
func TestHestonDeterministicLimit(t *testing.T) {
	hp := HestonParams{V0: 0.09, Kappa: 2, ThetaV: 0.04, SigmaV: 0, Rho: 0}
	effVol := HestonEffectiveVol(hp, 1)
	want, _ := blackscholes.PriceScalar(100, 100, 1,
		mktWithVol(effVol))
	got, err := HestonCallMC(100, 100, 1, hp, 1<<16, 64, 5, mkt)
	if err != nil {
		t.Fatal(err)
	}
	// Euler discretization of the drift adds O(dt) bias on top of MC noise.
	if math.Abs(got.Price-want) > 4*got.StdErr+0.05 {
		t.Fatalf("Heston sigmaV=0 %g +- %g vs BS(effvol) %g", got.Price, got.StdErr, want)
	}
}

func mktWithVol(v float64) workload.MarketParams {
	m := mkt
	m.Sigma = v
	return m
}

// Negative correlation produces the equity skew: OTM puts gain value, OTM
// calls lose it, relative to the symmetric case.
func TestHestonSkewDirection(t *testing.T) {
	base := HestonParams{V0: 0.04, Kappa: 1.5, ThetaV: 0.04, SigmaV: 0.5}
	neg := base
	neg.Rho = -0.7
	pos := base
	pos.Rho = +0.7
	callNeg, err := HestonCallMC(100, 120, 1, neg, 1<<16, 64, 7, mkt)
	if err != nil {
		t.Fatal(err)
	}
	callPos, err := HestonCallMC(100, 120, 1, pos, 1<<16, 64, 7, mkt)
	if err != nil {
		t.Fatal(err)
	}
	if callNeg.Price >= callPos.Price {
		t.Fatalf("OTM call: rho=-0.7 %g not below rho=+0.7 %g", callNeg.Price, callPos.Price)
	}
}

// Martingale check: the discounted terminal asset mean equals spot (ATM
// forward prices consistent).
func TestHestonMartingale(t *testing.T) {
	hp := HestonParams{V0: 0.04, Kappa: 2, ThetaV: 0.05, SigmaV: 0.3, Rho: -0.5}
	if !hp.FellerSatisfied() {
		t.Fatal("test parameters should satisfy Feller")
	}
	// Deep ITM call ~ forward - strike: C ~ S - K e^{-rT} for K tiny.
	got, err := HestonCallMC(100, 1, 1, hp, 1<<16, 64, 11, mkt)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 - 1*math.Exp(-mkt.R)
	if math.Abs(got.Price-want) > 4*got.StdErr+0.1 {
		t.Fatalf("deep ITM Heston %g +- %g vs forward parity %g", got.Price, got.StdErr, want)
	}
}

func TestHestonValidation(t *testing.T) {
	if _, err := HestonCallMC(100, 100, 1, HestonParams{Rho: 2}, 10, 4, 1, mkt); err != ErrHeston {
		t.Fatal("rho > 1 accepted")
	}
	if _, err := HestonCallMC(100, 100, 1, HestonParams{V0: -1}, 10, 4, 1, mkt); err != ErrHeston {
		t.Fatal("negative V0 accepted")
	}
	if _, err := HestonCallMC(100, 100, 1, HestonParams{}, 0, 4, 1, mkt); err == nil {
		t.Fatal("zero paths accepted")
	}
	if !((HestonParams{Kappa: 2, ThetaV: 0.04, SigmaV: 0.3}).FellerSatisfied()) {
		t.Fatal("Feller check wrong")
	}
	if (HestonParams{Kappa: 0.1, ThetaV: 0.01, SigmaV: 1}).FellerSatisfied() {
		t.Fatal("Feller should fail")
	}
}

func TestHestonEffectiveVolKappaZero(t *testing.T) {
	hp := HestonParams{V0: 0.09}
	if math.Abs(HestonEffectiveVol(hp, 2)-0.3) > 1e-12 {
		t.Fatal("kappa=0 effective vol should be sqrt(V0)")
	}
}

func BenchmarkHestonMC(b *testing.B) {
	hp := HestonParams{V0: 0.04, Kappa: 2, ThetaV: 0.05, SigmaV: 0.3, Rho: -0.5}
	for i := 0; i < b.N; i++ {
		HestonCallMC(100, 100, 1, hp, 4096, 32, 1, mkt)
	}
}

func BenchmarkMertonMC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MertonCallMC(100, 100, 1, jp, 1<<14, 1, mkt)
	}
}
