package deadline

import (
	"context"
	"testing"
	"time"
)

func TestExpiresAtDeadline(t *testing.T) {
	d := Acquire(context.Background(), time.Now().Add(20*time.Millisecond))
	defer d.Release()
	if d.Expired() {
		t.Fatal("expired immediately")
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err before deadline = %v", err)
	}
	select {
	case <-d.Done():
	case <-time.After(time.Second):
		t.Fatal("Done never closed")
	}
	if !d.Expired() {
		t.Fatal("not expired after the deadline fired")
	}
	if err := d.Err(); err != context.DeadlineExceeded {
		t.Fatalf("Err after deadline = %v, want DeadlineExceeded", err)
	}
}

// TestExpiredConsultsWallClock: Expired must report true once the
// deadline has passed even if the timer goroutine has not run yet —
// the repricing loop polls it between chunks on a busy runtime.
func TestExpiredConsultsWallClock(t *testing.T) {
	d := Acquire(context.Background(), time.Now().Add(-time.Millisecond))
	defer d.Release()
	if !d.Expired() {
		t.Fatal("past deadline not reported expired")
	}
}

func TestParentCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d := Acquire(ctx, time.Now().Add(time.Hour))
	defer d.Release()
	cancel()
	select {
	case <-d.Done():
	case <-time.After(time.Second):
		t.Fatal("parent cancellation never propagated")
	}
	if err := d.Err(); err != context.Canceled {
		t.Fatalf("Err = %v, want Canceled", err)
	}
}

func TestAlreadyCancelledParent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := Acquire(ctx, time.Now().Add(time.Hour))
	defer d.Release()
	// Synchronous fire: the first Err check must already observe it.
	if d.Err() != context.Canceled {
		t.Fatalf("Err = %v, want Canceled immediately", d.Err())
	}
}

// TestReleaseReuseIsClean: a released-unfired Ctx that the pool hands
// back must behave like a fresh one (no stale done channel, deadline,
// or parent).
func TestReleaseReuseIsClean(t *testing.T) {
	for i := 0; i < 100; i++ {
		d := Acquire(context.Background(), time.Now().Add(time.Hour))
		if d.Expired() || d.Err() != nil {
			t.Fatalf("iteration %d: reused Ctx born expired", i)
		}
		if dl, ok := d.Deadline(); !ok || time.Until(dl) < 30*time.Minute {
			t.Fatalf("iteration %d: stale deadline %v", i, dl)
		}
		d.Release()
	}
}

func TestValueDelegatesToParent(t *testing.T) {
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	d := Acquire(ctx, time.Now().Add(time.Hour))
	defer d.Release()
	if d.Value(key{}) != "v" {
		t.Fatal("Value not delegated to parent")
	}
}
