// Package resilience holds the stdlib-only fault-tolerance primitives the
// sharded serving tier is built from: jittered exponential backoff with a
// global retry budget, a per-replica circuit breaker (closed / open /
// half-open with bounded probe admission), and hedged requests for tail
// latency (first success wins, the loser is cancelled through its
// context).
//
// Everything here is policy-free about *what* may be retried — that
// decision belongs to the caller. The serving tier's rule, inherited from
// the PR 4 bit-reproducibility invariant, is that only methods whose 200
// responses are bit-reproducible independent of execution placement
// (closed form, the lattice methods, greeks) are ever retried or hedged;
// Monte Carlo results depend on the batch decomposition, so the router
// gives them exactly one attempt.
//
// Determinism matters even here: Backoff jitter is derived from an
// explicit seed and the attempt counter (splitmix64), never from the
// global math/rand source, so a chaos run replays with identical retry
// timing for an identical failure sequence.
//
// finlint:hot — retry/hedge wrap every routed request; their loops must
// not allocate per attempt.
package resilience

import (
	"context"
	"errors"
	"sync"
	"time"
)

// splitmix64 is the seed/attempt mixer behind Backoff jitter: a tiny,
// stateless, well-distributed hash so Delay(attempt) is a pure function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Backoff computes per-attempt retry delays: Base doubling (Factor) up to
// Max, with a deterministic ±Jitter/2 fraction derived from Seed and the
// attempt number. The zero value selects the defaults.
type Backoff struct {
	// Base is the delay before the first retry (default 2ms).
	Base time.Duration
	// Max caps the delay (default 100ms).
	Max time.Duration
	// Factor multiplies the delay each attempt (default 2).
	Factor float64
	// Jitter is the fraction of the delay that is randomized, centered:
	// delay * [1-Jitter/2, 1+Jitter/2). Default 0.5; negative disables.
	Jitter float64
	// Seed drives the deterministic jitter stream.
	Seed uint64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 2 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 100 * time.Millisecond
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	// finlint:ignore floateq zero is the unset-field sentinel, never computed
	if b.Jitter == 0 {
		b.Jitter = 0.5
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	return b
}

// Delay returns the wait before retry number attempt (attempt 0 is the
// first retry). It is a pure function of the policy: equal (Seed, attempt)
// always yields an equal delay.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		h := splitmix64(b.Seed ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
		frac := float64(h>>11) / float64(1<<53) // [0,1)
		d *= 1 - b.Jitter/2 + b.Jitter*frac
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Budget is a global retry budget in the classic earn/spend form: every
// first attempt earns Ratio tokens (capped at Cap) and every retry spends
// one. When the budget is dry retries are denied, which keeps a brown-out
// from amplifying load by the retry factor. A nil *Budget allows every
// retry.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	cap    float64

	spent  uint64
	denied uint64
}

// NewBudget builds a budget earning ratio tokens per request, capped at
// cap tokens (ratio 0.2, cap 50 when non-positive). The budget starts
// full so cold-start failures can still be retried.
func NewBudget(ratio, cap float64) *Budget {
	if ratio <= 0 {
		ratio = 0.2
	}
	if cap <= 0 {
		cap = 50
	}
	return &Budget{tokens: cap, ratio: ratio, cap: cap}
}

// OnAttempt credits the budget for one first attempt.
func (b *Budget) OnAttempt() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

// TryRetry spends one token; it reports false (and counts a denial) when
// the budget is dry.
func (b *Budget) TryRetry() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.spent++
	return true
}

// Counters returns (retries granted, retries denied) so far.
func (b *Budget) Counters() (spent, denied uint64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent, b.denied
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry stops immediately and returns the
// underlying error — the caller's way of saying "the operation executed
// (or can never succeed); another attempt would duplicate or waste work".
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	_, ok := permanentTarget(err)
	return ok
}

// permanentTarget unwraps the Permanent marker, returning the underlying
// error. Interface-in/interface-out so hot retry loops can call it without
// boxing.
func permanentTarget(err error) (error, bool) {
	var pe *permanentError
	if errors.As(err, &pe) {
		return pe.err, true
	}
	return nil, false
}

// Retry runs op until it succeeds, waiting b.Delay between attempts, for
// at most maxAttempts total attempts (minimum 1). It stops early on a
// Permanent error, on ctx expiry, or when budget denies a retry; the
// error returned is the last attempt's (unwrapped if Permanent), or the
// ctx error when the deadline cut the wait. The closure receives the
// attempt index (0-based) and a ctx it must honor.
//
// op runs sequentially — attempt n+1 starts only after attempt n returned
// — but callers routinely share state between op and their own goroutines
// (health checkers, stats), so closures must still be data-race clean.
func Retry(ctx context.Context, maxAttempts int, b Backoff, budget *Budget, op func(ctx context.Context, attempt int) error) error {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var err error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt == 0 {
			budget.OnAttempt()
		} else if !budget.TryRetry() {
			return err // budget dry: surface the previous failure
		}
		err = op(ctx, attempt)
		if err == nil {
			return nil
		}
		if under, ok := permanentTarget(err); ok {
			return under
		}
		if attempt == maxAttempts-1 {
			return err
		}
		timer.Reset(b.Delay(attempt))
		select {
		case <-ctx.Done():
			if !timer.Stop() {
				<-timer.C
			}
			return ctx.Err()
		case <-timer.C:
		}
	}
	return err
}
