package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"finbench/internal/serve/wire"
)

// The hot-path contract: after warm-up, a /price or /greeks request
// allocates nothing on the server side. The harness below reuses the
// request, body reader, and recorder so only the handler's own
// allocations are counted (the old bench harness charged a fresh
// httptest.NewRequest and bytes.Reader per call to the server).

// replayBody is a rewindable io.ReadCloser over a fixed byte slice.
type replayBody struct {
	b []byte
	i int
}

func (r *replayBody) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

func (r *replayBody) Close() error { return nil }
func (r *replayBody) rewind()      { r.i = 0 }

// nullRecorder is a reusable http.ResponseWriter that drops the body.
type nullRecorder struct {
	header http.Header
	code   int
}

func (r *nullRecorder) Header() http.Header         { return r.header }
func (r *nullRecorder) Write(p []byte) (int, error) { return len(p), nil }
func (r *nullRecorder) WriteHeader(c int)           { r.code = c }

// allocsPerRequest drives the handler in-process with a fully reused
// harness and returns the steady-state allocations per request.
func allocsPerRequest(t *testing.T, h http.Handler, path, contentType string, body []byte) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rb := &replayBody{b: body}
	req := httptest.NewRequest(http.MethodPost, path, rb)
	req.Header.Set("Content-Type", contentType)
	rec := &nullRecorder{header: make(http.Header)}
	call := func() {
		rb.rewind()
		rec.code = 0
		h.ServeHTTP(rec, req)
	}
	for i := 0; i < 8; i++ { // warm every pool on the path
		call()
		if rec.code != http.StatusOK {
			t.Fatalf("%s returned status %d during warm-up", path, rec.code)
		}
	}
	return testing.AllocsPerRun(200, call)
}

// onePriceBody returns a single-option closed-form /price body. One
// option keeps the kernel on its serial path (no fork-join dispatch), so
// the measurement isolates the handler's own decode->price->encode work.
func onePriceBody() []byte {
	return []byte(`{"method":"closed-form","options":[{"type":"call","spot":100,"strike":105,"expiry":0.5}]}`)
}

func TestPriceHandlerAllocsSteadyState(t *testing.T) {
	s := New(Config{CoalesceMaxBatch: 1, ProfileEvery: -1})
	defer s.Close()
	if got := allocsPerRequest(t, s.Handler(), "/price", "application/json", onePriceBody()); got != 0 {
		t.Errorf("/price JSON steady state: %.2f allocs/request, want 0", got)
	}
}

func TestPriceHandlerAllocsColumnarSteadyState(t *testing.T) {
	s := New(Config{CoalesceMaxBatch: 1, ProfileEvery: -1})
	defer s.Close()
	frame := wire.AppendColumnarRequest(nil, &wire.PriceRequest{Columnar: &wire.Columns{
		Spots:    []float64{100},
		Strikes:  []float64{105},
		Expiries: []float64{0.5},
	}})
	if got := allocsPerRequest(t, s.Handler(), "/price", wire.ColumnarContentType, frame); got != 0 {
		t.Errorf("/price columnar steady state: %.2f allocs/request, want 0", got)
	}
}

func TestGreeksHandlerAllocsSteadyState(t *testing.T) {
	s := New(Config{ProfileEvery: -1})
	defer s.Close()
	body := []byte(`{"options":[{"type":"put","spot":100,"strike":105,"expiry":0.5}]}`)
	if got := allocsPerRequest(t, s.Handler(), "/greeks", "application/json", body); got != 0 {
		t.Errorf("/greeks steady state: %.2f allocs/request, want 0", got)
	}
}

// TestGreeksDeadlineCancelledClient pins the satellite fix: /greeks must
// honor its deadline context. A request arriving with an already-
// cancelled client context answers 408 instead of grinding through the
// whole batch (the old handler never consulted any deadline).
func TestGreeksDeadlineCancelledClient(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/greeks",
		strings.NewReader(`{"options":[{"spot":100,"strike":100,"expiry":1}]}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408; body %s", rec.Code, rec.Body.Bytes())
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("deadline")) {
		t.Errorf("408 body does not mention the deadline: %s", rec.Body.Bytes())
	}
}

func TestGreeksRejectsNegativeDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/greeks", &GreeksRequest{
		DeadlineMS: -5,
		Options:    []WireOption{{Spot: 100, Strike: 100, Expiry: 1}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("deadline_ms")) {
		t.Errorf("400 body does not name deadline_ms: %s", body)
	}
}

// TestGreeksDeadlineCappedByServerMax proves the client deadline is
// capped by MaxDeadline: under a 1ns server maximum even a generous
// deadline_ms times out. The per-option check consults the wall clock,
// so the expired deadline is observed deterministically.
func TestGreeksDeadlineCappedByServerMax(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDeadline: time.Nanosecond})
	resp, body := postJSON(t, ts.URL+"/greeks", &GreeksRequest{
		DeadlineMS: 60000,
		Options:    []WireOption{{Spot: 100, Strike: 100, Expiry: 1}},
	})
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408; body %s", resp.StatusCode, body)
	}
}

// columnarTestContracts is a small mixed call/put batch used by the
// bit-identity tests below.
var columnarTestContracts = struct {
	spots, strikes, expiries []float64
	types                    string
}{
	spots:    []float64{100, 90, 120, 75.5},
	strikes:  []float64{105, 100, 100, 80},
	expiries: []float64{0.5, 1.25, 2, 0.75},
	types:    "cpcp",
}

func columnarAOSRequest() *PriceRequest {
	c := columnarTestContracts
	req := &PriceRequest{}
	for i := range c.spots {
		typ := "call"
		if c.types[i] == 'p' {
			typ = "put"
		}
		req.Options = append(req.Options, WireOption{
			Type: typ, Spot: c.spots[i], Strike: c.strikes[i], Expiry: c.expiries[i],
		})
	}
	return req
}

func columnarColumns() *wire.Columns {
	c := columnarTestContracts
	return &wire.Columns{
		Spots: c.spots, Strikes: c.strikes, Expiries: c.expiries, Types: c.types,
	}
}

// TestPriceColumnarBitIdenticalToJSON is the core columnar guarantee:
// the same contracts priced through AOS JSON, JSON-framed columns, and
// the binary frame produce bit-identical prices, on both the coalesced
// and the bypass path (composition independence makes them one case).
func TestPriceColumnarBitIdenticalToJSON(t *testing.T) {
	for _, tc := range []struct {
		name     string
		maxBatch int
	}{
		{"coalesced", 0}, // default CoalesceMaxBatch; 4 options coalesce
		{"bypass", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, ts := newTestServer(t, Config{CoalesceMaxBatch: tc.maxBatch})

			jsonResp, jsonBody := postJSON(t, ts.URL+"/price", columnarAOSRequest())
			if jsonResp.StatusCode != 200 {
				t.Fatalf("JSON AOS status %d: %s", jsonResp.StatusCode, jsonBody)
			}
			want := decodePrice(t, jsonBody)

			// JSON-framed columnar.
			colResp, colBody := postJSON(t, ts.URL+"/price",
				&PriceRequest{Columnar: columnarColumns()})
			if colResp.StatusCode != 200 {
				t.Fatalf("JSON columnar status %d: %s", colResp.StatusCode, colBody)
			}
			got := decodePrice(t, colBody)
			if len(got.Results) != len(want.Results) {
				t.Fatalf("columnar returned %d results, want %d", len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				if got.Results[i].Price != want.Results[i].Price {
					t.Errorf("option %d: columnar price %v != JSON price %v",
						i, got.Results[i].Price, want.Results[i].Price)
				}
			}

			// Binary frame.
			frame := wire.AppendColumnarRequest(nil, &wire.PriceRequest{Columnar: columnarColumns()})
			resp, err := http.Post(ts.URL+"/price", wire.ColumnarContentType, bytes.NewReader(frame))
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("binary columnar status %d: %s", resp.StatusCode, raw)
			}
			if ct := resp.Header.Get("Content-Type"); ct != wire.ColumnarContentType {
				t.Errorf("binary response Content-Type %q, want %q", ct, wire.ColumnarContentType)
			}
			bin, err := wire.DecodeColumnarResponse(raw)
			if err != nil {
				t.Fatalf("decoding binary response: %v", err)
			}
			if bin.Method != want.Method || bin.Engine != want.Engine {
				t.Errorf("binary method/engine %q/%q, want %q/%q",
					bin.Method, bin.Engine, want.Method, want.Engine)
			}
			if len(bin.Results) != len(want.Results) {
				t.Fatalf("binary returned %d results, want %d", len(bin.Results), len(want.Results))
			}
			for i := range want.Results {
				if bin.Results[i].Price != want.Results[i].Price {
					t.Errorf("option %d: binary price %v != JSON price %v",
						i, bin.Results[i].Price, want.Results[i].Price)
				}
			}

			// The columnar request counter saw both framings.
			if n := s.statszSnapshot().Requests["price_columnar"]; n != 2 {
				t.Errorf("price_columnar = %d, want 2", n)
			}
		})
	}
}

func TestPriceColumnarRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postRaw := func(contentType string, body []byte) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/price", contentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(raw)
	}

	// American exercise in the binary frame: columnar is closed-form only.
	american := wire.AppendColumnarRequest(nil, &wire.PriceRequest{Columnar: &wire.Columns{
		Spots: []float64{100}, Strikes: []float64{105}, Expiries: []float64{1}, Styles: "a",
	}})
	if code, body := postRaw(wire.ColumnarContentType, american); code != 400 {
		t.Errorf("american binary frame: status %d (%s), want 400", code, body)
	}

	// Non-closed-form method with JSON-framed columns.
	if code, body := postRaw("application/json",
		[]byte(`{"method":"monte-carlo","columnar":{"spot":[100],"strike":[105],"expiry":[1]}}`)); code != 400 {
		t.Errorf("monte-carlo columnar: status %d (%s), want 400", code, body)
	}

	// Both framings at once.
	if code, body := postRaw("application/json",
		[]byte(`{"options":[{"spot":100,"strike":105,"expiry":1}],"columnar":{"spot":[100],"strike":[105],"expiry":[1]}}`)); code != 400 {
		t.Errorf("options+columnar: status %d (%s), want 400", code, body)
	}

	// Truncated binary frame (length must match the declared count).
	full := wire.AppendColumnarRequest(nil, &wire.PriceRequest{Columnar: columnarColumns()})
	if code, body := postRaw(wire.ColumnarContentType, full[:len(full)-3]); code != 400 {
		t.Errorf("truncated frame: status %d (%s), want 400", code, body)
	}

	// Binary content type with a JSON body.
	if code, body := postRaw(wire.ColumnarContentType,
		[]byte(`{"options":[{"spot":100,"strike":105,"expiry":1}]}`)); code != 400 {
		t.Errorf("JSON body under binary content type: status %d (%s), want 400", code, body)
	}
}
