// Package bench is the experiment harness: one entry per table or figure
// of the paper's evaluation (Sec. IV), each able to regenerate its rows.
//
// Every experiment runs in two modes:
//
//   - Model: the kernels execute instrumented (internal/vec counting) at
//     each optimization level and SIMD width, and internal/machine converts
//     the measured operation mixes into predicted throughput for SNB-EP and
//     KNC. These numbers are compared against the paper's, row by row;
//     EXPERIMENTS.md records the comparison. Matching target is shape —
//     orderings, ratios, and roofline proximity — not absolute cycles.
//   - Measure: the same kernels execute uninstrumented on the host and are
//     wall-clock timed, demonstrating that the optimization ladder (SOA
//     over AOS, tiling, RNG interleaving, wavefront SIMD) also holds
//     natively in Go.
//
// Paper reference values carry a provenance tag: values printed in the
// paper's text or tables are exact; bar heights only shown in figures are
// derived from the paper's stated ratios and bounds (see paper.go).
package bench

import (
	"fmt"
	"sort"
	"strings"

	"finbench/internal/benchreg"
	"finbench/internal/perf"
)

// MachineCol identifies a throughput column.
const (
	ColSNB = "SNB-EP"
	ColKNC = "KNC"
)

// Provenance describes how a paper reference value was obtained.
type Provenance int

const (
	// Stated: printed as a number in the paper's text or tables.
	Stated Provenance = iota
	// Derived: computed from ratios/bounds the paper states.
	Derived
	// None: the paper gives no usable value for this cell.
	None
)

// String renders the provenance tag used in tables.
func (p Provenance) String() string {
	switch p {
	case Stated:
		return "stated"
	case Derived:
		return "derived"
	default:
		return "-"
	}
}

// Row is one bar/line of an experiment: an optimization level (or table
// row) with paper and modelled throughput per machine.
type Row struct {
	Label string
	// Paper and Model map machine name to items/second.
	Paper map[string]float64
	Model map[string]float64
	// Prov tags the paper values' provenance.
	Prov Provenance
	// Host holds the measured wall-clock throughput (Measure mode only):
	// the median across HostReps timed repetitions, with HostMAD its
	// median absolute deviation (see internal/benchreg).
	Host    float64
	HostMAD float64
	// HostReps is the repetition count behind Host; 0 on model-only rows.
	HostReps int
	// HostItems is the work-item count per kernel invocation.
	HostItems int
	// HostAllocs is the median heap allocations per kernel invocation.
	HostAllocs float64
	// GateAllocs marks rows whose allocs/op is a per-request budget the
	// snapshot gate enforces (serve-path rows: one invocation = one
	// request).
	GateAllocs bool
}

// Result is a regenerated table/figure.
type Result struct {
	ID    string
	Title string
	// Units of the throughput numbers (e.g. "options/s").
	Units string
	// Cols names the value columns; empty means the default machine pair
	// {SNB-EP, KNC}. Ablations use custom columns (e.g. MC vs QMC).
	Cols []string
	Rows []Row
	// Bounds optionally holds the roofline bound per machine (the
	// "Bandwidth-bound"/"Compute-bound" line in the paper's charts).
	Bounds map[string]float64
	Notes  []string
}

// Experiment is one regenerable artifact of the paper.
type Experiment struct {
	ID          string
	Title       string
	Units       string
	Description string
	// Model regenerates the paper comparison; scale (0,1] shrinks the
	// workload for quick runs (1 = full experiment size). Nil for
	// host-only experiments (servepath) with no paper column to model.
	Model func(scale float64) (*Result, error)
	// Measure times the kernels on the host; nil when not applicable.
	Measure func(scale float64) (*Result, error)
	// Mix profiles the experiment's best-optimized kernel instrumented at
	// width 8 and returns its dynamic op mix, for recording alongside
	// throughput in benchreg snapshots; nil when not applicable.
	Mix func(scale float64) (perf.Counts, error)
}

var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// Experiments lists all registered experiments in paper order.
func Experiments() []*Experiment {
	out := make([]*Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

func order(id string) int {
	for i, k := range []string{"tab1", "fig4", "fig5", "fig6", "tab2", "fig8", "ninja",
		"ablate-tile", "ablate-rng", "ablate-qmc", "ablate-width", "servepath",
		"scenario", "streampath"} {
		if id == k {
			return i
		}
	}
	return 100
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range registry {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// human renders a throughput in engineering units.
func human(v float64) string {
	switch {
	case v == 0: // finlint:ignore floateq exact zero is the "absent" sentinel, never computed
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gK", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Table renders the result as an aligned text table comparing paper and
// model values (and host throughput when present).
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [%s]\n", r.ID, r.Title, r.Units)
	hasHost := false
	for _, row := range r.Rows {
		if row.Host != 0 { // finlint:ignore floateq exact zero is the "absent" sentinel, never computed
			hasHost = true
		}
	}
	if hasHost {
		fmt.Fprintf(&b, "%-42s %12s %12s %5s\n", "level", "host", "±mad", "reps")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%-42s %12s %12s %5d\n", row.Label, human(row.Host), human(row.HostMAD), row.HostReps)
		}
		return b.String()
	}
	cols := r.Cols
	if len(cols) == 0 {
		cols = []string{ColSNB, ColKNC}
	}
	fmt.Fprintf(&b, "%-42s", "level")
	for _, col := range cols {
		fmt.Fprintf(&b, " %10s %10s %7s", col+":paper", col+":model", "ratio")
	}
	fmt.Fprintf(&b, " %9s\n", "prov")
	ratio := func(model, paper float64) string {
		if paper == 0 || model == 0 { // finlint:ignore floateq exact zero is the "absent" sentinel, never computed
			return "-"
		}
		return fmt.Sprintf("%.2f", model/paper)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-42s", row.Label)
		for _, col := range cols {
			fmt.Fprintf(&b, " %10s %10s %7s",
				human(row.Paper[col]), human(row.Model[col]), ratio(row.Model[col], row.Paper[col]))
		}
		fmt.Fprintf(&b, " %9s\n", row.Prov)
	}
	if len(r.Bounds) > 0 {
		fmt.Fprintf(&b, "%-42s", "roofline bound")
		for _, col := range cols {
			fmt.Fprintf(&b, " %10s %10s %7s", human(r.Bounds[col]), "", "")
		}
		fmt.Fprintln(&b)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result as comma-separated rows for plotting.
func (r *Result) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, "label,snb_paper,snb_model,knc_paper,knc_model,host,host_mad,provenance")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%q,%g,%g,%g,%g,%g,%g,%s\n", row.Label,
			row.Paper[ColSNB], row.Model[ColSNB],
			row.Paper[ColKNC], row.Model[ColKNC], row.Host, row.HostMAD, row.Prov)
	}
	return b.String()
}

// Sampling configures the warmup+repetition harness behind every host
// timing in Measure mode. benchreg snapshot runs swap in their own preset
// (short or full) via Collect; interactive runs use the default.
var Sampling = benchreg.DefaultOpts()

// timeIt measures the wall-clock throughput of f processing items work
// units through benchreg's warmup+repetition harness, so every host
// number in the repo is a median with a noise bound rather than a single
// sample.
func timeIt(items int, f func()) benchreg.Sample {
	return benchreg.Measure(items, f, Sampling)
}

// hostRow builds a Measure-mode row from one timed kernel.
func hostRow(label string, items int, f func()) Row {
	s := timeIt(items, f)
	return Row{Label: label, Host: s.OpsPerSec, HostMAD: s.OpsMAD, HostReps: s.Reps, HostItems: s.Items, HostAllocs: s.AllocsPerOp}
}
