// MC-VaR: estimate the 10-day 99% value-at-risk of a covered-call position
// by Monte Carlo, simulating the underlying with Brownian-bridge paths and
// repricing the short call along each path.
//
// This is the workload shape the paper's introduction motivates: risk
// management built from the same kernels (bridge path generation, RNG,
// closed-form repricing) the benchmark stresses.
//
//	go run ./examples/mcvar
package main

import (
	"fmt"
	"log"
	"sort"

	"finbench"
)

func main() {
	const (
		nSims   = 20000
		steps   = 16
		horizon = 10.0 / 252 // 10 trading days
	)
	mkt := finbench.Market{Rate: 0.02, Volatility: 0.35}

	// Position: long 100 shares at 100, short one call K=110, 6 months.
	shortCall := finbench.Option{
		Type: finbench.Call, Style: finbench.European,
		Spot: 100, Strike: 110, Expiry: 0.5,
	}
	callNow, err := finbench.Price(shortCall, mkt, finbench.ClosedForm, nil)
	if err != nil {
		log.Fatal(err)
	}
	valueNow := 100*100.0 - 100*callNow.Price
	fmt.Printf("Position: 100 shares @ 100, short 100x call K=110 T=0.5\n")
	fmt.Printf("Current value: %.0f\n\n", valueNow)

	ps, err := finbench.NewPathSimulator(steps, horizon, 20120612)
	if err != nil {
		log.Fatal(err)
	}
	paths := ps.Simulate(nSims, shortCall.Spot, mkt)

	// Revalue the position at the horizon on each path.
	losses := make([]float64, nSims)
	for i, p := range paths {
		sT := p[len(p)-1]
		reval := shortCall
		reval.Spot = sT
		reval.Expiry = shortCall.Expiry - horizon
		res, err := finbench.Price(reval, mkt, finbench.ClosedForm, nil)
		if err != nil {
			log.Fatal(err)
		}
		valueT := 100*sT - 100*res.Price
		losses[i] = valueNow - valueT
	}
	sort.Float64s(losses)

	q := func(p float64) float64 { return losses[int(p*float64(nSims))] }
	fmt.Printf("10-day P&L distribution over %d Brownian-bridge paths:\n", nSims)
	fmt.Printf("  VaR 95%%: %8.0f\n", q(0.95))
	fmt.Printf("  VaR 99%%: %8.0f\n", q(0.99))
	// Expected shortfall beyond the 99% quantile.
	var es float64
	tail := losses[int(0.99*float64(nSims)):]
	for _, l := range tail {
		es += l
	}
	fmt.Printf("  ES  99%%: %8.0f\n", es/float64(len(tail)))
}
