// Ninja gap: measure, on the host machine, how much throughput each
// optimization level of the batch Black-Scholes engine recovers over the
// naive reference — the paper's central question ("can traditional
// programming bridge the Ninja performance gap?"), answered natively in Go.
//
// The same ladder the paper reports for AVX/KNC holds in pure Go: the SOA
// transposition removes the strided AOS access pattern, and the batched
// math removes per-call overhead.
//
//	go run ./examples/ninjagap
package main

import (
	"fmt"
	"log"
	"time"

	"finbench"
)

const nOptions = 500_000

func measure(b *finbench.Batch, mkt finbench.Market, level finbench.OptLevel) float64 {
	// Warm up, then take the best of three.
	if err := finbench.PriceBatch(b, mkt, level); err != nil {
		log.Fatal(err)
	}
	best := 0.0
	for r := 0; r < 3; r++ {
		start := time.Now()
		if err := finbench.PriceBatch(b, mkt, level); err != nil {
			log.Fatal(err)
		}
		if th := float64(nOptions) / time.Since(start).Seconds(); th > best {
			best = th
		}
	}
	return best
}

func main() {
	mkt := finbench.Market{Rate: 0.02, Volatility: 0.3}
	b := finbench.NewBatch(nOptions)
	for i := 0; i < nOptions; i++ {
		b.Spots[i] = 50 + float64(i%150)
		b.Strikes[i] = 50 + float64((i*7)%150)
		b.Expiries[i] = 0.1 + float64(i%40)/8
	}

	fmt.Printf("Black-Scholes batch throughput on this host (%d options):\n\n", nOptions)
	base := measure(b, mkt, finbench.LevelBasic)
	fmt.Printf("  %-14s %8.2f Mopts/s   1.00x\n", finbench.LevelBasic, base/1e6)
	for _, level := range []finbench.OptLevel{finbench.LevelIntermediate, finbench.LevelAdvanced} {
		th := measure(b, mkt, level)
		fmt.Printf("  %-14s %8.2f Mopts/s   %.2fx\n", level, th/1e6, th/base)
	}
	fmt.Println("\nThe paper's Ninja gap for this kernel: 2.4x on SNB-EP, 10x on KNC")
	fmt.Println("(the AOS->SOA transposition is the key optimization on both).")
}
