package benchreg

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Env is the environment fingerprint stored in every snapshot. Two
// snapshots are only comparable as absolute throughput when their
// fingerprints match; the gate downgrades regressions to warnings
// otherwise (a slower runner makes every kernel "regress" uniformly,
// which is information about the machine, not the code).
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CPUModel is the host CPU's model string (best effort: parsed from
	// /proc/cpuinfo on Linux, empty elsewhere).
	CPUModel string `json:"cpu_model,omitempty"`
}

// Fingerprint captures the current process environment. It is
// deterministic for a fixed process: calling it twice yields equal values.
func Fingerprint() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
}

// Comparable reports whether throughput from e and other may be compared
// as absolute numbers: same architecture, parallelism, and (when both
// sides know it) the same CPU model. Go patch version is deliberately not
// part of the key — a toolchain bump that slows a kernel is exactly the
// kind of regression the gate exists to surface.
func (e Env) Comparable(other Env) bool {
	if e.GOOS != other.GOOS || e.GOARCH != other.GOARCH || e.GOMAXPROCS != other.GOMAXPROCS {
		return false
	}
	if e.CPUModel != "" && other.CPUModel != "" && e.CPUModel != other.CPUModel {
		return false
	}
	return true
}

// String renders the fingerprint on one line for tables and logs.
func (e Env) String() string {
	parts := []string{e.GoVersion, e.GOOS + "/" + e.GOARCH}
	if e.CPUModel != "" {
		parts = append(parts, e.CPUModel)
	}
	parts = append(parts, "GOMAXPROCS="+strconv.Itoa(e.GOMAXPROCS))
	return strings.Join(parts, " ")
}

// cpuModel parses the first "model name" line of /proc/cpuinfo. Any
// failure (non-Linux, restricted container) yields "": the fingerprint
// then compares on the remaining fields only.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "model name") {
			continue
		}
		if _, val, ok := strings.Cut(line, ":"); ok {
			return strings.TrimSpace(val)
		}
	}
	return ""
}
