// Package wire is the serialization layer of the pricing server: the
// request/response types of the /price and /greeks endpoints, an
// allocation-free append-style JSON encoder whose output is byte-identical
// to encoding/json (pinned by golden tests, so cache keys and the
// bit-reproducibility invariant are untouched), a fast JSON request
// decoder that falls back to encoding/json for anything outside its
// subset (so accept/reject behavior is exactly the reference semantics),
// and an opt-in columnar bulk format that carries the SOA layout on the
// wire — length-prefixed arrays of spot/strike/expiry/type/style — so
// mega-batch clients skip AOS→SOA entirely.
//
// Requests, responses, and byte buffers recycle through freelists
// (GetBuffer/PutBuffer, DecodeRequest/PutRequest, ...): the steady-state
// serve hot path must not allocate, and the benchreg servepath rows gate
// allocs/op to keep it that way.
package wire // finlint:hot — the encoder/decoder runs per request; allocation-free loops enforced by internal/lint

import (
	"fmt"
	"math"

	"finbench"
)

// MaxRequestOptions bounds the option count of a single request before any
// server-configured limit applies; it keeps decode memory proportional to
// the request body and gives the fuzzer a hard ceiling.
const MaxRequestOptions = 1 << 20

// Option is one option contract on the wire.
type Option struct {
	// Type is "call" (default) or "put".
	Type string `json:"type,omitempty"`
	// Style is "european" (default) or "american".
	Style  string  `json:"style,omitempty"`
	Spot   float64 `json:"spot"`
	Strike float64 `json:"strike"`
	Expiry float64 `json:"expiry"`
}

// Config mirrors finbench.Config; zero fields mean "default".
type Config struct {
	BinomialSteps int    `json:"binomial_steps,omitempty"`
	GridPoints    int    `json:"grid_points,omitempty"`
	TimeSteps     int    `json:"time_steps,omitempty"`
	MCPaths       int    `json:"mc_paths,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
}

// Columns is the JSON-framed columnar batch: the SOA layout on the wire.
// Types and Styles are per-option character columns ('c'/'p' and
// 'e'/'a'); empty means all calls / all European. Mutually exclusive with
// PriceRequest.Options, closed-form only.
type Columns struct {
	Spots    []float64 `json:"spot"`
	Strikes  []float64 `json:"strike"`
	Expiries []float64 `json:"expiry"`
	Types    string    `json:"type,omitempty"`
	Styles   string    `json:"style,omitempty"`
}

// PriceRequest is the POST /price body.
type PriceRequest struct {
	// Method selects the pricing algorithm by its finbench name:
	// closed-form, binomial-tree, crank-nicolson, monte-carlo,
	// trinomial-tree. Empty means closed-form.
	Method  string   `json:"method,omitempty"`
	Options []Option `json:"options,omitempty"`
	// Columnar carries the batch as SOA columns instead of Options
	// (mutually exclusive). The binary columnar frame
	// (Content-Type application/x-finbench-columnar) decodes into the
	// same field.
	Columnar *Columns `json:"columnar,omitempty"`
	Config   Config   `json:"config,omitempty"`
	// DeadlineMS is the client's pricing deadline in milliseconds; work
	// still running when it expires is cancelled and the request fails
	// with 408. Zero means the server's maximum applies.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// colScratch backs Columnar on the pooled fast path so decoding a
	// columnar request reuses column capacity across requests.
	colScratch Columns
}

// NumOptions is the number of options in the request, whichever framing
// carries them.
func (r *PriceRequest) NumOptions() int {
	if r.Columnar != nil {
		return len(r.Columnar.Spots)
	}
	return len(r.Options)
}

// IsPut reports whether option i is a put, under either framing. The
// request must have validated.
func (r *PriceRequest) IsPut(i int) bool {
	if r.Columnar != nil {
		return r.Columnar.Types != "" && r.Columnar.Types[i] == 'p'
	}
	return r.Options[i].Type == "put"
}

// reset clears the request for reuse, retaining slice and column
// capacity. A Columnar block allocated by the reference decoder is
// adopted into the scratch so its capacity joins the freelist.
func (r *PriceRequest) reset() {
	r.Method = ""
	r.Options = r.Options[:0]
	if c := r.Columnar; c != nil && c != &r.colScratch {
		r.colScratch.Spots = c.Spots
		r.colScratch.Strikes = c.Strikes
		r.colScratch.Expiries = c.Expiries
	}
	r.Columnar = nil
	r.colScratch.Spots = r.colScratch.Spots[:0]
	r.colScratch.Strikes = r.colScratch.Strikes[:0]
	r.colScratch.Expiries = r.colScratch.Expiries[:0]
	r.colScratch.Types = ""
	r.colScratch.Styles = ""
	r.Config = Config{}
	r.DeadlineMS = 0
}

// Result is one priced option.
type Result struct {
	Price  float64 `json:"price"`
	StdErr float64 `json:"std_err,omitempty"`
}

// PriceResponse is the POST /price 200 body.
type PriceResponse struct {
	Results []Result `json:"results"`
	// Method and Config are the effective method/parameters (degrade mode
	// may substitute cheaper ones); recomputing with them reproduces
	// Results bit-for-bit.
	Method string `json:"method"`
	Config Config `json:"config"`
	// Engine is "batch-advanced" (closed-form SOA batch path) or "scalar"
	// (per-option kernels).
	Engine   string `json:"engine"`
	Degraded bool   `json:"degraded,omitempty"`
	// Coalesced reports whether the request was merged with concurrent
	// requests into one mega-batch; BatchOptions is the size of the batch
	// actually priced (>= len(Results) when coalesced).
	Coalesced    bool  `json:"coalesced,omitempty"`
	BatchOptions int   `json:"batch_options,omitempty"`
	ElapsedUS    int64 `json:"elapsed_us"`
}

// GreeksRequest is the POST /greeks body (European closed-form greeks).
type GreeksRequest struct {
	Options []Option `json:"options"`
	// DeadlineMS is the client's deadline in milliseconds, capped by the
	// server's maximum; zero means the maximum applies.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Greeks is one option's sensitivities.
type Greeks struct {
	Delta float64 `json:"delta"`
	Gamma float64 `json:"gamma"`
	Vega  float64 `json:"vega"`
	Theta float64 `json:"theta"`
	Rho   float64 `json:"rho"`
}

// GreeksResponse is the POST /greeks 200 body.
type GreeksResponse struct {
	Results   []Greeks `json:"results"`
	ElapsedUS int64    `json:"elapsed_us"`
}

// ErrorResponse is the body of every non-200 status.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ParseMethod maps a wire method name to a finbench.Method. An empty name
// selects the closed form.
func ParseMethod(name string) (finbench.Method, error) {
	switch name {
	case "", "closed-form":
		return finbench.ClosedForm, nil
	case "binomial-tree":
		return finbench.BinomialTree, nil
	case "crank-nicolson":
		return finbench.FiniteDifference, nil
	case "monte-carlo":
		return finbench.MonteCarlo, nil
	case "trinomial-tree":
		return finbench.TrinomialTree, nil
	default:
		return 0, fmt.Errorf("unknown method %q", name)
	}
}

// validatePrice checks a decoded request (either framing, either decoder)
// and resolves its method. The messages are the API's contract; the fast
// and reference decode paths share this function so they cannot drift.
func validatePrice(req *PriceRequest) (finbench.Method, error) {
	// Check order matches the pre-columnar decoder so error messages for
	// multi-fault requests are stable.
	if req.Columnar == nil {
		if len(req.Options) == 0 {
			return 0, fmt.Errorf("request has no options")
		}
		if len(req.Options) > MaxRequestOptions {
			return 0, fmt.Errorf("request has %d options; max %d", len(req.Options), MaxRequestOptions)
		}
	}
	method, err := ParseMethod(req.Method)
	if err != nil {
		return 0, err
	}
	if req.DeadlineMS < 0 {
		return 0, fmt.Errorf("negative deadline_ms %d", req.DeadlineMS)
	}
	if req.Config.BinomialSteps < 0 || req.Config.GridPoints < 0 ||
		req.Config.TimeSteps < 0 || req.Config.MCPaths < 0 {
		return 0, fmt.Errorf("negative config parameter")
	}
	if req.Columnar != nil {
		if len(req.Options) > 0 {
			return 0, fmt.Errorf("columnar and options are mutually exclusive")
		}
		if err := validateColumns(req.Columnar, method); err != nil {
			return 0, err
		}
		return method, nil
	}
	for i := range req.Options {
		o := &req.Options[i]
		if err := validateOption(o); err != nil {
			// finlint:ignore hotalloc cold validation-failure return, not a per-iteration allocation
			return 0, fmt.Errorf("option %d: %w", i, err)
		}
		if o.Style == "american" && (method == finbench.ClosedForm || method == finbench.MonteCarlo) {
			// finlint:ignore hotalloc cold validation-failure return, not a per-iteration allocation
			return 0, fmt.Errorf("option %d: method %v is European-only", i, method)
		}
	}
	return method, nil
}

// validateColumns checks the SOA framing: equal column lengths, known
// type/style characters, finite positive values, closed-form only (the
// batch engine is what the columnar path exists for; the scalar methods
// take the AOS framing).
func validateColumns(c *Columns, method finbench.Method) error {
	if method != finbench.ClosedForm {
		return fmt.Errorf("columnar batches support closed-form only")
	}
	n := len(c.Spots)
	if n == 0 {
		return fmt.Errorf("request has no options")
	}
	if n > MaxRequestOptions {
		return fmt.Errorf("request has %d options; max %d", n, MaxRequestOptions)
	}
	if len(c.Strikes) != n || len(c.Expiries) != n {
		return fmt.Errorf("columnar column lengths differ: %d spots, %d strikes, %d expiries",
			n, len(c.Strikes), len(c.Expiries))
	}
	if c.Types != "" && len(c.Types) != n {
		return fmt.Errorf("columnar type column has %d entries for %d options", len(c.Types), n)
	}
	if c.Styles != "" && len(c.Styles) != n {
		return fmt.Errorf("columnar style column has %d entries for %d options", len(c.Styles), n)
	}
	for i := 0; i < len(c.Types); i++ {
		if t := c.Types[i]; t != 'c' && t != 'p' {
			// finlint:ignore hotalloc cold validation-failure return, not a per-iteration allocation
			return fmt.Errorf("option %d: unknown option type %q", i, string(t))
		}
	}
	for i := 0; i < len(c.Styles); i++ {
		switch c.Styles[i] {
		case 'e':
		case 'a':
			// finlint:ignore hotalloc cold validation-failure return, not a per-iteration allocation
			return fmt.Errorf("option %d: method %v is European-only", i, method)
		default:
			// finlint:ignore hotalloc cold validation-failure return, not a per-iteration allocation
			return fmt.Errorf("option %d: unknown exercise style %q", i, string(c.Styles[i]))
		}
	}
	for i := 0; i < n; i++ {
		if !finitePositive(c.Spots[i]) || !finitePositive(c.Strikes[i]) || !finitePositive(c.Expiries[i]) {
			// finlint:ignore hotalloc cold validation-failure return, not a per-iteration allocation
			return fmt.Errorf("option %d: spot, strike and expiry must be positive and finite", i)
		}
	}
	return nil
}

func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

func validateOption(o *Option) error {
	switch o.Type {
	case "", "call", "put":
	default:
		return fmt.Errorf("unknown option type %q", o.Type)
	}
	switch o.Style {
	case "", "european", "american":
	default:
		return fmt.Errorf("unknown exercise style %q", o.Style)
	}
	for _, v := range [3]float64{o.Spot, o.Strike, o.Expiry} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite parameter")
		}
	}
	if o.Spot <= 0 || o.Strike <= 0 || o.Expiry <= 0 {
		return fmt.Errorf("spot, strike and expiry must be positive")
	}
	return nil
}

// validateGreeks checks a decoded greeks request. The option-count bounds
// stay with the server (its MaxOptions config owns them).
func validateGreeks(req *GreeksRequest) error {
	if req.DeadlineMS < 0 {
		return fmt.Errorf("negative deadline_ms %d", req.DeadlineMS)
	}
	for i := range req.Options {
		o := &req.Options[i]
		if err := validateOption(o); err != nil {
			// finlint:ignore hotalloc cold validation-failure return, not a per-iteration allocation
			return fmt.Errorf("option %d: %w", i, err)
		}
	}
	return nil
}

// ToOption converts a validated wire option.
func (o *Option) ToOption() finbench.Option {
	var out finbench.Option
	out.Spot = o.Spot
	out.Strike = o.Strike
	out.Expiry = o.Expiry
	if o.Type == "put" {
		out.Type = finbench.Put
	}
	if o.Style == "american" {
		out.Style = finbench.American
	}
	return out
}

// ToConfig converts the wire config (zeros mean defaults, resolved by the
// library).
func (c Config) ToConfig() finbench.Config {
	return finbench.Config{
		BinomialSteps: c.BinomialSteps,
		GridPoints:    c.GridPoints,
		TimeSteps:     c.TimeSteps,
		MCPaths:       c.MCPaths,
		Seed:          c.Seed,
	}
}

// FromConfig converts a resolved library config back to wire form.
func FromConfig(c finbench.Config) Config {
	return Config{
		BinomialSteps: c.BinomialSteps,
		GridPoints:    c.GridPoints,
		TimeSteps:     c.TimeSteps,
		MCPaths:       c.MCPaths,
		Seed:          c.Seed,
	}
}
