// Package pricecache is the content-addressed response cache of the
// serving tier. Millions of users price the same contracts; the repo's
// bit-reproducibility invariant (every 200 reproducible from the echoed
// effective method/config) makes a cache hit for a deterministic engine
// *provably* indistinguishable from recomputation, so the cheapest
// kernel invocation — the one never run — is also a correct one.
//
// The cache is three mechanisms behind one call:
//
//   - a content-addressed store keyed by Digest (LRU eviction under a
//     byte budget, optional TTL), holding the exact response bytes the
//     cold computation produced, so a hit is byte-identical to the cold
//     200 by construction;
//   - singleflight collapse: while a leader computes a key, identical
//     concurrent requests wait on the in-flight computation instead of
//     fanning N identical kernel invocations into the admission budget;
//   - waiter self-determination: a waiter always honors its *own*
//     deadline while the leader computes, and when a leader fails
//     (cancelled, shed, errored) waiters re-dispatch — one becomes the
//     new leader under its own context — rather than inheriting the
//     leader's failure or hanging on a flight that never lands.
//
// Only composition-independent, deterministic engines may be cached (the
// same rule as request coalescing); the caller owns that judgment and
// signals it per computation via the compute callback's store flag, so
// degrade-substituted, clamped or otherwise non-replayable responses
// never enter the store.
package pricecache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the response header reporting the cache outcome of a request
// ("hit", "miss", "collapsed", or "bypass" for requests the cache tier
// declined to consider). The load generator builds its observed hit-rate
// metrics from it.
const Header = "X-Finserve-Cache"

// Outcome classifies how a Do call was served.
type Outcome int

const (
	// Miss: this caller was the leader and computed the value.
	Miss Outcome = iota
	// Hit: served from the stored entry without any computation.
	Hit
	// Collapsed: served from a concurrent leader's in-flight
	// computation; this caller ran no kernel work of its own.
	Collapsed
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Collapsed:
		return "collapsed"
	default:
		return "miss"
	}
}

// entryOverhead approximates the per-entry bookkeeping bytes (key, list
// element, map slot) charged against the byte budget on top of the body.
const entryOverhead = 128

// Cache is a content-addressed LRU+TTL response cache with singleflight
// collapse. All methods are safe for concurrent use.
type Cache struct {
	maxBytes int64
	ttl      time.Duration // 0 = entries never expire
	now      func() time.Time

	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	flights map[Key]*flight

	hits      atomic.Uint64
	misses    atomic.Uint64
	collapsed atomic.Uint64
	inserts   atomic.Uint64
	evictions atomic.Uint64
	expired   atomic.Uint64
	rejected  atomic.Uint64
}

type entry struct {
	key     Key
	body    []byte
	expires time.Time // zero = never
}

// flight is one in-progress leader computation. Fields other than done
// are written by the leader before close(done) and read by waiters only
// after <-done (the close is the happens-before edge).
type flight struct {
	done   chan struct{}
	body   []byte
	shared bool // result is deterministic and may fan out to waiters
	err    error
}

// New builds a cache holding at most maxBytes of response bodies (plus a
// fixed per-entry overhead); entries expire ttl after insertion (ttl <= 0
// disables expiry). maxBytes must be positive — callers gate "cache off"
// themselves with a nil *Cache.
func New(maxBytes int64, ttl time.Duration) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	if ttl < 0 {
		ttl = 0
	}
	return &Cache{
		maxBytes: maxBytes,
		ttl:      ttl,
		now:      time.Now,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		flights:  make(map[Key]*flight),
	}
}

// Do returns the response bytes for key: from the store (Hit), from a
// concurrent leader's computation (Collapsed), or by computing them
// (Miss). compute receives the caller's ctx and returns the response
// body, whether the result is cacheable/shareable (deterministic,
// undegraded — the composition-independence rule), and an error.
//
// Contract:
//   - compute runs at most once per Do call, and only when this caller
//     is the leader;
//   - a waiter blocks only until the flight lands or its own ctx
//     expires, whichever is first — never on the leader's deadline;
//   - when a leader fails or produces an uncacheable result, waiters
//     re-dispatch from the top (one becomes the new leader under its
//     own ctx) instead of inheriting the outcome: an uncacheable
//     response belongs to the request that provoked it;
//   - a store=false result is returned to the leader but never stored
//     and never fanned out.
func (c *Cache) Do(ctx context.Context, key Key, compute func(ctx context.Context) (body []byte, store bool, err error)) ([]byte, Outcome, error) {
	for {
		c.mu.Lock()
		if body, ok := c.lookupLocked(key); ok {
			c.mu.Unlock()
			c.hits.Add(1)
			return body, Hit, nil
		}
		f, inFlight := c.flights[key]
		if !inFlight {
			// finlint:ignore hotalloc one flight header per dispatch attempt, not per option; a re-dispatch after a failed leader needs a fresh done channel
			f = &flight{done: make(chan struct{})}
			c.flights[key] = f
			c.mu.Unlock()
			c.misses.Add(1)
			return c.lead(ctx, key, f, compute)
		}
		c.mu.Unlock()

		select {
		case <-f.done:
			if f.err == nil && f.shared {
				c.collapsed.Add(1)
				return f.body, Collapsed, nil
			}
			// Leader failed or its result was uncacheable: re-dispatch
			// under our own ctx (loop; we may become the new leader).
		case <-ctx.Done():
			return nil, Miss, ctx.Err()
		}
	}
}

// lead runs the computation as the leader and lands the flight: store
// first (so waiters released by close(done) that loop around find the
// entry), then publish to waiters.
func (c *Cache) lead(ctx context.Context, key Key, f *flight, compute func(ctx context.Context) ([]byte, bool, error)) ([]byte, Outcome, error) {
	body, store, err := compute(ctx)
	f.body, f.err = body, err
	f.shared = store && err == nil
	if f.shared {
		c.insert(key, body)
	}
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return body, Miss, err
}

// lookupLocked returns a fresh entry's body and bumps its recency.
// Expired entries are removed on sight.
func (c *Cache) lookupLocked(key Key) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.expired.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	return e.body, true
}

// insert stores body under key, evicting least-recently-used entries
// until the byte budget holds. A body larger than the whole budget is
// rejected (callers still got their value from the flight).
func (c *Cache) insert(key Key, body []byte) {
	size := int64(len(body)) + entryOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.maxBytes {
		c.rejected.Add(1)
		return
	}
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el)
	}
	for c.bytes+size > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions.Add(1)
	}
	e := &entry{key: key, body: body}
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	c.entries[key] = c.lru.PushFront(e)
	c.bytes += size
	c.inserts.Add(1)
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.body)) + entryOverhead
}

// Purge drops every stored entry (in-flight computations are unaffected
// and will re-insert). Exposed for effective-config changes that are not
// already part of the key.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*list.Element)
	c.lru.Init()
	c.bytes = 0
}

// Stats is a point-in-time snapshot of the cache counters; it marshals
// with fixed field order (a struct, not a map) so /statsz output stays
// deterministic.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Collapsed uint64 `json:"collapsed"`
	Inserts   uint64 `json:"inserts"`
	Evictions uint64 `json:"evictions"`
	Expired   uint64 `json:"expired"`
	Rejected  uint64 `json:"rejected"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	TTLMS     int64  `json:"ttl_ms"`
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	entries := len(c.entries)
	bytes := c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Collapsed: c.collapsed.Load(),
		Inserts:   c.inserts.Load(),
		Evictions: c.evictions.Load(),
		Expired:   c.expired.Load(),
		Rejected:  c.rejected.Load(),
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  c.maxBytes,
		TTLMS:     c.ttl.Milliseconds(),
	}
}
