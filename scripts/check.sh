#!/usr/bin/env bash
# scripts/check.sh — the repo's full verification gate.
#
# Runs, in order: go vet, go build, the benchreg performance gate (a
# fresh short-mode snapshot checked against the committed baseline
# BENCH_0.json; see README "Continuous benchmarking"), the tier-1 test
# suite, the race detector over the concurrency-heavy packages, the fuzz
# seed corpora, the finserve e2e smoke gate (scripts/e2e_smoke.sh; see
# README "Serving"), the chaos smoke gate (scripts/chaos_smoke.sh; the
# sharded router under seeded fault injection and a replica kill — see
# README "Resilience & sharding"), and finlint (the custom static-analysis
# suite enforcing the kernel-safety and serving-tier invariants — the
# intra-procedural passes plus the call-graph dataflow passes ctxprop,
# detmap, leakcheck and interprocedural hotalloc; see README "Static
# analysis & CI gate") with its self-test. The benchreg gate also
# enforces the allocs/op budget on serve-path rows (gate_allocs records
# in BENCH_0.json): a new per-request allocation fails the check even
# when its wall-clock cost hides inside timing noise.
#
# Usage: ./scripts/check.sh
#
#   CHECK_QUICK=1 ./scripts/check.sh   # local iteration: skips the race
#                                      # and fuzz stages (the slow ones)
set -euo pipefail
cd "$(dirname "$0")/.."

# Tool binaries (benchreg, finlint) are built once into a scratch dir and
# reused — the benchreg retry path used to recompile via `go run`, which
# both wasted time and added compile jitter to a timing-sensitive stage.
TOOL_DIR="$(mktemp -d)"
trap 'rm -rf "$TOOL_DIR"' EXIT

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

# Noise-aware perf gate: snapshot the kernels in short mode and compare
# against the committed baseline. This runs BEFORE the heavy test stages
# so the measurement happens on a cool machine — minutes of race/fuzz
# saturation right before timing skews every kernel at once. Calibration
# normalization (see internal/benchreg) cancels uniform speed drift, and
# the threshold is looser than the tool's 10% default because a single
# short-mode run on a shared/loaded machine can legitimately drift ~15%;
# a real regression (a kernel losing its vectorization or layout
# optimization) is far larger. One retry absorbs transient load spikes.
# The allocs/op rule needs no such slack: allocation counts are
# deterministic per binary, so the tool's default (+10% and half an
# allocation on gated rows) applies as-is.
# Refresh the baseline with:  go run ./cmd/benchreg run -short -o BENCH_0.json
echo "==> benchreg gate: short snapshot vs committed baseline"
go build -o "$TOOL_DIR/benchreg" ./cmd/benchreg
bench_gate() {
	"$TOOL_DIR/benchreg" check -baseline BENCH_0.json -short \
		-max-slowdown 0.35 -mad-factor 4
}
if ! bench_gate; then
	echo "==> benchreg gate failed; retrying once after a cooldown"
	sleep 10
	bench_gate
fi

echo "==> tier-1: go test ./..."
go test -timeout 10m ./...

if [[ "${CHECK_QUICK:-0}" == "1" ]]; then
	echo "==> CHECK_QUICK=1: skipping race detector, fuzz seed, e2e and chaos smoke stages"
else
	echo "==> race detector on concurrency-heavy packages"
	go test -race -count=1 -timeout 15m \
		./internal/parallel \
		./internal/montecarlo \
		./internal/brownian \
		./internal/rng \
		./internal/bench \
		./internal/resilience \
		./internal/fault \
		./internal/scenario \
		./internal/serve \
		./internal/serve/coalesce \
		./internal/serve/pricecache \
		./internal/serve/wire \
		./internal/serve/loadgen \
		./internal/serve/shard \
		./internal/serve/stream \
		./internal/serve/stream/ticker \
		./internal/serve/deadline

	echo "==> fuzz seed corpora"
	go test -run='^Fuzz' -count=1 -timeout 10m \
		./internal/mathx ./internal/rng ./internal/blackscholes \
		./internal/serve ./internal/serve/wire \
		./internal/serve/pricecache ./internal/serve/shard

	echo "==> e2e smoke: finserve boot + loadgen gates"
	./scripts/e2e_smoke.sh

	echo "==> chaos smoke: sharded router under seeded faults + replica kill"
	./scripts/chaos_smoke.sh
fi

# finlint is also built once and reused for both the main run and the
# self-test (previously two separate `go run` compiles).
echo "==> finlint ./..."
go build -o "$TOOL_DIR/finlint" ./cmd/finlint
"$TOOL_DIR/finlint" ./...

echo "==> finlint self-test: seeded violations must be rejected"
if "$TOOL_DIR/finlint" ./internal/lint/testdata/... >/dev/null 2>&1; then
	echo "error: finlint exited 0 on internal/lint/testdata/ seeded violations" >&2
	exit 1
fi

echo "check.sh: all gates passed"
