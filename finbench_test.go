package finbench

import (
	"errors"
	"math"
	"strings"
	"testing"
)

var (
	tOpt = Option{Type: Call, Style: European, Spot: 100, Strike: 100, Expiry: 1}
	tMkt = Market{Rate: 0.05, Volatility: 0.2}
)

func TestPriceClosedFormKnownValue(t *testing.T) {
	res, err := Price(tOpt, tMkt, ClosedForm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-10.450583572185565) > 1e-12 {
		t.Fatalf("call = %.15f", res.Price)
	}
	put := tOpt
	put.Type = Put
	res, err = Price(put, tMkt, ClosedForm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Price-5.573526022256971) > 1e-12 {
		t.Fatalf("put = %.15f", res.Price)
	}
}

// Every method must agree on a European call to its own discretization
// accuracy.
func TestMethodsAgreeEuropean(t *testing.T) {
	want, _ := Price(tOpt, tMkt, ClosedForm, nil)
	for _, method := range []Method{BinomialTree, FiniteDifference, MonteCarlo} {
		res, err := Price(tOpt, tMkt, method, &Config{MCPaths: 1 << 17})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		tol := 0.05
		if method == MonteCarlo {
			tol = 5 * res.StdErr
		}
		if math.Abs(res.Price-want.Price) > tol {
			t.Fatalf("%v price %g vs closed form %g", method, res.Price, want.Price)
		}
	}
}

func TestMethodsAgreeEuropeanPut(t *testing.T) {
	put := tOpt
	put.Type = Put
	want, _ := Price(put, tMkt, ClosedForm, nil)
	for _, method := range []Method{BinomialTree, FiniteDifference, MonteCarlo} {
		res, err := Price(put, tMkt, method, &Config{MCPaths: 1 << 16})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		tol := 0.05
		if method == MonteCarlo {
			tol = 5*res.StdErr + 1e-9
		}
		if math.Abs(res.Price-want.Price) > tol {
			t.Fatalf("%v put %g vs closed form %g", method, res.Price, want.Price)
		}
	}
}

// Binomial and Crank-Nicolson must agree on the American put.
func TestAmericanPutCrossMethod(t *testing.T) {
	amer := Option{Type: Put, Style: American, Spot: 100, Strike: 110, Expiry: 1}
	bin, err := Price(amer, tMkt, BinomialTree, &Config{BinomialSteps: 2048})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := Price(amer, tMkt, FiniteDifference, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bin.Price-fd.Price) > 0.03*bin.Price {
		t.Fatalf("binomial %g vs crank-nicolson %g", bin.Price, fd.Price)
	}
	euro := amer
	euro.Style = European
	ep, _ := Price(euro, tMkt, ClosedForm, nil)
	if bin.Price < ep.Price-1e-9 {
		t.Fatal("American put below European")
	}
}

func TestAmericanCallEqualsEuropean(t *testing.T) {
	call := Option{Type: Call, Style: American, Spot: 100, Strike: 95, Expiry: 1}
	euro, _ := Price(Option{Type: Call, Style: European, Spot: 100, Strike: 95, Expiry: 1}, tMkt, ClosedForm, nil)
	for _, method := range []Method{BinomialTree, FiniteDifference} {
		res, err := Price(call, tMkt, method, nil)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if math.Abs(res.Price-euro.Price) > 0.05 {
			t.Fatalf("%v American call %g vs European %g", method, res.Price, euro.Price)
		}
	}
}

func TestPriceErrors(t *testing.T) {
	if _, err := Price(Option{}, tMkt, ClosedForm, nil); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("zero option: %v", err)
	}
	amer := tOpt
	amer.Style = American
	if _, err := Price(amer, tMkt, ClosedForm, nil); !errors.Is(err, ErrMethodStyle) {
		t.Fatalf("closed-form American: %v", err)
	}
	if _, err := Price(amer, tMkt, MonteCarlo, nil); !errors.Is(err, ErrMethodStyle) {
		t.Fatalf("MC American: %v", err)
	}
	if _, err := Price(tOpt, tMkt, Method(99), nil); err == nil {
		t.Fatal("unknown method did not error")
	}
}

func TestStrings(t *testing.T) {
	if Call.String() != "call" || Put.String() != "put" {
		t.Fatal("OptionType strings")
	}
	if European.String() != "european" || American.String() != "american" {
		t.Fatal("ExerciseStyle strings")
	}
	if ClosedForm.String() != "closed-form" || MonteCarlo.String() != "monte-carlo" {
		t.Fatal("Method strings")
	}
	if LevelBasic.String() != "basic" || LevelAdvanced.String() != "advanced" {
		t.Fatal("OptLevel strings")
	}
}

func TestComputeGreeks(t *testing.T) {
	g, err := ComputeGreeks(tOpt, tMkt)
	if err != nil {
		t.Fatal(err)
	}
	if g.DeltaCall <= 0 || g.DeltaCall >= 1 || g.Gamma <= 0 || g.Vega <= 0 {
		t.Fatalf("implausible greeks: %+v", g)
	}
	if _, err := ComputeGreeks(Option{}, tMkt); err == nil {
		t.Fatal("invalid option accepted")
	}
}

func TestImpliedVolatility(t *testing.T) {
	res, _ := Price(tOpt, tMkt, ClosedForm, nil)
	vol, err := ImpliedVolatility(res.Price, tOpt, tMkt.Rate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vol-0.2) > 1e-8 {
		t.Fatalf("implied vol = %g", vol)
	}
	put := tOpt
	put.Type = Put
	if _, err := ImpliedVolatility(1, put, 0.05); err == nil {
		t.Fatal("put accepted by call-only solver")
	}
}

func TestPriceBatchLevelsAgree(t *testing.T) {
	const n = 1000
	b := NewBatch(n)
	for i := 0; i < n; i++ {
		b.Spots[i] = 50 + float64(i%100)
		b.Strikes[i] = 60 + float64(i%80)
		b.Expiries[i] = 0.25 + float64(i%10)/5
	}
	if err := PriceBatch(b, tMkt, LevelBasic); err != nil {
		t.Fatal(err)
	}
	wantCalls := append([]float64(nil), b.Calls...)
	wantPuts := append([]float64(nil), b.Puts...)
	for _, level := range []OptLevel{LevelIntermediate, LevelAdvanced} {
		if err := PriceBatch(b, tMkt, level); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(b.Calls[i]-wantCalls[i]) > 1e-9 || math.Abs(b.Puts[i]-wantPuts[i]) > 1e-9 {
				t.Fatalf("%v option %d differs from basic", level, i)
			}
		}
	}
	if err := PriceBatch(b, tMkt, OptLevel(9)); err == nil {
		t.Fatal("unknown level accepted")
	}
	if err := PriceBatch(NewBatch(0), tMkt, LevelBasic); err != nil {
		t.Fatal("empty batch errored")
	}
}

func TestBatchAgainstScalar(t *testing.T) {
	b := NewBatch(3)
	copy(b.Spots, []float64{100, 90, 110})
	copy(b.Strikes, []float64{100, 100, 100})
	copy(b.Expiries, []float64{1, 0.5, 2})
	if err := PriceBatch(b, tMkt, LevelAdvanced); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want, _ := Price(Option{Type: Call, Style: European,
			Spot: b.Spots[i], Strike: b.Strikes[i], Expiry: b.Expiries[i]}, tMkt, ClosedForm, nil)
		if math.Abs(b.Calls[i]-want.Price) > 1e-9 {
			t.Fatalf("batch call %d = %g, want %g", i, b.Calls[i], want.Price)
		}
	}
}

func TestProfileBatch(t *testing.T) {
	b := NewBatch(64)
	for i := range b.Spots {
		b.Spots[i], b.Strikes[i], b.Expiries[i] = 100, 100, 1
	}
	mix, err := ProfileBatch(b, tMkt, LevelIntermediate, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mix.Items != 64 || mix.Total() == 0 {
		t.Fatalf("profile empty: %v", mix)
	}
	if _, err := ProfileBatch(b, tMkt, OptLevel(9), 8); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestPathSimulator(t *testing.T) {
	ps, err := NewPathSimulator(64, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	paths := ps.Simulate(2000, 100, tMkt)
	if len(paths) != 2000 || len(paths[0]) != 65 {
		t.Fatalf("shape %dx%d", len(paths), len(paths[0]))
	}
	// Martingale check: discounted terminal mean ~ spot.
	var mean float64
	for _, p := range paths {
		if p[0] != 100 {
			t.Fatal("path does not start at spot")
		}
		mean += p[64]
	}
	mean /= float64(len(paths))
	want := 100 * math.Exp(tMkt.Rate*1)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("terminal mean %g, want %g", mean, want)
	}
}

func TestPathSimulatorValidation(t *testing.T) {
	for _, steps := range []int{0, 1, 3, 48} {
		if _, err := NewPathSimulator(steps, 1, 1); err == nil {
			t.Fatalf("steps=%d accepted", steps)
		}
	}
}

func TestSimulateTerminalMoments(t *testing.T) {
	ps, _ := NewPathSimulator(64, 2, 3)
	term := ps.SimulateTerminal(50000, 100, tMkt)
	var mean float64
	for _, s := range term {
		mean += s
	}
	mean /= float64(len(term))
	want := 100 * math.Exp(tMkt.Rate*2)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("terminal mean %g, want %g", mean, want)
	}
}

func TestMonteCarloPutParity(t *testing.T) {
	put := tOpt
	put.Type = Put
	call, _ := Price(tOpt, tMkt, MonteCarlo, &Config{MCPaths: 1 << 15, Seed: 9})
	putRes, _ := Price(put, tMkt, MonteCarlo, &Config{MCPaths: 1 << 15, Seed: 9})
	want := 100 - 100*math.Exp(-tMkt.Rate)
	if math.Abs((call.Price-putRes.Price)-want) > 1e-9 {
		t.Fatalf("MC parity violated: %g vs %g", call.Price-putRes.Price, want)
	}
}

func TestMachinesInfo(t *testing.T) {
	ms := Machines()
	if len(ms) != 2 || ms[0].Name != "SNB-EP" || ms[1].Name != "KNC" {
		t.Fatalf("Machines() = %v", ms)
	}
	if ms[0].Cores != 16 || ms[1].Cores != 60 {
		t.Fatal("core counts wrong")
	}
	if ms[1].PeakDPGFLOPs != 1063 || ms[0].StreamBW != 76 {
		t.Fatal("Table I values wrong")
	}
}

func TestPredictThroughput(t *testing.T) {
	b := NewBatch(8192)
	for i := range b.Spots {
		b.Spots[i], b.Strikes[i], b.Expiries[i] = 100, 100, 1
	}
	mix, err := ProfileBatch(b, tMkt, LevelIntermediate, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PredictThroughput(mix, "KNC")
	if err != nil {
		t.Fatal(err)
	}
	if p.ItemsPerSec < 1e8 || p.ItemsPerSec > 1e10 {
		t.Fatalf("KNC prediction %g options/s implausible", p.ItemsPerSec)
	}
	if p.Bound != "compute" && p.Bound != "bandwidth" {
		t.Fatalf("bound = %q", p.Bound)
	}
	if _, err := PredictThroughput(mix, "GPU"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestRooflineChart(t *testing.T) {
	chart, err := Roofline("SNB-EP", map[string][2]float64{
		"black-scholes": {5, 120},
		"binomial":      {200, 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SNB-EP roofline", "A: ", "B: ", "peak 346"} {
		if !strings.Contains(chart, want) {
			t.Fatalf("chart missing %q:\n%s", want, chart)
		}
	}
	// The roof line itself must be drawn.
	if strings.Count(chart, "-") < 20 {
		t.Fatal("roof not drawn")
	}
	if _, err := Roofline("nope", nil); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestTrinomialAsMethod(t *testing.T) {
	res, err := Price(tOpt, tMkt, TrinomialTree, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Price(tOpt, tMkt, ClosedForm, nil)
	if math.Abs(res.Price-want.Price) > 0.05 {
		t.Fatalf("trinomial method %g vs closed form %g", res.Price, want.Price)
	}
	if res.Method != TrinomialTree || TrinomialTree.String() != "trinomial-tree" {
		t.Fatal("method labelling wrong")
	}
}
