package scenario

import (
	"math"
	"sort"
)

// Reduce computes the ladder over the full P&L surface. Determinism
// contract: the mean accumulates in global cell order, the tail sums in
// ascending sorted order, both Kahan-compensated — so the same surface
// always reduces to the same bits regardless of how its cells were
// computed or merged.
func Reduce(levels []float64, pnl []float64) *Ladder {
	n := len(pnl)
	lad := &Ladder{
		Levels: append([]float64(nil), levels...),
		VaR:    make([]float64, len(levels)),
		ES:     make([]float64, len(levels)),
	}
	if n == 0 {
		return lad
	}
	var mean Sum
	for _, x := range pnl {
		mean.Add(x)
	}
	lad.MeanPnL = mean.Value() / float64(n)

	sorted := append([]float64(nil), pnl...)
	sort.Float64s(sorted)
	lad.WorstPnL = sorted[0]
	lad.BestPnL = sorted[n-1]

	for i, q := range levels {
		// Nearest-rank loss quantile: the worst ceil((1-q)*n) cells are
		// the tail; VaR is the mildest tail loss, ES the tail's
		// Kahan-compensated mean. Both are reported as positive losses.
		// The 1-1e-12 shave keeps representation noise (0.3*10 =
		// 3.0000000000000004) from inflating the tail past the exact ceil.
		tail := int(math.Ceil((1 - q) * float64(n) * (1 - 1e-12)))
		if tail < 1 {
			tail = 1
		}
		if tail > n {
			tail = n
		}
		lad.VaR[i] = -sorted[tail-1]
		var es Sum
		for _, x := range sorted[:tail] {
			es.Add(x)
		}
		lad.ES[i] = -es.Value() / float64(tail)
	}
	return lad
}
