package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"finbench/internal/scenario"
)

func scenarioTestRequest() *scenario.Request {
	return &scenario.Request{
		Portfolio: []scenario.Position{
			{Type: "call", Spot: 100, Strike: 105, Expiry: 0.5, Quantity: 10},
			{Type: "put", Spot: 90, Strike: 100, Expiry: 1.25, Quantity: -4},
			{Spot: 120, Strike: 100, Expiry: 2},
		},
		Grid: scenario.Grid{
			SpotShocks: []float64{-0.2, 0, 0.2},
			VolShocks:  []float64{-0.05, 0.05},
			RateShifts: []float64{0, 0.01},
		},
		Generators: []scenario.Generator{
			{Model: scenario.ModelHeston, Scenarios: 5, Seed: 3},
			{Model: scenario.ModelJump, Scenarios: 4, Seed: 4},
		},
	}
}

// TestScenarioBitMatchesLibrary: the handler's 200 body is byte-identical
// to evaluating + finalizing the same request directly against the
// library — the invariant the router's merge path builds on.
func TestScenarioBitMatchesLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := scenarioTestRequest()
	resp, body := postJSON(t, ts.URL+"/scenario", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	base, pnl, err := scenario.EvaluateCells(context.Background(), req, s.cfg.Market, 0, req.NumCells())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := json.NewEncoder(&want).Encode(scenario.Finalize(req, base, 0, pnl)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("handler body differs from library finalize\n got: %s\nwant: %s", body, want.Bytes())
	}
	var out scenario.Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Ladder == nil || len(out.Ladder.VaR) != 2 {
		t.Fatalf("full response missing default two-level ladder: %s", body)
	}
	if out.Engine != "grid-advanced" {
		t.Errorf("engine = %q, want grid-advanced", out.Engine)
	}
}

// TestScenarioSubRange: a cells sub-range answers the segment only (no
// ladder), matching the whole surface's bits at those offsets.
func TestScenarioSubRange(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := scenarioTestRequest()
	_, whole, err := scenario.EvaluateCells(context.Background(), req, s.cfg.Market, 0, req.NumCells())
	if err != nil {
		t.Fatal(err)
	}
	sub := *req
	sub.Cells = &scenario.Cells{Start: 5, Count: 7}
	resp, body := postJSON(t, ts.URL+"/scenario", &sub)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out scenario.Response
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Ladder != nil {
		t.Error("sub-range response carries a ladder")
	}
	if out.Start != 5 || out.Cells != 7 || len(out.PnL) != 7 {
		t.Fatalf("sub-range shape: start=%d cells=%d len=%d", out.Start, out.Cells, len(out.PnL))
	}
	for i, x := range out.PnL {
		if x != whole[5+i] {
			t.Fatalf("cell %d: sub-range %v != whole %v", 5+i, x, whole[5+i])
		}
	}
}

// TestScenarioRejects: malformed and over-limit requests answer 400.
func TestScenarioRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxScenarioCells: 8})
	cases := []struct {
		name string
		body any
	}{
		{"empty portfolio", &scenario.Request{}},
		{"over cell limit", &scenario.Request{
			Portfolio: []scenario.Position{{Spot: 100, Strike: 100, Expiry: 1}},
			Grid:      scenario.Grid{SpotShocks: []float64{-0.1, -0.05, 0, 0.05, 0.1}, VolShocks: []float64{-0.02, 0.02}},
		}},
		{"negative deadline", &scenario.Request{
			Portfolio:  []scenario.Position{{Spot: 100, Strike: 100, Expiry: 1}},
			DeadlineMS: -1,
		}},
		{"garbage", json.RawMessage(`{"portfolio": 3}`)},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/scenario", tc.body)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}
}

// TestScenarioStatsz: /statsz reports scenario request and cell counters.
func TestScenarioStatsz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := scenarioTestRequest()
	if resp, body := postJSON(t, ts.URL+"/scenario", req); resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	snap := s.statszSnapshot()
	if snap.Requests["scenario"] != 1 || snap.Scenario["requests"] != 1 {
		t.Errorf("scenario request counters = %d/%d, want 1/1",
			snap.Requests["scenario"], snap.Scenario["requests"])
	}
	if want := uint64(req.NumCells()); snap.Scenario["cells"] != want {
		t.Errorf("scenario cells = %d, want %d", snap.Scenario["cells"], want)
	}
	if snap.LatencyUS["scenario"].Count != 1 {
		t.Errorf("scenario latency count = %d, want 1", snap.LatencyUS["scenario"].Count)
	}
}

// TestScenarioDraining: a draining server sheds /scenario with 503.
func TestScenarioDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.StartDrain()
	resp, _ := postJSON(t, ts.URL+"/scenario", scenarioTestRequest())
	if resp.StatusCode != 503 {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
}
