// Command finlint runs the repo's kernel-safety static analysis
// (internal/lint) over package patterns and exits non-zero if any
// invariant is violated.
//
// Usage:
//
//	finlint [-passes rngshare,...] [-format text|json|github] [-json file] [-list] [-v] [patterns ...]
//
// Patterns are directories or recursive patterns like ./... (the default).
// Diagnostics print one per line as "file:line: [pass] message"; -format
// json emits a machine-readable array, -format github emits workflow
// ::error annotations for CI, and -json FILE additionally writes the
// JSON findings to FILE regardless of the stdout format (for CI
// artifacts). Suppress an individual finding with
// "// finlint:ignore <pass> <reason>" on or directly above the flagged
// line (the reason is required; the directive pass flags empty ones);
// mark a package's loops hot (enabling the full hotalloc rule set) with
// "// finlint:hot". Interprocedural passes walk the module call graph
// from the HTTP handler roots; -hotalloc-depth bounds how many hops the
// allocation sweep follows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"finbench/internal/lint"
)

// finding is the JSON shape of one diagnostic, stable for CI tooling.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func toFindings(diags []lint.Diagnostic) []finding {
	out := make([]finding, len(diags))
	for i, d := range diags {
		out[i] = finding{File: d.Pos.Filename, Line: d.Pos.Line, Pass: d.Pass, Message: d.Msg}
	}
	return out
}

func main() {
	passList := flag.String("passes", "all", "comma-separated passes to run (or 'all')")
	format := flag.String("format", "text", "stdout format: text, json, or github (workflow annotations)")
	jsonPath := flag.String("json", "", "also write findings as JSON to this file (use '-' for stdout)")
	hotallocDepth := flag.Int("hotalloc-depth", lint.DefaultHotallocDepth, "call-graph depth from HTTP handlers swept by the hotalloc pass")
	list := flag.Bool("list", false, "list available passes and exit")
	verbose := flag.Bool("v", false, "also print loader/type-checker notes to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: finlint [flags] [patterns ...]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-10s %s\n", p.Name, p.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" && *format != "github" {
		fmt.Fprintf(os.Stderr, "finlint: unknown -format %q (want text, json, or github)\n", *format)
		os.Exit(2)
	}

	passes, err := lint.SelectPasses(*passList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "finlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "finlint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, pkg := range pkgs {
			fmt.Fprintf(os.Stderr, "finlint: loaded %s (%d files, %d type notes)\n", pkg.Path, len(pkg.Files), len(pkg.TypeErrors))
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "finlint: note: %v\n", e)
			}
		}
	}

	diags := lint.RunConfig(pkgs, passes, lint.Config{HotallocDepth: *hotallocDepth})

	switch *format {
	case "json":
		writeJSON(os.Stdout, diags)
	case "github":
		for _, d := range diags {
			// One annotation per finding; GitHub renders these inline on
			// the PR diff. Newlines in messages would break the protocol,
			// but pass messages are single-line by construction.
			fmt.Printf("::error file=%s,line=%d,title=finlint(%s)::%s\n", d.Pos.Filename, d.Pos.Line, d.Pass, d.Msg)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *jsonPath != "" && *jsonPath != "-" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "finlint:", err)
			os.Exit(2)
		}
		writeJSON(f, diags)
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "finlint:", err)
			os.Exit(2)
		}
	} else if *jsonPath == "-" && *format != "json" {
		writeJSON(os.Stdout, diags)
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "finlint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// writeJSON emits the findings array. An empty run writes "[]", never
// "null", so downstream jq/CI scripts can rely on the shape.
func writeJSON(w *os.File, diags []lint.Diagnostic) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(toFindings(diags)); err != nil {
		fmt.Fprintln(os.Stderr, "finlint:", err)
		os.Exit(2)
	}
}
