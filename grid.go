package finbench

import (
	"context"
	"errors"
	"sync"

	"finbench/internal/blackscholes"
	"finbench/internal/layout"
	"finbench/internal/vec"
)

// Grid evaluation: price one batch of contracts under a sequence of
// scenario rows, each row a shocked market plus a spot perturbation. This
// is the kernel under the scenario engine (internal/scenario): a risk
// request is one portfolio repriced across a shock grid, so the batch's
// strikes and expiries are loaded once and only the spots and market
// change per row. Rows evaluate in order over pooled scratch columns —
// the SOA batch path — and the engine is always LevelAdvanced, so every
// row's prices are bit-identical no matter how the grid is partitioned
// across processes (composition independence, the property the shard
// router's scatter-gather path relies on).

// GridRow is one scenario of a grid evaluation: a full market and a spot
// perturbation, either uniform (Scale) or per-contract (Scales).
type GridRow struct {
	// Market is the market this row prices under.
	Market Market
	// Scale multiplies every spot in the batch (1 = unshocked). Ignored
	// when Scales is non-nil.
	Scale float64
	// Scales, when non-nil, gives a per-contract spot multiplier; its
	// length must equal the batch length.
	Scales []float64
}

// ErrGridRow indicates an invalid grid row (non-positive scale or a
// Scales length mismatching the batch).
var ErrGridRow = errors.New("finbench: grid row needs positive spot scales matching the batch length")

// PriceBatchGrid evaluates the batch under every row in order, invoking
// onRow with each row's call and put prices. The slices passed to onRow
// are scratch reused by the next row: consume or copy them before
// returning. A non-nil error from onRow aborts the evaluation.
func PriceBatchGrid(b *Batch, rows []GridRow, onRow func(row int, calls, puts []float64) error) error {
	return PriceBatchGridCtx(context.Background(), b, rows, onRow)
}

// PriceBatchGridCtx is PriceBatchGrid with cancellation checked before
// every grid row (and inside the row's kernel between option blocks). On
// a non-nil error any rows not yet delivered to onRow are lost. An
// uncancelled run is bit-identical to PriceBatchGrid.
func PriceBatchGridCtx(ctx context.Context, b *Batch, rows []GridRow, onRow func(row int, calls, puts []float64) error) error {
	n := b.Len()
	if n == 0 || len(rows) == 0 {
		return ctx.Err()
	}
	sc := gridScratchPool.Get().(*gridScratch)
	sc.grow(n)
	spots, calls, puts := sc.spots[:n], sc.calls[:n], sc.puts[:n]
	defer gridScratchPool.Put(sc)

	soa := soaPool.Get().(*layout.SOA)
	defer func() {
		*soa = layout.SOA{} // drop the slice references before pooling
		soaPool.Put(soa)
	}()

	for r := range rows {
		if err := ctx.Err(); err != nil {
			return err
		}
		row := &rows[r]
		switch {
		case row.Scales != nil:
			if len(row.Scales) != n {
				return ErrGridRow
			}
			for i := 0; i < n; i++ {
				if row.Scales[i] <= 0 {
					return ErrGridRow
				}
				spots[i] = b.Spots[i] * row.Scales[i]
			}
		case row.Scale > 0:
			for i := 0; i < n; i++ {
				spots[i] = b.Spots[i] * row.Scale
			}
		default:
			return ErrGridRow
		}
		*soa = layout.SOA{S: spots, X: b.Strikes, T: b.Expiries, Call: calls, Put: puts}
		if err := blackscholes.AdvancedCtx(ctx, soa, row.Market.internal(), vec.MaxWidth, nil); err != nil {
			return err
		}
		if err := onRow(r, calls, puts); err != nil {
			return err
		}
	}
	return nil
}

// gridScratch holds the per-evaluation scratch columns: the shocked spot
// inputs and the row's price outputs. Pooled so a serving-tier scenario
// request does not allocate three columns per call.
type gridScratch struct {
	spots, calls, puts []float64
}

func (sc *gridScratch) grow(n int) {
	if cap(sc.spots) < n {
		sc.spots = make([]float64, n)
		sc.calls = make([]float64, n)
		sc.puts = make([]float64, n)
	}
}

var gridScratchPool = sync.Pool{New: func() any { return new(gridScratch) }}
