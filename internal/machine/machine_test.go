package machine

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"finbench/internal/perf"
)

func approx(got, want, rel float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= rel
}

func TestTableIParameters(t *testing.T) {
	s := SNBEP()
	if s.Cores() != 16 || s.Threads() != 32 {
		t.Fatalf("SNB-EP cores/threads = %d/%d, want 16/32", s.Cores(), s.Threads())
	}
	if s.SIMDWidthDP != 4 || s.HasFMA || !s.OutOfOrder {
		t.Fatalf("SNB-EP uarch flags wrong: %+v", s)
	}
	if s.StreamBW != 76 || s.ClockGHz != 2.7 {
		t.Fatalf("SNB-EP Table I values wrong: %+v", s)
	}
	k := KNC()
	if k.Cores() != 60 || k.Threads() != 240 {
		t.Fatalf("KNC cores/threads = %d/%d, want 60/240", k.Cores(), k.Threads())
	}
	if k.SIMDWidthDP != 8 || !k.HasFMA || k.OutOfOrder {
		t.Fatalf("KNC uarch flags wrong: %+v", k)
	}
	if k.StreamBW != 150 || k.ClockGHz != 1.09 || k.L3KB != 0 {
		t.Fatalf("KNC Table I values wrong: %+v", k)
	}
}

// The paper (Sec. III-A) derives KNC's peak advantage as 60/16 x 512/256 x
// 1.09/2.7 = 3.2x over SNB-EP.
func TestPeakRatioMatchesPaper(t *testing.T) {
	s, k := SNBEP(), KNC()
	ratio := (60.0 / 16) * (512.0 / 256) * (1.09 / 2.7)
	if !approx(k.PeakDPFromParams()/s.PeakDPFromParams(), ratio, 0.01) {
		t.Fatalf("peak ratio = %g, want %g", k.PeakDPFromParams()/s.PeakDPFromParams(), ratio)
	}
	// The paper rounds this product to "3.2x"; the exact value is 3.03.
	if !approx(ratio, 3.2, 0.08) {
		t.Fatalf("paper's stated 3.2x check failed: %g", ratio)
	}
}

func TestPeakFromParamsNearTableI(t *testing.T) {
	s := SNBEP()
	if !approx(s.PeakDPFromParams(), s.PeakDPGFLOPs, 0.01) {
		t.Fatalf("SNB-EP recomputed peak %g != Table I %g", s.PeakDPFromParams(), s.PeakDPGFLOPs)
	}
	// KNC Table I peak (1063) is computed with 61 cores; our 60-core model
	// gives 1046, within 2%.
	k := KNC()
	if !approx(k.PeakDPFromParams(), k.PeakDPGFLOPs, 0.02) {
		t.Fatalf("KNC recomputed peak %g != Table I %g", k.PeakDPFromParams(), k.PeakDPGFLOPs)
	}
}

func TestByName(t *testing.T) {
	if ByName("snb-ep") == nil || ByName("KNC") == nil {
		t.Fatal("ByName case-insensitive lookup failed")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName returned a machine for an unknown name")
	}
}

func TestMachinesOrder(t *testing.T) {
	ms := Machines()
	if len(ms) != 2 || ms[0].Name != "SNB-EP" || ms[1].Name != "KNC" {
		t.Fatalf("Machines() = %v", ms)
	}
}

func TestBoundString(t *testing.T) {
	if ComputeBound.String() != "compute" || BandwidthBound.String() != "bandwidth" {
		t.Fatal("Bound.String wrong")
	}
}

func TestPredictComputeBound(t *testing.T) {
	m := SNBEP()
	var c perf.Counts
	c.Width = 4
	c.Add(perf.OpVecFMA, 1e9) // heavy compute, no traffic
	p := m.Predict(c)
	if p.Bound != ComputeBound {
		t.Fatalf("bound = %v, want compute", p.Bound)
	}
	wantSec := 1e9 * m.Cost[perf.OpVecFMA] / (16 * 2.7e9)
	if !approx(p.Sec, wantSec, 1e-9) {
		t.Fatalf("Sec = %g, want %g", p.Sec, wantSec)
	}
	if p.MemSec != 0 {
		t.Fatalf("MemSec = %g, want 0", p.MemSec)
	}
}

func TestPredictBandwidthBound(t *testing.T) {
	m := SNBEP()
	var c perf.Counts
	c.AddBytes(76e9, 0) // exactly one second of STREAM traffic
	p := m.Predict(c)
	if p.Bound != BandwidthBound {
		t.Fatalf("bound = %v, want bandwidth", p.Bound)
	}
	if !approx(p.Sec, 1.0, 1e-12) {
		t.Fatalf("Sec = %g, want 1", p.Sec)
	}
}

func TestPredictRooflineMax(t *testing.T) {
	m := KNC()
	var c perf.Counts
	c.Add(perf.OpVecFMA, 1000)
	c.AddBytes(1e12, 0) // memory dominates
	p := m.Predict(c)
	if p.Sec != p.MemSec || p.Sec < p.ComputeSec {
		t.Fatalf("roofline max violated: %+v", p)
	}
}

func TestPredictGFLOPsAtPeak(t *testing.T) {
	// A pure-FMA mix should run at the machine's recomputed peak.
	for _, m := range Machines() {
		c := perf.Counts{Width: m.SIMDWidthDP}
		c.Add(perf.OpVecFMA, 1e8)
		p := m.Predict(c)
		if !approx(p.GFLOPs, m.PeakDPFromParams(), 1e-6) {
			t.Fatalf("%s: pure-FMA GFLOPs = %g, want peak %g", m.Name, p.GFLOPs, m.PeakDPFromParams())
		}
	}
}

func TestSNBDualIssueMulAddPeak(t *testing.T) {
	// On SNB-EP a balanced mul+add mix must also reach peak (separate
	// ports), reproducing the 346 GFLOP/s Table I figure without FMA.
	m := SNBEP()
	c := perf.Counts{Width: 4}
	c.Add(perf.OpVecMul, 5e7)
	c.Add(perf.OpVecAdd, 5e7)
	p := m.Predict(c)
	if !approx(p.GFLOPs, m.PeakDPFromParams(), 1e-6) {
		t.Fatalf("mul+add GFLOPs = %g, want %g", p.GFLOPs, m.PeakDPFromParams())
	}
}

func TestThroughput(t *testing.T) {
	m := SNBEP()
	c := perf.Counts{Items: 1000}
	c.AddBytes(40*1000, 0)
	got := m.Throughput(c)
	want := m.StreamBW * 1e9 / 40
	if !approx(got, want, 1e-9) {
		t.Fatalf("Throughput = %g, want %g", got, want)
	}
}

func TestThroughputZeroMix(t *testing.T) {
	m := KNC()
	if got := m.Throughput(perf.Counts{Items: 5}); got != 0 {
		t.Fatalf("Throughput of empty mix = %g, want 0", got)
	}
}

// Black-Scholes bound: 5 doubles per option = 40 bytes, so B/40 options/s
// (Sec. IV-A3). SNB-EP: 1.9e9/s; KNC: 3.75e9/s.
func TestBlackScholesBandwidthBound(t *testing.T) {
	if got := SNBEP().BandwidthBoundThroughput(40); !approx(got, 1.9e9, 1e-9) {
		t.Fatalf("SNB-EP B/40 = %g, want 1.9e9", got)
	}
	if got := KNC().BandwidthBoundThroughput(40); !approx(got, 3.75e9, 1e-9) {
		t.Fatalf("KNC B/40 = %g, want 3.75e9", got)
	}
}

// Binomial bound: 3N(N+1)/2 flops per option (Sec. IV-B1).
func TestBinomialComputeBound(t *testing.T) {
	n := 1024.0
	flops := 3 * n * (n + 1) / 2
	s := SNBEP().ComputeBoundThroughput(flops)
	k := KNC().ComputeBoundThroughput(flops)
	if !approx(s, 346e9/flops, 1e-12) || !approx(k, 1063e9/flops, 1e-12) {
		t.Fatalf("bounds = %g, %g", s, k)
	}
	if k/s < 3.0 || k/s > 3.2 {
		t.Fatalf("KNC/SNB bound ratio = %g, want ~3.07", k/s)
	}
}

func TestTableIRendering(t *testing.T) {
	s := TableI()
	for _, want := range []string{"SNB-EP", "KNC", "2 x 8 x 2", "1 x 60 x 4", "2.70", "1.09", "346", "1063", "76", "150", "GDDR"} {
		if !strings.Contains(s, want) {
			t.Fatalf("TableI missing %q:\n%s", want, s)
		}
	}
}

// Property: predicted time is monotone in every op count.
func TestPredictMonotoneQuick(t *testing.T) {
	m := KNC()
	f := func(base uint16, extra uint16, opIdx uint8) bool {
		op := perf.Op(int(opIdx) % perf.NumOps)
		var a, b perf.Counts
		a.Add(op, uint64(base))
		b.Add(op, uint64(base)+uint64(extra))
		return m.Predict(b).Sec >= m.Predict(a).Sec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Predict is linear in the mix (doubling all counts doubles time).
func TestPredictLinearQuick(t *testing.T) {
	m := SNBEP()
	f := func(nf, ng uint16, rb uint32) bool {
		var c perf.Counts
		c.Add(perf.OpVecFMA, uint64(nf))
		c.Add(perf.OpGather, uint64(ng))
		c.AddBytes(uint64(rb), 0)
		var d perf.Counts
		d.Add(perf.OpVecFMA, 2*uint64(nf))
		d.Add(perf.OpGather, 2*uint64(ng))
		d.AddBytes(2*uint64(rb), 0)
		p1, p2 := m.Predict(c), m.Predict(d)
		return approx(p2.Sec, 2*p1.Sec, 1e-12) || (p1.Sec == 0 && p2.Sec == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Every op class must have a strictly positive cost on both machines except
// where physically free; a zero cost would silently drop work from the model.
func TestAllCostsPositive(t *testing.T) {
	for _, m := range Machines() {
		for op := 0; op < perf.NumOps; op++ {
			if m.Cost[op] <= 0 {
				t.Errorf("%s: cost[%v] = %g, want > 0", m.Name, perf.Op(op), m.Cost[op])
			}
		}
	}
}

// KNC's in-order core must charge at least as much as SNB-EP's OOO core for
// the overhead classes the paper calls out (moves, unaligned loads, gathers).
func TestInOrderOverheadOrdering(t *testing.T) {
	s, k := SNBEP(), KNC()
	for _, op := range []perf.Op{perf.OpVecMisc, perf.OpVecLoadU, perf.OpGather, perf.OpScatter, perf.OpScalar} {
		if k.Cost[op] <= s.Cost[op] {
			t.Errorf("cost[%v]: KNC %g <= SNB-EP %g", op, k.Cost[op], s.Cost[op])
		}
	}
}
