package coalesce

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"finbench"
)

var testMkt = finbench.Market{Rate: 0.02, Volatility: 0.3}

func mkTicket(rng *rand.Rand, n int) *Ticket {
	t := &Ticket{
		Spots:    make([]float64, n),
		Strikes:  make([]float64, n),
		Expiries: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		t.Spots[i] = 50 + 100*rng.Float64()
		t.Strikes[i] = 50 + 100*rng.Float64()
		t.Expiries[i] = 0.1 + 3*rng.Float64()
	}
	return t
}

// priceDirect prices a ticket's options alone through the same engine; by
// composition independence this must bit-match whatever mega-batch the
// coalescer placed them in.
func priceDirect(t *testing.T, tk *Ticket) (calls, puts []float64) {
	t.Helper()
	n := len(tk.Spots)
	b := finbench.NewBatch(n)
	copy(b.Spots, tk.Spots)
	copy(b.Strikes, tk.Strikes)
	copy(b.Expiries, tk.Expiries)
	if err := finbench.PriceBatch(b, testMkt, finbench.LevelAdvanced); err != nil {
		t.Fatal(err)
	}
	return b.Calls, b.Puts
}

func TestCoalescerMergesConcurrentTickets(t *testing.T) {
	c := New(testMkt, 20*time.Millisecond, 1<<20, 0)
	defer c.Close()

	const clients = 8
	tickets := make([]*Ticket, clients)
	for i := range tickets {
		tickets[i] = mkTicket(rand.New(rand.NewSource(int64(i)+1)), 16+i)
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := range tickets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Price(tickets[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	anyCoalesced := false
	for i, tk := range tickets {
		anyCoalesced = anyCoalesced || tk.Coalesced
		wantCalls, wantPuts := priceDirect(t, tk)
		for j := range wantCalls {
			if tk.Calls[j] != wantCalls[j] || tk.Puts[j] != wantPuts[j] {
				t.Fatalf("ticket %d option %d: coalesced (%v,%v) != direct (%v,%v)",
					i, j, tk.Calls[j], tk.Puts[j], wantCalls[j], wantPuts[j])
			}
		}
	}
	if !anyCoalesced {
		t.Error("no ticket coalesced despite 8 concurrent submitters in a 20ms window")
	}
	snap := c.Snapshot()
	if snap.Flushes == 0 || snap.BatchedOptions == 0 {
		t.Errorf("counters not advancing: %+v", snap)
	}
}

func TestCoalescerThresholdFlushesInline(t *testing.T) {
	c := New(testMkt, time.Hour, 32, 0) // timer would never fire
	defer c.Close()
	tk := mkTicket(rand.New(rand.NewSource(9)), 40)
	if err := c.Price(tk); err != nil {
		t.Fatal(err)
	}
	if tk.BatchN != 40 || tk.Coalesced {
		t.Errorf("BatchN=%d Coalesced=%v, want solo 40", tk.BatchN, tk.Coalesced)
	}
	if snap := c.Snapshot(); snap.SoloFlushes != 1 {
		t.Errorf("solo flushes = %d, want 1", snap.SoloFlushes)
	}
}

func TestCoalescerExpiredDeadlineFailsBatch(t *testing.T) {
	c := New(testMkt, time.Millisecond, 1<<20, 0)
	defer c.Close()
	tk := mkTicket(rand.New(rand.NewSource(3)), 8)
	tk.Deadline = time.Now().Add(-time.Second)
	err := c.Price(tk)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestCoalescerCloseFailsPending(t *testing.T) {
	c := New(testMkt, time.Hour, 1<<20, 0)
	tk := mkTicket(rand.New(rand.NewSource(4)), 4)
	errCh := make(chan error, 1)
	go func() { errCh <- c.Price(tk) }()
	// Wait until the ticket is pending, then close underneath it.
	for {
		c.mu.Lock()
		n := len(c.pending)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if err := c.Price(mkTicket(rand.New(rand.NewSource(5)), 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-close submit: %v, want canceled", err)
	}
}

// TestCoalescerStress hammers Price/Flush/Snapshot/OpMix concurrently; its
// real assertions come from the race detector (this package is in the
// check.sh race list) plus per-ticket bit-verification.
func TestCoalescerStress(t *testing.T) {
	c := New(testMkt, 500*time.Microsecond, 512, 4)
	defer c.Close()

	const (
		workers = 8
		rounds  = 30
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			for r := 0; r < rounds; r++ {
				tk := mkTicket(rng, 1+rng.Intn(64))
				if err := c.Price(tk); err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				wantCalls, _ := priceDirect(t, tk)
				for j := range wantCalls {
					if tk.Calls[j] != wantCalls[j] {
						t.Errorf("worker %d round %d option %d mismatch", w, r, j)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				c.Flush()
				_ = c.Snapshot()
				_ = c.OpMix()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(done)

	snap := c.Snapshot()
	if snap.Flushes == 0 {
		t.Error("no flushes recorded")
	}
	if got := snap.SoloFlushes + snap.CoalescedTickets; got == 0 {
		t.Errorf("ticket accounting empty: %+v", snap)
	}
}
