package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

// relErr returns |got-want| / max(|want|, floor).
func relErr(got, want, floor float64) float64 {
	d := math.Abs(got - want)
	m := math.Abs(want)
	if m < floor {
		m = floor
	}
	return d / m
}

func TestExpAccuracy(t *testing.T) {
	for x := -700.0; x <= 700; x += 0.373 {
		if e := relErr(Exp(x), math.Exp(x), 1e-300); e > 4e-16 {
			t.Fatalf("Exp(%g): rel err %g", x, e)
		}
	}
}

func TestExpSpecials(t *testing.T) {
	if Exp(0) != 1 {
		t.Fatal("Exp(0) != 1")
	}
	if !math.IsInf(Exp(1000), 1) {
		t.Fatal("Exp(1000) not +Inf")
	}
	if Exp(-1000) != 0 {
		t.Fatal("Exp(-1000) != 0")
	}
	if !math.IsNaN(Exp(math.NaN())) {
		t.Fatal("Exp(NaN) not NaN")
	}
}

func TestLogAccuracy(t *testing.T) {
	for _, x := range []float64{1e-300, 1e-10, 0.1, 0.5, 0.99, 1, 1.01, 2, math.E, 10, 1e5, 1e300} {
		if e := relErr(Log(x), math.Log(x), 1e-300); e > 4e-16 && math.Abs(Log(x)-math.Log(x)) > 1e-16 {
			t.Fatalf("Log(%g) = %g, want %g", x, Log(x), math.Log(x))
		}
	}
	for x := 0.001; x < 100; x *= 1.0173 {
		if e := relErr(Log(x), math.Log(x), 1e-12); e > 1e-14 {
			t.Fatalf("Log(%g): rel err %g", x, e)
		}
	}
}

func TestLogSpecials(t *testing.T) {
	if Log(1) != 0 {
		t.Fatal("Log(1) != 0")
	}
	if !math.IsInf(Log(0), -1) {
		t.Fatal("Log(0) not -Inf")
	}
	if !math.IsNaN(Log(-1)) {
		t.Fatal("Log(-1) not NaN")
	}
	if !math.IsInf(Log(math.Inf(1)), 1) {
		t.Fatal("Log(+Inf) not +Inf")
	}
	if !math.IsNaN(Log(math.NaN())) {
		t.Fatal("Log(NaN) not NaN")
	}
}

// Property: Exp(Log(x)) == x to high relative accuracy.
func TestExpLogRoundTripQuick(t *testing.T) {
	f := func(u uint32) bool {
		x := 1e-6 + float64(u)/float64(math.MaxUint32)*1e6
		return relErr(Exp(Log(x)), x, 1e-12) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestErfAgainstStdlib(t *testing.T) {
	for x := -6.0; x <= 6.0; x += 0.0137 {
		if e := math.Abs(Erf(x) - math.Erf(x)); e > 1e-15 {
			t.Fatalf("Erf(%g) = %.17g, want %.17g (abs err %g)", x, Erf(x), math.Erf(x), e)
		}
	}
}

func TestErfcAgainstStdlib(t *testing.T) {
	// Relative accuracy must hold deep into the tail, where the advanced
	// Black-Scholes erf substitution operates.
	for x := -10.0; x <= 26.0; x += 0.0731 {
		if e := relErr(Erfc(x), math.Erfc(x), 1e-300); e > 2e-14 {
			t.Fatalf("Erfc(%g) = %g, want %g (rel err %g)", x, Erfc(x), math.Erfc(x), e)
		}
	}
}

func TestErfSpecials(t *testing.T) {
	if Erf(0) != 0 || Erf(math.Inf(1)) != 1 || Erf(math.Inf(-1)) != -1 {
		t.Fatal("Erf specials wrong")
	}
	if Erfc(math.Inf(1)) != 0 || Erfc(math.Inf(-1)) != 2 {
		t.Fatal("Erfc specials wrong")
	}
	if !math.IsNaN(Erf(math.NaN())) || !math.IsNaN(Erfc(math.NaN())) {
		t.Fatal("Erf/Erfc(NaN) not NaN")
	}
}

// Property: Erf is odd and bounded in [-1, 1].
func TestErfOddQuick(t *testing.T) {
	f := func(v int32) bool {
		x := float64(v) / float64(math.MaxInt32) * 8
		if math.Abs(Erf(x)+Erf(-x)) > 1e-16 {
			return false
		}
		return Erf(x) >= -1 && Erf(x) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCNDKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if e := math.Abs(CND(c.x) - c.want); e > 1e-15 {
			t.Fatalf("CND(%g) = %.17g, want %.17g", c.x, CND(c.x), c.want)
		}
	}
}

// The paper's substitution cnd(x) = (1+erf(x/sqrt2))/2 must agree with the
// direct erfc form to absolute precision (Sec. IV-A2: "this substitution
// provides the same accuracy").
func TestCNDErfSubstitution(t *testing.T) {
	for x := -8.0; x <= 8.0; x += 0.0193 {
		if e := math.Abs(CND(x) - CNDErf(x)); e > 5e-16 {
			t.Fatalf("CND vs CNDErf at %g differ by %g", x, e)
		}
	}
}

// Property: CND(x) + CND(-x) == 1 (symmetry used by call/put parity).
func TestCNDSymmetryQuick(t *testing.T) {
	f := func(v int32) bool {
		x := float64(v) / float64(math.MaxInt32) * 10
		return math.Abs(CND(x)+CND(-x)-1) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCNDMonotone(t *testing.T) {
	prev := -1.0
	for x := -10.0; x <= 10.0; x += 0.01 {
		v := CND(x)
		if v < prev {
			t.Fatalf("CND not monotone at %g", x)
		}
		prev = v
	}
}

func TestPDF(t *testing.T) {
	if e := math.Abs(PDF(0) - InvSqrt2Pi); e > 1e-16 {
		t.Fatalf("PDF(0) = %g", PDF(0))
	}
	if e := relErr(PDF(1), 0.24197072451914337, 1e-300); e > 1e-14 {
		t.Fatalf("PDF(1) = %g", PDF(1))
	}
}

func TestInvCNDRoundTrip(t *testing.T) {
	for p := 1e-12; p < 1; p = p*1.5 + 1e-4 {
		x := InvCND(p)
		if e := math.Abs(CND(x) - p); e > 1e-13*p+1e-16 {
			t.Fatalf("CND(InvCND(%g)) = %g (err %g)", p, CND(x), e)
		}
	}
}

func TestInvCNDKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
	}
	for _, c := range cases {
		if e := math.Abs(InvCND(c.p) - c.want); e > 1e-11 {
			t.Fatalf("InvCND(%g) = %.17g, want %.17g", c.p, InvCND(c.p), c.want)
		}
	}
}

func TestInvCNDSpecials(t *testing.T) {
	if !math.IsInf(InvCND(0), -1) || !math.IsInf(InvCND(1), 1) {
		t.Fatal("InvCND boundary values wrong")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(InvCND(p)) {
			t.Fatalf("InvCND(%g) should be NaN", p)
		}
	}
}

// Property: InvCND is antisymmetric about p = 1/2.
func TestInvCNDAntisymmetricQuick(t *testing.T) {
	f := func(u uint32) bool {
		p := (float64(u)/float64(math.MaxUint32))*0.98 + 0.01
		return math.Abs(InvCND(p)+InvCND(1-p)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInvCNDMoroAccuracy(t *testing.T) {
	// Moro is a ~1e-9 algorithm; verify against the high-accuracy InvCND.
	for p := 1e-6; p < 1; p += 0.00137 {
		if e := math.Abs(InvCNDMoro(p) - InvCND(p)); e > 5e-9 {
			t.Fatalf("InvCNDMoro(%g) = %g, want %g (err %g)", p, InvCNDMoro(p), InvCND(p), e)
		}
	}
}

func TestInvCNDMoroSpecials(t *testing.T) {
	if !math.IsInf(InvCNDMoro(0), -1) || !math.IsInf(InvCNDMoro(1), 1) {
		t.Fatal("InvCNDMoro boundaries wrong")
	}
	if !math.IsNaN(InvCNDMoro(-1)) || !math.IsNaN(InvCNDMoro(2)) || !math.IsNaN(InvCNDMoro(math.NaN())) {
		t.Fatal("InvCNDMoro out-of-range not NaN")
	}
}

func TestSqrt(t *testing.T) {
	if Sqrt(4) != 2 || Sqrt(2) != math.Sqrt2 {
		t.Fatal("Sqrt wrong")
	}
}

func TestArrayFunctions(t *testing.T) {
	src := []float64{0.1, 0.5, 1, 2, 3}
	dst := make([]float64, len(src))

	ExpArray(dst, src)
	for i, x := range src {
		if dst[i] != Exp(x) {
			t.Fatalf("ExpArray[%d] mismatch", i)
		}
	}
	LogArray(dst, src)
	for i, x := range src {
		if dst[i] != Log(x) {
			t.Fatalf("LogArray[%d] mismatch", i)
		}
	}
	SqrtArray(dst, src)
	for i, x := range src {
		if dst[i] != Sqrt(x) {
			t.Fatalf("SqrtArray[%d] mismatch", i)
		}
	}
	InvArray(dst, src)
	for i, x := range src {
		if dst[i] != 1/x {
			t.Fatalf("InvArray[%d] mismatch", i)
		}
	}
	ErfArray(dst, src)
	for i, x := range src {
		if dst[i] != Erf(x) {
			t.Fatalf("ErfArray[%d] mismatch", i)
		}
	}
	CNDArray(dst, src)
	for i, x := range src {
		if dst[i] != CND(x) {
			t.Fatalf("CNDArray[%d] mismatch", i)
		}
	}
}

func TestInvCNDArray(t *testing.T) {
	src := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	dst := make([]float64, len(src))
	InvCNDArray(dst, src)
	for i, p := range src {
		if dst[i] != InvCND(p) {
			t.Fatalf("InvCNDArray[%d] mismatch", i)
		}
	}
}

func TestArrayInPlace(t *testing.T) {
	buf := []float64{1, 2, 3}
	want := []float64{Exp(1), Exp(2), Exp(3)}
	ExpArray(buf, buf)
	for i := range buf {
		if buf[i] != want[i] {
			t.Fatalf("in-place ExpArray[%d] = %g, want %g", i, buf[i], want[i])
		}
	}
}

func TestAxpyArray(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	dst := make([]float64, 3)
	AxpyArray(dst, 2, x, y)
	for i := range dst {
		if dst[i] != 2*x[i]+y[i] {
			t.Fatalf("AxpyArray[%d] = %g", i, dst[i])
		}
	}
}

func TestMaxScalarArray(t *testing.T) {
	src := []float64{-1, 0, 2.5}
	dst := make([]float64, 3)
	MaxScalarArray(dst, src, 0)
	want := []float64{0, 0, 2.5}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("MaxScalarArray[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

func BenchmarkExp(b *testing.B) {
	x := 0.5
	var s float64
	for i := 0; i < b.N; i++ {
		s += Exp(x)
	}
	_ = s
}

func BenchmarkCND(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s += CND(0.3)
	}
	_ = s
}

func BenchmarkInvCND(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s += InvCND(0.3)
	}
	_ = s
}
