package ticker

import (
	"math"
	"testing"
	"time"
)

// TestDeterministicReplay: state at sequence n is a pure function of
// (seed, underlyings, n) — the property the streaming tier's
// verification hangs on. Two sources with the same seed must agree
// bit-for-bit at every tick; a replayer can also skip ahead and meet
// the original at any sequence.
func TestDeterministicReplay(t *testing.T) {
	a := NewSource(7, 16, 0.3, 0.02)
	b := NewSource(7, 16, 0.3, 0.02)
	var sa, sb State
	for i := 0; i < 200; i++ {
		a.Next(&sa)
		b.Next(&sb)
		if sa.Seq != sb.Seq {
			t.Fatalf("tick %d: seq %d != %d", i, sa.Seq, sb.Seq)
		}
		if math.Float64bits(sa.Vol) != math.Float64bits(sb.Vol) ||
			math.Float64bits(sa.Rate) != math.Float64bits(sb.Rate) {
			t.Fatalf("tick %d: vol/rate diverged", i)
		}
		for u := range sa.Spots {
			if math.Float64bits(sa.Spots[u]) != math.Float64bits(sb.Spots[u]) {
				t.Fatalf("tick %d: spot[%d] %v != %v", i, u, sa.Spots[u], sb.Spots[u])
			}
		}
	}
}

func TestSeedChangesWalk(t *testing.T) {
	a := NewSource(1, 4, 0.3, 0.02)
	b := NewSource(2, 4, 0.3, 0.02)
	var sa, sb State
	a.Next(&sa)
	b.Next(&sb)
	same := true
	for u := range sa.Spots {
		if math.Float64bits(sa.Spots[u]) != math.Float64bits(sb.Spots[u]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical first tick")
	}
}

// TestWalkStaysInDomain: however long the walk runs, every value stays
// inside the kernels' valid domain (positive spots, clamped vol/rate).
func TestWalkStaysInDomain(t *testing.T) {
	s := NewSource(3, 8, 0.3, 0.02)
	var st State
	for i := 0; i < 5000; i++ {
		s.Next(&st)
		if st.Vol < volMin || st.Vol > volMax {
			t.Fatalf("tick %d: vol %v outside [%v, %v]", i, st.Vol, volMin, volMax)
		}
		if st.Rate < rateMin || st.Rate > rateMax {
			t.Fatalf("tick %d: rate %v outside [%v, %v]", i, st.Rate, rateMin, rateMax)
		}
		for u, sp := range st.Spots {
			if !(sp > 0) || math.IsInf(sp, 0) || math.IsNaN(sp) {
				t.Fatalf("tick %d: spot[%d] = %v", i, u, sp)
			}
		}
	}
}

func TestCopyFromDeepCopies(t *testing.T) {
	src := State{Seq: 5, TimeNS: 9, Spots: []float64{1, 2, 3}, Vol: 0.4, Rate: 0.01}
	var dst State
	dst.CopyFrom(&src)
	src.Spots[0] = 99
	if dst.Spots[0] != 1 {
		t.Error("CopyFrom aliased the spots slice")
	}
	if dst.Seq != 5 || dst.TimeNS != 9 || dst.Vol != 0.4 || dst.Rate != 0.01 {
		t.Errorf("CopyFrom lost scalar fields: %+v", dst)
	}
	// Reuse path: a second copy into the same State must not reallocate.
	backing := &dst.Spots[0]
	dst.CopyFrom(&src)
	if &dst.Spots[0] != backing {
		t.Error("CopyFrom reallocated a sufficient backing array")
	}
}

// TestRunStopsAndStamps: Run ticks until stop closes, stamps a real
// TimeNS on every state, and returns (no goroutine leak).
func TestRunStopsAndStamps(t *testing.T) {
	src := NewSource(1, 2, 0.3, 0.02)
	stop := make(chan struct{})
	done := make(chan struct{})
	var n int
	var lastNS int64
	go func() {
		defer close(done)
		Run(src, time.Millisecond, stop, func(st *State) {
			n++
			lastNS = st.TimeNS
		})
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not return after stop closed")
	}
	if n == 0 {
		t.Fatal("Run produced no ticks")
	}
	if lastNS == 0 {
		t.Error("Run left TimeNS unstamped")
	}
}
