// Command finserve runs the concurrent batch-pricing server, the shard
// router that fronts a fleet of them, or the load generator.
//
//	finserve serve   -addr :8123 [-max-units N] [-fault-spec S] ...
//	finserve route   -addr :8200 [-backends u1,u2 | -replicas N] ...
//	finserve loadgen -url http://127.0.0.1:8123 [-requests N] [-mix ...] ...
//	finserve fault   -spec seed:rate:kinds [-n 4096]
//
// The serve subcommand drains cleanly on SIGTERM/SIGINT: the listener
// keeps answering with a fast 503 + Retry-After for -drain-linger (so a
// router fails requests over instead of seeing connection resets), then
// in-flight requests finish (bounded by -drain-timeout) and the process
// exits 0. -fault-spec wraps the listener in the deterministic fault
// injector for chaos runs.
//
// The route subcommand fronts N replicas with health checks, circuit
// breakers, retry/failover and optional hedging; -replicas spawns them
// as child processes of this binary and -restart-delay revives any that
// die (the chaos harness kills one mid-burst and watches the breaker
// reopen and recover).
//
// The loadgen subcommand drives a running server with a configurable
// method mix and asserts the protocol's guarantees from outside: -verify
// recomputes every 200 against the library and fails on any bit mismatch,
// -assert-codes restricts which status codes may appear, -min-count
// demands floors per code, -check-sched-frozen proves cancelled work
// stopped reaching the parallel pool, and the -assert-availability /
// -assert-max-retries / breaker assertions gate chaos runs. The e2e
// smoke and chaos gates are built from these flags.
//
// The fault subcommand prints a fault spec's canonical form, decision
// digest and per-kind counts — two invocations with the same spec must
// print identical output, which is how the chaos script proves the
// injector deterministic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"finbench"
	"finbench/internal/fault"
	"finbench/internal/serve"
	"finbench/internal/serve/loadgen"
	"finbench/internal/serve/stream"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		os.Exit(runServe(os.Args[2:]))
	case "route":
		os.Exit(runRoute(os.Args[2:]))
	case "loadgen":
		os.Exit(runLoadgen(os.Args[2:]))
	case "fault":
		os.Exit(runFault(os.Args[2:]))
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "finserve: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: finserve serve|route|loadgen|fault [flags]")
	fmt.Fprintln(os.Stderr, "run 'finserve <subcommand> -h' for flags")
}

// runFault prints the deterministic decision digest of a fault spec.
func runFault(args []string) int {
	fs := flag.NewFlagSet("finserve fault", flag.ExitOnError)
	var (
		specStr = fs.String("spec", "", "fault spec seed:rate:kinds (required)")
		n       = fs.Int("n", 4096, "decisions to digest")
	)
	_ = fs.Parse(args)
	spec, err := fault.ParseSpec(*specStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fault: %v\n", err)
		return 2
	}
	counts := make(map[fault.Kind]uint64)
	for i := uint64(0); i < uint64(*n); i++ {
		counts[spec.Decide(i)]++
	}
	fmt.Printf("spec=%s n=%d digest=%016x\n", spec, *n, spec.Digest(*n))
	for _, k := range []fault.Kind{fault.KindNone, fault.KindRefuse, fault.KindReset, fault.KindTruncate, fault.KindLatency, fault.KindLimp} {
		if c, ok := counts[k]; ok {
			fmt.Printf("  %s=%d\n", k, c)
		}
	}
	return 0
}

func runServe(args []string) int {
	fs := flag.NewFlagSet("finserve serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8123", "listen address")
		mktRate      = fs.Float64("market-rate", 0.02, "risk-free rate")
		mktVol       = fs.Float64("market-vol", 0.3, "volatility")
		maxUnits     = fs.Int64("max-units", 0, "in-flight work-unit budget (0 = default)")
		admitWait    = fs.Duration("admit-wait", 0, "max admission wait before 503 (0 = default)")
		rate         = fs.Float64("rate", 0, "request-rate limit per second (0 = off)")
		burst        = fs.Float64("burst", 0, "rate-limiter burst")
		window       = fs.Duration("coalesce-window", 0, "coalescing window (0 = default)")
		maxBatch     = fs.Int("coalesce-max-batch", 0, "flush threshold in options (0 = default)")
		profileEvery = fs.Int("profile-every", 0, "sample op mix every Nth flush (0 = default, <0 = off)")
		maxOptions   = fs.Int("max-options", 0, "max options per request (0 = default)")
		maxPaths     = fs.Int("max-paths", 0, "max Monte Carlo paths per request (0 = default)")
		maxDeadline  = fs.Duration("max-deadline", 0, "server-side deadline cap (0 = default)")
		degrade      = fs.Bool("degrade", false, "enable degrade mode under sustained shedding")
		cacheBytes   = fs.Int64("cache-bytes", 0, "content-addressed response cache byte budget (0 = off)")
		cacheTTL     = fs.Duration("cache-ttl", 0, "cache entry TTL (0 = never expire)")
		drainTO      = fs.Duration("drain-timeout", 5*time.Second, "max time to drain on SIGTERM")
		drainLinger  = fs.Duration("drain-linger", 300*time.Millisecond, "how long the listener keeps answering fast 503s before it stops accepting")
		faultSpec    = fs.String("fault-spec", "", "deterministic fault injection seed:rate:kinds (chaos runs)")

		streamOn       = fs.Bool("stream", false, "enable the GET /stream SSE Greeks feed")
		streamUniverse = fs.Int("stream-universe", 0, "streaming contract-universe size (0 = default)")
		streamUnder    = fs.Int("stream-underlyings", 0, "streaming underlying count (0 = default)")
		streamSeed     = fs.Uint64("stream-seed", 0, "streaming feed seed (0 = default)")
		streamInterval = fs.Duration("stream-interval", 0, "market tick interval (0 = default)")
		streamBudget   = fs.Duration("stream-budget", 0, "per-tick repricing budget (0 = tick interval)")
		streamSpotThr  = fs.Float64("stream-spot-threshold", 0, "relative spot move that dirties a contract (0 = default)")
		streamSubBuf   = fs.Int("stream-sub-buffer", 0, "per-subscriber event buffer (0 = default)")
		streamWriteTO  = fs.Duration("stream-write-timeout", 0, "per-frame write deadline before a stalled client is dropped (0 = default)")
	)
	_ = fs.Parse(args)

	var inj *fault.Injector
	if *faultSpec != "" {
		spec, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "finserve: %v\n", err)
			return 2
		}
		inj = fault.NewInjector(spec)
		fmt.Fprintf(os.Stderr, "finserve: fault injection %s (digest %016x over 4096)\n", spec, spec.Digest(4096))
	}

	cfg := serve.Config{
		Market:           finbench.Market{Rate: *mktRate, Volatility: *mktVol},
		MaxUnits:         *maxUnits,
		AdmitWait:        *admitWait,
		Rate:             *rate,
		Burst:            *burst,
		CoalesceWindow:   *window,
		CoalesceMaxBatch: *maxBatch,
		ProfileEvery:     *profileEvery,
		MaxOptions:       *maxOptions,
		MaxPaths:         *maxPaths,
		MaxDeadline:      *maxDeadline,
		Degrade:          *degrade,
		CacheBytes:       *cacheBytes,
		CacheTTL:         *cacheTTL,
	}
	if *streamOn {
		cfg.Stream = &stream.Config{
			Universe:         *streamUniverse,
			Underlyings:      *streamUnder,
			Seed:             *streamSeed,
			Interval:         *streamInterval,
			Budget:           *streamBudget,
			SpotThreshold:    *streamSpotThr,
			SubscriberBuffer: *streamSubBuf,
		}
		cfg.StreamWriteTimeout = *streamWriteTO
	}
	s := serve.New(cfg)
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finserve: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(fault.NewListener(ln, inj)) }()
	fmt.Fprintf(os.Stderr, "finserve: listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "finserve: %v\n", err)
		return 1
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "finserve: %v, draining (linger %v, timeout %v)\n", got, *drainLinger, *drainTO)
	}

	// Ordered shutdown: first answer new requests with a fast 503 +
	// Retry-After while routers re-route (StartDrain), only then stop
	// accepting. Closing the listener immediately would race in-flight
	// connection setups into resets, which a router counts as a crash.
	start := time.Now()
	s.StartDrain()
	hs.SetKeepAlivesEnabled(false)
	time.Sleep(*drainLinger)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drainErr := s.Drain(ctx)
	shutErr := hs.Shutdown(ctx)
	if drainErr != nil || (shutErr != nil && !errors.Is(shutErr, context.DeadlineExceeded)) {
		fmt.Fprintf(os.Stderr, "finserve: drain incomplete after %v (drain=%v shutdown=%v)\n",
			time.Since(start), drainErr, shutErr)
		return 1
	}
	fmt.Fprintf(os.Stderr, "finserve: drained in %v\n", time.Since(start))
	return 0
}

func runLoadgen(args []string) int {
	fs := flag.NewFlagSet("finserve loadgen", flag.ExitOnError)
	var (
		url          = fs.String("url", "http://127.0.0.1:8123", "server base URL")
		requests     = fs.Int("requests", 64, "total requests")
		concurrency  = fs.Int("concurrency", 4, "client workers")
		mixStr       = fs.String("mix", "closed-form=1", "method mix, e.g. closed-form=8,monte-carlo=1,greeks=2")
		optsPerReq   = fs.Int("options", 8, "options per request")
		deadlineMS   = fs.Int64("deadline-ms", 0, "deadline_ms sent with each request (0 = none)")
		mcPaths      = fs.Int("mc-paths", 0, "config.mc_paths override")
		binSteps     = fs.Int("binomial-steps", 0, "config.binomial_steps override")
		gridPoints   = fs.Int("grid-points", 0, "config.grid_points override")
		timeSteps    = fs.Int("time-steps", 0, "config.time_steps override")
		seed         = fs.Int64("seed", 1, "option-stream seed")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-request HTTP timeout")
		verify       = fs.Bool("verify", false, "recompute every 200 against the library; fail on mismatch")
		wireFmt      = fs.String("wire", "json", "closed-form /price framing: json or columnar (binary frame; with -verify each columnar 200 is cross-checked bit-identical against a JSON replay)")
		assertCodes  = fs.String("assert-codes", "", "comma list of the only status codes allowed, e.g. 200,429,503")
		minCount     = fs.String("min-count", "", "minimum responses per code, e.g. 200:40,503:1")
		schedFrozen  = fs.Bool("check-sched-frozen", false, "after the run, require the pool scheduler counters to stop advancing")
		schedGap     = fs.Duration("sched-gap", 300*time.Millisecond, "observation gap for -check-sched-frozen")
		zipfS        = fs.Float64("zipf", -1, "Zipf contract-mix skew s (>= 0; 0 = uniform over the pool); requires a batch pool")
		zipfPool     = fs.Int("zipf-pool", 0, "pre-generated batch pool size for -zipf (0 = off)")
		minHitRate   = fs.Float64("assert-min-hit-rate", -1, "minimum observed cache hit rate over cache-considered requests (-1 = no check)")
		minCollapsed = fs.Int("assert-min-collapsed", 0, "require at least N responses served by singleflight collapse")
		availPct     = fs.Float64("assert-availability", -1, "minimum percent of requests answered 200 (chaos floor; transport errors count against it instead of failing the run)")
		maxRetries   = fs.Int("assert-max-retries", -1, "maximum routed retries across the run (-1 = no limit)")
		minBrkOpens  = fs.Uint64("assert-min-breaker-opens", 0, "require at least N breaker opens on the router's /statsz")
		brkClosed    = fs.Bool("assert-breakers-closed", false, "require every router breaker closed after the run")
		scenarioMode = fs.Bool("scenario", false, "drive POST /scenario instead of the /price mix; -options sets the portfolio size and with -verify every 200 must be byte-identical to the library's scenario engine")
		scenGrid     = fs.String("scenario-grid", "5x3x3", "scenario shock grid as SPOTxVOLxRATE counts")
		scenGens     = fs.Int("scenario-gens", 0, "scenarios per generator (adds one heston, jump and basket generator each; 0 = grid only)")
		minScattered = fs.Int("assert-min-scattered", 0, "require at least N scenario 200s split across replicas by the router")

		streamMode    = fs.Bool("stream", false, "drive GET /stream SSE subscribers instead of the request mix; with -verify every pushed entry is recomputed cold from its echoed inputs and must bit-match")
		streamClients = fs.Int("stream-clients", 4, "concurrent SSE subscribers")
		streamSlow    = fs.Int("stream-slow", 0, "additional deliberately slow subscribers; each must observe a resync snapshot")
		streamPause   = fs.Duration("stream-slow-pause", 0, "slow subscriber's one-time stall (0 = default; keep under the server write timeout)")
		streamFor     = fs.Duration("stream-duration", 3*time.Second, "how long each subscriber listens")
		streamUni     = fs.Int("stream-universe", 0, "server's streaming universe size, for subscription ranges (0 = default)")
		streamSub     = fs.Int("stream-sub", 0, "contracts per subscription (0 = universe/4)")
		maxStaleMS    = fs.Float64("assert-max-staleness-ms", -1, "maximum p99 tick-to-receive staleness in ms (-1 = no check; same-host clocks assumed)")
		minEvents     = fs.Uint64("assert-min-events", 0, "require at least N snapshot+greeks events across all subscribers")
	)
	_ = fs.Parse(args)

	if *streamMode {
		return runStreamLoadgen(streamLoadgenOpts{
			url: *url, clients: *streamClients, slow: *streamSlow,
			pause: *streamPause, duration: *streamFor,
			universe: *streamUni, sub: *streamSub,
			seed: *seed, verify: *verify,
			maxStaleMS: *maxStaleMS, minEvents: *minEvents,
		})
	}

	mix, err := loadgen.ParseMix(*mixStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}
	allow, err := loadgen.ParseCodes(*assertCodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}
	mins, err := loadgen.ParseCounts(*minCount)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}

	if *zipfS >= 0 && *zipfPool <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -zipf requires -zipf-pool > 0")
		return 2
	}
	zs := *zipfS
	if zs < 0 {
		zs = 0
	}
	grid, err := loadgen.ParseScenarioGrid(*scenGrid)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}
	rep, err := loadgen.Run(loadgen.Options{
		BaseURL:           *url,
		Concurrency:       *concurrency,
		Requests:          *requests,
		Mix:               mix,
		OptionsPerRequest: *optsPerReq,
		DeadlineMS:        *deadlineMS,
		Config: serve.WireConfig{
			MCPaths:       *mcPaths,
			BinomialSteps: *binSteps,
			GridPoints:    *gridPoints,
			TimeSteps:     *timeSteps,
		},
		Verify:   *verify,
		Wire:     *wireFmt,
		Seed:     *seed,
		Timeout:  *timeout,
		ZipfPool: *zipfPool,
		ZipfS:    zs,

		Scenario:     *scenarioMode,
		ScenarioGrid: grid,
		ScenarioGens: *scenGens,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	fmt.Println(rep)

	failed := false
	fail := func(format string, a ...any) {
		failed = true
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: "+format+"\n", a...)
	}
	if len(rep.Errors) > 0 && *availPct < 0 {
		// Under a chaos availability floor, transport errors are the
		// expected casualties and are judged by the floor instead.
		fail("transport errors: %v", rep.Errors)
	}
	if *verify && rep.Mismatch > 0 {
		fail("%d results did not bit-match the library", rep.Mismatch)
	}
	if *verify && rep.Verified == 0 && rep.Count(200) > 0 {
		fail("verification requested but nothing was verified")
	}
	if *wireFmt == "columnar" && rep.Columnar == 0 && rep.Count(200) > 0 {
		fail("-wire columnar requested but no 200 arrived over the columnar framing")
	}
	if *minScattered > 0 {
		if rep.Scattered < *minScattered {
			fail("router scattered %d scenario responses, want >= %d", rep.Scattered, *minScattered)
		} else {
			fmt.Printf("router scattered %d scenario responses (floor %d)\n", rep.Scattered, *minScattered)
		}
	}
	if len(allow) > 0 {
		for code, n := range rep.Codes {
			if n > 0 && !allow[code] {
				fail("status %d seen %d times but not in -assert-codes", code, n)
			}
		}
	}
	for code, want := range mins {
		if got := rep.Count(code); got < want {
			fail("status %d: got %d, want >= %d", code, got, want)
		}
	}
	if *availPct >= 0 {
		if got := rep.Availability() * 100; got < *availPct {
			fail("availability %.2f%% below the %.2f%% floor", got, *availPct)
		} else {
			fmt.Printf("availability %.2f%% (floor %.2f%%)\n", got, *availPct)
		}
	}
	if *maxRetries >= 0 && rep.Retries > *maxRetries {
		fail("%d retries exceed -assert-max-retries %d", rep.Retries, *maxRetries)
	}
	if *minHitRate >= 0 {
		if got := rep.HitRate(); got < *minHitRate {
			fail("cache hit rate %.3f below the %.3f floor", got, *minHitRate)
		} else {
			fmt.Printf("cache hit rate %.3f (floor %.3f)\n", got, *minHitRate)
		}
	}
	if *minCollapsed > 0 {
		if rep.CacheCollapsed < *minCollapsed {
			fail("singleflight collapsed %d responses, want >= %d", rep.CacheCollapsed, *minCollapsed)
		} else {
			fmt.Printf("singleflight collapsed %d responses (floor %d)\n", rep.CacheCollapsed, *minCollapsed)
		}
	}
	if *minBrkOpens > 0 || *brkClosed {
		opens, notClosed, err := loadgen.RouterBreakers(*url)
		if err != nil {
			fail("breaker assertion: %v", err)
		} else {
			if opens < *minBrkOpens {
				fail("breaker opens %d below required %d", opens, *minBrkOpens)
			}
			if *brkClosed && notClosed > 0 {
				fail("%d breakers not closed after the run", notClosed)
			}
			if opens >= *minBrkOpens && (!*brkClosed || notClosed == 0) {
				fmt.Printf("breakers: opens=%d not_closed=%d\n", opens, notClosed)
			}
		}
	}
	if *schedFrozen {
		frozen, moved, err := loadgen.SchedFrozen(*url, *schedGap)
		if err != nil {
			fail("sched-frozen check: %v", err)
		} else if !frozen {
			fail("scheduler counters still advancing after cancellation: %s", moved)
		} else {
			fmt.Println("sched counters frozen: cancelled work is not reaching the pool")
		}
	}
	if failed {
		return 1
	}
	fmt.Println("loadgen: PASS")
	return 0
}

// streamLoadgenOpts carries the -stream flag set into runStreamLoadgen.
type streamLoadgenOpts struct {
	url        string
	clients    int
	slow       int
	pause      time.Duration
	duration   time.Duration
	universe   int
	sub        int
	seed       int64
	verify     bool
	maxStaleMS float64
	minEvents  uint64
}

// runStreamLoadgen drives the SSE streaming mode and applies its
// assertions: bit-exact verification, staleness ceiling, event floor, and
// the slow-subscriber resync contract.
func runStreamLoadgen(o streamLoadgenOpts) int {
	rep, err := loadgen.StreamRun(loadgen.StreamOptions{
		BaseURL:     o.url,
		Clients:     o.clients,
		Duration:    o.duration,
		Universe:    o.universe,
		SubSize:     o.sub,
		Seed:        o.seed,
		Verify:      o.verify,
		SlowClients: o.slow,
		SlowPause:   o.pause,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	fmt.Println(rep)

	failed := false
	fail := func(format string, a ...any) {
		failed = true
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: "+format+"\n", a...)
	}
	if len(rep.Errors) > 0 {
		fail("stream errors: %v", rep.Errors)
	}
	if o.verify && rep.Mismatch > 0 {
		fail("%d streamed entries did not bit-match a cold repricing", rep.Mismatch)
	}
	if o.verify && rep.Verified == 0 && rep.Events() > 0 {
		fail("verification requested but nothing was verified")
	}
	if o.minEvents > 0 && rep.Events() < o.minEvents {
		fail("received %d events, want >= %d", rep.Events(), o.minEvents)
	}
	if o.maxStaleMS >= 0 {
		if rep.StalenessP99MS > o.maxStaleMS {
			fail("staleness p99 %.1fms above the %.1fms ceiling", rep.StalenessP99MS, o.maxStaleMS)
		} else {
			fmt.Printf("staleness p99 %.1fms (ceiling %.1fms)\n", rep.StalenessP99MS, o.maxStaleMS)
		}
	}
	if o.slow > 0 && rep.SlowResynced < o.slow {
		fail("%d of %d slow subscribers observed a resync snapshot", rep.SlowResynced, o.slow)
	}
	if failed {
		return 1
	}
	fmt.Println("loadgen: PASS")
	return 0
}
