package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// coverage records which indices fn visited and detects overlap.
func coverage(t *testing.T, n int, launch func(fn func(lo, hi int))) {
	t.Helper()
	visits := make([]int32, n)
	launch(func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000, 1001} {
		coverage(t, n, func(fn func(lo, hi int)) { For(n, fn) })
	}
}

func TestForWorkersCoversExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 16, 100} {
		coverage(t, 97, func(fn func(lo, hi int)) { ForWorkers(97, w, fn) })
	}
}

func TestForDynamicCoversExactlyOnce(t *testing.T) {
	for _, grain := range []int{1, 3, 10, 97, 200} {
		coverage(t, 97, func(fn func(lo, hi int)) { ForDynamic(97, grain, fn) })
	}
}

func TestForDynamicZeroGrain(t *testing.T) {
	coverage(t, 10, func(fn func(lo, hi int)) { ForDynamic(10, 0, fn) })
}

func TestForIndexedCoversExactlyOnce(t *testing.T) {
	coverage(t, 131, func(fn func(lo, hi int)) {
		ForIndexed(131, func(_, lo, hi int) { fn(lo, hi) })
	})
}

func TestForIndexedWorkerIdsDense(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	ForIndexed(1000, func(worker, lo, hi int) {
		mu.Lock()
		if seen[worker] {
			mu.Unlock()
			t.Errorf("worker id %d reused", worker)
			return
		}
		seen[worker] = true
		mu.Unlock()
	})
	if len(seen) == 0 {
		t.Fatal("no workers ran")
	}
	for id := range seen {
		if id < 0 || id >= len(seen) {
			t.Fatalf("worker id %d not dense in [0,%d)", id, len(seen))
		}
	}
}

func TestForEdgeCases(t *testing.T) {
	For(0, func(lo, hi int) { t.Error("called for n=0") })
	For(-5, func(lo, hi int) { t.Error("called for n<0") })
	For(10, nil) // must not panic
	ForDynamic(0, 4, func(lo, hi int) { t.Error("called for n=0") })
	ForIndexed(0, func(w, lo, hi int) { t.Error("called for n=0") })
}

func TestReduceFloat64Sum(t *testing.T) {
	// Sum of 1..n.
	n := 100000
	got := ReduceFloat64(n, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i + 1)
		}
		return s
	})
	want := float64(n) * float64(n+1) / 2
	if got != want {
		t.Fatalf("ReduceFloat64 = %g, want %g", got, want)
	}
}

func TestReduceFloat64Empty(t *testing.T) {
	if got := ReduceFloat64(0, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Fatalf("empty reduce = %g", got)
	}
}

func TestReduceDeterministic(t *testing.T) {
	// Partial sums are combined in index order, so repeated runs agree
	// bit-for-bit.
	f := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += 1.0 / float64(i+1)
		}
		return s
	}
	a := ReduceFloat64(12345, f)
	for r := 0; r < 5; r++ {
		if b := ReduceFloat64(12345, f); b != a {
			t.Fatalf("nondeterministic reduce: %g != %g", b, a)
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatal("Workers < 1")
	}
}

// Property: For visits each index exactly once for arbitrary n.
func TestForCoverageQuick(t *testing.T) {
	f := func(nn uint16) bool {
		n := int(nn)%2000 + 1
		visits := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for _, v := range visits {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// withProcs temporarily raises GOMAXPROCS so the multi-worker paths run
// even on single-core machines (goroutines interleave regardless).
func withProcs(t *testing.T, n int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

func TestForDynamicMultiWorker(t *testing.T) {
	withProcs(t, 4, func() {
		coverage(t, 1000, func(fn func(lo, hi int)) { ForDynamic(1000, 7, fn) })
		coverage(t, 10, func(fn func(lo, hi int)) { ForDynamic(10, 3, fn) })
	})
}

func TestForIndexedMultiWorker(t *testing.T) {
	withProcs(t, 4, func() {
		coverage(t, 1000, func(fn func(lo, hi int)) {
			ForIndexed(1000, func(_, lo, hi int) { fn(lo, hi) })
		})
		var mu sync.Mutex
		ids := map[int]bool{}
		ForIndexed(1000, func(worker, lo, hi int) {
			mu.Lock()
			ids[worker] = true
			mu.Unlock()
		})
		if len(ids) < 2 {
			t.Fatalf("expected multiple workers, got %d", len(ids))
		}
	})
}

func TestReduceFloat64MultiWorker(t *testing.T) {
	withProcs(t, 4, func() {
		n := 100000
		got := ReduceFloat64(n, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i + 1)
			}
			return s
		})
		want := float64(n) * float64(n+1) / 2
		if got != want {
			t.Fatalf("multi-worker reduce = %g, want %g", got, want)
		}
	})
}

func TestForMultiWorker(t *testing.T) {
	withProcs(t, 8, func() {
		coverage(t, 999, func(fn func(lo, hi int)) { For(999, fn) })
	})
}
