package wire

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// Append-style JSON encoder for the 200 bodies of /price and /greeks.
// The output is byte-identical to encoding/json's Encoder (HTML-escaped
// strings, the float formatting quirks, the trailing newline) — pinned by
// golden tests — so the response cache's stored bytes, the
// bit-reproducibility contract, and every existing client parse are
// untouched; only the reflection walk and its allocations are gone.

// AppendPriceResponse appends r encoded exactly as
// json.NewEncoder(w).Encode(r) would, returning ok=false (with dst
// unmodified beyond its original length) when a value is outside JSON's
// domain (NaN/Inf); the caller then falls back to encoding/json for
// reference behavior.
func AppendPriceResponse(dst []byte, r *PriceResponse) ([]byte, bool) {
	b := append(dst, `{"results":[`...)
	var ok bool
	for i := range r.Results {
		res := &r.Results[i]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"price":`...)
		if b, ok = appendJSONFloat(b, res.Price); !ok {
			return dst, false
		}
		// finlint:ignore floateq omitempty semantics: encoding/json omits exact zero
		if res.StdErr != 0 {
			b = append(b, `,"std_err":`...)
			if b, ok = appendJSONFloat(b, res.StdErr); !ok {
				return dst, false
			}
		}
		b = append(b, '}')
	}
	b = append(b, `],"method":`...)
	b = appendJSONString(b, r.Method)
	b = append(b, `,"config":`...)
	b = appendConfig(b, &r.Config)
	b = append(b, `,"engine":`...)
	b = appendJSONString(b, r.Engine)
	if r.Degraded {
		b = append(b, `,"degraded":true`...)
	}
	if r.Coalesced {
		b = append(b, `,"coalesced":true`...)
	}
	if r.BatchOptions != 0 {
		b = append(b, `,"batch_options":`...)
		b = strconv.AppendInt(b, int64(r.BatchOptions), 10)
	}
	b = append(b, `,"elapsed_us":`...)
	b = strconv.AppendInt(b, r.ElapsedUS, 10)
	return append(b, '}', '\n'), true
}

// AppendGreeksResponse appends r exactly as encoding/json would.
func AppendGreeksResponse(dst []byte, r *GreeksResponse) ([]byte, bool) {
	b := append(dst, `{"results":[`...)
	var ok bool
	for i := range r.Results {
		g := &r.Results[i]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"delta":`...)
		if b, ok = appendJSONFloat(b, g.Delta); !ok {
			return dst, false
		}
		b = append(b, `,"gamma":`...)
		if b, ok = appendJSONFloat(b, g.Gamma); !ok {
			return dst, false
		}
		b = append(b, `,"vega":`...)
		if b, ok = appendJSONFloat(b, g.Vega); !ok {
			return dst, false
		}
		b = append(b, `,"theta":`...)
		if b, ok = appendJSONFloat(b, g.Theta); !ok {
			return dst, false
		}
		b = append(b, `,"rho":`...)
		if b, ok = appendJSONFloat(b, g.Rho); !ok {
			return dst, false
		}
		b = append(b, '}')
	}
	b = append(b, `],"elapsed_us":`...)
	b = strconv.AppendInt(b, r.ElapsedUS, 10)
	return append(b, '}', '\n'), true
}

// appendConfig appends the config object with encoding/json's omitempty
// semantics: zero fields vanish, an all-zero config is "{}".
func appendConfig(b []byte, c *Config) []byte {
	b = append(b, '{')
	n := len(b)
	if c.BinomialSteps != 0 {
		b = append(b, `"binomial_steps":`...)
		b = strconv.AppendInt(b, int64(c.BinomialSteps), 10)
	}
	if c.GridPoints != 0 {
		if len(b) > n {
			b = append(b, ',')
		}
		b = append(b, `"grid_points":`...)
		b = strconv.AppendInt(b, int64(c.GridPoints), 10)
	}
	if c.TimeSteps != 0 {
		if len(b) > n {
			b = append(b, ',')
		}
		b = append(b, `"time_steps":`...)
		b = strconv.AppendInt(b, int64(c.TimeSteps), 10)
	}
	if c.MCPaths != 0 {
		if len(b) > n {
			b = append(b, ',')
		}
		b = append(b, `"mc_paths":`...)
		b = strconv.AppendInt(b, int64(c.MCPaths), 10)
	}
	if c.Seed != 0 {
		if len(b) > n {
			b = append(b, ',')
		}
		b = append(b, `"seed":`...)
		b = strconv.AppendUint(b, c.Seed, 10)
	}
	return append(b, '}')
}

// appendJSONFloat appends f with encoding/json's exact float formatting:
// shortest representation, 'f' form except for magnitudes below 1e-6 or
// at/above 1e21 which use 'e' form with a one-digit-minimum exponent
// (e-09 becomes e-9). NaN and infinities return ok=false, mirroring
// encoding/json's UnsupportedValueError.
func appendJSONFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	// finlint:ignore floateq exact threshold comparison replicated from encoding/json
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		n := len(b)
		if n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

var jsonHex = "0123456789abcdef"

// appendJSONString appends s quoted with encoding/json's default
// escaping: control characters, quotes, backslashes, the HTML characters
// <, >, &, the line separators U+2028/U+2029, and invalid UTF-8 (replaced
// with U+FFFD).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
