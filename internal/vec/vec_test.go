package vec

import (
	"math"
	"testing"
	"testing/quick"

	"finbench/internal/mathx"
	"finbench/internal/perf"
)

func v8(xs ...float64) Vec {
	var v Vec
	copy(v.X[:], xs)
	return v
}

func TestNewValidWidths(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		c := New(w, nil)
		if c.W != w {
			t.Fatalf("New(%d).W = %d", w, c.W)
		}
	}
}

func TestNewInvalidWidthPanics(t *testing.T) {
	for _, w := range []int{0, 3, 5, 16, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", w)
				}
			}()
			New(w, nil)
		}()
	}
}

func TestNewSetsCounterWidth(t *testing.T) {
	var cnt perf.Counts
	New(8, &cnt)
	if cnt.Width != 8 {
		t.Fatalf("counter width = %d, want 8", cnt.Width)
	}
	// Does not clobber an existing width.
	cnt2 := perf.Counts{Width: 4}
	New(8, &cnt2)
	if cnt2.Width != 4 {
		t.Fatalf("counter width clobbered: %d", cnt2.Width)
	}
}

func TestBroadcastRespectsWidth(t *testing.T) {
	c := New(4, nil)
	v := c.Broadcast(3.5)
	for i := 0; i < 4; i++ {
		if v.X[i] != 3.5 {
			t.Fatalf("lane %d = %g", i, v.X[i])
		}
	}
	for i := 4; i < MaxWidth; i++ {
		if v.X[i] != 0 {
			t.Fatalf("dead lane %d written: %g", i, v.X[i])
		}
	}
}

func TestIota(t *testing.T) {
	c := New(8, nil)
	v := c.Iota(10, 2)
	for i := 0; i < 8; i++ {
		if v.X[i] != 10+2*float64(i) {
			t.Fatalf("Iota lane %d = %g", i, v.X[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	c := New(8, nil)
	a := c.Iota(1, 1) // 1..8
	b := c.Broadcast(2)
	if got := c.Add(a, b); got.X[7] != 10 || got.X[0] != 3 {
		t.Fatalf("Add = %v", got)
	}
	if got := c.Sub(a, b); got.X[0] != -1 {
		t.Fatalf("Sub = %v", got)
	}
	if got := c.Mul(a, b); got.X[3] != 8 {
		t.Fatalf("Mul = %v", got)
	}
	if got := c.Div(a, b); got.X[1] != 1 {
		t.Fatalf("Div = %v", got)
	}
	if got := c.Neg(a); got.X[2] != -3 {
		t.Fatalf("Neg = %v", got)
	}
}

func TestFMA(t *testing.T) {
	c := New(4, nil)
	a := c.Broadcast(2)
	b := c.Broadcast(3)
	acc := c.Broadcast(1)
	got := c.FMA(a, b, acc)
	for i := 0; i < 4; i++ {
		if got.X[i] != 7 {
			t.Fatalf("FMA lane %d = %g", i, got.X[i])
		}
	}
}

func TestMaxMin(t *testing.T) {
	c := New(4, nil)
	a := v8(1, 5, 3, 7)
	b := v8(2, 4, 3, 8)
	if got := c.Max(a, b); got != v8(2, 5, 3, 8) {
		t.Fatalf("Max = %v", got)
	}
	if got := c.Min(a, b); got != v8(1, 4, 3, 7) {
		t.Fatalf("Min = %v", got)
	}
}

func TestCmpBlend(t *testing.T) {
	c := New(4, nil)
	a := v8(1, 5, 3, 7)
	b := v8(2, 4, 3, 8)
	m := c.CmpGT(a, b)
	if m != 0b0010 {
		t.Fatalf("CmpGT mask = %04b", m)
	}
	got := c.Blend(m, a, b)
	if got != v8(2, 5, 3, 8) {
		t.Fatalf("Blend = %v", got)
	}
}

func TestMaskSet(t *testing.T) {
	m := Mask(0b1010)
	if m.Set(0) || !m.Set(1) || m.Set(2) || !m.Set(3) {
		t.Fatalf("Mask.Set wrong for %04b", m)
	}
}

func TestLoadStore(t *testing.T) {
	c := New(4, nil)
	s := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	v := c.Load(s, 4)
	if v.X[0] != 4 || v.X[3] != 7 {
		t.Fatalf("Load = %v", v)
	}
	u := c.LoadU(s, 1)
	if u.X[0] != 1 || u.X[3] != 4 {
		t.Fatalf("LoadU = %v", u)
	}
	dst := make([]float64, 8)
	c.Store(dst, 4, v)
	if dst[4] != 4 || dst[7] != 7 || dst[0] != 0 {
		t.Fatalf("Store wrote %v", dst)
	}
}

func TestGatherScatterStride(t *testing.T) {
	c := New(4, nil)
	// AOS with stride 3: field at offset 1.
	aos := []float64{0, 10, 0, 1, 11, 0, 2, 12, 0, 3, 13, 0}
	v := c.GatherStride(aos, 1, 3)
	if v != v8(10, 11, 12, 13) {
		t.Fatalf("GatherStride = %v", v)
	}
	c.ScatterStride(aos, 2, 3, v8(100, 101, 102, 103))
	if aos[2] != 100 || aos[5] != 101 || aos[11] != 103 {
		t.Fatalf("ScatterStride wrote %v", aos)
	}
}

func TestGatherIdx(t *testing.T) {
	c := New(4, nil)
	s := []float64{10, 20, 30, 40, 50}
	v := c.GatherIdx(s, []int{4, 0, 2, 2})
	if v != v8(50, 10, 30, 30) {
		t.Fatalf("GatherIdx = %v", v)
	}
}

func TestMove(t *testing.T) {
	c := New(8, nil)
	a := c.Iota(0, 1)
	if got := c.Move(a); got != a {
		t.Fatalf("Move = %v", got)
	}
}

func TestReduceAdd(t *testing.T) {
	c := New(8, nil)
	if got := c.ReduceAdd(c.Iota(1, 1)); got != 36 {
		t.Fatalf("ReduceAdd = %g", got)
	}
	c4 := New(4, nil)
	if got := c4.ReduceAdd(c4.Iota(1, 1)); got != 10 {
		t.Fatalf("ReduceAdd w=4 = %g", got)
	}
}

func TestReduceMax(t *testing.T) {
	c := New(4, nil)
	if got := c.ReduceMax(v8(3, 9, 1, 7)); got != 9 {
		t.Fatalf("ReduceMax = %g", got)
	}
}

func TestTranscendentalsMatchScalar(t *testing.T) {
	c := New(8, nil)
	in := v8(0.1, 0.5, 1, 1.5, 2, 2.5, 3, 0.01)
	checks := []struct {
		name   string
		got    Vec
		scalar func(float64) float64
	}{
		{"Exp", c.Exp(in), mathx.Exp},
		{"Log", c.Log(in), mathx.Log},
		{"Sqrt", c.Sqrt(in), mathx.Sqrt},
		{"Erf", c.Erf(in), mathx.Erf},
		{"CND", c.CND(in), mathx.CND},
	}
	for _, ck := range checks {
		for i := 0; i < 8; i++ {
			if ck.got.X[i] != ck.scalar(in.X[i]) {
				t.Fatalf("%s lane %d: %g != %g", ck.name, i, ck.got.X[i], ck.scalar(in.X[i]))
			}
		}
	}
	p := v8(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
	q := c.InvCND(p)
	for i := 0; i < 8; i++ {
		if q.X[i] != mathx.InvCND(p.X[i]) {
			t.Fatalf("InvCND lane %d mismatch", i)
		}
	}
}

func TestCounting(t *testing.T) {
	var cnt perf.Counts
	c := New(8, &cnt)
	a := c.Broadcast(1) // misc 1
	b := c.Broadcast(2) // misc 2
	_ = c.Add(a, b)     // add 1
	_ = c.Mul(a, b)     // mul 1
	_ = c.FMA(a, b, a)  // fma 1
	_ = c.Exp(a)        // exp 8 (per element)
	s := make([]float64, 16)
	_ = c.Load(s, 0)            // load 1
	_ = c.LoadU(s, 1)           // loadu 1
	c.Store(s, 0, a)            // store 1
	_ = c.GatherStride(s, 0, 2) // near gather 1 (spans 2 lines)
	c.ScatterStride(s, 0, 2, a) // near scatter 1
	big := make([]float64, 80)
	_ = c.GatherStride(big, 0, 8) // far gather 1 (one line per lane)
	c.ScatterStride(big, 0, 8, a) // far scatter 1
	_ = c.ReduceAdd(a)            // add 3, misc 3 (log2(8) steps)
	if cnt.Get(perf.OpVecMisc) != 2+3 {
		t.Errorf("misc = %d, want 5", cnt.Get(perf.OpVecMisc))
	}
	if cnt.Get(perf.OpVecAdd) != 1+3 {
		t.Errorf("add = %d, want 4", cnt.Get(perf.OpVecAdd))
	}
	if cnt.Get(perf.OpVecMul) != 1 || cnt.Get(perf.OpVecFMA) != 1 {
		t.Errorf("mul/fma = %d/%d", cnt.Get(perf.OpVecMul), cnt.Get(perf.OpVecFMA))
	}
	if cnt.Get(perf.OpExp) != 8 {
		t.Errorf("exp = %d, want 8", cnt.Get(perf.OpExp))
	}
	if cnt.Get(perf.OpVecLoad) != 1 || cnt.Get(perf.OpVecLoadU) != 1 || cnt.Get(perf.OpVecStore) != 1 {
		t.Errorf("load/loadu/store = %d/%d/%d", cnt.Get(perf.OpVecLoad), cnt.Get(perf.OpVecLoadU), cnt.Get(perf.OpVecStore))
	}
	if cnt.Get(perf.OpGatherNear) != 1 || cnt.Get(perf.OpScatterNear) != 1 {
		t.Errorf("near gather/scatter = %d/%d", cnt.Get(perf.OpGatherNear), cnt.Get(perf.OpScatterNear))
	}
	if cnt.Get(perf.OpGather) != 1 || cnt.Get(perf.OpScatter) != 1 {
		t.Errorf("far gather/scatter = %d/%d", cnt.Get(perf.OpGather), cnt.Get(perf.OpScatter))
	}
}

func TestCountingNilSafe(t *testing.T) {
	c := New(4, nil)
	// Must not panic anywhere with a nil counter.
	a := c.Broadcast(1)
	_ = c.Add(a, a)
	_ = c.Exp(a)
	_ = c.ReduceAdd(a)
}

// Property: vector Add agrees with scalar addition on every active lane and
// leaves dead lanes at zero.
func TestAddLanewiseQuick(t *testing.T) {
	c := New(4, nil)
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 float64) bool {
		a := v8(a0, a1, a2, a3)
		b := v8(b0, b1, b2, b3)
		got := c.Add(a, b)
		for i := 0; i < 4; i++ {
			want := a.X[i] + b.X[i]
			if got.X[i] != want && !(math.IsNaN(got.X[i]) && math.IsNaN(want)) {
				return false
			}
		}
		return got.X[4] == 0 && got.X[7] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FMA(a,b,acc) == Mul(a,b)+acc exactly in our software model
// (no extra rounding is modelled; lanes are evaluated with Go's float64).
func TestFMAConsistentQuick(t *testing.T) {
	c := New(8, nil)
	f := func(a, b, acc float64) bool {
		va, vb, vacc := c.Broadcast(a), c.Broadcast(b), c.Broadcast(acc)
		got := c.FMA(va, vb, vacc)
		want := a*b + acc
		return got.X[0] == want || (math.IsNaN(got.X[0]) && math.IsNaN(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Blend(CmpGT(a,b), a, b) == Max(a,b) for non-NaN inputs.
func TestMaxViaBlendQuick(t *testing.T) {
	c := New(4, nil)
	f := func(a0, a1, b0, b1 float64) bool {
		if math.IsNaN(a0) || math.IsNaN(a1) || math.IsNaN(b0) || math.IsNaN(b1) {
			return true
		}
		a := v8(a0, a1, a0, a1)
		b := v8(b0, b1, b1, b0)
		return c.Blend(c.CmpGT(a, b), a, b) == c.Max(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadStoreRev(t *testing.T) {
	c := New(4, nil)
	s := []float64{0, 1, 2, 3, 4, 5}
	v := c.LoadRev(s, 1)
	if v != v8(4, 3, 2, 1) {
		t.Fatalf("LoadRev = %v", v)
	}
	dst := make([]float64, 6)
	c.StoreRev(dst, 1, v)
	for i := 1; i <= 4; i++ {
		if dst[i] != s[i] {
			t.Fatalf("StoreRev round trip: %v", dst)
		}
	}
}

func TestLoadRevCounts(t *testing.T) {
	var cnt perf.Counts
	c := New(4, &cnt)
	s := make([]float64, 8)
	_ = c.LoadRev(s, 0)
	c.StoreRev(s, 0, Vec{})
	if cnt.Get(perf.OpVecLoad) != 1 || cnt.Get(perf.OpVecStore) != 1 || cnt.Get(perf.OpVecMisc) != 2 {
		t.Fatalf("rev counts wrong: %v", cnt)
	}
}

func TestStrideGatherClassification(t *testing.T) {
	cases := []struct {
		w, stride int
		wantNear  bool
	}{
		{8, 2, true},   // GSOR wavefront: 2 lines, resident
		{8, -2, true},  // reversed wavefront
		{4, 1, true},   // contiguous
		{8, 5, false},  // AOS record stride
		{4, 5, false},  // AOS on the narrow machine too
		{8, 3, false},  // wide enough to stream
		{1, 100, true}, // single lane = scalar load
		{2, 2, true},   // tiny footprint
	}
	for _, c := range cases {
		got := strideGatherOp(c.w, c.stride, perf.OpGather, perf.OpGatherNear)
		want := perf.OpGather
		if c.wantNear {
			want = perf.OpGatherNear
		}
		if got != want {
			t.Errorf("w=%d stride=%d: classified %v, want %v", c.w, c.stride, got, want)
		}
	}
}

// Concurrent use of independent contexts over shared read-only data must
// be race-free (exercised under -race).
func TestConcurrentCtxUse(t *testing.T) {
	src := make([]float64, 1024)
	for i := range src {
		src[i] = float64(i)
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			c := New(8, nil)
			acc := c.Zero()
			for i := 0; i+8 <= len(src); i += 8 {
				acc = c.Add(acc, c.Load(src, i))
			}
			_ = c.ReduceAdd(acc)
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
