// Package finbench is a financial-analytics benchmark and derivative
// pricing library: a from-scratch Go reproduction of the SC'12 paper
// "Analysis and Optimization of Financial Analytics Benchmark on Modern
// Multi- and Many-core IA-Based Architectures" (Smelyanskiy et al.).
//
// It provides:
//
//   - Option pricing by every method the paper benchmarks: Black-Scholes
//     closed form, binomial tree, Crank-Nicolson finite differences with
//     Projected SOR, and Monte Carlo integration, plus greeks and implied
//     volatility.
//   - Batch pricing engines at the paper's three optimization levels
//     (reference, SIMD-across-work-items, algorithmically restructured),
//     built on a software vector ISA so every vectorization decision in
//     the paper exists as inspectable Go code.
//   - A Brownian-bridge path simulator and a Mersenne-Twister RNG
//     substrate with multiple normal transforms.
//   - A performance-model harness (cmd/finbench) that regenerates every
//     table and figure of the paper's evaluation for the two modelled
//     architectures (Xeon E5-2680 "SNB-EP" and Xeon Phi "KNC").
//
// Quick start:
//
//	opt := finbench.Option{Type: finbench.Call, Style: finbench.European,
//	    Spot: 100, Strike: 105, Expiry: 0.5}
//	mkt := finbench.Market{Rate: 0.02, Volatility: 0.3}
//	res, err := finbench.Price(opt, mkt, finbench.ClosedForm, nil)
package finbench

import (
	"errors"
	"fmt"

	"finbench/internal/binomial"
	"finbench/internal/blackscholes"
	"finbench/internal/cranknicolson"
	"finbench/internal/mathx"
	"finbench/internal/montecarlo"
	"finbench/internal/workload"
)

// OptionType distinguishes calls from puts.
type OptionType int

const (
	// Call is the right to buy at the strike.
	Call OptionType = iota
	// Put is the right to sell at the strike.
	Put
)

// String names the option type.
func (t OptionType) String() string {
	if t == Put {
		return "put"
	}
	return "call"
}

// ExerciseStyle distinguishes European from American exercise.
type ExerciseStyle int

const (
	// European options exercise only at expiry.
	European ExerciseStyle = iota
	// American options exercise at any time up to expiry.
	American
)

// String names the exercise style.
func (s ExerciseStyle) String() string {
	if s == American {
		return "american"
	}
	return "european"
}

// Option is one vanilla equity option contract.
type Option struct {
	Type   OptionType
	Style  ExerciseStyle
	Spot   float64 // current underlying price S
	Strike float64 // strike price K
	Expiry float64 // time to expiry in years T
}

// Market holds the flat market parameters the paper's kernels assume
// ("we assume that r and sig are the same for all options").
type Market struct {
	// Rate is the continuously-compounded risk-free rate.
	Rate float64
	// Volatility is the implied volatility of the underlying.
	Volatility float64
}

func (m Market) internal() workload.MarketParams {
	return workload.MarketParams{R: m.Rate, Sigma: m.Volatility}
}

// Method selects a pricing algorithm.
type Method int

const (
	// ClosedForm is the Black-Scholes analytic solution (European only).
	ClosedForm Method = iota
	// BinomialTree is CRR backward induction.
	BinomialTree
	// FiniteDifference is Crank-Nicolson with Projected SOR.
	FiniteDifference
	// MonteCarlo is terminal-density path integration (European only).
	MonteCarlo
	// TrinomialTree is Boyle trinomial backward induction.
	TrinomialTree
)

// String names the method.
func (m Method) String() string {
	switch m {
	case ClosedForm:
		return "closed-form"
	case BinomialTree:
		return "binomial-tree"
	case FiniteDifference:
		return "crank-nicolson"
	case MonteCarlo:
		return "monte-carlo"
	case TrinomialTree:
		return "trinomial-tree"
	default:
		return fmt.Sprintf("finbench.Method(%d)", int(m))
	}
}

// Config tunes the numerical methods; zero values select the defaults the
// paper's experiments use.
type Config struct {
	// BinomialSteps is the tree depth (default 1024, as in Fig. 5).
	BinomialSteps int
	// GridPoints and TimeSteps size the Crank-Nicolson lattice (default
	// 256 x 1000, as in Fig. 8).
	GridPoints, TimeSteps int
	// MCPaths is the Monte Carlo path count (default 262144, as in
	// Table II).
	MCPaths int
	// Seed makes Monte Carlo runs reproducible (default 1).
	Seed uint64
}

// Resolved returns the configuration with every zero field replaced by
// its default, i.e. the parameters a Price call with this config actually
// uses. Servers report it so clients can reproduce results exactly.
func (c *Config) Resolved() Config { return c.withDefaults() }

func (c *Config) withDefaults() Config {
	out := Config{BinomialSteps: 1024, GridPoints: 256, TimeSteps: 1000, MCPaths: 262144, Seed: 1}
	if c == nil {
		return out
	}
	if c.BinomialSteps > 0 {
		out.BinomialSteps = c.BinomialSteps
	}
	if c.GridPoints > 0 {
		out.GridPoints = c.GridPoints
	}
	if c.TimeSteps > 0 {
		out.TimeSteps = c.TimeSteps
	}
	if c.MCPaths > 0 {
		out.MCPaths = c.MCPaths
	}
	if c.Seed != 0 {
		out.Seed = c.Seed
	}
	return out
}

// Result is a pricing outcome.
type Result struct {
	// Price is the option value.
	Price float64
	// StdErr is the Monte Carlo standard error (zero for deterministic
	// methods).
	StdErr float64
	// Method records the algorithm that produced the price.
	Method Method
}

// Errors returned by Price.
var (
	// ErrInvalidOption indicates non-positive spot, strike, expiry or
	// volatility.
	ErrInvalidOption = errors.New("finbench: option parameters must be positive")
	// ErrMethodStyle indicates a method that cannot price the requested
	// exercise style (e.g. closed form for American options).
	ErrMethodStyle = errors.New("finbench: method cannot price this exercise style")
)

// Price values the option with the given method. A nil cfg uses the
// paper's default experiment parameters.
func Price(o Option, m Market, method Method, cfg *Config) (Result, error) {
	if o.Spot <= 0 || o.Strike <= 0 || o.Expiry <= 0 || m.Volatility <= 0 {
		return Result{}, ErrInvalidOption
	}
	c := cfg.withDefaults()
	mkt := m.internal()
	switch method {
	case ClosedForm:
		if o.Style == American {
			return Result{}, fmt.Errorf("%w: closed form is European-only", ErrMethodStyle)
		}
		call, put := blackscholes.PriceScalar(o.Spot, o.Strike, o.Expiry, mkt)
		return Result{Price: pick(o.Type, call, put), Method: method}, nil

	case BinomialTree:
		if o.Style == American {
			if o.Type == Call {
				// An American call on a non-dividend asset is never
				// exercised early; it equals the European call.
				return Result{Price: binomial.PriceScalar(o.Spot, o.Strike, o.Expiry, c.BinomialSteps, mkt), Method: method}, nil
			}
			return Result{Price: binomial.PriceAmericanPutScalar(o.Spot, o.Strike, o.Expiry, c.BinomialSteps, mkt), Method: method}, nil
		}
		call := binomial.PriceScalar(o.Spot, o.Strike, o.Expiry, c.BinomialSteps, mkt)
		if o.Type == Call {
			return Result{Price: call, Method: method}, nil
		}
		// European put from the tree call via parity.
		put := call - o.Spot + o.Strike*discount(m, o.Expiry)
		return Result{Price: put, Method: method}, nil

	case FiniteDifference:
		if o.Type == Call && o.Style == American {
			// No-dividend American call = European call; use the lattice's
			// European put plus parity for consistency with the solver.
			put := cranknicolson.PriceEuropeanPut(o.Spot, o.Strike, o.Expiry, c.GridPoints, c.TimeSteps, mkt)
			return Result{Price: put + o.Spot - o.Strike*discount(m, o.Expiry), Method: method}, nil
		}
		if o.Style == American {
			return Result{Price: cranknicolson.PriceAmericanPut(o.Spot, o.Strike, o.Expiry, c.GridPoints, c.TimeSteps, mkt), Method: method}, nil
		}
		put := cranknicolson.PriceEuropeanPut(o.Spot, o.Strike, o.Expiry, c.GridPoints, c.TimeSteps, mkt)
		if o.Type == Put {
			return Result{Price: put, Method: method}, nil
		}
		return Result{Price: put + o.Spot - o.Strike*discount(m, o.Expiry), Method: method}, nil

	case TrinomialTree:
		return PriceTrinomial(o, m, c.BinomialSteps)

	case MonteCarlo:
		if o.Style == American {
			return Result{}, fmt.Errorf("%w: Monte Carlo engine is European-only", ErrMethodStyle)
		}
		b := &workload.MCBatch{
			S: []float64{o.Spot}, X: []float64{o.Strike}, T: []float64{o.Expiry},
			Price: make([]float64, 1), StdErr: make([]float64, 1),
		}
		montecarlo.VectorizedComputeRNG(b, c.MCPaths, c.Seed, mkt, 8, 2, nil)
		price := b.Price[0]
		if o.Type == Put {
			price = price - o.Spot + o.Strike*discount(m, o.Expiry)
		}
		return Result{Price: price, StdErr: b.StdErr[0], Method: method}, nil

	default:
		return Result{}, fmt.Errorf("finbench: unknown method %v", method)
	}
}

func pick(t OptionType, call, put float64) float64 {
	if t == Put {
		return put
	}
	return call
}

func discount(m Market, t float64) float64 {
	return mathx.Exp(-m.Rate * t)
}

// Greeks are the Black-Scholes sensitivities (re-exported from the
// closed-form kernel).
type Greeks = blackscholes.Greeks

// ComputeGreeks returns the closed-form sensitivities of the option
// (European; American greeks require lattice bumping).
func ComputeGreeks(o Option, m Market) (Greeks, error) {
	if o.Spot <= 0 || o.Strike <= 0 || o.Expiry <= 0 || m.Volatility <= 0 {
		return Greeks{}, ErrInvalidOption
	}
	return blackscholes.ComputeGreeks(o.Spot, o.Strike, o.Expiry, m.internal()), nil
}

// ImpliedVolatility inverts a European call price for its volatility.
func ImpliedVolatility(price float64, o Option, rate float64) (float64, error) {
	if o.Type != Call || o.Style != European {
		return 0, fmt.Errorf("%w: implied vol solver takes European calls", ErrMethodStyle)
	}
	return blackscholes.ImpliedVolCall(price, o.Spot, o.Strike, o.Expiry, rate)
}
