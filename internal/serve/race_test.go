//go:build race

package serve

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation changes allocation behavior (pools
// are bypassed under -race), so allocation-count assertions are
// meaningless there.
const raceEnabled = true
