package finbench

import (
	"context"
	"fmt"
	"sync"

	"finbench/internal/binomial"
	"finbench/internal/blackscholes"
	"finbench/internal/cranknicolson"
	"finbench/internal/layout"
	"finbench/internal/montecarlo"
	"finbench/internal/vec"
	"finbench/internal/workload"
)

// Cancellable entry points. PriceCtx and PriceBatchCtx are Price and
// PriceBatch with deadline/cancellation propagation: the context's done
// signal reaches the kernel loops (Monte Carlo path chunks, Crank-Nicolson
// time steps, lattice level blocks, closed-form option blocks), so a
// pricing request whose deadline has passed stops consuming CPU within a
// bounded amount of work instead of running to completion. A context that
// carries no cancellation signal (context.Background, context.TODO) takes
// exactly the plain code path and costs nothing extra.
//
// An uncancelled PriceCtx/PriceBatchCtx run is bit-identical to the plain
// call: the ctx variants check a done channel between work blocks but
// never change decomposition, iteration order, or arithmetic. On a
// non-nil error any outputs are partial and must be discarded.

// PriceCtx is Price with cancellation. It returns ctx.Err() (wrapped) if
// the context is cancelled before or during pricing.
func PriceCtx(ctx context.Context, o Option, m Market, method Method, cfg *Config) (Result, error) {
	if o.Spot <= 0 || o.Strike <= 0 || o.Expiry <= 0 || m.Volatility <= 0 {
		return Result{}, ErrInvalidOption
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	c := cfg.withDefaults()
	mkt := m.internal()
	switch method {
	case ClosedForm:
		if o.Style == American {
			return Result{}, fmt.Errorf("%w: closed form is European-only", ErrMethodStyle)
		}
		// A single closed-form evaluation is microseconds of work; the
		// upfront ctx check above is the only checkpoint it needs.
		call, put := blackscholes.PriceScalar(o.Spot, o.Strike, o.Expiry, mkt)
		return Result{Price: pick(o.Type, call, put), Method: method}, nil

	case BinomialTree:
		if o.Style == American {
			if o.Type == Call {
				v, err := binomial.PriceScalarCtx(ctx, o.Spot, o.Strike, o.Expiry, c.BinomialSteps, mkt)
				if err != nil {
					return Result{}, err
				}
				return Result{Price: v, Method: method}, nil
			}
			v, err := binomial.PriceAmericanPutScalarCtx(ctx, o.Spot, o.Strike, o.Expiry, c.BinomialSteps, mkt)
			if err != nil {
				return Result{}, err
			}
			return Result{Price: v, Method: method}, nil
		}
		call, err := binomial.PriceScalarCtx(ctx, o.Spot, o.Strike, o.Expiry, c.BinomialSteps, mkt)
		if err != nil {
			return Result{}, err
		}
		if o.Type == Call {
			return Result{Price: call, Method: method}, nil
		}
		put := call - o.Spot + o.Strike*discount(m, o.Expiry)
		return Result{Price: put, Method: method}, nil

	case FiniteDifference:
		if o.Type == Call && o.Style == American {
			put, err := cranknicolson.PriceEuropeanPutCtx(ctx, o.Spot, o.Strike, o.Expiry, c.GridPoints, c.TimeSteps, mkt)
			if err != nil {
				return Result{}, err
			}
			return Result{Price: put + o.Spot - o.Strike*discount(m, o.Expiry), Method: method}, nil
		}
		if o.Style == American {
			v, err := cranknicolson.PriceAmericanPutCtx(ctx, o.Spot, o.Strike, o.Expiry, c.GridPoints, c.TimeSteps, mkt)
			if err != nil {
				return Result{}, err
			}
			return Result{Price: v, Method: method}, nil
		}
		put, err := cranknicolson.PriceEuropeanPutCtx(ctx, o.Spot, o.Strike, o.Expiry, c.GridPoints, c.TimeSteps, mkt)
		if err != nil {
			return Result{}, err
		}
		if o.Type == Put {
			return Result{Price: put, Method: method}, nil
		}
		return Result{Price: put + o.Spot - o.Strike*discount(m, o.Expiry), Method: method}, nil

	case TrinomialTree:
		steps := c.BinomialSteps
		switch {
		case o.Style == American && o.Type == Put:
			// The American-put trinomial walk has no ctx variant yet; its
			// runtime matches the European walk, so check once up front and
			// accept the bounded overrun.
			return Result{Price: binomial.PriceAmericanPutTrinomial(o.Spot, o.Strike, o.Expiry, steps, mkt), Method: TrinomialTree}, nil
		case o.Type == Call:
			v, err := binomial.PriceTrinomialCtx(ctx, o.Spot, o.Strike, o.Expiry, steps, mkt)
			if err != nil {
				return Result{}, err
			}
			return Result{Price: v, Method: TrinomialTree}, nil
		default:
			call, err := binomial.PriceTrinomialCtx(ctx, o.Spot, o.Strike, o.Expiry, steps, mkt)
			if err != nil {
				return Result{}, err
			}
			return Result{Price: call - o.Spot + o.Strike*discount(m, o.Expiry), Method: TrinomialTree}, nil
		}

	case MonteCarlo:
		if o.Style == American {
			return Result{}, fmt.Errorf("%w: Monte Carlo engine is European-only", ErrMethodStyle)
		}
		b := &workload.MCBatch{
			S: []float64{o.Spot}, X: []float64{o.Strike}, T: []float64{o.Expiry},
			Price: make([]float64, 1), StdErr: make([]float64, 1),
		}
		if err := montecarlo.VectorizedComputeRNGCtx(ctx, b, c.MCPaths, c.Seed, mkt, 8, 2, nil); err != nil {
			return Result{}, err
		}
		price := b.Price[0]
		if o.Type == Put {
			price = price - o.Spot + o.Strike*discount(m, o.Expiry)
		}
		return Result{Price: price, StdErr: b.StdErr[0], Method: method}, nil

	default:
		return Result{}, fmt.Errorf("finbench: unknown method %v", method)
	}
}

// PriceBatchCtx is PriceBatch with cancellation checked between option
// blocks inside the kernels. On a non-nil error the batch outputs are
// partial and must be discarded.
func PriceBatchCtx(ctx context.Context, b *Batch, m Market, level OptLevel) error {
	if b.Len() == 0 {
		return ctx.Err()
	}
	mkt := m.internal()
	switch level {
	case LevelBasic:
		aos := layout.NewAOS(b.Len())
		for i := 0; i < b.Len(); i++ {
			aos.Set(i, b.Spots[i], b.Strikes[i], b.Expiries[i])
		}
		if err := blackscholes.BasicCtx(ctx, aos, mkt, vec.MaxWidth, nil); err != nil {
			return err
		}
		for i := 0; i < b.Len(); i++ {
			b.Calls[i] = aos.Call(i)
			b.Puts[i] = aos.Put(i)
		}
		return nil
	case LevelIntermediate, LevelAdvanced:
		// The SOA wrapper is five slice headers over the batch's own
		// storage; pooled because taking its address makes it escape,
		// which would put one allocation on every serving-tier request.
		soa := soaPool.Get().(*layout.SOA)
		*soa = layout.SOA{S: b.Spots, X: b.Strikes, T: b.Expiries, Call: b.Calls, Put: b.Puts}
		var err error
		if level == LevelIntermediate {
			err = blackscholes.IntermediateCtx(ctx, soa, mkt, vec.MaxWidth, nil)
		} else {
			err = blackscholes.AdvancedCtx(ctx, soa, mkt, vec.MaxWidth, nil)
		}
		*soa = layout.SOA{} // drop the slice references before pooling
		soaPool.Put(soa)
		return err
	default:
		return fmt.Errorf("finbench: unknown optimization level %v", level)
	}
}

var soaPool = sync.Pool{New: func() any { return new(layout.SOA) }}
