package coalesce

import (
	"math/bits"
	"sync"
	"time"

	"finbench"
)

// Freelists for the per-request objects of the serve hot path. The
// steady-state request path must not allocate (the benchreg servepath
// rows gate allocs/op), so batches, tickets, and the pending-ticket
// slices all recycle through size-classed sync.Pools. Get/Put pairs are
// bracketed by the finlint leakcheck pass (internal/lint/entrypoints.go,
// pooledGetPut): a leaked buffer is an allocation regression one PR
// later.

// maxBatchClass bounds the pooled batch size at 2^maxBatchClass options;
// larger batches (beyond MaxRequestOptions-scale mega-batches) fall back
// to plain allocation rather than pinning huge arrays in the pool.
const maxBatchClass = 21

var batchPools [maxBatchClass + 1]sync.Pool

// sizeClass is the smallest c with 1<<c >= n.
func sizeClass(n int) int {
	return bits.Len(uint(n - 1))
}

// GetBatch returns a finbench.Batch with all five slices of length n,
// recycled from a size-classed freelist. Contents are unspecified; the
// caller overwrites the inputs and the engine overwrites the outputs.
// Return it with PutBatch.
func GetBatch(n int) *finbench.Batch {
	if n < 1 {
		n = 1
	}
	class := sizeClass(n)
	if class > maxBatchClass {
		return finbench.NewBatch(n)
	}
	b, _ := batchPools[class].Get().(*finbench.Batch)
	if b == nil {
		b = finbench.NewBatch(1 << class)
	}
	b.Spots = b.Spots[:n]
	b.Strikes = b.Strikes[:n]
	b.Expiries = b.Expiries[:n]
	b.Calls = b.Calls[:n]
	b.Puts = b.Puts[:n]
	return b
}

// PutBatch recycles a batch obtained from GetBatch. The caller must not
// retain any view into the batch's slices. Batches not built by GetBatch
// (non-power-of-two capacity) are dropped.
func PutBatch(b *finbench.Batch) {
	c := cap(b.Spots)
	if c == 0 || c&(c-1) != 0 || c != cap(b.Strikes) || c != cap(b.Expiries) ||
		c != cap(b.Calls) || c != cap(b.Puts) {
		return
	}
	class := sizeClass(c)
	if class > maxBatchClass {
		return
	}
	batchPools[class].Put(b)
}

var ticketPool sync.Pool

// GetTicket returns a Ticket whose five float slices have length n
// (inputs for the caller to fill, outputs for the flush to copy into),
// recycled from a freelist. Return it with PutTicket once Calls/Puts
// have been consumed.
func GetTicket(n int) *Ticket {
	t, _ := ticketPool.Get().(*Ticket)
	if t == nil {
		t = &Ticket{done: make(chan struct{}, 1)}
	}
	t.Spots = sizedFloats(t.Spots, n)
	t.Strikes = sizedFloats(t.Strikes, n)
	t.Expiries = sizedFloats(t.Expiries, n)
	t.Calls = sizedFloats(t.Calls, n)
	t.Puts = sizedFloats(t.Puts, n)
	return t
}

// PutTicket recycles a ticket obtained from GetTicket (tickets built by
// hand may also be put; their slices join the freelist). The ticket and
// its slices must not be used after.
func PutTicket(t *Ticket) {
	t.Deadline = time.Time{}
	t.BatchN = 0
	t.Coalesced = false
	t.Err = nil
	if t.done != nil {
		// Drain a completion signal an abandoning caller never consumed so
		// the next Price on this ticket blocks correctly.
		select {
		case <-t.done:
		default:
		}
	}
	ticketPool.Put(t)
}

// sizedFloats returns s resized to length n, reallocating (to a
// power-of-two capacity, for stable reuse) only when the capacity is too
// small. Contents are unspecified.
func sizedFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n, 1<<sizeClass(n))
}

// ticketSlicePool recycles the pending-ticket slices so arming a fresh
// batch does not allocate.
var ticketSlicePool = sync.Pool{
	New: func() any { s := make([]*Ticket, 0, 16); return &s },
}

func getTicketSlice() []*Ticket {
	return *ticketSlicePool.Get().(*[]*Ticket)
}

func putTicketSlice(s []*Ticket) {
	for i := range s {
		s[i] = nil
	}
	s = s[:0]
	ticketSlicePool.Put(&s)
}
