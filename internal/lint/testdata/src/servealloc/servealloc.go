// Package servealloc seeds per-iteration allocations in functions
// reachable from an HTTP handler, for the interprocedural hotalloc
// sweep. The package is deliberately NOT tagged finlint:hot: every
// finding here is reached through the call graph from ServeHTTP.
package servealloc

import "net/http"

type engine struct {
	out []float64
}

// ServeHTTP is the reachability root.
func (e *engine) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	e.assemble(8)
	deep1(8)
	e.hoisted(8)
	e.coldFill(8)
}

// assemble allocates per iteration, one hop from the handler.
func (e *engine) assemble(n int) {
	for i := 0; i < n; i++ {
		buf := make([]float64, 4) // seeded violation
		e.out = append(e.out, buf...)
	}
}

// deep1..deep3 chain the handler to an allocation three hops down.
func deep1(n int) { deep2(n) }
func deep2(n int) { deep3(n) }
func deep3(n int) {
	for i := 0; i < n; i++ {
		_ = []int{i, i + 1} // seeded violation
	}
}

// Unreached allocates in a loop but no handler reaches it (the
// batch-tool shape): clean.
func Unreached(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, make([]float64, 2)...)
	}
	return out
}

// hoisted reuses one buffer across iterations: clean.
func (e *engine) hoisted(n int) {
	buf := make([]float64, 4)
	for i := 0; i < n; i++ {
		buf[0] = float64(i)
		e.out = append(e.out, buf[0])
	}
}

// coldFill allocates on a startup-only path; the suppression says why.
func (e *engine) coldFill(n int) {
	for i := 0; i < n; i++ {
		// finlint:ignore hotalloc startup-only fill, runs once before serving
		e.out = append(e.out, make([]float64, 1)...)
	}
}
