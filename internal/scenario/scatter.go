package scenario

import (
	"context"
	"sync"
)

// Scatter-gather primitives. The shard router distributes one scenario
// request by splitting its cell space into partitions, evaluating each
// partition wherever it likes (locally, or as a sub-request on a
// replica), and merging the per-partition surfaces back into global
// cell order before reducing. Only closed-form grid cells may be split
// freely and re-attempted; a generator block is Monte Carlo, so it is
// one indivisible partition with exactly one attempt — the same rule
// that keeps Monte Carlo out of coalescing, caching, retry and hedging.

// Partition is one contiguous cell range of a scenario request.
type Partition struct {
	// Start and Count delimit the global cell range [Start, Start+Count).
	Start, Count int
	// MonteCarlo marks a generator block: never split further, exactly
	// one attempt, no failover.
	MonteCarlo bool
}

// PartitionCells splits the request's cell space for fan-out across n
// workers: the closed-form grid cells into at most n near-even
// contiguous ranges, then each generator block as one atomic Monte
// Carlo partition. The partition list depends only on (request, n), so
// a router and a test partition identically.
func PartitionCells(req *Request, n int) []Partition {
	if n < 1 {
		n = 1
	}
	grid := req.NumGridCells()
	k := n
	if k > grid {
		k = grid
	}
	var parts []Partition
	for i, off := 0, 0; i < k; i++ {
		count := grid / k
		if i < grid%k {
			count++
		}
		parts = append(parts, Partition{Start: off, Count: count})
		off += count
	}
	off := grid
	for i := range req.Generators {
		parts = append(parts, Partition{Start: off, Count: req.Generators[i].Scenarios, MonteCarlo: true})
		off += req.Generators[i].Scenarios
	}
	return parts
}

// Scatter runs fn once per partition on concurrent goroutines and waits
// for all of them. The closure executes concurrently: any RNG stream it
// needs must be derived inside the closure from the partition's cells,
// never captured from the enclosing scope. Errors are collected and the
// first one in partition order (not completion order) is returned, so a
// failed scatter reports deterministically.
func Scatter(ctx context.Context, parts []Partition, fn func(ctx context.Context, p Partition) error) error {
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(ctx, parts[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
