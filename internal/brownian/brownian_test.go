package brownian

import (
	"math"
	"testing"

	"finbench/internal/machine"
	"finbench/internal/perf"
	"finbench/internal/rng"
	"finbench/internal/vec"
)

func TestNewBridgeShape(t *testing.T) {
	b := New(5, 1)
	if b.Steps != 64 || b.PathLen() != 65 {
		t.Fatalf("depth 5: steps %d pathlen %d", b.Steps, b.PathLen())
	}
	for d := 0; d <= 5; d++ {
		if len(b.WL[d]) != 1<<uint(d) {
			t.Fatalf("level %d: %d weights", d, len(b.WL[d]))
		}
	}
}

func TestUniformWeights(t *testing.T) {
	b := New(3, 2.0)
	for d := 0; d <= 3; d++ {
		n := 1 << uint(d)
		wantSig := math.Sqrt(2.0 / float64(n) / 4)
		for c := 0; c < n; c++ {
			if math.Abs(b.WL[d][c]-0.5) > 1e-15 || math.Abs(b.WR[d][c]-0.5) > 1e-15 {
				t.Fatalf("level %d weights not 1/2", d)
			}
			if math.Abs(b.Sig[d][c]-wantSig) > 1e-15 {
				t.Fatalf("level %d sig = %g, want %g", d, b.Sig[d][c], wantSig)
			}
		}
	}
}

// With all interior normals zero, the bridge linearly interpolates between
// the pinned origin and the terminal draw (the conditional-mean property).
func TestConditionalMeanProperty(t *testing.T) {
	b := New(4, 1)
	z := make([]float64, b.Steps)
	z[0] = 2.0 // terminal point: 2*sqrt(T)
	out := make([]float64, b.PathLen())
	b.BuildScalar(z, out)
	end := 2.0 * b.LastSig
	for p := 0; p <= b.Steps; p++ {
		want := end * float64(p) / float64(b.Steps)
		if math.Abs(out[p]-want) > 1e-12 {
			t.Fatalf("point %d = %g, want %g (linear)", p, out[p], want)
		}
	}
}

func TestDepthZeroHandComputed(t *testing.T) {
	b := New(0, 4.0) // T=4: lastSig=2, mid sig = sqrt(4/4)=1
	z := []float64{1.5, -0.25}
	out := make([]float64, 3)
	b.BuildScalar(z, out)
	endpoint := 1.5 * 2.0
	mid := 0.5*0 + 0.5*endpoint + 1.0*(-0.25)
	if out[0] != 0 || math.Abs(out[2]-endpoint) > 1e-15 || math.Abs(out[1]-mid) > 1e-15 {
		t.Fatalf("path = %v, want [0 %g %g]", out, mid, endpoint)
	}
}

// Statistical: increments of the constructed paths must be iid N(0, dt).
func TestIncrementStatistics(t *testing.T) {
	const sims = 20000
	b := New(4, 1) // 16 steps
	stream := rng.NewStream(0, 42)
	z := RandomsScalar(stream, sims, b.Steps)
	out := make([]float64, sims*b.PathLen())
	b.RefScalar(z, out, sims, nil)

	dt := b.T / float64(b.Steps)
	plen := b.PathLen()
	// Mean/var of a middle increment and correlation of two adjacent ones.
	var m1, v1, m2, v2, cov float64
	k := 7
	for s := 0; s < sims; s++ {
		row := out[s*plen : (s+1)*plen]
		d1 := row[k+1] - row[k]
		d2 := row[k+2] - row[k+1]
		m1 += d1
		m2 += d2
		v1 += d1 * d1
		v2 += d2 * d2
		cov += d1 * d2
	}
	m1 /= sims
	m2 /= sims
	v1 = v1/sims - m1*m1
	v2 = v2/sims - m2*m2
	cov = cov/sims - m1*m2
	if math.Abs(m1) > 0.01 || math.Abs(m2) > 0.01 {
		t.Fatalf("increment means %g %g", m1, m2)
	}
	if math.Abs(v1-dt) > 0.05*dt || math.Abs(v2-dt) > 0.05*dt {
		t.Fatalf("increment variances %g %g, want %g", v1, v2, dt)
	}
	if math.Abs(cov/math.Sqrt(v1*v2)) > 0.03 {
		t.Fatalf("adjacent increments correlated: %g", cov/math.Sqrt(v1*v2))
	}
}

// Statistical: Cov(v(s), v(t)) = min(s, t) — the Wiener covariance.
func TestWienerCovariance(t *testing.T) {
	const sims = 40000
	b := New(2, 1) // 8 steps: point p sits at t = p/8
	stream := rng.NewStream(1, 7)
	z := RandomsScalar(stream, sims, b.Steps)
	out := make([]float64, sims*b.PathLen())
	b.RefScalar(z, out, sims, nil)
	plen := b.PathLen()
	// points 2 (t=0.25) and 6 (t=0.75): covariance must be 0.25.
	var c26, v2 float64
	for s := 0; s < sims; s++ {
		row := out[s*plen : (s+1)*plen]
		c26 += row[2] * row[6]
		v2 += row[2] * row[2]
	}
	c26 /= sims
	v2 /= sims
	if math.Abs(c26-0.25) > 0.012 {
		t.Fatalf("Cov(v(.25), v(.75)) = %g, want 0.25", c26)
	}
	if math.Abs(v2-0.25) > 0.012 {
		t.Fatalf("Var(v(.25)) = %g, want 0.25", v2)
	}
}

// transposeToScalar converts the blocked random layout into the
// simulation-major layout RefScalar consumes.
func transposeToScalar(blocked []float64, sims, steps, width int) []float64 {
	z := make([]float64, sims*steps)
	for s := 0; s < sims; s++ {
		g, l := s/width, s%width
		for k := 0; k < steps; k++ {
			z[s*steps+k] = blocked[(g*steps+k)*width+l]
		}
	}
	return z
}

// Intermediate (SIMD across paths) must produce bitwise-identical paths to
// the scalar reference fed the same normals.
func TestIntermediateMatchesScalar(t *testing.T) {
	for _, width := range []int{4, 8} {
		const sims = 37 // not a multiple of the width
		b := New(5, 1)
		stream := rng.NewStream(0, 99)
		blocked := RandomsBlocked(stream, sims, b.Steps, width)
		zs := transposeToScalar(blocked, sims, b.Steps, width)

		ref := make([]float64, sims*b.PathLen())
		b.RefScalar(zs, ref, sims, nil)
		got := make([]float64, sims*b.PathLen())
		b.Intermediate(blocked, got, sims, width, nil)

		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("width %d: path value %d differs: %g != %g", width, i, got[i], ref[i])
			}
		}
	}
}

// The interleaved and cache-to-cache variants share stream derivation, so
// for the same seed the C2C consumer must see exactly the paths the
// interleaved variant writes out.
func TestC2CMatchesInterleaved(t *testing.T) {
	const sims, width = 64, 8
	b := New(5, 1)
	out := make([]float64, sims*b.PathLen())
	b.AdvancedInterleaved(123, out, sims, width, nil)

	got := make([]float64, sims*b.PathLen())
	plen := b.PathLen()
	b.AdvancedC2C(123, sims, width, nil, func(group int, paths []vec.Vec) {
		for l := 0; l < width; l++ {
			s := group*width + l
			if s >= sims {
				break
			}
			for p := 0; p < plen; p++ {
				got[s*plen+p] = paths[p].X[l]
			}
		}
	})
	for i := range out {
		if out[i] != got[i] {
			t.Fatalf("value %d differs: %g != %g", i, got[i], out[i])
		}
	}
}

func TestInterleavedStatistics(t *testing.T) {
	const sims, width = 30000, 8
	b := New(4, 1)
	out := make([]float64, sims*b.PathLen())
	b.AdvancedInterleaved(7, out, sims, width, nil)
	plen := b.PathLen()
	var vEnd float64
	for s := 0; s < sims; s++ {
		e := out[s*plen+plen-1]
		vEnd += e * e
	}
	vEnd /= sims
	if math.Abs(vEnd-1) > 0.04 {
		t.Fatalf("terminal variance = %g, want 1", vEnd)
	}
}

// Roofline classification must reproduce Fig. 6's story: the streamed
// variant is bandwidth-bound on both machines, the interleaved variants
// compute-bound.
func TestBoundClassification(t *testing.T) {
	const sims, width = 4096, 8
	b := New(5, 1)
	stream := rng.NewStream(0, 1)
	blocked := RandomsBlocked(stream, sims, b.Steps, width)
	out := make([]float64, sims*b.PathLen())

	var cs perf.Counts
	b.Intermediate(blocked, out, sims, width, &cs)
	var ci perf.Counts
	b.AdvancedC2C(1, sims, width, &ci, nil)

	for _, m := range machine.Machines() {
		if got := m.Predict(cs).Bound; got != machine.BandwidthBound {
			t.Errorf("%s: streamed variant classified %v, want bandwidth", m.Name, got)
		}
		if got := m.Predict(ci).Bound; got != machine.ComputeBound {
			t.Errorf("%s: C2C variant classified %v, want compute", m.Name, got)
		}
	}
}

func TestCountsTraffic(t *testing.T) {
	const sims, width = 256, 8
	b := New(5, 1)
	stream := rng.NewStream(0, 1)
	blocked := RandomsBlocked(stream, sims, b.Steps, width)
	out := make([]float64, sims*b.PathLen())

	var cs, ca, cc perf.Counts
	b.Intermediate(blocked, out, sims, width, &cs)
	b.AdvancedInterleaved(1, out, sims, width, &ca)
	b.AdvancedC2C(1, sims, width, &cc, nil)

	if cs.BytesRead != uint64(sims*b.Steps*8) {
		t.Fatalf("streamed read = %d", cs.BytesRead)
	}
	if ca.BytesRead != 0 || ca.BytesWritten == 0 {
		t.Fatalf("interleaved traffic %d/%d", ca.BytesRead, ca.BytesWritten)
	}
	if cc.BytesRead != 0 || cc.BytesWritten != 0 {
		t.Fatalf("C2C traffic %d/%d", cc.BytesRead, cc.BytesWritten)
	}
	if cs.Items != sims || ca.Items != sims || cc.Items != sims {
		t.Fatal("items wrong")
	}
}

func BenchmarkRefScalar64(b *testing.B) {
	br := New(5, 1)
	const sims = 1024
	stream := rng.NewStream(0, 1)
	z := RandomsScalar(stream, sims, br.Steps)
	out := make([]float64, sims*br.PathLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.RefScalar(z, out, sims, nil)
	}
}

func BenchmarkIntermediateW8_64(b *testing.B) {
	br := New(5, 1)
	const sims = 1024
	stream := rng.NewStream(0, 1)
	z := RandomsBlocked(stream, sims, br.Steps, 8)
	out := make([]float64, sims*br.PathLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Intermediate(z, out, sims, 8, nil)
	}
}

func BenchmarkAdvancedC2C64(b *testing.B) {
	br := New(5, 1)
	const sims = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.AdvancedC2C(1, sims, 8, nil, nil)
	}
}
