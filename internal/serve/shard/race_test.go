package shard

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"finbench/internal/fault"
	"finbench/internal/resilience"
)

// TestRaceRouterUnderChaos hammers the router from many goroutines
// while a fault injector corrupts a third of the backend round trips
// and the health loop runs hot. Run under -race this exercises every
// shared structure (breakers, request state, health flags, stats); the
// availability assertion is deliberately loose — the point here is the
// race detector, the chaos script owns the real availability floor.
func TestRaceRouterUnderChaos(t *testing.T) {
	urls, _, _ := newBackends(t, 3)
	spec, err := fault.ParseSpec("11:0.3:refuse,reset,truncate")
	if err != nil {
		t.Fatal(err)
	}
	router := newRouter(t, Config{
		Backends:       urls,
		HealthInterval: 5 * time.Millisecond,
		MaxAttempts:    4,
		HedgeDelay:     2 * time.Millisecond,
		Backoff:        resilience.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		BudgetRatio:    -1, // unlimited retries: this test measures races, not budgets
		Transport:      &fault.Transport{Inj: fault.NewInjector(spec)},
	})
	front := httptest.NewServer(router)
	defer front.Close()

	const workers, perWorker = 8, 30
	var ok, total atomic.Int64
	var wg sync.WaitGroup
	body := priceBody("", 4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < perWorker; i++ {
				total.Add(1)
				resp, err := client.Post(front.URL+"/price", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				if resp.StatusCode == 200 {
					ok.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	if frac := float64(ok.Load()) / float64(total.Load()); frac < 0.9 {
		t.Errorf("availability %.2f under 30%% faults with retries; want >= 0.90", frac)
	}
	// Snapshot concurrently-written counters once more for the detector.
	snap := router.Snapshot()
	if snap.Requests == 0 {
		t.Error("no requests counted")
	}
}
