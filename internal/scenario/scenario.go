// Package scenario is the portfolio risk engine of the serving tier: one
// request prices a whole portfolio across a scenario grid — the cross
// product of spot shocks × vol shocks × rate shifts, plus optional Monte
// Carlo scenario generators (Heston stochastic vol, Merton jumps,
// correlated baskets) — and reduces the per-scenario P&L surface to a
// VaR/ES ladder.
//
// The cell space is the engine's unit of distribution. Cells are indexed
// globally: grid cells first in row-major order (spot outermost, rate
// innermost), then each generator's block in declaration order. Every
// cell's P&L is a pure function of (request, base market, cell index):
// grid cells reprice closed-form under the shocked market, and generator
// cells derive their RNG stream from (generator seed, cell offset), so
// any process evaluates any cell sub-range to identical bits. The shard
// router exploits exactly that: it scatters disjoint cell ranges across
// replicas and merges the sub-surfaces back into grid order, and the
// merged response is byte-identical to a single process answering the
// whole request. All reductions are Kahan-compensated (see kahan.go) and
// run in deterministic order, never in arrival order.
package scenario

import (
	"errors"
	"fmt"
	"math"
)

// Limits bounds a request; the serving tier fills it from its config.
type Limits struct {
	// MaxPositions bounds the portfolio size.
	MaxPositions int
	// MaxCells bounds the total scenario cell count (grid + generators).
	MaxCells int
}

// Position is one portfolio holding: a European contract and a signed
// quantity (negative = short). Quantity 0 means 1.
type Position struct {
	// Type is "call" (default) or "put".
	Type     string  `json:"type,omitempty"`
	Spot     float64 `json:"spot"`
	Strike   float64 `json:"strike"`
	Expiry   float64 `json:"expiry"`
	Quantity float64 `json:"quantity,omitempty"`
}

// Qty returns the effective quantity (0 defaults to 1).
func (p *Position) Qty() float64 {
	if p.Quantity == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		return 1
	}
	return p.Quantity
}

// Grid is the closed-form shock grid: the cross product of the three
// axes, row-major with spot shocks outermost and rate shifts innermost.
// An empty axis means the single unshocked point.
type Grid struct {
	// SpotShocks are relative: spot scales by (1 + shock); each must be
	// > -1.
	SpotShocks []float64 `json:"spot_shocks,omitempty"`
	// VolShocks shift the base volatility absolutely; the shifted vol
	// must stay positive.
	VolShocks []float64 `json:"vol_shocks,omitempty"`
	// RateShifts shift the base rate absolutely.
	RateShifts []float64 `json:"rate_shifts,omitempty"`
}

// unshocked is the default single point of an empty grid axis.
var unshocked = []float64{0}

func (g *Grid) spotShocks() []float64 {
	if len(g.SpotShocks) == 0 {
		return unshocked
	}
	return g.SpotShocks
}

func (g *Grid) volShocks() []float64 {
	if len(g.VolShocks) == 0 {
		return unshocked
	}
	return g.VolShocks
}

func (g *Grid) rateShifts() []float64 {
	if len(g.RateShifts) == 0 {
		return unshocked
	}
	return g.RateShifts
}

// Generator models for Monte Carlo scenario sources.
const (
	ModelHeston = "heston"
	ModelJump   = "jump"
	ModelBasket = "basket"
)

// DefaultHorizon is the risk horizon when a generator specifies none:
// ten trading days.
const DefaultHorizon = 10.0 / 252

// Generator is one Monte Carlo scenario source: it simulates Scenarios
// market states at the horizon and applies each as an instantaneous
// shock (no theta decay — the portfolio's expiries are unchanged).
// Scenario k of a generator draws from an RNG stream seeded by
// DeriveSeed(Seed, k), so the block is reproducible cell by cell on any
// process; the router still gives each generator block exactly one
// attempt and never splits it (the Monte Carlo coalescing rule).
type Generator struct {
	// Model is "heston", "jump" or "basket".
	Model string `json:"model"`
	// Scenarios is the cell count this generator contributes (>= 1).
	Scenarios int `json:"scenarios"`
	// Horizon is the risk horizon in years (default 10/252).
	Horizon float64 `json:"horizon,omitempty"`
	// Seed selects the generator's scenario set (default 1).
	Seed uint64 `json:"seed,omitempty"`

	// Heston (stochastic vol): initial variance V0 (0 = base vol
	// squared), mean reversion Kappa (0 = 1.5) toward ThetaV (0 = V0),
	// vol-of-vol SigmaV (0 = 0.5), correlation Rho (0 = -0.7).
	V0     float64 `json:"v0,omitempty"`
	Kappa  float64 `json:"kappa,omitempty"`
	ThetaV float64 `json:"theta_v,omitempty"`
	SigmaV float64 `json:"sigma_v,omitempty"`
	Rho    float64 `json:"rho,omitempty"`

	// Jump (Merton): intensity Lambda (0 = 0.3 jumps/year), mean jump
	// size MuJ (0 = -0.1, log space), jump vol SigmaJ (0 = 0.15).
	Lambda float64 `json:"lambda,omitempty"`
	MuJ    float64 `json:"mu_j,omitempty"`
	SigmaJ float64 `json:"sigma_j,omitempty"`

	// Basket: Assets correlated factors (0 = 4) with pairwise
	// correlation Corr in [0, 1] (0 = 0.5); position i moves with
	// factor i mod Assets.
	Assets int     `json:"assets,omitempty"`
	Corr   float64 `json:"corr,omitempty"`
}

func (g *Generator) horizon() float64 {
	if g.Horizon == 0 { // finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		return DefaultHorizon
	}
	return g.Horizon
}

func (g *Generator) seed() uint64 {
	if g.Seed == 0 {
		return 1
	}
	return g.Seed
}

// Cells marks a sub-range request: evaluate only the global cells
// [Start, Start+Count). The shard router sets it on the per-replica
// sub-requests of its scatter-gather path; clients normally omit it.
type Cells struct {
	Start int `json:"start"`
	Count int `json:"count"`
}

// Request is the POST /scenario body.
type Request struct {
	Portfolio  []Position  `json:"portfolio"`
	Grid       Grid        `json:"grid"`
	Generators []Generator `json:"generators,omitempty"`
	// VarLevels are the ladder's confidence levels in (0,1); empty means
	// [0.95, 0.99].
	VarLevels  []float64 `json:"var_levels,omitempty"`
	DeadlineMS int64     `json:"deadline_ms,omitempty"`
	Cells      *Cells    `json:"cells,omitempty"`
}

// defaultVarLevels is the ladder when the request names none.
var defaultVarLevels = []float64{0.95, 0.99}

// Levels returns the effective VaR confidence levels.
func (r *Request) Levels() []float64 {
	if len(r.VarLevels) == 0 {
		return defaultVarLevels
	}
	return r.VarLevels
}

// NumGridCells is the closed-form grid's cell count.
func (r *Request) NumGridCells() int {
	return len(r.Grid.spotShocks()) * len(r.Grid.volShocks()) * len(r.Grid.rateShifts())
}

// NumGenCells is the total cell count contributed by generators.
func (r *Request) NumGenCells() int {
	n := 0
	for i := range r.Generators {
		n += r.Generators[i].Scenarios
	}
	return n
}

// NumCells is the full scenario cell count (grid + generators).
func (r *Request) NumCells() int { return r.NumGridCells() + r.NumGenCells() }

// ErrRequest wraps every validation failure.
var ErrRequest = errors.New("scenario: invalid request")

func badRequest(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrRequest, fmt.Sprintf(format, args...))
}

func finite(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Validate checks the request against baseVol (the server market's
// volatility, which vol shocks must not drive to zero) and lim. It
// validates the whole cell space even for a sub-range request, so a
// replica answering a router partition enforces exactly the limits a
// whole-request replica would.
func (r *Request) Validate(baseVol float64, lim Limits) error {
	if len(r.Portfolio) == 0 {
		return badRequest("empty portfolio")
	}
	if lim.MaxPositions > 0 && len(r.Portfolio) > lim.MaxPositions {
		return badRequest("portfolio too large: %d > %d positions", len(r.Portfolio), lim.MaxPositions)
	}
	for i := range r.Portfolio {
		p := &r.Portfolio[i]
		if p.Type != "" && p.Type != "call" && p.Type != "put" {
			return badRequest("position %d: unknown type %q", i, p.Type)
		}
		if !finite(p.Spot, p.Strike, p.Expiry, p.Quantity) ||
			p.Spot <= 0 || p.Strike <= 0 || p.Expiry <= 0 {
			return badRequest("position %d: need positive finite spot/strike/expiry", i)
		}
	}
	for _, s := range r.Grid.spotShocks() {
		if !finite(s) || s <= -1 {
			return badRequest("spot shock %v: need finite shock > -1", s)
		}
	}
	for _, s := range r.Grid.volShocks() {
		if !finite(s) || baseVol+s <= 0 {
			return badRequest("vol shock %v drives volatility %v non-positive", s, baseVol)
		}
	}
	for _, s := range r.Grid.rateShifts() {
		if !finite(s) {
			return badRequest("rate shift must be finite")
		}
	}
	for i := range r.Generators {
		if err := r.Generators[i].validate(); err != nil {
			return fmt.Errorf("generator %d: %w", i, err)
		}
	}
	for _, q := range r.Levels() {
		if !finite(q) || q <= 0 || q >= 1 {
			return badRequest("var level %v: need 0 < level < 1", q)
		}
	}
	total := r.NumCells()
	if lim.MaxCells > 0 && total > lim.MaxCells {
		return badRequest("too many cells: %d > %d", total, lim.MaxCells)
	}
	if c := r.Cells; c != nil {
		if c.Start < 0 || c.Count < 1 || c.Start+c.Count > total {
			return badRequest("cell range [%d,%d) outside [0,%d)", c.Start, c.Start+c.Count, total)
		}
	}
	return nil
}

func (g *Generator) validate() error {
	if g.Scenarios < 1 {
		return badRequest("need scenarios >= 1")
	}
	if !finite(g.Horizon, g.V0, g.Kappa, g.ThetaV, g.SigmaV, g.Rho,
		g.Lambda, g.MuJ, g.SigmaJ, g.Corr) || g.Horizon < 0 {
		return badRequest("parameters must be finite (horizon >= 0)")
	}
	switch g.Model {
	case ModelHeston:
		if g.V0 < 0 || g.Kappa < 0 || g.ThetaV < 0 || g.SigmaV < 0 || g.Rho < -1 || g.Rho > 1 {
			return badRequest("heston: need V0, Kappa, ThetaV, SigmaV >= 0 and |Rho| <= 1")
		}
	case ModelJump:
		if g.Lambda < 0 || g.SigmaJ < 0 {
			return badRequest("jump: need Lambda, SigmaJ >= 0")
		}
	case ModelBasket:
		if g.Assets < 0 || g.Corr < 0 || g.Corr > 1 {
			return badRequest("basket: need Assets >= 0 and 0 <= Corr <= 1")
		}
	default:
		return badRequest("unknown model %q", g.Model)
	}
	return nil
}

// Range returns the effective cell range this request asks for: the
// Cells sub-range when present, the whole cell space otherwise.
func (r *Request) Range() (start, count int) {
	if r.Cells != nil {
		return r.Cells.Start, r.Cells.Count
	}
	return 0, r.NumCells()
}

// Ladder is the VaR/ES ladder plus summary statistics of the full P&L
// surface, reduced in deterministic order with Kahan compensation.
type Ladder struct {
	// Levels echoes the effective confidence levels; VaR[i] and ES[i]
	// are the value-at-risk and expected shortfall at Levels[i], as
	// positive loss amounts.
	Levels []float64 `json:"levels"`
	VaR    []float64 `json:"var"`
	ES     []float64 `json:"es"`

	MeanPnL  float64 `json:"mean_pnl"`
	WorstPnL float64 `json:"worst_pnl"`
	BestPnL  float64 `json:"best_pnl"`
}

// Response is the POST /scenario 200 body. A sub-range response carries
// only its cells' P&L (no ladder); the full-range response — whether
// computed by one process or merged by the router — carries the ladder
// reduced over the whole surface. Responses deliberately carry no
// timing field: a routed merge must be byte-identical to a lone
// replica's answer.
type Response struct {
	// BaseValue is the unshocked portfolio value.
	BaseValue float64 `json:"base_value"`
	// Start is the global index of PnL[0]; Cells its length. GridCells
	// and GenCells echo the request's full cell space.
	Start     int `json:"start,omitempty"`
	Cells     int `json:"cells"`
	GridCells int `json:"grid_cells"`
	GenCells  int `json:"gen_cells,omitempty"`
	// PnL is the per-cell portfolio P&L versus BaseValue, in global cell
	// order.
	PnL    []float64 `json:"pnl"`
	Ladder *Ladder   `json:"ladder,omitempty"`
	Engine string    `json:"engine"`
}
