package coalesce

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"finbench"
)

var testMkt = finbench.Market{Rate: 0.02, Volatility: 0.3}

func mkTicket(rng *rand.Rand, n int) *Ticket {
	t := &Ticket{
		Spots:    make([]float64, n),
		Strikes:  make([]float64, n),
		Expiries: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		t.Spots[i] = 50 + 100*rng.Float64()
		t.Strikes[i] = 50 + 100*rng.Float64()
		t.Expiries[i] = 0.1 + 3*rng.Float64()
	}
	return t
}

// priceDirect prices a ticket's options alone through the same engine; by
// composition independence this must bit-match whatever mega-batch the
// coalescer placed them in.
func priceDirect(t *testing.T, tk *Ticket) (calls, puts []float64) {
	t.Helper()
	n := len(tk.Spots)
	b := finbench.NewBatch(n)
	copy(b.Spots, tk.Spots)
	copy(b.Strikes, tk.Strikes)
	copy(b.Expiries, tk.Expiries)
	if err := finbench.PriceBatch(b, testMkt, finbench.LevelAdvanced); err != nil {
		t.Fatal(err)
	}
	return b.Calls, b.Puts
}

func TestCoalescerMergesConcurrentTickets(t *testing.T) {
	c := New(testMkt, 20*time.Millisecond, 1<<20, 0)
	defer c.Close()

	const clients = 8
	tickets := make([]*Ticket, clients)
	for i := range tickets {
		tickets[i] = mkTicket(rand.New(rand.NewSource(int64(i)+1)), 16+i)
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := range tickets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Price(tickets[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	anyCoalesced := false
	for i, tk := range tickets {
		anyCoalesced = anyCoalesced || tk.Coalesced
		wantCalls, wantPuts := priceDirect(t, tk)
		for j := range wantCalls {
			if tk.Calls[j] != wantCalls[j] || tk.Puts[j] != wantPuts[j] {
				t.Fatalf("ticket %d option %d: coalesced (%v,%v) != direct (%v,%v)",
					i, j, tk.Calls[j], tk.Puts[j], wantCalls[j], wantPuts[j])
			}
		}
	}
	if !anyCoalesced {
		t.Error("no ticket coalesced despite 8 concurrent submitters in a 20ms window")
	}
	snap := c.Snapshot()
	if snap.Flushes == 0 || snap.BatchedOptions == 0 {
		t.Errorf("counters not advancing: %+v", snap)
	}
}

func TestCoalescerThresholdFlushesInline(t *testing.T) {
	c := New(testMkt, time.Hour, 32, 0) // timer would never fire
	defer c.Close()
	tk := mkTicket(rand.New(rand.NewSource(9)), 40)
	if err := c.Price(tk); err != nil {
		t.Fatal(err)
	}
	if tk.BatchN != 40 || tk.Coalesced {
		t.Errorf("BatchN=%d Coalesced=%v, want solo 40", tk.BatchN, tk.Coalesced)
	}
	if snap := c.Snapshot(); snap.SoloFlushes != 1 {
		t.Errorf("solo flushes = %d, want 1", snap.SoloFlushes)
	}
}

func TestCoalescerExpiredDeadlineFailsBatch(t *testing.T) {
	c := New(testMkt, time.Millisecond, 1<<20, 0)
	defer c.Close()
	tk := mkTicket(rand.New(rand.NewSource(3)), 8)
	tk.Deadline = time.Now().Add(-time.Second)
	err := c.Price(tk)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestCoalescerCloseFailsPending(t *testing.T) {
	c := New(testMkt, time.Hour, 1<<20, 0)
	tk := mkTicket(rand.New(rand.NewSource(4)), 4)
	errCh := make(chan error, 1)
	go func() { errCh <- c.Price(tk) }()
	// Wait until the ticket is pending, then close underneath it.
	for {
		c.mu.Lock()
		n := len(c.pending)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if err := c.Price(mkTicket(rand.New(rand.NewSource(5)), 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-close submit: %v, want canceled", err)
	}
}

// TestThresholdFlushDisarmsWindowTimer: a threshold flush must stop the
// window timer it supersedes, or the next batch inherits a stale,
// near-expired timer and flushes with an arbitrarily short window.
func TestThresholdFlushDisarmsWindowTimer(t *testing.T) {
	const window = 240 * time.Millisecond
	c := New(testMkt, window, 4, 0)
	defer c.Close()

	// Ticket A arms the window timer; ticket B crosses the threshold and
	// flushes both inline. The timer must be disarmed by that flush.
	errA := make(chan error, 1)
	a := mkTicket(rand.New(rand.NewSource(11)), 1)
	go func() { errA <- c.Price(a) }()
	for {
		c.mu.Lock()
		armed := c.timerArmed
		c.mu.Unlock()
		if armed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Price(mkTicket(rand.New(rand.NewSource(12)), 4)); err != nil {
		t.Fatal(err)
	}
	if err := <-errA; err != nil {
		t.Fatal(err)
	}

	// Submit ticket C deep into what remains of the stale window. With the
	// timer properly disarmed it gets a full window of its own; with the
	// stale timer it would flush when the leftover window expires.
	time.Sleep(window / 2)
	start := time.Now()
	if err := c.Price(mkTicket(rand.New(rand.NewSource(13)), 1)); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 3*window/4 {
		t.Errorf("post-threshold ticket flushed after %v; want a full window (~%v) — stale timer not disarmed", got, window)
	}
}

// TestProfileEveryOneSamplesEveryFlush pins the profileEvery=1 fix:
// flushIdx%1 is always 0, so the old `== 1` comparison never sampled.
func TestProfileEveryOneSamplesEveryFlush(t *testing.T) {
	c := New(testMkt, time.Hour, 1, 1) // every ticket threshold-flushes alone
	defer c.Close()
	var prev uint64
	for i := 0; i < 3; i++ {
		if err := c.Price(mkTicket(rand.New(rand.NewSource(int64(i)+21)), 8)); err != nil {
			t.Fatal(err)
		}
		mix := c.OpMix()
		if mix.Items <= prev {
			t.Fatalf("flush %d: op mix items = %d (previous %d); profileEvery=1 must sample every flush", i+1, mix.Items, prev)
		}
		prev = mix.Items
	}
}

// TestPerTicketDeadlineCheckedAtDistribution: a ticket whose own deadline
// expired while riding a flush bounded by a later deadline must fail with
// DeadlineExceeded, not receive a 200-grade result after its deadline.
func TestPerTicketDeadlineCheckedAtDistribution(t *testing.T) {
	c := New(testMkt, 60*time.Millisecond, 1<<20, 0)
	defer c.Close()

	short := mkTicket(rand.New(rand.NewSource(31)), 4)
	short.Deadline = time.Now().Add(5 * time.Millisecond)
	long := mkTicket(rand.New(rand.NewSource(32)), 4)
	long.Deadline = time.Now().Add(10 * time.Second)

	var wg sync.WaitGroup
	var errShort, errLong error
	wg.Add(2)
	go func() { defer wg.Done(); errShort = c.Price(short) }()
	go func() { defer wg.Done(); errLong = c.Price(long) }()
	wg.Wait()

	if !errors.Is(errShort, context.DeadlineExceeded) {
		t.Errorf("short-deadline ticket: err = %v, want DeadlineExceeded", errShort)
	}
	if errLong != nil {
		t.Fatalf("long-deadline ticket: %v", errLong)
	}
	wantCalls, wantPuts := priceDirect(t, long)
	for j := range wantCalls {
		if long.Calls[j] != wantCalls[j] || long.Puts[j] != wantPuts[j] {
			t.Fatalf("long ticket option %d: (%v,%v) != direct (%v,%v)",
				j, long.Calls[j], long.Puts[j], wantCalls[j], wantPuts[j])
		}
	}
}

// TestCloseStopsTimer pins that Close really stops the window timer its
// doc comment claims it stops.
func TestCloseStopsTimer(t *testing.T) {
	c := New(testMkt, time.Hour, 1<<20, 0)
	tk := mkTicket(rand.New(rand.NewSource(41)), 2)
	errCh := make(chan error, 1)
	go func() { errCh <- c.Price(tk) }()
	for {
		c.mu.Lock()
		armed := c.timerArmed
		c.mu.Unlock()
		if armed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("pending ticket after Close: err = %v, want canceled", err)
	}
	if c.timer.Stop() {
		t.Error("window timer still armed after Close")
	}
	c.mu.Lock()
	armed := c.timerArmed
	c.mu.Unlock()
	if armed {
		t.Error("timerArmed still set after Close")
	}
}

// TestBatchTicketPools pins the freelist contract: pooled batches and
// tickets come back correctly sized, and the recycled distribution copies
// survive the mega-batch being returned to the pool.
func TestBatchTicketPools(t *testing.T) {
	for _, n := range []int{1, 3, 16, 100, 1000} {
		b := GetBatch(n)
		if len(b.Spots) != n || len(b.Strikes) != n || len(b.Expiries) != n ||
			len(b.Calls) != n || len(b.Puts) != n {
			t.Fatalf("GetBatch(%d): lengths %d/%d/%d/%d/%d", n,
				len(b.Spots), len(b.Strikes), len(b.Expiries), len(b.Calls), len(b.Puts))
		}
		PutBatch(b)
		tk := GetTicket(n)
		if len(tk.Spots) != n || len(tk.Calls) != n || len(tk.Puts) != n {
			t.Fatalf("GetTicket(%d): lengths %d/%d/%d", n, len(tk.Spots), len(tk.Calls), len(tk.Puts))
		}
		PutTicket(tk)
	}

	// A pooled ticket priced through the coalescer keeps its results after
	// the flush's mega-batch scratch is recycled into later flushes.
	c := New(testMkt, time.Hour, 1, 0)
	defer c.Close()
	rng := rand.New(rand.NewSource(51))
	first := GetTicket(8)
	src := mkTicket(rng, 8)
	copy(first.Spots, src.Spots)
	copy(first.Strikes, src.Strikes)
	copy(first.Expiries, src.Expiries)
	if err := c.Price(first); err != nil {
		t.Fatal(err)
	}
	wantCalls, wantPuts := priceDirect(t, first)
	for i := 0; i < 4; i++ { // churn the batch pool with other flushes
		if err := c.Price(mkTicket(rng, 8)); err != nil {
			t.Fatal(err)
		}
	}
	for j := range wantCalls {
		if first.Calls[j] != wantCalls[j] || first.Puts[j] != wantPuts[j] {
			t.Fatalf("option %d: pooled ticket results corrupted by batch recycling", j)
		}
	}
	PutTicket(first)
}

// TestCoalescerStress hammers Price/Flush/Snapshot/OpMix concurrently; its
// real assertions come from the race detector (this package is in the
// check.sh race list) plus per-ticket bit-verification.
func TestCoalescerStress(t *testing.T) {
	c := New(testMkt, 500*time.Microsecond, 512, 4)
	defer c.Close()

	const (
		workers = 8
		rounds  = 30
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			for r := 0; r < rounds; r++ {
				tk := mkTicket(rng, 1+rng.Intn(64))
				if err := c.Price(tk); err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				wantCalls, _ := priceDirect(t, tk)
				for j := range wantCalls {
					if tk.Calls[j] != wantCalls[j] {
						t.Errorf("worker %d round %d option %d mismatch", w, r, j)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				c.Flush()
				_ = c.Snapshot()
				_ = c.OpMix()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(done)

	snap := c.Snapshot()
	if snap.Flushes == 0 {
		t.Error("no flushes recorded")
	}
	if got := snap.SoloFlushes + snap.CoalescedTickets; got == 0 {
		t.Errorf("ticket accounting empty: %+v", snap)
	}
}
