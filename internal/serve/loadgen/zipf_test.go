package loadgen

import (
	"math"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"

	"finbench/internal/serve"
)

// TestZipfCDFShapes: s=0 is uniform, larger s concentrates mass on the
// low ranks, and the CDF is a proper distribution.
func TestZipfCDFShapes(t *testing.T) {
	uni := zipfCDF(4, 0)
	for r, want := range []float64{0.25, 0.5, 0.75, 1.0} {
		if math.Abs(uni[r]-want) > 1e-12 {
			t.Fatalf("uniform cdf[%d] = %v, want %v", r, uni[r], want)
		}
	}
	for _, s := range []float64{1.0, 1.3} {
		cdf := zipfCDF(64, s)
		if math.Abs(cdf[63]-1.0) > 1e-12 {
			t.Fatalf("s=%v cdf does not end at 1: %v", s, cdf[63])
		}
		if cdf[0] <= 1.0/64 {
			t.Fatalf("s=%v puts no extra mass on rank 0: %v", s, cdf[0])
		}
	}
	// Heavier skew, heavier head.
	if zipfCDF(64, 1.3)[0] <= zipfCDF(64, 1.0)[0] {
		t.Fatal("s=1.3 head mass not above s=1.0")
	}
}

// TestZipfRankDistribution: sampled frequencies follow the rank weights
// (rank 0 strictly hottest for s>0) and every rank is reachable.
func TestZipfRankDistribution(t *testing.T) {
	cdf := zipfCDF(8, 1.0)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 8)
	for i := 0; i < 20000; i++ {
		counts[zipfRank(rng, cdf)]++
	}
	for r := 1; r < 8; r++ {
		if counts[r] == 0 {
			t.Fatalf("rank %d never sampled", r)
		}
	}
	if counts[0] <= counts[7]*2 {
		t.Fatalf("rank 0 (%d) not clearly hotter than rank 7 (%d)", counts[0], counts[7])
	}
}

// TestBatchPoolsDeterministic: the same seed reproduces the same pool
// (the hot set must be stable across runs for honest hit-rate ladders),
// and different seeds differ.
func TestBatchPoolsDeterministic(t *testing.T) {
	o := Options{Seed: 42, OptionsPerRequest: 4, ZipfPool: 8}.withDefaults()
	table := []string{"closed-form", "monte-carlo"}
	a := batchPools(o, table)
	b := batchPools(o, table)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different pools")
	}
	o2 := o
	o2.Seed = 43
	if reflect.DeepEqual(a, batchPools(o2, table)) {
		t.Fatal("different seeds produced identical pools")
	}
	if len(a["closed-form"]) != 8 || len(a["closed-form"][0]) != 4 {
		t.Fatalf("pool shape: %d batches x %d options", len(a["closed-form"]), len(a["closed-form"][0]))
	}
	if _, ok := a["greeks"]; ok {
		t.Fatal("greeks must not get a batch pool")
	}
}

// TestZipfRunAgainstCachedServer drives a cache-enabled server in Zipf
// mode end to end: -verify must hold (cache hits bit-match the library)
// and the observed hit rate from the response headers must be high with
// a single hot batch dominating.
func TestZipfRunAgainstCachedServer(t *testing.T) {
	s := serve.New(serve.Config{CacheBytes: 1 << 20, CoalesceMaxBatch: 1, ProfileEvery: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	rep, err := Run(Options{
		BaseURL:           ts.URL,
		Concurrency:       2,
		Requests:          40,
		OptionsPerRequest: 4,
		ZipfPool:          4,
		ZipfS:             1.3,
		Verify:            true,
		Seed:              11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(200) != 40 {
		t.Fatalf("report: %s", rep)
	}
	if rep.Mismatch > 0 {
		t.Fatalf("cache-enabled run had %d bit mismatches: %s", rep.Mismatch, rep)
	}
	if rep.Verified == 0 {
		t.Fatalf("nothing verified: %s", rep)
	}
	considered := rep.CacheHits + rep.CacheMisses + rep.CacheCollapsed
	if considered != 40 {
		t.Fatalf("cache header seen on %d/40 responses: %s", considered, rep)
	}
	// 40 requests over a 4-batch pool: at most 4 cold misses (plus any
	// concurrent duplicates, which collapse rather than miss).
	if rep.CacheMisses > 4 {
		t.Fatalf("more misses than pool entries: %s", rep)
	}
	if rep.HitRate() < 0.8 {
		t.Fatalf("hit rate %.3f below 0.8 over a 4-batch pool: %s", rep.HitRate(), rep)
	}
}

// TestZipfSkewValidation: negative skew is rejected.
func TestZipfSkewValidation(t *testing.T) {
	if _, err := Run(Options{BaseURL: "http://127.0.0.1:0", ZipfPool: 4, ZipfS: -1}); err == nil {
		t.Fatal("negative zipf skew accepted")
	}
}
