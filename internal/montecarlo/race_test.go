package montecarlo

// Race exercise tests: the Monte Carlo kernels parallelize internally
// (parallel.For across options) and are also meant to be callable from
// concurrent request handlers, each on its own batch. Running both levels
// of concurrency at once under `go test -race` gives the detector real
// traffic over the shared normal buffer (read-only by contract) and the
// per-worker RNG streams.

import (
	"sync"
	"testing"

	"finbench/internal/perf"
)

// TestRaceConcurrentBatchPricing prices independent batches from several
// goroutines at once, mixing the streamed kernel (sharing one read-only
// normal buffer across all goroutines and all their workers) with the
// compute-RNG kernel (per-worker streams seeded per goroutine).
func TestRaceConcurrentBatchPricing(t *testing.T) {
	z := normals(1<<12, 3)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			streamed := batch(16)
			Vectorized(streamed, z, mkt, 8, 2, nil)
			computed := batch(16)
			VectorizedComputeRNG(computed, 2048, uint64(g+1), mkt, 8, 2, nil)
			for i := range streamed.Price {
				// A deep-OTM option can price to exactly 0 with stderr 0;
				// only NaN or negative values indicate corruption.
				if !(streamed.Price[i] >= 0 && streamed.StdErr[i] >= 0 &&
					computed.Price[i] >= 0 && computed.StdErr[i] >= 0) {
					t.Errorf("goroutine %d option %d: corrupt result", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRaceCountsMerge exercises the mutex-guarded perf.Counts merge path
// (runParallel with a non-nil counter) concurrently: each goroutine owns
// its counter, while the kernel's internal workers merge into it.
func TestRaceCountsMerge(t *testing.T) {
	z := normals(1<<10, 5)
	var wg sync.WaitGroup
	counts := make([]perf.Counts, 4)
	for g := range counts {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := batch(32)
			RefScalar(b, z, mkt, &counts[g])
		}(g)
	}
	wg.Wait()
	for g, c := range counts {
		if c.Items == 0 {
			t.Errorf("goroutine %d: no items recorded", g)
		}
	}
}
