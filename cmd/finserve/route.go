package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"finbench/internal/resilience"
	"finbench/internal/serve/shard"
)

// runRoute fronts a fleet of replicas with the shard router. Backends
// come either from -backends (already-running URLs) or -replicas N
// (spawned as children of this binary, revived after -restart-delay if
// they die — the chaos harness kills one mid-burst by the pid logged
// here and watches the breaker open and recover).
func runRoute(args []string) int {
	fs := flag.NewFlagSet("finserve route", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8200", "router listen address")
		backendsStr  = fs.String("backends", "", "comma-separated replica base URLs (mutually exclusive with -replicas)")
		replicas     = fs.Int("replicas", 0, "spawn N replica child processes of this binary")
		portBase     = fs.Int("port-base", 9100, "first replica port when spawning")
		replicaFlags = fs.String("replica-flags", "", "extra space-separated flags passed to each spawned 'serve' (e.g. '-fault-spec 42:0.1:reset')")
		restartDelay = fs.Duration("restart-delay", 0, "revive a dead spawned replica after this delay (0 = no revival)")
		healthEvery  = fs.Duration("health-interval", 0, "health-check period (0 = default)")
		healthTO     = fs.Duration("health-timeout", 0, "health-probe timeout (0 = default)")
		maxAttempts  = fs.Int("max-attempts", 0, "attempts per request incl. the first (0 = default 3)")
		hedgeDelay   = fs.Duration("hedge-delay", 0, "hedge a second replica after this delay (0 = off)")
		budgetRatio  = fs.Float64("budget-ratio", 0, "retry-budget tokens earned per request (0 = default, <0 = unlimited)")
		budgetCap    = fs.Float64("budget-cap", 0, "retry-budget token cap (0 = default)")
		brkFailures  = fs.Int("breaker-failures", 0, "consecutive failures that open a breaker (0 = default)")
		brkOpenFor   = fs.Duration("breaker-open-for", 0, "how long an open breaker refuses before probing (0 = default)")
		cacheTier    = fs.String("cache-tier", "none", "pricing cache placement: none, router (one cache in this process), or replica (each spawned replica caches; requires -replicas)")
		cacheBytes   = fs.Int64("cache-bytes", 64<<20, "cache byte budget for the selected tier")
		cacheTTL     = fs.Duration("cache-ttl", 0, "cache entry TTL for the selected tier (0 = never expire)")
	)
	_ = fs.Parse(args)

	var routerCacheBytes int64
	switch *cacheTier {
	case "none":
	case "router":
		routerCacheBytes = *cacheBytes
	case "replica":
		if *replicas <= 0 {
			fmt.Fprintln(os.Stderr, "route: -cache-tier replica requires -replicas (already-running -backends configure their own cache)")
			return 2
		}
		*replicaFlags = strings.TrimSpace(*replicaFlags +
			fmt.Sprintf(" -cache-bytes %d -cache-ttl %s", *cacheBytes, *cacheTTL))
	default:
		fmt.Fprintf(os.Stderr, "route: unknown -cache-tier %q (none|router|replica)\n", *cacheTier)
		return 2
	}

	var urls []string
	var sup *supervisor
	switch {
	case *backendsStr != "" && *replicas > 0:
		fmt.Fprintln(os.Stderr, "route: -backends and -replicas are mutually exclusive")
		return 2
	case *backendsStr != "":
		for _, u := range strings.Split(*backendsStr, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
	case *replicas > 0:
		sup = newSupervisor(*replicas, *portBase, strings.Fields(*replicaFlags), *restartDelay)
		urls = sup.urls
		sup.startAll()
		defer sup.stopAll()
	default:
		fmt.Fprintln(os.Stderr, "route: need -backends or -replicas")
		return 2
	}

	router, err := shard.New(shard.Config{
		Backends:       urls,
		HealthInterval: *healthEvery,
		HealthTimeout:  *healthTO,
		MaxAttempts:    *maxAttempts,
		HedgeDelay:     *hedgeDelay,
		BudgetRatio:    *budgetRatio,
		BudgetCap:      *budgetCap,
		Breaker: resilience.BreakerConfig{
			FailureThreshold: *brkFailures,
			OpenFor:          *brkOpenFor,
		},
		CacheBytes: routerCacheBytes,
		CacheTTL:   *cacheTTL,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "route: %v\n", err)
		return 2
	}
	router.Start()
	defer router.Close()

	hs := &http.Server{Addr: *addr, Handler: router}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "route: listening on %s fronting %d replicas\n", *addr, len(urls))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "route: %v\n", err)
		return 1
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "route: %v, shutting down\n", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	return 0
}

// supervisor spawns and revives replica child processes.
type supervisor struct {
	urls         []string
	addrs        []string
	extraFlags   []string
	restartDelay time.Duration

	mu       sync.Mutex
	procs    []*exec.Cmd
	stopping atomic.Bool
	wg       sync.WaitGroup
}

func newSupervisor(n, portBase int, extraFlags []string, restartDelay time.Duration) *supervisor {
	s := &supervisor{extraFlags: extraFlags, restartDelay: restartDelay}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("127.0.0.1:%d", portBase+i)
		s.addrs = append(s.addrs, addr)
		s.urls = append(s.urls, "http://"+addr)
	}
	s.procs = make([]*exec.Cmd, n)
	return s
}

func (s *supervisor) startAll() {
	for i := range s.addrs {
		s.wg.Add(1)
		go s.supervise(i)
	}
}

// supervise runs replica i, restarting it after restartDelay when it
// dies unexpectedly. Every (re)start logs the pid so a chaos script can
// kill a specific replica mid-burst.
func (s *supervisor) supervise(i int) {
	defer s.wg.Done()
	for {
		if s.stopping.Load() {
			return
		}
		args := append([]string{"serve", "-addr", s.addrs[i]}, s.extraFlags...)
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "route: replica %d failed to start: %v\n", i, err)
			return
		}
		s.mu.Lock()
		s.procs[i] = cmd
		s.mu.Unlock()
		fmt.Fprintf(os.Stderr, "route: replica %d pid %d addr %s\n", i, cmd.Process.Pid, s.addrs[i])
		err := cmd.Wait()
		if s.stopping.Load() {
			return
		}
		fmt.Fprintf(os.Stderr, "route: replica %d exited: %v\n", i, err)
		if s.restartDelay <= 0 {
			return
		}
		time.Sleep(s.restartDelay)
	}
}

func (s *supervisor) stopAll() {
	s.stopping.Store(true)
	s.mu.Lock()
	for _, cmd := range s.procs {
		if cmd != nil && cmd.Process != nil {
			_ = cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		s.mu.Lock()
		for _, cmd := range s.procs {
			if cmd != nil && cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
		}
		s.mu.Unlock()
	}
}
