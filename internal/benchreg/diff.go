package benchreg

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Gate is the noise-aware regression rule. A kernel regresses only when
// both conditions hold:
//
//  1. its median throughput dropped by more than MaxSlowdown, and
//  2. the absolute drop exceeds MADFactor x the larger of the two runs'
//     throughput MADs (the drop is outside either run's own noise band).
//
// Condition 2 alone would flag microscopically-jittery kernels whose MAD
// rounds to ~0; condition 1 alone would flag any noisy kernel on a loaded
// machine. Together they encode "meaningfully and credibly slower".
type Gate struct {
	// MaxSlowdown is the tolerated fractional throughput drop (0.10 =
	// new median may be up to 10% below old before condition 1 trips).
	MaxSlowdown float64
	// MADFactor scales the noise band (3 ≈ a z-score of ~4.5 for normal
	// noise, since MAD ≈ 0.6745 sigma).
	MADFactor float64
	// MaxAllocIncrease is the tolerated fractional allocs/op growth on
	// records with GateAllocs set, and AllocSlack is an absolute
	// allowance on top of it (sub-allocation jitter from the runtime —
	// timer churn, map growth on a boundary — without forgiving a real
	// new per-request allocation). Allocation counts are deterministic
	// per binary, so there is no MAD band and no calibration scaling:
	// new > old*(1+MaxAllocIncrease) + AllocSlack is a regression.
	MaxAllocIncrease float64
	AllocSlack       float64
}

// DefaultGate is the documented default: >10% slower and beyond 3xMAD;
// allocs/op on gated records may grow 10% plus half an allocation.
func DefaultGate() Gate {
	return Gate{MaxSlowdown: 0.10, MADFactor: 3, MaxAllocIncrease: 0.10, AllocSlack: 0.5}
}

// Regression reports whether new is a regression of old under the gate.
func (g Gate) Regression(old, new Record) bool {
	drop := old.OpsPerSec - new.OpsPerSec
	if drop <= old.OpsPerSec*g.MaxSlowdown {
		return false
	}
	noise := g.MADFactor * math.Max(old.OpsMAD, new.OpsMAD)
	return drop > noise
}

// AllocRegression reports whether new allocates meaningfully more per
// op than old. Only records that opted in (GateAllocs on the candidate
// side) are gated; an old record without the field (schema upgrades set
// AllocsPerOp only going forward) still compares, since its zero can
// only make the rule stricter, never hide growth.
func (g Gate) AllocRegression(old, new Record) bool {
	if !new.GateAllocs {
		return false
	}
	return new.AllocsPerOp > old.AllocsPerOp*(1+g.MaxAllocIncrease)+g.AllocSlack
}

// Delta is one kernel's comparison between two snapshots.
type Delta struct {
	Key   string
	Units string
	// Old and New are nil when the kernel exists on only one side
	// (removed or added kernels — reported, never gated).
	Old *Record
	New *Record
	// Ratio is new/old median throughput (>1 is faster); 0 when either
	// side is missing.
	Ratio float64
	// Regression is set by the gate that produced the delta.
	Regression bool
	// AllocRegression reports allocs/op growth beyond the gate on a
	// GateAllocs record (never calibration-scaled).
	AllocRegression bool
}

// Diff compares two snapshots kernel-by-kernel under the gate, returning
// deltas sorted worst-ratio-first (missing-side deltas sort last).
func Diff(old, new *Snapshot, g Gate) []Delta {
	return diffScaled(old, new, g, 1)
}

// diffScaled is Diff with the baseline side rescaled by factor (the
// calibration speed ratio) before ratios and the gate are evaluated; the
// displayed Old record keeps its raw values.
func diffScaled(old, new *Snapshot, g Gate, factor float64) []Delta {
	if factor <= 0 {
		factor = 1
	}
	oldIdx, newIdx := old.index(), new.index()
	keys := make([]string, 0, len(oldIdx)+len(newIdx))
	for k := range oldIdx {
		keys = append(keys, k)
	}
	for k := range newIdx {
		if _, ok := oldIdx[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	deltas := make([]Delta, 0, len(keys))
	for _, key := range keys {
		o, hasOld := oldIdx[key]
		n, hasNew := newIdx[key]
		d := Delta{Key: key}
		switch {
		case hasOld && hasNew:
			d.Units = n.Units
			d.Old, d.New = &o, &n
			scaled := o
			scaled.OpsPerSec *= factor
			scaled.OpsMAD *= factor
			if scaled.OpsPerSec > 0 {
				d.Ratio = n.OpsPerSec / scaled.OpsPerSec
			}
			d.Regression = g.Regression(scaled, n)
			// Allocation counts do not drift with machine speed, so the
			// alloc rule sees the raw baseline, not the rescaled one.
			d.AllocRegression = g.AllocRegression(o, n)
		case hasOld:
			d.Units = o.Units
			d.Old = &o
		default:
			d.Units = n.Units
			d.New = &n
		}
		deltas = append(deltas, d)
	}
	sort.SliceStable(deltas, func(i, j int) bool {
		ri, rj := deltas[i].Ratio, deltas[j].Ratio
		if ri <= 0 {
			ri = math.Inf(1)
		}
		if rj <= 0 {
			rj = math.Inf(1)
		}
		if ri < rj {
			return true
		}
		if ri > rj {
			return false
		}
		return deltas[i].Key < deltas[j].Key
	})
	return deltas
}

// Report is the outcome of checking a candidate snapshot against a
// baseline.
type Report struct {
	Deltas      []Delta
	Regressions []Delta
	// EnvMatch reports whether the two snapshots' environment
	// fingerprints are comparable; when false, regressions are
	// advisory (Failed returns false unless strict).
	EnvMatch bool
	// SpeedFactor is the candidate/baseline calibration-throughput ratio
	// applied to the baseline before gating (1 when either snapshot
	// lacks calibration). A factor of 0.7 means the candidate machine
	// ran the memory-free calibration kernel 30% slower — uniform drift
	// the per-kernel ratios are corrected for.
	SpeedFactor      float64
	BaselineEnv      Env
	CandidateEnv     Env
	Gate             Gate
	BaselineCreated  string
	CandidateCreated string
}

// Check diffs candidate against baseline under the gate — with the
// baseline rescaled by the calibration speed ratio when both snapshots
// carry one — and bundles the result with the environment comparability
// verdict.
func Check(baseline, candidate *Snapshot, g Gate) *Report {
	factor := 1.0
	if baseline.CalibOpsPerSec > 0 && candidate.CalibOpsPerSec > 0 {
		factor = candidate.CalibOpsPerSec / baseline.CalibOpsPerSec
	}
	r := &Report{
		Deltas:           diffScaled(baseline, candidate, g, factor),
		EnvMatch:         baseline.Env.Comparable(candidate.Env),
		SpeedFactor:      factor,
		BaselineEnv:      baseline.Env,
		CandidateEnv:     candidate.Env,
		Gate:             g,
		BaselineCreated:  baseline.CreatedAt,
		CandidateCreated: candidate.CreatedAt,
	}
	for _, d := range r.Deltas {
		if d.Regression || d.AllocRegression {
			r.Regressions = append(r.Regressions, d)
		}
	}
	return r
}

// Failed reports whether the check should gate (exit nonzero). With
// strictEnv false — the default — regressions on mismatched environments
// are warnings: a different CPU model or GOMAXPROCS shifts every kernel
// at once, and failing on that punishes the runner, not the code.
func (r *Report) Failed(strictEnv bool) bool {
	if len(r.Regressions) == 0 {
		return false
	}
	return r.EnvMatch || strictEnv
}

// deltaCells renders the shared row fields of a delta.
func deltaCells(d Delta) (oldS, newS, ratioS, allocS, verdict string) {
	switch {
	case d.Old == nil:
		return "-", fmtOps(d.New.OpsPerSec), "-", fmtAllocs(d.New), "added"
	case d.New == nil:
		return fmtOps(d.Old.OpsPerSec), "-", "-", "-", "removed"
	}
	oldS = fmtOps(d.Old.OpsPerSec) + "±" + fmtOps(d.Old.OpsMAD)
	newS = fmtOps(d.New.OpsPerSec) + "±" + fmtOps(d.New.OpsMAD)
	ratioS = fmt.Sprintf("%.3f", d.Ratio)
	allocS = fmt.Sprintf("%s→%s", fmtAllocs(d.Old), fmtAllocs(d.New))
	verdict = "ok"
	switch {
	case d.Regression && d.AllocRegression:
		verdict = "REGRESSION+ALLOC"
	case d.Regression:
		verdict = "REGRESSION"
	case d.AllocRegression:
		verdict = "ALLOC-REGRESSION"
	case d.Ratio > 1.10:
		verdict = "improved"
	}
	return oldS, newS, ratioS, allocS, verdict
}

// fmtAllocs renders a record's allocs/op; gated records are starred so
// the table shows which rows the alloc rule applies to.
func fmtAllocs(r *Record) string {
	s := fmt.Sprintf("%.3g", r.AllocsPerOp)
	if r.GateAllocs {
		s += "*"
	}
	return s
}

// fmtOps renders a throughput in engineering units.
func fmtOps(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gK", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Table renders the per-kernel delta table as aligned text.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline:  %s\ncandidate: %s\n", r.BaselineEnv, r.CandidateEnv)
	if r.SpeedFactor < 0.999 || r.SpeedFactor > 1.001 {
		fmt.Fprintf(&b, "calibration speed factor %.3f applied to baseline (ratios are drift-corrected)\n", r.SpeedFactor)
	}
	if !r.EnvMatch {
		fmt.Fprintf(&b, "note: environment fingerprints differ; regressions below are advisory\n")
	}
	fmt.Fprintf(&b, "%-52s %-10s %18s %18s %8s %14s %s\n", "kernel", "units", "old", "new", "ratio", "allocs/op", "verdict")
	for _, d := range r.Deltas {
		oldS, newS, ratioS, allocS, verdict := deltaCells(d)
		fmt.Fprintf(&b, "%-52s %-10s %18s %18s %8s %14s %s\n", d.Key, d.Units, oldS, newS, ratioS, allocS, verdict)
	}
	fmt.Fprintf(&b, "%d kernels compared, %d regression(s) beyond %.0f%%+%gxMAD or allocs/op +%.0f%%+%g on gated (*) rows\n",
		len(r.Deltas), len(r.Regressions), r.Gate.MaxSlowdown*100, r.Gate.MADFactor,
		r.Gate.MaxAllocIncrease*100, r.Gate.AllocSlack)
	return b.String()
}

// Markdown renders the delta table as GitHub-flavored markdown for CI job
// summaries.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark delta\n\n")
	fmt.Fprintf(&b, "- baseline env: `%s`\n- candidate env: `%s`\n", r.BaselineEnv, r.CandidateEnv)
	if r.SpeedFactor < 0.999 || r.SpeedFactor > 1.001 {
		fmt.Fprintf(&b, "- calibration speed factor `%.3f` applied to baseline (ratios are drift-corrected)\n", r.SpeedFactor)
	}
	if !r.EnvMatch {
		fmt.Fprintf(&b, "- **environment fingerprints differ** — deltas are advisory, not gated\n")
	}
	fmt.Fprintf(&b, "\n| kernel | units | old (median±MAD) | new (median±MAD) | ratio | allocs/op | verdict |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---:|---|\n")
	for _, d := range r.Deltas {
		oldS, newS, ratioS, allocS, verdict := deltaCells(d)
		if strings.Contains(verdict, "REGRESSION") {
			verdict = "**" + verdict + "**"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s |\n", d.Key, d.Units, oldS, newS, ratioS, allocS, verdict)
	}
	fmt.Fprintf(&b, "\n%d kernels compared, %d regression(s) beyond %.0f%% + %gxMAD (throughput) or +%.0f%% + %g (allocs/op on gated `*` rows).\n",
		len(r.Deltas), len(r.Regressions), r.Gate.MaxSlowdown*100, r.Gate.MADFactor,
		r.Gate.MaxAllocIncrease*100, r.Gate.AllocSlack)
	return b.String()
}
