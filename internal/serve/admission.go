package serve

import (
	"sync"
	"time"

	"finbench"
)

// Admission control. Every request costs a number of work units
// proportional to its estimated CPU time (method weight x option count);
// a weighted semaphore bounds the units in flight. Requests that cannot
// acquire their units within a short bounded wait are shed with 503 —
// fast rejection at the door instead of a queue that grows without bound
// and blows every deadline (the server's overload answer). A token
// bucket in front rate-limits request *count* independently of size.

// unitCost estimates the work units of pricing n options with the given
// method and resolved config. Units are scaled so one closed-form option
// costs ~1; the heavy methods' weights come from their operation counts
// (a 1024-step tree touches ~steps^2/2 nodes, a 256x1000 Crank-Nicolson
// grid ~grid*steps PSOR updates, Monte Carlo ~paths exp evaluations).
func unitCost(method finbench.Method, cfg finbench.Config, n int) int64 {
	var per int64
	switch method {
	case finbench.ClosedForm:
		per = 1
	case finbench.BinomialTree, finbench.TrinomialTree:
		s := int64(cfg.BinomialSteps)
		per = s*s/1000 + 1
	case finbench.FiniteDifference:
		per = int64(cfg.GridPoints)*int64(cfg.TimeSteps)/50 + 1
	case finbench.MonteCarlo:
		per = int64(cfg.MCPaths)/25 + 1
	default:
		per = 1
	}
	return per * int64(n)
}

// admission is a weighted semaphore with FIFO waiters and bounded waits.
type admission struct {
	mu  sync.Mutex
	max int64
	cur int64
	q   []*admWaiter
}

type admWaiter struct {
	units int64
	ready chan struct{}
}

func newAdmission(maxUnits int64) *admission {
	return &admission{max: maxUnits}
}

// acquire obtains units, waiting at most wait. Requests larger than the
// whole budget are clamped so they can still run (alone). Returns the
// units actually held (to pass to release) and whether admission
// succeeded.
func (a *admission) acquire(units int64, wait time.Duration) (int64, bool) {
	if units > a.max {
		units = a.max
	}
	a.mu.Lock()
	if len(a.q) == 0 && a.cur+units <= a.max {
		a.cur += units
		a.mu.Unlock()
		return units, true
	}
	if wait <= 0 {
		a.mu.Unlock()
		return 0, false
	}
	w := &admWaiter{units: units, ready: make(chan struct{})}
	a.q = append(a.q, w)
	a.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.ready:
		return units, true
	case <-timer.C:
		a.mu.Lock()
		select {
		case <-w.ready:
			// Granted between the timeout firing and taking the lock.
			a.mu.Unlock()
			return units, true
		default:
		}
		for i, q := range a.q {
			if q == w {
				a.q = append(a.q[:i], a.q[i+1:]...)
				break
			}
		}
		a.mu.Unlock()
		return 0, false
	}
}

// release returns units and grants queued waiters in FIFO order.
func (a *admission) release(units int64) {
	a.mu.Lock()
	a.cur -= units
	for len(a.q) > 0 && a.cur+a.q[0].units <= a.max {
		w := a.q[0]
		a.q = a.q[1:]
		a.cur += w.units
		close(w.ready)
	}
	a.mu.Unlock()
}

// inFlight returns the units currently held.
func (a *admission) inFlight() int64 {
	a.mu.Lock()
	v := a.cur
	a.mu.Unlock()
	return v
}

// queued returns the number of requests waiting for admission — the
// queue-depth signal /healthz exposes for router load scoring.
func (a *admission) queued() int {
	a.mu.Lock()
	n := len(a.q)
	a.mu.Unlock()
	return n
}

// bucket is a token-bucket request-rate limiter. A nil bucket allows
// everything.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

func (b *bucket) allow() bool {
	if b == nil {
		return true
	}
	now := time.Now()
	b.mu.Lock()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		b.mu.Unlock()
		return false
	}
	b.tokens--
	b.mu.Unlock()
	return true
}
