// Package montecarlo implements the European Monte Carlo option pricing
// kernel of Sec. IV-D (Lis. 5) and Table II.
//
// Each option is priced by integrating the terminal Black-Scholes density
// over npath sampled paths: res = max(0, S*exp(vol*sqrt(T)*z + mu*T) - X)
// with mu = r - vol^2/2, accumulating the payoff sum (v0) and the sum of
// squares (v1) for the confidence interval.
//
// Two practical modes mirror Table II's rows:
//
//   - Stream: normals are pre-generated and streamed from memory (m_r);
//     the same sequence is reused for every option. Instruction overhead
//     of the double-precision exp keeps the kernel compute-bound anyway.
//   - Compute: normals are generated inline (vectorized MT19937+ICDF per
//     worker); generation dominates the runtime.
//
// Variants: RefScalar (the naive loop), Vectorized (inner-loop SIMD with
// lane accumulators and unrolling — the paper reaches peak with basic
// pragmas here), and antithetic variates as a variance-reduction
// extension.
package montecarlo // finlint:hot — allocation-free loops enforced by internal/lint

import (
	"context"

	"finbench/internal/mathx"
	"finbench/internal/parallel"
	"finbench/internal/perf"
	"finbench/internal/rng"
	"finbench/internal/vec"
	"finbench/internal/workload"
)

// Result is the Monte Carlo estimate for one option.
type Result struct {
	// Price is the discounted mean payoff.
	Price float64
	// StdErr is the discounted standard error of the mean.
	StdErr float64
}

// estimate converts payoff accumulators into a discounted estimate.
func estimate(v0, v1 float64, npath int, t float64, mkt workload.MarketParams) Result {
	n := float64(npath)
	mean := v0 / n
	variance := v1/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	df := mathx.Exp(-mkt.R * t)
	return Result{
		Price:  df * mean,
		StdErr: df * mathx.Sqrt(variance/n),
	}
}

// PriceScalarStream prices one option from a pre-generated normal stream
// (Lis. 5 with STREAM true).
func PriceScalarStream(s, x, t float64, z []float64, mkt workload.MarketParams) Result {
	vRtT := mathx.Sqrt(t) * mkt.Sigma
	muT := t * (mkt.R - mkt.Sigma*mkt.Sigma/2)
	var v0, v1 float64
	for _, r := range z {
		res := s*mathx.Exp(vRtT*r+muT) - x
		if res < 0 {
			res = 0
		}
		v0 += res
		v1 += res * res
	}
	return estimate(v0, v1, len(z), t, mkt)
}

// RefScalar prices every option in the SOA batch against the shared normal
// stream z, one path at a time (the reference code path). Put outputs hold
// the standard error.
func RefScalar(s *workload.MCBatch, z []float64, mkt workload.MarketParams, c *perf.Counts) {
	n := len(s.S)
	runParallel(n, c, func(lo, hi int, c *perf.Counts) {
		for i := lo; i < hi; i++ {
			res := PriceScalarStream(s.S[i], s.X[i], s.T[i], z, mkt)
			s.Price[i] = res.Price
			s.StdErr[i] = res.StdErr
		}
		if c != nil {
			paths := uint64(hi-lo) * uint64(len(z))
			c.Add(perf.OpExp, paths)
			c.Add(perf.OpScalar, paths*5)
			c.Add(perf.OpScalarLoad, paths)
		}
	})
	if c != nil {
		// The shared normal buffer is streamed from DRAM once and then
		// served from the cache hierarchy across options ("the same set of
		// numbers is used for all options"; the paper observes the kernel
		// "remains compute-bound", Sec. IV-D1, which requires this reuse).
		c.AddBytes(uint64(len(z))*8, uint64(16*n))
		c.Items += uint64(n)
	}
}

// Vectorized prices the batch with the paper's peak configuration:
// inner-loop SIMD over paths with `unroll` independent accumulator pairs
// (the #pragma unroll that breaks the back-to-back dependence), streaming
// normals from z. Path counts must be a multiple of width*unroll for the
// vector body; a scalar tail handles the rest.
func Vectorized(s *workload.MCBatch, z []float64, mkt workload.MarketParams, width, unroll int, c *perf.Counts) {
	if unroll < 1 {
		unroll = 1
	}
	n := len(s.S)
	runParallel(n, c, func(lo, hi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		for i := lo; i < hi; i++ {
			v0, v1 := pathLoopStream(ctx, s.S[i], s.X[i], s.T[i], z, mkt, unroll)
			res := estimate(v0, v1, len(z), s.T[i], mkt)
			s.Price[i] = res.Price
			s.StdErr[i] = res.StdErr
		}
	})
	if c != nil {
		// See RefScalar: the shared normal buffer is charged once.
		c.AddBytes(uint64(len(z))*8, uint64(16*n))
		c.Items += uint64(n)
	}
}

// pathLoopStream is the vector inner loop shared by the streamed variants.
func pathLoopStream(ctx vec.Ctx, s, x, t float64, z []float64, mkt workload.MarketParams, unroll int) (v0, v1 float64) {
	vRtT := ctx.Broadcast(mathx.Sqrt(t) * mkt.Sigma)
	muT := ctx.Broadcast(t * (mkt.R - mkt.Sigma*mkt.Sigma/2))
	sv := ctx.Broadcast(s)
	xv := ctx.Broadcast(x)
	zero := ctx.Zero()
	width := ctx.W
	block := width * unroll
	acc0 := make([]vec.Vec, unroll)
	acc1 := make([]vec.Vec, unroll)
	p := 0
	for ; p+block <= len(z); p += block {
		for u := 0; u < unroll; u++ {
			r := ctx.Load(z, p+u*width)
			res := ctx.Max(zero, ctx.Sub(ctx.Mul(sv, ctx.Exp(ctx.FMA(vRtT, r, muT))), xv))
			acc0[u] = ctx.Add(acc0[u], res)
			acc1[u] = ctx.FMA(res, res, acc1[u])
		}
	}
	for u := 0; u < unroll; u++ {
		v0 += ctx.ReduceAdd(acc0[u])
		v1 += ctx.ReduceAdd(acc1[u])
	}
	// Scalar tail.
	vrt := mathx.Sqrt(t) * mkt.Sigma
	mut := t * (mkt.R - mkt.Sigma*mkt.Sigma/2)
	for ; p < len(z); p++ {
		res := s*mathx.Exp(vrt*z[p]+mut) - x
		if res < 0 {
			res = 0
		}
		v0 += res
		v1 += res * res
	}
	return v0, v1
}

// RNGChunk is the buffer size (normals) of the compute-RNG mode; sized to
// stay cache-resident per worker.
const RNGChunk = 4096

// VectorizedComputeRNG prices the batch generating normals inline: each
// worker owns an independent stream and refills a cache-resident chunk as
// the path loop consumes it ("the random-number generation process
// dominates the performance", Sec. IV-D3). A fresh set of normals is drawn
// for every option, matching the paper's computed mode. RNG work IS
// charged here (unlike the Brownian-bridge accounting).
func VectorizedComputeRNG(s *workload.MCBatch, npath int, seed uint64, mkt workload.MarketParams, width, unroll int, c *perf.Counts) {
	// context.Background carries no cancellation signal, so the ctx path
	// below skips every checkpoint and cannot return an error.
	_ = VectorizedComputeRNGCtx(context.Background(), s, npath, seed, mkt, width, unroll, c)
}

// VectorizedComputeRNGCtx is VectorizedComputeRNG with cancellation: the
// path loop checks ctx once per RNGChunk refill (a few microseconds of
// work), so an expired pricing request stops burning pool workers at chunk
// granularity. Worker chunks not yet started when ctx is cancelled are
// skipped by the parallel substrate. On a non-nil return the batch outputs
// are partial and must be discarded. An uncancelled run is bit-identical
// to VectorizedComputeRNG (same decomposition, same per-worker streams).
func VectorizedComputeRNGCtx(cx context.Context, s *workload.MCBatch, npath int, seed uint64, mkt workload.MarketParams, width, unroll int, c *perf.Counts) error {
	done := cx.Done()
	n := len(s.S)
	err := runParallelCtx(cx, n, c, func(lo, hi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		stream := rng.NewStream(lo, seed)
		stream.C = c
		buf := make([]float64, RNGChunk)
		for i := lo; i < hi; i++ {
			var v0, v1 float64
			remaining := npath
			for remaining > 0 {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				m := RNGChunk
				if m > remaining {
					m = remaining
				}
				stream.NormalICDF(buf[:m])
				a0, a1 := pathLoopStream(ctx, s.S[i], s.X[i], s.T[i], buf[:m], mkt, unroll)
				v0 += a0
				v1 += a1
				remaining -= m
			}
			res := estimate(v0, v1, npath, s.T[i], mkt)
			s.Price[i] = res.Price
			s.StdErr[i] = res.StdErr
		}
	})
	if err != nil {
		return err
	}
	if c != nil {
		c.AddBytes(0, uint64(16*n))
		c.Items += uint64(n)
	}
	return nil
}

// Antithetic prices the batch with antithetic variates: each normal z is
// paired with -z, halving the number of generated normals per path pair
// and reducing variance for monotone payoffs (Glasserman ch. 4). An
// extension beyond the paper's kernel, used by the ablation benchmarks.
func Antithetic(s *workload.MCBatch, z []float64, mkt workload.MarketParams, width int, c *perf.Counts) {
	n := len(s.S)
	runParallel(n, c, func(lo, hi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		for i := lo; i < hi; i++ {
			t := s.T[i]
			vRtT := ctx.Broadcast(mathx.Sqrt(t) * mkt.Sigma)
			muT := ctx.Broadcast(t * (mkt.R - mkt.Sigma*mkt.Sigma/2))
			sv := ctx.Broadcast(s.S[i])
			xv := ctx.Broadcast(s.X[i])
			zero := ctx.Zero()
			var acc0, acc1 vec.Vec
			p := 0
			for ; p+ctx.W <= len(z); p += ctx.W {
				r := ctx.Load(z, p)
				up := ctx.Max(zero, ctx.Sub(ctx.Mul(sv, ctx.Exp(ctx.FMA(vRtT, r, muT))), xv))
				dn := ctx.Max(zero, ctx.Sub(ctx.Mul(sv, ctx.Exp(ctx.FMA(vRtT, ctx.Neg(r), muT))), xv))
				// Average the antithetic pair; accumulate its moments.
				pair := ctx.Mul(ctx.Add(up, dn), ctx.Broadcast(0.5))
				acc0 = ctx.Add(acc0, pair)
				acc1 = ctx.FMA(pair, pair, acc1)
			}
			v0 := ctx.ReduceAdd(acc0)
			v1 := ctx.ReduceAdd(acc1)
			pairs := p / ctx.W * ctx.W
			res := estimate(v0, v1, pairs, t, mkt)
			s.Price[i] = res.Price
			s.StdErr[i] = res.StdErr
		}
	})
	if c != nil {
		c.AddBytes(uint64(len(z))*8, uint64(16*n))
		c.Items += uint64(n)
	}
}

func runParallel(n int, c *perf.Counts, run func(lo, hi int, c *perf.Counts)) {
	if c == nil {
		parallel.For(n, func(lo, hi int) { run(lo, hi, nil) })
		return
	}
	parallel.ForIndexedMerged(n, c, func(_, lo, hi int, local *perf.Counts) {
		run(lo, hi, local)
	})
}

// runParallelCtx is runParallel over the cancellable parallel regions:
// worker chunks skip when cx is already done, and the kernel's own finer
// checkpoints handle mid-chunk expiry.
func runParallelCtx(cx context.Context, n int, c *perf.Counts, run func(lo, hi int, c *perf.Counts)) error {
	if c == nil {
		return parallel.ForCtx(cx, n, func(lo, hi int) { run(lo, hi, nil) })
	}
	return parallel.ForIndexedMergedCtx(cx, n, c, func(_, lo, hi int, local *perf.Counts) {
		run(lo, hi, local)
	})
}
