// Package callgraph is a lint-clean corpus exercising each edge kind
// the call graph resolves: static calls, concrete method calls,
// interface method calls (expanded to module implementers), function
// value references, and a recursion cycle.
package callgraph

// Pinger is implemented by *Impl within this package.
type Pinger interface{ Ping() int }

// Impl implements Pinger with a pointer receiver.
type Impl struct{ n int }

// Ping returns the stored value.
func (im *Impl) Ping() int { return im.n }

// Static calls helper directly.
func Static() int { return helper() }

func helper() int { return 1 }

// Concrete calls a method on a concrete receiver.
func Concrete(im *Impl) int { return im.Ping() }

// Dynamic calls through the interface; resolution must add edges to the
// interface method and to every module implementer.
func Dynamic(p Pinger) int { return p.Ping() }

// ValueRef references helper as a value without calling it.
func ValueRef() func() int { return helper }

// CycleA and cycleB call each other; reachability must terminate.
func CycleA(n int) int {
	if n <= 0 {
		return 0
	}
	return cycleB(n - 1)
}

func cycleB(n int) int { return CycleA(n) }
