package blackscholes

import (
	"math"

	"finbench/internal/parallel"
	"finbench/internal/workload"
)

// Single-precision kernels. Table I lists both precisions (691 vs 346
// GFLOP/s on SNB-EP, 2127 vs 1063 on KNC): SP doubles the SIMD lane count,
// so compute-bound kernels run up to 2x faster, and SP option batches
// (3 x 4 input + 2 x 4 output bytes = 20 B/option) halve the bandwidth
// bound too. Production pricing desks trade the ~1e-5 relative accuracy of
// SP for exactly that throughput, which is why SP peaks headline vendor
// tables; these kernels quantify the accuracy side of that trade (see
// TestSPAccuracy).

// SOA32 is the single-precision structure-of-arrays option batch.
type SOA32 struct {
	S, X, T   []float32
	Call, Put []float32
}

// NewSOA32 allocates a single-precision batch of n options.
func NewSOA32(n int) *SOA32 {
	return &SOA32{
		S:    make([]float32, n),
		X:    make([]float32, n),
		T:    make([]float32, n),
		Call: make([]float32, n),
		Put:  make([]float32, n),
	}
}

// Len returns the option count.
func (s *SOA32) Len() int { return len(s.S) }

// FromSOA converts a double-precision batch (inputs only).
func FromSOA(d *SOAView) *SOA32 {
	n := len(d.S)
	s := NewSOA32(n)
	for i := 0; i < n; i++ {
		s.S[i] = float32(d.S[i])
		s.X[i] = float32(d.X[i])
		s.T[i] = float32(d.T[i])
	}
	return s
}

// SOAView is the minimal double-precision input view FromSOA reads.
type SOAView struct {
	S, X, T []float64
}

// PriceScalar32 prices one option entirely in float32 arithmetic
// (transcendentals evaluate through the float64 kernels and round, as
// hardware SP SVML would with ~1e-7 relative accuracy; the accumulated
// formula error dominates).
func PriceScalar32(s, x, t float32, mkt workload.MarketParams) (call, put float32) {
	r := float32(mkt.R)
	sig := float32(mkt.Sigma)
	sig22 := sig * sig / 2
	qlog := log32(s / x)
	denom := 1 / (sig * sqrt32(t))
	d1 := (qlog + (r+sig22)*t) * denom
	d2 := (qlog + (r-sig22)*t) * denom
	xexp := x * exp32(-r*t)
	call = s*cnd32(d1) - xexp*cnd32(d2)
	put = xexp*cnd32(-d2) - s*cnd32(-d1)
	return call, put
}

func log32(x float32) float32  { return float32(math.Log(float64(x))) }
func exp32(x float32) float32  { return float32(math.Exp(float64(x))) }
func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }
func cnd32(x float32) float32  { return float32(0.5 * math.Erfc(-float64(x)*math.Sqrt2/2)) }

// PriceBatch32 prices the batch in parallel with the SP scalar kernel (the
// SP analogue of the Intermediate level; SIMD lanes double in the model).
func PriceBatch32(s *SOA32, mkt workload.MarketParams) {
	parallel.For(s.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.Call[i], s.Put[i] = PriceScalar32(s.S[i], s.X[i], s.T[i], mkt)
		}
	})
}

// SPBytesPerOption is the DRAM traffic of one SP option (vs 40 in DP),
// halving the B/40 bandwidth bound of Fig. 4.
const SPBytesPerOption = 20
