package montecarlo

import (
	"errors"

	"finbench/internal/mathx"
	"finbench/internal/rng"
	"finbench/internal/workload"
)

// Heston (1993) stochastic volatility: the variance itself follows a CIR
// square-root diffusion correlated with the asset,
//
//	dS = r S dt + sqrt(v) S dW1
//	dv = Kappa (ThetaV - v) dt + SigmaV sqrt(v) dW2,   corr(dW1,dW2) = Rho.
//
// Simulated with the full-truncation Euler scheme (the standard robust
// discretization: the variance is floored at zero inside the square roots
// but the process itself may go negative between floors). Validation does
// not need the semi-analytic Fourier price: as SigmaV -> 0 the variance
// path becomes deterministic and the model reduces to Black-Scholes with
// the time-averaged volatility, which the tests pin.

// HestonParams holds the variance dynamics.
type HestonParams struct {
	// V0 is the initial variance (vol^2).
	V0 float64
	// Kappa is the mean-reversion speed; ThetaV the long-run variance.
	Kappa, ThetaV float64
	// SigmaV is the vol-of-vol; Rho the asset-variance correlation.
	SigmaV, Rho float64
}

// ErrHeston indicates invalid Heston parameters.
var ErrHeston = errors.New("montecarlo: need V0 >= 0, Kappa >= 0, ThetaV >= 0, SigmaV >= 0, |Rho| <= 1")

// FellerSatisfied reports whether 2 Kappa ThetaV >= SigmaV^2, the condition
// under which the exact CIR process stays strictly positive.
func (h HestonParams) FellerSatisfied() bool {
	return 2*h.Kappa*h.ThetaV >= h.SigmaV*h.SigmaV
}

// HestonCallMC prices a European call under Heston dynamics with
// full-truncation Euler over `steps` intervals.
func HestonCallMC(s, x, t float64, hp HestonParams, npaths, steps int, seed uint64, mkt workload.MarketParams) (Result, error) {
	if hp.V0 < 0 || hp.Kappa < 0 || hp.ThetaV < 0 || hp.SigmaV < 0 || hp.Rho < -1 || hp.Rho > 1 {
		return Result{}, ErrHeston
	}
	if steps < 1 || npaths < 1 {
		return Result{}, errors.New("montecarlo: need steps >= 1 and npaths >= 1")
	}
	dt := t / float64(steps)
	sqDt := mathx.Sqrt(dt)
	rhoC := mathx.Sqrt(1 - hp.Rho*hp.Rho)
	df := mathx.Exp(-mkt.R * t)
	stream := rng.NewStream(0, seed)
	z := make([]float64, 2*steps)
	var v0acc, v1acc float64
	for p := 0; p < npaths; p++ {
		stream.NormalICDF(z)
		logS := 0.0
		v := hp.V0
		for k := 0; k < steps; k++ {
			vp := v
			if vp < 0 {
				vp = 0
			}
			sqV := mathx.Sqrt(vp)
			z1 := z[2*k]
			z2 := hp.Rho*z1 + rhoC*z[2*k+1]
			logS += (mkt.R-vp/2)*dt + sqV*sqDt*z1
			v += hp.Kappa*(hp.ThetaV-vp)*dt + hp.SigmaV*sqV*sqDt*z2
		}
		payoff := s*mathx.Exp(logS) - x
		if payoff < 0 {
			payoff = 0
		}
		payoff *= df
		v0acc += payoff
		v1acc += payoff * payoff
	}
	nn := float64(npaths)
	mean := v0acc / nn
	variance := v1acc/nn - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Result{Price: mean, StdErr: mathx.Sqrt(variance / nn)}, nil
}

// HestonEffectiveVol returns the Black-Scholes-equivalent volatility of the
// deterministic-variance limit (SigmaV = 0): the square root of the
// time-averaged CIR mean path
//
//	v(t) = ThetaV + (V0 - ThetaV) e^{-Kappa t},
//	vbar = ThetaV + (V0 - ThetaV) (1 - e^{-Kappa T})/(Kappa T).
func HestonEffectiveVol(hp HestonParams, t float64) float64 {
	if hp.Kappa == 0 { // finlint:ignore floateq exact parameter sentinel selecting the degenerate CIR limit
		return mathx.Sqrt(hp.V0)
	}
	kT := hp.Kappa * t
	vbar := hp.ThetaV + (hp.V0-hp.ThetaV)*(1-mathx.Exp(-kT))/kT
	return mathx.Sqrt(vbar)
}
