package serve

import (
	"sync/atomic"
	"time"

	"finbench"
)

// Degrade mode. When the shed rate over a sliding window crosses a high
// watermark the server switches to cheaper effective parameters (fewer
// Monte Carlo paths, closed form instead of lattices for European
// options) instead of shedding ever harder; it switches back once the
// shed rate falls below a low watermark (hysteresis prevents flapping).
// Every degraded response reports the substituted method/config, so
// clients always know — and can reproduce — what they actually got.

const (
	degradeWindow     = 250 * time.Millisecond
	degradeHighWater  = 0.10 // shed fraction that turns degrade on
	degradeLowWater   = 0.02 // shed fraction that turns it back off
	degradeMinSamples = 20   // ignore windows with fewer outcomes

	// degradeMCPathDiv and the floors bound how far degrade cuts.
	degradeMCPathDiv    = 8
	degradeMCPathFloor  = 4096
	degradeLatticeDiv   = 4
	degradeStepsFloor   = 64
	degradeTimeStepsMin = 50
)

// degrader tracks admit/shed outcomes and flips the degraded bit.
type degrader struct {
	enabled bool
	on      atomic.Bool
	flips   atomic.Uint64

	admitted atomic.Uint64 // current window
	shed     atomic.Uint64

	stop chan struct{}
}

func newDegrader(enabled bool) *degrader {
	d := &degrader{enabled: enabled, stop: make(chan struct{})}
	if enabled {
		go d.loop()
	}
	return d
}

func (d *degrader) loop() {
	t := time.NewTicker(degradeWindow)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.evaluate()
		case <-d.stop:
			return
		}
	}
}

// evaluate closes the current window and updates the degraded bit.
// Exported to tests through the package; the ticker calls it in
// production.
func (d *degrader) evaluate() {
	adm := d.admitted.Swap(0)
	sh := d.shed.Swap(0)
	total := adm + sh
	if total < degradeMinSamples {
		return
	}
	rate := float64(sh) / float64(total)
	if rate >= degradeHighWater {
		if !d.on.Swap(true) {
			d.flips.Add(1)
		}
	} else if rate <= degradeLowWater {
		if d.on.Swap(false) {
			d.flips.Add(1)
		}
	}
}

func (d *degrader) noteAdmit() { d.admitted.Add(1) }
func (d *degrader) noteShed()  { d.shed.Add(1) }

// active reports whether degraded parameters should be used.
func (d *degrader) active() bool { return d.enabled && d.on.Load() }

func (d *degrader) close() {
	if d.enabled {
		close(d.stop)
	}
}

// applyDegrade substitutes cheaper effective parameters. allEuropean
// reports whether every option in the request is European (lattice
// methods then collapse to the closed form; American options keep their
// method with coarser grids). The returned method/config are what the
// response reports.
func applyDegrade(method finbench.Method, cfg finbench.Config, allEuropean bool) (finbench.Method, finbench.Config) {
	switch method {
	case finbench.MonteCarlo:
		p := cfg.MCPaths / degradeMCPathDiv
		if p < degradeMCPathFloor {
			p = degradeMCPathFloor
		}
		if p < cfg.MCPaths {
			cfg.MCPaths = p
		}
	case finbench.BinomialTree, finbench.TrinomialTree:
		if allEuropean {
			return finbench.ClosedForm, cfg
		}
		s := cfg.BinomialSteps / degradeLatticeDiv
		if s < degradeStepsFloor {
			s = degradeStepsFloor
		}
		if s < cfg.BinomialSteps {
			cfg.BinomialSteps = s
		}
	case finbench.FiniteDifference:
		if allEuropean {
			return finbench.ClosedForm, cfg
		}
		ts := cfg.TimeSteps / degradeLatticeDiv
		if ts < degradeTimeStepsMin {
			ts = degradeTimeStepsMin
		}
		if ts < cfg.TimeSteps {
			cfg.TimeSteps = ts
		}
	}
	return method, cfg
}
