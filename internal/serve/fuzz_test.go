package serve

import (
	"math"
	"testing"
)

// FuzzDecodeRequest fuzzes the wire decoder: arbitrary bytes must either
// produce an error or a request satisfying every invariant the handlers
// rely on (bounded option count, finite positive parameters, known
// method/type/style combinations, non-negative deadline and config).
// Differential fast-path-vs-reference equality is pinned by the wire
// package's own FuzzDecodeRequest; this one guards the handler contract.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"options":[{"type":"call","spot":100,"strike":105,"expiry":0.5}]}`))
	f.Add([]byte(`{"method":"monte-carlo","options":[{"spot":90,"strike":100,"expiry":1}],"config":{"mc_paths":16384,"seed":7},"deadline_ms":250}`))
	f.Add([]byte(`{"method":"binomial-tree","options":[{"type":"put","style":"american","spot":100,"strike":110,"expiry":1}],"config":{"binomial_steps":512}}`))
	f.Add([]byte(`{"options":[{"spot":1e308,"strike":1e-308,"expiry":3}]}`))
	f.Add([]byte(`{"columnar":{"spot":[100,90],"strike":[105,95],"expiry":[0.5,1],"type":"cp"}}`))
	f.Add([]byte(`{"options":[]}`))
	f.Add([]byte(`{"options":[{"spot":-1,"strike":0,"expiry":0}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"method":"quantum","options":[{"spot":1,"strike":1,"expiry":1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, method, err := DecodeRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		defer PutRequest(req)
		if n := req.NumOptions(); n == 0 || n > MaxRequestOptions {
			t.Fatalf("accepted request with %d options", n)
		}
		parsed, merr := ParseMethod(req.Method)
		if merr != nil {
			t.Fatalf("accepted unknown method %q", req.Method)
		}
		if parsed != method {
			t.Fatalf("returned method %v but name parses to %v", method, parsed)
		}
		if req.DeadlineMS < 0 {
			t.Fatalf("accepted negative deadline %d", req.DeadlineMS)
		}
		if req.Config.BinomialSteps < 0 || req.Config.GridPoints < 0 ||
			req.Config.TimeSteps < 0 || req.Config.MCPaths < 0 {
			t.Fatalf("accepted negative config %+v", req.Config)
		}
		if c := req.Columnar; c != nil {
			if len(req.Options) != 0 {
				t.Fatal("accepted both framings at once")
			}
			if method != 0 {
				t.Fatalf("accepted columnar with method %v", method)
			}
			n := len(c.Spots)
			if len(c.Strikes) != n || len(c.Expiries) != n {
				t.Fatalf("accepted ragged columns: %d/%d/%d", n, len(c.Strikes), len(c.Expiries))
			}
			if (c.Types != "" && len(c.Types) != n) || (c.Styles != "" && len(c.Styles) != n) {
				t.Fatal("accepted ragged type/style columns")
			}
			for i := 0; i < n; i++ {
				for _, v := range [3]float64{c.Spots[i], c.Strikes[i], c.Expiries[i]} {
					if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
						t.Fatalf("accepted column entry %d with parameter %v", i, v)
					}
				}
				if c.Types != "" && c.Types[i] != 'c' && c.Types[i] != 'p' {
					t.Fatalf("accepted type byte %q", c.Types[i])
				}
				if c.Styles != "" && c.Styles[i] != 'e' {
					t.Fatalf("accepted style byte %q", c.Styles[i])
				}
			}
			return
		}
		for i := range req.Options {
			o := &req.Options[i]
			switch o.Type {
			case "", "call", "put":
			default:
				t.Fatalf("accepted option type %q", o.Type)
			}
			switch o.Style {
			case "", "european", "american":
			default:
				t.Fatalf("accepted exercise style %q", o.Style)
			}
			for _, v := range [3]float64{o.Spot, o.Strike, o.Expiry} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					t.Fatalf("accepted option %d with parameter %v", i, v)
				}
			}
			if o.Style == "american" && (method == 0 || req.Method == "monte-carlo") {
				t.Fatalf("accepted American option for European-only method %q", req.Method)
			}
			// Validated options must convert cleanly.
			_ = o.ToOption()
		}
	})
}
