package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// detmapPass protects the serving tier's bit-reproducibility invariant
// (every 200 is a pure function of the request): Go randomizes map
// iteration order per range statement, so any map-range whose per-key
// effects are order-sensitive leaks that randomness into observable
// state. Four sinks are checked inside the body of a range over a map:
//
//  1. a direct write — fmt.Fprint*/Print*, a Write*-method on anything
//     satisfying io.Writer (strings.Builder, bytes.Buffer,
//     http.ResponseWriter), or a JSON encode — emits keys in random
//     order;
//  2. an append whose target is never sorted later in the same function
//     builds a randomly-ordered slice (the collect-then-sort idiom is
//     recognized and exempt);
//  3. a floating-point accumulation (+=, -=, *=, /=) into a variable
//     declared outside the loop reduces in random order, and float
//     arithmetic does not commute in the last ulp;
//  4. a call to a module function from which a JSON encode is reachable
//     in the call graph hands the per-key values to response encoding in
//     random order (the call-graph-assisted escape).
//
// Integer accumulation is exempt — it is exact, so order cannot show.
func detmapPass() *Pass {
	return &Pass{
		Name:   "detmap",
		Doc:    "map iteration order leaking into output, encoding, or a float reduction",
		RunMod: runDetmap,
	}
}

// encodeSinks are the graph leaf names that serialize values in
// encounter order (rule 4).
var encodeSinks = []string{
	"encoding/json.Marshal",
	"encoding/json.MarshalIndent",
	"(*encoding/json.Encoder).Encode",
}

func runDetmap(m *Module, p *Package, report func(pos token.Pos, msg string)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := p.Info.Types[rng.X]; !ok || tv.Type == nil {
					return true
				} else if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(m, p, fd, rng, report)
				return true
			})
		}
	}
}

func checkMapRange(m *Module, p *Package, fd *ast.FuncDecl, rng *ast.RangeStmt, report func(pos token.Pos, msg string)) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkRangeCall(m, p, fd, rng, n, report)
		case *ast.AssignStmt:
			checkRangeAssign(p, rng, n, report)
		}
		return true
	})
}

func checkRangeCall(m *Module, p *Package, fd *ast.FuncDecl, rng *ast.RangeStmt, call *ast.CallExpr, report func(pos token.Pos, msg string)) {
	// Rule 2: append into a slice that is never sorted afterwards.
	if isBuiltin(p, call, "append") && len(call.Args) > 0 {
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj, ok := p.Info.Uses[id].(*types.Var); ok && !sortedAfter(p, fd, rng, obj) {
				report(call.Pos(), fmt.Sprintf(
					"appending to %q while ranging over a map builds a randomly-ordered slice; sort %q after the loop (or sort the keys first)",
					obj.Name(), obj.Name()))
			}
		}
		return
	}
	// Rule 1a: fmt printing inside the body.
	if pkgPath, name, ok := calleeStatic(p, call); ok {
		if pkgPath == "fmt" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")) {
			report(call.Pos(), "writing output while ranging over a map emits keys in random order; collect and sort the keys, then range the sorted slice")
			return
		}
		if pkgPath == "encoding/json" && strings.HasPrefix(name, "Marshal") {
			report(call.Pos(), "JSON-encoding per map-range iteration serializes in random key order; build the full value first (encoding/json sorts map keys itself)")
			return
		}
	}
	// Rule 1b: Write*/Encode methods on writers.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Signature().Recv() != nil {
			name := fn.Name()
			recvT := fn.Signature().Recv().Type()
			switch {
			case funcKey(fn) == "(*encoding/json.Encoder).Encode":
				report(call.Pos(), "JSON-encoding per map-range iteration serializes in random key order; build the full value first (encoding/json sorts map keys itself)")
				return
			case (name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune") && implementsWriter(recvT):
				report(call.Pos(), "writing to an io.Writer while ranging over a map emits keys in random order; collect and sort the keys, then range the sorted slice")
				return
			}
		}
	}
	// Rule 4: escape into a module function that reaches a JSON encode.
	for _, callee := range calleeFuncs(p, call) {
		key := funcKey(callee)
		if _, declared := m.Graph.Funcs[key]; declared && m.EncodesJSON(key) {
			report(call.Pos(), fmt.Sprintf(
				"%s is called per map-range iteration and reaches a JSON encode; map order leaks into the encoded output — sort the keys first",
				key))
			return
		}
	}
}

// checkRangeAssign implements rule 3: float op-assign accumulation.
func checkRangeAssign(p *Package, rng *ast.RangeStmt, as *ast.AssignStmt, report func(pos token.Pos, msg string)) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != 1 {
		return
	}
	tv, ok := p.Info.Types[as.Lhs[0]]
	if !ok || tv.Type == nil {
		return
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return
	}
	// Accumulators declared inside the body are per-iteration scratch.
	if id, ok := as.Lhs[0].(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil && withinNode(rng.Body, obj.Pos()) {
			return
		}
	}
	report(as.Pos(), "floating-point accumulation over map-range order is non-deterministic (float addition does not commute in the last ulp); reduce over sorted keys")
}

// sortedAfter reports whether obj is passed to a sort.*/slices.Sort*
// call after the range statement ends, anywhere in the same function —
// the collect-then-sort idiom.
func sortedAfter(p *Package, fd *ast.FuncDecl, rng *ast.RangeStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return true
		}
		pkgPath, name, ok := calleeStatic(p, call)
		if !ok {
			return true
		}
		isSort := pkgPath == "sort" || (pkgPath == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && p.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// writerIface is a structurally-built io.Writer ({ Write([]byte) (int,
// error) }); building it from universe types keeps the check valid
// across independently type-checked packages, which need not import io.
var writerIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(0, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(types.NewVar(0, nil, "n", types.Typ[types.Int]), types.NewVar(0, nil, "err", errType)),
		false)
	i := types.NewInterfaceType([]*types.Func{types.NewFunc(0, nil, "Write", sig)}, nil)
	i.Complete()
	return i
}()

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	return types.Implements(t, writerIface) || types.Implements(types.NewPointer(t), writerIface)
}

// calleeFuncs resolves the function objects a call may invoke (the
// static callee only; dynamic calls resolve to nothing).
func calleeFuncs(p *Package, call *ast.CallExpr) []*types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := p.Info.Uses[id].(*types.Func); ok {
		return []*types.Func{fn}
	}
	return nil
}

// EncodesJSON reports whether a JSON-encode sink is reachable from the
// named function in the call graph. The reverse-reachability set is
// computed once per module.
func (m *Module) EncodesJSON(name string) bool {
	m.encodeOnce.Do(func() {
		// Reverse the edges, then BFS from the sinks.
		rev := make(map[string]map[string]bool)
		for caller, callees := range m.Graph.Edges {
			for callee := range callees {
				if rev[callee] == nil {
					rev[callee] = make(map[string]bool)
				}
				rev[callee][caller] = true
			}
		}
		m.encodeReach = make(map[string]bool)
		queue := append([]string(nil), encodeSinks...)
		for _, s := range queue {
			m.encodeReach[s] = true
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, caller := range sortedSetKeys(rev[cur]) {
				if !m.encodeReach[caller] {
					m.encodeReach[caller] = true
					queue = append(queue, caller)
				}
			}
		}
	})
	return m.encodeReach[name]
}

// sortedSetKeys returns a set's keys in sorted order, so traversals stay
// deterministic (and detmap-clean) in the suite's own code.
func sortedSetKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
