package bench

import (
	"fmt"

	"finbench/internal/binomial"
	"finbench/internal/blackscholes"
	"finbench/internal/brownian"
	"finbench/internal/cranknicolson"
	"finbench/internal/layout"
	"finbench/internal/machine"
	"finbench/internal/montecarlo"
	"finbench/internal/perf"
	"finbench/internal/rng"
	"finbench/internal/workload"
)

var mkt = workload.DefaultMarket

// modelRow runs `kernel` once per machine at that machine's SIMD width
// with counting enabled and returns the modelled throughput per machine.
func modelRow(kernel func(m *machine.Machine, width int, c *perf.Counts)) map[string]float64 {
	out := map[string]float64{}
	for _, m := range machine.Machines() {
		var c perf.Counts
		kernel(m, m.SIMDWidthDP, &c)
		out[m.Name] = m.Throughput(c)
	}
	return out
}

func scaleInt(base int, scale float64, min int) int {
	n := int(float64(base) * scale)
	if n < min {
		n = min
	}
	return n
}

func init() {
	registerTab1()
	registerFig4()
	registerFig5()
	registerFig6()
	registerTab2()
	registerFig8()
	registerNinja()
}

func registerTab1() {
	register(&Experiment{
		ID:          "tab1",
		Title:       "System configuration (Table I)",
		Units:       "-",
		Description: "The two modelled architectures, parameters verbatim from Table I.",
		Model: func(scale float64) (*Result, error) {
			r := &Result{ID: "tab1", Title: "System configuration", Units: "-"}
			r.Notes = append(r.Notes, "\n"+machine.TableI())
			return r, nil
		},
	})
}

func registerFig4() {
	levels := []string{"Basic (Reference, AOS)", "Intermediate (AOS to SOA)", "Advanced (Using VML)"}
	register(&Experiment{
		ID:          "fig4",
		Title:       "Black-Scholes throughput by optimization level (Fig. 4)",
		Units:       "options/s",
		Description: "European option pricing via the closed form; AOS gathers vs. SOA loads vs. VML batching; roofline bound B/40.",
		Model: func(scale float64) (*Result, error) {
			nopt := layout.PadTo(scaleInt(100000, scale, 4096), 8)
			gen := workload.DefaultOptionGen
			models := []map[string]float64{
				modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
					blackscholes.Basic(gen.GenerateAOS(nopt), mkt, w, c)
				}),
				modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
					blackscholes.Intermediate(gen.GenerateSOA(nopt), mkt, w, c)
				}),
				modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
					blackscholes.Advanced(gen.GenerateSOA(nopt), mkt, w, c)
				}),
			}
			r := &Result{ID: "fig4", Title: "Black-Scholes", Units: "options/s",
				Bounds: paperFig4Bounds}
			for i, l := range levels {
				r.Rows = append(r.Rows, Row{Label: l, Paper: paperFig4[l], Model: models[i], Prov: Derived})
			}
			r.Notes = append(r.Notes,
				"paper anchors: ref KNC = ref SNB/3; AOS->SOA = 10x on KNC; advanced = 84%/60% of B/40")
			return r, nil
		},
		Measure: func(scale float64) (*Result, error) {
			nopt := layout.PadTo(scaleInt(1000000, scale, 8192), 8)
			gen := workload.DefaultOptionGen
			aos := gen.GenerateAOS(nopt)
			soa := gen.GenerateSOA(nopt)
			r := &Result{ID: "fig4", Title: "Black-Scholes (host)", Units: "options/s"}
			r.Rows = []Row{
				hostRow("Scalar reference", nopt, func() { blackscholes.RefScalar(aos, mkt, nil) }),
				hostRow("Basic (AOS, vectorized w8)", nopt, func() { blackscholes.Basic(aos, mkt, 8, nil) }),
				hostRow("Intermediate (SOA, w8)", nopt, func() { blackscholes.Intermediate(soa, mkt, 8, nil) }),
				hostRow("Advanced (VML batch)", nopt, func() { blackscholes.Advanced(soa, mkt, 8, nil) }),
			}
			// Small-batch rows: at this size per-call parallel-region launch
			// overhead is a visible fraction of the work, so these track the
			// fork-join substrate's dispatch cost rather than kernel math.
			smalln := layout.PadTo(4096, 8)
			soaSmall := gen.GenerateSOA(smalln)
			r.Rows = append(r.Rows,
				hostRow("Intermediate (SOA, w8, small batch)", smalln,
					func() { blackscholes.Intermediate(soaSmall, mkt, 8, nil) }),
				hostRow("Advanced (VML batch, small batch)", smalln,
					func() { blackscholes.Advanced(soaSmall, mkt, 8, nil) }),
			)
			return r, nil
		},
		Mix: func(scale float64) (perf.Counts, error) {
			nopt := layout.PadTo(scaleInt(100000, scale, 4096), 8)
			soa := workload.DefaultOptionGen.GenerateSOA(nopt)
			var c perf.Counts
			blackscholes.Advanced(soa, mkt, 8, &c)
			return c, nil
		},
	})
}

func registerFig5() {
	register(&Experiment{
		ID:          "fig5",
		Title:       "Binomial tree throughput (Fig. 5)",
		Units:       "options/s",
		Description: "European binomial pricing at 1024 and 2048 steps; SIMD across options, register tiling, unrolling; bound peak/(3N(N+1)/2).",
		Model: func(scale float64) (*Result, error) {
			gen := workload.DefaultOptionGen
			gen.TMax = 3
			r := &Result{ID: "fig5", Title: "Binomial tree", Units: "options/s",
				Bounds: paperFig5N1024Bounds}
			for _, steps := range []int{1024, 2048} {
				scaleF := 1.0
				if steps == 2048 {
					// Paper anchors derived at N=1024; scale by the flop
					// ratio 2048*2049/(1024*1025).
					scaleF = float64(2048*2049) / float64(1024*1025)
				}
				nopt := 8 * scaleInt(2, scale, 1)
				run := func(level string, kernel func(a layout.AOS, w int, c *perf.Counts)) {
					model := modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
						kernel(gen.GenerateAOS(nopt), w, c)
					})
					paper := map[string]float64{}
					for k, v := range paperFig5N1024[level] {
						paper[k] = v / scaleF
					}
					r.Rows = append(r.Rows, Row{
						Label: fmt.Sprintf("N=%d %s", steps, level),
						Paper: paper, Model: model, Prov: Derived,
					})
				}
				run("Basic (Reference)", func(a layout.AOS, w int, c *perf.Counts) {
					binomial.Basic(a, steps, mkt, w, c)
				})
				run("Intermediate (SIMD across options)", func(a layout.AOS, w int, c *perf.Counts) {
					binomial.Intermediate(a, steps, mkt, w, c)
				})
				run("Advanced (Register tiling)", func(a layout.AOS, w int, c *perf.Counts) {
					binomial.Advanced(a, steps, mkt, w, 16, false, c)
				})
				run("Advanced (+unroll)", func(a layout.AOS, w int, c *perf.Counts) {
					binomial.Advanced(a, steps, mkt, w, 16, true, c)
				})
			}
			r.Notes = append(r.Notes,
				"bounds shown are for N=1024; N=2048 rows scale by the flop ratio 4.0")
			return r, nil
		},
		Measure: func(scale float64) (*Result, error) {
			gen := workload.DefaultOptionGen
			gen.TMax = 3
			nopt := 8 * scaleInt(8, scale, 1)
			a := gen.GenerateAOS(nopt)
			const steps = 1024
			r := &Result{ID: "fig5", Title: "Binomial tree (host, N=1024)", Units: "options/s"}
			r.Rows = []Row{
				hostRow("Scalar reference", nopt, func() { binomial.RefScalar(a, steps, mkt, nil) }),
				hostRow("Basic (inner-loop SIMD w8)", nopt, func() { binomial.Basic(a, steps, mkt, 8, nil) }),
				hostRow("Intermediate (SIMD across options)", nopt, func() { binomial.Intermediate(a, steps, mkt, 8, nil) }),
				hostRow("Advanced (register tiling)", nopt, func() { binomial.Advanced(a, steps, mkt, 8, 16, false, nil) }),
				hostRow("Advanced (+unroll)", nopt, func() { binomial.Advanced(a, steps, mkt, 8, 16, true, nil) }),
			}
			return r, nil
		},
		Mix: func(scale float64) (perf.Counts, error) {
			gen := workload.DefaultOptionGen
			gen.TMax = 3
			a := gen.GenerateAOS(8 * scaleInt(2, scale, 1))
			var c perf.Counts
			binomial.Advanced(a, 1024, mkt, 8, 16, true, &c)
			return c, nil
		},
	})
}

func registerFig6() {
	register(&Experiment{
		ID:          "fig6",
		Title:       "Brownian bridge throughput (Fig. 6)",
		Units:       "paths/s",
		Description: "64-step double-precision bridge; streamed vs interleaved vs cache-to-cache RNG.",
		Model: func(scale float64) (*Result, error) {
			sims := scaleInt(65536, scale, 4096)
			br := brownian.New(5, 1) // 64 steps
			plen := br.PathLen()
			r := &Result{ID: "fig6", Title: "Brownian bridge (64-step)", Units: "paths/s",
				Bounds: paperFig6Bounds}
			// Basic: scalar construction, streamed randoms (no SIMD).
			basic := map[string]float64{}
			for _, m := range machine.Machines() {
				var c perf.Counts
				stream := rng.NewStream(0, 1)
				z := brownian.RandomsScalar(stream, sims, br.Steps)
				out := make([]float64, sims*plen)
				br.RefScalar(z, out, sims, &c)
				basic[m.Name] = m.Throughput(c)
			}
			r.Rows = append(r.Rows, Row{Label: "Basic (pragma simd, omp, unroll)",
				Paper: paperFig6["Basic (pragma simd, omp, unroll)"], Model: basic, Prov: Derived})

			addVec := func(label string, kernel func(w int, c *perf.Counts)) {
				model := modelRow(func(m *machine.Machine, w int, c *perf.Counts) { kernel(w, c) })
				r.Rows = append(r.Rows, Row{Label: label, Paper: paperFig6[label], Model: model, Prov: Derived})
			}
			addVec("Intermediate (SIMD across paths)", func(w int, c *perf.Counts) {
				stream := rng.NewStream(0, 1)
				z := brownian.RandomsBlocked(stream, sims, br.Steps, w)
				out := make([]float64, sims*plen)
				br.Intermediate(z, out, sims, w, c)
			})
			addVec("Advanced (interleaved RNG)", func(w int, c *perf.Counts) {
				out := make([]float64, sims*plen)
				br.AdvancedInterleaved(1, out, sims, w, c)
			})
			addVec("Advanced (cache-to-cache)", func(w int, c *perf.Counts) {
				br.AdvancedC2C(1, sims, w, c, nil)
			})
			r.Notes = append(r.Notes,
				"paper anchors: basic KNC = 0.75x SNB; intermediate KNC/SNB = bandwidth ratio 1.97; advanced KNC = 2x SNB (compute-bound, no FMA credit)")
			return r, nil
		},
		Measure: func(scale float64) (*Result, error) {
			sims := scaleInt(262144, scale, 8192)
			br := brownian.New(5, 1)
			plen := br.PathLen()
			stream := rng.NewStream(0, 1)
			zs := brownian.RandomsScalar(stream, sims, br.Steps)
			zb := brownian.RandomsBlocked(stream, sims, br.Steps, 8)
			out := make([]float64, sims*plen)
			r := &Result{ID: "fig6", Title: "Brownian bridge (host)", Units: "paths/s"}
			r.Rows = []Row{
				hostRow("Scalar reference (streamed RNG)", sims, func() { br.RefScalar(zs, out, sims, nil) }),
				hostRow("SIMD across paths (streamed RNG)", sims, func() { br.Intermediate(zb, out, sims, 8, nil) }),
				hostRow("Interleaved RNG", sims, func() { br.AdvancedInterleaved(1, out, sims, 8, nil) }),
				hostRow("Cache-to-cache", sims, func() { br.AdvancedC2C(1, sims, 8, nil, nil) }),
			}
			return r, nil
		},
		Mix: func(scale float64) (perf.Counts, error) {
			sims := scaleInt(65536, scale, 4096)
			br := brownian.New(5, 1)
			var c perf.Counts
			br.AdvancedC2C(1, sims, 8, &c, nil)
			return c, nil
		},
	})
}

func registerTab2() {
	register(&Experiment{
		ID:          "tab2",
		Title:       "Monte Carlo and RNG throughput (Table II)",
		Units:       "items/s",
		Description: "European MC pricing (256k paths) with streamed and computed RNG; raw normal and uniform generation rates.",
		Model: func(scale float64) (*Result, error) {
			npath := scaleInt(262144, scale, 16384)
			nopt := 2
			gen := workload.DefaultOptionGen
			gen.TMax = 3
			r := &Result{ID: "tab2", Title: "Monte Carlo / RNG (Table II)", Units: "items/s"}

			stream := modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
				b := gen.NewMCBatch(nopt)
				z := make([]float64, npath)
				rng.NewStream(0, 1).NormalICDF(z)
				montecarlo.Vectorized(b, z, mkt, w, 4, c)
			})
			comp := modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
				b := gen.NewMCBatch(nopt)
				montecarlo.VectorizedComputeRNG(b, npath, 1, mkt, w, 4, c)
			})
			// Raw RNG rates: counts per generated number, Items = numbers.
			n := scaleInt(1000000, scale, 100000)
			normal := modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
				s := rng.NewStream(0, 1)
				s.C = c
				buf := make([]float64, n)
				s.NormalICDF(buf)
				c.Items = uint64(n)
			})
			uniform := modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
				s := rng.NewStream(0, 1)
				s.C = c
				buf := make([]float64, n)
				s.Uniform(buf)
				c.Items = uint64(n)
			})
			// The paper's options/sec rows use 256k paths; when scale
			// shrinks the path count, rescale the paper anchor so the
			// comparison stays per-path-fair.
			pathScale := 262144.0 / float64(npath)
			scaled := func(m map[string]float64) map[string]float64 {
				out := map[string]float64{}
				for k, v := range m {
					out[k] = v * pathScale
				}
				return out
			}
			r.Rows = []Row{
				{Label: "options/sec (stream RNG)", Paper: scaled(paperTab2["options/sec (stream RNG)"]), Model: stream, Prov: Stated},
				{Label: "options/sec (comp. RNG)", Paper: scaled(paperTab2["options/sec (comp. RNG)"]), Model: comp, Prov: Stated},
				{Label: "normally-dist. DP RNG/sec", Paper: paperTab2["normally-dist. DP RNG/sec"], Model: normal, Prov: Stated},
				{Label: "uniform DP RNG/sec", Paper: paperTab2["uniform DP RNG/sec"], Model: uniform, Prov: Stated},
			}
			return r, nil
		},
		Measure: func(scale float64) (*Result, error) {
			npath := scaleInt(262144, scale, 8192)
			gen := workload.DefaultOptionGen
			gen.TMax = 3
			nopt := 4
			b := gen.NewMCBatch(nopt)
			z := make([]float64, npath)
			rng.NewStream(0, 1).NormalICDF(z)
			n := scaleInt(4000000, scale, 200000)
			buf := make([]float64, n)
			s := rng.NewStream(0, 1)
			r := &Result{ID: "tab2", Title: "Monte Carlo / RNG (host)", Units: "items/s"}
			r.Rows = []Row{
				hostRow("options/sec (stream RNG)", nopt, func() { montecarlo.Vectorized(b, z, mkt, 8, 4, nil) }),
				hostRow("options/sec (comp. RNG)", nopt, func() { montecarlo.VectorizedComputeRNG(b, npath, 1, mkt, 8, 2, nil) }),
				hostRow("normally-dist. DP RNG/sec", n, func() { s.NormalICDF(buf) }),
				hostRow("uniform DP RNG/sec", n, func() { s.Uniform(buf) }),
			}
			return r, nil
		},
		Mix: func(scale float64) (perf.Counts, error) {
			npath := scaleInt(262144, scale, 16384)
			gen := workload.DefaultOptionGen
			gen.TMax = 3
			b := gen.NewMCBatch(2)
			var c perf.Counts
			montecarlo.VectorizedComputeRNG(b, npath, 1, mkt, 8, 4, &c)
			return c, nil
		},
	})
}

func registerFig8() {
	register(&Experiment{
		ID:          "fig8",
		Title:       "Crank-Nicolson American puts (Fig. 8)",
		Units:       "options/s",
		Description: "PSOR over 256 prices x 1000 steps; wavefront SIMD and the even/odd data-structure transform.",
		Model: func(scale float64) (*Result, error) {
			// Lattice size is the experiment's identity; scale reduces only
			// the option count.
			const jpoints, nsteps = 256, 1000
			nopt := scaleInt(2, scale, 1)
			gen := workload.OptionGen{SMin: 80, SMax: 120, XMin: 90, XMax: 110, TMin: 0.8, TMax: 1.2, Seed: 5}
			rows := []struct {
				label string
				level cranknicolson.Level
			}{
				{"Basic (Reference)", cranknicolson.LevelRef},
				{"Advanced (Manual SIMD for implicit step)", cranknicolson.LevelIntermediate},
				{"Advanced (Data structure transform)", cranknicolson.LevelAdvanced},
			}
			r := &Result{ID: "fig8", Title: "Crank-Nicolson American puts", Units: "options/s"}
			for _, row := range rows {
				model := modelRow(func(m *machine.Machine, w int, c *perf.Counts) {
					cranknicolson.Run(row.level, gen.GenerateAOS(nopt), jpoints, nsteps, w, mkt, c)
				})
				prov := Stated
				if row.level == cranknicolson.LevelRef {
					prov = Derived
				}
				r.Rows = append(r.Rows, Row{Label: row.label, Paper: paperFig8[row.label], Model: model, Prov: prov})
			}
			r.Notes = append(r.Notes,
				"4.4K/7.3K and 6.4K/11.4K options/s are stated in Sec. IV-E3; reference derived from the stated 3.1x/4.1x SIMD gains")
			return r, nil
		},
		Measure: func(scale float64) (*Result, error) {
			const jpoints = 256
			nsteps := scaleInt(1000, scale, 100)
			nopt := scaleInt(8, scale, 2)
			gen := workload.OptionGen{SMin: 80, SMax: 120, XMin: 90, XMax: 110, TMin: 0.8, TMax: 1.2, Seed: 5}
			a := gen.GenerateAOS(nopt)
			r := &Result{ID: "fig8", Title: "Crank-Nicolson (host)", Units: "options/s"}
			r.Rows = []Row{
				hostRow("Scalar reference", nopt, func() { cranknicolson.Run(cranknicolson.LevelRef, a, jpoints, nsteps, 8, mkt, nil) }),
				hostRow("Wavefront SIMD", nopt, func() { cranknicolson.Run(cranknicolson.LevelIntermediate, a, jpoints, nsteps, 8, mkt, nil) }),
				hostRow("Wavefront SIMD + reorder", nopt, func() { cranknicolson.Run(cranknicolson.LevelAdvanced, a, jpoints, nsteps, 8, mkt, nil) }),
			}
			return r, nil
		},
		Mix: func(scale float64) (perf.Counts, error) {
			gen := workload.OptionGen{SMin: 80, SMax: 120, XMin: 90, XMax: 110, TMin: 0.8, TMax: 1.2, Seed: 5}
			a := gen.GenerateAOS(scaleInt(2, scale, 1))
			var c perf.Counts
			cranknicolson.Run(cranknicolson.LevelAdvanced, a, 256, scaleInt(1000, scale, 100), 8, mkt, &c)
			return c, nil
		},
	})
}
