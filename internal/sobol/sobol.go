package sobol

import (
	"fmt"
	"math/bits"
)

// Bits is the resolution of the generator: points lie on a 2^-Bits
// lattice.
const Bits = 32

// joeKuoM holds the classical initial direction values m_1..m_s for
// dimensions 2..10 (dimension 1 is the van der Corput sequence and needs
// none). Entries beyond this table are generated deterministically.
var joeKuoM = [][]uint32{
	{1},               // d=2, poly x+1
	{1, 3},            // d=3, poly x^2+x+1
	{1, 3, 1},         // d=4, poly x^3+x+1
	{1, 1, 1},         // d=5, poly x^3+x^2+1
	{1, 1, 3, 3},      // d=6, poly x^4+x+1
	{1, 3, 5, 13},     // d=7, poly x^4+x^3+1
	{1, 1, 5, 5, 17},  // d=8, poly x^5+x^2+1
	{1, 1, 5, 5, 5},   // d=9, poly x^5+x^3+1
	{1, 1, 7, 11, 19}, // d=10, poly x^5+x^3+x^2+x+1
}

// Sequence generates Sobol points of a fixed dimension via the
// Antonov-Saleev Gray-code recurrence. It is not safe for concurrent use;
// create one per goroutine (Skip partitions work deterministically).
type Sequence struct {
	dim   int
	v     [][Bits]uint32 // direction numbers per dimension
	x     []uint32       // current state per dimension
	n     uint64         // index of the next point
	shift []uint32       // random digital shift (zero = unscrambled)
}

// New returns a Sobol sequence of the given dimension (1 <= dim <= 1111).
func New(dim int) (*Sequence, error) {
	if dim < 1 || dim > 1111 {
		return nil, fmt.Errorf("sobol: dimension %d out of range [1,1111]", dim)
	}
	s := &Sequence{
		dim:   dim,
		v:     make([][Bits]uint32, dim),
		x:     make([]uint32, dim),
		shift: make([]uint32, dim),
	}
	// Dimension 1: van der Corput — v_k = 2^(Bits-1-k).
	for k := 0; k < Bits; k++ {
		s.v[0][k] = 1 << uint(Bits-1-k)
	}
	if dim > 1 {
		polys := primitivePolynomials(dim - 1)
		// Deterministic fallback generator for initial values beyond the
		// classical table (SplitMix-style), constrained to odd m_k < 2^k.
		seed := uint64(0x9E3779B97F4A7C15)
		nextOdd := func(k int) uint32 {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			m := uint32(seed) % (1 << uint(k)) // in [0, 2^k)
			return m | 1                       // odd
		}
		for d := 1; d < dim; d++ {
			p := polys[d-1]
			deg := int(polyDegree(p))
			var m []uint32
			if d-1 < len(joeKuoM) {
				m = append(m, joeKuoM[d-1]...)
			}
			for k := len(m); k < deg; k++ {
				m = append(m, nextOdd(k+1))
			}
			initDirections(&s.v[d], p, m)
		}
	}
	return s, nil
}

// initDirections fills the direction numbers of one dimension from its
// primitive polynomial p (degree s) and initial values m_1..m_s, via the
// Sobol recurrence
//
//	m_k = 2 a_1 m_{k-1} XOR 4 a_2 m_{k-2} XOR ... XOR 2^s m_{k-s} XOR m_{k-s}
//
// with a_i the interior polynomial coefficients; v_k = m_k * 2^(Bits-k).
func initDirections(v *[Bits]uint32, p uint64, m []uint32) {
	s := len(m)
	mk := make([]uint32, Bits+1) // 1-based
	for k := 1; k <= s && k <= Bits; k++ {
		mk[k] = m[k-1]
	}
	// Interior coefficients a_1..a_{s-1}: bits s-1..1 of p.
	for k := s + 1; k <= Bits; k++ {
		val := mk[k-s] ^ (mk[k-s] << uint(s))
		for i := 1; i <= s-1; i++ {
			if (p>>(uint(s-i)))&1 != 0 {
				val ^= mk[k-i] << uint(i)
			}
		}
		mk[k] = val
	}
	for k := 1; k <= Bits; k++ {
		v[k-1] = mk[k] << uint(Bits-k)
	}
}

// Dim returns the dimensionality.
func (s *Sequence) Dim() int { return s.dim }

// Next writes the point with the current index into dst (len >= Dim()) and
// advances. Each coordinate lies in (0,1): a half-lattice-cell offset keeps
// coordinates away from 0 and 1, as the inverse-normal transform requires.
// The first emitted point is the index-0 origin of the net, so blocks of
// 2^k consecutive points starting from a Skip to a multiple of 2^k are
// exact digital-net blocks.
func (s *Sequence) Next(dst []float64) {
	const scale = 1.0 / 4294967296.0 // 2^-32
	for d := 0; d < s.dim; d++ {
		dst[d] = (float64(s.x[d]^s.shift[d]) + 0.5) * scale
	}
	// Gray-code step: flip the direction number of the lowest zero bit.
	c := uint(bits.TrailingZeros64(^s.n))
	if c >= Bits {
		c = Bits - 1 // wrapped past 2^32 points; keep cycling
	}
	for d := 0; d < s.dim; d++ {
		s.x[d] ^= s.v[d][c]
	}
	s.n++
}

// Skip advances the sequence by k points in O(dim * 32) using the Gray
// code of the target index, enabling deterministic parallel partitioning.
func (s *Sequence) Skip(k uint64) {
	target := s.n + k
	gray := target ^ (target >> 1)
	for d := 0; d < s.dim; d++ {
		var x uint32
		for b := uint(0); b < Bits && b < 64; b++ {
			if (gray>>b)&1 != 0 {
				x ^= s.v[d][b]
			}
		}
		s.x[d] = x
	}
	s.n = target
}

// DigitalShift applies a random digital shift (XOR scrambling) derived
// from seed: the standard randomization for error estimation in
// randomized QMC. A zero seed removes the shift.
func (s *Sequence) DigitalShift(seed uint64) {
	if seed == 0 {
		for d := range s.shift {
			s.shift[d] = 0
		}
		return
	}
	z := seed
	for d := range s.shift {
		z ^= z << 13
		z ^= z >> 7
		z ^= z << 17
		s.shift[d] = uint32(z)
	}
}

// Fill generates n consecutive points into out (len >= n*Dim()),
// point-major.
func (s *Sequence) Fill(out []float64, n int) {
	for i := 0; i < n; i++ {
		s.Next(out[i*s.dim : (i+1)*s.dim])
	}
}
