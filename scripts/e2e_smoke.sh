#!/usr/bin/env bash
# scripts/e2e_smoke.sh — end-to-end smoke gate for the finserve pricing
# server. Boots the real binary on loopback and drives it with its own
# load generator; every assertion lives in loadgen flags (no curl/jq):
#
#   phase 1  correctness: mixed methods + greeks, every 200 recomputed
#            against the library and required to bit-match
#   phase 2  deadline burst: sub-deadline Monte Carlo must answer 408 and
#            the pool scheduler counters must freeze afterwards (cancelled
#            work stops consuming the pool)
#   phase 3  SIGTERM drain: in-flight work finishes, process exits 0
#            within the drain budget
#   phase 4  admission saturation: a tiny work budget must shed with 503
#            and nothing else (no 5xx other than 503)
#   phase 5  rate limiting: a tiny token bucket must answer 429
#   phase 6  pricing cache: a concurrent identical burst must collapse
#            onto one singleflight leader, and a Zipf-skewed pool must
#            clear a hit-rate floor with every 200 — cold or cached —
#            still bit-matching the library (-verify with the cache on)
#   phase 7  router-tier cache: same hit-rate + bit-identity contract
#            with the cache in the router, fronting spawned replicas
#   phase 8  columnar framing: binary-frame /price 200s must bit-match a
#            JSON replay of the same contracts (loadgen cross-checks every
#            columnar 200), against a lone replica AND through the router
#   phase 9  scenario scatter-gather: /scenario 200s must be byte-identical
#            to the library's scenario engine against a lone replica AND
#            through a 2-replica router that splits the grid (loadgen
#            recomputes every 200); then a replica is killed mid-burst and
#            the router must fail unfinished partitions over with every
#            response still 200 and byte-clean
#   phase 10 streaming Greeks feed: SSE subscribers against a lone replica
#            (every pushed entry recomputed cold from its echoed inputs and
#            required to bit-match; a deliberately slow subscriber must
#            observe a resync snapshot), then through a 2-replica router
#            with a replica killed mid-stream — the orphaned partition must
#            re-subscribe to the survivor (stream_resubscribes on /statsz)
#            with every entry still bit-clean
#
# Usage: ./scripts/e2e_smoke.sh   (E2E_PORT overrides the default port)
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${E2E_PORT:-8231}"
URL="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
BIN="$TMP/finserve"
LOG="$TMP/server.log"
SERVER_PID=""

cleanup() {
	if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
		kill -KILL "$SERVER_PID" 2>/dev/null || true
	fi
	# Phase 7 runs the router, whose replica children a KILL above would
	# orphan (children run from the tmp binary, so the pattern cannot
	# touch unrelated processes).
	pkill -KILL -f "$BIN serve" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
	echo "e2e: FAIL: $*" >&2
	echo "--- server log ---" >&2
	cat "$LOG" >&2 || true
	exit 1
}

wait_port() {
	for _ in $(seq 1 100); do
		if (exec 3<>"/dev/tcp/127.0.0.1/${PORT}") 2>/dev/null; then
			exec 3>&- 3<&- || true
			return 0
		fi
		sleep 0.1
	done
	fail "server did not start listening on :${PORT}"
}

boot() {
	: >"$LOG"
	"$BIN" serve -addr "127.0.0.1:${PORT}" "$@" >>"$LOG" 2>&1 &
	SERVER_PID=$!
	wait_port
}

# SIGTERM the server and require exit 0 within max_ms.
stop_drain() {
	local max_ms="$1"
	local t0 t1 rc=0
	t0=$(date +%s%N)
	kill -TERM "$SERVER_PID"
	wait "$SERVER_PID" || rc=$?
	t1=$(date +%s%N)
	SERVER_PID=""
	local elapsed_ms=$(((t1 - t0) / 1000000))
	[[ $rc -eq 0 ]] || fail "server exited $rc on SIGTERM"
	((elapsed_ms <= max_ms)) || fail "drain took ${elapsed_ms}ms > ${max_ms}ms"
	echo "e2e: drained in ${elapsed_ms}ms"
}

echo "==> e2e: building finserve"
go build -o "$BIN" ./cmd/finserve

echo "==> e2e phase 1: correctness (mixed methods, bit-match verification)"
boot
"$BIN" loadgen -url "$URL" -requests 48 -concurrency 4 \
	-mix "closed-form=6,monte-carlo=1,binomial-tree=1,crank-nicolson=1,trinomial-tree=1,greeks=2" \
	-options 6 -mc-paths 16384 -binomial-steps 256 -grid-points 128 -time-steps 200 \
	-verify -assert-codes 200 -min-count 200:48 ||
	fail "phase 1 (correctness/verify)"

echo "==> e2e phase 2: sub-deadline burst cancels work (408 + frozen sched)"
"$BIN" loadgen -url "$URL" -requests 12 -concurrency 6 \
	-mix "monte-carlo=1" -options 2 -mc-paths 4194304 -deadline-ms 5 \
	-assert-codes 200,408 -min-count 408:8 -check-sched-frozen ||
	fail "phase 2 (deadline burst / sched freeze)"

echo "==> e2e phase 3: SIGTERM drains in-flight work within 5s"
"$BIN" loadgen -url "$URL" -requests 4 -concurrency 4 \
	-mix "monte-carlo=1" -options 1 -mc-paths 1048576 >/dev/null 2>&1 &
LOADGEN_PID=$!
sleep 0.2
stop_drain 5000
wait "$LOADGEN_PID" 2>/dev/null || true # drain may refuse its tail; phase asserts the server

echo "==> e2e phase 4: admission saturation sheds with 503 (and only 503)"
boot -max-units 30 -admit-wait 1ms
"$BIN" loadgen -url "$URL" -requests 16 -concurrency 8 \
	-mix "monte-carlo=1" -options 4 -mc-paths 262144 \
	-assert-codes 200,503 -min-count 200:1,503:1 ||
	fail "phase 4 (admission shed)"
stop_drain 5000

echo "==> e2e phase 5: request-rate limit answers 429"
boot -rate 2 -burst 2
"$BIN" loadgen -url "$URL" -requests 20 -concurrency 4 \
	-mix "closed-form=1" -options 2 \
	-assert-codes 200,429 -min-count 200:1,429:1 ||
	fail "phase 5 (rate limit)"
stop_drain 5000

echo "==> e2e phase 6: pricing cache (singleflight collapse + Zipf hit-rate floor)"
# A widened coalesce window makes the cache-miss leader dwell in the
# coalescer, so the identical concurrent requests demonstrably park on
# its flight instead of racing it to completion.
boot -cache-bytes 67108864 -coalesce-window 10ms
"$BIN" loadgen -url "$URL" -requests 64 -concurrency 8 \
	-mix "closed-form=1" -options 8 -zipf 0 -zipf-pool 1 \
	-assert-codes 200 -min-count 200:64 -assert-min-collapsed 1 ||
	fail "phase 6a (singleflight collapse on an identical burst)"
# Zipf-skewed pool: misses are bounded by the pool size, so the floor is
# guaranteed by construction (300 requests, <=64 cold misses); -verify
# recomputes every 200 — cold or cache-served — against the library.
"$BIN" loadgen -url "$URL" -requests 300 -concurrency 4 \
	-mix "closed-form=1" -options 8 -zipf 1.2 -zipf-pool 64 -seed 3 \
	-verify -assert-codes 200 -min-count 200:300 -assert-min-hit-rate 0.5 ||
	fail "phase 6b (zipf hit rate / bit-clean with cache on)"
stop_drain 5000

echo "==> e2e phase 7: router-tier cache over spawned replicas (bit-clean hits)"
: >"$LOG"
"$BIN" route -addr "127.0.0.1:${PORT}" -replicas 2 -port-base "$((PORT + 500))" \
	-cache-tier router -cache-bytes 67108864 >>"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
for _ in $(seq 1 100); do
	resp=$( (exec 3<>"/dev/tcp/127.0.0.1/${PORT}" &&
		printf 'GET /healthz HTTP/1.0\r\n\r\n' >&3 && cat <&3) 2>/dev/null || true)
	if grep -q '"replicas_routable":2' <<<"$resp"; then
		break
	fi
	sleep 0.1
done
"$BIN" loadgen -url "$URL" -requests 200 -concurrency 4 \
	-mix "closed-form=1" -options 8 -zipf 1.1 -zipf-pool 32 -seed 5 \
	-verify -assert-codes 200 -min-count 200:200 -assert-min-hit-rate 0.5 ||
	fail "phase 7 (router-tier cache hit rate / bit-clean)"

echo "==> e2e phase 8a: columnar framing through the router (bit-match vs JSON replay)"
# Reuses the phase 7 router: every columnar 200 is cross-checked
# bit-identical against a JSON replay of the same contracts, and the
# router must answer both framings. The router cache bypasses columnar
# requests, so hits come only from the JSON replays.
"$BIN" loadgen -url "$URL" -requests 48 -concurrency 4 \
	-mix "closed-form=1" -options 8 -wire columnar -seed 9 \
	-verify -assert-codes 200 -min-count 200:48 ||
	fail "phase 8a (columnar through the router)"
stop_drain 5000

echo "==> e2e phase 8b: columnar framing against a lone replica"
boot
"$BIN" loadgen -url "$URL" -requests 48 -concurrency 4 \
	-mix "closed-form=1,greeks=1" -options 8 -wire columnar -seed 9 \
	-verify -assert-codes 200 -min-count 200:48 ||
	fail "phase 8b (columnar against a replica)"
stop_drain 5000

echo "==> e2e phase 9a: scenario engine against a lone replica (byte-identity)"
boot
"$BIN" loadgen -url "$URL" -requests 24 -concurrency 4 \
	-scenario -options 6 -scenario-gens 4 \
	-verify -assert-codes 200 -min-count 200:24 ||
	fail "phase 9a (scenario against a replica)"
stop_drain 5000

echo "==> e2e phase 9b: scenario scatter-gather through a 2-replica router"
: >"$LOG"
"$BIN" route -addr "127.0.0.1:${PORT}" -replicas 2 -port-base "$((PORT + 600))" \
	-restart-delay 700ms -health-interval 300ms >>"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
for _ in $(seq 1 100); do
	resp=$( (exec 3<>"/dev/tcp/127.0.0.1/${PORT}" &&
		printf 'GET /healthz HTTP/1.0\r\n\r\n' >&3 && cat <&3) 2>/dev/null || true)
	if grep -q '"replicas_routable":2' <<<"$resp"; then
		break
	fi
	sleep 0.1
done
# Every 200 must be byte-identical to the library's evaluate+finalize —
# through the split/merge path (-assert-min-scattered proves the router
# actually partitioned the grid rather than passing requests through).
"$BIN" loadgen -url "$URL" -requests 24 -concurrency 4 \
	-scenario -options 6 -scenario-gens 4 \
	-verify -assert-codes 200 -min-count 200:24 -assert-min-scattered 20 ||
	fail "phase 9b (scenario scatter-gather byte-identity)"

echo "==> e2e phase 9c: replica killed mid-scenario-burst; partitions fail over"
# Grid-only scenarios: every partition is closed-form, so the router may
# re-attempt any of them on the surviving replica. Availability must stay
# 100% and every merged 200 must still bit-match the library.
"$BIN" loadgen -url "$URL" -requests 300 -concurrency 4 \
	-scenario -options 6 \
	-verify -assert-availability 100 >"$TMP/scenario_burst.out" 2>&1 &
BURST_PID=$!
sleep 0.15
VICTIM=$(grep -m1 "route: replica 0 pid" "$LOG" | awk '{print $5}')
[[ -n "$VICTIM" ]] || fail "could not find replica 0 pid in router log"
kill -KILL "$VICTIM" 2>/dev/null || true
if ! wait "$BURST_PID"; then
	cat "$TMP/scenario_burst.out" >&2 || true
	fail "phase 9c (scenario partition failover through a replica kill)"
fi
cat "$TMP/scenario_burst.out"
stop_drain 5000

echo "==> e2e phase 10a: streaming feed against a lone replica (bit-clean + slow resync)"
# All-dirty mode (negative threshold) makes every tick reprice the whole
# universe: frames are large enough that the slow subscriber's one-time
# stall reliably overflows its server-side buffer (kernel socket buffers
# absorb small-frame backlogs), forcing the drop→resync path the phase
# asserts. -verify recomputes every pushed entry cold from its echoed
# inputs and requires bit-equality.
boot -stream -stream-interval 20ms -stream-spot-threshold=-1
"$BIN" loadgen -url "$URL" -stream -stream-clients 3 -stream-slow 1 \
	-stream-duration 4s -verify -assert-min-events 10 -assert-max-staleness-ms 500 ||
	fail "phase 10a (stream bit-match / slow-client resync)"
stop_drain 5000

echo "==> e2e phase 10b: routed stream, replica killed mid-stream (failover resync)"
: >"$LOG"
"$BIN" route -addr "127.0.0.1:${PORT}" -replicas 2 -port-base "$((PORT + 700))" \
	-restart-delay 2s -health-interval 300ms \
	-replica-flags "-stream -stream-interval 20ms -stream-spot-threshold=-1" >>"$LOG" 2>&1 &
SERVER_PID=$!
wait_port
for _ in $(seq 1 100); do
	resp=$( (exec 3<>"/dev/tcp/127.0.0.1/${PORT}" &&
		printf 'GET /healthz HTTP/1.0\r\n\r\n' >&3 && cat <&3) 2>/dev/null || true)
	if grep -q '"replicas_routable":2' <<<"$resp"; then
		break
	fi
	sleep 0.1
done
# Subscribers listen through the kill; every entry — before the kill,
# and from the survivor's resync snapshot after it — must still bit-match
# a cold repricing at its echoed market state.
"$BIN" loadgen -url "$URL" -stream -stream-clients 3 -stream-duration 5s \
	-verify -assert-min-events 10 >"$TMP/stream_burst.out" 2>&1 &
BURST_PID=$!
sleep 1.2
VICTIM=$(grep -m1 "route: replica 0 pid" "$LOG" | awk '{print $5}')
[[ -n "$VICTIM" ]] || fail "could not find replica 0 pid in router log"
kill -KILL "$VICTIM" 2>/dev/null || true
if ! wait "$BURST_PID"; then
	cat "$TMP/stream_burst.out" >&2 || true
	fail "phase 10b (routed stream bit-clean through a replica kill)"
fi
cat "$TMP/stream_burst.out"
resp=$( (exec 3<>"/dev/tcp/127.0.0.1/${PORT}" &&
	printf 'GET /statsz HTTP/1.0\r\n\r\n' >&3 && cat <&3) 2>/dev/null || true)
grep -q '"stream_resubscribes":[1-9]' <<<"$resp" ||
	fail "phase 10b: router /statsz recorded no stream re-subscription after the kill"
stop_drain 5000

echo "e2e: all phases passed"
