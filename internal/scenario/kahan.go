package scenario

import "math"

// Kahan-compensated summation (the Kahan/Neumaier scalar-product
// machinery analyzed in arXiv:1604.01890): every reduction the scenario
// engine reports — portfolio values, per-cell P&L, the ladder's means —
// accumulates through Sum instead of a bare float64. Two properties
// matter here:
//
//  1. Accuracy. The compensated error bound is ~2·eps·Σ|x| independent
//     of n (versus n·eps for naive summation), pinned by the math/big
//     reference test.
//  2. Determinism under distribution. Compensation does NOT make
//     addition associative — reordering still changes bits. The engine
//     gets bit-stable distributed answers by fixing the order instead:
//     every sum runs in deterministic grid/portfolio order, and the
//     shard router merges sub-surfaces back into that order before
//     reducing, so any partitioning reproduces the single-process bytes
//     (the permutation-invariance test).

// Sum is a Neumaier-compensated accumulator. The zero value is an empty
// sum.
type Sum struct {
	s float64 // running sum
	c float64 // running compensation
}

// Add accumulates x.
func (k *Sum) Add(x float64) {
	t := k.s + x
	if math.Abs(k.s) >= math.Abs(x) {
		k.c += (k.s - t) + x
	} else {
		k.c += (x - t) + k.s
	}
	k.s = t
}

// Value returns the compensated total.
func (k *Sum) Value() float64 { return k.s + k.c }
