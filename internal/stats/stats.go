// Package stats provides the summary statistics and distributional tests
// the benchmark's validation and risk examples rely on: streaming moments,
// quantiles, histogram counts, and a Kolmogorov-Smirnov test against the
// standard normal (used to validate the RNG transforms and the simulated
// path distributions).
package stats

import (
	"math"
	"sort"

	"finbench/internal/mathx"
)

// Moments accumulates count, mean and central moments in one pass using
// the numerically stable Welford/Chan update (no catastrophic cancellation
// for large n).
type Moments struct {
	n              float64
	mean           float64
	m2, m3, m4     float64
	minVal, maxVal float64
}

// NewMoments returns an empty accumulator.
func NewMoments() *Moments {
	return &Moments{minVal: math.Inf(1), maxVal: math.Inf(-1)}
}

// Add accumulates one observation.
func (m *Moments) Add(x float64) {
	n1 := m.n
	m.n++
	delta := x - m.mean
	deltaN := delta / m.n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	m.mean += deltaN
	m.m4 += term1*deltaN2*(m.n*m.n-3*m.n+3) + 6*deltaN2*m.m2 - 4*deltaN*m.m3
	m.m3 += term1*deltaN*(m.n-2) - 3*deltaN*m.m2
	m.m2 += term1
	if x < m.minVal {
		m.minVal = x
	}
	if x > m.maxVal {
		m.maxVal = x
	}
}

// AddAll accumulates a slice.
func (m *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// N returns the observation count.
func (m *Moments) N() float64 { return m.n }

// Mean returns the sample mean.
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the population variance (n denominator).
func (m *Moments) Variance() float64 {
	if m.n == 0 { // finlint:ignore floateq exact zero-sample guard before dividing
		return 0
	}
	return m.m2 / m.n
}

// SampleVariance returns the unbiased (n-1) variance.
func (m *Moments) SampleVariance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / (m.n - 1)
}

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Skewness returns the standardized third moment.
func (m *Moments) Skewness() float64 {
	if m.m2 == 0 { // finlint:ignore floateq exact zero-variance guard before dividing
		return 0
	}
	return math.Sqrt(m.n) * m.m3 / math.Pow(m.m2, 1.5)
}

// Kurtosis returns the standardized fourth moment (3 for a normal).
func (m *Moments) Kurtosis() float64 {
	if m.m2 == 0 { // finlint:ignore floateq exact zero-variance guard before dividing
		return 0
	}
	return m.n * m.m4 / (m.m2 * m.m2)
}

// Min and Max return the extremes.
func (m *Moments) Min() float64 { return m.minVal }

// Max returns the largest observation.
func (m *Moments) Max() float64 { return m.maxVal }

// StdErr returns the standard error of the mean.
func (m *Moments) StdErr() float64 {
	if m.n == 0 { // finlint:ignore floateq exact zero-sample guard before dividing
		return 0
	}
	return math.Sqrt(m.SampleVariance() / m.n)
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// xs is not modified.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

// Quantiles returns several quantiles with one sort.
func Quantiles(xs []float64, ps []float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = quantileSorted(s, p)
	}
	return out
}

func quantileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	h := p * float64(len(s)-1)
	lo := int(h)
	frac := h - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// KSNormal returns the Kolmogorov-Smirnov statistic of xs against the
// standard normal distribution: sup |F_n(x) - Phi(x)|. For samples drawn
// from N(0,1) the statistic is ~0.5/sqrt(n) in expectation; values above
// ~1.6/sqrt(n) reject at the 1% level.
func KSNormal(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var d float64
	for i, x := range s {
		cdf := mathx.CND(x)
		lo := float64(i)/float64(n) - cdf
		hi := cdf - float64(i+1)/float64(n)
		if lo < 0 {
			lo = -lo
		}
		if hi < 0 {
			hi = -hi
		}
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// KSUniform returns the KS statistic of xs against U(0,1).
func KSUniform(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var d float64
	for i, x := range s {
		lo := math.Abs(float64(i)/float64(n) - x)
		hi := math.Abs(x - float64(i+1)/float64(n))
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// Autocorrelation returns the lag-k sample autocorrelation of xs.
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k <= 0 || k >= n {
		return math.NaN()
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-k; i++ {
		num += (xs[i] - mean) * (xs[i+k] - mean)
	}
	for _, x := range xs {
		den += (x - mean) * (x - mean)
	}
	if den == 0 { // finlint:ignore floateq exact zero-denominator guard
		return 0
	}
	return num / den
}
