package montecarlo

import (
	"errors"

	"finbench/internal/mathx"
	"finbench/internal/rng"
	"finbench/internal/workload"
)

// Merton (1976) jump-diffusion: the underlying follows GBM plus compound
// Poisson jumps with lognormal sizes. It is the classic first step beyond
// Black-Scholes (Premia, which the paper cites as the precursor benchmark,
// ships it), and it admits a closed form — a Poisson-weighted series of
// Black-Scholes prices — making it an ideal cross-validation pair for the
// jump Monte Carlo engine.

// JumpParams extends the market with jump dynamics: jumps arrive at
// Poisson rate Lambda per year; log jump sizes are N(Mu, Delta^2).
type JumpParams struct {
	Lambda, Mu, Delta float64
}

// ErrJump indicates invalid jump parameters.
var ErrJump = errors.New("montecarlo: need Lambda >= 0 and Delta >= 0")

// kBar returns E[e^J - 1], the expected relative jump size.
func (j JumpParams) kBar() float64 {
	return mathx.Exp(j.Mu+j.Delta*j.Delta/2) - 1
}

// MertonCallClosedForm evaluates the jump-diffusion call as the series
//
//	C = sum_n e^{-l'T} (l'T)^n / n! * BS(S, X, T; r_n, sigma_n)
//
// with l' = Lambda (1+kBar), sigma_n^2 = sigma^2 + n Delta^2 / T and
// r_n = r - Lambda kBar + n ln(1+kBar)/T, truncated when the Poisson
// weight tail falls below 1e-12.
func MertonCallClosedForm(s, x, t float64, jp JumpParams, mkt workload.MarketParams) (float64, error) {
	if jp.Lambda < 0 || jp.Delta < 0 {
		return 0, ErrJump
	}
	kb := jp.kBar()
	lp := jp.Lambda * (1 + kb)
	lpT := lp * t
	weight := mathx.Exp(-lpT) // n = 0 Poisson weight
	var price float64
	ln1k := mathx.Log(1 + kb)
	for n := 0; n < 200; n++ {
		sigN := mathx.Sqrt(mkt.Sigma*mkt.Sigma + float64(n)*jp.Delta*jp.Delta/t)
		rN := mkt.R - jp.Lambda*kb + float64(n)*ln1k/t
		price += weight * bsCall(s, x, t, rN, sigN)
		weight *= lpT / float64(n+1)
		if weight < 1e-12 && n > int(lpT) {
			break
		}
	}
	return price, nil
}

// bsCall is the plain Black-Scholes call for arbitrary (r, sigma).
func bsCall(s, x, t, r, sig float64) float64 {
	sqT := mathx.Sqrt(t)
	d1 := (mathx.Log(s/x) + (r+sig*sig/2)*t) / (sig * sqT)
	d2 := d1 - sig*sqT
	return s*mathx.CND(d1) - x*mathx.Exp(-r*t)*mathx.CND(d2)
}

// MertonCallMC prices the same call by simulation: conditionally on n
// jumps the terminal log-price is Gaussian, so each path draws
// n ~ Poisson(Lambda T), a standard normal for the diffusion, and n jump
// sizes (folded into one Gaussian draw since their sum is N(n Mu,
// n Delta^2)).
func MertonCallMC(s, x, t float64, jp JumpParams, npaths int, seed uint64, mkt workload.MarketParams) (Result, error) {
	if jp.Lambda < 0 || jp.Delta < 0 {
		return Result{}, ErrJump
	}
	kb := jp.kBar()
	drift := (mkt.R - jp.Lambda*kb - mkt.Sigma*mkt.Sigma/2) * t
	volT := mkt.Sigma * mathx.Sqrt(t)
	df := mathx.Exp(-mkt.R * t)
	stream := rng.NewStream(0, seed)
	z := make([]float64, 2)
	var v0, v1 float64
	for p := 0; p < npaths; p++ {
		n := poissonDraw(stream, jp.Lambda*t)
		stream.NormalICDF(z)
		logS := drift + volT*z[0]
		if n > 0 {
			fn := float64(n)
			logS += fn*jp.Mu + mathx.Sqrt(fn)*jp.Delta*z[1]
		}
		payoff := s*mathx.Exp(logS) - x
		if payoff < 0 {
			payoff = 0
		}
		payoff *= df
		v0 += payoff
		v1 += payoff * payoff
	}
	nn := float64(npaths)
	mean := v0 / nn
	variance := v1/nn - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Result{Price: mean, StdErr: mathx.Sqrt(variance / nn)}, nil
}

// poissonDraw samples Poisson(lambda) by Knuth's product method (lambda is
// small here — a few jumps per contract).
func poissonDraw(stream *rng.Stream, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := mathx.Exp(-lambda)
	u := make([]float64, 1)
	prod := 1.0
	n := -1
	for prod > limit {
		stream.Uniform(u)
		prod *= u[0]
		n++
	}
	return n
}
