package montecarlo

import (
	"finbench/internal/brownian"
	"finbench/internal/mathx"
	"finbench/internal/parallel"
	"finbench/internal/sobol"
	"finbench/internal/workload"
)

// Quasi-Monte Carlo extensions. The paper's Brownian-bridge kernel exists
// in finance precisely to pair with low-discrepancy points (Glasserman
// ch. 5, the paper's bridge reference): the bridge assigns the largest
// variance contributions to the lowest Sobol dimensions, concentrating the
// integrand's effective dimension where the point set is most uniform.
// These routines price with Sobol points in place of the Mersenne stream,
// using randomized digital shifts for error estimation.

// QMCEuropean prices a European call by integrating the terminal density
// over a 1-D Sobol sequence (one dimension suffices for a European
// payoff). shifts > 1 enables randomized-QMC error estimation: the
// estimate is averaged over that many digitally-shifted replicates and
// StdErr is their sample spread.
func QMCEuropean(s, x, t float64, npoints, shifts int, seed uint64, mkt workload.MarketParams) Result {
	if shifts < 1 {
		shifts = 1
	}
	vRtT := mathx.Sqrt(t) * mkt.Sigma
	muT := t * (mkt.R - mkt.Sigma*mkt.Sigma/2)
	df := mathx.Exp(-mkt.R * t)
	means := make([]float64, shifts)
	pt := make([]float64, 1)
	for r := 0; r < shifts; r++ {
		seq, err := sobol.New(1)
		if err != nil {
			panic(err)
		}
		if r > 0 {
			// Replicate 0 is the unshifted sequence; later replicates get
			// independent digital shifts.
			seq.DigitalShift(seed + uint64(r))
		}
		var sum float64
		for i := 0; i < npoints; i++ {
			seq.Next(pt)
			z := mathx.InvCND(pt[0])
			res := s*mathx.Exp(vRtT*z+muT) - x
			if res > 0 {
				sum += res
			}
		}
		means[r] = df * sum / float64(npoints)
	}
	var mean float64
	for _, m := range means {
		mean += m
	}
	mean /= float64(shifts)
	var v float64
	for _, m := range means {
		v += (m - mean) * (m - mean)
	}
	res := Result{Price: mean}
	if shifts > 1 {
		res.StdErr = mathx.Sqrt(v / float64(shifts) / float64(shifts-1))
	}
	return res
}

// AsianOption is an arithmetic-average Asian call: payoff
// max(mean(S_t) - X, 0) over Steps equally spaced observations — the
// path-dependent payoff for which lattice methods blow up and Monte Carlo
// becomes essential (Sec. II: "for the most complex options, Monte Carlo
// approaches are employed").
type AsianOption struct {
	S, X, T float64
	// Steps is the number of averaging dates; must be a power of two for
	// the bridge construction.
	Steps int
}

// payoffFromPath evaluates the discounted Asian payoff from a Wiener path
// w (len Steps+1 including w(0)=0).
func (a AsianOption) payoffFromPath(w []float64, mkt workload.MarketParams) float64 {
	mu := mkt.R - mkt.Sigma*mkt.Sigma/2
	dt := a.T / float64(a.Steps)
	var avg float64
	for p := 1; p <= a.Steps; p++ {
		t := float64(p) * dt
		avg += a.S * mathx.Exp(mu*t+mkt.Sigma*w[p])
	}
	avg /= float64(a.Steps)
	if avg <= a.X {
		return 0
	}
	return (avg - a.X) * mathx.Exp(-mkt.R*a.T)
}

// bridgeDepth returns the bridge depth for a power-of-two step count.
func bridgeDepth(steps int) int {
	d := -1
	for s := steps; s > 1; s >>= 1 {
		d++
	}
	return d
}

// AsianMC prices the Asian option by plain Monte Carlo: pseudo-random
// normals, bridge-constructed paths.
func AsianMC(a AsianOption, npaths int, seed uint64, mkt workload.MarketParams) Result {
	br := brownian.New(bridgeDepth(a.Steps), a.T)
	plen := br.PathLen()
	flat := make([]float64, npaths*plen)
	br.AdvancedInterleaved(seed, flat, npaths, 8, nil)
	var v0, v1 float64
	for i := 0; i < npaths; i++ {
		p := a.payoffFromPath(flat[i*plen:(i+1)*plen], mkt)
		v0 += p
		v1 += p * p
	}
	n := float64(npaths)
	mean := v0 / n
	variance := v1/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Result{Price: mean, StdErr: mathx.Sqrt(variance / n)}
}

// AsianQMC prices the Asian option by randomized quasi-Monte Carlo: Sobol
// points of dimension Steps, transformed to normals by the inverse CDF and
// mapped to paths through the Brownian bridge (so Sobol dimension k drives
// the k-th bridge refinement level — the variance-ordered pairing). The
// estimate averages `shifts` digitally-shifted replicates; StdErr is their
// spread.
func AsianQMC(a AsianOption, npoints, shifts int, seed uint64, mkt workload.MarketParams) Result {
	if shifts < 2 {
		shifts = 2
	}
	br := brownian.New(bridgeDepth(a.Steps), a.T)
	means := make([]float64, shifts)
	for r := 0; r < shifts; r++ {
		shiftSeed := seed + uint64(r)
		// Workers split the point range deterministically with Skip;
		// every point is evaluated exactly once (summation order, and so
		// the last few ulps, depend on the worker count).
		sum := parallel.ReduceFloat64(npoints, func(lo, hi int) float64 {
			seq, err := sobol.New(a.Steps)
			if err != nil {
				panic(err)
			}
			seq.DigitalShift(shiftSeed)
			seq.Skip(uint64(lo))
			pt := make([]float64, a.Steps)
			z := make([]float64, a.Steps)
			w := make([]float64, br.PathLen())
			var local float64
			for i := lo; i < hi; i++ {
				seq.Next(pt)
				for d := 0; d < a.Steps; d++ {
					z[d] = mathx.InvCND(pt[d])
				}
				br.BuildScalar(z, w)
				local += a.payoffFromPath(w, mkt)
			}
			return local
		})
		means[r] = sum / float64(npoints)
	}
	var mean float64
	for _, m := range means {
		mean += m
	}
	mean /= float64(shifts)
	var v float64
	for _, m := range means {
		v += (m - mean) * (m - mean)
	}
	return Result{Price: mean, StdErr: mathx.Sqrt(v / float64(shifts) / float64(shifts-1))}
}
