package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 50 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: 42}
	for attempt := 0; attempt < 12; attempt++ {
		d1 := b.Delay(attempt)
		d2 := b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: Delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 < 0 || d1 > 50*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside [0, Max]", attempt, d1)
		}
	}
	// Different seeds draw different jitter (overwhelmingly likely across
	// 8 attempts).
	other := b
	other.Seed = 43
	same := true
	for attempt := 0; attempt < 8; attempt++ {
		if b.Delay(attempt) != other.Delay(attempt) {
			same = false
		}
	}
	if same {
		t.Error("two seeds produced identical 8-delay sequences")
	}
	// The un-jittered ladder grows geometrically until the cap.
	nj := Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{1, 2, 4, 8, 8, 8}
	for i, w := range want {
		if got := nj.Delay(i); got != w*time.Millisecond {
			t.Errorf("attempt %d: delay %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBudgetEarnSpend(t *testing.T) {
	b := NewBudget(0.5, 2) // starts full at 2 tokens
	if !b.TryRetry() || !b.TryRetry() {
		t.Fatal("full budget denied initial retries")
	}
	if b.TryRetry() {
		t.Fatal("empty budget granted a retry")
	}
	b.OnAttempt() // +0.5 — still under one token
	if b.TryRetry() {
		t.Fatal("0.5 tokens granted a retry")
	}
	b.OnAttempt() // 1.0
	if !b.TryRetry() {
		t.Fatal("1.0 tokens denied a retry")
	}
	spent, denied := b.Counters()
	if spent != 3 || denied != 2 {
		t.Errorf("counters = (%d,%d), want (3,2)", spent, denied)
	}
	// nil budget allows everything.
	var nb *Budget
	nb.OnAttempt()
	if !nb.TryRetry() {
		t.Error("nil budget denied a retry")
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 5, Backoff{Base: time.Microsecond, Jitter: -1}, nil,
		func(ctx context.Context, attempt int) error {
			if attempt != calls {
				t.Errorf("attempt = %d, want %d", attempt, calls)
			}
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	sentinel := errors.New("executed; do not repeat")
	calls := 0
	err := Retry(context.Background(), 5, Backoff{Base: time.Microsecond}, nil,
		func(ctx context.Context, attempt int) error {
			calls++
			return Permanent(sentinel)
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the unwrapped sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if IsPermanent(err) {
		t.Error("Retry should unwrap the Permanent marker")
	}
	if !IsPermanent(Permanent(sentinel)) {
		t.Error("IsPermanent(Permanent(err)) = false")
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	boom := errors.New("still down")
	calls := 0
	err := Retry(context.Background(), 3, Backoff{Base: time.Microsecond, Jitter: -1}, nil,
		func(ctx context.Context, attempt int) error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want boom/3", err, calls)
	}
}

func TestRetryRespectsBudget(t *testing.T) {
	boom := errors.New("down")
	budget := NewBudget(0.1, 1) // one token: exactly one retry
	calls := 0
	err := Retry(context.Background(), 10, Backoff{Base: time.Microsecond, Jitter: -1}, budget,
		func(ctx context.Context, attempt int) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 { // first attempt + the single budgeted retry
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	boom := errors.New("down")
	err := Retry(ctx, 100, Backoff{Base: 50 * time.Millisecond, Jitter: -1}, nil,
		func(ctx context.Context, attempt int) error { return boom })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Second, Probes: 1, SuccessesToClose: 2, Now: clock})

	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker should be closed and admitting")
	}
	// Interleaved successes reset the consecutive-failure count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("breaker opened before threshold consecutive failures")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("breaker did not open at 3 consecutive failures")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
	snap := b.Snapshot()
	if snap.Opens != 1 || snap.State != "open" {
		t.Fatalf("snapshot = %+v", snap)
	}

	// After OpenFor, exactly Probes trial requests are admitted.
	now = now.Add(time.Second)
	if b.State() != HalfOpen {
		t.Fatal("State() did not report half-open after OpenFor")
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the first probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker exceeded its probe budget")
	}
	// First probe succeeds but SuccessesToClose=2 keeps it half-open.
	b.Success()
	if b.State() != HalfOpen {
		t.Fatal("breaker closed after 1 of 2 required probe successes")
	}
	if !b.Allow() {
		t.Fatal("freed probe slot was not re-admitted")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("breaker did not close after the required probe successes")
	}

	// A probe failure reopens immediately.
	b.Failure()
	b.Failure()
	b.Failure()
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("no probe admitted after reopen + OpenFor")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if got := b.Snapshot().Opens; got != 3 {
		t.Fatalf("opens = %d, want 3", got)
	}
}

func TestHedgeFirstSuccessWinsAndCancelsLoser(t *testing.T) {
	cancelled := make(chan struct{}, 4)
	v, attempt, err := Hedge(context.Background(), time.Millisecond, 3,
		func(ctx context.Context, attempt int) (int, error) {
			if attempt == 0 {
				// Slow primary: block until hedged past, then observe
				// cancellation.
				select {
				case <-ctx.Done():
					cancelled <- struct{}{}
					return 0, ctx.Err()
				case <-time.After(2 * time.Second):
					return 100, nil
				}
			}
			return 7, nil
		})
	if err != nil || v != 7 || attempt == 0 {
		t.Fatalf("got (%d,%d,%v), want the hedge's 7", v, attempt, err)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("losing attempt was not cancelled")
	}
}

func TestHedgeSingleAttemptFastPath(t *testing.T) {
	calls := 0
	v, attempt, err := Hedge(context.Background(), time.Hour, 1,
		func(ctx context.Context, attempt int) (string, error) { calls++; return "solo", nil })
	if err != nil || v != "solo" || attempt != 0 || calls != 1 {
		t.Fatalf("got (%q,%d,%v) calls=%d", v, attempt, err, calls)
	}
}

func TestHedgeAllFailReturnsPrimaryError(t *testing.T) {
	primary := errors.New("primary down")
	_, _, err := Hedge(context.Background(), time.Microsecond, 3,
		func(ctx context.Context, attempt int) (int, error) {
			if attempt == 0 {
				return 0, primary
			}
			return 0, errors.New("hedge down")
		})
	if !errors.Is(err, primary) {
		t.Fatalf("err = %v, want the primary attempt's error", err)
	}
}

func TestHedgeImmediateRelaunchOnFailure(t *testing.T) {
	// The delay is huge; hedges must still be launched when every
	// in-flight attempt has already failed.
	start := time.Now()
	v, attempt, err := Hedge(context.Background(), time.Hour, 3,
		func(ctx context.Context, attempt int) (int, error) {
			if attempt < 2 {
				return 0, errors.New("down")
			}
			return 42, nil
		})
	if err != nil || v != 42 || attempt != 2 {
		t.Fatalf("got (%d,%d,%v)", v, attempt, err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("failure-driven relaunch waited for the hedge timer")
	}
}

func TestHedgeHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := Hedge(ctx, time.Hour, 2,
		func(ctx context.Context, attempt int) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
