package workload

import (
	"testing"
)

func TestGenerateAOSInRange(t *testing.T) {
	g := DefaultOptionGen
	a := g.GenerateAOS(1000)
	if a.Len() != 1000 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.S(i) < g.SMin || a.S(i) >= g.SMax {
			t.Fatalf("S[%d] = %g out of range", i, a.S(i))
		}
		if a.X(i) < g.XMin || a.X(i) >= g.XMax {
			t.Fatalf("X[%d] = %g out of range", i, a.X(i))
		}
		if a.T(i) < g.TMin || a.T(i) >= g.TMax {
			t.Fatalf("T[%d] = %g out of range", i, a.T(i))
		}
		if a.Call(i) != 0 || a.Put(i) != 0 {
			t.Fatalf("outputs not zeroed at %d", i)
		}
	}
}

func TestGenerateReproducible(t *testing.T) {
	a := DefaultOptionGen.GenerateAOS(100)
	b := DefaultOptionGen.GenerateAOS(100)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different batches")
		}
	}
	g2 := DefaultOptionGen
	g2.Seed++
	c := g2.GenerateAOS(100)
	same := 0
	for i := range a.Data {
		if a.Data[i] == c.Data[i] {
			same++
		}
	}
	if same == len(a.Data) {
		t.Fatal("different seeds produced identical batches")
	}
}

func TestGenerateSOAMatchesAOS(t *testing.T) {
	a := DefaultOptionGen.GenerateAOS(50)
	s := DefaultOptionGen.GenerateSOA(50)
	for i := 0; i < 50; i++ {
		if s.S[i] != a.S(i) || s.X[i] != a.X(i) || s.T[i] != a.T(i) {
			t.Fatalf("SOA differs from AOS at %d", i)
		}
	}
}

func TestBridgeConfigSteps(t *testing.T) {
	// Depth 5 = the paper's 64-step Brownian bridge (Fig. 6).
	if (BridgeConfig{Depth: 5}).Steps() != 64 {
		t.Fatal("Depth 5 should give 64 steps")
	}
	if (BridgeConfig{Depth: 0}).Steps() != 2 {
		t.Fatal("Depth 0 should give 2 steps")
	}
}

func TestDefaultMarket(t *testing.T) {
	if DefaultMarket.R <= 0 || DefaultMarket.Sigma <= 0 {
		t.Fatal("default market params must be positive")
	}
}
