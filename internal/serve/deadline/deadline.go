// Package deadline provides a pooled replacement for context.WithTimeout
// on latency-sensitive paths. context.WithTimeout allocates a timerCtx, a
// timer, and a stop closure per call; this recycles one object with one
// timer that lives as long as the pool entry. It is shared by the serve
// request handlers (one Ctx per request) and the streaming repricing loop
// (one Ctx per tick budget).
package deadline

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Ctx is a pooled context that is done at a fixed deadline or when its
// parent is cancelled, whichever comes first.
//
// The Done channel is a real channel — the pricing kernels fast-path
// `ctx.Done() == nil` as "cancellation disabled", so a lazily-nil Done
// would silently turn deadlines off. The channel is only closed when the
// deadline actually fires (or the parent cancels); Release abandons the
// object in that case, because a closed channel cannot signal again.
type Ctx struct {
	parent     context.Context
	deadline   time.Time
	done       chan struct{}
	timer      *time.Timer
	stopParent func() bool // non-nil while parent propagation is registered
	fired      atomic.Bool
}

var pool = sync.Pool{
	New: func() any { return &Ctx{done: make(chan struct{})} },
}

// Acquire returns a context that is done at deadline or when parent is
// cancelled, whichever is first. Release it with Release(); after Release
// the context must not be used.
func Acquire(parent context.Context, deadline time.Time) *Ctx {
	d := pool.Get().(*Ctx)
	d.parent = parent
	d.deadline = deadline
	if d.timer == nil {
		d.timer = time.AfterFunc(time.Until(deadline), d.fire)
	} else {
		d.timer.Reset(time.Until(deadline))
	}
	if pd := parent.Done(); pd != nil {
		select {
		case <-pd:
			// Already cancelled: fire synchronously so the first Err()
			// check observes it (AfterFunc would race via its goroutine).
			d.fire()
		default:
			d.stopParent = context.AfterFunc(parent, d.fire)
		}
	}
	return d
}

func (d *Ctx) fire() {
	if d.fired.CompareAndSwap(false, true) {
		close(d.done)
	}
}

// Release returns the context to the pool. If the deadline fired (the
// done channel is closed, or a fire may be in flight), the object is
// abandoned instead — correctness over reuse.
func (d *Ctx) Release() {
	reusable := d.timer.Stop()
	if d.stopParent != nil {
		if !d.stopParent() {
			reusable = false
		}
		d.stopParent = nil
	}
	d.parent = nil
	if !reusable || d.fired.Load() {
		return
	}
	pool.Put(d)
}

// Expired reports whether the deadline has passed or the parent was
// cancelled. Unlike Err it also consults the wall clock, so a caller
// polling between work items observes an expired deadline even before
// the timer goroutine has been scheduled (e.g. a busy single-P runtime).
func (d *Ctx) Expired() bool {
	return d.Err() != nil || !time.Now().Before(d.deadline)
}

func (d *Ctx) Deadline() (time.Time, bool) { return d.deadline, true }

func (d *Ctx) Done() <-chan struct{} { return d.done }

func (d *Ctx) Err() error {
	select {
	case <-d.done:
		if p := d.parent; p != nil {
			if err := p.Err(); err != nil {
				return err
			}
		}
		return context.DeadlineExceeded
	default:
		return nil
	}
}

func (d *Ctx) Value(key any) any {
	if p := d.parent; p != nil {
		return p.Value(key)
	}
	return nil
}
