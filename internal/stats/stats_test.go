package stats

import (
	"math"
	"testing"
	"testing/quick"

	"finbench/internal/rng"
)

func TestMomentsKnownValues(t *testing.T) {
	m := NewMoments()
	m.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m.N() != 8 {
		t.Fatalf("n = %g", m.N())
	}
	if math.Abs(m.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %g", m.Mean())
	}
	if math.Abs(m.Variance()-4) > 1e-12 {
		t.Fatalf("variance = %g", m.Variance())
	}
	if math.Abs(m.StdDev()-2) > 1e-12 {
		t.Fatalf("stddev = %g", m.StdDev())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min/max = %g/%g", m.Min(), m.Max())
	}
}

func TestMomentsNormalSample(t *testing.T) {
	s := rng.NewStream(0, 42)
	buf := make([]float64, 200000)
	s.NormalICDF(buf)
	m := NewMoments()
	m.AddAll(buf)
	if math.Abs(m.Mean()) > 0.01 {
		t.Fatalf("mean = %g", m.Mean())
	}
	if math.Abs(m.Variance()-1) > 0.02 {
		t.Fatalf("variance = %g", m.Variance())
	}
	if math.Abs(m.Skewness()) > 0.03 {
		t.Fatalf("skewness = %g", m.Skewness())
	}
	if math.Abs(m.Kurtosis()-3) > 0.1 {
		t.Fatalf("kurtosis = %g", m.Kurtosis())
	}
	if m.StdErr() <= 0 || m.StdErr() > 0.01 {
		t.Fatalf("stderr = %g", m.StdErr())
	}
}

func TestMomentsEmpty(t *testing.T) {
	m := NewMoments()
	if m.Variance() != 0 || m.SampleVariance() != 0 || m.StdErr() != 0 {
		t.Fatal("empty accumulator should return zeros")
	}
}

// Property: Welford mean/variance match the two-pass formulas.
func TestMomentsMatchTwoPassQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		m := NewMoments()
		m.AddAll(xs)
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(len(xs))
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(m.Mean()-mean) < 1e-9*scale && math.Abs(m.Variance()-v) < 1e-6*math.Max(1, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median = %g", Quantile(xs, 0.5))
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %g", got)
	}
	// Interpolated case.
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolated median = %g", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	qs := Quantiles(xs, []float64{0, 0.5, 1})
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Fatalf("quantiles = %v", qs)
	}
	for _, q := range Quantiles(nil, []float64{0.5}) {
		if !math.IsNaN(q) {
			t.Fatal("empty quantiles not NaN")
		}
	}
}

func TestKSNormalAcceptsNormal(t *testing.T) {
	s := rng.NewStream(1, 7)
	buf := make([]float64, 50000)
	s.NormalICDF(buf)
	d := KSNormal(buf)
	if d > 1.6/math.Sqrt(50000) {
		t.Fatalf("KS = %g rejects true normals", d)
	}
}

func TestKSNormalRejectsUniform(t *testing.T) {
	s := rng.NewStream(1, 7)
	buf := make([]float64, 10000)
	s.Uniform(buf)
	if d := KSNormal(buf); d < 0.1 {
		t.Fatalf("KS = %g fails to reject uniforms", d)
	}
}

func TestKSUniform(t *testing.T) {
	s := rng.NewStream(2, 9)
	buf := make([]float64, 50000)
	s.Uniform(buf)
	if d := KSUniform(buf); d > 1.6/math.Sqrt(50000) {
		t.Fatalf("KS = %g rejects true uniforms", d)
	}
	norm := make([]float64, 10000)
	s.NormalICDF(norm)
	if d := KSUniform(norm); d < 0.1 {
		t.Fatalf("KS = %g fails to reject normals", d)
	}
}

func TestKSEmpty(t *testing.T) {
	if KSNormal(nil) != 0 || KSUniform(nil) != 0 {
		t.Fatal("empty KS not zero")
	}
}

func TestAutocorrelation(t *testing.T) {
	// A perfectly alternating sequence has lag-1 autocorrelation ~ -1.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	if ac := Autocorrelation(xs, 1); ac > -0.99 {
		t.Fatalf("alternating lag-1 AC = %g", ac)
	}
	// IID draws have near-zero lag-1 autocorrelation.
	s := rng.NewStream(3, 11)
	buf := make([]float64, 100000)
	s.Uniform(buf)
	if ac := Autocorrelation(buf, 1); math.Abs(ac) > 0.02 {
		t.Fatalf("iid lag-1 AC = %g", ac)
	}
	if !math.IsNaN(Autocorrelation(xs, 0)) || !math.IsNaN(Autocorrelation(xs, 1000)) {
		t.Fatal("invalid lags not NaN")
	}
}
