package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// directivePass audits the suite's own suppression mechanism. An ignore
// directive with no reason silences a finding without recording why the
// code is actually safe, and an unknown pass name is a typo that
// suppresses nothing. Both are findings in their own right, so the
// suppression ledger stays as honest as the invariants it overrides.
func directivePass() *Pass {
	return &Pass{
		Name: "directive",
		Doc:  "malformed finlint:ignore (missing pass name, unknown pass, or empty reason)",
		Run:  runDirective,
	}
}

func runDirective(p *Package, report func(pos token.Pos, msg string)) {
	known := make(map[string]bool)
	for _, name := range PassNames() {
		known[name] = true
	}
	for _, d := range p.Directives {
		switch {
		case d.Pass == "":
			report(d.Pos, "finlint:ignore without a pass name suppresses nothing; write finlint:ignore <pass> <reason>")
		case !known[d.Pass] && d.Pass != "all":
			report(d.Pos, fmt.Sprintf("finlint:ignore names unknown pass %q (have %s)", d.Pass, strings.Join(PassNames(), ", ")))
		case d.Reason == "":
			report(d.Pos, fmt.Sprintf("finlint:ignore %s has no reason; state why the suppressed finding is safe", d.Pass))
		}
	}
}
