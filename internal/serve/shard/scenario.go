package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"finbench/internal/scenario"
)

// Scenario scatter-gather: the router's first request-splitting path. A
// /scenario request's closed-form grid cells are partitioned across the
// routable replicas as `cells` sub-range requests, each dispatched
// through the normal retry/failover machinery, so a replica dying
// mid-request only re-routes its unfinished partition. Generator blocks
// are Monte Carlo: each is one indivisible partition with exactly one
// attempt — never split mid-cell, never retried — the same rule that
// keeps Monte Carlo out of retry and hedging on /price.
//
// The merge funnels through scenario.Finalize, the same function a lone
// replica uses, and re-reduces the ladder from the merged full surface
// in deterministic cell order. Combined with the response carrying no
// timing field, the routed 200 is byte-identical to a single-process
// answer for any replica count and any partition completion order.

// routeScenario routes one /scenario request, scattering it when there
// is more than one routable replica and the request is splittable.
func (r *Router) routeScenario(w http.ResponseWriter, req *http.Request) {
	r.requests.Add(1)
	r.scenarioRequests.Add(1)
	body, err := io.ReadAll(io.LimitReader(req.Body, maxProxyBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}

	var sreq scenario.Request
	decodable := json.Unmarshal(body, &sreq) == nil

	ctx := req.Context()
	if decodable && sreq.DeadlineMS > 0 {
		// The deadline travels in the body and the backends enforce it;
		// mirroring it here bounds retries and backoff waits too.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(sreq.DeadlineMS)*time.Millisecond)
		defer cancel()
	}

	parts := r.scenarioPartitions(&sreq, decodable)
	if len(parts) < 2 {
		// Undecodable (backend owns validation and answers 400), already a
		// sub-range, or not worth splitting: one plain dispatch.
		monteCarlo := decodable && sreq.NumGenCells() > 0
		res, err := r.dispatch(ctx, req.Method, "/scenario", "application/json", body, monteCarlo)
		if err != nil {
			r.writeRouteError(w, err, res)
			return
		}
		r.passThrough(w, res.final, res.st, res.hedgeWon, res.retries)
		return
	}
	r.scenarioScattered.Add(1)
	r.scenarioPartitionsSent.Add(uint64(len(parts)))

	indexOf := make(map[int]int, len(parts)) // partition Start -> index
	for i, p := range parts {
		indexOf[p.Start] = i
	}
	surface := make([]float64, sreq.NumCells())
	bases := make([]float64, len(parts))
	results := make([]*routeResult, len(parts))
	err = scenario.Scatter(ctx, parts, func(ctx context.Context, p Partition) error {
		i := indexOf[p.Start]
		sub := sreq
		sub.Cells = &scenario.Cells{Start: p.Start, Count: p.Count}
		subBody, err := json.Marshal(&sub)
		if err != nil {
			return err
		}
		res, err := r.dispatch(ctx, req.Method, "/scenario", "application/json", subBody, p.MonteCarlo)
		results[i] = res
		if err != nil {
			return err
		}
		if res.final.status != http.StatusOK {
			return &httpFailure{res: res.final}
		}
		var out scenario.Response
		if err := json.Unmarshal(res.final.body, &out); err != nil ||
			out.Start != p.Start || len(out.PnL) != p.Count {
			r.corrupt.Add(1)
			return fmt.Errorf("replica %s: malformed scenario sub-response for cells [%d,%d)",
				res.final.rep.url, p.Start, p.Start+p.Count)
		}
		copy(surface[p.Start:p.Start+p.Count], out.PnL)
		bases[i] = out.BaseValue
		return nil
	})
	if err != nil {
		// Scatter surfaced the first failing partition in partition order:
		// answer exactly as a plain routed failure with that partition's
		// last backend response would be answered.
		var hf *httpFailure
		if errors.As(err, &hf) {
			for _, res := range results {
				if res != nil && res.final == hf.res {
					r.writeRouteError(w, err, res)
					return
				}
			}
		}
		r.writeRouteError(w, err, nil)
		return
	}
	for i := 1; i < len(bases); i++ {
		if bases[i] != bases[0] { // finlint:ignore floateq byte-identity contract: replicas must agree to the bit, a tolerance would merge divergent surfaces
			// Heterogeneous fleet (mismatched market config): refuse to
			// merge answers that disagree on the unshocked book value.
			r.corrupt.Add(1)
			writeError(w, http.StatusBadGateway, "replicas disagree on scenario base value")
			return
		}
	}

	w.Header().Set("X-Finserve-Partitions", fmt.Sprintf("%d", len(parts)))
	writeJSON(w, http.StatusOK, scenario.Finalize(&sreq, bases[0], 0, surface))
}

// Partition aliases the scenario package's cell-range partition.
type Partition = scenario.Partition

// scenarioPartitions decides the scatter plan: nil (single dispatch)
// unless the request decoded, is a whole-surface request (a `cells`
// sub-range is already someone else's partition), passes the cheap
// structural checks the partitioner relies on, and there are at least
// two routable replicas to spread over.
func (r *Router) scenarioPartitions(sreq *scenario.Request, decodable bool) []Partition {
	if !decodable || sreq.Cells != nil || len(sreq.Portfolio) == 0 {
		return nil
	}
	for i := range sreq.Generators {
		if sreq.Generators[i].Scenarios < 1 {
			return nil // backend answers 400; nothing sane to split
		}
	}
	routable := 0
	for _, rep := range r.replicas {
		if rep.routable() {
			routable++
		}
	}
	if routable < 2 || sreq.NumCells() < 2 {
		return nil
	}
	return scenario.PartitionCells(sreq, routable)
}
