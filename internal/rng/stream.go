package rng

import (
	"fmt"
	"math"

	"finbench/internal/mathx"
	"finbench/internal/perf"
)

// Method selects the uniform-to-normal transform, mirroring MKL's VSL
// method constants.
type Method int

const (
	// ICDF applies the inverse cumulative normal distribution to each
	// uniform draw — one normal per uniform, fully vectorizable; the method
	// the paper's Table II rates correspond to.
	ICDF Method = iota
	// BoxMuller applies the trigonometric Box-Muller transform, two
	// normals per two uniforms.
	BoxMuller
	// BoxMuller2 is the polar (Marsaglia) rejection variant.
	BoxMuller2
	// ZigguratMethod is the Marsaglia-Tsang 256-layer rejection method,
	// fastest scalar method but branchy (hence absent from the paper's
	// SIMD pipelines; included for the ablation benchmarks).
	ZigguratMethod
)

// String names the method.
func (m Method) String() string {
	switch m {
	case ICDF:
		return "icdf"
	case BoxMuller:
		return "box-muller"
	case BoxMuller2:
		return "box-muller-polar"
	case ZigguratMethod:
		return "ziggurat"
	default:
		return fmt.Sprintf("rng.Method(%d)", int(m))
	}
}

// Stream is one independent random stream, the unit handed to each worker
// thread. It wraps a twister plus transform state and optionally records
// generation work into a perf.Counts.
type Stream struct {
	mt *MT
	// C, when non-nil, receives OpRNG per uniform draw and OpInvCND per
	// ICDF transform, which is how the Table II experiment models RNG cost.
	C *perf.Counts

	// Box-Muller carry: the second normal of a generated pair.
	haveSpare bool
	spare     float64
}

// NewStream returns stream id from the family seeded by seed. Stream
// identities follow the MKL MT2203 convention (family id selects an
// independent generator); per the documented substitution, independence
// comes from SplitMix64-scrambled seeding of the MT19937 engine rather
// than from dcmt parameter sets.
func NewStream(id int, seed uint64) *Stream {
	s := splitmix64(seed ^ splitmix64(uint64(id)+0x5851F42D4C957F2D))
	key := []uint32{uint32(s), uint32(s >> 32), uint32(id), 0x6D2B79F5}
	mt := NewMT19937(5489)
	mt.SeedArray(key)
	return &Stream{mt: mt}
}

// NewStreamMT wraps an existing twister (used by tests and by the
// known-answer path).
func NewStreamMT(mt *MT) *Stream { return &Stream{mt: mt} }

// DeriveSeed folds tags into a base seed through a SplitMix64 chain,
// producing a well-separated seed for a derived stream family. Callers use
// it to give repeated operations (e.g. successive Simulate calls) distinct
// but reproducible seeds: the same (base, tags...) always yields the same
// result, and differing in any tag decorrelates the output.
func DeriveSeed(base uint64, tags ...uint64) uint64 {
	s := splitmix64(base)
	for _, t := range tags {
		s = splitmix64(s ^ splitmix64(t+0x9E3779B97F4A7C15))
	}
	return s
}

func (s *Stream) countRNG(n uint64) {
	if s.C != nil {
		s.C.Add(perf.OpRNG, n)
	}
}

func (s *Stream) count(op perf.Op, n uint64) {
	if s.C != nil {
		s.C.Add(op, n)
	}
}

// Uniform fills dst with uniforms in (0,1). Fills proceed in vector-width
// chunks from the twister, the "loaded in vector-width chunks" modification
// the Brownian-bridge optimization requires (Sec. IV-C2); with a serial
// twister that reduces to a straight run, but the contract (a multiple of
// the SIMD width per internal step) is what the kernels rely on.
func (s *Stream) Uniform(dst []float64) {
	s.countRNG(uint64(len(dst)))
	for i := range dst {
		dst[i] = s.mt.Float64OO()
	}
}

// Uint32 exposes the raw twister output (used by the ziggurat).
func (s *Stream) Uint32() uint32 {
	s.countRNG(1)
	return s.mt.Uint32()
}

// NormalICDF fills dst with standard normals via the inverse CDF.
func (s *Stream) NormalICDF(dst []float64) {
	s.countRNG(uint64(len(dst)))
	s.count(perf.OpInvCND, uint64(len(dst)))
	for i := range dst {
		dst[i] = mathx.InvCND(s.mt.Float64OO())
	}
}

// NormalBoxMuller fills dst with standard normals via the trigonometric
// Box-Muller transform.
func (s *Stream) NormalBoxMuller(dst []float64) {
	for i := range dst {
		if s.haveSpare {
			s.haveSpare = false
			dst[i] = s.spare
			continue
		}
		s.countRNG(2)
		// Charge the pair's transcendental work: log, sqrt, and the
		// sin/cos pair (modelled as two Exp-class evaluations).
		s.count(perf.OpLog, 1)
		s.count(perf.OpSqrt, 1)
		s.count(perf.OpExp, 2)
		u1 := s.mt.Float64OO()
		u2 := s.mt.Float64OO()
		r := mathx.Sqrt(-2 * mathx.Log(u1))
		z0, z1 := sincos2pi(u2)
		dst[i] = r * z0
		s.spare = r * z1
		s.haveSpare = true
	}
}

// NormalPolar fills dst with standard normals via the Marsaglia polar
// method (rejection; acceptance ratio pi/4).
func (s *Stream) NormalPolar(dst []float64) {
	for i := range dst {
		if s.haveSpare {
			s.haveSpare = false
			dst[i] = s.spare
			continue
		}
		for {
			s.countRNG(2)
			u := 2*s.mt.Float64OO() - 1
			v := 2*s.mt.Float64OO() - 1
			q := u*u + v*v
			if q > 0 && q < 1 {
				s.count(perf.OpLog, 1)
				s.count(perf.OpSqrt, 1)
				f := mathx.Sqrt(-2 * mathx.Log(q) / q)
				dst[i] = u * f
				s.spare = v * f
				s.haveSpare = true
				break
			}
		}
	}
}

// Normal fills dst using the given method.
func (s *Stream) Normal(dst []float64, m Method) {
	switch m {
	case ICDF:
		s.NormalICDF(dst)
	case BoxMuller:
		s.NormalBoxMuller(dst)
	case BoxMuller2:
		s.NormalPolar(dst)
	case ZigguratMethod:
		s.NormalZiggurat(dst)
	default:
		panic(fmt.Sprintf("rng: unknown method %v", m))
	}
}

// sincos2pi returns cos(2*pi*u), sin(2*pi*u) via the standard library's
// combined evaluation.
func sincos2pi(u float64) (c, s float64) {
	sn, cs := math.Sincos(2 * math.Pi * u)
	return cs, sn
}
