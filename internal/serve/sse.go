package serve

import (
	"errors"
	"net/http"
	"os"
	"time"

	"finbench/internal/serve/stream"
)

// handleStream serves GET /stream: an SSE subscription to the streaming
// Greeks feed. The query's `contracts` (comma-separated inclusive ranges,
// "0-63,128-191") and `ids` (comma-separated ids) select the contract
// set; both absent subscribes to the whole universe.
//
// The stream opens with `event: hello` (the feed parameters), then the
// subscription's first pushed state is always a full `event: snapshot`;
// after that, `event: greeks` deltas carry the freshly repriced
// intersection of each pass. A subscriber whose buffer overflowed gets a
// `snapshot` with resync=true instead of the deltas it missed. Drain
// ends the stream with `event: goodbye`.
//
// Every frame write runs under StreamWriteTimeout through the response
// controller: a stalled client is disconnected rather than allowed to
// pin its handler (and block the server's drain) indefinitely.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.stats.streamRequests.Add(1)
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.hub == nil {
		s.writeError(w, http.StatusNotFound, "streaming disabled")
		return
	}
	if s.draining.Load() {
		s.stats.shedDrain.Add(1)
		s.writeShed(w, "server is draining")
		return
	}
	if !s.rateAllow() {
		s.stats.shedRate.Add(1)
		s.writeError(w, http.StatusTooManyRequests, "request rate limit exceeded")
		return
	}
	q := r.URL.Query()
	ids, err := stream.ParseSubscription(q.Get("contracts"), q.Get("ids"), s.hub.Universe())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sub, err := s.hub.Subscribe(ids)
	if err != nil {
		switch {
		case errors.Is(err, stream.ErrDraining):
			s.stats.shedDrain.Add(1)
			s.writeShed(w, err.Error())
		case errors.Is(err, stream.ErrTooManySubs):
			s.writeShed(w, err.Error())
		default:
			s.writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	defer s.hub.Unsubscribe(sub)

	rc := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	s.stats.countCode(http.StatusOK)

	s.streamActive.Add(1)
	defer s.streamActive.Add(-1)

	hello := s.hub.HelloFor(sub)
	if !s.writeFrame(rc, w, stream.MarshalFrame(stream.EventHello, &hello)) {
		return
	}

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			// Client went away; Unsubscribe stops the fan-out.
			return
		case <-sub.Gone():
			// Drain: finish the stream explicitly inside the drain window
			// instead of letting the connection die with the listener.
			s.writeFrame(rc, w, stream.MarshalFrame(stream.EventGoodbye,
				&stream.Goodbye{Reason: "draining"}))
			return
		case frame := <-sub.C():
			if !s.writeFrame(rc, w, frame) {
				return
			}
		}
	}
}

// writeFrame writes one SSE frame under the configured write deadline and
// flushes it. A deadline miss means a stalled client: count it and report
// failure so the handler disconnects; other write errors are ordinary
// disconnects.
func (s *Server) writeFrame(rc *http.ResponseController, w http.ResponseWriter, frame []byte) bool {
	if frame == nil {
		return true
	}
	if err := rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout)); err != nil {
		return false
	}
	_, werr := w.Write(frame)
	if werr == nil {
		werr = rc.Flush()
	}
	if werr != nil {
		if errors.Is(werr, os.ErrDeadlineExceeded) {
			s.stats.streamSlowDisconnects.Add(1)
		}
		return false
	}
	return true
}
