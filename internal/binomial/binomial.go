// Package binomial implements the 1D binomial-tree option pricing kernel at
// the paper's optimization levels (Sec. IV-B, Fig. 5):
//
//   - RefScalar: the reference per-option backward induction of Lis. 2.
//   - Basic: inner-loop (j) vectorization of the reference code, with the
//     unaligned Call[j+1] load and the SIMD-efficiency loss at row ends
//     that the paper calls out.
//   - Intermediate: SIMD across options — one option per lane over a
//     lane-blocked layout, eliminating unaligned loads.
//   - Advanced: the paper's novel register-tiling scheme (Lis. 3, Fig. 2b):
//     TS time steps are fused so each Call value is loaded and stored once
//     per TS steps, with the rest of the reduction kept in registers. The
//     unrolled variant additionally eliminates the wavefront register move
//     (a 1.4x effect on in-order KNC, none on out-of-order SNB-EP).
//
// All variants price European options under the Cox-Ross-Rubinstein
// parameterization and compute identical arithmetic per tree node, so
// results agree bitwise across variants (verified by tests). An American
// put variant of the scalar reference exists for cross-validation against
// Crank-Nicolson.
package binomial // finlint:hot — allocation-free loops enforced by internal/lint

import (
	"context"

	"finbench/internal/layout"
	"finbench/internal/mathx"
	"finbench/internal/parallel"
	"finbench/internal/perf"
	"finbench/internal/vec"
	"finbench/internal/workload"
)

// Params binds the tree discretization for one option.
type Params struct {
	// Steps is the tree depth N.
	Steps int
	// VDt is sigma*sqrt(dt).
	VDt float64
	// PuByDf and PdByDf are the discounted up/down probabilities.
	PuByDf, PdByDf float64
}

// NewParams derives CRR tree parameters: u = e^{sigma sqrt(dt)}, d = 1/u,
// pu = (e^{r dt} - d)/(u - d), discounted by e^{-r dt}.
func NewParams(t float64, steps int, mkt workload.MarketParams) Params {
	dt := t / float64(steps)
	vDt := mkt.Sigma * mathx.Sqrt(dt)
	u := mathx.Exp(vDt)
	d := 1 / u
	a := mathx.Exp(mkt.R * dt)
	pu := (a - d) / (u - d)
	df := 1 / a
	return Params{Steps: steps, VDt: vDt, PuByDf: pu * df, PdByDf: (1 - pu) * df}
}

// leaf returns the European call payoff at leaf j: max(S e^{(2j-N) vDt}-X, 0).
func leaf(s, x float64, p Params, j int) float64 {
	v := s*mathx.Exp(p.VDt*float64(2*j-p.Steps)) - x
	if v < 0 {
		return 0
	}
	return v
}

// PriceScalar prices one European call via the reference backward
// induction (Lis. 2).
func PriceScalar(s, x, t float64, steps int, mkt workload.MarketParams) float64 {
	p := NewParams(t, steps, mkt)
	call := make([]float64, steps+1)
	for j := 0; j <= steps; j++ {
		call[j] = leaf(s, x, p, j)
	}
	reduceScalar(call, p)
	return call[0]
}

// ctxLevelBlock is how many tree levels the cancellable variants reduce
// between context checks: fine enough that a deep tree stops within tens
// of microseconds, coarse enough that the check never shows in profiles.
const ctxLevelBlock = 128

// PriceScalarCtx is PriceScalar with cancellation checked every
// ctxLevelBlock tree levels. An uncancelled run is bit-identical to
// PriceScalar (the reduction is the same loop in the same order).
func PriceScalarCtx(cx context.Context, s, x, t float64, steps int, mkt workload.MarketParams) (float64, error) {
	done := cx.Done()
	if done == nil {
		return PriceScalar(s, x, t, steps, mkt), nil
	}
	if err := cx.Err(); err != nil {
		return 0, err
	}
	p := NewParams(t, steps, mkt)
	call := make([]float64, steps+1)
	for j := 0; j <= steps; j++ {
		call[j] = leaf(s, x, p, j)
	}
	if !reduceScalarDone(call, p, done) {
		return 0, cx.Err()
	}
	return call[0], nil
}

// reduceScalar is the Lis. 2 kernel: the in-place ascending-j update.
func reduceScalar(call []float64, p Params) {
	n := len(call) - 1
	for i := n; i > 0; i-- {
		for j := 0; j <= i-1; j++ {
			call[j] = p.PuByDf*call[j+1] + p.PdByDf*call[j]
		}
	}
}

// reduceScalarDone is reduceScalar with a cancellation check every
// ctxLevelBlock levels; returns false if abandoned mid-reduction.
func reduceScalarDone(call []float64, p Params, done <-chan struct{}) bool {
	n := len(call) - 1
	for i := n; i > 0; i-- {
		if (n-i)%ctxLevelBlock == 0 {
			select {
			case <-done:
				return false
			default:
			}
		}
		for j := 0; j <= i-1; j++ {
			call[j] = p.PuByDf*call[j+1] + p.PdByDf*call[j]
		}
	}
	return true
}

// PriceAmericanPutScalar prices one American put on the same tree,
// applying the early-exercise maximum at every node (Sec. II-B). It is the
// cross-validation oracle for the Crank-Nicolson kernel.
func PriceAmericanPutScalar(s, x, t float64, steps int, mkt workload.MarketParams) float64 {
	v, _ := americanPutScalarDone(s, x, t, steps, mkt, nil)
	return v
}

// PriceAmericanPutScalarCtx is PriceAmericanPutScalar with cancellation
// checked every ctxLevelBlock tree levels.
func PriceAmericanPutScalarCtx(cx context.Context, s, x, t float64, steps int, mkt workload.MarketParams) (float64, error) {
	done := cx.Done()
	if done == nil {
		return PriceAmericanPutScalar(s, x, t, steps, mkt), nil
	}
	if err := cx.Err(); err != nil {
		return 0, err
	}
	v, ok := americanPutScalarDone(s, x, t, steps, mkt, done)
	if !ok {
		return 0, cx.Err()
	}
	return v, nil
}

// americanPutScalarDone is the shared American-put induction; a nil done
// skips the per-level-block checks.
func americanPutScalarDone(s, x, t float64, steps int, mkt workload.MarketParams, done <-chan struct{}) (float64, bool) {
	p := NewParams(t, steps, mkt)
	val := make([]float64, steps+1)
	for j := 0; j <= steps; j++ {
		v := x - s*mathx.Exp(p.VDt*float64(2*j-steps))
		if v < 0 {
			v = 0
		}
		val[j] = v
	}
	for i := steps; i > 0; i-- {
		if done != nil && (steps-i)%ctxLevelBlock == 0 {
			select {
			case <-done:
				return 0, false
			default:
			}
		}
		for j := 0; j <= i-1; j++ {
			cont := p.PuByDf*val[j+1] + p.PdByDf*val[j]
			// Early exercise: spot at node (i-1, j) is S e^{(2j-(i-1)) vDt}.
			ex := x - s*mathx.Exp(p.VDt*float64(2*j-(i-1)))
			if ex > cont {
				val[j] = ex
			} else {
				val[j] = cont
			}
		}
	}
	return val[0], true
}

// RefScalar prices the batch with the scalar reference, recording the
// scalar op mix: 3 flops per inner iteration, ~3N(N+1)/2 flops per option
// (the paper's compute bound).
func RefScalar(a layout.AOS, steps int, mkt workload.MarketParams, c *perf.Counts) {
	n := a.Len()
	runParallel(n, c, func(lo, hi int, c *perf.Counts) {
		for i := lo; i < hi; i++ {
			price := PriceScalar(a.S(i), a.X(i), a.T(i), steps, mkt)
			a.SetResult(i, price, 0)
		}
		if c != nil {
			un := uint64(hi - lo)
			iters := uint64(steps) * uint64(steps+1) / 2
			c.Add(perf.OpScalar, un*iters*3)
			c.Add(perf.OpScalarLoad, un*iters*2)
			c.Add(perf.OpScalarStore, un*iters)
			c.Add(perf.OpExp, un*uint64(steps+1)) // leaf initialization
			c.Add(perf.OpScalar, un*uint64(steps+1)*3)
		}
	})
	finish(c, n)
}

// Basic prices the batch with the compiler-level optimization: the j loop
// of the reference code autovectorized. Call[j+1] becomes an unaligned
// vector load and each row end leaves a scalar remainder (Sec. IV-B1).
func Basic(a layout.AOS, steps int, mkt workload.MarketParams, width int, c *perf.Counts) {
	n := a.Len()
	runParallel(n, c, func(lo, hi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		call := make([]float64, steps+1+vec.MaxWidth)
		for o := lo; o < hi; o++ {
			p := NewParams(a.T(o), steps, mkt)
			for j := 0; j <= steps; j++ {
				call[j] = leaf(a.S(o), a.X(o), p, j)
			}
			if c != nil {
				c.Add(perf.OpExp, uint64(steps+1))
				c.Add(perf.OpScalar, uint64(steps+1)*3)
			}
			pu := ctx.Broadcast(p.PuByDf)
			pd := ctx.Broadcast(p.PdByDf)
			for i := steps; i > 0; i-- {
				j := 0
				for ; j+width <= i; j += width {
					lo1 := ctx.Load(call, j)    // aligned Call[j]
					hi1 := ctx.LoadU(call, j+1) // unaligned Call[j+1]
					res := ctx.FMA(pu, hi1, vecMulLocal(ctx, pd, lo1))
					ctx.Store(call, j, res)
				}
				// Scalar remainder: SIMD-efficiency loss at row end.
				for ; j <= i-1; j++ {
					call[j] = p.PuByDf*call[j+1] + p.PdByDf*call[j]
					if c != nil {
						c.Add(perf.OpScalar, 3)
						c.Add(perf.OpScalarLoad, 2)
						c.Add(perf.OpScalarStore, 1)
					}
				}
			}
			a.SetResult(o, call[0], 0)
		}
	})
	finish(c, n)
}

func vecMulLocal(ctx vec.Ctx, a, b vec.Vec) vec.Vec { return ctx.Mul(a, b) }

// Batch is the lane-blocked state for the SIMD-across-options variants:
// Call[j] holds the value at tree level j for `width` options at once.
type Batch struct {
	width  int
	params []Params  // per lane
	call   []vec.Vec // tree levels, one vector per level
	pu, pd vec.Vec
}

// newBatch builds the blocked state for options [base, base+width) of a.
func newBatch(ctx vec.Ctx, a layout.AOS, base, steps int, mkt workload.MarketParams, c *perf.Counts) *Batch {
	w := ctx.W
	b := &Batch{width: w, params: make([]Params, w), call: make([]vec.Vec, steps+1)}
	n := a.Len()
	for l := 0; l < w; l++ {
		idx := base + l
		if idx >= n {
			idx = n - 1 // pad with the last option
		}
		b.params[l] = NewParams(a.T(idx), steps, mkt)
		b.pu.X[l] = b.params[l].PuByDf
		b.pd.X[l] = b.params[l].PdByDf
	}
	for j := 0; j <= steps; j++ {
		var v vec.Vec
		for l := 0; l < w; l++ {
			idx := base + l
			if idx >= n {
				idx = n - 1
			}
			v.X[l] = leaf(a.S(idx), a.X(idx), b.params[l], j)
		}
		b.call[j] = v
	}
	if c != nil {
		c.Add(perf.OpExp, uint64(steps+1)*uint64(w))
		c.Add(perf.OpVecMul, uint64(steps+1))
		c.Add(perf.OpVecAdd, uint64(steps+1))
		c.Add(perf.OpVecMax, uint64(steps+1))
	}
	return b
}

// Intermediate prices the batch with SIMD across options (one option per
// lane, F64vec8-style outer-loop vectorization). Loads are aligned; the
// per-group working set grows by the vector width (Sec. III-B).
func Intermediate(a layout.AOS, steps int, mkt workload.MarketParams, width int, c *perf.Counts) {
	groups := (a.Len() + width - 1) / width
	runParallel(groups, c, func(glo, ghi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		for g := glo; g < ghi; g++ {
			b := newBatch(ctx, a, g*width, steps, mkt, c)
			for i := steps; i > 0; i-- {
				for j := 0; j <= i-1; j++ {
					// One vector load of Call[j+1], one of Call[j] — the
					// counting context charges them via explicit ops.
					hi1 := loadVec(ctx, b.call, j+1)
					lo1 := loadVec(ctx, b.call, j)
					res := ctx.FMA(b.pu, hi1, ctx.Mul(b.pd, lo1))
					storeVec(ctx, b.call, j, res)
				}
			}
			writeResults(a, g*width, b.call[0])
		}
	})
	finish(c, a.Len())
}

// loadVec/storeVec model the Call-array traffic of the blocked layout: in
// real code these are aligned vector loads/stores of one cache line.
func loadVec(ctx vec.Ctx, arr []vec.Vec, j int) vec.Vec {
	if ctx.C != nil {
		ctx.C.Add(perf.OpVecLoad, 1)
	}
	return arr[j]
}

func storeVec(ctx vec.Ctx, arr []vec.Vec, j int, v vec.Vec) {
	if ctx.C != nil {
		ctx.C.Add(perf.OpVecStore, 1)
	}
	arr[j] = v
}

func writeResults(a layout.AOS, base int, v vec.Vec) {
	n := a.Len()
	for l := 0; l < vec.MaxWidth; l++ {
		if base+l >= n {
			break
		}
		a.SetResult(base+l, v.X[l], 0)
	}
}

// DefaultTile is the register-tile depth TS of the advanced variant: TS+2
// live vector registers must fit in the architectural register file (16
// F64vec4 on SNB-EP, 32 F64vec8 on KNC), so 8 fits both with room for the
// probability registers.
const DefaultTile = 8

// Advanced prices the batch with the register-tiled reduction of Lis. 3.
// For TS time steps each Call value is read once and written once; the
// rest of the work happens in registers, raising arithmetic intensity
// (Sec. IV-B2). unrolled selects the variant with the wavefront register
// move eliminated (the paper's final optimization; 1.4x on KNC only).
// steps%tile must be 0 (the harness uses 1024/2048 with tile 8).
func Advanced(a layout.AOS, steps int, mkt workload.MarketParams, width, tile int, unrolled bool, c *perf.Counts) {
	if steps%tile != 0 {
		panic("binomial: steps must be a multiple of the tile size")
	}
	groups := (a.Len() + width - 1) / width
	runParallel(groups, c, func(glo, ghi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		tileBuf := make([]vec.Vec, tile)
		for g := glo; g < ghi; g++ {
			b := newBatch(ctx, a, g*width, steps, mkt, c)
			for m := steps; m >= tile; m -= tile {
				// Triangle: initialize the wavefront from Call[0..TS-1]
				// entirely in registers (lower-triangular part, Fig. 2b).
				for j := 0; j < tile; j++ {
					tileBuf[j] = loadVec(ctx, b.call, j)
				}
				for s := 1; s <= tile-1; s++ {
					for j := 0; j <= tile-1-s; j++ {
						tileBuf[j] = ctx.FMA(b.pu, tileBuf[j+1], ctx.Mul(b.pd, tileBuf[j]))
					}
				}
				// Steady state: the shaded trapezoid of Fig. 2b. Each i
				// reads Call[i] once, advances the wavefront TS steps, and
				// writes Call[i-TS] once.
				for i := tile; i <= m; i++ {
					m1 := loadVec(ctx, b.call, i)
					for j := tile - 1; j >= 0; j-- {
						m2 := ctx.FMA(b.pu, m1, ctx.Mul(b.pd, tileBuf[j]))
						if unrolled {
							// Unrolled code renames registers statically;
							// no move instruction is issued.
							tileBuf[j] = m1
						} else {
							tileBuf[j] = ctx.Move(m1)
						}
						m1 = m2
					}
					storeVec(ctx, b.call, i-tile, m1)
				}
			}
			writeResults(a, g*width, b.call[0])
		}
	})
	finish(c, a.Len())
}

// finish adds the per-option input/output DRAM traffic (the tree itself is
// cache-resident) and the item count.
func finish(c *perf.Counts, n int) {
	if c != nil {
		c.AddBytes(uint64(24*n), uint64(8*n))
		c.Items += uint64(n)
	}
}

// runParallel mirrors the pattern used by every kernel package: static
// parallel split with per-worker counters merged in worker order by the
// parallel substrate (lock-free on the worker path).
func runParallel(n int, c *perf.Counts, run func(lo, hi int, c *perf.Counts)) {
	if c == nil {
		parallel.For(n, func(lo, hi int) { run(lo, hi, nil) })
		return
	}
	parallel.ForIndexedMerged(n, c, func(_, lo, hi int, local *perf.Counts) {
		run(lo, hi, local)
	})
}

// TreeGreeks holds price and sensitivities extracted from a single tree
// evaluation: the nodes one and two steps into the tree form finite
// differences in the underlying at no extra cost, avoiding the three
// lattice evaluations that spot bumping needs.
type TreeGreeks struct {
	Price, Delta, Gamma float64
}

// GreeksScalar prices a European call and extracts delta and gamma from
// the depth-1 and depth-2 tree levels.
func GreeksScalar(s, x, t float64, steps int, mkt workload.MarketParams) TreeGreeks {
	p := NewParams(t, steps, mkt)
	call := make([]float64, steps+1)
	for j := 0; j <= steps; j++ {
		call[j] = leaf(s, x, p, j)
	}
	return reduceWithGreeks(call, s, p)
}

// GreeksAmericanPut is GreeksScalar for the American put.
func GreeksAmericanPut(s, x, t float64, steps int, mkt workload.MarketParams) TreeGreeks {
	p := NewParams(t, steps, mkt)
	val := make([]float64, steps+1)
	for j := 0; j <= steps; j++ {
		v := x - s*mathx.Exp(p.VDt*float64(2*j-steps))
		if v < 0 {
			v = 0
		}
		val[j] = v
	}
	n := steps
	var lvl2, lvl1 [3]float64
	for i := n; i > 0; i-- {
		for j := 0; j <= i-1; j++ {
			cont := p.PuByDf*val[j+1] + p.PdByDf*val[j]
			ex := x - s*mathx.Exp(p.VDt*float64(2*j-(i-1)))
			if ex > cont {
				val[j] = ex
			} else {
				val[j] = cont
			}
		}
		if i-1 == 2 {
			copy(lvl2[:], val[:3])
		}
		if i-1 == 1 {
			copy(lvl1[:2], val[:2])
		}
	}
	return assembleGreeks(val[0], lvl1, lvl2, s, p)
}

// reduceWithGreeks runs the Lis. 2 reduction, capturing levels 2 and 1.
func reduceWithGreeks(call []float64, s float64, p Params) TreeGreeks {
	n := len(call) - 1
	var lvl2, lvl1 [3]float64
	for i := n; i > 0; i-- {
		for j := 0; j <= i-1; j++ {
			call[j] = p.PuByDf*call[j+1] + p.PdByDf*call[j]
		}
		if i-1 == 2 {
			copy(lvl2[:], call[:3])
		}
		if i-1 == 1 {
			copy(lvl1[:2], call[:2])
		}
	}
	return assembleGreeks(call[0], lvl1, lvl2, s, p)
}

// assembleGreeks converts the captured levels into delta and gamma.
// At depth k, node j sits at underlying S e^{(2j-k) vDt}.
func assembleGreeks(price float64, lvl1, lvl2 [3]float64, s float64, p Params) TreeGreeks {
	u := mathx.Exp(p.VDt)
	d := 1 / u
	s1u, s1d := s*u, s*d
	delta := (lvl1[1] - lvl1[0]) / (s1u - s1d)
	s2u, s2m, s2d := s*u*u, s, s*d*d
	dUp := (lvl2[2] - lvl2[1]) / (s2u - s2m)
	dDn := (lvl2[1] - lvl2[0]) / (s2m - s2d)
	gamma := (dUp - dDn) / ((s2u - s2d) / 2)
	return TreeGreeks{Price: price, Delta: delta, Gamma: gamma}
}

// AdvancedTwoLevel applies the paper's second tiling level (Sec. IV-B2:
// "A second-level of tiling can be done similarly, save that Tile is now
// chosen to reside in cache rather in the register file"): the reduction
// advances cacheTile steps at a time through a cache-resident wavefront
// buffer, and each cache-tile pass is itself processed with regTile-deep
// register tiling. For trees too large for the L2 (N in the tens of
// thousands), the Call array crosses DRAM once per cacheTile steps instead
// of once per regTile. Arithmetic is identical to Advanced (bitwise).
// steps%cacheTile and cacheTile%regTile must be 0.
func AdvancedTwoLevel(a layout.AOS, steps int, mkt workload.MarketParams, width, cacheTile, regTile int, unrolled bool, c *perf.Counts) {
	if steps%cacheTile != 0 || cacheTile%regTile != 0 {
		panic("binomial: steps%cacheTile and cacheTile%regTile must be 0")
	}
	groups := (a.Len() + width - 1) / width
	runParallel(groups, c, func(glo, ghi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		cbuf := make([]vec.Vec, cacheTile) // cache-resident wavefront
		tileBuf := make([]vec.Vec, regTile)
		for g := glo; g < ghi; g++ {
			b := newBatch(ctx, a, g*width, steps, mkt, c)
			for m := steps; m >= cacheTile; m -= cacheTile {
				// Cache-level triangle: reduce Call[0..CT-1] into the
				// wavefront buffer using register tiles.
				for j := 0; j < cacheTile; j++ {
					cbuf[j] = loadVec(ctx, b.call, j)
				}
				triangleReduce(ctx, cbuf, b.pu, b.pd, tileBuf, unrolled, c)
				// Steady state: each Call[i] makes one pass through the
				// cache tile (itself register-tiled).
				for i := cacheTile; i <= m; i++ {
					m1 := loadVec(ctx, b.call, i)
					m1 = tilePass(ctx, cbuf, m1, b.pu, b.pd, tileBuf, regTile, unrolled, c)
					storeVec(ctx, b.call, i-cacheTile, m1)
				}
			}
			writeResults(a, g*width, b.call[0])
		}
	})
	finish(c, a.Len())
}

// triangleReduce performs the lower-triangular wavefront initialization of
// the cache buffer: after it, cbuf[j] = V_{CT-1-j}[j], matching the
// single-level triangle but staged through register tiles.
func triangleReduce(ctx vec.Ctx, cbuf []vec.Vec, pu, pd vec.Vec, tileBuf []vec.Vec, unrolled bool, c *perf.Counts) {
	ct := len(cbuf)
	for s := 1; s <= ct-1; s++ {
		for j := 0; j <= ct-1-s; j++ {
			cbuf[j] = ctx.FMA(pu, cbuf[j+1], ctx.Mul(pd, cbuf[j]))
		}
	}
	_ = tileBuf
	_ = unrolled
	_ = c
}

// tilePass advances the value m1 through the whole cache-tile wavefront,
// regTile steps at a time in registers: the register tile holds the
// wavefront slice being updated, so cbuf is read and written once per
// regTile steps rather than every step.
func tilePass(ctx vec.Ctx, cbuf []vec.Vec, m1 vec.Vec, pu, pd vec.Vec, tileBuf []vec.Vec, regTile int, unrolled bool, c *perf.Counts) vec.Vec {
	ct := len(cbuf)
	for base := ct; base > 0; base -= regTile {
		// Load the register tile from the cache buffer.
		for k := 0; k < regTile; k++ {
			tileBuf[k] = loadVec(ctx, cbuf, base-regTile+k)
		}
		for j := regTile - 1; j >= 0; j-- {
			m2 := ctx.FMA(pu, m1, ctx.Mul(pd, tileBuf[j]))
			if unrolled {
				tileBuf[j] = m1
			} else {
				tileBuf[j] = ctx.Move(m1)
			}
			m1 = m2
		}
		for k := 0; k < regTile; k++ {
			storeVec(ctx, cbuf, base-regTile+k, tileBuf[k])
		}
	}
	return m1
}
