package parallel

import (
	"context"
	"sync/atomic"

	"finbench/internal/perf"
)

// Cancellable regions. A pricing server cannot afford a request whose
// deadline has passed to keep burning pool workers: the ctx-aware loop
// variants below check the region's context at chunk granularity, so an
// expired request stops dispatching new chunks while chunks already
// running finish normally (the kernels add finer-grained checkpoints
// inside their own loops — per RNG refill, per time step, per level
// block). When ctx carries no cancellation signal (ctx.Done() == nil,
// e.g. context.Background()), every variant delegates to its plain
// counterpart and the hot path pays nothing.
//
// Decomposition semantics are identical to the plain variants — the same
// [lo,hi) chunks in the same slot order — so a region that runs to
// completion produces bit-identical results through either entry point.

// ForCtx is For with cancellation: each worker chunk checks ctx before
// running, and chunks not yet started when ctx is cancelled are skipped.
// Returns ctx.Err() if the region was cancelled (even when every chunk
// happened to complete first — callers must treat the output as partial),
// nil otherwise.
func ForCtx(ctx context.Context, n int, fn func(lo, hi int)) error {
	done := ctx.Done()
	if done == nil {
		For(n, fn)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	For(n, func(lo, hi int) {
		select {
		case <-done:
			return
		default:
		}
		fn(lo, hi)
	})
	return ctx.Err()
}

// ForDynamicCtx is ForDynamic with cancellation checked at every chunk
// handout: after ctx is cancelled no further grain-sized chunks are
// handed out, so the region stops within one grain per worker. Returns
// ctx.Err() if cancelled, nil otherwise.
func ForDynamicCtx(ctx context.Context, n, grain int, fn func(lo, hi int)) error {
	done := ctx.Done()
	if done == nil {
		ForDynamic(n, grain, fn)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if grain <= 0 {
		grain = autoGrain(n, Workers())
	}
	var stopped atomic.Bool
	// The wrapper re-subdivides whatever range it is handed: the parallel
	// path hands out grain-sized chunks already, but the serial fallback
	// (one worker) hands the whole range in one call, and cancellation must
	// still take effect at grain granularity there.
	ForDynamic(n, grain, func(lo, hi int) {
		for sub := lo; sub < hi; sub += grain {
			if stopped.Load() {
				return
			}
			select {
			case <-done:
				stopped.Store(true)
				return
			default:
			}
			shi := sub + grain
			if shi > hi {
				shi = hi
			}
			fn(sub, shi)
		}
	})
	return ctx.Err()
}

// ForIndexedMergedCtx is ForIndexedMerged with cancellation: worker
// chunks not yet started when ctx is cancelled are skipped (their
// perf.Counts partials stay zero and still merge in worker order).
// Returns ctx.Err() if cancelled, nil otherwise.
func ForIndexedMergedCtx(ctx context.Context, n int, c *perf.Counts, fn func(worker, lo, hi int, c *perf.Counts)) error {
	done := ctx.Done()
	if done == nil {
		ForIndexedMerged(n, c, fn)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ForIndexedMerged(n, c, func(worker, lo, hi int, local *perf.Counts) {
		select {
		case <-done:
			return
		default:
		}
		fn(worker, lo, hi, local)
	})
	return ctx.Err()
}
