package bench

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"

	"finbench/internal/serve"
)

// servepath: end-to-end latency and allocation budget of the serving
// tier, measured through the real handler stack (admission control,
// decode, kernel dispatch, encode) with the coalescer bypassed so one
// invocation is exactly one request. Unlike the kernel experiments,
// these rows gate allocs/op: a new per-request allocation on this path
// multiplies by the request rate, and the snapshot diff rejects it even
// when the wall-clock cost hides inside timing noise.

func init() {
	register(&Experiment{
		ID:          "servepath",
		Title:       "Serving-tier request path (in-process)",
		Units:       "options/s",
		Description: "Requests driven through serve.Server's handler in-process: closed-form /price batches and /greeks. Rows gate allocs/op in benchreg snapshots.",
		Measure:     measureServePath,
	})
}

// discardRecorder is a reusable http.ResponseWriter that drops the body:
// response bytes are the server's allocations to count, not the
// harness's to retain.
type discardRecorder struct {
	header http.Header
	code   int
}

func (r *discardRecorder) Header() http.Header         { return r.header }
func (r *discardRecorder) Write(p []byte) (int, error) { return len(p), nil }
func (r *discardRecorder) WriteHeader(c int)           { r.code = c }

func (r *discardRecorder) reset() {
	r.code = 0
	for k := range r.header {
		delete(r.header, k)
	}
}

// servePathBody builds a deterministic n-option request body for path.
func servePathBody(path string, n int) []byte {
	var b bytes.Buffer
	b.WriteString(`{"options":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		// Spot/strike/expiry vary with the index so the batch is not one
		// repeated contract, but stay fixed run to run (no RNG).
		fmt.Fprintf(&b, `{"spot":%g,"strike":%g,"expiry":%g}`,
			90.0+float64(i%21), 80.0+float64(i%41), 0.25+float64(i%8)*0.25)
	}
	b.WriteString(`]`)
	if path == "/price" {
		b.WriteString(`,"method":"closed-form"`)
	}
	b.WriteString(`}`)
	return b.Bytes()
}

func measureServePath(scale float64) (*Result, error) {
	// CoalesceMaxBatch 1 makes every request bypass the coalescer (no
	// window timer on the measured path); ProfileEvery < 0 keeps the op
	// mix sampler's instrumented reruns out of the timings.
	s := serve.New(serve.Config{CoalesceMaxBatch: 1, ProfileEvery: -1})
	defer s.Close()
	h := s.Handler()

	batch := scaleInt(4096, scale, 16)
	r := &Result{
		ID:    "servepath",
		Title: fmt.Sprintf("Serving-tier request path (%d options/request, in-process)", batch),
		Units: "options/s",
	}
	for _, ep := range []struct {
		label, path string
	}{
		{"/price closed-form batch", "/price"},
		{"/greeks closed-form batch", "/greeks"},
	} {
		body := servePathBody(ep.path, batch)
		rec := &discardRecorder{header: make(http.Header)}
		call := func() {
			rec.reset()
			req := httptest.NewRequest(http.MethodPost, ep.path, bytes.NewReader(body))
			h.ServeHTTP(rec, req)
		}
		// One untimed probe: a non-200 would otherwise time the error
		// path and gate on its (much smaller) allocation count.
		call()
		if rec.code != http.StatusOK {
			return nil, fmt.Errorf("bench: servepath %s returned status %d", ep.path, rec.code)
		}
		row := hostRow(ep.label, batch, call)
		row.GateAllocs = true
		row.Prov = None
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"one invocation = one request through the full handler stack (admission, decode, kernel, encode); coalescer bypassed",
		"allocs/op rows are gated in benchreg snapshots: a new per-request allocation fails the check even inside timing noise")
	return r, nil
}
