package blackscholes

import (
	"math"
	"testing"

	"finbench/internal/workload"
)

// SP prices must track DP within single-precision formula error (~1e-5
// relative for non-degenerate options) — the accuracy half of the
// SP-vs-DP throughput trade.
func TestSPAccuracy(t *testing.T) {
	g := workload.DefaultOptionGen
	g.TMax = 3
	soa := g.GenerateSOA(2000)
	sp := FromSOA(&SOAView{S: soa.S, X: soa.X, T: soa.T})
	PriceBatch32(sp, mkt)
	Intermediate(soa, mkt, 8, nil)
	for i := 0; i < soa.Len(); i++ {
		dp := soa.Call[i]
		got := float64(sp.Call[i])
		if math.Abs(got-dp) > 1e-4*math.Max(1, dp) {
			t.Fatalf("option %d: SP call %g vs DP %g", i, got, dp)
		}
		dpPut := soa.Put[i]
		if math.Abs(float64(sp.Put[i])-dpPut) > 1e-4*math.Max(1, dpPut) {
			t.Fatalf("option %d: SP put %g vs DP %g", i, sp.Put[i], dpPut)
		}
	}
}

func TestSPKnownValue(t *testing.T) {
	call, put := PriceScalar32(100, 100, 1, mkt)
	if math.Abs(float64(call)-10.450583572185565) > 1e-4 {
		t.Fatalf("SP call = %g", call)
	}
	if math.Abs(float64(put)-5.573526022256971) > 1e-4 {
		t.Fatalf("SP put = %g", put)
	}
}

func TestSPParity(t *testing.T) {
	call, put := PriceScalar32(110, 95, 0.5, mkt)
	want := float32(110) - 95*exp32(-float32(mkt.R)*0.5)
	if diff := (call - put) - want; diff > 2e-4 || diff < -2e-4 {
		t.Fatalf("SP parity off by %g", diff)
	}
}

func TestSPBandwidthBoundHalved(t *testing.T) {
	if SPBytesPerOption*2 != 40 {
		t.Fatal("SP option footprint must be half of DP's 40 bytes")
	}
}

func BenchmarkPriceBatch32(b *testing.B) {
	g := workload.DefaultOptionGen
	soa := g.GenerateSOA(100000)
	sp := FromSOA(&SOAView{S: soa.S, X: soa.X, T: soa.T})
	b.SetBytes(100000 * SPBytesPerOption)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PriceBatch32(sp, mkt)
	}
}
