// Package stream is the serving tier's streaming Greeks feed: a
// seed-deterministic market source (ticker) drives tick-driven
// incremental repricing of a contract universe, and subscribers receive
// Greeks deltas over bounded per-subscriber buffers.
//
// The robustness design, in one place:
//
//   - Skip-to-latest: the ticker deposits into a one-slot mailbox, never
//     a queue. When the tick rate outruns a repricing pass, intermediate
//     ticks are overwritten (counted as dropped) and the next pass prices
//     against the latest market — staleness stays bounded at roughly one
//     pass instead of growing with queue depth.
//   - Dirty-set tracking: a contract is repriced only when its inputs
//     moved beyond the configured thresholds since its last repricing
//     (relative for spot, absolute for vol/rate; moves exactly at the
//     threshold count). Skipped ticks' moves accumulate against the same
//     baseline, so coalescing ticks never loses a move.
//   - Per-tick deadline budgets: each pass runs under a pooled deadline
//     context sized to the tick budget. The dirty set is sorted worst
//     movers first, so when the budget blows mid-pass the most stale
//     prices were already refreshed; the rest stay dirty for the next
//     pass, and the pass's events carry degraded=true. An adaptive cap
//     (shrink on blow, re-grow on fast completion — the admission
//     hysteresis pattern) keeps later passes inside the budget instead
//     of blowing it every tick.
//   - Slow-client backpressure: fan-out sends are non-blocking into each
//     subscriber's bounded buffer. Overflow drops the delta and flags the
//     subscriber for a full-state resync (event: snapshot), so a slow
//     reader loses granularity, never correctness — and never wedges the
//     repricing loop.
//
// Repricing composes only bit-reproducible pieces: prices come from one
// coalesced SOA mega-batch through finbench.PriceBatchCtx at
// LevelAdvanced (composition-independent — the standing invariant), and
// greeks from the scalar finbench.ComputeGreeks, exactly the /greeks
// endpoint's values. Every pushed float is therefore bit-identical to a
// cold one-contract recomputation at the event's echoed inputs.
package stream

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"finbench"
	"finbench/internal/serve/deadline"
	"finbench/internal/serve/stream/ticker"
)

// RepriceFunc prices one closed-form SOA batch against a flat market.
// The hub calls it from its repricing-loop goroutine, concurrently with
// whatever goroutine constructed the hub — the closure must not capture
// a shared RNG stream or other single-owner state. nil selects the
// default, finbench.PriceBatchCtx at LevelAdvanced (the only engine
// whose results are composition-independent, hence the only one a
// coalesced mega-batch may use).
type RepriceFunc func(ctx context.Context, b *finbench.Batch, m finbench.Market) error

// Config tunes a Hub; zero values select the defaults.
type Config struct {
	// Universe is the contract count (default 1024); Underlyings the
	// simulated spot paths they map onto round-robin (default 64). Seed
	// makes ticker walk and universe deterministic (default 1).
	Universe    int
	Underlyings int
	Seed        uint64

	// Market anchors the vol/rate walk (default rate 0.02, vol 0.3).
	Market finbench.Market

	// Interval is the tick period (default 20ms). Budget bounds one
	// repricing pass (default: the interval — a pass that cannot keep up
	// with the tick rate degrades instead of falling behind).
	Interval time.Duration
	Budget   time.Duration

	// SpotThreshold is the relative spot move that dirties a contract
	// (default 0.002); VolThreshold and RateThreshold are absolute moves
	// (defaults 0.005 and 0.0005). A move exactly at the threshold counts.
	// A non-positive threshold dirties every contract every tick (used by
	// the full-reprice benchmark rows).
	SpotThreshold float64
	VolThreshold  float64
	RateThreshold float64

	// SubscriberBuffer is each subscriber's event-buffer capacity
	// (default 8); overflow forces a snapshot resync. MaxSubscribers
	// bounds concurrent subscriptions (default 1024).
	SubscriberBuffer int
	MaxSubscribers   int

	// MinReprice floors the adaptive worst-movers cap (default 64).
	MinReprice int
}

func (c Config) withDefaults() Config {
	if c.Universe <= 0 {
		c.Universe = 1024
	}
	if c.Underlyings <= 0 {
		c.Underlyings = 64
	}
	if c.Underlyings > c.Universe {
		c.Underlyings = c.Universe
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	// finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
	if c.Market.Volatility == 0 {
		c.Market = finbench.Market{Rate: 0.02, Volatility: 0.3}
	}
	if c.Interval <= 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.Budget <= 0 {
		c.Budget = c.Interval
	}
	// finlint:ignore floateq zero is the untouched-field sentinel; negative means always-dirty
	if c.SpotThreshold == 0 {
		c.SpotThreshold = 0.002
	}
	// finlint:ignore floateq zero is the untouched-field sentinel; negative means always-dirty
	if c.VolThreshold == 0 {
		c.VolThreshold = 0.005
	}
	// finlint:ignore floateq zero is the untouched-field sentinel; negative means always-dirty
	if c.RateThreshold == 0 {
		c.RateThreshold = 0.0005
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 8
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 1024
	}
	if c.MinReprice <= 0 {
		c.MinReprice = 64
	}
	return c
}

// Subscription errors.
var (
	ErrDraining       = errors.New("stream: hub is draining")
	ErrTooManySubs    = errors.New("stream: subscriber limit reached")
	ErrBadContract    = errors.New("stream: contract id outside universe")
	errAlreadyStarted = errors.New("stream: hub already started")
)

// contractState is a contract's last-repriced inputs and outputs. The
// inputs double as the dirty baseline; priced=false (never repriced)
// is unconditionally dirty.
type contractState struct {
	spot, vol, rate                   float64
	price, delta, gamma, vega, theta, rho float64
	priced                            bool
}

// mover is one dirty contract and its scaled move magnitude.
type mover struct {
	idx int32
	mag float64
}

// moverSort orders worst movers first (magnitude descending, index
// ascending for determinism). A persistent pointer receiver keeps
// sort.Sort allocation-free on the per-tick path.
type moverSort struct{ s []mover }

func (m *moverSort) Len() int      { return len(m.s) }
func (m *moverSort) Swap(i, j int) { m.s[i], m.s[j] = m.s[j], m.s[i] }
func (m *moverSort) Less(i, j int) bool {
	if m.s[i].mag != m.s[j].mag { // finlint:ignore floateq ordering only; equal magnitudes fall through to the index tie-break
		return m.s[i].mag > m.s[j].mag
	}
	return m.s[i].idx < m.s[j].idx
}

// mailbox is the one-slot latest-tick handoff between the ticker
// goroutine and the repricing loop. put overwrites (skip-to-latest);
// take empties. Never a queue: depth is the staleness bound.
type mailbox struct {
	mu     sync.Mutex
	st     ticker.State
	full   bool
	notify chan struct{}
}

func (m *mailbox) put(src *ticker.State) (dropped bool) {
	m.mu.Lock()
	dropped = m.full
	m.st.CopyFrom(src)
	m.full = true
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
	return dropped
}

func (m *mailbox) take(dst *ticker.State) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.full {
		return false
	}
	dst.CopyFrom(&m.st)
	m.full = false
	return true
}

// Sub is one subscriber. The serving layer reads frames from C and
// watches Gone for the hub-initiated close (drain). needResync and
// sentInitial are owned by the fan-out loop under the hub mutex.
type Sub struct {
	ids    []int32
	member []bool
	ch     chan []byte
	gone   chan struct{}

	needResync  bool
	sentInitial bool
}

// C delivers encoded SSE frames. The channel is never closed; select on
// Gone for termination.
func (s *Sub) C() <-chan []byte { return s.ch }

// Gone closes when the hub shuts down; the reader should send goodbye
// and disconnect.
func (s *Sub) Gone() <-chan struct{} { return s.gone }

// Subscribed returns the subscription's contract count.
func (s *Sub) Subscribed() int { return len(s.ids) }

// Hub owns the universe, the repricing loop and the subscriber fan-out.
// Build with New; Start launches the ticker and loop goroutines (a hub
// that is never started is a manual hub, driven by Step — tests and
// benchmarks). Shutdown begins the drain; Close waits it out.
type Hub struct {
	cfg       Config
	contracts []Contract
	reprice   RepriceFunc

	// Loop-owned pass state (the repricing goroutine, or the Step caller
	// of a manual hub — never both).
	src       *ticker.Source
	tickState ticker.State
	cur       []contractState
	movers    []mover
	sorter    *moverSort
	batch     *finbench.Batch
	chunk     finbench.Batch
	repriced  []int32
	entryBuf  []Entry

	mail mailbox

	mu       sync.Mutex
	subs     map[*Sub]struct{}
	draining bool

	stop    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	stopped sync.Once

	ticks          atomic.Uint64
	droppedTicks   atomic.Uint64
	passes         atomic.Uint64
	degradedPasses atomic.Uint64
	repricedTotal  atomic.Uint64
	eventsSent     atomic.Uint64
	eventsDropped  atomic.Uint64
	resyncs        atomic.Uint64
	repriceCap     atomic.Int64 // 0 = uncapped
}

// New builds a hub. The reprice closure (nil = the LevelAdvanced batch
// engine) runs on the repricing-loop goroutine, concurrently with the
// caller.
func New(cfg Config, reprice RepriceFunc) *Hub {
	cfg = cfg.withDefaults()
	if reprice == nil {
		reprice = func(ctx context.Context, b *finbench.Batch, m finbench.Market) error {
			return finbench.PriceBatchCtx(ctx, b, m, finbench.LevelAdvanced)
		}
	}
	h := &Hub{
		cfg:       cfg,
		contracts: UniverseContracts(cfg.Seed, cfg.Universe, cfg.Underlyings),
		reprice:   reprice,
		src:       ticker.NewSource(cfg.Seed, cfg.Underlyings, cfg.Market.Volatility, cfg.Market.Rate),
		cur:       make([]contractState, cfg.Universe),
		movers:    make([]mover, 0, cfg.Universe),
		sorter:    &moverSort{},
		batch:     finbench.NewBatch(cfg.Universe),
		repriced:  make([]int32, 0, cfg.Universe),
		subs:      make(map[*Sub]struct{}),
		stop:      make(chan struct{}),
	}
	h.mail.notify = make(chan struct{}, 1)
	return h
}

// Universe returns the contract-universe size.
func (h *Hub) Universe() int { return len(h.contracts) }

// Interval returns the tick period.
func (h *Hub) Interval() time.Duration { return h.cfg.Interval }

// HelloFor builds the hello payload for a subscription.
func (h *Hub) HelloFor(sub *Sub) Hello {
	return Hello{
		Universe:    h.cfg.Universe,
		Underlyings: h.cfg.Underlyings,
		Seed:        h.cfg.Seed,
		IntervalMS:  h.cfg.Interval.Milliseconds(),
		SpotThresh:  h.cfg.SpotThreshold,
		Subscribed:  sub.Subscribed(),
	}
}

// Start launches the ticker and repricing-loop goroutines. A started hub
// must not be driven with Step.
func (h *Hub) Start() {
	if h.started.Swap(true) {
		panic(errAlreadyStarted)
	}
	h.wg.Add(2)
	go func() {
		defer h.wg.Done()
		ticker.Run(h.src, h.cfg.Interval, h.stop, h.deposit)
	}()
	go h.loop()
}

// deposit is the ticker's per-tick sink: skip-to-latest, never a queue.
func (h *Hub) deposit(st *ticker.State) {
	h.ticks.Add(1)
	if h.mail.put(st) {
		h.droppedTicks.Add(1)
	}
}

func (h *Hub) loop() {
	defer h.wg.Done()
	for {
		select {
		case <-h.stop:
			return
		case <-h.mail.notify:
			if h.mail.take(&h.tickState) {
				h.step(&h.tickState)
			}
		}
	}
}

// Shutdown begins the drain: ticking stops, new subscriptions are
// refused, and every subscriber's Gone channel closes so its reader can
// send goodbye and disconnect. Idempotent; does not wait.
func (h *Hub) Shutdown() {
	h.stopped.Do(func() { close(h.stop) })
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return
	}
	h.draining = true
	for sub := range h.subs {
		close(sub.gone)
	}
}

// Close shuts the hub down and waits for its goroutines.
func (h *Hub) Close() {
	h.Shutdown()
	h.wg.Wait()
}

// Subscribe registers a subscriber over the given contract ids (nil =
// the whole universe). The ids must be in-universe; ParseSubscription
// output qualifies. The first event pushed is always a full snapshot.
func (h *Hub) Subscribe(ids []int) (*Sub, error) {
	n := len(h.contracts)
	if ids == nil {
		ids = make([]int, n)
		for i := range ids {
			ids[i] = i
		}
	}
	sub := &Sub{
		ids:        make([]int32, len(ids)),
		member:     make([]bool, n),
		ch:         make(chan []byte, h.cfg.SubscriberBuffer),
		gone:       make(chan struct{}),
		needResync: true,
	}
	for i, id := range ids {
		if id < 0 || id >= n {
			return nil, ErrBadContract
		}
		sub.ids[i] = int32(id)
		sub.member[id] = true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return nil, ErrDraining
	}
	if len(h.subs) >= h.cfg.MaxSubscribers {
		return nil, ErrTooManySubs
	}
	h.subs[sub] = struct{}{}
	return sub, nil
}

// Unsubscribe removes a subscriber; idempotent. The fan-out loop never
// closes subscriber channels, so a disconnected reader simply stops
// draining and the Sub is garbage once removed here.
func (h *Hub) Unsubscribe(sub *Sub) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
}

// Step runs one repricing pass against st synchronously: the manual-hub
// driver for tests and benchmarks. Never call it on a started hub — the
// repricing loop owns the pass state there.
func (h *Hub) Step(st *ticker.State) {
	h.step(st)
}

// Source exposes the hub's deterministic market source for manual
// driving (tests and benchmarks advance it and feed Step).
func (h *Hub) Source() *ticker.Source { return h.src }

// passChunk is the repricing granularity: deadline checks and commits
// happen between chunks, so a blown budget costs at most one chunk of
// overrun and everything committed so far stays delivered.
const passChunk = 1024

// scaled maps an input move onto threshold units; >= 1 is dirty. A
// non-positive threshold makes any contract unconditionally dirty.
func scaled(delta, threshold float64) float64 {
	if threshold <= 0 {
		return math.Inf(1)
	}
	return math.Abs(delta) / threshold
}

// step is one repricing pass: dirty scan, worst-movers-first budgeted
// mega-batch repricing, commit, fan-out.
func (h *Hub) step(st *ticker.State) {
	start := time.Now()
	h.passes.Add(1)

	// Dirty scan against each contract's last-repriced baseline.
	mv := h.movers[:0]
	for i := range h.contracts {
		c := &h.contracts[i]
		cs := &h.cur[i]
		var mag float64
		if !cs.priced {
			mag = math.Inf(1)
		} else {
			mag = scaled(st.Spots[c.Underlying]/cs.spot-1, h.cfg.SpotThreshold)
			if m := scaled(st.Vol-cs.vol, h.cfg.VolThreshold); m > mag {
				mag = m
			}
			if m := scaled(st.Rate-cs.rate, h.cfg.RateThreshold); m > mag {
				mag = m
			}
		}
		if mag >= 1 {
			mv = append(mv, mover{idx: int32(i), mag: mag})
		}
	}
	h.movers = mv[:0] // keep the (possibly regrown) backing array

	// Worst movers first; cap to the adaptive limit when one applies.
	h.sorter.s = mv
	sort.Sort(h.sorter)
	capN := int(h.repriceCap.Load())
	planned := len(mv)
	capApplied := capN > 0 && planned > capN
	if capApplied {
		planned = capN
	}

	// Gather the planned set into the SOA mega-batch.
	mkt := finbench.Market{Rate: st.Rate, Volatility: st.Vol}
	for k := 0; k < planned; k++ {
		c := &h.contracts[mv[k].idx]
		h.batch.Spots[k] = st.Spots[c.Underlying]
		h.batch.Strikes[k] = c.Strike
		h.batch.Expiries[k] = c.Expiry
	}

	// Reprice in chunks under the pass budget, committing as we go.
	h.repriced = h.repriced[:0]
	dctx := deadline.Acquire(context.Background(), start.Add(h.cfg.Budget))
	completed := 0
	for lo := 0; lo < planned; lo += passChunk {
		if lo > 0 && dctx.Expired() {
			break
		}
		hi := lo + passChunk
		if hi > planned {
			hi = planned
		}
		h.chunk.Spots = h.batch.Spots[lo:hi]
		h.chunk.Strikes = h.batch.Strikes[lo:hi]
		h.chunk.Expiries = h.batch.Expiries[lo:hi]
		h.chunk.Calls = h.batch.Calls[lo:hi]
		h.chunk.Puts = h.batch.Puts[lo:hi]
		if err := h.reprice(dctx, &h.chunk, mkt); err != nil {
			break
		}
		h.commit(mv[lo:hi], h.batch.Calls[lo:hi], h.batch.Puts[lo:hi], h.batch.Spots[lo:hi], mkt)
		completed = hi
	}
	dctx.Release()
	h.repricedTotal.Add(uint64(len(h.repriced)))

	// Adapt the cap: shrink on a blown budget, re-grow (toward uncapped)
	// when a capped pass completes in under half the budget — the same
	// high/low-watermark hysteresis the admission degrader uses.
	budgetBlown := completed < planned
	if budgetBlown {
		newCap := completed - completed/4
		if newCap < h.cfg.MinReprice {
			newCap = h.cfg.MinReprice
		}
		h.repriceCap.Store(int64(newCap))
	} else if capN > 0 && time.Since(start) < h.cfg.Budget/2 {
		newCap := capN * 2
		if newCap >= len(h.contracts) {
			newCap = 0
		}
		h.repriceCap.Store(int64(newCap))
	}
	degraded := budgetBlown || capApplied
	if degraded {
		h.degradedPasses.Add(1)
	}

	h.fanOut(st.Seq, st.TimeNS, degraded)
}

// commit records a repriced chunk: prices from the mega-batch, greeks
// from the scalar kernel (the /greeks endpoint's exact values), inputs
// as the new dirty baseline.
func (h *Hub) commit(mv []mover, calls, puts, spots []float64, mkt finbench.Market) {
	for k := range mv {
		idx := mv[k].idx
		c := &h.contracts[idx]
		opt := finbench.Option{Type: finbench.Call, Style: finbench.European,
			Spot: spots[k], Strike: c.Strike, Expiry: c.Expiry}
		if c.Put {
			opt.Type = finbench.Put
		}
		g, err := finbench.ComputeGreeks(opt, mkt)
		if err != nil {
			// Unreachable with a valid universe (all inputs positive);
			// leave the contract dirty rather than publish half a state.
			continue
		}
		cs := &h.cur[idx]
		cs.spot = spots[k]
		cs.vol = mkt.Volatility
		cs.rate = mkt.Rate
		cs.gamma = g.Gamma
		cs.vega = g.Vega
		if c.Put {
			cs.price = puts[k]
			cs.delta = g.DeltaPut
			cs.theta = g.ThetaPut
			cs.rho = g.RhoPut
		} else {
			cs.price = calls[k]
			cs.delta = g.DeltaCall
			cs.theta = g.ThetaCall
			cs.rho = g.RhoCall
		}
		cs.priced = true
		h.repriced = append(h.repriced, idx)
	}
}

// entry builds a contract's wire entry from its committed state.
func (h *Hub) entry(idx int32) Entry {
	c := &h.contracts[idx]
	cs := &h.cur[idx]
	e := Entry{
		ID: int(idx), Type: "call",
		Strike: c.Strike, Expiry: c.Expiry,
		Spot: cs.spot, Vol: cs.vol, Rate: cs.rate,
		Price: cs.price, Delta: cs.delta, Gamma: cs.gamma,
		Vega: cs.vega, Theta: cs.theta, Rho: cs.rho,
	}
	if c.Put {
		e.Type = "put"
	}
	return e
}

// fanOut pushes this pass's events to every subscriber: a full snapshot
// to anyone flagged for resync (new subscriber, or buffer overflow), a
// greeks delta of the freshly repriced intersection to everyone else.
// Sends never block — a full buffer drops the delta and flags a resync.
func (h *Hub) fanOut(seq uint64, tickNS int64, degraded bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		if sub.needResync {
			// finlint:ignore detmap each subscriber's snapshot is built from its own sorted ids; map order never reaches the bytes
			h.sendSnapshot(sub, seq, tickNS, degraded)
			continue
		}
		h.entryBuf = h.entryBuf[:0]
		for _, idx := range h.repriced {
			if sub.member[idx] {
				h.entryBuf = append(h.entryBuf, h.entry(idx))
			}
		}
		if len(h.entryBuf) == 0 {
			continue
		}
		ev := Event{Seq: seq, TickNS: tickNS, Degraded: degraded, Contracts: h.entryBuf}
		// finlint:ignore detmap the delta is rebuilt per subscriber from the deterministic repriced order; map order never reaches the bytes
		frame := MarshalFrame(EventGreeks, &ev)
		select {
		case sub.ch <- frame:
			h.eventsSent.Add(1)
		default:
			// Slow client: drop the delta, resync with full state once
			// the buffer drains. The loop never waits.
			sub.needResync = true
			h.eventsDropped.Add(1)
		}
	}
}

// sendSnapshot tries to push a full-state snapshot; on overflow the
// resync flag stays set and the next pass retries.
func (h *Hub) sendSnapshot(sub *Sub, seq uint64, tickNS int64, degraded bool) {
	h.entryBuf = h.entryBuf[:0]
	for _, idx := range sub.ids {
		if h.cur[idx].priced {
			h.entryBuf = append(h.entryBuf, h.entry(idx))
		}
	}
	if len(h.entryBuf) == 0 {
		return // nothing priced yet; the first pass is moments away
	}
	ev := Event{Seq: seq, TickNS: tickNS, Degraded: degraded,
		Resync: sub.sentInitial, Contracts: h.entryBuf}
	frame := MarshalFrame(EventSnapshot, &ev)
	select {
	case sub.ch <- frame:
		if sub.sentInitial {
			h.resyncs.Add(1)
		}
		sub.needResync = false
		sub.sentInitial = true
		h.eventsSent.Add(1)
	default:
		h.eventsDropped.Add(1)
	}
}

// Stats is the hub's /statsz block (a fixed struct so snapshot encoding
// stays deterministic). SlowDisconnects is filled by the serving layer,
// which owns the write deadlines.
type Stats struct {
	Universe        int    `json:"universe"`
	Underlyings     int    `json:"underlyings"`
	IntervalMS      int64  `json:"interval_ms"`
	Subscribers     int    `json:"subscribers"`
	Ticks           uint64 `json:"ticks"`
	DroppedTicks    uint64 `json:"dropped_ticks"`
	Passes          uint64 `json:"passes"`
	DegradedPasses  uint64 `json:"degraded_passes"`
	Repriced        uint64 `json:"repriced_contracts"`
	EventsSent      uint64 `json:"events_sent"`
	EventsDropped   uint64 `json:"events_dropped"`
	Resyncs         uint64 `json:"resyncs"`
	RepriceCap      int64  `json:"reprice_cap"`
	SlowDisconnects uint64 `json:"slow_disconnects"`
}

// Snapshot assembles the current counters.
func (h *Hub) Snapshot() Stats {
	h.mu.Lock()
	subs := len(h.subs)
	h.mu.Unlock()
	return Stats{
		Universe:       len(h.contracts),
		Underlyings:    h.cfg.Underlyings,
		IntervalMS:     h.cfg.Interval.Milliseconds(),
		Subscribers:    subs,
		Ticks:          h.ticks.Load(),
		DroppedTicks:   h.droppedTicks.Load(),
		Passes:         h.passes.Load(),
		DegradedPasses: h.degradedPasses.Load(),
		Repriced:       h.repricedTotal.Load(),
		EventsSent:     h.eventsSent.Load(),
		EventsDropped:  h.eventsDropped.Load(),
		Resyncs:        h.resyncs.Load(),
		RepriceCap:     h.repriceCap.Load(),
	}
}
