package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"finbench/internal/serve/stream"
)

func streamConfig(universe int, interval time.Duration) Config {
	return Config{Stream: &stream.Config{
		Universe:    universe,
		Underlyings: 8,
		Interval:    interval,
	}}
}

func TestStreamDisabled404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /stream without a hub = %d, want 404", resp.StatusCode)
	}
}

func TestStreamBadSubscription400(t *testing.T) {
	_, ts := newTestServer(t, streamConfig(64, time.Millisecond))
	for _, q := range []string{"?contracts=0-999", "?ids=junk"} {
		resp, err := http.Get(ts.URL + "/stream" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /stream%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestStreamHelloThenSnapshotThenGreeks(t *testing.T) {
	s, ts := newTestServer(t, streamConfig(64, time.Millisecond))
	resp, err := http.Get(ts.URL + "/stream?contracts=0-15")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /stream = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	fr := stream.NewFrameReader(resp.Body)
	f, err := fr.Next()
	if err != nil || f.Event != stream.EventHello {
		t.Fatalf("first frame = %+v, %v — want hello", f, err)
	}
	var hello stream.Hello
	if err := json.Unmarshal(f.Data, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Universe != 64 || hello.Subscribed != 16 {
		t.Errorf("hello = %+v, want universe 64 subscribed 16", hello)
	}
	f, err = fr.Next()
	if err != nil || f.Event != stream.EventSnapshot {
		t.Fatalf("second frame = %+v, %v — want the initial snapshot", f, err)
	}
	var ev stream.Event
	if err := json.Unmarshal(f.Data, &ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Contracts) != 16 {
		t.Errorf("initial snapshot carries %d contracts, want 16", len(ev.Contracts))
	}
	// A greeks delta arrives once the walk moves something past a
	// threshold; bounded wait, not a fixed count, to stay robust.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if f, err = fr.Next(); err != nil {
			t.Fatalf("waiting for greeks: %v", err)
		}
		if f.Event == stream.EventGreeks {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no greeks event within 5s")
		}
	}
	snap := s.statszSnapshot()
	if snap.Stream == nil || snap.Stream.Subscribers != 1 {
		t.Errorf("statsz stream block = %+v, want 1 subscriber", snap.Stream)
	}
}

// TestDrainFinishesOpenStream is the SIGTERM regression: draining with
// an open SSE stream must push a goodbye frame, end the stream, and let
// Drain complete inside its window — an idle subscriber must not hold
// shutdown hostage.
func TestDrainFinishesOpenStream(t *testing.T) {
	s, ts := newTestServer(t, streamConfig(64, time.Millisecond))
	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fr := stream.NewFrameReader(resp.Body)
	if f, err := fr.Next(); err != nil || f.Event != stream.EventHello {
		t.Fatalf("first frame = %+v, %v", f, err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	sawGoodbye := false
	for {
		f, err := fr.Next()
		if err != nil {
			break // stream closed after (or instead of) goodbye
		}
		if f.Event == stream.EventGoodbye {
			var bye stream.Goodbye
			if err := json.Unmarshal(f.Data, &bye); err != nil {
				t.Fatal(err)
			}
			if bye.Reason != "draining" {
				t.Errorf("goodbye reason = %q, want draining", bye.Reason)
			}
			sawGoodbye = true
		}
	}
	if !sawGoodbye {
		t.Error("stream ended without a goodbye frame")
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain with an open stream: %v", err)
		}
	case <-time.After(6 * time.Second):
		t.Fatal("Drain never completed with an open stream")
	}
}

// TestStreamSlowClientDisconnected: a subscriber stalled past the write
// deadline is disconnected — and a healthy subscriber on the same hub
// keeps receiving the whole time. The stalled client shrinks its
// receive buffer and stops reading so the server's blocked write is
// forced quickly; the hub's all-dirty mode makes frames large enough
// to fill what buffering remains.
func TestStreamSlowClientDisconnected(t *testing.T) {
	cfg := Config{
		Stream: &stream.Config{
			Universe:         2048,
			Underlyings:      16,
			Interval:         2 * time.Millisecond,
			Budget:           time.Second,
			SpotThreshold:    -1, // every tick rewrites the universe: ~0.5MB frames
			SubscriberBuffer: 2,
		},
		StreamWriteTimeout: 200 * time.Millisecond,
	}
	s, ts := newTestServer(t, cfg)

	// The healthy subscriber, read continuously.
	healthy, err := http.Get(ts.URL + "/stream?contracts=0-7")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Body.Close()
	healthyEvents := make(chan string, 1024)
	go func() {
		fr := stream.NewFrameReader(healthy.Body)
		for {
			f, err := fr.Next()
			if err != nil {
				close(healthyEvents)
				return
			}
			select {
			case healthyEvents <- f.Event:
			default:
			}
		}
	}()

	// The stalled subscriber: a raw conn with a tiny receive buffer that
	// sends the request and then never reads.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.SetReadBuffer(4 << 10); err != nil {
			t.Logf("SetReadBuffer: %v (continuing)", err)
		}
	}
	fmt.Fprintf(conn, "GET /stream HTTP/1.1\r\nHost: test\r\n\r\n")

	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.stats.streamSlowDisconnects.Load() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled subscriber never disconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The healthy subscriber must still be alive and receiving.
	select {
	case ev, ok := <-healthyEvents:
		if !ok {
			t.Fatal("healthy subscriber's stream died alongside the stalled one")
		}
		_ = ev
	case <-time.After(2 * time.Second):
		t.Fatal("healthy subscriber starved while the stalled one was shed")
	}
}
