// Package blackscholes implements the closed-form Black-Scholes European
// option pricing kernel at the paper's three optimization levels
// (Sec. IV-A, Fig. 4):
//
//   - Basic: the reference loop of Lis. 1, autovectorized over AOS data.
//     Each input field becomes a strided gather and each output a scatter,
//     which is what makes the reference version 3x slower on KNC than on
//     SNB-EP.
//   - Intermediate: the AOS-to-SOA data transposition, turning every
//     gather into an aligned vector load. This is the paper's key
//     Black-Scholes optimization (10x on KNC).
//   - Advanced: VML-style batch evaluation over cache-blocked SOA chunks,
//     with the call/put parity and cnd->erf substitutions of Sec. IV-A2.
//
// A pure-scalar reference (RefScalar) provides the correctness baseline
// every optimized variant is tested against.
package blackscholes // finlint:hot — allocation-free loops enforced by internal/lint

import (
	"context"
	"sync"

	"finbench/internal/layout"
	"finbench/internal/mathx"
	"finbench/internal/parallel"
	"finbench/internal/perf"
	"finbench/internal/vec"
	"finbench/internal/workload"
)

// ctxBlock is the option-count granularity of the cancellable variants'
// context checks. It must be a multiple of every supported SIMD width so
// blocking the loops does not move the vector-group boundaries (keeping
// blocked and unblocked runs bit-identical).
const ctxBlock = 1024

// PriceScalar prices a single European call and put.
// d1 = (ln(S/X) + (r + sig^2/2) T) / (sig sqrt(T)), d2 = d1 - sig sqrt(T);
// call = S Phi(d1) - X e^{-rT} Phi(d2), put by symmetry.
func PriceScalar(s, x, t float64, mkt workload.MarketParams) (call, put float64) {
	r, sig := mkt.R, mkt.Sigma
	sig22 := sig * sig / 2
	qlog := mathx.Log(s / x)
	denom := 1 / (sig * mathx.Sqrt(t))
	d1 := (qlog + (r+sig22)*t) * denom
	d2 := (qlog + (r-sig22)*t) * denom
	xexp := x * mathx.Exp(-r*t)
	call = s*mathx.CND(d1) - xexp*mathx.CND(d2)
	put = xexp*mathx.CND(-d2) - s*mathx.CND(-d1)
	return call, put
}

// RefScalar prices the batch with the reference scalar loop (Lis. 1),
// recording the scalar operation mix. It is the "naively-written C/C++
// code" side of the Ninja gap.
func RefScalar(a layout.AOS, mkt workload.MarketParams, c *perf.Counts) {
	n := a.Len()
	for i := 0; i < n; i++ {
		call, put := PriceScalar(a.S(i), a.X(i), a.T(i), mkt)
		a.SetResult(i, call, put)
	}
	if c != nil {
		// Per option: 1 log, 1 sqrt, 1 exp, 1 divide, 4 cnd, ~12 flops,
		// 3 scalar loads, 2 scalar stores.
		un := uint64(n)
		c.Add(perf.OpLog, un)
		c.Add(perf.OpSqrt, un)
		c.Add(perf.OpExp, un)
		c.Add(perf.OpCND, 4*un)
		c.Add(perf.OpScalar, 14*un) // flops incl. the two divides
		c.Add(perf.OpScalarLoad, 3*un)
		c.Add(perf.OpScalarStore, 2*un)
		c.AddBytes(uint64(40*n), uint64(16*n))
		c.Items += un
	}
}

// priceVec prices one vector of options given input registers, using the
// reference formula (cnd four times, no parity), as the autovectorizer
// emits for Lis. 1.
func priceVec(ctx vec.Ctx, s, x, t vec.Vec, mkt workload.MarketParams) (call, put vec.Vec) {
	r, sig := mkt.R, mkt.Sigma
	sig22 := sig * sig / 2
	qlog := ctx.Log(ctx.Div(s, x))
	denom := ctx.Div(ctx.Broadcast(1), ctx.Mul(ctx.Broadcast(sig), ctx.Sqrt(t)))
	d1 := ctx.Mul(ctx.FMA(ctx.Broadcast(r+sig22), t, qlog), denom)
	d2 := ctx.Mul(ctx.FMA(ctx.Broadcast(r-sig22), t, qlog), denom)
	xexp := ctx.Mul(x, ctx.Exp(ctx.Mul(ctx.Broadcast(-r), t)))
	call = ctx.Sub(ctx.Mul(s, ctx.CND(d1)), ctx.Mul(xexp, ctx.CND(d2)))
	put = ctx.Sub(ctx.Mul(xexp, ctx.CND(ctx.Neg(d2))), ctx.Mul(s, ctx.CND(ctx.Neg(d1))))
	return call, put
}

// Basic prices the AOS batch with inner-loop vectorization over the AOS
// layout: the compiler-only optimization level. Inputs are gathered from
// (and outputs scattered to) records spread across `width` cache lines.
// The batch length must be a multiple of the vector width (callers pad
// with layout.PadTo).
func Basic(a layout.AOS, mkt workload.MarketParams, width int, c *perf.Counts) {
	_ = BasicCtx(context.Background(), a, mkt, width, c)
}

// BasicCtx is Basic with cancellation checked every ctxBlock options; an
// uncancelled run is bit-identical to Basic (blocking at a multiple of the
// width preserves the vector-group boundaries). On a non-nil return the
// batch outputs are partial.
func BasicCtx(cx context.Context, a layout.AOS, mkt workload.MarketParams, width int, c *perf.Counts) error {
	done := cx.Done()
	n := a.Len()
	run := func(lo, hi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		for blo := lo; blo < hi; blo += ctxBlock {
			bhi := blo + ctxBlock
			if bhi > hi {
				bhi = hi
			}
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			i := blo
			for ; i+width <= bhi; i += width {
				base := i * layout.Stride
				s := ctx.GatherStride(a.Data, base+layout.FieldS, layout.Stride)
				x := ctx.GatherStride(a.Data, base+layout.FieldX, layout.Stride)
				t := ctx.GatherStride(a.Data, base+layout.FieldT, layout.Stride)
				call, put := priceVec(ctx, s, x, t, mkt)
				ctx.ScatterStride(a.Data, base+layout.FieldCall, layout.Stride, call)
				ctx.ScatterStride(a.Data, base+layout.FieldPut, layout.Stride, put)
			}
			// Scalar remainder (SIMD-efficiency loss at loop end, Sec. IV-B1).
			for ; i < bhi; i++ {
				call, put := PriceScalar(a.S(i), a.X(i), a.T(i), mkt)
				a.SetResult(i, call, put)
			}
		}
	}
	if err := runParallelCtx(cx, n, c, run); err != nil {
		return err
	}
	if c != nil {
		c.AddBytes(uint64(40*n), uint64(16*n))
		c.Items += uint64(n)
	}
	return nil
}

// Intermediate prices the SOA batch with SIMD across options: aligned
// loads, call/put parity and the cnd->erf substitution (Sec. IV-A2).
func Intermediate(s *layout.SOA, mkt workload.MarketParams, width int, c *perf.Counts) {
	_ = IntermediateCtx(context.Background(), s, mkt, width, c)
}

// IntermediateCtx is Intermediate with cancellation checked every ctxBlock
// options; an uncancelled run is bit-identical to Intermediate (ctxBlock is
// a multiple of the width, so the vector/scalar-tail split per worker chunk
// is unchanged). On a non-nil return the batch outputs are partial.
func IntermediateCtx(cx context.Context, s *layout.SOA, mkt workload.MarketParams, width int, c *perf.Counts) error {
	done := cx.Done()
	n := s.Len()
	r, sig := mkt.R, mkt.Sigma
	sig22 := sig * sig / 2
	run := func(lo, hi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		half := ctx.Broadcast(0.5)
		one := ctx.Broadcast(1)
		invSqrt2 := ctx.Broadcast(mathx.InvSqrt2)
		for blo := lo; blo < hi; blo += ctxBlock {
			bhi := blo + ctxBlock
			if bhi > hi {
				bhi = hi
			}
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			i := blo
			for ; i+width <= bhi; i += width {
				sp := ctx.Load(s.S, i)
				x := ctx.Load(s.X, i)
				t := ctx.Load(s.T, i)
				qlog := ctx.Log(ctx.Div(sp, x))
				denom := ctx.Div(one, ctx.Mul(ctx.Broadcast(sig), ctx.Sqrt(t)))
				d1 := ctx.Mul(ctx.FMA(ctx.Broadcast(r+sig22), t, qlog), denom)
				d2 := ctx.Mul(ctx.FMA(ctx.Broadcast(r-sig22), t, qlog), denom)
				xexp := ctx.Mul(x, ctx.Exp(ctx.Mul(ctx.Broadcast(-r), t)))
				// cnd(d) = (1 + erf(d/sqrt2))/2; two erf calls replace four cnd.
				nd1 := ctx.Mul(ctx.Add(one, ctx.Erf(ctx.Mul(d1, invSqrt2))), half)
				nd2 := ctx.Mul(ctx.Add(one, ctx.Erf(ctx.Mul(d2, invSqrt2))), half)
				call := ctx.Sub(ctx.Mul(sp, nd1), ctx.Mul(xexp, nd2))
				// Put-call parity: put = call - S + X e^{-rT}.
				put := ctx.Add(ctx.Sub(call, sp), xexp)
				ctx.Store(s.Call, i, call)
				ctx.Store(s.Put, i, put)
			}
			for ; i < bhi; i++ {
				call, put := PriceScalar(s.S[i], s.X[i], s.T[i], mkt)
				s.Call[i] = call
				s.Put[i] = put
			}
		}
	}
	if err := runParallelCtx(cx, n, c, run); err != nil {
		return err
	}
	if c != nil {
		c.AddBytes(uint64(24*n), uint64(16*n))
		c.Items += uint64(n)
	}
	return nil
}

// VMLChunk is the cache-resident batch size of the Advanced variant: the
// intermediate arrays of a chunk must fit in L2 (paper Sec. IV-A3 notes
// VML's "larger cache footprint").
const VMLChunk = 2048

// vmlScratch is one worker's set of VML intermediate arrays (5 x 16KiB,
// cache-blocked). Pooled: the arrays are scratch whose live range is a
// single AdvancedCtx worker invocation.
type vmlScratch struct {
	qlog, denom, xexp, d1, d2 [VMLChunk]float64
}

var vmlScratchPool = sync.Pool{New: func() any { return new(vmlScratch) }}

// advancedChunk evaluates one cache-blocked chunk [base, base+m) of the
// VML-style pipeline. Every scratch prefix it reads is overwritten first,
// so stale pool contents cannot leak into results.
func advancedChunk(s *layout.SOA, base, m int, r, sig, sig22 float64, sc *vmlScratch) {
	qlog := sc.qlog[:m]
	denom := sc.denom[:m]
	xexp := sc.xexp[:m]
	d1 := sc.d1[:m]
	d2 := sc.d2[:m]
	for i := 0; i < m; i++ {
		qlog[i] = s.S[base+i] / s.X[base+i]
	}
	mathx.LogArray(qlog, qlog)
	for i := 0; i < m; i++ {
		denom[i] = sig * sig * s.T[base+i]
	}
	mathx.SqrtArray(denom, denom)
	mathx.InvArray(denom, denom)
	for i := 0; i < m; i++ {
		t := s.T[base+i]
		d1[i] = (qlog[i] + (r+sig22)*t) * denom[i] * mathx.InvSqrt2
		d2[i] = (qlog[i] + (r-sig22)*t) * denom[i] * mathx.InvSqrt2
		xexp[i] = -r * t
	}
	mathx.ExpArray(xexp, xexp)
	mathx.ErfArray(d1, d1)
	mathx.ErfArray(d2, d2)
	for i := 0; i < m; i++ {
		x := s.X[base+i] * xexp[i]
		sp := s.S[base+i]
		call := sp*0.5*(1+d1[i]) - x*0.5*(1+d2[i])
		s.Call[base+i] = call
		s.Put[base+i] = call - sp + x
	}
}

// Advanced prices the SOA batch VML-style: whole-array transcendental
// calls over cache-blocked chunks, with parity and erf substitution.
func Advanced(s *layout.SOA, mkt workload.MarketParams, width int, c *perf.Counts) {
	_ = AdvancedCtx(context.Background(), s, mkt, width, c)
}

// AdvancedCtx is Advanced with cancellation checked once per VMLChunk (the
// loop is already cache-blocked, so the check adds no extra structure); an
// uncancelled run is bit-identical to Advanced. On a non-nil return the
// batch outputs are partial.
func AdvancedCtx(cx context.Context, s *layout.SOA, mkt workload.MarketParams, width int, c *perf.Counts) error {
	done := cx.Done()
	n := s.Len()
	r, sig := mkt.R, mkt.Sigma
	sig22 := sig * sig / 2
	if n <= VMLChunk && c == nil {
		// Single-chunk serial fast path: the serving tier's common case.
		// A one-chunk region has exactly one cancellation check, which
		// the entry check below provides, so no fork-join structure (and
		// none of its closure allocations) is needed. advancedChunk is
		// the same chunk body the forked path runs, so results stay
		// bit-identical.
		if err := cx.Err(); err != nil {
			return err
		}
		sc := vmlScratchPool.Get().(*vmlScratch)
		advancedChunk(s, 0, n, r, sig, sig22, sc)
		vmlScratchPool.Put(sc)
		return nil
	}
	run := func(lo, hi int, c *perf.Counts) {
		// Per-worker scratch (cache-resident intermediates), pooled so a
		// steady request stream prices without per-call slice allocations.
		sc := vmlScratchPool.Get().(*vmlScratch)
		defer vmlScratchPool.Put(sc)
		for base := lo; base < hi; base += VMLChunk {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			m := hi - base
			if m > VMLChunk {
				m = VMLChunk
			}
			advancedChunk(s, base, m, r, sig, sig22, sc)
		}
		if c != nil {
			// VML mix per option (vector-instruction counts per `width`
			// options): the transcendentals, one divide, and the extra
			// loads/stores of streaming intermediates through cache.
			un := uint64(hi - lo)
			uw := uint64(width)
			// VML's long-array transcendentals amortize the per-call setup
			// of the SVML kernels (~15%), the reason "using the Intel VML
			// is more efficient on SNB-EP" (Sec. IV-A3); the extra
			// intermediate-array traffic below is what cancels the benefit
			// on KNC.
			disc := func(n uint64) uint64 { return n * 17 / 20 }
			c.Add(perf.OpLog, disc(un))
			c.Add(perf.OpSqrt, disc(un))
			c.Add(perf.OpExp, disc(un))
			c.Add(perf.OpErf, disc(2*un))
			vecIters := un / uw
			c.Add(perf.OpVecDiv, 2*vecIters)
			c.Add(perf.OpVecMul, 10*vecIters)
			c.Add(perf.OpVecAdd, 7*vecIters)
			c.Add(perf.OpVecFMA, 2*vecIters)
			// Intermediate arrays are re-loaded/stored by each VML pass:
			// ~12 extra vector loads and ~8 stores per vector of options.
			c.Add(perf.OpVecLoad, 12*vecIters)
			c.Add(perf.OpVecStore, 8*vecIters)
			if c.Width == 0 {
				c.Width = width
			}
		}
	}
	if err := runParallelCtx(cx, n, c, run); err != nil {
		return err
	}
	if c != nil {
		c.AddBytes(uint64(24*n), uint64(16*n))
		c.Items += uint64(n)
	}
	return nil
}

// runParallelCtx splits [0,n) across cancellable workers, giving each a
// private counter merged at the end (counter-free runs go straight
// through). A Background context takes the same path as the plain loops.
func runParallelCtx(cx context.Context, n int, c *perf.Counts, run func(lo, hi int, c *perf.Counts)) error {
	if c == nil {
		return parallel.ForCtx(cx, n, func(lo, hi int) { run(lo, hi, nil) })
	}
	return parallel.ForIndexedMergedCtx(cx, n, c, func(_, lo, hi int, local *perf.Counts) {
		run(lo, hi, local)
	})
}
