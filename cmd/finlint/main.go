// Command finlint runs the repo's kernel-safety static analysis
// (internal/lint) over package patterns and exits non-zero if any
// invariant is violated.
//
// Usage:
//
//	finlint [-passes rngshare,hotalloc,...] [-list] [-v] [patterns ...]
//
// Patterns are directories or recursive patterns like ./... (the default).
// Diagnostics print one per line as "file:line: [pass] message". Suppress
// an individual finding with "// finlint:ignore <pass> <reason>" on or
// directly above the flagged line; mark a package's loops hot (enabling
// hotalloc) with "// finlint:hot".
package main

import (
	"flag"
	"fmt"
	"os"

	"finbench/internal/lint"
)

func main() {
	passList := flag.String("passes", "all", "comma-separated passes to run (or 'all')")
	list := flag.Bool("list", false, "list available passes and exit")
	verbose := flag.Bool("v", false, "also print loader/type-checker notes to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: finlint [flags] [patterns ...]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-10s %s\n", p.Name, p.Doc)
		}
		return
	}

	passes, err := lint.SelectPasses(*passList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "finlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "finlint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, pkg := range pkgs {
			fmt.Fprintf(os.Stderr, "finlint: loaded %s (%d files, %d type notes)\n", pkg.Path, len(pkg.Files), len(pkg.TypeErrors))
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "finlint: note: %v\n", e)
			}
		}
	}

	diags := lint.Run(pkgs, passes)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "finlint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
