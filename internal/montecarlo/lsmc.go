package montecarlo

import (
	"finbench/internal/linalg"
	"finbench/internal/mathx"
	"finbench/internal/rng"
	"finbench/internal/workload"
)

// Longstaff-Schwartz least-squares Monte Carlo for American options: the
// paper's Sec. II-D notes that "for many types of financial derivatives
// (such as American options) the closed-form solution ... cannot [be]
// applied"; LSMC is the standard Monte Carlo answer, and serves here as a
// third, independent American-put pricer cross-validating the binomial
// tree and the Crank-Nicolson/PSOR solver.
//
// Algorithm: simulate GBM paths over `steps` exercise dates; walk
// backwards, at each date regressing the discounted future cash flows of
// in-the-money paths on the basis {1, S, S^2} and exercising where the
// immediate payoff exceeds the fitted continuation value.

// AmericanPutLSMC prices an American put by least-squares Monte Carlo.
func AmericanPutLSMC(s, x, t float64, npaths, steps int, seed uint64, mkt workload.MarketParams) Result {
	dt := t / float64(steps)
	disc := mathx.Exp(-mkt.R * dt)
	drift := (mkt.R - mkt.Sigma*mkt.Sigma/2) * dt
	volDt := mkt.Sigma * mathx.Sqrt(dt)

	// Simulate paths: prices[p*steps + k] is S at exercise date k+1.
	prices := make([]float64, npaths*steps)
	stream := rng.NewStream(0, seed)
	z := make([]float64, steps)
	for p := 0; p < npaths; p++ {
		stream.NormalICDF(z)
		sp := s
		for k := 0; k < steps; k++ {
			sp *= mathx.Exp(drift + volDt*z[k])
			prices[p*steps+k] = sp
		}
	}

	// Cash flows initialized at expiry.
	cash := make([]float64, npaths)
	for p := 0; p < npaths; p++ {
		cash[p] = putPayoff(x, prices[p*steps+steps-1])
	}

	// Backward induction over earlier exercise dates. Regression rows are
	// carved out of one flat backing array so the per-path loop stays
	// allocation-free (hotalloc invariant).
	basis := make([][]float64, 0, npaths)
	backing := make([]float64, 3*npaths)
	ys := make([]float64, 0, npaths)
	idx := make([]int, 0, npaths)
	for k := steps - 2; k >= 0; k-- {
		basis = basis[:0]
		ys = ys[:0]
		idx = idx[:0]
		for p := 0; p < npaths; p++ {
			sp := prices[p*steps+k]
			if x > sp { // in the money: candidate for exercise
				// Normalize the regressor for conditioning.
				u := sp / x
				row := backing[3*len(basis) : 3*len(basis)+3 : 3*len(basis)+3]
				row[0], row[1], row[2] = 1, u, u*u
				basis = append(basis, row)
				ys = append(ys, cash[p]*disc)
				idx = append(idx, p)
			}
			cash[p] *= disc // roll every path back one period
		}
		if len(idx) < 8 {
			continue // too few ITM paths to regress
		}
		coef, err := linalg.LeastSquares(basis, ys)
		if err != nil {
			continue
		}
		for _, p := range idx {
			sp := prices[p*steps+k]
			u := sp / x
			cont := coef[0] + coef[1]*u + coef[2]*u*u
			if ex := x - sp; ex > cont {
				cash[p] = ex // exercise now: replaces rolled-back value
			}
		}
	}

	// Discount one more period to time zero and average.
	var v0, v1 float64
	for p := 0; p < npaths; p++ {
		c := cash[p] * disc
		v0 += c
		v1 += c * c
	}
	n := float64(npaths)
	mean := v0 / n
	variance := v1/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Result{Price: mean, StdErr: mathx.Sqrt(variance / n)}
}

func putPayoff(x, s float64) float64 {
	if x > s {
		return x - s
	}
	return 0
}
