// Package serve is the concurrent batch-pricing server over the finbench
// library: an HTTP/JSON front end that coalesces small concurrent
// closed-form requests into SOA mega-batches, propagates client deadlines
// into the pricing kernels (cancelled work stops consuming the parallel
// pool at chunk granularity), sheds load at the door when a bounded
// in-flight work budget is exhausted, and optionally degrades to cheaper
// effective parameters under sustained overload. Every 200 response is
// bit-reproducible from the effective method/config it reports.
//
// Endpoints: POST /price, POST /greeks, POST /scenario, GET /stream
// (SSE, when a streaming hub is configured), GET /statsz, GET /healthz.
// Status codes: 400 malformed, 404/405 routing, 408 deadline exceeded,
// 429 rate-limited, 503 shed or draining (with Retry-After).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"finbench"
	"finbench/internal/serve/coalesce"
	"finbench/internal/serve/deadline"
	"finbench/internal/serve/pricecache"
	"finbench/internal/serve/stream"
	"finbench/internal/serve/wire"
)

// Config tunes the server. Zero values select the defaults.
type Config struct {
	// Market is the flat market every request prices against.
	Market finbench.Market

	// MaxUnits bounds the in-flight work units (1 unit ~ one closed-form
	// option); default 4M. AdmitWait is the longest a request waits for
	// admission before being shed with 503; default 2ms.
	MaxUnits  int64
	AdmitWait time.Duration

	// Rate and Burst configure the token-bucket request-rate limiter
	// (requests/second); Rate 0 disables it.
	Rate, Burst float64

	// CoalesceWindow is the longest the first request of a batch waits
	// for company (default 250us); CoalesceMaxBatch flushes early at that
	// many pending options (default 16384). Requests at least
	// CoalesceMaxBatch options large bypass the coalescer.
	CoalesceWindow   time.Duration
	CoalesceMaxBatch int

	// ProfileEvery samples the op mix of every Nth coalesced flush
	// (default 64; negative disables).
	ProfileEvery int

	// MaxOptions bounds options per request (default 262144). MaxPaths
	// caps per-request Monte Carlo paths (default 2^22).
	MaxOptions int
	MaxPaths   int

	// MaxScenarioCells bounds scenario cells (grid points + generator
	// scenarios) per /scenario request; default 16384.
	MaxScenarioCells int

	// MaxDeadline caps client deadlines and bounds requests that supply
	// none; default 30s.
	MaxDeadline time.Duration

	// Degrade enables degrade mode under sustained shedding.
	Degrade bool

	// CacheBytes enables the content-addressed response cache with that
	// byte budget (0 disables). Only composition-independent engines are
	// cached (closed-form today; Monte Carlo results depend on the batch
	// decomposition and always bypass). CacheTTL expires entries (0 =
	// never). Cacheable responses report elapsed_us 0: timing is
	// transport metadata, excluded from the content address so a hit
	// replays the cold response byte-for-byte.
	CacheBytes int64
	CacheTTL   time.Duration

	// Stream enables the GET /stream SSE feed with the given hub
	// configuration (nil disables — /stream answers 404). The hub's
	// Market defaults to the server's.
	Stream *stream.Config

	// StreamWriteTimeout bounds one SSE frame write: a subscriber that
	// cannot absorb a frame within it is disconnected so it never holds
	// buffers (or the drain) hostage. Default 2s.
	StreamWriteTimeout time.Duration
}

func (c Config) withDefaults() Config {
	// finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
	if c.Market.Volatility == 0 {
		c.Market = finbench.Market{Rate: 0.02, Volatility: 0.3}
	}
	if c.MaxUnits <= 0 {
		c.MaxUnits = 4 << 20
	}
	if c.AdmitWait <= 0 {
		c.AdmitWait = 2 * time.Millisecond
	}
	if c.CoalesceWindow <= 0 {
		c.CoalesceWindow = 250 * time.Microsecond
	}
	if c.CoalesceMaxBatch <= 0 {
		c.CoalesceMaxBatch = 16384
	}
	if c.ProfileEvery == 0 {
		c.ProfileEvery = 64
	}
	if c.ProfileEvery < 0 {
		c.ProfileEvery = 0
	}
	if c.MaxOptions <= 0 {
		c.MaxOptions = 262144
	}
	if c.MaxPaths <= 0 {
		c.MaxPaths = 1 << 22
	}
	if c.MaxScenarioCells <= 0 {
		c.MaxScenarioCells = 16384
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.StreamWriteTimeout <= 0 {
		c.StreamWriteTimeout = 2 * time.Second
	}
	return c
}

// Server prices option batches over HTTP.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	stats *stats
	adm   *admission
	deg   *degrader
	co    *coalesce.Coalescer
	rate  *bucket           // nil when rate limiting is disabled
	cache *pricecache.Cache // nil when caching is disabled
	hub   *stream.Hub       // nil when streaming is disabled

	draining atomic.Bool
	// streamActive counts open SSE handlers; Drain waits for it to reach
	// zero (the handlers exit on their own once StartDrain closes the
	// hub's Gone channels).
	streamActive atomic.Int64
}

// New builds a server. Call Close when done (stops the degrade ticker and
// the coalescer timer).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		stats: newStats(),
		adm:   newAdmission(cfg.MaxUnits),
		deg:   newDegrader(cfg.Degrade),
		co:    coalesce.New(cfg.Market, cfg.CoalesceWindow, cfg.CoalesceMaxBatch, cfg.ProfileEvery),
		rate:  newBucket(cfg.Rate, cfg.Burst),
	}
	if cfg.CacheBytes > 0 {
		s.cache = pricecache.New(cfg.CacheBytes, cfg.CacheTTL)
	}
	if cfg.Stream != nil {
		hcfg := *cfg.Stream
		// finlint:ignore floateq zero is the untouched-field sentinel, never a computed value
		if hcfg.Market.Volatility == 0 {
			hcfg.Market = cfg.Market
		}
		s.hub = stream.New(hcfg, nil)
		s.hub.Start()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/price", s.handlePrice)
	mux.HandleFunc("/greeks", s.handleGreeks)
	mux.HandleFunc("/scenario", s.handleScenario)
	mux.HandleFunc("/stream", s.handleStream)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler (a 404-counting wrapper around the
// mux).
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/price", "/greeks", "/scenario", "/stream", "/statsz", "/healthz":
		s.mux.ServeHTTP(w, r)
	default:
		s.writeError(w, http.StatusNotFound, "no such endpoint")
	}
}

// StartDrain flips the server into draining mode without waiting: new
// requests are answered with a fast 503 + Retry-After (so a router fails
// them over to a live replica instead of seeing the listener close under
// it) and /healthz reports "draining" for health checkers. Call Drain
// afterwards to wait for in-flight work.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.co.Flush()
	if s.hub != nil {
		// Shut the hub down NOW, not at Close: closing every subscriber's
		// Gone channel is what makes the open SSE handlers send goodbye
		// and return, which is what lets http.Server.Shutdown (which waits
		// for open connections) complete inside the drain window.
		s.hub.Shutdown()
	}
}

// Drain puts the server into draining mode (new work is refused with
// 503), flushes the coalescer, and waits until in-flight work reaches
// zero or ctx expires. Returns nil when fully drained.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.adm.inFlight() == 0 && s.streamActive.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close releases background resources. The server must not be used after.
func (s *Server) Close() {
	s.deg.close()
	s.co.Close()
	if s.hub != nil {
		s.hub.Close()
	}
}

// maxBody bounds request bodies (an option is ~90 JSON bytes; 64MB covers
// the largest permitted batch with slack).
const maxBody = 64 << 20

// readBody reads the request body into a pooled buffer with the same
// semantics as io.ReadAll(io.LimitReader(r.Body, maxBody)): bytes beyond
// maxBody are silently dropped (the truncated body then fails decode).
func readBody(r *http.Request, buf *wire.Buffer) ([]byte, error) {
	b := buf.B[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		room := cap(b) - len(b)
		if rem := maxBody - len(b); room > rem {
			room = rem
		}
		if room == 0 {
			buf.B = b
			return b, nil
		}
		n, err := r.Body.Read(b[len(b) : len(b)+room])
		b = b[:len(b)+n]
		if err == io.EOF {
			buf.B = b
			return b, nil
		}
		if err != nil {
			buf.B = b
			return b, err
		}
	}
}

func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.stats.priceRequests.Add(1)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.stats.shedDrain.Add(1)
		s.writeShed(w, "server is draining")
		return
	}
	if !s.rateAllow() {
		s.stats.shedRate.Add(1)
		s.writeError(w, http.StatusTooManyRequests, "request rate limit exceeded")
		return
	}
	buf := wire.GetBuffer()
	body, err := readBody(r, buf)
	if err != nil {
		wire.PutBuffer(buf)
		s.writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	// DecodeRequest resolves the method while parsing (satellite of the
	// old decode-then-reparse, which discarded the second parse's error).
	var req *wire.PriceRequest
	var method finbench.Method
	binaryFraming := r.Header.Get("Content-Type") == wire.ColumnarContentType
	if binaryFraming {
		req, method, err = wire.DecodeColumnarRequest(body)
	} else {
		req, method, err = wire.DecodeRequest(body)
	}
	wire.PutBuffer(buf)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Columnar != nil {
		s.stats.columnarRequests.Add(1)
	}
	n := req.NumOptions()
	if n > s.cfg.MaxOptions {
		wire.PutRequest(req)
		s.writeError(w, http.StatusBadRequest,
			"too many options: "+strconv.Itoa(n)+" > "+strconv.Itoa(s.cfg.MaxOptions))
		return
	}

	// Resolve the effective numeric parameters: defaults, caps, then the
	// degrade substitution. The response reports exactly these.
	cfg := req.Config.ToConfig()
	if cfg.MCPaths > s.cfg.MaxPaths {
		cfg.MCPaths = s.cfg.MaxPaths
	}
	cfg = cfg.Resolved()
	degraded := false
	if s.deg.active() {
		// Columnar batches are validated all-European.
		allEuro := req.Columnar != nil || allEuropean(req.Options)
		dm, dc := applyDegrade(method, cfg, allEuro)
		degraded = dm != method || dc != cfg
		method, cfg = dm, dc
	}

	// Cacheable fast path: closed-form is composition-independent and
	// never degrade-substituted, so its responses are pure functions of
	// (method, market, effective config, batch) — the cache serves hits
	// and collapses identical concurrent requests before any admission
	// cost. Everything else (Monte Carlo's decomposition-dependent
	// results, the lattice methods, degraded substitutions, and columnar
	// framing — whose response bytes are not the cached JSON) bypasses.
	if s.cache != nil {
		if method == finbench.ClosedForm && !degraded && req.Columnar == nil {
			s.servePriceCached(w, r, start, req, cfg)
			return
		}
		w.Header().Set(pricecache.Header, "bypass")
	}

	// Admission: acquire the request's work units or shed fast.
	units, ok := s.adm.acquire(unitCost(method, cfg, n), s.cfg.AdmitWait)
	if !ok {
		wire.PutRequest(req)
		s.deg.noteShed()
		s.stats.shedAdmission.Add(1)
		s.writeShed(w, "work budget exhausted")
		return
	}
	s.deg.noteAdmit()
	defer s.adm.release(units)

	// Deadline: client's, capped by the server maximum.
	budget := s.cfg.MaxDeadline
	if req.DeadlineMS > 0 {
		if d := time.Duration(req.DeadlineMS) * time.Millisecond; d < budget {
			budget = d
		}
	}
	dctx := deadline.Acquire(r.Context(), time.Now().Add(budget))
	defer dctx.Release()

	resp := wire.GetPriceResponse()
	resp.Method = method.String()
	resp.Config = wire.FromConfig(cfg)
	resp.Degraded = degraded
	if method == finbench.ClosedForm {
		err = s.priceClosedForm(dctx, req, resp)
	} else {
		err = s.priceHeavy(dctx, req, method, cfg, resp)
	}
	wire.PutRequest(req)
	if err != nil {
		wire.PutPriceResponse(resp)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.writeError(w, http.StatusRequestTimeout, "pricing deadline exceeded")
		} else {
			s.writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	if degraded {
		s.stats.degradedResponses.Add(1)
	}
	elapsed := time.Since(start)
	resp.ElapsedUS = elapsed.Microseconds()
	s.stats.observeLatency(method.String(), elapsed)
	if binaryFraming {
		s.writePriceColumnar(w, resp)
	} else {
		s.writePriceOK(w, resp)
	}
	wire.PutPriceResponse(resp)
}

// errShed marks an admission failure inside the cacheable compute path so
// the handler answers 503 (shed) rather than 400.
var errShed = errors.New("work budget exhausted")

// servePriceCached serves a closed-form /price request through the
// content-addressed cache: a stored entry answers immediately (hit), a
// concurrent identical request rides the in-flight leader's computation
// (collapsed), and otherwise this request computes as the leader (miss).
// Hits and collapsed waiters never touch the admission budget — the
// cache's whole throughput win. The deadline context is established
// before Do so a waiter parked on a slow leader still honors its own
// deadline.
func (s *Server) servePriceCached(w http.ResponseWriter, r *http.Request, start time.Time, req *PriceRequest, cfg finbench.Config) {
	defer wire.PutRequest(req)
	budget := s.cfg.MaxDeadline
	if req.DeadlineMS > 0 {
		if d := time.Duration(req.DeadlineMS) * time.Millisecond; d < budget {
			budget = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	body, outcome, err := s.cache.Do(ctx, s.cacheKey(req, cfg), func(ctx context.Context) ([]byte, bool, error) {
		return s.computeCacheable(ctx, req, cfg)
	})
	if err != nil {
		switch {
		case errors.Is(err, errShed):
			s.stats.shedAdmission.Add(1)
			s.writeShed(w, "work budget exhausted")
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			s.writeError(w, http.StatusRequestTimeout, "pricing deadline exceeded")
		default:
			s.writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	w.Header().Set(pricecache.Header, outcome.String())
	s.stats.observeLatency(finbench.ClosedForm.String(), time.Since(start))
	s.writeRaw(w, http.StatusOK, body)
}

// computeCacheable is the singleflight leader's computation: admission,
// kernel, and the one-and-only marshal. The returned bytes are what the
// store replays, so a cache hit is byte-identical to the cold 200 by
// construction. ElapsedUS stays zero — timing is transport metadata,
// deliberately excluded from the content address.
func (s *Server) computeCacheable(ctx context.Context, req *PriceRequest, cfg finbench.Config) ([]byte, bool, error) {
	units, ok := s.adm.acquire(unitCost(finbench.ClosedForm, cfg, len(req.Options)), s.cfg.AdmitWait)
	if !ok {
		s.deg.noteShed()
		return nil, false, errShed
	}
	s.deg.noteAdmit()
	defer s.adm.release(units)

	resp := wire.GetPriceResponse()
	resp.Method = finbench.ClosedForm.String()
	resp.Config = wire.FromConfig(cfg)
	if err := s.priceClosedForm(ctx, req, resp); err != nil {
		wire.PutPriceResponse(resp)
		return nil, false, err
	}
	// The stored bytes are owned by the cache, so encode into a fresh
	// slice, not a pooled buffer. The append encoder's output is
	// byte-identical to the json.Encoder this replaced.
	body, ok := wire.AppendPriceResponse(nil, resp)
	if !ok {
		err := json.NewEncoder(io.Discard).Encode(resp)
		wire.PutPriceResponse(resp)
		return nil, false, err
	}
	wire.PutPriceResponse(resp)
	return body, true, nil
}

// cacheKey digests the request against the server's market and the
// resolved effective config, so any effective-config or market change
// re-keys every entry — invalidation by construction.
func (s *Server) cacheKey(req *PriceRequest, cfg finbench.Config) pricecache.Key {
	contracts := make([]pricecache.Contract, len(req.Options))
	for i := range req.Options {
		o := &req.Options[i]
		contracts[i] = pricecache.Contract{
			Type: o.Type, Style: o.Style,
			Spot: o.Spot, Strike: o.Strike, Expiry: o.Expiry,
		}
	}
	return pricecache.Digest(finbench.ClosedForm.String(),
		s.cfg.Market.Rate, s.cfg.Market.Volatility,
		pricecache.Params{
			BinomialSteps: cfg.BinomialSteps,
			GridPoints:    cfg.GridPoints,
			TimeSteps:     cfg.TimeSteps,
			MCPaths:       cfg.MCPaths,
			Seed:          cfg.Seed,
		}, contracts)
}

// priceClosedForm prices via the SOA batch engine: small requests go
// through the coalescer, large ones straight to the kernel. Either way
// the engine is LevelAdvanced, so results are bit-identical regardless of
// batching (composition independence).
func (s *Server) priceClosedForm(ctx context.Context, req *PriceRequest, resp *PriceResponse) error {
	n := req.NumOptions()
	resp.Engine = "batch-advanced"
	if n >= s.cfg.CoalesceMaxBatch {
		return s.priceClosedFormBypass(ctx, req, resp)
	}
	t := coalesce.GetTicket(n)
	fillInputs(t.Spots, t.Strikes, t.Expiries, req)
	if d, ok := ctx.Deadline(); ok {
		t.Deadline = d
	}
	if err := s.co.Price(t); err != nil {
		coalesce.PutTicket(t)
		return err
	}
	resp.Coalesced = t.Coalesced
	resp.BatchOptions = t.BatchN
	resp.SizedResults(n)
	for i := 0; i < n; i++ {
		if req.IsPut(i) {
			resp.Results[i].Price = t.Puts[i]
		} else {
			resp.Results[i].Price = t.Calls[i]
		}
	}
	coalesce.PutTicket(t)
	return nil
}

// priceClosedFormBypass prices a request that is already a mega-batch on
// its own, skipping the coalescer. The engine is still LevelAdvanced, so
// results are bit-identical to the coalesced path (composition
// independence).
func (s *Server) priceClosedFormBypass(ctx context.Context, req *PriceRequest, resp *PriceResponse) error {
	n := req.NumOptions()
	b := coalesce.GetBatch(n)
	fillInputs(b.Spots, b.Strikes, b.Expiries, req)
	if err := finbench.PriceBatchCtx(ctx, b, s.cfg.Market, finbench.LevelAdvanced); err != nil {
		coalesce.PutBatch(b)
		return err
	}
	resp.BatchOptions = n
	resp.SizedResults(n)
	for i := 0; i < n; i++ {
		if req.IsPut(i) {
			resp.Results[i].Price = b.Puts[i]
		} else {
			resp.Results[i].Price = b.Calls[i]
		}
	}
	coalesce.PutBatch(b)
	return nil
}

// fillInputs copies the request's contracts into SOA input columns,
// whichever framing carries them.
func fillInputs(spots, strikes, expiries []float64, req *PriceRequest) {
	if c := req.Columnar; c != nil {
		copy(spots, c.Spots)
		copy(strikes, c.Strikes)
		copy(expiries, c.Expiries)
		return
	}
	for i := range req.Options {
		spots[i] = req.Options[i].Spot
		strikes[i] = req.Options[i].Strike
		expiries[i] = req.Options[i].Expiry
	}
}

// priceHeavy prices per option through the cancellable scalar kernels.
// These methods are never coalesced: Monte Carlo results depend on the
// batch decomposition (per-worker RNG streams), and the lattice kernels
// gain nothing from batching across requests.
func (s *Server) priceHeavy(ctx context.Context, req *PriceRequest, method finbench.Method, cfg finbench.Config, resp *PriceResponse) error {
	resp.Engine = "scalar"
	resp.SizedResults(len(req.Options))
	for i := range req.Options {
		res, err := finbench.PriceCtx(ctx, req.Options[i].ToOption(), s.cfg.Market, method, &cfg)
		if err != nil {
			return err
		}
		resp.Results[i].Price = res.Price
		resp.Results[i].StdErr = res.StdErr
	}
	return nil
}

func (s *Server) handleGreeks(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.stats.greeksRequests.Add(1)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.stats.shedDrain.Add(1)
		s.writeShed(w, "server is draining")
		return
	}
	if !s.rateAllow() {
		s.stats.shedRate.Add(1)
		s.writeError(w, http.StatusTooManyRequests, "request rate limit exceeded")
		return
	}
	buf := wire.GetBuffer()
	body, err := readBody(r, buf)
	if err != nil {
		wire.PutBuffer(buf)
		s.writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	// DecodeGreeksRequest validates options and rejects negative
	// deadline_ms, matching /price.
	req, err := wire.DecodeGreeksRequest(body)
	wire.PutBuffer(buf)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Options) == 0 || len(req.Options) > s.cfg.MaxOptions {
		wire.PutGreeksRequest(req)
		s.writeError(w, http.StatusBadRequest, "option count out of range")
		return
	}
	units, ok := s.adm.acquire(int64(len(req.Options)), s.cfg.AdmitWait)
	if !ok {
		wire.PutGreeksRequest(req)
		s.deg.noteShed()
		s.stats.shedAdmission.Add(1)
		s.writeShed(w, "work budget exhausted")
		return
	}
	s.deg.noteAdmit()
	defer s.adm.release(units)

	// The documented deadline_ms, honored: client deadline capped by the
	// server maximum, checked between options so a huge batch cannot
	// blow past an expired deadline (or a disconnected client).
	budget := s.cfg.MaxDeadline
	if req.DeadlineMS > 0 {
		if d := time.Duration(req.DeadlineMS) * time.Millisecond; d < budget {
			budget = d
		}
	}
	dctx := deadline.Acquire(r.Context(), time.Now().Add(budget))
	defer dctx.Release()

	resp := wire.GetGreeksResponse()
	resp.SizedResults(len(req.Options))
	for i := range req.Options {
		if dctx.Expired() {
			wire.PutGreeksRequest(req)
			wire.PutGreeksResponse(resp)
			s.writeError(w, http.StatusRequestTimeout, "greeks deadline exceeded")
			return
		}
		o := &req.Options[i]
		g, err := finbench.ComputeGreeks(o.ToOption(), s.cfg.Market)
		if err != nil {
			wire.PutGreeksRequest(req)
			wire.PutGreeksResponse(resp)
			s.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if o.Type == "put" {
			resp.Results[i].Delta = g.DeltaPut
			resp.Results[i].Theta = g.ThetaPut
			resp.Results[i].Rho = g.RhoPut
		} else {
			resp.Results[i].Delta = g.DeltaCall
			resp.Results[i].Theta = g.ThetaCall
			resp.Results[i].Rho = g.RhoCall
		}
		resp.Results[i].Gamma = g.Gamma
		resp.Results[i].Vega = g.Vega
	}
	wire.PutGreeksRequest(req)
	elapsed := time.Since(start)
	resp.ElapsedUS = elapsed.Microseconds()
	s.stats.observeLatency("greeks", elapsed)
	s.writeGreeksOK(w, resp)
	wire.PutGreeksResponse(resp)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	snap := s.statszSnapshot()
	s.writeJSON(w, http.StatusOK, &snap)
}

// handleHealthz reports liveness plus the load signals a router needs to
// score this replica: in-flight work units, admission-queue depth, and the
// draining bit. Draining answers 503 with Retry-After so a router fails
// the request over instead of treating the replica as crashed.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := HealthResponse{
		Status:        "ok",
		InFlightUnits: s.adm.inFlight(),
		MaxUnits:      s.adm.max,
		QueueDepth:    int64(s.adm.queued()),
		UptimeS:       time.Since(s.stats.start).Seconds(),
	}
	if s.draining.Load() {
		h.Status = "draining"
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable, &h)
		return
	}
	s.writeJSON(w, http.StatusOK, &h)
}

func (s *Server) rateAllow() bool { return s.rate.allow() }

func allEuropean(opts []WireOption) bool {
	for i := range opts {
		if opts[i].Style == "american" {
			return false
		}
	}
	return true
}

// headerJSON and headerColumnar are preassigned Content-Type values: a
// direct map assignment of a shared slice skips the per-request []string
// allocation of Header().Set. net/http never mutates header value slices.
var (
	headerJSON     = []string{"application/json"}
	headerColumnar = []string{wire.ColumnarContentType}
)

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	s.stats.countCode(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writePriceOK writes a 200 /price body through the append encoder —
// byte-identical to writeJSON's output, without the reflection walk. The
// encoding/json fallback (non-finite values only) preserves the legacy
// failure mode exactly.
func (s *Server) writePriceOK(w http.ResponseWriter, resp *wire.PriceResponse) {
	buf := wire.GetBuffer()
	b, ok := wire.AppendPriceResponse(buf.B[:0], resp)
	if !ok {
		wire.PutBuffer(buf)
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	buf.B = b
	w.Header()["Content-Type"] = headerJSON
	w.WriteHeader(http.StatusOK)
	s.stats.countCode(http.StatusOK)
	_, _ = w.Write(b)
	wire.PutBuffer(buf)
}

// writeGreeksOK is writePriceOK for /greeks.
func (s *Server) writeGreeksOK(w http.ResponseWriter, resp *wire.GreeksResponse) {
	buf := wire.GetBuffer()
	b, ok := wire.AppendGreeksResponse(buf.B[:0], resp)
	if !ok {
		wire.PutBuffer(buf)
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	buf.B = b
	w.Header()["Content-Type"] = headerJSON
	w.WriteHeader(http.StatusOK)
	s.stats.countCode(http.StatusOK)
	_, _ = w.Write(b)
	wire.PutBuffer(buf)
}

// writePriceColumnar writes the 200 of a binary-framed columnar request
// as a binary response frame.
func (s *Server) writePriceColumnar(w http.ResponseWriter, resp *wire.PriceResponse) {
	buf := wire.GetBuffer()
	b, err := wire.AppendColumnarResponse(buf.B[:0], resp)
	if err != nil {
		wire.PutBuffer(buf)
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	buf.B = b
	w.Header()["Content-Type"] = headerColumnar
	w.WriteHeader(http.StatusOK)
	s.stats.countCode(http.StatusOK)
	_, _ = w.Write(b)
	wire.PutBuffer(buf)
}

// writeRaw writes pre-marshalled response bytes (the cache stores the
// exact bytes the cold computation produced).
func (s *Server) writeRaw(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	s.stats.countCode(code)
	_, _ = w.Write(body)
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	var e ErrorResponse
	e.Error = msg
	s.writeJSON(w, code, &e)
}

// writeShed is a 503 with Retry-After, the standard "come back later".
func (s *Server) writeShed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	s.writeError(w, http.StatusServiceUnavailable, msg)
}
