package pricecache

import "testing"

// FuzzDigest drives the canonicalizer with arbitrary field values and
// checks the two digest laws: semantically equal batches (the ""/"call"
// and ""/"european" spellings) digest equally, and any single-field
// perturbation digests differently.
func FuzzDigest(f *testing.F) {
	f.Add("closed-form", 0.05, 0.2, 64, 100, 50, 0, uint64(42), true, false, 100.0, 95.0, 0.5)
	f.Add("", 0.0, 0.0, 0, 0, 0, 0, uint64(0), false, false, 0.0, 0.0, 0.0)
	f.Add("binomial", -0.01, 1.5, 1024, 1, 1, 100000, uint64(7), false, true, 250.5, 300.0, 10.0)

	f.Fuzz(func(t *testing.T, method string, rate, vol float64, steps, grid, tsteps, paths int, seed uint64, put, american bool, spot, strike, expiry float64) {
		p := Params{BinomialSteps: steps, GridPoints: grid, TimeSteps: tsteps, MCPaths: paths, Seed: seed}
		typ, blankTyp := "put", "put"
		if !put {
			typ, blankTyp = "call", ""
		}
		style, blankStyle := "american", "american"
		if !american {
			style, blankStyle = "european", ""
		}
		c := Contract{Type: typ, Style: style, Spot: spot, Strike: strike, Expiry: expiry}
		blank := Contract{Type: blankTyp, Style: blankStyle, Spot: spot, Strike: strike, Expiry: expiry}

		base := Digest(method, rate, vol, p, []Contract{c})
		if got := Digest(method, rate, vol, p, []Contract{blank}); got != base {
			t.Fatalf("canonical spellings digest differently: %v vs %v", c, blank)
		}

		// Perturb each independent field; every variant must differ. Skip
		// perturbations that don't change the value's bit pattern (e.g.
		// spot+1 == spot for huge floats, NaN comparisons).
		variants := []Key{
			Digest(method+"x", rate, vol, p, []Contract{c}),
			Digest(method, rate, vol, Params{BinomialSteps: steps + 1, GridPoints: grid, TimeSteps: tsteps, MCPaths: paths, Seed: seed}, []Contract{c}),
			Digest(method, rate, vol, Params{BinomialSteps: steps, GridPoints: grid, TimeSteps: tsteps, MCPaths: paths, Seed: seed + 1}, []Contract{c}),
			Digest(method, rate, vol, p, []Contract{c, c}),
			Digest(method, rate, vol, p, nil),
		}
		for i, v := range variants {
			if v == base {
				t.Fatalf("perturbation %d did not change the digest", i)
			}
		}
		if spot+1 != spot {
			mut := c
			mut.Spot = spot + 1
			if Digest(method, rate, vol, p, []Contract{mut}) == base {
				t.Fatal("spot perturbation did not change the digest")
			}
		}
		flipped := c
		if put {
			flipped.Type = ""
		} else {
			flipped.Type = "put"
		}
		if Digest(method, rate, vol, p, []Contract{flipped}) == base {
			t.Fatal("flipping option type did not change the digest")
		}

		// Determinism: same inputs, same key.
		if Digest(method, rate, vol, p, []Contract{c}) != base {
			t.Fatal("digest is not deterministic")
		}
	})
}
