package montecarlo

import (
	"math"
	"testing"

	"finbench/internal/binomial"
	"finbench/internal/blackscholes"
	"finbench/internal/workload"
)

// LSMC must agree with the binomial-tree American put within a small
// premium band (LSMC's suboptimal-exercise bias is low-side).
func TestLSMCMatchesBinomial(t *testing.T) {
	for _, tc := range []struct{ s, x float64 }{
		{100, 100}, {100, 110}, {110, 100},
	} {
		want := binomial.PriceAmericanPutScalar(tc.s, tc.x, 1, 2048, mkt)
		got := AmericanPutLSMC(tc.s, tc.x, 1, 100000, 50, 7, mkt)
		// LSMC with a quadratic basis is biased slightly low; allow a
		// one-sided band plus the MC error.
		if got.Price > want+4*got.StdErr+0.02 {
			t.Fatalf("S=%g X=%g: LSMC %g above binomial %g", tc.s, tc.x, got.Price, want)
		}
		if got.Price < want-0.05*want-4*got.StdErr {
			t.Fatalf("S=%g X=%g: LSMC %g far below binomial %g", tc.s, tc.x, got.Price, want)
		}
	}
}

// The American premium must be visible: LSMC price above the European put.
func TestLSMCCapturesEarlyExercise(t *testing.T) {
	_, euro := blackscholes.PriceScalar(100, 120, 1, mkt)
	got := AmericanPutLSMC(100, 120, 1, 100000, 50, 11, mkt)
	if got.Price < euro {
		t.Fatalf("LSMC %g below European %g: early exercise not captured", got.Price, euro)
	}
}

func TestLSMCDeterministic(t *testing.T) {
	a := AmericanPutLSMC(100, 105, 1, 20000, 25, 3, mkt)
	b := AmericanPutLSMC(100, 105, 1, 20000, 25, 3, mkt)
	if a.Price != b.Price {
		t.Fatal("LSMC not reproducible for a fixed seed")
	}
}

func TestBasketSingleAssetReducesToBS(t *testing.T) {
	b := Basket{
		Spots: []float64{100}, Vols: []float64{0.2}, Weights: []float64{1},
		Corr: [][]float64{{1}},
		X:    100, T: 1,
	}
	res, err := PriceBasketMC(b, 1<<17, 5, mkt)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := blackscholes.PriceScalar(100, 100, 1, workload.MarketParams{R: mkt.R, Sigma: 0.2})
	if math.Abs(res.Price-want) > 4*res.StdErr+0.01 {
		t.Fatalf("basket %g +- %g vs BS %g", res.Price, res.StdErr, want)
	}
}

// Diversification: with imperfect correlation, the basket's effective
// volatility drops, so an ATM basket call is worth less than the same call
// on a single asset; with perfect correlation it matches.
func TestBasketCorrelationEffect(t *testing.T) {
	mk := func(rho float64) Basket {
		return Basket{
			Spots: []float64{100, 100}, Vols: []float64{0.2, 0.2},
			Weights: []float64{0.5, 0.5},
			Corr:    [][]float64{{1, rho}, {rho, 1}},
			X:       100, T: 1,
		}
	}
	lo, err := PriceBasketMC(mk(0.0), 1<<16, 9, mkt)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := PriceBasketMC(mk(0.999), 1<<16, 9, mkt)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := blackscholes.PriceScalar(100, 100, 1, workload.MarketParams{R: mkt.R, Sigma: 0.2})
	if lo.Price >= hi.Price {
		t.Fatalf("rho=0 basket %g not below rho~1 basket %g", lo.Price, hi.Price)
	}
	if math.Abs(hi.Price-single) > 4*hi.StdErr+0.05 {
		t.Fatalf("perfectly correlated basket %g vs single-asset %g", hi.Price, single)
	}
}

func TestBasketValidation(t *testing.T) {
	if _, err := PriceBasketMC(Basket{}, 10, 1, mkt); err != ErrBasketShape {
		t.Fatalf("empty basket: %v", err)
	}
	bad := Basket{
		Spots: []float64{100, 100}, Vols: []float64{0.2, 0.2},
		Weights: []float64{0.5, 0.5},
		Corr:    [][]float64{{1, 2}, {2, 1}}, // not PSD
		X:       100, T: 1,
	}
	if _, err := PriceBasketMC(bad, 10, 1, mkt); err == nil {
		t.Fatal("non-PSD correlation accepted")
	}
}

func BenchmarkLSMC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		AmericanPutLSMC(100, 105, 1, 20000, 25, 1, mkt)
	}
}

func BenchmarkBasketMC(b *testing.B) {
	bk := Basket{
		Spots: []float64{100, 95, 105}, Vols: []float64{0.2, 0.25, 0.3},
		Weights: []float64{0.4, 0.3, 0.3},
		Corr:    [][]float64{{1, 0.5, 0.3}, {0.5, 1, 0.4}, {0.3, 0.4, 1}},
		X:       100, T: 1,
	}
	for i := 0; i < b.N; i++ {
		PriceBasketMC(bk, 1<<14, 1, mkt)
	}
}
