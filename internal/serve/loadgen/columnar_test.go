package loadgen

import (
	"net/http/httptest"
	"testing"

	"finbench/internal/serve"
	"finbench/internal/serve/shard"
)

// TestColumnarRunAgainstServer drives the binary columnar framing against
// a lone replica with -verify: every columnar 200 is recomputed from the
// library and replayed over JSON, and the two framings must bit-match.
func TestColumnarRunAgainstServer(t *testing.T) {
	s := serve.New(serve.Config{ProfileEvery: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	rep, err := Run(Options{
		BaseURL:           ts.URL,
		Concurrency:       2,
		Requests:          24,
		OptionsPerRequest: 5,
		Wire:              "columnar",
		Verify:            true,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(200) != 24 {
		t.Fatalf("report: %s", rep)
	}
	if rep.Columnar != 24 {
		t.Fatalf("columnar 200s = %d, want 24: %s", rep.Columnar, rep)
	}
	if rep.Mismatch > 0 {
		t.Fatalf("%d bit mismatches across framings: %s", rep.Mismatch, rep)
	}
	// 5 options * 24 requests, each judged twice (library + cross-frame).
	if rep.Verified != 2*5*24 {
		t.Fatalf("verified = %d, want %d: %s", rep.Verified, 2*5*24, rep)
	}
}

// TestColumnarRunAgainstRouter is the same guarantee through a shard
// router: routing must not disturb the columnar framing or the numbers.
func TestColumnarRunAgainstRouter(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		s := serve.New(serve.Config{ProfileEvery: -1})
		hs := httptest.NewServer(s.Handler())
		defer hs.Close()
		defer s.Close()
		urls = append(urls, hs.URL)
	}
	router, err := shard.New(shard.Config{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	defer router.Close()
	front := httptest.NewServer(router)
	defer front.Close()

	rep, err := Run(Options{
		BaseURL:           front.URL,
		Concurrency:       2,
		Requests:          16,
		OptionsPerRequest: 4,
		Wire:              "columnar",
		Verify:            true,
		Seed:              13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(200) != 16 {
		t.Fatalf("report: %s", rep)
	}
	if rep.Columnar != 16 {
		t.Fatalf("columnar 200s = %d, want 16: %s", rep.Columnar, rep)
	}
	if rep.Mismatch > 0 {
		t.Fatalf("%d bit mismatches across framings through the router: %s", rep.Mismatch, rep)
	}
	if rep.Verified == 0 {
		t.Fatalf("nothing verified: %s", rep)
	}
}

func TestWireFormatValidation(t *testing.T) {
	if _, err := Run(Options{BaseURL: "http://127.0.0.1:1", Wire: "protobuf", Requests: 1}); err == nil {
		t.Fatal("unknown wire format accepted")
	}
}
