package benchreg

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Marshal renders the snapshot as indented, trailing-newline JSON — the
// canonical on-disk form of BENCH_<n>.json (stable for git diffs).
func (s *Snapshot) Marshal() ([]byte, error) {
	s.Schema = SchemaVersion
	sort.SliceStable(s.Kernels, func(i, j int) bool { return s.Kernels[i].Key() < s.Kernels[j].Key() })
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the snapshot to path in canonical form.
func (s *Snapshot) WriteFile(path string) error {
	data, err := s.Marshal()
	if err != nil {
		return fmt.Errorf("benchreg: marshal snapshot: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchreg: write snapshot: %w", err)
	}
	return nil
}

// ReadFile loads a snapshot, refusing unknown schema versions and
// structurally empty snapshots (no kernels), both of which would make a
// later diff vacuously green.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchreg: read snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchreg: parse %s: %w", path, err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchreg: %s has schema %d, this tool reads schema %d (regenerate the snapshot)",
			path, s.Schema, SchemaVersion)
	}
	if len(s.Kernels) == 0 {
		return nil, fmt.Errorf("benchreg: %s contains no kernel records", path)
	}
	seen := make(map[string]bool, len(s.Kernels))
	for _, k := range s.Kernels {
		if seen[k.Key()] {
			return nil, fmt.Errorf("benchreg: %s: duplicate kernel key %q", path, k.Key())
		}
		seen[k.Key()] = true
	}
	return &s, nil
}

// index maps kernel keys to records for diffing.
func (s *Snapshot) index() map[string]Record {
	m := make(map[string]Record, len(s.Kernels))
	for _, k := range s.Kernels {
		m[k.Key()] = k
	}
	return m
}
