package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"finbench"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodePrice(t *testing.T, data []byte) *PriceResponse {
	t.Helper()
	var out PriceResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding response: %v (%s)", err, data)
	}
	return &out
}

// verifyAgainstLibrary recomputes every result from the response's
// effective method/config and requires bit-equality — the protocol's core
// guarantee. Closed-form responses recompute through a 1-option
// LevelAdvanced batch (composition independence makes that equal to any
// coalesced mega-batch); scalar-engine responses through finbench.Price.
func verifyAgainstLibrary(t *testing.T, mkt finbench.Market, req *PriceRequest, resp *PriceResponse) {
	t.Helper()
	method, err := ParseMethod(resp.Method)
	if err != nil {
		t.Fatalf("response method: %v", err)
	}
	cfg := resp.Config.ToConfig()
	for i := range req.Options {
		o := req.Options[i]
		var want, wantStdErr float64
		if method == finbench.ClosedForm {
			b := finbench.NewBatch(1)
			b.Spots[0], b.Strikes[0], b.Expiries[0] = o.Spot, o.Strike, o.Expiry
			if err := finbench.PriceBatch(b, mkt, finbench.LevelAdvanced); err != nil {
				t.Fatal(err)
			}
			if o.Type == "put" {
				want = b.Puts[0]
			} else {
				want = b.Calls[0]
			}
		} else {
			res, err := finbench.Price(o.ToOption(), mkt, method, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, wantStdErr = res.Price, res.StdErr
		}
		got := resp.Results[i]
		if got.Price != want || got.StdErr != wantStdErr {
			t.Errorf("option %d (%s %v): server (%v,%v) != library (%v,%v)",
				i, resp.Method, o, got.Price, got.StdErr, want, wantStdErr)
		}
	}
}

func TestPriceClosedFormBitMatchesLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := &PriceRequest{Options: []WireOption{
		{Type: "call", Spot: 100, Strike: 105, Expiry: 0.5},
		{Type: "put", Spot: 90, Strike: 100, Expiry: 1.25},
		{Spot: 120, Strike: 100, Expiry: 2},
	}}
	resp, body := postJSON(t, ts.URL+"/price", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	pr := decodePrice(t, body)
	if pr.Engine != "batch-advanced" {
		t.Errorf("engine = %q, want batch-advanced", pr.Engine)
	}
	if len(pr.Results) != len(req.Options) {
		t.Fatalf("got %d results, want %d", len(pr.Results), len(req.Options))
	}
	verifyAgainstLibrary(t, s.cfg.Market, req, pr)
}

func TestPriceHeavyMethodsBitMatchLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []PriceRequest{
		{Method: "binomial-tree", Options: []WireOption{
			{Type: "put", Style: "american", Spot: 100, Strike: 110, Expiry: 1},
			{Type: "call", Spot: 100, Strike: 95, Expiry: 0.5},
		}, Config: WireConfig{BinomialSteps: 256}},
		{Method: "crank-nicolson", Options: []WireOption{
			{Type: "put", Style: "american", Spot: 90, Strike: 100, Expiry: 1},
		}, Config: WireConfig{GridPoints: 128, TimeSteps: 200}},
		{Method: "trinomial-tree", Options: []WireOption{
			{Type: "call", Spot: 100, Strike: 100, Expiry: 0.75},
		}, Config: WireConfig{BinomialSteps: 256}},
		{Method: "monte-carlo", Options: []WireOption{
			{Type: "call", Spot: 100, Strike: 100, Expiry: 0.5},
		}, Config: WireConfig{MCPaths: 16384, Seed: 42}},
	}
	for i := range cases {
		req := &cases[i]
		resp, body := postJSON(t, ts.URL+"/price", req)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", req.Method, resp.StatusCode, body)
		}
		pr := decodePrice(t, body)
		if pr.Engine != "scalar" {
			t.Errorf("%s: engine = %q, want scalar", req.Method, pr.Engine)
		}
		verifyAgainstLibrary(t, s.cfg.Market, req, pr)
	}
}

// TestCoalescingMergesConcurrentRequests drives many small concurrent
// requests through a wide coalescing window and checks (a) at least one
// response was actually coalesced and (b) every response still bit-matches
// the library.
func TestCoalescingMergesConcurrentRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{CoalesceWindow: 20 * time.Millisecond})
	const clients = 16
	var wg sync.WaitGroup
	coalesced := make([]bool, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := &PriceRequest{Options: []WireOption{
				{Type: "call", Spot: 100 + float64(c), Strike: 100, Expiry: 0.5},
				{Type: "put", Spot: 100, Strike: 95 + float64(c), Expiry: 1},
			}}
			data, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/price", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs[c] = err
				return
			}
			if resp.StatusCode != 200 {
				errs[c] = fmt.Errorf("status %d: %s", resp.StatusCode, buf.Bytes())
				return
			}
			var pr PriceResponse
			if err := json.Unmarshal(buf.Bytes(), &pr); err != nil {
				errs[c] = err
				return
			}
			coalesced[c] = pr.Coalesced
			verifyAgainstLibrary(t, s.cfg.Market, req, &pr)
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	anyCoalesced := false
	for _, c := range coalesced {
		anyCoalesced = anyCoalesced || c
	}
	if !anyCoalesced {
		t.Error("no response was coalesced despite 16 concurrent clients and a 20ms window")
	}
	snap := s.co.Snapshot()
	if snap.CoalescedTickets == 0 {
		t.Errorf("coalescer counters show no coalesced tickets: %+v", snap)
	}
}

func TestDeadlineExceededReturns408(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := &PriceRequest{
		Method:     "monte-carlo",
		Options:    []WireOption{{Type: "call", Spot: 100, Strike: 100, Expiry: 0.5}},
		Config:     WireConfig{MCPaths: 1 << 22},
		DeadlineMS: 1,
	}
	resp, body := postJSON(t, ts.URL+"/price", req)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408: %s", resp.StatusCode, body)
	}
}

func TestDrainRefusesNewWorkAndCompletes(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	req := &PriceRequest{Options: []WireOption{{Spot: 100, Strike: 100, Expiry: 1}}}
	resp, body := postJSON(t, ts.URL+"/price", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status after drain = %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", hr.StatusCode)
	}
}

func TestRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, Config{Rate: 1, Burst: 1})
	req := &PriceRequest{Options: []WireOption{{Spot: 100, Strike: 100, Expiry: 1}}}
	resp1, _ := postJSON(t, ts.URL+"/price", req)
	if resp1.StatusCode != 200 {
		t.Fatalf("first request: %d", resp1.StatusCode)
	}
	resp2, _ := postJSON(t, ts.URL+"/price", req)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp2.StatusCode)
	}
}

func TestStatszShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := &PriceRequest{Options: []WireOption{{Spot: 100, Strike: 100, Expiry: 1}}}
	if resp, _ := postJSON(t, ts.URL+"/price", req); resp.StatusCode != 200 {
		t.Fatalf("price: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests["price"] != 1 {
		t.Errorf("price requests = %d, want 1", snap.Requests["price"])
	}
	if snap.Codes["200"] == 0 {
		t.Error("no 200s counted")
	}
	if len(snap.Sched) == 0 {
		t.Error("sched counters missing")
	}
	if snap.LatencyUS["closed-form"].Count != 1 {
		t.Errorf("closed-form latency count = %d, want 1", snap.LatencyUS["closed-form"].Count)
	}
	if snap.MaxUnits <= 0 {
		t.Error("max_units not reported")
	}
}

func TestGreeksMatchesLibrary(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := &GreeksRequest{Options: []WireOption{
		{Type: "call", Spot: 100, Strike: 105, Expiry: 0.5},
		{Type: "put", Spot: 100, Strike: 95, Expiry: 1},
	}}
	resp, body := postJSON(t, ts.URL+"/greeks", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var gr GreeksResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	for i := range req.Options {
		o := req.Options[i]
		g, err := finbench.ComputeGreeks(o.ToOption(), s.cfg.Market)
		if err != nil {
			t.Fatal(err)
		}
		wantDelta := g.DeltaCall
		if o.Type == "put" {
			wantDelta = g.DeltaPut
		}
		if gr.Results[i].Delta != wantDelta || gr.Results[i].Gamma != g.Gamma {
			t.Errorf("option %d greeks mismatch: %+v", i, gr.Results[i])
		}
	}
}

func TestBadRequests400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []string{
		`{}`,             // no options
		`{"options":[]}`, // empty options
		`{"options":[{"spot":-1,"strike":1,"expiry":1}]}`,                                          // negative spot
		`{"method":"nope","options":[{"spot":1,"strike":1,"expiry":1}]}`,                           // unknown method
		`{"method":"monte-carlo","options":[{"style":"american","spot":1,"strike":1,"expiry":1}]}`, // MC american
		`not json`,
	}
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/price", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestAdmissionSemaphore(t *testing.T) {
	a := newAdmission(100)
	got, ok := a.acquire(60, 0)
	if !ok || got != 60 {
		t.Fatalf("first acquire: %d, %v", got, ok)
	}
	if _, ok := a.acquire(60, 0); ok {
		t.Fatal("second acquire of 60/100 should fail with zero wait")
	}
	// A bounded wait succeeds once the first holder releases.
	done := make(chan bool)
	go func() {
		_, ok := a.acquire(60, time.Second)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	a.release(60)
	if !<-done {
		t.Fatal("waiter was not granted after release")
	}
	a.release(60)
	if a.inFlight() != 0 {
		t.Fatalf("inFlight = %d, want 0", a.inFlight())
	}
	// Oversized requests clamp to the budget instead of deadlocking.
	got, ok = a.acquire(1<<40, 0)
	if !ok || got != 100 {
		t.Fatalf("oversized acquire: %d, %v", got, ok)
	}
	a.release(got)
}

func TestDegradeHysteresis(t *testing.T) {
	// Built without the ticker goroutine so evaluate() calls below can't
	// race a real window swap.
	d := &degrader{enabled: true}
	// Window of 30% shed turns degrade on.
	for i := 0; i < 70; i++ {
		d.noteAdmit()
	}
	for i := 0; i < 30; i++ {
		d.noteShed()
	}
	d.evaluate()
	if !d.active() {
		t.Fatal("degrade did not engage at 30% shed")
	}
	// A 5% window keeps it on (hysteresis band)...
	for i := 0; i < 95; i++ {
		d.noteAdmit()
	}
	for i := 0; i < 5; i++ {
		d.noteShed()
	}
	d.evaluate()
	if !d.active() {
		t.Fatal("degrade flapped off inside the hysteresis band")
	}
	// ...and a clean window turns it off.
	for i := 0; i < 100; i++ {
		d.noteAdmit()
	}
	d.evaluate()
	if d.active() {
		t.Fatal("degrade did not disengage after a clean window")
	}
	if got := d.flips.Load(); got != 2 {
		t.Errorf("transitions = %d, want 2", got)
	}
}

// fillWindow records shed shed-outcomes and total-shed admits, then
// closes the window.
func fillWindow(d *degrader, total, shed int) {
	for i := 0; i < total-shed; i++ {
		d.noteAdmit()
	}
	for i := 0; i < shed; i++ {
		d.noteShed()
	}
	d.evaluate()
}

// TestDegradeHysteresisBoundaries pins the exact comparison directions at
// the two watermarks: the enter threshold is inclusive (rate >= high
// engages), the exit threshold is inclusive (rate <= low disengages), and
// the band between them preserves the current state in both directions.
func TestDegradeHysteresisBoundaries(t *testing.T) {
	d := &degrader{enabled: true}

	// Exactly at the high watermark (10/100 = degradeHighWater): engages.
	fillWindow(d, 100, int(degradeHighWater*100))
	if !d.active() {
		t.Fatalf("rate exactly %.2f did not engage degrade", degradeHighWater)
	}
	// Just under the high watermark from the ON state: stays on.
	fillWindow(d, 100, int(degradeHighWater*100)-1)
	if !d.active() {
		t.Fatal("rate just under the enter threshold flapped degrade off")
	}
	// Just above the low watermark: still on.
	fillWindow(d, 100, int(degradeLowWater*100)+1)
	if !d.active() {
		t.Fatal("rate just above the exit threshold flapped degrade off")
	}
	// Exactly at the low watermark: disengages.
	fillWindow(d, 100, int(degradeLowWater*100))
	if d.active() {
		t.Fatalf("rate exactly %.2f did not disengage degrade", degradeLowWater)
	}
	// Just under the high watermark from the OFF state: stays off.
	fillWindow(d, 100, int(degradeHighWater*100)-1)
	if d.active() {
		t.Fatal("rate just under the enter threshold engaged degrade")
	}
	if got := d.flips.Load(); got != 2 {
		t.Errorf("transitions = %d, want exactly 2 (one on, one off)", got)
	}
}

// TestDegradeMinSamplesBoundary pins the window-size floor: one outcome
// short of degradeMinSamples is ignored even at 100% shed, and exactly
// degradeMinSamples evaluates.
func TestDegradeMinSamplesBoundary(t *testing.T) {
	d := &degrader{enabled: true}
	fillWindow(d, degradeMinSamples-1, degradeMinSamples-1)
	if d.active() {
		t.Fatal("a sub-minimum window flipped degrade on")
	}
	fillWindow(d, degradeMinSamples, degradeMinSamples)
	if !d.active() {
		t.Fatal("an exactly-minimum fully-shed window did not flip degrade on")
	}
	// A sub-minimum clean window must not flip it back off either.
	fillWindow(d, degradeMinSamples-1, 0)
	if !d.active() {
		t.Fatal("a sub-minimum window flipped degrade off")
	}
}

// TestDegradeNoFlappingUnderOscillation drives windows oscillating right
// around each watermark — the load pattern hysteresis exists for — and
// requires exactly one transition per true crossing, never one per window.
func TestDegradeNoFlappingUnderOscillation(t *testing.T) {
	d := &degrader{enabled: true}
	// Off-state oscillation just below/above the *exit* threshold: the
	// enter threshold is never reached, so degrade must stay off.
	for i := 0; i < 10; i++ {
		fillWindow(d, 100, 1) // 1% — under both watermarks
		fillWindow(d, 100, 9) // 9% — inside the band
	}
	if d.active() || d.flips.Load() != 0 {
		t.Fatalf("off-state oscillation flipped degrade (flips=%d)", d.flips.Load())
	}
	// One true overload crossing…
	fillWindow(d, 100, 25)
	if !d.active() {
		t.Fatal("a 25-percent-shed window did not engage degrade")
	}
	// …then on-state oscillation across the *enter* threshold: 9% and 11%
	// both stay above the exit threshold, so no transition may occur.
	for i := 0; i < 10; i++ {
		fillWindow(d, 100, 9)
		fillWindow(d, 100, 11)
	}
	if !d.active() {
		t.Fatal("on-state oscillation flapped degrade off")
	}
	if got := d.flips.Load(); got != 1 {
		t.Errorf("flips = %d after oscillation, want exactly 1", got)
	}
	// Recovery is a single clean transition.
	fillWindow(d, 100, 0)
	if d.active() || d.flips.Load() != 2 {
		t.Fatalf("clean window: active=%v flips=%d, want off/2", d.active(), d.flips.Load())
	}
}

func TestHealthzShape(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.MaxUnits <= 0 {
		t.Errorf("max_units = %d, want > 0", h.MaxUnits)
	}
	if h.InFlightUnits != 0 || h.QueueDepth != 0 {
		t.Errorf("idle server reports in_flight=%d queue=%d", h.InFlightUnits, h.QueueDepth)
	}

	// Draining: 503, Retry-After, and the body says so.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("draining healthz missing Retry-After")
	}
	var hd HealthResponse
	if err := json.NewDecoder(resp2.Body).Decode(&hd); err != nil {
		t.Fatal(err)
	}
	if hd.Status != "draining" {
		t.Errorf("draining status = %q", hd.Status)
	}
}

func TestApplyDegrade(t *testing.T) {
	base := finbench.Config{BinomialSteps: 1024, GridPoints: 256, TimeSteps: 1000, MCPaths: 262144, Seed: 1}
	m, c := applyDegrade(finbench.MonteCarlo, base, true)
	if m != finbench.MonteCarlo || c.MCPaths != 262144/8 {
		t.Errorf("MC degrade: %v paths=%d", m, c.MCPaths)
	}
	m, _ = applyDegrade(finbench.BinomialTree, base, true)
	if m != finbench.ClosedForm {
		t.Errorf("European binomial should degrade to closed form, got %v", m)
	}
	m, c = applyDegrade(finbench.BinomialTree, base, false)
	if m != finbench.BinomialTree || c.BinomialSteps != 256 {
		t.Errorf("American binomial degrade: %v steps=%d", m, c.BinomialSteps)
	}
	m, c = applyDegrade(finbench.FiniteDifference, base, false)
	if m != finbench.FiniteDifference || c.TimeSteps != 250 {
		t.Errorf("American CN degrade: %v ts=%d", m, c.TimeSteps)
	}
	// Floors hold.
	small := finbench.Config{MCPaths: 5000, BinomialSteps: 100, GridPoints: 64, TimeSteps: 60}
	_, c = applyDegrade(finbench.MonteCarlo, small, true)
	if c.MCPaths != 4096 {
		t.Errorf("MC floor: %d", c.MCPaths)
	}
	_, c = applyDegrade(finbench.BinomialTree, small, false)
	if c.BinomialSteps != 64 {
		t.Errorf("steps floor: %d", c.BinomialSteps)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h hist
	for i := 0; i < 90; i++ {
		h.observe(10 * time.Microsecond) // bucket 4 (8-15us), ceiling 15
	}
	for i := 0; i < 10; i++ {
		h.observe(10 * time.Millisecond)
	}
	if p50 := h.quantile(0.50); p50 != 15 {
		t.Errorf("p50 = %d, want 15", p50)
	}
	if p99 := h.quantile(0.99); p99 < 8192 {
		t.Errorf("p99 = %d, want a millisecond-scale ceiling", p99)
	}
	snap := h.snapshot()
	if snap.Count != 100 {
		t.Errorf("count = %d", snap.Count)
	}
}
