package mathx

import (
	"math"
	"testing"
)

// Fuzz targets double as regression suites: `go test` runs the seed corpus,
// `go test -fuzz=FuzzName` explores.

func FuzzExpLogRoundTrip(f *testing.F) {
	for _, x := range []float64{1e-300, 1e-10, 0.5, 1, 2, 1e10, 1e300} {
		f.Add(x)
	}
	f.Fuzz(func(t *testing.T, x float64) {
		if math.IsNaN(x) || x <= 0 || math.IsInf(x, 0) {
			return
		}
		y := Exp(Log(x))
		if x > 1e-290 && x < 1e290 {
			if math.Abs(y-x) > 1e-12*x {
				t.Fatalf("Exp(Log(%g)) = %g", x, y)
			}
		}
	})
}

func FuzzCNDInverse(f *testing.F) {
	for _, p := range []float64{1e-12, 0.001, 0.25, 0.5, 0.75, 0.999, 1 - 1e-12} {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, p float64) {
		if math.IsNaN(p) || p <= 0 || p >= 1 {
			return
		}
		x := InvCND(p)
		if math.IsNaN(x) {
			t.Fatalf("InvCND(%g) = NaN", p)
		}
		back := CND(x)
		if math.Abs(back-p) > 1e-12*p+1e-15 {
			t.Fatalf("CND(InvCND(%g)) = %g", p, back)
		}
	})
}

func FuzzErfBounds(f *testing.F) {
	for _, x := range []float64{-50, -3, -0.1, 0, 0.1, 3, 50} {
		f.Add(x)
	}
	f.Fuzz(func(t *testing.T, x float64) {
		if math.IsNaN(x) {
			return
		}
		e := Erf(x)
		if e < -1 || e > 1 {
			t.Fatalf("Erf(%g) = %g out of [-1,1]", x, e)
		}
		c := Erfc(x)
		if c < 0 || c > 2 {
			t.Fatalf("Erfc(%g) = %g out of [0,2]", x, c)
		}
		if !math.IsInf(x, 0) && math.Abs(e+c-1) > 1e-12 {
			t.Fatalf("Erf+Erfc = %g at %g", e+c, x)
		}
	})
}
