// Package seeddet holds seeded violations and clean counterparts for the
// seeddet pass. (This package's pseudo import path has no cmd element, so
// the pass applies.)
package seeddet

import (
	"math/rand"
	"time"
)

// BadClockSeed seeds from the wall clock: no two runs draw the same
// sequence.
func BadClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // seeded violation
}

// BadGlobalSource draws from math/rand's process-global source.
func BadGlobalSource() float64 {
	return rand.Float64() // seeded violation
}

// GoodThreadedSeed takes the seed as a parameter. Not flagged.
func GoodThreadedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// GoodClockTiming measures time without seeding anything. Not flagged.
func GoodClockTiming(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// IgnoredJitter deliberately wants wall-clock randomness.
func IgnoredJitter() *rand.Rand {
	// finlint:ignore seeddet backoff jitter, reproducibility not wanted
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
