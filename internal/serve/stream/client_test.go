package stream

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFrameReaderParsesStream(t *testing.T) {
	raw := ": welcome comment\n" +
		"event: hello\ndata: {\"universe\":4}\n\n" +
		"id: 7\nretry: 1000\n" +
		"event: greeks\ndata:{\"seq\":1}\n\n" +
		"data: bare\n\n"
	fr := NewFrameReader(strings.NewReader(raw))

	f, err := fr.Next()
	if err != nil || f.Event != "hello" || string(f.Data) != `{"universe":4}` {
		t.Fatalf("frame 1 = %+v, %v", f, err)
	}
	f, err = fr.Next()
	if err != nil || f.Event != "greeks" || string(f.Data) != `{"seq":1}` {
		t.Fatalf("frame 2 = %+v, %v (id:/retry: must be skipped)", f, err)
	}
	f, err = fr.Next()
	if err != nil || f.Event != "" || string(f.Data) != "bare" {
		t.Fatalf("frame 3 = %+v, %v", f, err)
	}
	if _, err = fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameReaderMultiLineData(t *testing.T) {
	fr := NewFrameReader(strings.NewReader("data: a\ndata: b\n\n"))
	f, err := fr.Next()
	if err != nil || string(f.Data) != "a\nb" {
		t.Fatalf("multi-line data = %q, %v", f.Data, err)
	}
}

// TestFrameReaderRoundTrip: AppendFrame output parses back to the exact
// payload bytes — the relay and verifier depend on byte-for-byte
// fidelity through the framing.
func TestFrameReaderRoundTrip(t *testing.T) {
	payload := []byte(`{"seq":42,"contracts":[{"id":1,"price":3.141592653589793}]}`)
	frame := AppendFrame(nil, EventGreeks, payload)
	f, err := NewFrameReader(bytes.NewReader(frame)).Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Event != EventGreeks || !bytes.Equal(f.Data, payload) {
		t.Fatalf("round trip lost bytes: %q", f.Data)
	}
	// Retention safety: mutating the reader's internals later must not
	// change returned data (Data is freshly allocated).
	frame[len(frame)-3] = 'X'
	if !bytes.Equal(f.Data, payload) {
		t.Fatal("returned Data aliases the input buffer")
	}
}
