package blackscholes

import (
	"math"
	"testing"

	"finbench/internal/workload"
)

// FuzzPriceScalar checks that the closed form never returns NaN, negative
// prices, or arbitrage violations for any valid parameter combination.
func FuzzPriceScalar(f *testing.F) {
	f.Add(100.0, 100.0, 1.0, 0.05, 0.2)
	f.Add(1e-3, 1e3, 10.0, 0.0, 1.5)
	f.Add(500.0, 1.0, 0.01, 0.15, 0.05)
	f.Fuzz(func(t *testing.T, s, x, tt, r, sig float64) {
		if !(s > 1e-6 && s < 1e6) || !(x > 1e-6 && x < 1e6) ||
			!(tt > 1e-4 && tt < 100) || !(r >= 0 && r < 0.5) || !(sig > 1e-3 && sig < 3) {
			return
		}
		mkt := workload.MarketParams{R: r, Sigma: sig}
		call, put := PriceScalar(s, x, tt, mkt)
		if math.IsNaN(call) || math.IsNaN(put) {
			t.Fatalf("NaN price for S=%g X=%g T=%g r=%g sig=%g", s, x, tt, r, sig)
		}
		if call < -1e-9 || put < -1e-9 {
			t.Fatalf("negative price: call=%g put=%g", call, put)
		}
		if call > s*(1+1e-12) {
			t.Fatalf("call %g above spot %g", call, s)
		}
		disc := x * math.Exp(-r*tt)
		if parity := (call - put) - (s - disc); math.Abs(parity) > 1e-6*(1+s+x) {
			t.Fatalf("parity violated by %g", parity)
		}
	})
}
