package montecarlo

import (
	"math"
	"testing"

	"finbench/internal/blackscholes"
)

func TestQMCEuropeanMatchesClosedForm(t *testing.T) {
	bs, _ := blackscholes.PriceScalar(100, 100, 1, mkt)
	res := QMCEuropean(100, 100, 1, 1<<14, 1, 7, mkt)
	if math.Abs(res.Price-bs) > 0.01 {
		t.Fatalf("QMC %g vs BS %g", res.Price, bs)
	}
}

// QMC must converge markedly faster than MC at the same budget: compare
// absolute errors against the closed form.
func TestQMCEuropeanBeatsMC(t *testing.T) {
	const n = 1 << 13
	bs, _ := blackscholes.PriceScalar(100, 105, 0.75, mkt)
	qmc := QMCEuropean(100, 105, 0.75, n, 1, 7, mkt)
	qmcErr := math.Abs(qmc.Price - bs)

	var mcErr float64
	const trials = 5
	for trial := uint64(0); trial < trials; trial++ {
		z := normals(n, 100+trial)
		res := PriceScalarStream(100, 105, 0.75, z, mkt)
		mcErr += math.Abs(res.Price - bs)
	}
	mcErr /= trials
	if qmcErr > mcErr/2 {
		t.Fatalf("QMC err %g not clearly below MC err %g", qmcErr, mcErr)
	}
}

func TestQMCEuropeanShiftStdErr(t *testing.T) {
	res := QMCEuropean(100, 100, 1, 4096, 8, 11, mkt)
	if res.StdErr <= 0 {
		t.Fatal("randomized QMC must report a spread")
	}
	bs, _ := blackscholes.PriceScalar(100, 100, 1, mkt)
	if math.Abs(res.Price-bs) > 6*res.StdErr+1e-3 {
		t.Fatalf("QMC %g +- %g vs BS %g", res.Price, res.StdErr, bs)
	}
}

var asian = AsianOption{S: 100, X: 100, T: 1, Steps: 32}

// MC and QMC must agree on the Asian price within their joint error.
func TestAsianMCAndQMCAgree(t *testing.T) {
	mc := AsianMC(asian, 1<<16, 3, mkt)
	qmc := AsianQMC(asian, 1<<12, 4, 5, mkt)
	tol := 4*(mc.StdErr+qmc.StdErr) + 1e-3
	if math.Abs(mc.Price-qmc.Price) > tol {
		t.Fatalf("MC %g +- %g vs QMC %g +- %g", mc.Price, mc.StdErr, qmc.Price, qmc.StdErr)
	}
}

// Sanity bounds: the arithmetic Asian call is worth less than the European
// call (averaging reduces volatility) and more than zero for ATM.
func TestAsianBounds(t *testing.T) {
	mc := AsianMC(asian, 1<<15, 9, mkt)
	euro, _ := blackscholes.PriceScalar(asian.S, asian.X, asian.T, mkt)
	if mc.Price <= 0 {
		t.Fatalf("ATM Asian call priced at %g", mc.Price)
	}
	if mc.Price >= euro {
		t.Fatalf("Asian %g not below European %g", mc.Price, euro)
	}
}

// The bridge+Sobol pairing must reduce error versus plain MC for the
// path-dependent payoff at matched path counts.
func TestAsianQMCBeatsMC(t *testing.T) {
	const n = 1 << 12
	// Reference price from a large MC run.
	ref := AsianMC(asian, 1<<18, 21, mkt)

	qmc := AsianQMC(asian, n, 4, 31, mkt)
	qmcErr := math.Abs(qmc.Price - ref.Price)

	var mcErr float64
	const trials = 5
	for trial := uint64(0); trial < trials; trial++ {
		mc := AsianMC(asian, n, 40+trial, mkt)
		mcErr += math.Abs(mc.Price - ref.Price)
	}
	mcErr /= trials
	if qmcErr > mcErr {
		t.Fatalf("Asian QMC err %g not below MC err %g", qmcErr, mcErr)
	}
}

func TestAsianDeterministicBySeed(t *testing.T) {
	a := AsianMC(asian, 4096, 5, mkt)
	b := AsianMC(asian, 4096, 5, mkt)
	if a.Price != b.Price {
		t.Fatal("AsianMC not reproducible")
	}
	c := AsianQMC(asian, 1024, 2, 5, mkt)
	d := AsianQMC(asian, 1024, 2, 5, mkt)
	if c.Price != d.Price {
		t.Fatal("AsianQMC not reproducible")
	}
}

func BenchmarkAsianMC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		AsianMC(asian, 4096, 1, mkt)
	}
}

func BenchmarkAsianQMC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		AsianQMC(asian, 2048, 2, 1, mkt)
	}
}
