// Portfolio: price a million-option European book with the batch engine at
// each optimization level, reproducing the paper's optimization ladder
// (Fig. 4) as host wall-clock throughput, then aggregate the book's value
// and delta exposure.
//
//	go run ./examples/portfolio
package main

import (
	"fmt"
	"log"
	"time"

	"finbench"
)

const nOptions = 1_000_000

func main() {
	mkt := finbench.Market{Rate: 0.03, Volatility: 0.25}

	// A synthetic book: strikes laddered around spot, maturities from one
	// month to five years.
	b := finbench.NewBatch(nOptions)
	for i := 0; i < nOptions; i++ {
		b.Spots[i] = 100
		b.Strikes[i] = 60 + float64(i%81)           // 60..140
		b.Expiries[i] = 1.0/12 + float64(i%60)/12.0 // 1m..5y
	}

	fmt.Printf("Pricing %d European options (calls and puts) per level:\n\n", nOptions)
	var calls []float64
	for _, level := range []finbench.OptLevel{
		finbench.LevelBasic, finbench.LevelIntermediate, finbench.LevelAdvanced,
	} {
		start := time.Now()
		if err := finbench.PriceBatch(b, mkt, level); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("  %-14s %8.1f ms  %7.2f Mopts/s\n",
			level, elapsed.Seconds()*1e3, float64(nOptions)/elapsed.Seconds()/1e6)
		calls = b.Calls
	}

	// Aggregate book value and delta (per unit notional).
	var value, delta float64
	for i := 0; i < nOptions; i++ {
		value += calls[i]
		g, err := finbench.ComputeGreeks(finbench.Option{
			Type: finbench.Call, Style: finbench.European,
			Spot: b.Spots[i], Strike: b.Strikes[i], Expiry: b.Expiries[i],
		}, mkt)
		if err != nil {
			log.Fatal(err)
		}
		delta += g.DeltaCall
		if i == 9999 {
			// Greeks for a 10k sample are plenty for the demo.
			delta *= float64(nOptions) / 10000
			break
		}
	}
	fmt.Printf("\nBook value (calls): %.0f   approx. aggregate delta: %.0f shares\n", value, delta)
}
