package stream

import (
	"bufio"
	"bytes"
	"io"
)

// Frame is one parsed SSE frame. Data is the payload with the SSE
// framing stripped, byte-for-byte what the server marshalled — consumers
// (the shard relay, the loadgen verifier) depend on that for the
// bit-reproducibility checks.
type Frame struct {
	Event string
	Data  []byte
}

// FrameReader incrementally parses an SSE byte stream into frames. It
// understands the subset this tier emits (event: and data: lines, one
// frame per blank line) and skips everything else (comments, id:,
// retry:) per the SSE grammar.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader wraps r (typically an http.Response body).
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next blocks until one complete frame arrives, the stream ends (io.EOF
// after a clean close), or the read fails. The returned Data is freshly
// allocated — callers may retain it.
func (fr *FrameReader) Next() (Frame, error) {
	var f Frame
	var sawData bool
	for {
		line, err := fr.br.ReadBytes('\n')
		if len(line) > 0 {
			line = bytes.TrimRight(line, "\r\n")
			switch {
			case len(line) == 0:
				if f.Event != "" || sawData {
					return f, nil
				}
				// Stray separator before any field: keep reading.
			case bytes.HasPrefix(line, []byte("event:")):
				f.Event = string(bytes.TrimSpace(line[len("event:"):]))
			case bytes.HasPrefix(line, []byte("data:")):
				d := line[len("data:"):]
				if len(d) > 0 && d[0] == ' ' {
					d = d[1:]
				}
				if sawData {
					f.Data = append(f.Data, '\n')
				}
				f.Data = append(f.Data, d...)
				sawData = true
			}
		}
		if err != nil {
			return Frame{}, err
		}
	}
}
