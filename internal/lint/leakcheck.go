package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// leakcheckPass enforces three resource-hygiene invariants of the
// serving tier:
//
//  1. Every goroutine launched outside cmd/ must be joined or bounded:
//     its body (or, one call-graph hop deeper, the module function it
//     runs) must signal completion (WaitGroup.Done, a channel send or
//     close) or observe a stop signal (a channel receive — including
//     <-ctx.Done() and select — or ranging a channel). A goroutine with
//     none of these outlives its request: under load shedding that is
//     precisely the orphaned work admission control exists to refuse.
//     cmd/ binaries are exempt — their process-lifetime goroutines are
//     reaped at exit.
//  2. Every resilience.Breaker.Allow call must be bracketed: the same
//     function must also call Success and Failure, so every admitted
//     probe settles the breaker state on some path. A function that
//     Allows without settling strands the half-open state's probe
//     budget and the breaker never closes again.
//  3. Every pooled-freelist Get (the pooledGetPut registry in
//     entrypoints.go) must be paired with its Put in the same function,
//     unless the Get's result is returned directly (ownership transfers
//     to the caller). An unpaired Get quietly demotes the freelist to
//     garbage-collected allocation and the zero-allocation serve path
//     regresses one object per request.
func leakcheckPass() *Pass {
	return &Pass{
		Name:   "leakcheck",
		Doc:    "unjoined/unbounded goroutine, breaker Allow without Success+Failure bracketing, or pooled Get without its Put",
		RunMod: runLeakcheck,
	}
}

func runLeakcheck(m *Module, p *Package, report func(pos token.Pos, msg string)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isCmdPackage(p.Path) {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if !goroutineBounded(m, p, g.Call) {
						report(g.Pos(), "goroutine is neither joined (WaitGroup/channel) nor bounded by a stop channel or context; it outlives the request that launched it")
					}
					return true
				})
			}
			checkBreakerBracketing(p, fd, report)
			checkPoolBracketing(p, fd, report)
		}
	}
}

// goroutineBounded reports whether the goroutine body carries a join or
// stop marker, looking through one level of module-declared callees (so
// `go d.loop()` is judged by loop's body).
func goroutineBounded(m *Module, p *Package, call *ast.CallExpr) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyBounded(m, p, lit.Body, 1)
	}
	for _, fn := range calleeFuncs(p, call) {
		if fi := m.Graph.Funcs[funcKey(fn)]; fi != nil && fi.Decl.Body != nil {
			return bodyBounded(m, fi.Pkg, fi.Decl.Body, 1)
		}
	}
	return false // dynamic target: conservative
}

// bodyBounded scans a function body for join/stop markers, recursing
// depth more levels into module-declared callees.
func bodyBounded(m *Module, p *Package, body *ast.BlockStmt, depth int) bool {
	bounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			bounded = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				bounded = true // channel receive (incl. <-ctx.Done())
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					bounded = true
				}
			}
		case *ast.CallExpr:
			if isBuiltin(p, n, "close") {
				bounded = true
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok {
					if fn.Name() == "Done" && isWaitGroupMethod(fn) {
						bounded = true
						return false
					}
					if depth > 0 {
						if fi := m.Graph.Funcs[funcKey(fn)]; fi != nil && fi.Decl.Body != nil {
							if bodyBounded(m, fi.Pkg, fi.Decl.Body, depth-1) {
								bounded = true
								return false
							}
						}
					}
				}
			} else if id, ok := n.Fun.(*ast.Ident); ok && depth > 0 {
				if fn, ok := p.Info.Uses[id].(*types.Func); ok {
					if fi := m.Graph.Funcs[funcKey(fn)]; fi != nil && fi.Decl.Body != nil {
						if bodyBounded(m, fi.Pkg, fi.Decl.Body, depth-1) {
							bounded = true
							return false
						}
					}
				}
			}
		}
		return !bounded
	})
	return bounded
}

// isWaitGroupMethod reports whether fn is a method of sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func) bool {
	recv := fn.Signature().Recv()
	return recv != nil && types.TypeString(recv.Type(), nil) == "*sync.WaitGroup"
}

// checkBreakerBracketing flags Allow calls in functions that do not also
// call both Success and Failure.
func checkBreakerBracketing(p *Package, fd *ast.FuncDecl, report func(pos token.Pos, msg string)) {
	var allows []token.Pos
	haveSuccess, haveFailure := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		switch funcKey(fn) {
		case breakerType + ".Allow":
			allows = append(allows, sel.Pos())
		case breakerType + ".Success":
			haveSuccess = true
		case breakerType + ".Failure":
			haveFailure = true
		}
		return true
	})
	if len(allows) == 0 || (haveSuccess && haveFailure) {
		return
	}
	for _, pos := range allows {
		report(pos, "breaker.Allow without both Success and Failure in the same function; an admitted probe that never settles strands the half-open budget and the breaker cannot close")
	}
}

// checkPoolBracketing flags calls to pooled-freelist Get entry points
// (the pooledGetPut registry) whose matching Put does not appear in the
// same function. A Get appearing directly inside a return statement is
// exempt: the pooled object is handed to the caller, who owns the Put.
func checkPoolBracketing(p *Package, fd *ast.FuncDecl, report func(pos token.Pos, msg string)) {
	// Collect call expressions whose result is returned directly — those
	// transfer ownership up the stack.
	returned := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if call, ok := res.(*ast.CallExpr); ok {
				returned[call] = true
			}
		}
		return true
	})
	type getCall struct {
		pos token.Pos
		get string
		put string
	}
	var gets []getCall
	puts := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var fn *types.Func
		switch f := call.Fun.(type) {
		case *ast.SelectorExpr:
			fn, _ = p.Info.Uses[f.Sel].(*types.Func)
		case *ast.Ident:
			fn, _ = p.Info.Uses[f].(*types.Func)
		}
		if fn == nil {
			return true
		}
		key := funcKey(fn)
		if put, ok := pooledGetPut[key]; ok && !returned[call] {
			gets = append(gets, getCall{call.Pos(), fn.Name(), put})
		}
		for _, put := range pooledGetPut {
			if key == put {
				puts[key] = true
				break
			}
		}
		return true
	})
	for _, g := range gets {
		if !puts[g.put] {
			report(g.pos, g.get+" without a matching "+shortFuncName(g.put)+" in the same function (or a direct return transferring ownership); the freelist degrades to garbage-collected allocation on the hot path")
		}
	}
}
