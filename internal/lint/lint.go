// Package lint implements finlint, the repo's custom static-analysis
// suite. The paper's parallelization and vectorization contract (one RNG
// stream per worker, allocation-free inner loops, deterministic seeding,
// Sec. III-B) is easy to state in comments and easy to break in a PR;
// finlint turns each invariant into a mechanical check over the module's
// ASTs and type information, in the spirit of the code-modernization
// tooling Cielo et al. (arXiv:2002.08161) apply to many-core codes.
//
// Five passes are intra-procedural (rngshare, hotalloc, floateq,
// seeddet, errcheck). Four are interprocedural, driven by a module-wide
// call graph rooted at the HTTP handlers (see callgraph.go and DESIGN.md
// §8): ctxprop (deadline-blind kernel entry points reachable from a
// handler), detmap (map iteration order leaking into observable output,
// including JSON encodes reached through helpers), leakcheck (unjoined
// goroutines and unbracketed breaker admissions), and hotalloc's
// serve-path mode (allocation sites within a bounded distance of a
// handler). The ninth pass, directive, lints the lint: every ignore
// directive must name a real pass and carry a reason.
//
// The suite is built only on the standard library (go/parser, go/ast,
// go/types with the source importer); it deliberately avoids
// golang.org/x/tools so the gate runs in a hermetic container.
//
// Each invariant is a Pass. Passes are individually toggleable from
// cmd/finlint, emit "file:line: [pass] message" diagnostics, and honor two
// source directives:
//
//	// finlint:ignore <pass> <reason>   suppress <pass> on this line and the next
//	// finlint:hot                      mark the package's loops as hot paths
//
// The reason on an ignore directive is mandatory — the directive pass
// rejects reasonless, bare, or mistyped suppressions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, formatted as "file:line: [pass] message".
type Diagnostic struct {
	Pos  token.Position
	Pass string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pass, d.Msg)
}

// Package is one loaded, type-checked package as seen by the passes.
type Package struct {
	// Path is the import path (or directory-derived pseudo-path for
	// testdata packages outside the module build).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
	// TypeErrors holds non-fatal type-checker complaints; passes run on
	// whatever information survived, and cmd/finlint -v surfaces these.
	TypeErrors []error

	// Hot reports whether any file carries a "finlint:hot" directive,
	// enabling the hotalloc pass.
	Hot bool

	// ignores maps filename -> line -> set of suppressed pass names
	// ("all" suppresses every pass).
	ignores map[string]map[int]map[string]bool

	// Directives records every finlint:ignore directive encountered, for
	// the directive pass (which rejects reasonless suppressions).
	Directives []Directive
}

// Directive is one parsed finlint:ignore comment.
type Directive struct {
	Pos    token.Pos
	Pass   string // "" when the directive names no pass
	Reason string
}

// A Pass checks one invariant over a package. Exactly one of Run and
// RunMod is set: Run is intra-procedural over one package; RunMod
// additionally receives the module context (call graph over every loaded
// package) for the dataflow passes. Findings go through report;
// suppression and formatting are handled by the driver.
type Pass struct {
	Name   string
	Doc    string
	Run    func(p *Package, report func(pos token.Pos, msg string))
	RunMod func(m *Module, p *Package, report func(pos token.Pos, msg string))
}

// Passes returns the full suite in canonical order.
func Passes() []*Pass {
	return []*Pass{
		rngsharePass(),
		hotallocPass(),
		floateqPass(),
		seeddetPass(),
		errcheckPass(),
		ctxpropPass(),
		detmapPass(),
		leakcheckPass(),
		directivePass(),
	}
}

// Config tunes the module-context passes.
type Config struct {
	// HotallocDepth bounds how many call-graph hops from an HTTP handler
	// the interprocedural hotalloc sweep follows; 0 picks
	// DefaultHotallocDepth.
	HotallocDepth int
}

// DefaultHotallocDepth reaches handler -> helper -> coalescer -> batch
// kernel entry on the current serving tier, which is where per-request
// work turns into per-option loops.
const DefaultHotallocDepth = 4

func (c Config) withDefaults() Config {
	if c.HotallocDepth <= 0 {
		c.HotallocDepth = DefaultHotallocDepth
	}
	return c
}

// Module is the whole-run context shared by the call-graph passes: every
// loaded package plus the graph over them. Reachability sweeps are
// computed once, lazily, and shared.
type Module struct {
	Pkgs  []*Package
	Graph *CallGraph
	Cfg   Config

	handlerReach *ReachSet // unbounded, from HTTP handler roots
	hotReach     *ReachSet // bounded by Cfg.HotallocDepth

	// encodeOnce/encodeReach back Module.EncodesJSON (see detmap.go).
	encodeOnce  sync.Once
	encodeReach map[string]bool
}

// NewModule builds the module context (call graph included) over pkgs.
func NewModule(pkgs []*Package, cfg Config) *Module {
	return &Module{Pkgs: pkgs, Graph: BuildCallGraph(pkgs), Cfg: cfg.withDefaults()}
}

// HandlerReach returns the functions reachable from HTTP handler roots,
// unbounded (ctxprop and detmap use this: a deadline or an encode sink
// matters at any depth).
func (m *Module) HandlerReach() *ReachSet {
	if m.handlerReach == nil {
		m.handlerReach = m.Graph.Reach(m.Graph.HTTPHandlerRoots(), -1)
	}
	return m.handlerReach
}

// HotallocReach returns the functions within Cfg.HotallocDepth hops of an
// HTTP handler root (the interprocedural hotalloc scope).
func (m *Module) HotallocReach() *ReachSet {
	if m.hotReach == nil {
		m.hotReach = m.Graph.Reach(m.Graph.HTTPHandlerRoots(), m.Cfg.HotallocDepth)
	}
	return m.hotReach
}

// PassNames returns the canonical pass names, for usage text.
func PassNames() []string {
	all := Passes()
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.Name
	}
	return names
}

// SelectPasses resolves a comma-separated list of pass names ("" or "all"
// means every pass).
func SelectPasses(list string) ([]*Pass, error) {
	list = strings.TrimSpace(list)
	if list == "" || list == "all" {
		return Passes(), nil
	}
	byName := make(map[string]*Pass)
	for _, p := range Passes() {
		byName[p.Name] = p
	}
	var sel []*Pass
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q (have %s)", name, strings.Join(PassNames(), ", "))
		}
		sel = append(sel, p)
	}
	return sel, nil
}

// Run executes the given passes over the packages under the default
// Config and returns the surviving diagnostics sorted by file, line, then
// pass.
func Run(pkgs []*Package, passes []*Pass) []Diagnostic {
	return RunConfig(pkgs, passes, Config{})
}

// RunConfig is Run with explicit module-pass configuration. The module
// context (call graph) is built once, and only when a selected pass needs
// it.
func RunConfig(pkgs []*Package, passes []*Pass, cfg Config) []Diagnostic {
	var mod *Module
	for _, pass := range passes {
		if pass.RunMod != nil {
			mod = NewModule(pkgs, cfg)
			break
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, pass := range passes {
			pass := pass
			report := func(pos token.Pos, msg string) {
				position := pkg.Fset.Position(pos)
				if pkg.suppressed(pass.Name, position) {
					return
				}
				diags = append(diags, Diagnostic{Pos: position, Pass: pass.Name, Msg: msg})
			}
			if pass.RunMod != nil {
				pass.RunMod(mod, pkg, report)
			} else {
				pass.Run(pkg, report)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
	return diags
}

// finishDirectives scans comments for finlint directives; the loader calls
// it once per package after parsing.
func (p *Package) finishDirectives() {
	p.ignores = make(map[string]map[int]map[string]bool)
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				// The tag is either the whole comment or followed by a
				// dash/colon reason; a prose mention ("finlint:hot marks…")
				// must not accidentally tag the package.
				if hot, ok := strings.CutPrefix(text, "finlint:hot"); ok {
					hot = strings.TrimSpace(hot)
					if hot == "" || strings.HasPrefix(hot, "—") || strings.HasPrefix(hot, "-") || strings.HasPrefix(hot, ":") {
						p.Hot = true
					}
					continue
				}
				rest, ok := strings.CutPrefix(text, "finlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					// A bare ignore suppresses nothing; the directive pass
					// reports it as malformed.
					p.Directives = append(p.Directives, Directive{Pos: c.Pos()})
					continue
				}
				pass := fields[0]
				p.Directives = append(p.Directives, Directive{
					Pos:    c.Pos(),
					Pass:   pass,
					Reason: strings.TrimSpace(strings.Join(fields[1:], " ")),
				})
				line := p.Fset.Position(c.Pos()).Line
				m := p.ignores[filename]
				if m == nil {
					m = make(map[int]map[string]bool)
					p.ignores[filename] = m
				}
				// The directive covers its own line (trailing comment) and
				// the next line (comment above the offending statement).
				for _, l := range []int{line, line + 1} {
					if m[l] == nil {
						m[l] = make(map[string]bool)
					}
					m[l][pass] = true
				}
			}
		}
	}
}

func (p *Package) suppressed(pass string, pos token.Position) bool {
	m := p.ignores[pos.Filename]
	if m == nil {
		return false
	}
	set := m[pos.Line]
	return set != nil && (set[pass] || set["all"])
}

// calleeStatic resolves call.Fun to (package path, function name) when the
// callee is a selector on an imported package (pkg.Fn). It returns ok=false
// for method calls, locals, and builtins.
func calleeStatic(p *Package, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pkgName, isPkg := p.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pkgName.Imported().Path(), sel.Sel.Name, true
}

// isBuiltin reports whether call invokes the named builtin (make, append…).
func isBuiltin(p *Package, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := p.Info.Uses[id].(*types.Builtin)
	return isB
}

// withinNode reports whether pos falls inside n's source range.
func withinNode(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}
