package binomial

import (
	"math"
	"testing"

	"finbench/internal/blackscholes"
)

func TestTrinomialConvergesToBlackScholes(t *testing.T) {
	bs, _ := blackscholes.PriceScalar(100, 100, 1, mkt)
	prevErr := math.Inf(1)
	for _, n := range []int{32, 128, 512} {
		got := PriceTrinomial(100, 100, 1, n, mkt)
		err := math.Abs(got - bs)
		if err > 5*bs/float64(n) {
			t.Fatalf("N=%d: trinomial %g vs BS %g", n, got, bs)
		}
		if err > prevErr*1.2 {
			t.Fatalf("N=%d: error %g did not shrink from %g", n, err, prevErr)
		}
		prevErr = err
	}
}

// The trinomial tree must beat the binomial tree's accuracy at equal step
// counts (the extra branch smooths the odd/even oscillation).
func TestTrinomialBeatsBinomialAccuracy(t *testing.T) {
	bs, _ := blackscholes.PriceScalar(100, 103, 0.7, mkt)
	const n = 101 // odd N maximizes binomial oscillation
	binErr := math.Abs(PriceScalar(100, 103, 0.7, n, mkt) - bs)
	triErr := math.Abs(PriceTrinomial(100, 103, 0.7, n, mkt) - bs)
	if triErr > binErr {
		t.Fatalf("trinomial err %g not below binomial err %g at N=%d", triErr, binErr, n)
	}
}

func TestTrinomialProbabilitiesValid(t *testing.T) {
	for _, steps := range []int{16, 256, 2048} {
		p := NewTriParams(1.5, steps, mkt)
		if p.Pu <= 0 || p.Pm <= 0 || p.Pd <= 0 {
			t.Fatalf("steps=%d: probabilities %g %g %g", steps, p.Pu, p.Pm, p.Pd)
		}
		if math.Abs(p.Pu+p.Pm+p.Pd-1) > 1e-12 {
			t.Fatalf("steps=%d: probabilities sum to %g", steps, p.Pu+p.Pm+p.Pd)
		}
	}
}

func TestTrinomialAmericanMatchesBinomial(t *testing.T) {
	for _, tc := range []struct{ s, x float64 }{{100, 100}, {100, 115}, {115, 100}} {
		bin := PriceAmericanPutScalar(tc.s, tc.x, 1, 2048, mkt)
		tri := PriceAmericanPutTrinomial(tc.s, tc.x, 1, 1024, mkt)
		if math.Abs(bin-tri) > 0.01*math.Max(1, bin) {
			t.Fatalf("S=%g X=%g: binomial %g vs trinomial %g", tc.s, tc.x, bin, tri)
		}
	}
}

func TestTrinomialAmericanDominance(t *testing.T) {
	euro := PriceTrinomial(100, 100, 1, 512, mkt) // call: no premium for puts check below
	_ = euro
	_, europut := blackscholes.PriceScalar(100, 110, 1, mkt)
	amer := PriceAmericanPutTrinomial(100, 110, 1, 512, mkt)
	if amer < europut {
		t.Fatalf("American trinomial put %g below European %g", amer, europut)
	}
	if amer < 10 { // intrinsic
		t.Fatalf("American put %g below intrinsic 10", amer)
	}
}

func BenchmarkTrinomial512(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PriceTrinomial(100, 100, 1, 512, mkt)
	}
}
