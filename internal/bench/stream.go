package bench

import (
	"fmt"

	"finbench/internal/serve/stream"
	"finbench/internal/serve/stream/ticker"
)

// streampath: per-tick cost of the streaming Greeks feed — the dirty
// scan over the contract universe plus the worst-movers-first repriced
// mega-batch, driven through a manual hub exactly as the repricing loop
// runs it. The repricing rows gate allocs/op: the tick path runs at the
// feed's interval for the process lifetime, so a new per-tick
// allocation is steady-state garbage the snapshot diff must reject even
// when its wall-clock cost hides inside timing noise. Zero subscribers
// keeps fan-out marshalling out of the measurement — this experiment is
// the pass itself, not the JSON encode.

func init() {
	register(&Experiment{
		ID:          "streampath",
		Title:       "Streaming feed tick path (dirty scan + repricing pass)",
		Units:       "contracts/s",
		Description: "One hub repricing pass per invocation via the manual Step driver: all-dirty passes at 1k and 16k contracts (alloc-gated), plus the no-mover dirty scan. Zero subscribers, so the rows measure the pass, not the encode.",
		Measure:     measureStreamPath,
	})
}

// streamTickRow times one repricing pass per invocation on a manual hub.
// Every pass advances the deterministic market source, so consecutive
// invocations see fresh ticks the way the live loop does; spotThreshold
// <= 0 makes every pass an all-dirty full-universe reprice, while a huge
// threshold isolates the scan (nothing ever dirties after the first
// pass).
func streamTickRow(label string, universe, underlyings int, spotThreshold float64) Row {
	h := stream.New(stream.Config{
		Universe:      universe,
		Underlyings:   underlyings,
		SpotThreshold: spotThreshold,
		VolThreshold:  spotThreshold,
		RateThreshold: spotThreshold,
		// The budget only bounds degradation; keep it far above a real pass
		// so every timed invocation reprices its whole planned set.
		Budget: hubBenchBudget,
	}, nil)
	var st ticker.State
	h.Source().Next(&st)
	h.Step(&st) // untimed first pass: seed the baseline (everything unpriced is dirty)
	return hostRow(label, universe, func() {
		h.Source().Next(&st)
		h.Step(&st)
	})
}

const hubBenchBudget = 1 << 40 // ~18 minutes in nanoseconds: never degrade a timed pass

func measureStreamPath(scale float64) (*Result, error) {
	small := scaleInt(1024, scale, 256)
	large := scaleInt(16384, scale, 1024)

	r := &Result{
		ID:    "streampath",
		Title: fmt.Sprintf("Streaming feed tick path (%d / %d contracts)", small, large),
		Units: "contracts/s",
	}

	// Rows 1-2: the all-dirty repricing pass — the worst tick the feed can
	// see, and the one the per-tick budget is sized against. Gated: this
	// path runs every interval forever.
	for _, n := range []int{small, large} {
		row := streamTickRow(fmt.Sprintf("all-dirty tick pass (%d contracts)", n), n, 64, -1)
		row.GateAllocs = true
		row.Prov = None
		r.Rows = append(r.Rows, row)
	}

	// Row 3: the dirty scan with no movers — the steady-state floor when
	// the walk stays inside every threshold. Not gated separately (same
	// code path as the rows above, minus the batch).
	r.Rows = append(r.Rows, streamTickRow(
		fmt.Sprintf("dirty scan, no movers (%d contracts)", large), large, 64, 1e9))

	r.Notes = append(r.Notes,
		"contracts/s counts universe contracts visited per pass; the all-dirty rows also reprice all of them through the LevelAdvanced mega-batch",
		"the all-dirty rows gate allocs/op: the tick path runs at the feed interval for the process lifetime, so per-tick garbage is a steady-state regression",
		"zero subscribers by construction — fan-out marshalling is excluded, the rows measure the dirty scan and repricing pass alone")
	return r, nil
}
