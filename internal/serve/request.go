package serve

import (
	"finbench"
	"finbench/internal/serve/wire"
)

// The wire types of the pricing API live in internal/serve/wire (shared
// with the shard router and the loadgen client); the serve names are
// aliases so existing callers and tests keep reading naturally. Every
// numeric knob echoes back in the response as the *effective* value
// (after defaulting, clamping, and any degrade-mode substitution), so a
// client can reproduce each price bit-for-bit with the library.

type (
	// WireOption is one option contract on the wire.
	WireOption = wire.Option
	// WireConfig mirrors finbench.Config; zero fields mean "default".
	WireConfig = wire.Config
	// WireResult is one priced option.
	WireResult = wire.Result
	// WireGreeks is one option's sensitivities.
	WireGreeks = wire.Greeks
	// PriceRequest is the POST /price body.
	PriceRequest = wire.PriceRequest
	// PriceResponse is the POST /price 200 body.
	PriceResponse = wire.PriceResponse
	// GreeksRequest is the POST /greeks body.
	GreeksRequest = wire.GreeksRequest
	// GreeksResponse is the POST /greeks 200 body.
	GreeksResponse = wire.GreeksResponse
	// ErrorResponse is the body of every non-200 status.
	ErrorResponse = wire.ErrorResponse
)

// MaxRequestOptions bounds the option count of a single request before any
// server-configured limit applies.
const MaxRequestOptions = wire.MaxRequestOptions

// ParseMethod maps a wire method name to a finbench.Method. An empty name
// selects the closed form.
func ParseMethod(name string) (finbench.Method, error) { return wire.ParseMethod(name) }

// DecodeRequest parses and validates a /price body and resolves its
// method in the same pass (the response echoes the method, so the old
// decode-then-reparse dance dropped the second parse's error on the
// floor). The returned request is pooled — release it with PutRequest.
func DecodeRequest(data []byte) (*PriceRequest, finbench.Method, error) {
	return wire.DecodeRequest(data)
}

// PutRequest returns a request from DecodeRequest to its freelist.
func PutRequest(r *PriceRequest) { wire.PutRequest(r) }

// HealthResponse is the GET /healthz body: liveness plus the load signals
// the shard router scores replicas by. Status is "ok" or "draining";
// draining replicas answer 503 with Retry-After so routers re-route
// instead of counting a crash.
type HealthResponse struct {
	Status        string  `json:"status"`
	InFlightUnits int64   `json:"in_flight_units"`
	MaxUnits      int64   `json:"max_units"`
	QueueDepth    int64   `json:"queue_depth"`
	UptimeS       float64 `json:"uptime_s"`
}
