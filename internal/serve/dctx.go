package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// deadlineCtx is a pooled replacement for context.WithTimeout on the
// request hot path. context.WithTimeout allocates a timerCtx, a timer,
// and a stop closure per call; this recycles one object with one timer
// that lives as long as the pool entry.
//
// The Done channel is a real channel — the pricing kernels fast-path
// `ctx.Done() == nil` as "cancellation disabled", so a lazily-nil Done
// would silently turn deadlines off. The channel is only closed when the
// deadline actually fires (or the parent cancels); release abandons the
// object in that case, because a closed channel cannot signal again.
type deadlineCtx struct {
	parent     context.Context
	deadline   time.Time
	done       chan struct{}
	timer      *time.Timer
	stopParent func() bool // non-nil while parent propagation is registered
	fired      atomic.Bool
}

var dctxPool = sync.Pool{
	New: func() any { return &deadlineCtx{done: make(chan struct{})} },
}

// acquireDeadline returns a context that is done at deadline or when
// parent is cancelled, whichever is first. Release it with release();
// after release the context must not be used.
func acquireDeadline(parent context.Context, deadline time.Time) *deadlineCtx {
	d := dctxPool.Get().(*deadlineCtx)
	d.parent = parent
	d.deadline = deadline
	if d.timer == nil {
		d.timer = time.AfterFunc(time.Until(deadline), d.fire)
	} else {
		d.timer.Reset(time.Until(deadline))
	}
	if pd := parent.Done(); pd != nil {
		select {
		case <-pd:
			// Already cancelled: fire synchronously so the first Err()
			// check observes it (AfterFunc would race via its goroutine).
			d.fire()
		default:
			d.stopParent = context.AfterFunc(parent, d.fire)
		}
	}
	return d
}

func (d *deadlineCtx) fire() {
	if d.fired.CompareAndSwap(false, true) {
		close(d.done)
	}
}

// release returns the context to the pool. If the deadline fired (the
// done channel is closed, or a fire may be in flight), the object is
// abandoned instead — correctness over reuse.
func (d *deadlineCtx) release() {
	reusable := d.timer.Stop()
	if d.stopParent != nil {
		if !d.stopParent() {
			reusable = false
		}
		d.stopParent = nil
	}
	d.parent = nil
	if !reusable || d.fired.Load() {
		return
	}
	dctxPool.Put(d)
}

// expired reports whether the deadline has passed or the parent was
// cancelled. Unlike Err it also consults the wall clock, so a handler
// polling between work items observes an expired deadline even before
// the timer goroutine has been scheduled (e.g. a busy single-P runtime).
func (d *deadlineCtx) expired() bool {
	return d.Err() != nil || !time.Now().Before(d.deadline)
}

func (d *deadlineCtx) Deadline() (time.Time, bool) { return d.deadline, true }

func (d *deadlineCtx) Done() <-chan struct{} { return d.done }

func (d *deadlineCtx) Err() error {
	select {
	case <-d.done:
		if p := d.parent; p != nil {
			if err := p.Err(); err != nil {
				return err
			}
		}
		return context.DeadlineExceeded
	default:
		return nil
	}
}

func (d *deadlineCtx) Value(key any) any {
	if p := d.parent; p != nil {
		return p.Value(key)
	}
	return nil
}
