// Package perf provides operation-mix accounting for the finbench kernels.
//
// The paper (Sec. III-B) justifies each optimization level with measured
// instruction mixes from VTune and with analytical performance models
// ("the total computation performed is about 200 ops, while streaming in 24
// bytes writing out 16 bytes for each option").  We reproduce that
// methodology in software: every kernel variant is written against the
// software vector ISA in internal/vec, which reports its dynamic operation
// mix into a Counts.  internal/machine then converts a Counts into a
// predicted execution time for each modelled architecture.
//
// Counts is deliberately a plain value type: kernels accumulate into a local
// Counts (no locks on hot paths) and merge per-goroutine results at the end.
package perf

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Op identifies a class of dynamic operation with a distinct cost on the
// modelled architectures.
type Op int

const (
	// OpVecMul counts vector multiplies (one per SIMD instruction, not per
	// lane).
	OpVecMul Op = iota
	// OpVecAdd counts vector adds/subtracts.
	OpVecAdd
	// OpVecFMA counts fused multiply-adds. On machines without FMA the cost
	// model expands these into a multiply plus an add.
	OpVecFMA
	// OpVecDiv counts vector divides (long-latency, unpipelined on KNC).
	OpVecDiv
	// OpVecMax counts vector max/min/compare/blend operations.
	OpVecMax
	// OpVecMisc counts cheap vector ops: moves, broadcasts, shuffles,
	// swizzles, logical operations.
	OpVecMisc
	// OpVecLoad counts aligned vector loads from the cache hierarchy.
	OpVecLoad
	// OpVecLoadU counts unaligned vector loads (split-line penalty; the
	// paper calls these out for the binomial reference code's Call[j+1]).
	OpVecLoadU
	// OpVecStore counts vector stores.
	OpVecStore
	// OpGather counts vector gathers: element count is width, and the cost
	// model charges per touched cache line (Sec. IV-A3: gathering across 8
	// cache lines leads to a >10x instruction-count increase on KNC).
	OpGather
	// OpScatter counts vector scatters, charged like gathers.
	OpScatter
	// OpGatherNear counts gathers whose lanes span at most two cache lines
	// (e.g. the stride -2 wavefront accesses of GSOR): cheap even on KNC
	// because the lines are L1-resident.
	OpGatherNear
	// OpScatterNear counts near scatters.
	OpScatterNear
	// OpScalar counts scalar ALU/FP operations (loop control is excluded;
	// only real work is counted, as in the paper's flop accounting).
	OpScalar
	// OpScalarLoad counts independent scalar loads (streaming/prefetchable).
	OpScalarLoad
	// OpScalarLoadDep counts dependent or indirect scalar loads (pointer
	// chasing, table lookups feeding the next address or a serial chain).
	// Out-of-order cores hide most of their latency; in-order KNC cannot
	// (the Brownian bridge "stresses the ability of a computing
	// environment to deal with indirection", Sec. II-E).
	OpScalarLoadDep
	// OpScalarChain counts scalar FP operations on a loop-carried serial
	// dependence chain (e.g. the Gauss-Seidel recurrence through u[j-1]):
	// their latency cannot be hidden by issue width, only by SMT, so they
	// cost several cycles each on both architectures. Breaking such chains
	// is precisely what the wavefront vectorization of Fig. 7 buys.
	OpScalarChain
	// OpScalarStore counts scalar stores.
	OpScalarStore
	// OpExp counts exp evaluations (per SIMD call for vector code, per call
	// for scalar code; lane count is folded into the per-op cost).
	OpExp
	// OpLog counts log evaluations.
	OpLog
	// OpSqrt counts square roots.
	OpSqrt
	// OpErf counts error-function evaluations (the SVML-style erf that the
	// optimized Black-Scholes substitutes for cnd).
	OpErf
	// OpCND counts full cumulative-normal-distribution evaluations (the
	// reference Black-Scholes path; costlier than erf).
	OpCND
	// OpInvCND counts inverse-CND evaluations (normal RNG transform).
	OpInvCND
	// OpRNG counts raw uniform random-number generations (one twist+temper
	// per number).
	OpRNG
	numOps
)

var opNames = [numOps]string{
	"vec.mul", "vec.add", "vec.fma", "vec.div", "vec.max", "vec.misc",
	"vec.load", "vec.loadu", "vec.store", "vec.gather", "vec.scatter",
	"vec.gather2", "vec.scatter2",
	"scalar.op", "scalar.load", "scalar.loaddep", "scalar.chain", "scalar.store",
	"math.exp", "math.log", "math.sqrt", "math.erf", "math.cnd",
	"math.invcnd", "rng.uniform",
}

// String returns the short mnemonic for the op class.
func (o Op) String() string {
	if o < 0 || o >= numOps {
		return fmt.Sprintf("perf.Op(%d)", int(o))
	}
	return opNames[o]
}

// NumOps is the number of distinct operation classes.
const NumOps = int(numOps)

// Counts is a dynamic operation mix: how many operations of each class a
// kernel executed, plus the memory traffic it generated beyond the cache
// hierarchy.
type Counts struct {
	N [NumOps]uint64

	// BytesRead is traffic streamed in from DRAM (after the modelled cache;
	// kernels report compulsory traffic, i.e. working set actually read).
	BytesRead uint64
	// BytesWritten is traffic streamed out to DRAM. Streaming stores are
	// assumed (Sec. IV-A3), so written lines are not also read.
	BytesWritten uint64

	// Width is the SIMD width the kernel was compiled for (4 on SNB-EP,
	// 8 on KNC). Zero means scalar-only code.
	Width int

	// Items is the number of work items (options, paths, ...) the counts
	// cover; used to scale a profiled sample up to a full workload.
	Items uint64
}

// Add accumulates n occurrences of op.
func (c *Counts) Add(op Op, n uint64) { c.N[op] += n }

// Get returns the count for op.
func (c *Counts) Get(op Op) uint64 { return c.N[op] }

// AddBytes accumulates DRAM traffic.
func (c *Counts) AddBytes(read, written uint64) {
	c.BytesRead += read
	c.BytesWritten += written
}

// Merge adds other into c (for combining per-goroutine counters).
func (c *Counts) Merge(other Counts) {
	for i := range c.N {
		c.N[i] += other.N[i]
	}
	c.BytesRead += other.BytesRead
	c.BytesWritten += other.BytesWritten
	c.Items += other.Items
	if c.Width == 0 {
		c.Width = other.Width
	}
}

// Scale multiplies every count and byte figure by f. It is used to
// extrapolate a profiled sample (Items work items) to a full workload.
func (c *Counts) Scale(f float64) {
	for i := range c.N {
		c.N[i] = uint64(float64(c.N[i])*f + 0.5)
	}
	c.BytesRead = uint64(float64(c.BytesRead)*f + 0.5)
	c.BytesWritten = uint64(float64(c.BytesWritten)*f + 0.5)
	c.Items = uint64(float64(c.Items)*f + 0.5)
}

// PerItem returns a copy of c scaled down to a single work item.
func (c Counts) PerItem() Counts {
	out := c
	if c.Items > 1 {
		out.Scale(1 / float64(c.Items))
		out.Items = 1
	}
	return out
}

// Total returns the total dynamic operation count across all classes.
func (c Counts) Total() uint64 {
	var t uint64
	for _, n := range c.N {
		t += n
	}
	return t
}

// FLOPs estimates the floating-point operation count represented by the mix,
// counting each vector op as Width lane-operations and an FMA as two flops.
// Transcendentals are charged at their polynomial flop equivalents, matching
// how the paper counts "ops" for its Black-Scholes bound (~200 ops/option).
func (c Counts) FLOPs() uint64 {
	w := uint64(c.Width)
	if w == 0 {
		w = 1
	}
	var f uint64
	f += (c.N[OpVecMul] + c.N[OpVecAdd] + c.N[OpVecDiv] + c.N[OpVecMax]) * w
	f += c.N[OpVecFMA] * 2 * w
	f += c.N[OpScalar] + c.N[OpScalarChain]
	// Polynomial-equivalent flop weights for transcendentals; these are
	// already counted per element (internal/vec records lane counts), so
	// no width factor applies.
	f += c.N[OpExp] * 15
	f += c.N[OpLog] * 18
	f += c.N[OpSqrt] * 6
	f += c.N[OpErf] * 20
	f += c.N[OpCND] * 30
	f += c.N[OpInvCND] * 30
	return f
}

// ArithmeticIntensity returns flops per DRAM byte, the roofline x-axis.
// It returns +Inf when no DRAM traffic was recorded.
func (c Counts) ArithmeticIntensity() float64 {
	b := c.BytesRead + c.BytesWritten
	if b == 0 {
		return math.Inf(1)
	}
	return float64(c.FLOPs()) / float64(b)
}

// Map renders the mix as a flat name->count map for serialization (the
// benchreg snapshot form). Zero classes are omitted; DRAM traffic, item
// count, and SIMD width ride along under reserved keys that cannot
// collide with op mnemonics (none contain "bytes." or "meta.").
func (c Counts) Map() map[string]uint64 {
	out := make(map[string]uint64)
	for i := 0; i < NumOps; i++ {
		if c.N[i] > 0 {
			out[Op(i).String()] = c.N[i]
		}
	}
	if c.BytesRead > 0 {
		out["bytes.read"] = c.BytesRead
	}
	if c.BytesWritten > 0 {
		out["bytes.written"] = c.BytesWritten
	}
	if c.Items > 0 {
		out["meta.items"] = c.Items
	}
	if c.Width > 0 {
		out["meta.width"] = uint64(c.Width)
	}
	return out
}

// SchedStats describes the parallel substrate's scheduling behavior: how
// the persistent fork-join pool in internal/parallel dispatched work. It
// lives here (rather than in internal/parallel) for the same reason Counts
// does — it is a plain accounting value that rides along in benchreg
// snapshots, recording *how* a throughput number was scheduled alongside
// the number itself.
type SchedStats struct {
	// Jobs counts parallel regions that actually forked onto the pool.
	Jobs uint64
	// Serial counts regions that collapsed to one worker and ran inline
	// on the calling goroutine (no queue traffic at all).
	Serial uint64
	// Dispatched counts chunk tasks enqueued for other goroutines
	// (slots beyond the submitter's own slot 0).
	Dispatched uint64
	// Handoffs counts dispatched tasks executed by parked pool workers.
	Handoffs uint64
	// Steals counts dispatched tasks reclaimed and executed by a
	// submitting goroutine while it joined its own region. After all
	// regions complete, Handoffs + Steals == Dispatched.
	Steals uint64
	// Workers is the pool's current helper-worker count (a level, not a
	// counter; Delta keeps the newer value).
	Workers uint64
}

// Delta returns the counter increments from prev to s (Workers is carried
// from s). Use it to attribute scheduling activity to a code region by
// snapshotting before and after.
func (s SchedStats) Delta(prev SchedStats) SchedStats {
	return SchedStats{
		Jobs:       s.Jobs - prev.Jobs,
		Serial:     s.Serial - prev.Serial,
		Dispatched: s.Dispatched - prev.Dispatched,
		Handoffs:   s.Handoffs - prev.Handoffs,
		Steals:     s.Steals - prev.Steals,
		Workers:    s.Workers,
	}
}

// Map renders the stats as a flat name->count map for serialization (the
// benchreg snapshot form). Zero fields are kept: a zero Handoffs next to a
// nonzero Dispatched is itself informative.
func (s SchedStats) Map() map[string]uint64 {
	return map[string]uint64{
		"pool.jobs":       s.Jobs,
		"pool.serial":     s.Serial,
		"pool.dispatched": s.Dispatched,
		"pool.handoffs":   s.Handoffs,
		"pool.steals":     s.Steals,
		"pool.workers":    s.Workers,
	}
}

// String renders the stats compactly for logs and tables.
func (s SchedStats) String() string {
	return fmt.Sprintf("jobs=%d serial=%d dispatched=%d handoffs=%d steals=%d workers=%d",
		s.Jobs, s.Serial, s.Dispatched, s.Handoffs, s.Steals, s.Workers)
}

// String renders a compact human-readable mix, omitting zero classes and
// sorting by count (largest first) so profiles read like a VTune hot list.
func (c Counts) String() string {
	type kv struct {
		op Op
		n  uint64
	}
	var list []kv
	for i := 0; i < NumOps; i++ {
		if c.N[i] > 0 {
			list = append(list, kv{Op(i), c.N[i]})
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].n > list[j].n })
	var b strings.Builder
	fmt.Fprintf(&b, "items=%d width=%d", c.Items, c.Width)
	for _, e := range list {
		fmt.Fprintf(&b, " %s=%d", e.op, e.n)
	}
	if c.BytesRead+c.BytesWritten > 0 {
		fmt.Fprintf(&b, " rd=%dB wr=%dB", c.BytesRead, c.BytesWritten)
	}
	return b.String()
}
