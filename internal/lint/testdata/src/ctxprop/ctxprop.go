// Package ctxprop seeds deadline-blind kernel entry calls on an HTTP
// handler path. The handler-shaped functions are call-graph roots; the
// plain finbench entry points reached from them must be flagged, while
// identical calls in unreachable functions must not.
package ctxprop

import (
	"context"
	"net/http"

	"finbench"
	"finbench/internal/serve/pricecache"
)

// Handler is an HTTP handler by signature shape, hence a root.
func Handler(w http.ResponseWriter, r *http.Request) {
	priceOne(r.Context())
	priceMany()
	simulate()
}

// priceOne is one hop from the handler and calls the deadline-blind
// scalar entry point.
func priceOne(ctx context.Context) {
	var o finbench.Option
	var m finbench.Market
	_, _ = finbench.Price(o, m, 0, nil) // seeded violation
	_ = ctx
}

// priceMany calls the deadline-blind batch entry point.
func priceMany() {
	b := finbench.NewBatch(4)
	var m finbench.Market
	_ = finbench.PriceBatch(b, m, 0) // seeded violation
}

// simulate reaches a kernel entry with no cancellable variant at all.
func simulate() {
	ps, err := finbench.NewPathSimulator(8, 1.0, 1)
	if err != nil {
		return
	}
	var m finbench.Market
	_ = ps.SimulateTerminal(4, 100, m) // seeded violation
}

// GoodCtxHandler uses the context-propagating variants: clean.
func GoodCtxHandler(w http.ResponseWriter, r *http.Request) {
	var o finbench.Option
	var m finbench.Market
	_, _ = finbench.PriceCtx(r.Context(), o, m, 0, nil)
	b := finbench.NewBatch(4)
	_ = finbench.PriceBatchCtx(r.Context(), b, m, 0)
}

// OfflineTool calls the plain entry point but is unreachable from any
// handler (the batch-tool/benchmark shape): clean.
func OfflineTool() {
	var o finbench.Option
	var m finbench.Market
	_, _ = finbench.Price(o, m, 0, nil)
}

// warmupHandler primes caches before serving; the suppression records
// why the deadline-blind call is deliberate.
func warmupHandler(w http.ResponseWriter, r *http.Request) {
	var o finbench.Option
	var m finbench.Market
	// finlint:ignore ctxprop warmup priming outside the request latency contract
	_, _ = finbench.Price(o, m, 0, nil)
}

// sharedCache stands in for a server's response cache.
var sharedCache = pricecache.New(1<<20, 0)

// CacheHandler reaches a deadline-blind kernel entry through a
// singleflight compute closure. The closure body is attributed to the
// function that lexically encloses it, so the call is handler-reachable
// and must be flagged: a cache-miss leader that ignores its ctx keeps
// pricing for a client that has already given up, while the waiters
// parked on the flight correctly time out on their own deadlines.
func CacheHandler(w http.ResponseWriter, r *http.Request) {
	var o finbench.Option
	var m finbench.Market
	key := pricecache.Digest("closed-form", 0, 0, pricecache.Params{}, nil)
	_, _, _ = sharedCache.Do(r.Context(), key, func(ctx context.Context) ([]byte, bool, error) {
		_, err := finbench.Price(o, m, 0, nil) // seeded violation
		return nil, false, err
	})
}

// GoodCacheHandler propagates the compute closure's ctx into the kernel:
// the leader's work dies with the leader's deadline. Clean.
func GoodCacheHandler(w http.ResponseWriter, r *http.Request) {
	var o finbench.Option
	var m finbench.Market
	key := pricecache.Digest("closed-form", 0, 0, pricecache.Params{}, nil)
	_, _, _ = sharedCache.Do(r.Context(), key, func(ctx context.Context) ([]byte, bool, error) {
		_, err := finbench.PriceCtx(ctx, o, m, 0, nil)
		return nil, false, err
	})
}

// GridHandler reaches the deadline-blind grid entry point — the scenario
// engine's kernel. A scenario request is the serving tier's largest unit
// of work (cells x positions pricings), so a handler that cannot cancel
// a grid evaluation keeps the whole surface running after the client's
// deadline has passed.
func GridHandler(w http.ResponseWriter, r *http.Request) {
	b := finbench.NewBatch(4)
	rows := []finbench.GridRow{{Scale: 1}}
	_ = finbench.PriceBatchGrid(b, rows, func(row int, calls, puts []float64) error { // seeded violation
		return nil
	})
}

// GoodGridHandler evaluates the grid through the cancellable variant:
// the row loop checks the request context between rows. Clean.
func GoodGridHandler(w http.ResponseWriter, r *http.Request) {
	b := finbench.NewBatch(4)
	rows := []finbench.GridRow{{Scale: 1}}
	_ = finbench.PriceBatchGridCtx(r.Context(), b, rows, func(row int, calls, puts []float64) error {
		return nil
	})
}
