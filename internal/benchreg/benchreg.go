// Package benchreg is the continuous-benchmarking layer: it turns the
// one-shot wall-clock timings of internal/bench into a durable, diffable
// performance record.
//
// The paper's contribution is a set of measured per-kernel throughput
// numbers (Figs. 4-6, Table II) and the "Ninja gap" they imply; keeping a
// reproduction honest therefore means keeping a trajectory of the same
// measurements over the life of the repo. benchreg provides the three
// pieces that makes that possible:
//
//   - Measure: a warmup-plus-k-repetitions timing harness that reports the
//     median and MAD (median absolute deviation) of each kernel's wall
//     time and throughput, instead of a single noisy sample. The median is
//     robust to scheduler hiccups; the MAD bounds the run's own noise so a
//     later comparison can tell drift from jitter.
//   - Snapshot: a schema-versioned JSON record (BENCH_<n>.json) holding
//     every registered experiment's per-kernel Sample, the perf.Counts op
//     mix of its best-optimized kernel, and an environment fingerprint
//     (Go version, GOMAXPROCS, CPU model) so snapshots from different
//     hosts are never silently compared as equals.
//   - Diff/Gate: kernel-by-kernel comparison of two snapshots with a
//     noise-aware regression rule — a kernel regresses only when its
//     median throughput drops by more than MaxSlowdown AND the drop
//     exceeds MADFactor x the larger MAD of the two runs.
//
// The package deliberately does not import internal/bench: it is a generic
// harness over (items, func()) kernels plus plain records, and
// internal/bench adapts its experiment registry onto it (bench.Collect).
// That keeps the import direction acyclic while letting bench's own timeIt
// route through the same repetition logic, so interactive `finbench run
// -mode measure` tables and committed snapshots share one methodology.
package benchreg

// SchemaVersion is bumped whenever the snapshot JSON layout changes
// incompatibly; readers refuse snapshots from a different schema rather
// than diffing fields that silently changed meaning. Schema 2 added
// allocs_per_op/gate_allocs to kernel records; a schema-1 snapshot
// would diff as "allocations unknown", which the gate must not treat as
// zero.
const SchemaVersion = 2

// Snapshot is one complete benchmark run: every measured kernel's timing
// record plus the environment it ran in.
type Snapshot struct {
	// Schema is the snapshot layout version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// CreatedAt is an RFC 3339 wall-clock stamp. It is set by cmd/benchreg
	// (never by library code, keeping the library deterministic) and is
	// informational only: diffs ignore it.
	CreatedAt string `json:"created_at,omitempty"`
	// Mode names the sampling preset ("short" or "full").
	Mode string `json:"mode,omitempty"`
	// Scale is the workload scale the experiments ran at.
	Scale float64 `json:"scale"`
	// Opts is the sampling configuration used for every kernel.
	Opts Opts `json:"opts"`
	// Env fingerprints the host; Diff downgrades regressions to warnings
	// when two snapshots' fingerprints differ.
	Env Env `json:"env"`
	// CalibOpsPerSec is the throughput of the fixed pure-ALU calibration
	// kernel (Calibrate) on this run. Because the kernel touches no
	// memory, its speed tracks only the machine's effective CPU speed
	// (frequency scaling, cgroup throttling, noisy neighbors); check
	// divides it out so a uniformly slower run does not read as a
	// uniform regression.
	CalibOpsPerSec float64 `json:"calib_ops_per_sec,omitempty"`
	// Kernels holds one record per measured (experiment, label) pair.
	Kernels []Record `json:"kernels"`
	// Mixes maps experiment ID to the perf.Counts op mix of its
	// best-optimized kernel (perf.Counts.Map form), recording *why* the
	// throughput is what it is alongside the number itself.
	Mixes map[string]map[string]uint64 `json:"mixes,omitempty"`
	// Sched is the parallel pool's scheduling-counter delta across the
	// whole collection run (perf.SchedStats.Map form): fork-join jobs,
	// serial fast-path regions, and how dispatched tasks split between
	// worker handoffs and helping-join steals. Informational only — diffs
	// never gate on it.
	Sched map[string]uint64 `json:"sched,omitempty"`
}

// Record is the durable form of one kernel's Sample.
type Record struct {
	// Experiment is the bench registry ID (fig4, tab2, ...).
	Experiment string `json:"experiment"`
	// Label is the row label within the experiment ("Advanced (VML batch)").
	Label string `json:"label"`
	// Units names the throughput unit (options/s, paths/s, ...).
	Units string `json:"units"`
	// Items is the number of work items one kernel invocation processes.
	Items int `json:"items"`
	// Reps is the number of timed repetitions behind the medians.
	Reps int `json:"reps"`
	// MedianSec and MADSec summarize wall time per kernel invocation.
	MedianSec float64 `json:"median_sec"`
	MADSec    float64 `json:"mad_sec"`
	// OpsPerSec and OpsMAD summarize throughput (Items per second) across
	// the repetitions.
	OpsPerSec float64 `json:"ops_per_sec"`
	OpsMAD    float64 `json:"ops_mad"`
	// AllocsPerOp is the median heap allocations per kernel invocation.
	// It is machine-independent (same binary, same count), so the diff
	// gate compares it without calibration scaling or a MAD noise band.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// GateAllocs marks records whose allocation count is a serving-tier
	// contract (one invocation = one request): the gate fails the check
	// when it grows. Kernel-throughput records leave it false — their
	// invocations allocate working sets proportional to Items, which is
	// a property of the workload, not a per-request budget.
	GateAllocs bool `json:"gate_allocs,omitempty"`
}

// Key identifies a kernel across snapshots: experiment ID plus row label.
func (r Record) Key() string { return r.Experiment + " / " + r.Label }

// FromSample builds a Record from a measured Sample.
func FromSample(experiment, label, units string, s Sample) Record {
	return Record{
		Experiment:  experiment,
		Label:       label,
		Units:       units,
		Items:       s.Items,
		Reps:        s.Reps,
		MedianSec:   s.MedianSec,
		MADSec:      s.MADSec,
		OpsPerSec:   s.OpsPerSec,
		OpsMAD:      s.OpsMAD,
		AllocsPerOp: s.AllocsPerOp,
	}
}
