package benchreg

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testSnapshot builds a small synthetic snapshot with distinct kernels.
func testSnapshot() *Snapshot {
	env := Env{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1, NumCPU: 1, CPUModel: "Test CPU"}
	return &Snapshot{
		Schema: SchemaVersion,
		Mode:   "short",
		Scale:  0.02,
		Opts:   ShortOpts(),
		Env:    env,
		Kernels: []Record{
			{Experiment: "fig4", Label: "Advanced (VML batch)", Units: "options/s",
				Items: 8192, Reps: 5, MedianSec: 1e-3, MADSec: 1e-5, OpsPerSec: 8.192e6, OpsMAD: 5e4},
			{Experiment: "fig5", Label: "Advanced (+unroll)", Units: "options/s",
				Items: 16, Reps: 5, MedianSec: 2e-2, MADSec: 4e-4, OpsPerSec: 800, OpsMAD: 12},
			{Experiment: "tab2", Label: "uniform DP RNG/sec", Units: "items/s",
				Items: 200000, Reps: 5, MedianSec: 7e-3, MADSec: 2e-4, OpsPerSec: 2.8e7, OpsMAD: 6e5},
		},
		Mixes: map[string]map[string]uint64{
			"fig4": {"math.erf": 2048, "vec.fma": 9000, "meta.items": 8192, "meta.width": 8},
		},
	}
}

// Round-trip: write -> read -> diff against itself yields all-ok deltas
// with ratio 1 and no regressions.
func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	snap := testSnapshot()
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Kernels) != len(snap.Kernels) || got.Mode != "short" || got.Env != snap.Env {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Mixes["fig4"]["math.erf"] != 2048 {
		t.Fatalf("op mix lost in round-trip: %v", got.Mixes)
	}
	report := Check(snap, got, DefaultGate())
	if len(report.Deltas) != len(snap.Kernels) {
		t.Fatalf("%d deltas, want %d", len(report.Deltas), len(snap.Kernels))
	}
	for _, d := range report.Deltas {
		if d.Old == nil || d.New == nil {
			t.Fatalf("%s: self-diff reported a missing side", d.Key)
		}
		if d.Ratio < 0.9999999 || d.Ratio > 1.0000001 {
			t.Errorf("%s: self-diff ratio %g, want 1", d.Key, d.Ratio)
		}
		if d.Regression {
			t.Errorf("%s: self-diff flagged a regression", d.Key)
		}
	}
	if report.Failed(true) {
		t.Fatal("self-check must pass even with -strict-env")
	}
	if !report.EnvMatch {
		t.Fatal("identical env fingerprints must be comparable")
	}
}

func TestSnapshotWriteIsCanonical(t *testing.T) {
	snap := testSnapshot()
	// Shuffle the kernel order; Marshal must sort it back.
	snap.Kernels[0], snap.Kernels[2] = snap.Kernels[2], snap.Kernels[0]
	a, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSnapshot().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("Marshal is not canonical under kernel reordering")
	}
	if !strings.HasSuffix(string(a), "}\n") {
		t.Fatal("Marshal must end with a trailing newline for clean git diffs")
	}
}

func TestReadFileRejectsBadSnapshots(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, content, wantErr string
	}{
		{"missing.json", "", "parse"}, // empty file: invalid JSON
		{"garbage.json", "{not json", "parse"},
		{"schema.json", `{"schema": 99, "kernels": [{"experiment":"x","label":"y"}]}`, "schema"},
		{"legacy.json", `{"schema": 1, "kernels": [{"experiment":"x","label":"y"}]}`, "schema"},
		{"empty.json", `{"schema": 2, "kernels": []}`, "no kernel records"},
		{"dup.json", `{"schema": 2, "kernels": [
			{"experiment":"a","label":"b","ops_per_sec":1},
			{"experiment":"a","label":"b","ops_per_sec":2}]}`, "duplicate kernel key"},
	}
	for _, c := range cases {
		_, err := ReadFile(write(c.name, c.content))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want containing %q", c.name, err, c.wantErr)
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "does-not-exist.json")); err == nil {
		t.Error("ReadFile on a missing path must error")
	}
}
