package sobol

import (
	"math"
	"testing"

	"finbench/internal/rng"
	"finbench/internal/stats"
)

func TestIsPrimitiveKnown(t *testing.T) {
	primitive := []struct {
		p   uint64
		deg uint
	}{
		{0b11, 1},     // x+1
		{0b111, 2},    // x^2+x+1
		{0b1011, 3},   // x^3+x+1
		{0b1101, 3},   // x^3+x^2+1
		{0b10011, 4},  // x^4+x+1
		{0b11001, 4},  // x^4+x^3+1
		{0b100101, 5}, // x^5+x^2+1
	}
	for _, c := range primitive {
		if !isPrimitive(c.p, c.deg) {
			t.Errorf("%#b (deg %d) should be primitive", c.p, c.deg)
		}
	}
	notPrimitive := []struct {
		p   uint64
		deg uint
	}{
		{0b101, 2},   // x^2+1 = (x+1)^2, reducible
		{0b1001, 3},  // x^3+1 = (x+1)(x^2+x+1), reducible
		{0b11111, 4}, // x^4+x^3+x^2+x+1: irreducible but order 5 != 15
		{0b10101, 4}, // x^4+x^2+1 = (x^2+x+1)^2, reducible
		{0b10010, 4}, // even constant term
	}
	for _, c := range notPrimitive {
		if isPrimitive(c.p, c.deg) {
			t.Errorf("%#b (deg %d) should not be primitive", c.p, c.deg)
		}
	}
}

func TestPrimitivePolynomialOrder(t *testing.T) {
	got := primitivePolynomials(7)
	want := []uint64{0b11, 0b111, 0b1011, 0b1101, 0b10011, 0b11001, 0b100101}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("poly %d = %#b, want %#b", i, got[i], w)
		}
	}
}

func TestPrimitiveCountsByDegree(t *testing.T) {
	// phi(2^d - 1)/d primitive polynomials of degree d: 1,1,2,2,6,6,18...
	polys := primitivePolynomials(36)
	counts := map[uint]int{}
	for _, p := range polys {
		counts[polyDegree(p)]++
	}
	want := map[uint]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 6, 6: 6, 7: 18}
	for deg, n := range want {
		if counts[deg] != n {
			t.Errorf("degree %d: %d primitives, want %d", deg, counts[deg], n)
		}
	}
}

func TestPrimeFactors(t *testing.T) {
	cases := []struct {
		n    uint64
		want []uint64
	}{
		{15, []uint64{3, 5}},
		{127, []uint64{127}},
		{255, []uint64{3, 5, 17}},
		{511, []uint64{7, 73}},
	}
	for _, c := range cases {
		got := primeFactors(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("factors(%d) = %v", c.n, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("factors(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, dim := range []int{0, -1, 1112} {
		if _, err := New(dim); err == nil {
			t.Fatalf("dim %d accepted", dim)
		}
	}
	s, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 64 {
		t.Fatalf("Dim = %d", s.Dim())
	}
}

func TestFirstDimensionIsVanDerCorput(t *testing.T) {
	s, _ := New(1)
	pt := make([]float64, 1)
	s.Next(pt) // origin
	// Indices 1,2,3 in Gray-code order: 1/2, 3/4, 1/4 (plus half-cell).
	want := []float64{0.5, 0.75, 0.25}
	for i, w := range want {
		s.Next(pt)
		if math.Abs(pt[0]-w) > 1e-9 {
			t.Fatalf("point %d = %.10f, want ~%g", i+1, pt[0], w)
		}
	}
}

// Digital-net property: an aligned block of 2^k consecutive points places
// exactly one point in each dyadic interval of width 2^-k, in every
// dimension.
func TestOneDimensionalStratification(t *testing.T) {
	const k = 8
	const n = 1 << k
	s, _ := New(32)
	pt := make([]float64, 32)
	var bins [32][n]int
	for i := 0; i < n; i++ {
		s.Next(pt)
		for d := 0; d < 32; d++ {
			bins[d][int(pt[d]*n)]++
		}
	}
	for d := 0; d < 32; d++ {
		for b := 0; b < n; b++ {
			if bins[d][b] != 1 {
				t.Fatalf("dim %d bin %d has %d points, want 1", d, b, bins[d][b])
			}
		}
	}
}

// The (1,2) pair is a (0,2)-net: 256 points put exactly one point in each
// 16x16 dyadic box.
func TestTwoDimensionalStratificationFirstPair(t *testing.T) {
	const n = 256
	s, _ := New(2)
	pt := make([]float64, 2)
	var boxes [16][16]int
	for i := 0; i < n; i++ {
		s.Next(pt)
		boxes[int(pt[0]*16)][int(pt[1]*16)]++
	}
	for i := range boxes {
		for j := range boxes[i] {
			if boxes[i][j] != 1 {
				t.Fatalf("box (%d,%d) has %d points", i, j, boxes[i][j])
			}
		}
	}
}

// Later-dimension pairs are not (0,2)-nets, but occupancy must stay far
// from random clumping: no 16x16 box may hold more than a few of 4096
// points (random would fluctuate around 16 +- 12).
func TestHighDimensionalProjectionsReasonable(t *testing.T) {
	const n = 4096
	s, _ := New(64)
	pt := make([]float64, 64)
	pairs := [][2]int{{10, 11}, {30, 31}, {62, 63}, {5, 60}}
	boxes := make(map[[3]int]int)
	for i := 0; i < n; i++ {
		s.Next(pt)
		for pi, pr := range pairs {
			boxes[[3]int{pi, int(pt[pr[0]] * 16), int(pt[pr[1]] * 16)}]++
		}
	}
	// Perfect stratification would put 16 in each of 256 boxes.
	for key, count := range boxes {
		if count > 64 {
			t.Fatalf("pair %v box (%d,%d) holds %d of %d points", pairs[key[0]], key[1], key[2], count, n)
		}
	}
}

func TestSkipMatchesSequential(t *testing.T) {
	a, _ := New(8)
	b, _ := New(8)
	pa := make([]float64, 8)
	pb := make([]float64, 8)
	for i := 0; i < 1000; i++ {
		a.Next(pa)
	}
	b.Skip(1000)
	for i := 0; i < 16; i++ {
		a.Next(pa)
		b.Next(pb)
		for d := 0; d < 8; d++ {
			if pa[d] != pb[d] {
				t.Fatalf("point %d dim %d: %g != %g", i, d, pb[d], pa[d])
			}
		}
	}
}

func TestDigitalShift(t *testing.T) {
	s, _ := New(4)
	s.DigitalShift(12345)
	pt := make([]float64, 4)
	xs := make([]float64, 0, 4096)
	for i := 0; i < 1024; i++ {
		s.Next(pt)
		xs = append(xs, pt...)
	}
	// Shifted points remain uniform.
	if d := stats.KSUniform(xs); d > 0.03 {
		t.Fatalf("shifted sequence KS = %g", d)
	}
	// Zero seed restores the unshifted sequence.
	s2, _ := New(4)
	s2.DigitalShift(999)
	s2.DigitalShift(0)
	s3, _ := New(4)
	p2 := make([]float64, 4)
	p3 := make([]float64, 4)
	s2.Next(p2)
	s3.Next(p3)
	for d := range p2 {
		if p2[d] != p3[d] {
			t.Fatal("zero shift did not restore identity")
		}
	}
}

func TestCoordinatesInOpenInterval(t *testing.T) {
	s, _ := New(16)
	pt := make([]float64, 16)
	for i := 0; i < 10000; i++ {
		s.Next(pt)
		for d, x := range pt {
			if x <= 0 || x >= 1 {
				t.Fatalf("point %d dim %d = %g out of (0,1)", i, d, x)
			}
		}
	}
}

// QMC integration error must beat pseudo-random MC on a smooth integrand:
// f(u) = prod (1 + 0.6*(u_i - 0.5)) over 8 dimensions, E[f] = 1.
func TestQMCBeatsMC(t *testing.T) {
	const dim = 8
	const n = 4096
	f := func(u []float64) float64 {
		p := 1.0
		for _, x := range u {
			p *= 1 + 0.6*(x-0.5)
		}
		return p
	}
	s, _ := New(dim)
	pt := make([]float64, dim)
	var qmcSum float64
	for i := 0; i < n; i++ {
		s.Next(pt)
		qmcSum += f(pt)
	}
	qmcErr := math.Abs(qmcSum/n - 1)

	// Average MC error over a few seeds for a stable comparison.
	var mcErr float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		stream := rng.NewStream(trial, 77)
		var sum float64
		buf := make([]float64, dim)
		for i := 0; i < n; i++ {
			stream.Uniform(buf)
			sum += f(buf)
		}
		mcErr += math.Abs(sum/n - 1)
	}
	mcErr /= trials
	if qmcErr > mcErr/3 {
		t.Fatalf("QMC error %g not clearly below MC error %g", qmcErr, mcErr)
	}
}

func TestFill(t *testing.T) {
	s, _ := New(4)
	out := make([]float64, 4*10)
	s.Fill(out, 10)
	s2, _ := New(4)
	pt := make([]float64, 4)
	for i := 0; i < 10; i++ {
		s2.Next(pt)
		for d := 0; d < 4; d++ {
			if out[i*4+d] != pt[d] {
				t.Fatalf("Fill differs at point %d dim %d", i, d)
			}
		}
	}
}

func BenchmarkNext64(b *testing.B) {
	s, _ := New(64)
	pt := make([]float64, 64)
	b.SetBytes(64 * 8)
	for i := 0; i < b.N; i++ {
		s.Next(pt)
	}
}
