package finbench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"finbench/internal/machine"
)

// MachineInfo summarizes one modelled architecture for API consumers.
type MachineInfo struct {
	// Name is the short identifier ("SNB-EP", "KNC").
	Name string
	// FullName is the marketing name.
	FullName string
	// Cores and Threads are totals across sockets.
	Cores, Threads int
	// ClockGHz, SIMDWidthDP, PeakDPGFLOPs and StreamBW mirror Table I.
	ClockGHz     float64
	SIMDWidthDP  int
	PeakDPGFLOPs float64
	StreamBW     float64
}

// Machines lists the two architectures the paper studies.
func Machines() []MachineInfo {
	var out []MachineInfo
	for _, m := range machine.Machines() {
		out = append(out, MachineInfo{
			Name:         m.Name,
			FullName:     m.FullName,
			Cores:        m.Cores(),
			Threads:      m.Threads(),
			ClockGHz:     m.ClockGHz,
			SIMDWidthDP:  m.SIMDWidthDP,
			PeakDPGFLOPs: m.PeakDPGFLOPs,
			StreamBW:     m.StreamBW,
		})
	}
	return out
}

// Prediction is the modelled execution of an operation mix on one machine.
type Prediction struct {
	// Machine names the architecture.
	Machine string
	// Seconds is the predicted wall time; ItemsPerSec the throughput.
	Seconds, ItemsPerSec float64
	// Bound is "compute" or "bandwidth".
	Bound string
	// GFLOPs is the achieved flop rate.
	GFLOPs float64
}

// PredictThroughput models the given operation mix (from ProfileBatch or a
// custom instrumented kernel) on the named machine ("SNB-EP" or "KNC").
func PredictThroughput(mix OperationMix, machineName string) (Prediction, error) {
	m := machine.ByName(machineName)
	if m == nil {
		return Prediction{}, fmt.Errorf("finbench: unknown machine %q (try SNB-EP or KNC)", machineName)
	}
	p := m.Predict(mix)
	out := Prediction{
		Machine: m.Name,
		Seconds: p.Sec,
		Bound:   p.Bound.String(),
		GFLOPs:  p.GFLOPs,
	}
	if p.Sec > 0 {
		out.ItemsPerSec = float64(mix.Items) / p.Sec
	}
	return out, nil
}

// Roofline renders an ASCII roofline chart for the named machine with the
// given points plotted (label -> [arithmetic intensity flops/byte,
// GFLOP/s]). The chart follows the classic log-log form: the bandwidth
// diagonal meeting the flat compute peak.
func Roofline(machineName string, points map[string][2]float64) (string, error) {
	m := machine.ByName(machineName)
	if m == nil {
		return "", fmt.Errorf("finbench: unknown machine %q", machineName)
	}
	const width, height = 64, 16
	// x: AI from 2^-2 to 2^8; y: GFLOP/s from peak/512 to peak*2, log2.
	xMin, xMax := -2.0, 8.0
	yMax := log2(m.PeakDPGFLOPs * 2)
	yMin := yMax - 10
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(ai, gf float64, ch byte) {
		if ai <= 0 || gf <= 0 {
			return
		}
		x := int((log2(ai) - xMin) / (xMax - xMin) * float64(width-1))
		y := int((yMax - log2(gf)) / (yMax - yMin) * float64(height-1))
		if x < 0 || x >= width || y < 0 || y >= height {
			return
		}
		grid[y][x] = ch
	}
	// Roof: min(AI*BW, peak).
	for c := 0; c < width; c++ {
		ai := exp2(xMin + float64(c)/float64(width-1)*(xMax-xMin))
		roof := ai * m.StreamBW
		if roof > m.PeakDPGFLOPs {
			roof = m.PeakDPGFLOPs
		}
		plot(ai, roof, '-')
	}
	marks := []byte("ABCDEFGHIJKLMNOP")
	var legend strings.Builder
	i := 0
	// Deterministic ordering of points.
	var labels []string
	for l := range points {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, label := range labels {
		pt := points[label]
		ch := marks[i%len(marks)]
		plot(pt[0], pt[1], ch)
		fmt.Fprintf(&legend, "  %c: %s (AI=%.2g, %.3g GFLOP/s)\n", ch, label, pt[0], pt[1])
		i++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s roofline (log-log; peak %.0f GFLOP/s, STREAM %.0f GB/s)\n",
		m.Name, m.PeakDPGFLOPs, m.StreamBW)
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "AI: 2^%.0f .. 2^%.0f flops/byte\n%s", xMin, xMax, legend.String())
	return b.String(), nil
}

func log2(x float64) float64 { return math.Log2(x) }
func exp2(x float64) float64 { return math.Exp2(x) }
