package finbench

import (
	"fmt"

	"finbench/internal/brownian"
	"finbench/internal/mathx"
	"finbench/internal/rng"
)

// PathSimulator generates geometric-Brownian-motion price paths using the
// Brownian-bridge construction (Sec. II-E / IV-C): the driving Wiener path
// is built depth-first with interleaved random-number generation, then
// mapped through S(t) = S0 exp((r - sigma^2/2) t + sigma W(t)).
type PathSimulator struct {
	// Steps per path; must be a power of two >= 2.
	Steps int
	// Horizon in years.
	Horizon float64
	// Seed makes simulation reproducible.
	Seed uint64

	bridge *brownian.Bridge
}

// NewPathSimulator builds a simulator for power-of-two steps (the bridge
// doubles per level).
func NewPathSimulator(steps int, horizon float64, seed uint64) (*PathSimulator, error) {
	if steps < 2 || steps&(steps-1) != 0 {
		return nil, fmt.Errorf("finbench: steps must be a power of two >= 2, got %d", steps)
	}
	depth := -1
	for s := steps; s > 1; s >>= 1 {
		depth++
	}
	return &PathSimulator{
		Steps:   steps,
		Horizon: horizon,
		Seed:    seed,
		bridge:  brownian.New(depth, horizon),
	}, nil
}

// Simulate generates n price paths for the given spot under the market's
// risk-neutral dynamics. The result has n rows of Steps+1 prices, starting
// at spot.
func (ps *PathSimulator) Simulate(n int, spot float64, m Market) [][]float64 {
	plen := ps.bridge.PathLen()
	flat := make([]float64, n*plen)
	ps.bridge.AdvancedInterleaved(ps.Seed, flat, n, 8, nil)
	mu := m.Rate - m.Volatility*m.Volatility/2
	dt := ps.Horizon / float64(ps.Steps)
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		w := flat[i*plen : (i+1)*plen]
		row := make([]float64, plen)
		for p := 0; p < plen; p++ {
			t := float64(p) * dt
			row[p] = spot * mathx.Exp(mu*t+m.Volatility*w[p])
		}
		out[i] = row
	}
	return out
}

// SimulateTerminal generates only the terminal prices of n paths —
// sufficient for European payoffs and far cheaper.
func (ps *PathSimulator) SimulateTerminal(n int, spot float64, m Market) []float64 {
	z := make([]float64, n)
	s := rng.NewStream(0, ps.Seed)
	s.NormalICDF(z)
	mu := (m.Rate - m.Volatility*m.Volatility/2) * ps.Horizon
	sig := m.Volatility * mathx.Sqrt(ps.Horizon)
	out := make([]float64, n)
	for i, zi := range z {
		out[i] = spot * mathx.Exp(mu+sig*zi)
	}
	return out
}
