package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 5}}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0}, {1, 2}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(l[i][j]-want[i][j]) > 1e-14 {
				t.Fatalf("L[%d][%d] = %g, want %g", i, j, l[i][j], want[i][j])
			}
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	if _, err := Cholesky([][]float64{{1, 2}, {2, 1}}); err != ErrNotSPD {
		t.Fatalf("indefinite matrix: %v", err)
	}
	if _, err := Cholesky([][]float64{{0, 0}, {0, 1}}); err != ErrNotSPD {
		t.Fatalf("singular matrix: %v", err)
	}
	if _, err := Cholesky([][]float64{{1, 0}}); err == nil {
		t.Fatal("non-square accepted")
	}
}

// Property: L L^T reconstructs A for random SPD matrices A = B B^T + I.
func TestCholeskyReconstructQuick(t *testing.T) {
	f := func(b00, b01, b10, b11 float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.5
			}
			return math.Mod(x, 10)
		}
		b := [][]float64{{clamp(b00), clamp(b01)}, {clamp(b10), clamp(b11)}}
		a := make([][]float64, 2)
		for i := range a {
			a[i] = make([]float64, 2)
			for j := range a[i] {
				for k := 0; k < 2; k++ {
					a[i][j] += b[i][k] * b[j][k]
				}
				if i == j {
					a[i][j]++
				}
			}
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				var s float64
				for k := 0; k < 2; k++ {
					s += l[i][k] * l[j][k]
				}
				if math.Abs(s-a[i][j]) > 1e-9*(1+math.Abs(a[i][j])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSPD(t *testing.T) {
	a := [][]float64{{4, 2, 0}, {2, 5, 1}, {0, 1, 3}}
	want := []float64{1, -2, 3}
	b := MatVec(a, want)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2 + 3u - u^2 fitted with basis {1, u, u^2} must recover exactly.
	var x [][]float64
	var y []float64
	for u := 0.0; u <= 2; u += 0.1 {
		x = append(x, []float64{1, u, u * u})
		y = append(y, 2+3*u-u*u)
	}
	c, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-6 {
			t.Fatalf("c[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noisy linear data: fitted slope/intercept near truth.
	var x [][]float64
	var y []float64
	noise := []float64{0.01, -0.02, 0.015, -0.005, 0.02, -0.01}
	for i := 0; i < 60; i++ {
		u := float64(i) / 10
		x = append(x, []float64{1, u})
		y = append(y, 1.5+0.7*u+noise[i%len(noise)])
	}
	c, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-1.5) > 0.05 || math.Abs(c[1]-0.7) > 0.02 {
		t.Fatalf("fit = %v", c)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Fatal("empty design accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged design accepted")
	}
}

func TestMatVec(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	got := MatVec(a, []float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MatVec = %v", got)
	}
}
