package finbench

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func testOptions() []struct {
	name   string
	o      Option
	method Method
} {
	return []struct {
		name   string
		o      Option
		method Method
	}{
		{"closed-form-call", Option{Type: Call, Spot: 100, Strike: 105, Expiry: 0.5}, ClosedForm},
		{"binomial-euro-put", Option{Type: Put, Spot: 100, Strike: 95, Expiry: 1}, BinomialTree},
		{"binomial-amer-put", Option{Type: Put, Style: American, Spot: 100, Strike: 110, Expiry: 1}, BinomialTree},
		{"cn-euro-put", Option{Type: Put, Spot: 100, Strike: 100, Expiry: 0.75}, FiniteDifference},
		{"cn-amer-put", Option{Type: Put, Style: American, Spot: 90, Strike: 100, Expiry: 1}, FiniteDifference},
		{"trinomial-call", Option{Type: Call, Spot: 100, Strike: 100, Expiry: 0.5}, TrinomialTree},
		{"mc-call", Option{Type: Call, Spot: 100, Strike: 100, Expiry: 0.25}, MonteCarlo},
	}
}

// TestPriceCtxBackgroundBitMatchesPrice is the core serving guarantee: an
// uncancelled PriceCtx must produce bit-identical results to Price for
// every method (the ctx plumbing may not perturb the numerics).
func TestPriceCtxBackgroundBitMatchesPrice(t *testing.T) {
	mkt := Market{Rate: 0.02, Volatility: 0.3}
	cfg := &Config{MCPaths: 16384}
	for _, tc := range testOptions() {
		want, err := Price(tc.o, mkt, tc.method, cfg)
		if err != nil {
			t.Fatalf("%s: Price: %v", tc.name, err)
		}
		got, err := PriceCtx(context.Background(), tc.o, mkt, tc.method, cfg)
		if err != nil {
			t.Fatalf("%s: PriceCtx: %v", tc.name, err)
		}
		if got != want {
			t.Errorf("%s: PriceCtx = %+v, Price = %+v (must be bit-identical)", tc.name, got, want)
		}
	}
}

func TestPriceCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mkt := Market{Rate: 0.02, Volatility: 0.3}
	for _, tc := range testOptions() {
		if _, err := PriceCtx(ctx, tc.o, mkt, tc.method, &Config{MCPaths: 16384}); err == nil {
			t.Errorf("%s: PriceCtx with cancelled ctx returned nil error", tc.name)
		}
	}
}

// TestPriceCtxDeadlineStopsEarly checks that a tight deadline aborts a
// heavy Monte Carlo pricing well before its uncancelled runtime.
func TestPriceCtxDeadlineStopsEarly(t *testing.T) {
	mkt := Market{Rate: 0.02, Volatility: 0.3}
	o := Option{Type: Call, Spot: 100, Strike: 100, Expiry: 0.5}
	cfg := &Config{MCPaths: 1 << 23}

	start := time.Now()
	full, err := PriceCtx(context.Background(), o, mkt, MonteCarlo, cfg)
	if err != nil {
		t.Fatalf("uncancelled: %v", err)
	}
	fullDur := time.Since(start)
	_ = full

	ctx, cancel := context.WithTimeout(context.Background(), fullDur/20)
	defer cancel()
	start = time.Now()
	_, err = PriceCtx(ctx, o, mkt, MonteCarlo, cfg)
	cancelledDur := time.Since(start)
	if err == nil {
		t.Fatal("deadline-bound pricing returned nil error")
	}
	if cancelledDur > fullDur/2 {
		t.Errorf("cancelled run took %v of a %v full run; cancellation did not propagate", cancelledDur, fullDur)
	}
}

func TestPriceBatchCtxBackgroundBitMatchesPriceBatch(t *testing.T) {
	const n = 4099 // odd size exercises the scalar tails
	mkt := Market{Rate: 0.02, Volatility: 0.3}
	rnd := rand.New(rand.NewSource(7))
	mk := func() *Batch {
		b := NewBatch(n)
		for i := 0; i < n; i++ {
			b.Spots[i] = 50 + 100*rnd.Float64()
			b.Strikes[i] = 50 + 100*rnd.Float64()
			b.Expiries[i] = 0.1 + 2*rnd.Float64()
		}
		return b
	}
	for _, level := range []OptLevel{LevelBasic, LevelIntermediate, LevelAdvanced} {
		a, b := mk(), mk()
		copy(b.Spots, a.Spots)
		copy(b.Strikes, a.Strikes)
		copy(b.Expiries, a.Expiries)
		if err := PriceBatch(a, mkt, level); err != nil {
			t.Fatalf("%v: PriceBatch: %v", level, err)
		}
		if err := PriceBatchCtx(context.Background(), b, mkt, level); err != nil {
			t.Fatalf("%v: PriceBatchCtx: %v", level, err)
		}
		for i := 0; i < n; i++ {
			if a.Calls[i] != b.Calls[i] || a.Puts[i] != b.Puts[i] {
				t.Fatalf("%v: option %d differs: (%v,%v) vs (%v,%v)",
					level, i, a.Calls[i], a.Puts[i], b.Calls[i], b.Puts[i])
			}
		}
	}
}

// TestAdvancedCompositionIndependence underpins request coalescing: pricing
// a set of options as one LevelAdvanced mega-batch must produce bitwise the
// same prices as pricing any partition of it as separate batches, because
// the Advanced kernel is purely elementwise. The server's coalescer relies
// on this to return bit-identical answers whether or not a request was
// merged with its neighbors.
func TestAdvancedCompositionIndependence(t *testing.T) {
	const n = 10007
	mkt := Market{Rate: 0.02, Volatility: 0.3}
	rnd := rand.New(rand.NewSource(11))
	whole := NewBatch(n)
	for i := 0; i < n; i++ {
		whole.Spots[i] = 50 + 100*rnd.Float64()
		whole.Strikes[i] = 50 + 100*rnd.Float64()
		whole.Expiries[i] = 0.1 + 2*rnd.Float64()
	}
	if err := PriceBatch(whole, mkt, LevelAdvanced); err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 5; trial++ {
		// Random partition of [0,n) into segments of size 1..2000.
		lo := 0
		for lo < n {
			sz := 1 + rnd.Intn(2000)
			if lo+sz > n {
				sz = n - lo
			}
			part := &Batch{
				Spots:    whole.Spots[lo : lo+sz],
				Strikes:  whole.Strikes[lo : lo+sz],
				Expiries: whole.Expiries[lo : lo+sz],
				Calls:    make([]float64, sz),
				Puts:     make([]float64, sz),
			}
			if err := PriceBatch(part, mkt, LevelAdvanced); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < sz; i++ {
				if part.Calls[i] != whole.Calls[lo+i] || part.Puts[i] != whole.Puts[lo+i] {
					t.Fatalf("trial %d: option %d (segment [%d,%d)) differs from mega-batch: (%v,%v) vs (%v,%v)",
						trial, lo+i, lo, lo+sz, part.Calls[i], part.Puts[i], whole.Calls[lo+i], whole.Puts[lo+i])
				}
			}
			lo += sz
		}
	}
}
