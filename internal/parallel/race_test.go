package parallel

// Race exercise tests: these are shaped so that `go test -race` actually
// has concurrent memory traffic to inspect. They encode the paper's
// one-RNG-stream-per-worker discipline (Sec. IV-D3) as executable checks —
// the same invariant the finlint rngshare pass enforces statically.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"finbench/internal/rng"
)

// TestRacePerWorkerStreams runs the sanctioned pattern repeatedly: each
// worker derives its own stream inside the closure and fills a disjoint
// range. Any accidental sharing introduced here would trip the race
// detector immediately.
func TestRacePerWorkerStreams(t *testing.T) {
	const n = 1 << 14
	dst := make([]float64, n)
	for round := 0; round < 8; round++ {
		ForIndexed(n, func(worker, lo, hi int) {
			stream := rng.NewStream(worker, 42)
			stream.NormalICDF(dst[lo:hi])
		})
	}
	var nonzero int
	for _, v := range dst {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < n/2 {
		t.Fatalf("only %d/%d elements written", nonzero, n)
	}
}

// TestRacePerWorkerStreamsDeterministic pins that the per-worker pattern
// is reproducible: two runs with the same seed and worker count produce
// bit-identical output (exact comparison is intended — same stream, same
// transform, same lanes).
func TestRacePerWorkerStreamsDeterministic(t *testing.T) {
	const n, workers = 1 << 12, 4
	run := func() []float64 {
		dst := make([]float64, n)
		chunk := (n + workers - 1) / workers
		ForWorkers(workers, workers, func(lo, hi int) {
			for w := lo; w < hi; w++ {
				base := w * chunk
				end := base + chunk
				if end > n {
					end = n
				}
				stream := rng.NewStream(w, 7)
				stream.Uniform(dst[base:end])
			}
		})
		return dst
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestRacePoolStress hammers the persistent pool from many goroutines at
// once: concurrent submitters, every schedule kind, and nested regions.
// Under -race this exercises the queue, the cond-parked workers, and the
// helping join against each other.
func TestRacePoolStress(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const submitters = 8
	var wg sync.WaitGroup
	var total int64
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				switch (s + round) % 4 {
				case 0:
					For(300, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
				case 1:
					ForDynamic(300, 7, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
				case 2:
					ForGuided(300, 3, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
				case 3:
					// Nested: an outer region whose tasks open inner regions.
					For(4, func(olo, ohi int) {
						for o := olo; o < ohi; o++ {
							ForIndexed(75, func(_, lo, hi int) {
								atomic.AddInt64(&total, int64(hi-lo))
							})
						}
					})
				}
			}
		}(s)
	}
	wg.Wait()
	want := int64(submitters * 20 * 300)
	if total != want {
		t.Fatalf("stress total = %d, want %d", total, want)
	}
	d := Sched()
	if d.Dispatched != d.Handoffs+d.Steals {
		t.Fatalf("pool counters unbalanced after stress: %v", d)
	}
}

// TestRaceDynamicSharedAccumulator hammers ForDynamic's shared work
// counter while workers merge partial sums under a mutex — the accumulate
// pattern the kernels use for perf.Counts merging.
func TestRaceDynamicSharedAccumulator(t *testing.T) {
	const n = 1 << 15
	var mu sync.Mutex
	var total float64
	ForDynamic(n, 64, func(lo, hi int) {
		var local float64
		for i := lo; i < hi; i++ {
			local += float64(i)
		}
		mu.Lock()
		total += local
		mu.Unlock()
	})
	want := float64(n) * float64(n-1) / 2
	if total != want {
		t.Fatalf("sum = %g, want %g", total, want)
	}
}
