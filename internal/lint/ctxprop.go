package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// ctxpropPass enforces deadline propagation on the serving path: any
// function reachable (via the call graph) from an HTTP handler must reach
// the pricing kernels through their context-taking variants, so a
// request's deadline cancels kernel work instead of orphaning it. The
// plain entry points (finbench.Price, PriceBatch, the path simulators)
// never observe a context; a handler-reachable call to one is a request
// that keeps computing after its client has given up — exactly the
// admission-control leak the serving tier's load shedding exists to
// prevent.
//
// The entry-point table lives in entrypoints.go, shared with rngshare.
// Callers inside the root finbench package itself are exempt: the *Ctx
// wrappers are the API boundary and legitimately delegate to the plain
// kernels after arranging cancellation.
func ctxpropPass() *Pass {
	return &Pass{
		Name:   "ctxprop",
		Doc:    "deadline-blind kernel entry point reachable from an HTTP handler (use the *Ctx variant)",
		RunMod: runCtxProp,
	}
}

func runCtxProp(m *Module, p *Package, report func(pos token.Pos, msg string)) {
	if p.Path == rootPkgPath {
		return
	}
	reach := m.HandlerReach()
	for _, caller := range sortedFuncNames(m.Graph, p) {
		if !reach.Contains(caller) {
			continue
		}
		edges := m.Graph.Edges[caller]
		for _, callee := range sortedEdgeKeys(edges) {
			ctxVariant, isEntry := kernelEntryCtx[callee]
			if !isEntry {
				continue
			}
			fix := fmt.Sprintf("call %s so the request deadline propagates into the kernel", ctxVariant)
			if ctxVariant == "" {
				fix = "it has no cancellable variant and must not run on the request path"
			}
			for _, pos := range edges[callee] {
				report(pos, fmt.Sprintf(
					"%s is deadline-blind but reachable from an HTTP handler (%s): %s",
					callee, pathLabel(reach.Path(caller)), fix))
			}
		}
	}
}

// sortedFuncNames lists the graph functions declared in p, sorted for
// deterministic reporting.
func sortedFuncNames(g *CallGraph, p *Package) []string {
	var names []string
	for name, fi := range g.Funcs {
		if fi.Pkg == p {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
