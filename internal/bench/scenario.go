package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"finbench"
	"finbench/internal/scenario"
	"finbench/internal/serve"
)

// scenario: throughput of the portfolio risk scenario engine — the grid
// evaluation over the pooled SOA batch path, and the full /scenario
// handler stack (decode, validate, admission, evaluate, Kahan reduce,
// encode). The handler row gates allocs/op like the other serve-path
// rows: a new per-request allocation on the scenario path multiplies by
// the request rate. Short mode shrinks the grid through scaleInt; the
// nightly full-mode snapshot (scale 1) runs the large grid.

func init() {
	register(&Experiment{
		ID:          "scenario",
		Title:       "Portfolio risk scenario engine",
		Units:       "cells/s",
		Description: "Shock-grid P&L surfaces with deterministic Kahan reductions: library-level grid evaluation and the full /scenario handler stack. The handler row gates allocs/op in benchreg snapshots.",
		Measure:     measureScenario,
	})
}

// scenarioBenchRequest builds the deterministic benchmark request:
// positions positions over a spots x vols x rates shock grid, no
// generators (grid throughput is the closed-form scaling story; the
// Monte Carlo generators are priced per-cell by the same row path).
func scenarioBenchRequest(positions, spots, vols, rates int) *scenario.Request {
	req := &scenario.Request{
		Portfolio: make([]scenario.Position, positions),
		Grid: scenario.Grid{
			SpotShocks: make([]float64, spots),
			VolShocks:  make([]float64, vols),
			RateShifts: make([]float64, rates),
		},
	}
	for i := range req.Portfolio {
		p := &req.Portfolio[i]
		p.Spot = 90 + float64(i%21)
		p.Strike = 80 + float64(i%41)
		p.Expiry = 0.25 + float64(i%8)*0.25
		p.Quantity = float64(1 + i%7)
		if i%2 == 1 {
			p.Type = "put"
		}
	}
	for i := range req.Grid.SpotShocks {
		req.Grid.SpotShocks[i] = -0.25 + 0.5*float64(i)/float64(max(spots-1, 1))
	}
	for i := range req.Grid.VolShocks {
		req.Grid.VolShocks[i] = -0.05 + 0.1*float64(i)/float64(max(vols-1, 1))
	}
	for i := range req.Grid.RateShifts {
		req.Grid.RateShifts[i] = -0.01 + 0.02*float64(i)/float64(max(rates-1, 1))
	}
	return req
}

func measureScenario(scale float64) (*Result, error) {
	positions := scaleInt(64, scale, 8)
	spots := scaleInt(15, scale, 5)
	vols := scaleInt(7, scale, 3)
	rates := scaleInt(5, scale, 2)
	req := scenarioBenchRequest(positions, spots, vols, rates)
	cells := req.NumCells()
	mkt := finbench.Market{Rate: 0.02, Volatility: 0.3}

	r := &Result{
		ID:    "scenario",
		Title: fmt.Sprintf("Portfolio risk scenario engine (%d positions, %dx%dx%d grid = %d cells)", positions, spots, vols, rates, cells),
		Units: "cells/s",
	}

	// Row 1: library-level grid evaluation + ladder reduction, the work a
	// replica does per partition.
	levels := req.Levels()
	r.Rows = append(r.Rows, hostRow("grid evaluate + Kahan reduce (library)", cells, func() {
		base, pnl, err := scenario.EvaluateCells(context.Background(), req, mkt, 0, cells)
		if err != nil {
			panic(err)
		}
		_ = base
		_ = scenario.Reduce(levels, pnl)
	}))

	// Row 2: the full /scenario handler stack, alloc-gated like the other
	// serve-path rows. Same reusable-request harness as servepath so the
	// gated count is the server's alone.
	s := serve.New(serve.Config{ProfileEvery: -1})
	defer s.Close()
	h := s.Handler()
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	rb := &rewindBody{}
	rb.Reset(body)
	hreq := httptest.NewRequest(http.MethodPost, "/scenario", nil)
	hreq.Body = rb
	hreq.ContentLength = int64(len(body))
	hreq.Header.Set("Content-Type", "application/json")
	rec := &discardRecorder{header: make(http.Header)}
	call := func() {
		rec.reset()
		rb.rewind()
		h.ServeHTTP(rec, hreq)
	}
	call() // untimed probe: never gate the error path's allocation count
	if rec.code != http.StatusOK {
		return nil, fmt.Errorf("bench: /scenario returned status %d", rec.code)
	}
	row := hostRow("/scenario handler (in-process)", cells, call)
	row.GateAllocs = true
	row.Prov = None
	r.Rows = append(r.Rows, row)

	r.Notes = append(r.Notes,
		"cells/s counts scenario grid cells; each cell prices the whole portfolio through the pooled SOA batch path",
		"the handler row gates allocs/op: a new per-request allocation on the /scenario path fails the benchreg check",
		"short mode shrinks the grid via scaleInt; the nightly full-mode snapshot runs the large grid at scale 1")
	return r, nil
}
