package loadgen

import (
	"net/http/httptest"
	"testing"

	"finbench/internal/serve"
	"finbench/internal/serve/shard"
)

// TestScenarioModeVerifiesAgainstReplica: scenario mode against a bare
// replica — every 200 byte-matches the library, no scatters observed.
func TestScenarioModeVerifiesAgainstReplica(t *testing.T) {
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	rep, err := Run(Options{
		BaseURL:           ts.URL,
		Requests:          6,
		Concurrency:       2,
		OptionsPerRequest: 5,
		Scenario:          true,
		ScenarioGrid:      [3]int{4, 3, 2},
		ScenarioGens:      3,
		Verify:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(200) != 6 || rep.Mismatch != 0 || rep.Verified != 6 {
		t.Fatalf("scenario run against replica: %s", rep)
	}
	if rep.Scattered != 0 {
		t.Errorf("bare replica reported %d scattered responses", rep.Scattered)
	}
}

// TestScenarioModeVerifiesThroughRouter: the same verification through a
// 2-replica scatter-gathering router — byte-identity must survive the
// split/merge, and the partitions header must show splits happened.
func TestScenarioModeVerifiesThroughRouter(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		s := serve.New(serve.Config{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer s.Close()
		urls = append(urls, ts.URL)
	}
	router, err := shard.New(shard.Config{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	defer router.Close()
	front := httptest.NewServer(router)
	defer front.Close()

	rep, err := Run(Options{
		BaseURL:           front.URL,
		Requests:          6,
		Concurrency:       2,
		OptionsPerRequest: 5,
		Scenario:          true,
		ScenarioGens:      2,
		Verify:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(200) != 6 || rep.Mismatch != 0 || rep.Verified != 6 {
		t.Fatalf("scenario run through router: %s", rep)
	}
	if rep.Scattered != 6 {
		t.Errorf("scattered = %d, want all 6 requests split", rep.Scattered)
	}
}
