package stream

import (
	"reflect"
	"testing"
)

func TestUniverseDeterministicAndInDomain(t *testing.T) {
	a := UniverseContracts(9, 512, 16)
	b := UniverseContracts(9, 512, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different universes")
	}
	puts := 0
	for i, c := range a {
		if c.Underlying != i%16 {
			t.Fatalf("contract %d on underlying %d, want %d", i, c.Underlying, i%16)
		}
		if c.Strike < 70 || c.Strike >= 130 {
			t.Fatalf("contract %d strike %v outside [70, 130)", i, c.Strike)
		}
		if c.Expiry < 0.1 || c.Expiry >= 2.1 {
			t.Fatalf("contract %d expiry %v outside [0.1, 2.1)", i, c.Expiry)
		}
		if c.Put {
			puts++
		}
	}
	if puts == 0 || puts == len(a) {
		t.Errorf("universe has %d puts of %d — want a mix", puts, len(a))
	}
}

func TestParseSubscription(t *testing.T) {
	cases := []struct {
		name      string
		contracts string
		ids       string
		universe  int
		want      []int
		wantErr   bool
	}{
		{name: "both empty", want: nil},
		{name: "single range", contracts: "0-3", universe: 8, want: []int{0, 1, 2, 3}},
		{name: "multi range with bare id", contracts: "4-5, 1", universe: 8, want: []int{1, 4, 5}},
		{name: "ids only", ids: "3, 1,2", universe: 8, want: []int{1, 2, 3}},
		{name: "overlap dedups", contracts: "0-2", ids: "2,0", universe: 8, want: []int{0, 1, 2}},
		{name: "router unbounded", contracts: "1000-1002", universe: 0, want: []int{1000, 1001, 1002}},
		{name: "out of universe", contracts: "0-8", universe: 8, wantErr: true},
		{name: "negative", ids: "-1", universe: 8, wantErr: true},
		{name: "inverted range", contracts: "5-2", universe: 8, wantErr: true},
		{name: "garbage", contracts: "abc", universe: 8, wantErr: true},
		{name: "garbage id", ids: "1,x", universe: 8, wantErr: true},
		{name: "too large", contracts: "0-2000000", universe: 0, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseSubscription(tc.contracts, tc.ids, tc.universe)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("got %v, want an error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}
