// Package cranknicolson implements the Crank-Nicolson American option
// pricing kernel of Sec. IV-E (Lis. 6/7, Figs. 7 and 8).
//
// The Black-Scholes PDE is transformed to the heat equation u_tau = u_xx
// with x = ln(S/K) and tau = sigma^2 (T-t)/2 (the Wilmott student-intro
// formulation the paper cites). Each Crank-Nicolson step averages an
// explicit half-step B_j = (1-alpha) u_j + (alpha/2)(u_{j+1} + u_{j-1})
// with an implicit half-step solved iteratively by Projected Successive
// Over-Relaxation: sweeps of
//
//	y   = (B_j + (alpha/2)(u_{j-1} + u_{j+1})) / (1 + alpha)
//	u_j = max(g_j, u_j + omega (y - u_j))
//
// until the summed squared update falls below epsilon, with the
// early-exercise obstacle g enforcing the American constraint and omega
// adapted across time steps as in Lis. 6.
//
// Optimization levels (Fig. 8):
//
//   - RefScalar: the reference scalar GSOR — the j loop and the
//     convergence loop both carry dependences, so the compiler cannot
//     vectorize it.
//   - Intermediate: manual wavefront SIMD (Fig. 7). The convergence loop
//     is unrolled by the vector width; lane l runs sweep base+l displaced
//     two points behind lane l-1, so all lanes advance legally in one
//     in-place array. Prologue/epilogue triangles run scalar; lane
//     accesses stride by -2, requiring gathers.
//   - Advanced: the data-structure transformation — U, B, G are split into
//     even/odd-index halves each time step so the wavefront's same-parity
//     accesses become contiguous (reversed) vector loads.
//
// Convergence is checked every `width` sweeps in the vector variants, as
// the paper notes ("we now check for convergence every 4 or 8 iterations").
package cranknicolson // finlint:hot — allocation-free loops enforced by internal/lint

import (
	"context"

	"finbench/internal/mathx"
	"finbench/internal/perf"
	"finbench/internal/workload"
)

// Solver holds the transformed-coordinate grid for one option maturity.
type Solver struct {
	// J is the highest grid index; points run 0..J.
	J int
	// N is the number of time steps.
	N int
	// K2R is k = 2r/sigma^2, the transformed rate.
	K2R float64
	// Dx and DTau are the grid spacings; Alpha = DTau/Dx^2.
	Dx, DTau, Alpha float64
	// XMin is the left edge; x_j = XMin + j*Dx, centered on x = 0.
	XMin   float64
	TauMax float64
	// American selects the projected (obstacle) solve; false gives the
	// plain European GSOR used for validation.
	American bool
	// Eps is the GSOR convergence threshold on the summed squared update.
	Eps float64
	// stepsDone counts completed time steps (drives the Rannacher switch).
	stepsDone int
	// Theta selects the time-stepping scheme: 0 = fully explicit
	// (conditionally stable, alpha <= 1/2), 1 = fully implicit
	// (unconditionally stable, first-order), 0.5 = Crank-Nicolson
	// (unconditionally stable, second-order — the paper's method).
	Theta float64
	// RannacherSteps runs that many initial steps fully implicitly before
	// switching to Theta, damping the spurious oscillation Crank-Nicolson
	// exhibits against the non-smooth payoff (Rannacher startup). Zero
	// reproduces the paper's plain scheme.
	RannacherSteps int
}

// DefaultAlpha is the lattice ratio used by the reference code (Lis. 6).
const DefaultAlpha = 0.73

// NewSolver builds the grid for maturity t: tauMax = sigma^2 t/2 split
// into nsteps, with dx chosen so dtau/dx^2 = alpha and jpoints+1 grid
// points centered on the money.
func NewSolver(t float64, jpoints, nsteps int, alpha float64, mkt workload.MarketParams) *Solver {
	tauMax := mkt.Sigma * mkt.Sigma * t / 2
	dtau := tauMax / float64(nsteps)
	dx := mathx.Sqrt(dtau / alpha)
	return &Solver{
		J:        jpoints,
		N:        nsteps,
		K2R:      2 * mkt.R / (mkt.Sigma * mkt.Sigma),
		Dx:       dx,
		DTau:     dtau,
		Alpha:    alpha,
		XMin:     -dx * float64(jpoints) / 2,
		TauMax:   tauMax,
		American: true,
		Eps:      1e-14,
		Theta:    0.5,
	}
}

// alphaExplicit and alphaImplicit split the lattice ratio between the two
// half-steps according to the theta scheme:
// u^{n+1} - u^n = alpha [ theta d2 u^{n+1} + (1-theta) d2 u^n ].
// Theta = 1/2 recovers the paper's alpha1/alpha2 coefficients. The
// effective theta is 1 (fully implicit) during the Rannacher startup.
func (s *Solver) alphaExplicit() float64 { return s.Alpha * (1 - s.effTheta()) * 2 }
func (s *Solver) alphaImplicit() float64 { return s.Alpha * s.effTheta() * 2 }

func (s *Solver) effTheta() float64 {
	if s.stepsDone < s.RannacherSteps {
		return 1
	}
	return s.Theta
}

// x returns the coordinate of grid point j.
func (s *Solver) x(j int) float64 { return s.XMin + float64(j)*s.Dx }

// Payoff is the transformed American-put obstacle
// g(x,tau) = e^{(k+1)^2 tau/4} max(e^{(k-1)x/2} - e^{(k+1)x/2}, 0)
// (u_payoff of Lis. 6).
func (s *Solver) Payoff(x, tau float64) float64 {
	k := s.K2R
	v := mathx.Exp((k-1)*x/2) - mathx.Exp((k+1)*x/2)
	if v < 0 {
		v = 0
	}
	return mathx.Exp((k+1)*(k+1)*tau/4) * v
}

// euroLeftBC is the exact left boundary of the European put in transformed
// coordinates: e^{(k-1)x/2 + (k-1)^2 tau/4}.
func (s *Solver) euroLeftBC(tau float64) float64 {
	k := s.K2R
	return mathx.Exp((k-1)*s.XMin/2 + (k-1)*(k-1)*tau/4)
}

// explicitStep fills G with the obstacle at tau and B with the explicit
// half-step, then applies boundary conditions to U and G.
func (s *Solver) explicitStep(u, b, g []float64, tau float64, c *perf.Counts) {
	ae := s.alphaExplicit()
	alpha1 := 1 - ae
	alpha2 := ae / 2
	for j := 1; j < s.J; j++ {
		g[j] = s.Payoff(s.x(j), tau)
		b[j] = alpha1*u[j] + alpha2*(u[j+1]+u[j-1])
	}
	if s.American {
		g[0] = s.Payoff(s.XMin, tau)
	} else {
		g[0] = s.euroLeftBC(tau)
	}
	g[s.J] = s.Payoff(s.x(s.J), tau) // zero-side boundary
	u[0] = g[0]
	u[s.J] = g[s.J]
	b[0], b[s.J] = g[0], g[s.J]
	if c != nil {
		nj := uint64(s.J - 1)
		c.Add(perf.OpExp, nj*3) // two spatial + one time factor per point
		c.Add(perf.OpScalar, nj*8)
		c.Add(perf.OpScalarLoad, nj*3)
		c.Add(perf.OpScalarStore, nj*2)
	}
}

// relax performs the projected relaxation at one point and returns the new
// value: shared by every variant so numerics agree.
func (s *Solver) relax(uj, ujm1, ujp1, bj, gj, omega, coeff, alpha2 float64) float64 {
	y := coeff * (bj + alpha2*(ujm1+ujp1))
	un := uj + omega*(y-uj)
	if s.American && gj > un {
		un = gj
	}
	return un
}

// gsorScalar runs scalar PSOR sweeps until convergence; returns the sweep
// count (Lis. 7).
func (s *Solver) gsorScalar(b, u, g []float64, omega float64, c *perf.Counts) int {
	ai := s.alphaImplicit()
	coeff := 1 / (1 + ai)
	alpha2 := ai / 2
	loops := 0
	for {
		loops++
		var errSum float64
		for j := 1; j < s.J; j++ {
			un := s.relax(u[j], u[j-1], u[j+1], b[j], g[j], omega, coeff, alpha2)
			d := un - u[j]
			errSum += d * d
			u[j] = un
		}
		if c != nil {
			nj := uint64(s.J - 1)
			// Six of the ~11 flops per point sit on the loop-carried
			// Gauss-Seidel chain through u[j-1] (y, the relaxation and the
			// projection); the rest issue in their shadow.
			c.Add(perf.OpScalarChain, nj*6)
			c.Add(perf.OpScalar, nj*5)
			c.Add(perf.OpScalarLoad, nj*4)
			c.Add(perf.OpScalarStore, nj)
		}
		// Divergence-safe: a blown-up lattice (explicit scheme past its
		// stability bound) yields NaN or overflowing error sums, which
		// must terminate rather than spin to the sweep cap.
		if !(errSum > s.Eps) || errSum > 1e200 || loops > 10000 {
			return loops
		}
	}
}

// SolveScalar runs the full reference time loop (Lis. 6) and returns the
// final u grid and the total GSOR sweep count.
func (s *Solver) SolveScalar(c *perf.Counts) ([]float64, int) {
	return s.solve(c, func(b, u, g []float64, omega float64, c *perf.Counts) int {
		return s.gsorScalar(b, u, g, omega, c)
	})
}

// SolveScalarCtx is SolveScalar with cancellation checked once per time
// step (each step is an explicit half-step plus a full PSOR solve, the
// natural chunk of this kernel). On cancellation it returns a nil grid and
// ctx.Err(); an uncancelled run is bit-identical to SolveScalar.
func (s *Solver) SolveScalarCtx(cx context.Context, c *perf.Counts) ([]float64, int, error) {
	u, total, ok := s.solveDone(c, cx.Done(), func(b, u, g []float64, omega float64, c *perf.Counts) int {
		return s.gsorScalar(b, u, g, omega, c)
	})
	if !ok {
		return nil, total, cx.Err()
	}
	return u, total, nil
}

// solve is the shared Lis. 6 driver: init, time loop with explicit step,
// GSOR solve, and omega adaptation.
func (s *Solver) solve(c *perf.Counts, gsor func(b, u, g []float64, omega float64, c *perf.Counts) int) ([]float64, int) {
	u, total, _ := s.solveDone(c, nil, gsor)
	return u, total
}

// solveDone is solve with an optional cancellation channel checked before
// every time step; a nil done skips the checks entirely. Returns ok=false
// if the loop was abandoned mid-solve.
func (s *Solver) solveDone(c *perf.Counts, done <-chan struct{}, gsor func(b, u, g []float64, omega float64, c *perf.Counts) int) ([]float64, int, bool) {
	u := make([]float64, s.J+1)
	b := make([]float64, s.J+1)
	g := make([]float64, s.J+1)
	for j := 0; j <= s.J; j++ {
		u[j] = s.Payoff(s.x(j), 0)
	}
	omega := 1.0
	const domega = 0.05
	oldloops := 1 << 30
	total := 0
	s.stepsDone = 0
	for n := 1; n <= s.N; n++ {
		if done != nil {
			select {
			case <-done:
				return u, total, false
			default:
			}
		}
		tau := float64(n) * s.DTau
		s.explicitStep(u, b, g, tau, c)
		loops := gsor(b, u, g, omega, c)
		total += loops
		if loops > oldloops && omega < 1.9 {
			omega += domega
		}
		oldloops = loops
		s.stepsDone++
	}
	return u, total, true
}

// Price recovers the option value at spot from the final grid:
// V = K u(x*) e^{-(k-1)x*/2 - (k+1)^2 tauMax/4}, x* = ln(spot/strike),
// linearly interpolated between grid points.
func (s *Solver) Price(u []float64, spot, strike float64) float64 {
	xq := mathx.Log(spot / strike)
	pos := (xq - s.XMin) / s.Dx
	j := int(pos)
	if j < 0 {
		j, pos = 0, 0
	}
	if j >= s.J {
		j, pos = s.J-1, float64(s.J)
	}
	frac := pos - float64(j)
	uq := u[j]*(1-frac) + u[j+1]*frac
	k := s.K2R
	return strike * uq * mathx.Exp(-(k-1)*xq/2-(k+1)*(k+1)*s.TauMax/4)
}

// PriceAmericanPut prices one American put with the scalar reference.
func PriceAmericanPut(spot, strike, t float64, jpoints, nsteps int, mkt workload.MarketParams) float64 {
	s := NewSolver(t, jpoints, nsteps, DefaultAlpha, mkt)
	u, _ := s.SolveScalar(nil)
	return s.Price(u, spot, strike)
}

// PriceAmericanPutCtx is PriceAmericanPut with per-time-step cancellation.
func PriceAmericanPutCtx(cx context.Context, spot, strike, t float64, jpoints, nsteps int, mkt workload.MarketParams) (float64, error) {
	s := NewSolver(t, jpoints, nsteps, DefaultAlpha, mkt)
	u, _, err := s.SolveScalarCtx(cx, nil)
	if err != nil {
		return 0, err
	}
	return s.Price(u, spot, strike), nil
}

// PriceEuropeanPut prices a European put on the same lattice (validation
// against the closed form).
func PriceEuropeanPut(spot, strike, t float64, jpoints, nsteps int, mkt workload.MarketParams) float64 {
	s := NewSolver(t, jpoints, nsteps, DefaultAlpha, mkt)
	s.American = false
	u, _ := s.SolveScalar(nil)
	return s.Price(u, spot, strike)
}

// PriceEuropeanPutCtx is PriceEuropeanPut with per-time-step cancellation.
func PriceEuropeanPutCtx(cx context.Context, spot, strike, t float64, jpoints, nsteps int, mkt workload.MarketParams) (float64, error) {
	s := NewSolver(t, jpoints, nsteps, DefaultAlpha, mkt)
	s.American = false
	u, _, err := s.SolveScalarCtx(cx, nil)
	if err != nil {
		return 0, err
	}
	return s.Price(u, spot, strike), nil
}
