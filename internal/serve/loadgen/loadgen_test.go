package loadgen

import (
	"strings"
	"testing"
)

// TestReportStringDeterministic pins the log rendering of a report
// whose Errors map has several keys: the err[...] fields must come out
// sorted by key, identically on every call. Regression test for the
// unsorted map-range String() found by the detmap pass.
func TestReportStringDeterministic(t *testing.T) {
	r := &Report{
		Requests:  7,
		ElapsedMS: 12,
		Codes:     map[int]int{200: 4, 503: 1},
		Errors: map[string]int{
			"connection refused": 1,
			"EOF":                2,
			"timeout":            3,
		},
	}
	want := "requests=7 elapsed=12ms 200=4 503=1" +
		" err[EOF]=2 err[connection refused]=1 err[timeout]=3"
	got := r.String()
	if got != want {
		t.Fatalf("Report.String() = %q, want %q", got, want)
	}
	for i := 0; i < 50; i++ {
		if again := r.String(); again != got {
			t.Fatalf("Report.String() not stable: call %d gave %q, first gave %q", i, again, got)
		}
	}
}

// TestReportStringOmitsEmptySections keeps the compact rendering for a
// minimal report.
func TestReportStringOmitsEmptySections(t *testing.T) {
	r := &Report{Requests: 1, ElapsedMS: 3, Codes: map[int]int{200: 1}}
	got := r.String()
	if got != "requests=1 elapsed=3ms 200=1" {
		t.Fatalf("Report.String() = %q", got)
	}
	for _, field := range []string{"err[", "verified=", "coalesced=", "degraded=", "retries=", "p50="} {
		if strings.Contains(got, field) {
			t.Errorf("minimal report rendering should omit %q: %q", field, got)
		}
	}
}
