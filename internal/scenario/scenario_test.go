package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"finbench"
)

var testMarket = finbench.Market{Rate: 0.02, Volatility: 0.3}

func testRequest() *Request {
	req := &Request{
		Grid: Grid{
			SpotShocks: []float64{-0.2, -0.1, 0, 0.1, 0.2},
			VolShocks:  []float64{-0.05, 0, 0.05},
			RateShifts: []float64{-0.01, 0, 0.01},
		},
		Generators: []Generator{
			{Model: ModelHeston, Scenarios: 7, Seed: 11},
			{Model: ModelJump, Scenarios: 5, Seed: 12},
			{Model: ModelBasket, Scenarios: 6, Seed: 13},
		},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 9; i++ {
		p := Position{
			Spot:     60 + 80*rng.Float64(),
			Strike:   60 + 80*rng.Float64(),
			Expiry:   0.2 + 2*rng.Float64(),
			Quantity: float64(rng.Intn(21) - 10),
		}
		if p.Quantity == 0 {
			p.Quantity = 3
		}
		if rng.Intn(2) == 1 {
			p.Type = "put"
		}
		req.Portfolio = append(req.Portfolio, p)
	}
	return req
}

func mustValidate(t *testing.T, req *Request) {
	t.Helper()
	if err := req.Validate(testMarket.Volatility, Limits{}); err != nil {
		t.Fatal(err)
	}
}

func fullBytes(t *testing.T, req *Request) []byte {
	t.Helper()
	base, pnl, err := EvaluateCells(context.Background(), req, testMarket, 0, req.NumCells())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Finalize(req, base, 0, pnl))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPermutationInvariance is the Kahan-merge property test: any
// partitioning of the cell space, evaluated in any order (serially
// shuffled and concurrently via Scatter), must merge and reduce to the
// byte-identical response a single whole-request evaluation produces.
func TestPermutationInvariance(t *testing.T) {
	req := testRequest()
	mustValidate(t, req)
	total := req.NumCells()
	want := fullBytes(t, req)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		// Random partitioning: PartitionCells for a random worker count
		// on even trials, fully random contiguous cuts on odd ones.
		var parts []Partition
		if trial%2 == 0 {
			parts = PartitionCells(req, 1+rng.Intn(5))
		} else {
			for off := 0; off < total; {
				n := 1 + rng.Intn(total-off)
				parts = append(parts, Partition{Start: off, Count: n})
				off += n
			}
		}
		rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })

		surface := make([]float64, total)
		bases := make([]float64, len(parts))
		var mu sync.Mutex
		err := Scatter(context.Background(), parts, func(ctx context.Context, p Partition) error {
			base, pnl, err := EvaluateCells(ctx, req, testMarket, p.Start, p.Count)
			if err != nil {
				return err
			}
			mu.Lock()
			copy(surface[p.Start:p.Start+p.Count], pnl)
			for i := range parts {
				if parts[i] == p {
					bases[i] = base
				}
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 1; i < len(bases); i++ {
			if bases[i] != bases[0] {
				t.Fatalf("trial %d: partition base values diverge: %v vs %v", trial, bases[i], bases[0])
			}
		}
		got, err := json.Marshal(Finalize(req, bases[0], 0, surface))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("trial %d (%d partitions): merged response differs from whole-request response\n got: %s\nwant: %s",
				trial, len(parts), got, want)
		}
	}
}

// TestKahanErrorBound checks the compensated sum against a math/big
// reference on an ill-conditioned input: the Neumaier error stays within
// a few eps of the true sum's magnitude scale, far below the naive
// float64 loop's error.
func TestKahanErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		// Alternating huge and tiny magnitudes with mixed signs: the
		// classic cancellation stress.
		mag := math.Pow(10, float64(rng.Intn(16))-8)
		xs[i] = (rng.Float64()*2 - 1) * mag
	}

	var k Sum
	naive := 0.0
	absSum := 0.0
	ref := new(big.Float).SetPrec(200)
	for _, x := range xs {
		k.Add(x)
		naive += x
		absSum += math.Abs(x)
		ref.Add(ref, new(big.Float).SetPrec(200).SetFloat64(x))
	}
	want, _ := ref.Float64()

	kahanErr := math.Abs(k.Value() - want)
	naiveErr := math.Abs(naive - want)
	// Neumaier bound: |err| <= 2u*sum|x| (+O(n*u^2)) with unit roundoff
	// u = 2^-53; allow 2x headroom.
	bound := 4 * 0x1p-53 * absSum
	if kahanErr > bound {
		t.Fatalf("kahan error %g exceeds bound %g (sum|x| = %g)", kahanErr, bound, absSum)
	}
	if naiveErr > 0 && kahanErr > naiveErr {
		t.Fatalf("kahan error %g worse than naive %g", kahanErr, naiveErr)
	}
}

// TestGeneratorCellsAreRandomAccess pins the sub-range determinism the
// router's one-attempt dispatch relies on: evaluating a generator block
// cell-by-cell, from any starting offset, reproduces the whole block's
// bits.
func TestGeneratorCellsAreRandomAccess(t *testing.T) {
	req := testRequest()
	mustValidate(t, req)
	gridCells := req.NumGridCells()
	total := req.NumCells()
	_, whole, err := EvaluateCells(context.Background(), req, testMarket, 0, total)
	if err != nil {
		t.Fatal(err)
	}
	for idx := gridCells; idx < total; idx++ {
		_, one, err := EvaluateCells(context.Background(), req, testMarket, idx, 1)
		if err != nil {
			t.Fatal(err)
		}
		if one[0] != whole[idx] {
			t.Fatalf("cell %d alone = %v, in whole run = %v", idx, one[0], whole[idx])
		}
	}
}

// TestReduceLadder sanity-checks the ladder on a hand-built surface.
func TestReduceLadder(t *testing.T) {
	pnl := []float64{-50, -40, -30, -20, -10, 0, 10, 20, 30, 40}
	lad := Reduce([]float64{0.9}, pnl)
	// tail = ceil(0.1*10) = 1 worst cell.
	if lad.VaR[0] != 50 || lad.ES[0] != 50 {
		t.Fatalf("VaR/ES = %v/%v, want 50/50", lad.VaR[0], lad.ES[0])
	}
	if lad.WorstPnL != -50 || lad.BestPnL != 40 {
		t.Fatalf("worst/best = %v/%v", lad.WorstPnL, lad.BestPnL)
	}
	if math.Abs(lad.MeanPnL-(-5)) > 1e-12 {
		t.Fatalf("mean = %v, want -5", lad.MeanPnL)
	}
	lad2 := Reduce([]float64{0.7}, pnl)
	// tail = ceil(0.3*10) = 3 worst cells; ES is their mean loss.
	if lad2.VaR[0] != 30 || lad2.ES[0] != 40 {
		t.Fatalf("VaR/ES at 0.7 = %v/%v, want 30/40", lad2.VaR[0], lad2.ES[0])
	}
}

// TestValidateRejects covers the request validation edges.
func TestValidateRejects(t *testing.T) {
	base := func() *Request {
		return &Request{Portfolio: []Position{{Spot: 100, Strike: 100, Expiry: 1}}}
	}
	cases := []struct {
		name string
		mut  func(*Request)
	}{
		{"empty portfolio", func(r *Request) { r.Portfolio = nil }},
		{"bad type", func(r *Request) { r.Portfolio[0].Type = "straddle" }},
		{"zero spot", func(r *Request) { r.Portfolio[0].Spot = 0 }},
		{"nan strike", func(r *Request) { r.Portfolio[0].Strike = math.NaN() }},
		{"spot shock <= -1", func(r *Request) { r.Grid.SpotShocks = []float64{-1} }},
		{"vol shock kills vol", func(r *Request) { r.Grid.VolShocks = []float64{-testMarket.Volatility} }},
		{"inf rate shift", func(r *Request) { r.Grid.RateShifts = []float64{math.Inf(1)} }},
		{"unknown model", func(r *Request) { r.Generators = []Generator{{Model: "gbm", Scenarios: 1}} }},
		{"zero scenarios", func(r *Request) { r.Generators = []Generator{{Model: ModelJump}} }},
		{"bad rho", func(r *Request) { r.Generators = []Generator{{Model: ModelHeston, Scenarios: 1, Rho: 2}} }},
		{"bad corr", func(r *Request) { r.Generators = []Generator{{Model: ModelBasket, Scenarios: 1, Corr: 1.5}} }},
		{"bad var level", func(r *Request) { r.VarLevels = []float64{1} }},
		{"cell range overflow", func(r *Request) { r.Cells = &Cells{Start: 0, Count: 2} }},
		{"negative cell start", func(r *Request) { r.Cells = &Cells{Start: -1, Count: 1} }},
	}
	for _, tc := range cases {
		req := base()
		tc.mut(req)
		if err := req.Validate(testMarket.Volatility, Limits{}); !errors.Is(err, ErrRequest) {
			t.Errorf("%s: err = %v, want ErrRequest", tc.name, err)
		}
	}
	if err := base().Validate(testMarket.Volatility, Limits{MaxPositions: 1, MaxCells: 1}); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	over := base()
	over.Grid.SpotShocks = []float64{-0.1, 0, 0.1}
	if err := over.Validate(testMarket.Volatility, Limits{MaxCells: 2}); !errors.Is(err, ErrRequest) {
		t.Errorf("MaxCells not enforced: %v", err)
	}
}

// TestPartitionCells pins the split: near-even contiguous grid ranges,
// generators always whole and Monte Carlo.
func TestPartitionCells(t *testing.T) {
	req := testRequest()
	mustValidate(t, req)
	parts := PartitionCells(req, 4)
	grid := req.NumGridCells()
	off := 0
	mc := 0
	for _, p := range parts {
		if p.Start != off {
			t.Fatalf("partition gap: start %d, want %d", p.Start, off)
		}
		if p.MonteCarlo {
			mc++
			if p.Start < grid {
				t.Fatalf("grid cells marked Monte Carlo: %+v", p)
			}
		} else if p.Start+p.Count > grid {
			t.Fatalf("generator cells in a closed-form partition: %+v", p)
		}
		off += p.Count
	}
	if off != req.NumCells() {
		t.Fatalf("partitions cover %d cells, want %d", off, req.NumCells())
	}
	if mc != len(req.Generators) {
		t.Fatalf("%d Monte Carlo partitions, want one per generator (%d)", mc, len(req.Generators))
	}
	// More workers than grid cells: no empty partitions.
	small := &Request{
		Portfolio: []Position{{Spot: 100, Strike: 100, Expiry: 1}},
		Grid:      Grid{SpotShocks: []float64{-0.1, 0.1}},
	}
	for _, p := range PartitionCells(small, 8) {
		if p.Count < 1 {
			t.Fatalf("empty partition: %+v", p)
		}
	}
}

// TestEvaluateCtxCancel: a cancelled context aborts the evaluation.
func TestEvaluateCtxCancel(t *testing.T) {
	req := testRequest()
	mustValidate(t, req)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := EvaluateCells(ctx, req, testMarket, 0, req.NumCells()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestScatterReportsFirstPartitionError: the error surfaced is the first
// in partition order, not completion order.
func TestScatterReportsFirstPartitionError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	parts := []Partition{{Start: 0, Count: 1}, {Start: 1, Count: 1}, {Start: 2, Count: 1}}
	err := Scatter(context.Background(), parts, func(_ context.Context, p Partition) error {
		switch p.Start {
		case 1:
			return errA
		case 2:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the first failing partition's error", err)
	}
}
