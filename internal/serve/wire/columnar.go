package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"finbench"
)

// Binary columnar bulk format. The request frame carries the SOA layout
// directly — length-prefixed float64 columns — so a mega-batch client
// skips JSON entirely and the server prices straight out of the frame.
// Closed-form only (enforced by validatePrice, same as the JSON-framed
// columnar object). All integers are little-endian.
//
// Request (Content-Type application/x-finbench-columnar):
//
//	offset size  field
//	0      4     magic "FBC1"
//	4      1     flags: bit0 = type column present, bit1 = style column present
//	5      4     deadline_ms (uint32; 0 = server maximum)
//	9      4     n = option count (uint32)
//	13     8n    spots (float64)
//	13+8n  8n    strikes (float64)
//	13+16n 8n    expiries (float64)
//	...    n     types, 'c'/'p' (iff flags bit0)
//	...    n     styles, 'e'/'a' (iff flags bit1)
//
// The frame length must be exact — no trailing bytes.
//
// Response:
//
//	offset size  field
//	0      4     magic "FBR1"
//	4      1     flags: bit0 = degraded, bit1 = coalesced
//	5      1     method (1=closed-form, ... ; index into method table)
//	6      1     engine (1=batch-advanced, 2=scalar)
//	7      4     binomial_steps (uint32)
//	11     4     grid_points (uint32)
//	15     4     time_steps (uint32)
//	19     4     mc_paths (uint32)
//	23     8     seed (uint64)
//	31     4     batch_options (uint32)
//	35     8     elapsed_us (int64)
//	43     4     n = result count (uint32)
//	47     8n    prices (float64)

// ColumnarContentType selects the binary columnar request framing on
// POST /price.
const ColumnarContentType = "application/x-finbench-columnar"

const (
	columnarReqHeader  = 13
	columnarRespHeader = 47

	colFlagTypes  = 1 << 0
	colFlagStyles = 1 << 1

	respFlagDegraded  = 1 << 0
	respFlagCoalesced = 1 << 1
)

var (
	columnarReqMagic  = [4]byte{'F', 'B', 'C', '1'}
	columnarRespMagic = [4]byte{'F', 'B', 'R', '1'}
)

// engineNames indexes the engine byte of the response frame.
var engineNames = []string{"", "batch-advanced", "scalar"}

// SniffColumnar reports whether data starts with the columnar request
// magic (a cheap routing/telemetry probe; full validation is
// DecodeColumnarRequest's job).
func SniffColumnar(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == columnarReqMagic
}

// SniffColumnarDeadline extracts deadline_ms from a columnar request
// frame without decoding the columns (the router's deadline probe).
func SniffColumnarDeadline(data []byte) (int64, bool) {
	if len(data) < columnarReqHeader || [4]byte(data[:4]) != columnarReqMagic {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint32(data[5:9])), true
}

// DecodeColumnarRequest parses a binary columnar frame and validates it
// under the same rules as the JSON framings (shared validatePrice). The
// returned request is pooled: release with PutRequest. It is a fuzz
// entry point: any input either errors or round-trips through
// AppendColumnarRequest byte-identically. data is not retained.
func DecodeColumnarRequest(data []byte) (*PriceRequest, finbench.Method, error) {
	if len(data) < columnarReqHeader {
		return nil, 0, fmt.Errorf("columnar frame truncated: %d bytes, header is %d", len(data), columnarReqHeader)
	}
	if [4]byte(data[:4]) != columnarReqMagic {
		return nil, 0, fmt.Errorf("bad columnar magic %q", string(data[:4]))
	}
	flags := data[4]
	if flags&^(byte(colFlagTypes|colFlagStyles)) != 0 {
		return nil, 0, fmt.Errorf("unknown columnar flags 0x%02x", flags)
	}
	deadlineMS := binary.LittleEndian.Uint32(data[5:9])
	n := uint64(binary.LittleEndian.Uint32(data[9:13]))
	want := uint64(columnarReqHeader) + 24*n
	if flags&colFlagTypes != 0 {
		want += n
	}
	if flags&colFlagStyles != 0 {
		want += n
	}
	if uint64(len(data)) != want {
		return nil, 0, fmt.Errorf("columnar frame length %d; %d options need %d", len(data), n, want)
	}
	req := priceReqPool.Get().(*PriceRequest)
	req.reset()
	req.DeadlineMS = int64(deadlineMS)
	c := &req.colScratch
	c.Spots = decodeFloatColumn(sizedColumn(c.Spots, int(n)), data[columnarReqHeader:])
	off := columnarReqHeader + 8*int(n)
	c.Strikes = decodeFloatColumn(sizedColumn(c.Strikes, int(n)), data[off:])
	off += 8 * int(n)
	c.Expiries = decodeFloatColumn(sizedColumn(c.Expiries, int(n)), data[off:])
	off += 8 * int(n)
	if flags&colFlagTypes != 0 {
		c.Types = string(data[off : off+int(n)])
		off += int(n)
	}
	if flags&colFlagStyles != 0 {
		c.Styles = string(data[off : off+int(n)])
	}
	req.Columnar = c
	method, err := validatePrice(req)
	if err != nil {
		PutRequest(req)
		return nil, 0, err
	}
	return req, method, nil
}

// AppendColumnarRequest appends req as a binary columnar frame. The
// request must carry Columnar framing (the loadgen client builds one
// directly).
func AppendColumnarRequest(dst []byte, req *PriceRequest) []byte {
	c := req.Columnar
	var flags byte
	if c.Types != "" {
		flags |= colFlagTypes
	}
	if c.Styles != "" {
		flags |= colFlagStyles
	}
	dst = append(dst, columnarReqMagic[:]...)
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(req.DeadlineMS))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Spots)))
	dst = appendFloatColumn(dst, c.Spots)
	dst = appendFloatColumn(dst, c.Strikes)
	dst = appendFloatColumn(dst, c.Expiries)
	dst = append(dst, c.Types...)
	dst = append(dst, c.Styles...)
	return dst
}

// AppendColumnarResponse appends r as a binary response frame. Results
// carry prices only (columnar is closed-form, which has no std_err).
func AppendColumnarResponse(dst []byte, r *PriceResponse) ([]byte, error) {
	methodByte := byte(0)
	for i, name := range methodNames {
		if name == r.Method && i > 0 {
			methodByte = byte(i)
			break
		}
	}
	if methodByte == 0 {
		return dst, fmt.Errorf("columnar response: unknown method %q", r.Method)
	}
	engineByte := byte(0)
	for i, name := range engineNames {
		if name == r.Engine && i > 0 {
			engineByte = byte(i)
			break
		}
	}
	if engineByte == 0 {
		return dst, fmt.Errorf("columnar response: unknown engine %q", r.Engine)
	}
	var flags byte
	if r.Degraded {
		flags |= respFlagDegraded
	}
	if r.Coalesced {
		flags |= respFlagCoalesced
	}
	dst = append(dst, columnarRespMagic[:]...)
	dst = append(dst, flags, methodByte, engineByte)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Config.BinomialSteps))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Config.GridPoints))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Config.TimeSteps))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Config.MCPaths))
	dst = binary.LittleEndian.AppendUint64(dst, r.Config.Seed)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.BatchOptions))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.ElapsedUS))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Results)))
	for i := range r.Results {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Results[i].Price))
	}
	return dst, nil
}

// DecodeColumnarResponse parses a binary response frame into the JSON
// response shape (the loadgen client's verify path; allocates freely).
func DecodeColumnarResponse(data []byte) (*PriceResponse, error) {
	if len(data) < columnarRespHeader {
		return nil, fmt.Errorf("columnar response truncated: %d bytes, header is %d", len(data), columnarRespHeader)
	}
	if [4]byte(data[:4]) != columnarRespMagic {
		return nil, fmt.Errorf("bad columnar response magic %q", string(data[:4]))
	}
	flags := data[4]
	if flags&^(byte(respFlagDegraded|respFlagCoalesced)) != 0 {
		return nil, fmt.Errorf("unknown columnar response flags 0x%02x", flags)
	}
	methodByte, engineByte := data[5], data[6]
	if methodByte == 0 || int(methodByte) >= len(methodNames) {
		return nil, fmt.Errorf("unknown columnar response method byte %d", methodByte)
	}
	if engineByte == 0 || int(engineByte) >= len(engineNames) {
		return nil, fmt.Errorf("unknown columnar response engine byte %d", engineByte)
	}
	n := uint64(binary.LittleEndian.Uint32(data[43:47]))
	if want := uint64(columnarRespHeader) + 8*n; uint64(len(data)) != want {
		return nil, fmt.Errorf("columnar response length %d; %d results need %d", len(data), n, want)
	}
	r := &PriceResponse{
		Method: methodNames[methodByte],
		Engine: engineNames[engineByte],
		Config: Config{
			BinomialSteps: int(binary.LittleEndian.Uint32(data[7:11])),
			GridPoints:    int(binary.LittleEndian.Uint32(data[11:15])),
			TimeSteps:     int(binary.LittleEndian.Uint32(data[15:19])),
			MCPaths:       int(binary.LittleEndian.Uint32(data[19:23])),
			Seed:          binary.LittleEndian.Uint64(data[23:31]),
		},
		Degraded:     flags&respFlagDegraded != 0,
		Coalesced:    flags&respFlagCoalesced != 0,
		BatchOptions: int(binary.LittleEndian.Uint32(data[31:35])),
		ElapsedUS:    int64(binary.LittleEndian.Uint64(data[35:43])),
		Results:      make([]Result, n),
	}
	for i := range r.Results {
		r.Results[i].Price = math.Float64frombits(binary.LittleEndian.Uint64(data[columnarRespHeader+8*i:]))
	}
	return r, nil
}

// ValidColumnarResponse is the router's structural corrupt-body check
// for columnar 200s (the columnar counterpart of json.Valid).
func ValidColumnarResponse(data []byte) bool {
	if len(data) < columnarRespHeader || [4]byte(data[:4]) != columnarRespMagic {
		return false
	}
	if data[4]&^(byte(respFlagDegraded|respFlagCoalesced)) != 0 {
		return false
	}
	if m := data[5]; m == 0 || int(m) >= len(methodNames) {
		return false
	}
	if e := data[6]; e == 0 || int(e) >= len(engineNames) {
		return false
	}
	n := uint64(binary.LittleEndian.Uint32(data[43:47]))
	return uint64(len(data)) == uint64(columnarRespHeader)+8*n
}

// sizedColumn returns a length-n column reusing s's capacity.
func sizedColumn(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func decodeFloatColumn(dst []float64, data []byte) []float64 {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return dst
}

func appendFloatColumn(dst []byte, col []float64) []byte {
	for _, v := range col {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}
