package serve

import (
	"math"
	"testing"
)

// FuzzDecodeRequest fuzzes the wire decoder: arbitrary bytes must either
// produce an error or a request satisfying every invariant the handlers
// rely on (bounded option count, finite positive parameters, known
// method/type/style combinations, non-negative deadline and config).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"options":[{"type":"call","spot":100,"strike":105,"expiry":0.5}]}`))
	f.Add([]byte(`{"method":"monte-carlo","options":[{"spot":90,"strike":100,"expiry":1}],"config":{"mc_paths":16384,"seed":7},"deadline_ms":250}`))
	f.Add([]byte(`{"method":"binomial-tree","options":[{"type":"put","style":"american","spot":100,"strike":110,"expiry":1}],"config":{"binomial_steps":512}}`))
	f.Add([]byte(`{"options":[{"spot":1e308,"strike":1e-308,"expiry":3}]}`))
	f.Add([]byte(`{"options":[]}`))
	f.Add([]byte(`{"options":[{"spot":-1,"strike":0,"expiry":0}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"method":"quantum","options":[{"spot":1,"strike":1,"expiry":1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		if n := len(req.Options); n == 0 || n > MaxRequestOptions {
			t.Fatalf("accepted request with %d options", n)
		}
		method, merr := ParseMethod(req.Method)
		if merr != nil {
			t.Fatalf("accepted unknown method %q", req.Method)
		}
		if req.DeadlineMS < 0 {
			t.Fatalf("accepted negative deadline %d", req.DeadlineMS)
		}
		if req.Config.BinomialSteps < 0 || req.Config.GridPoints < 0 ||
			req.Config.TimeSteps < 0 || req.Config.MCPaths < 0 {
			t.Fatalf("accepted negative config %+v", req.Config)
		}
		for i := range req.Options {
			o := &req.Options[i]
			switch o.Type {
			case "", "call", "put":
			default:
				t.Fatalf("accepted option type %q", o.Type)
			}
			switch o.Style {
			case "", "european", "american":
			default:
				t.Fatalf("accepted exercise style %q", o.Style)
			}
			for _, v := range [3]float64{o.Spot, o.Strike, o.Expiry} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					t.Fatalf("accepted option %d with parameter %v", i, v)
				}
			}
			if o.Style == "american" && (method == 0 || req.Method == "monte-carlo") {
				t.Fatalf("accepted American option for European-only method %q", req.Method)
			}
			// Validated options must convert cleanly.
			_ = o.ToOption()
		}
	})
}
