// Package detmap seeds map-iteration-order leaks: writes, unsorted
// collections, float reductions, and call-graph escapes into JSON
// encoding, next to the exempt collect-then-sort and integer-reduction
// idioms.
package detmap

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteLoop emits per-key output in map order.
func WriteLoop(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // seeded violation
	}
}

// BuilderLoop writes through an io.Writer method on strings.Builder.
func BuilderLoop(b *strings.Builder, m map[string]int) {
	for k := range m {
		b.WriteString(k) // seeded violation
	}
}

// CollectNoSort returns keys in random order (never sorted).
func CollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // seeded violation
	}
	return keys
}

// FloatReduce accumulates floats in map order; float addition does not
// commute in the last ulp.
func FloatReduce(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // seeded violation
	}
	return total
}

// EncodeEscape hands values, per iteration, to a helper that reaches a
// JSON encode (found through the call graph).
func EncodeEscape(w io.Writer, m map[string]int) {
	for k, v := range m {
		emit(w, k, v) // seeded violation
	}
}

func emit(w io.Writer, k string, v int) {
	data, err := json.Marshal(map[string]int{k: v})
	if err != nil {
		return
	}
	_, _ = w.Write(data)
}

// GoodCollectSort is the collect-then-sort idiom: exempt.
func GoodCollectSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodIntReduce accumulates integers: exact arithmetic, order cannot
// show in the result.
func GoodIntReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodSliceRange writes while ranging a slice: iteration order is fixed.
func GoodSliceRange(w io.Writer, keys []string) {
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// debugDump's order genuinely does not matter; the suppression says so.
func debugDump(w io.Writer, m map[string]int) {
	for k, v := range m {
		// finlint:ignore detmap debug dump, order is irrelevant and never parsed
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
